#include "telemetry/manifest.hpp"

#include <cmath>
#include <fstream>

#include "common/assert.hpp"
#include "common/json.hpp"

#ifndef ESARP_VERSION_STRING
#define ESARP_VERSION_STRING "0.0.0"
#endif

namespace esarp::telemetry {

const char* esarp_version() { return ESARP_VERSION_STRING; }

namespace {

void write_section(JsonWriter& w, const char* name,
                   const std::vector<std::pair<std::string, double>>& kv) {
  w.key(name);
  w.begin_object();
  for (const auto& [k, v] : kv) {
    // Fail at the producer, with the key named, rather than emitting the
    // JSON null that esarp_compare would reject downstream: a NaN result
    // (division by a zero cycle count, say) is a bug in the run, and the
    // atomic-publish path in write(path) guarantees no partial manifest
    // is left behind.
    ESARP_REQUIRE(std::isfinite(v), "non-finite manifest value for \"" +
                                        std::string(name) + "." + k + "\"");
    w.kv(k, v);
  }
  w.end_object();
}

} // namespace

void RunManifest::write(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", schema_);
  w.kv("tool", tool_);
  w.kv("version", esarp_version());
  write_section(w, "chip", chip_);
  write_section(w, "workload", workload_);
  write_section(w, "results", results_);
  w.key("metrics");
  if (metrics_ != nullptr) {
    metrics_->write_json(w);
  } else {
    MetricsRegistry empty;
    empty.write_json(w);
  }
  w.end_object();
  os << "\n";
}

void RunManifest::write(const std::filesystem::path& path) const {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  // Atomic publish: write a sibling temp file, then rename over the
  // target. A run that dies mid-write (or whose manifest write throws)
  // can never leave a truncated document where a consumer — esarp_compare,
  // the report command, CI baselines — expects a complete one.
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream f(tmp);
    ESARP_EXPECTS(f.is_open());
    write(f);
    ESARP_ENSURES(f.good());
  }
  std::filesystem::rename(tmp, path);
}

} // namespace esarp::telemetry
