// Minimal CSV writer: every bench emits machine-readable data next to the
// console table so figures can be re-plotted externally.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace esarp {

class CsvWriter {
public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::filesystem::path& path,
            const std::vector<std::string>& columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append a row; size must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience for all-numeric rows.
  void row_numeric(const std::vector<double>& values, int precision = 6);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t ncols_;
  std::size_t rows_ = 0;
};

} // namespace esarp
