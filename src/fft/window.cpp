#include "fft/window.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace esarp::fft {

namespace {

/// Taylor window (nbar nearly-constant-level sidelobes at sll dB below the
/// mainlobe). Classic formulation via the F_m coefficients.
std::vector<float> taylor(std::size_t n, int nbar, double sll_db) {
  const double a = std::acosh(std::pow(10.0, -sll_db / 20.0)) / kPi;
  const double a2 = a * a;
  const double sigma2 =
      static_cast<double>(nbar * nbar) /
      (a2 + (static_cast<double>(nbar) - 0.5) *
                (static_cast<double>(nbar) - 0.5));

  std::vector<double> fm(static_cast<std::size_t>(nbar) - 1);
  for (int m = 1; m < nbar; ++m) {
    double num = 1.0;
    double den = 1.0;
    for (int i = 1; i < nbar; ++i) {
      num *= 1.0 - static_cast<double>(m * m) /
                       (sigma2 * (a2 + (i - 0.5) * (i - 0.5)));
      if (i != m)
        den *= 1.0 - static_cast<double>(m * m) / static_cast<double>(i * i);
    }
    const double sign = (m % 2 == 0) ? 1.0 : -1.0;
    fm[static_cast<std::size_t>(m) - 1] = -sign * num / (2.0 * den);
  }

  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        2.0 * kPi * (static_cast<double>(i) - 0.5 * (static_cast<double>(n) - 1.0)) /
        static_cast<double>(n);
    double v = 1.0;
    for (int m = 1; m < nbar; ++m)
      v += 2.0 * fm[static_cast<std::size_t>(m) - 1] * std::cos(m * x);
    w[i] = static_cast<float>(v);
  }
  // Normalise peak to 1.
  float peak = 0.0f;
  for (float v : w) peak = std::max(peak, v);
  for (float& v : w) v /= peak;
  return w;
}

} // namespace

std::vector<float> make_window(WindowKind kind, std::size_t n) {
  ESARP_EXPECTS(n >= 1);
  std::vector<float> w(n, 1.0f);
  if (n == 1 || kind == WindowKind::kRectangular) return w;
  const double denom = static_cast<double>(n - 1);
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = static_cast<float>(
            0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) / denom));
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = static_cast<float>(
            0.54 -
            0.46 * std::cos(2.0 * kPi * static_cast<double>(i) / denom));
      break;
    case WindowKind::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double x = 2.0 * kPi * static_cast<double>(i) / denom;
        w[i] = static_cast<float>(0.42 - 0.5 * std::cos(x) +
                                  0.08 * std::cos(2.0 * x));
      }
      break;
    case WindowKind::kTaylor:
      w = taylor(n, /*nbar=*/4, /*sll_db=*/-35.0);
      break;
  }
  return w;
}

void apply_window(std::span<cf32> signal, std::span<const float> window) {
  ESARP_EXPECTS(signal.size() == window.size());
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

double coherent_gain(std::span<const float> window) {
  ESARP_EXPECTS(!window.empty());
  double sum = 0.0;
  for (float v : window) sum += v;
  return sum / static_cast<double>(window.size());
}

double noise_bandwidth_bins(std::span<const float> window) {
  ESARP_EXPECTS(!window.empty());
  double sum = 0.0;
  double sum2 = 0.0;
  for (float v : window) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  return static_cast<double>(window.size()) * sum2 / (sum * sum);
}

} // namespace esarp::fft
