#include "epiphany/trace.hpp"

#include <fstream>

#include "common/assert.hpp"

namespace esarp::ep {

void Tracer::write_chrome_json(const std::filesystem::path& path,
                               double clock_hz) const {
  std::ofstream f(path);
  ESARP_EXPECTS(f.is_open());
  const double to_us = 1e6 / clock_hz;
  f << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& s : segments_) {
    if (!first) f << ",\n";
    first = false;
    f << "{\"name\":\"" << to_string(s.kind) << "\",\"ph\":\"X\",\"pid\":0,"
      << "\"tid\":" << s.core << ",\"ts\":"
      << static_cast<double>(s.start) * to_us << ",\"dur\":"
      << static_cast<double>(s.end - s.start) * to_us << "}";
  }
  f << "\n]}\n";
  ESARP_ENSURES(f.good());
}

Cycles Tracer::total_cycles(SegmentKind kind) const {
  Cycles total = 0;
  for (const auto& s : segments_)
    if (s.kind == kind) total += s.end - s.start;
  return total;
}

} // namespace esarp::ep
