// Azimuth presummation ablation: the front-end data-rate reduction of the
// paper's Fig. 1 chain. Each factor-k presum cuts the back-projection
// work (and the chip time) by ~k while gaining SNR against thermal noise,
// valid up to the processed sector's Nyquist bound.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/ffbp_epiphany.hpp"
#include "sar/ffbp.hpp"
#include "sar/metrics.hpp"
#include "sar/presum.hpp"
#include "sar/scene.hpp"

static int bench_body() {
  using namespace esarp;
  const auto p = sar::test_params(64, 201);
  sar::Scene s;
  s.targets = {{0.0, p.near_range_m + 100.0 * p.range_bin_m, 1.0f}};
  auto data = sar::simulate_compressed(p, s);
  Rng rng(7);
  sar::add_noise(data, rng, 0.05f);

  std::cerr << "nyquist-limited presum factor for this geometry: "
            << sar::max_presum_factor(p) << "\n";

  Table t("Azimuth presummation: data rate vs image quality (FFBP, 16 cores)");
  t.header({"Presum", "Pulses", "Chip time (ms)", "Image SNR (peak/median)"});
  CsvWriter csv(bench::out_dir() / "ablation_presum.csv",
                {"factor", "pulses", "chip_ms", "snr"});

  // The presum factors are independent simulations over the same (read
  // only) noisy data set: fan out across host threads (ESARP_JOBS).
  const std::vector<std::size_t> factors = {1, 2, 4, 8};
  struct Point {
    std::size_t pulses;
    double seconds, snr;
  };
  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "simulating " << factors.size() << " presum factors ("
            << pool.jobs() << " host thread(s))...\n";
  const auto points = pool.run(factors.size(), [&](std::size_t i) -> Point {
    const std::size_t factor = factors[i];
    const auto ps = factor == 1
                        ? sar::PresumResult{data, p, {}}
                        : sar::presum(data, p, factor);
    core::FfbpMapOptions opt;
    opt.n_cores = 16;
    const auto sim = core::run_ffbp_epiphany(ps.data, ps.params, opt);
    return {ps.params.n_pulses, sim.seconds,
            sar::peak_to_median(sim.image)};
  });

  for (std::size_t i = 0; i < factors.size(); ++i) {
    const auto& pt = points[i];
    t.row({std::to_string(factors[i]), std::to_string(pt.pulses),
           bench::ms(pt.seconds), Table::num(pt.snr, 0)});
    csv.row_numeric({static_cast<double>(factors[i]),
                     static_cast<double>(pt.pulses), pt.seconds * 1e3,
                     pt.snr});
  }
  t.note("image SNR is roughly presum-invariant (coherent target gain "
         "balances the reduced integration) while the sampling satisfies "
         "the sector Nyquist rate (factor <= " +
         std::to_string(sar::max_presum_factor(p)) +
         " here); chip time falls ~linearly with the data rate — the "
         "purpose of the Fig. 1 preprocessing stage");
  t.print(std::cout);
  return 0;
}

int main() { return esarp::bench::guarded_main("ablation_presum", bench_body); }
