// Reproduces the paper's interpolation-quality discussion (Section V-B /
// VI): nearest-neighbour interpolation degrades FFBP images relative to
// GBP, and "the quality ... could be considerably improved by using more
// complex interpolation kernels such as cubic interpolation" — at a
// compute cost this table quantifies on both architectures.
#include <iostream>
#include <iterator>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "core/ffbp_epiphany.hpp"
#include "hostmodel/host_model.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"

static int bench_body() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();
  const host::HostModel intel;

  std::cerr << "GBP quality reference (decimated 4x in azimuth)...\n";
  const auto g = sar::gbp(w.data, w.params, 4);

  struct Variant {
    const char* name;
    sar::FfbpOptions opt;
  };
  const Variant variants[] = {
      {"nearest (paper)", {}},
      {"nearest + phase comp.",
       {.interp = sar::Interp::kNearest, .phase_compensate = true}},
      {"linear", {.interp = sar::Interp::kLinear}},
      {"cubic (Neville)", {.interp = sar::Interp::kCubic}},
  };

  Table t("FFBP interpolation kernels: quality vs cost");
  t.header({"Kernel", "Entropy", "rel. RMSE vs GBP", "Intel (ms)",
            "Epiphany 16-core (ms)", "flops/pixel"});
  CsvWriter csv(bench::out_dir() / "ablation_interpolation.csv",
                {"kernel", "entropy", "rmse_vs_gbp", "intel_ms",
                 "epiphany_ms", "flops_per_pixel"});

  // Each kernel runs the host FFBP and the simulated chip independently
  // against the shared (read-only) workload and GBP reference: fan out
  // across host threads (ESARP_JOBS); results gathered by index.
  struct Metrics {
    double entropy, err, intel_s, sim_s, fpp;
  };
  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "evaluating " << std::size(variants)
            << " interpolation kernels (" << pool.jobs()
            << " host thread(s))...\n";
  const auto metrics =
      pool.run(std::size(variants), [&](std::size_t vi) -> Metrics {
        const auto& v = variants[vi];
        const auto host_res = sar::ffbp(w.data, w.params, v.opt);
        const double intel_s = intel.seconds(host_res.host_work);

        core::FfbpMapOptions mopt;
        mopt.n_cores = 16;
        mopt.algo = v.opt;
        const auto sim = core::run_ffbp_epiphany(w.data, w.params, mopt);

        // Compare against GBP on the rows GBP computed
        // (decimation-aware).
        Array2D<cf32> fd(host_res.image.data.rows() / 4,
                         host_res.image.data.cols());
        Array2D<cf32> gd(fd.rows(), fd.cols());
        for (std::size_t i = 0; i < fd.rows(); ++i)
          for (std::size_t j = 0; j < fd.cols(); ++j) {
            fd(i, j) = host_res.image.data(4 * i, j);
            gd(i, j) = g.image.data(4 * i, j);
          }

        return {image_entropy(host_res.image.data),
                relative_rmse(fd, gd), intel_s, sim.seconds,
                static_cast<double>(sar::merge_pixel_ops(v.opt).flops())};
      });

  for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
    const auto& v = variants[vi];
    const auto& m = metrics[vi];
    t.row({v.name, Table::num(m.entropy, 2), Table::num(m.err, 4),
           bench::ms(m.intel_s), bench::ms(m.sim_s),
           Table::num(m.fpp, 0)});
    csv.row({v.name, Table::num(m.entropy, 4), Table::num(m.err, 6),
             Table::num(m.intel_s * 1e3, 2), Table::num(m.sim_s * 1e3, 2),
             Table::num(m.fpp, 0)});
  }
  t.note("GBP reference entropy: " +
         Table::num(image_entropy(g.image.data), 2) +
         " (computed on every 4th azimuth line)");
  t.print(std::cout);
  return 0;
}

int main() { return esarp::bench::guarded_main("ablation_interpolation", bench_body); }
