// Native micro-benchmarks (google-benchmark) of the inner kernels: the
// cosine-theorem index calculation (paper eqs. 1-4), child sampling with
// each interpolation kernel, Neville interpolation, the criterion term,
// the fastmath primitives vs libm, and the FFT plan.
//
// On top of the classic rows, every entry point of the unified kernel API
// (sar/kernels.hpp) gets one benchmark row per available backend
// (scalar / sse2 / avx2) so a kernel-level regression is attributable to
// the exact kernel x backend pair that caused it. A run manifest
// (micro_kernels.manifest.json) records the deterministic evidence as
// results — scalar output checksums and the `simd_matches.*` /
// `simd_bitexact` flags asserting every available SIMD backend is
// bit-identical to the scalar reference — and the machine-varying timings
// (`kernel.<k>.<backend>.ns_per_sample`, `.speedup`) as informational
// metrics gauges, mirroring the engine.* convention (docs/performance.md).
#include <benchmark/benchmark.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "autofocus/criterion.hpp"
#include "autofocus/workload.hpp"
#include "bench_util.hpp"
#include "common/fastmath.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "sar/ffbp.hpp"
#include "sar/interp.hpp"
#include "sar/kernels.hpp"
#include "sar/merge_kernel.hpp"

namespace {

using namespace esarp;

void BM_MergeGeometry(benchmark::State& state) {
  float r = 4500.0f;
  const float cr = 2.0f * 8.0f * 0.1f;
  for (auto _ : state) {
    const sar::MergeGeom g = sar::merge_geometry(r, cr, 64.0f, 1.0f / 16.0f);
    benchmark::DoNotOptimize(g);
    r += 0.5f;
    if (r > 5000.0f) r = 4500.0f;
  }
}
BENCHMARK(BM_MergeGeometry);

void BM_SampleChild(benchmark::State& state) {
  const auto interp = static_cast<sar::Interp>(state.range(0));
  Array2D<cf32> child(32, 256);
  Rng rng(1);
  for (auto& px : child.flat())
    px = {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)};
  const auto p = sar::test_params(64, 256);
  const sar::ChildGrid grid = sar::make_child_grid(p, 32);
  const auto view = child.view();
  const auto fetch = [&](int it, int ir) -> cf32 {
    return view(static_cast<std::size_t>(it), static_cast<std::size_t>(ir));
  };
  float rr = grid.r0 + 10.0f;
  for (auto _ : state) {
    const cf32 v = sar::sample_child(grid, rr, 1.5707f, interp, false, fetch);
    benchmark::DoNotOptimize(v);
    rr += 0.37f;
    if (rr > grid.r0 + 100.0f) rr = grid.r0 + 10.0f;
  }
}
BENCHMARK(BM_SampleChild)
    ->Arg(static_cast<int>(sar::Interp::kNearest))
    ->Arg(static_cast<int>(sar::Interp::kLinear))
    ->Arg(static_cast<int>(sar::Interp::kCubic));

void BM_Neville4(benchmark::State& state) {
  cf32 y[4] = {{1, 2}, {3, -1}, {-2, 0.5f}, {0.25f, 1}};
  float t = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sar::neville4(y, t));
    t += 0.01f;
    if (t > 2.0f) t = 1.0f;
  }
}
BENCHMARK(BM_Neville4);

void BM_CriterionSweep(benchmark::State& state) {
  af::AfParams p;
  Rng rng(3);
  const af::BlockPair bp = af::synthetic_block_pair(rng, p, 0.2f);
  for (auto _ : state) {
    const auto res = af::criterion_sweep(bp.minus, bp.plus, p);
    benchmark::DoNotOptimize(res.criteria.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.pixels()));
}
BENCHMARK(BM_CriterionSweep);

void BM_FastSqrt(benchmark::State& state) {
  float x = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fastmath::fast_sqrt(x));
    x += 1.37f;
    if (x > 1e6f) x = 1.0f;
  }
}
BENCHMARK(BM_FastSqrt);

void BM_StdSqrt(benchmark::State& state) {
  float x = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::sqrt(x));
    x += 1.37f;
    if (x > 1e6f) x = 1.0f;
  }
}
BENCHMARK(BM_StdSqrt);

void BM_PolyAcos(benchmark::State& state) {
  float x = -0.99f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fastmath::poly_acos(x));
    x += 0.013f;
    if (x > 0.99f) x = -0.99f;
  }
}
BENCHMARK(BM_PolyAcos);

void BM_StdAcos(benchmark::State& state) {
  float x = -0.99f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::acos(x));
    x += 0.013f;
    if (x > 0.99f) x = -0.99f;
  }
}
BENCHMARK(BM_StdAcos);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::Fft plan(n);
  Rng rng(5);
  std::vector<cf32> sig(n);
  for (auto& s : sig) s = {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)};
  for (auto _ : state) {
    plan.forward(sig);
    benchmark::DoNotOptimize(sig.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MergePairLevel1(benchmark::State& state) {
  const auto p = sar::test_params(16, 256);
  Array2D<cf32> data(16, 256);
  Rng rng(9);
  for (auto& px : data.flat())
    px = {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)};
  const auto subs = sar::initial_subapertures(data, p);
  sar::FfbpOptions opt;
  for (auto _ : state) {
    const auto parent = sar::merge_pair(subs[0], subs[1], p, opt);
    benchmark::DoNotOptimize(parent.data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * 256);
}
BENCHMARK(BM_MergePairLevel1);

// ---- unified kernel API: scalar-vs-SIMD rows (sar/kernels.hpp) ----------

namespace kn = sar::kernels;

/// Samples per kernel call: long enough that the vector main loop, not the
/// scalar head/tail, dominates.
constexpr std::size_t kKernelSamples = 1024;

/// Deterministic (seeded) inputs shared by every kernel row, so checksums
/// and bit-match verdicts are reproducible across runs and machines.
struct KernelInputs {
  // merge_geometry_row: the BM_MergeGeometry geometry swept over a row.
  float r0 = 4500.0f;
  float dr = 0.3f;
  float cr = 2.0f * 8.0f * 0.1f;
  float d2 = 64.0f;
  float inv_2d = 1.0f / 16.0f;
  // neville4_many / neville4_rows.
  cf32 y[4] = {};
  std::vector<float> t;
  std::vector<cf32> row0, row1, row2, row3;
  // criterion_terms.
  std::vector<cf32> minus, plus;
  // gbp_contrib_row: ranges chosen so both in-swath and out-of-swath lanes
  // are exercised (the blend path must match the scalar early-out).
  std::vector<float> px, py;
  std::vector<cf32> pulse_row;
  float pulse_x = 3.0f;
  sar::GbpGrid grid{4000.0f, 2.0f, 256, 4.0 * kPi / 0.03};
};

const KernelInputs& kernel_inputs() {
  static const KernelInputs inputs = [] {
    KernelInputs in;
    Rng rng(11);
    auto cpx = [&rng] {
      return cf32{rng.uniform_f(-1.0f, 1.0f), rng.uniform_f(-1.0f, 1.0f)};
    };
    for (auto& v : in.y) v = cpx();
    in.t.resize(kKernelSamples);
    for (auto& v : in.t) v = rng.uniform_f(0.2f, 2.8f);
    for (auto* rows : {&in.row0, &in.row1, &in.row2, &in.row3, &in.minus,
                       &in.plus}) {
      rows->resize(kKernelSamples);
      for (auto& v : *rows) v = cpx();
    }
    in.pulse_row.resize(static_cast<std::size_t>(in.grid.n_range));
    for (auto& v : in.pulse_row) v = cpx();
    in.px.resize(kKernelSamples);
    in.py.resize(kKernelSamples);
    for (std::size_t i = 0; i < kKernelSamples; ++i) {
      in.px[i] = in.pulse_x + rng.uniform_f(-40.0f, 40.0f);
      in.py[i] = 3999.0f + rng.uniform_f(0.0f, 131.0f);
    }
    return in;
  }();
  return inputs;
}

/// Reused output buffers (sized on first use) so the timed loops measure
/// the kernels, not the allocator.
struct KernelScratch {
  std::vector<sar::MergeGeom> geom;
  std::vector<cf32> c;
  std::vector<float> f;
};

struct ByteView {
  const std::uint8_t* data;
  std::size_t size;
};

template <typename T>
ByteView as_bytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

ByteView run_merge_geometry_row(const KernelInputs& in, KernelScratch& s) {
  s.geom.resize(kKernelSamples);
  kn::merge_geometry_row(in.r0, in.dr, 0, kKernelSamples, in.cr, in.d2,
                         in.inv_2d, s.geom.data());
  return as_bytes(s.geom);
}

ByteView run_neville4_many(const KernelInputs& in, KernelScratch& s) {
  s.c.resize(kKernelSamples);
  kn::neville4_many(in.y, in.t.data(), s.c.data(), kKernelSamples);
  return as_bytes(s.c);
}

ByteView run_neville4_rows(const KernelInputs& in, KernelScratch& s) {
  s.c.resize(kKernelSamples);
  kn::neville4_rows(in.row0.data(), in.row1.data(), in.row2.data(),
                    in.row3.data(), in.t.data(), s.c.data(), kKernelSamples);
  return as_bytes(s.c);
}

ByteView run_criterion_terms(const KernelInputs& in, KernelScratch& s) {
  s.f.resize(kKernelSamples);
  kn::criterion_terms(in.minus.data(), in.plus.data(), s.f.data(),
                      kKernelSamples);
  return as_bytes(s.f);
}

ByteView run_gbp_contrib_row(const KernelInputs& in, KernelScratch& s) {
  s.c.assign(kKernelSamples, cf32{});
  kn::gbp_contrib_row(in.px.data(), in.py.data(), in.pulse_x,
                      in.pulse_row.data(), in.grid, s.c.data(),
                      kKernelSamples);
  return as_bytes(s.c);
}

struct KernelCase {
  const char* name;
  /// False when the output routes through libm doubles (cos/sin of the
  /// carrier phase): bit-identical within one machine — so the SIMD match
  /// verdict is still a gated result — but the checksum may legitimately
  /// differ between libm builds, so it is recorded as a gauge instead.
  bool portable_checksum;
  ByteView (*run)(const KernelInputs&, KernelScratch&);
};

const std::array<KernelCase, 5>& kernel_cases() {
  static const std::array<KernelCase, 5> cases = {{
      {"merge_geometry_row", true, run_merge_geometry_row},
      {"neville4_many", true, run_neville4_many},
      {"neville4_rows", true, run_neville4_rows},
      {"criterion_terms", true, run_criterion_terms},
      {"gbp_contrib_row", false, run_gbp_contrib_row},
  }};
  return cases;
}

/// FNV-1a over the raw output bytes, folded to 32 bits so the value is
/// exactly representable in a manifest double.
double output_checksum(ByteView b) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < b.size; ++i) {
    h ^= b.data[i];
    h *= 16777619u;
  }
  return static_cast<double>(h);
}

/// Best-of-5 self-timed ns/sample with the currently forced backend (the
/// google-benchmark rows give the full statistical treatment; this is the
/// single figure the manifest gauges carry).
double kernel_ns_per_sample(const KernelCase& kc, const KernelInputs& in,
                            KernelScratch& s) {
  const int iters = bench::fast_mode() ? 200 : 2000;
  double best_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    for (int i = 0; i < iters; ++i) kc.run(in, s);
    const double per_call = timer.elapsed_s() / static_cast<double>(iters);
    if (per_call < best_s) best_s = per_call;
  }
  return best_s * 1e9 / static_cast<double>(kKernelSamples);
}

constexpr kn::Backend kAllBackends[] = {kn::Backend::kScalar,
                                        kn::Backend::kSse2,
                                        kn::Backend::kAvx2};

/// One google-benchmark row per kernel x available backend, named
/// `kernels/<kernel>/<backend>`, so regressions are attributable to the
/// exact pair. Registered at runtime because availability is a runtime
/// property of the host CPU.
void register_kernel_rows() {
  for (kn::Backend b : kAllBackends) {
    if (!kn::backend_available(b)) continue;
    for (const KernelCase& kc : kernel_cases()) {
      const std::string name =
          std::string("kernels/") + kc.name + "/" + kn::backend_name(b);
      benchmark::RegisterBenchmark(
          name.c_str(), [kcp = &kc, b](benchmark::State& state) {
            kn::force_backend(b);
            const KernelInputs& in = kernel_inputs();
            KernelScratch s;
            for (auto _ : state) {
              const ByteView out = kcp->run(in, s);
              benchmark::DoNotOptimize(out.data);
              benchmark::ClobberMemory();
            }
            state.SetItemsProcessed(
                static_cast<std::int64_t>(state.iterations()) *
                static_cast<std::int64_t>(kKernelSamples));
          });
    }
  }
}

/// Bit-exactness cross-check plus manifest: scalar is the reference; every
/// available SIMD backend must reproduce it byte-for-byte (the same
/// contract tests/test_kernels.cpp enforces, re-checked here on the bench
/// inputs and turned into gated manifest results). Returns nonzero — and
/// therefore fails the bench and CI — on any mismatch.
int kernels_manifest_body() {
  const KernelInputs& in = kernel_inputs();
  const std::array<KernelCase, 5>& cases = kernel_cases();
  const kn::Backend session = kn::active();

  telemetry::MetricsRegistry reg;
  telemetry::RunManifest man("micro_kernels");
  man.add_workload("samples", static_cast<double>(kKernelSamples));
  man.add_workload("kernels", static_cast<double>(cases.size()));
  man.add_workload("fast_mode", bench::fast_mode() ? 1.0 : 0.0);

  Table t("Kernel API backends: scalar vs SIMD (" +
          std::string(kn::backend_name(session)) + " active)");
  t.header({"Kernel", "Backend", "ns/sample", "Speedup", "Bit-exact"});

  KernelScratch s;
  double all_match = 1.0;
  for (const KernelCase& kc : cases) {
    kn::force_backend(kn::Backend::kScalar);
    const ByteView rv = kc.run(in, s);
    const std::vector<std::uint8_t> ref(rv.data, rv.data + rv.size);
    const double scalar_ns = kernel_ns_per_sample(kc, in, s);
    const std::string base = std::string("kernel.") + kc.name;
    if (kc.portable_checksum)
      man.add_result(std::string("checksum.") + kc.name,
                     output_checksum({ref.data(), ref.size()}));
    else
      reg.gauge(base + ".checksum")
          .set(output_checksum({ref.data(), ref.size()}));
    reg.gauge(base + ".scalar.ns_per_sample").set(scalar_ns);
    t.row({kc.name, "scalar", Table::num(scalar_ns, 2), "1.00",
           "reference"});

    double kernel_match = 1.0;
    for (kn::Backend b : {kn::Backend::kSse2, kn::Backend::kAvx2}) {
      if (!kn::backend_available(b)) continue;
      kn::force_backend(b);
      const ByteView bv = kc.run(in, s);
      const bool match = bv.size == ref.size() &&
                         std::memcmp(bv.data, ref.data(), ref.size()) == 0;
      if (!match) kernel_match = 0.0;
      const double ns = kernel_ns_per_sample(kc, in, s);
      const std::string bb = base + "." + kn::backend_name(b);
      reg.gauge(bb + ".match").set(match ? 1.0 : 0.0);
      reg.gauge(bb + ".ns_per_sample").set(ns);
      reg.gauge(bb + ".speedup").set(ns > 0.0 ? scalar_ns / ns : 0.0);
      t.row({kc.name, kn::backend_name(b), Table::num(ns, 2),
             Table::num(ns > 0.0 ? scalar_ns / ns : 0.0, 2),
             match ? "yes" : "NO"});
    }
    // Aggregated over the backends available on this machine (vacuously
    // 1 when none), so the key exists — and is 1.0 — in every baseline
    // regardless of host CPU.
    man.add_result(std::string("simd_matches.") + kc.name, kernel_match);
    if (kernel_match == 0.0) all_match = 0.0;
  }
  man.add_result("simd_bitexact", all_match);
  reg.gauge("kernel.active_backend").set(static_cast<double>(session));
  kn::force_backend(session);

  man.set_metrics(&reg);
  bench::write_manifest(man);
  t.note("scalar is the bit-exact reference (tests/test_kernels.cpp); "
         "ESARP_KERNELS=scalar|sse2|avx2|auto overrides the dispatch "
         "(docs/performance.md)");
  t.print(std::cout);
  if (all_match != 1.0) {
    std::cerr << "micro_kernels: SIMD backend diverged from the scalar "
                 "reference\n";
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_kernel_rows();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The manifest / bit-exactness pass runs regardless of any
  // --benchmark_filter, so the gated evidence is always complete.
  return esarp::bench::guarded_main("micro_kernels", kernels_manifest_body);
}
