#include "autofocus/integrated.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/assert.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/workload.hpp"
#include "sar/kernels.hpp"

namespace esarp::af {

std::vector<std::pair<std::size_t, std::size_t>>
select_aoi_blocks(const sar::SubapertureImage& img, const AfParams& p,
                  std::size_t count) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  if (img.n_theta() < p.block_rows || img.n_range() < p.block_cols)
    return blocks;

  // Greedy brightest-first selection with exclusion of already-covered
  // regions (a block needs structure for the criterion to have a peak,
  // and overlapping blocks would double-count the same scatterer).
  struct Candidate {
    double energy;
    std::size_t ti, tj;
  };
  std::vector<Candidate> cands;
  const std::size_t step_t = std::max<std::size_t>(1, p.block_rows / 2);
  const std::size_t step_r = std::max<std::size_t>(1, p.block_cols / 2);
  for (std::size_t i = 0; i + p.block_rows <= img.n_theta(); i += step_t) {
    for (std::size_t j = 0; j + p.block_cols <= img.n_range(); j += step_r) {
      double e = 0.0;
      for (std::size_t r = 0; r < p.block_rows; ++r)
        for (std::size_t c = 0; c < p.block_cols; ++c)
          e += std::norm(img.data(i + r, j + c));
      if (e > 0.0) cands.push_back({e, i, j});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.energy > b.energy;
            });

  for (const auto& c : cands) {
    if (blocks.size() >= count) break;
    bool overlaps = false;
    for (const auto& [bi, bj] : blocks) {
      const bool sep_t = c.ti + p.block_rows <= bi || bi + p.block_rows <= c.ti;
      const bool sep_r = c.tj + p.block_cols <= bj || bj + p.block_cols <= c.tj;
      if (!(sep_t || sep_r)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) blocks.emplace_back(c.ti, c.tj);
  }
  return blocks;
}

BlockPair project_contribution_blocks(const sar::SubapertureImage& a,
                                      const sar::SubapertureImage& b,
                                      const sar::RadarParams& p,
                                      const AfParams& p_af,
                                      std::size_t parent_theta_bin,
                                      std::size_t parent_range_bin,
                                      OpCounts* tally) {
  ESARP_EXPECTS(a.level == b.level);
  const sar::MergeLevelGeom geom = sar::merge_level_geom(p, a.level + 1);
  ESARP_EXPECTS(parent_theta_bin + p_af.block_rows <= geom.n_theta_parent);
  ESARP_EXPECTS(parent_range_bin + p_af.block_cols <= p.n_range);
  const sar::ChildGrid& grid = geom.child;

  BlockPair bp;
  bp.minus = Array2D<cf32>(p_af.block_rows, p_af.block_cols);
  bp.plus = Array2D<cf32>(p_af.block_rows, p_af.block_cols);

  // The sampled contributions come back referenced to the carrier at the
  // sampled range (the carrier-aware cubic kernel re-references there);
  // across the block that is still a fast fringe per column. Remove it per
  // block column so the criterion's own Neville interpolation sees a
  // smooth signal (a point target's phase becomes locally constant).
  const auto dechirp = [&] {
    const double k_phase = 4.0 * kPi / p.wavelength_m();
    std::vector<cf32> t(p_af.block_cols);
    for (std::size_t j = 0; j < p_af.block_cols; ++j) {
      const double r = p.near_range_m +
                       static_cast<double>(parent_range_bin + j) *
                           p.range_bin_m;
      const double ph = -std::fmod(k_phase * r, 2.0 * kPi);
      t[j] = {static_cast<float>(std::cos(ph)),
              static_cast<float>(std::sin(ph))};
    }
    return t;
  }();

  const auto va = a.data.view();
  const auto vb = b.data.view();
  const auto fetch_a = [&](int it, int ir) -> cf32 {
    return va(static_cast<std::size_t>(it), static_cast<std::size_t>(ir));
  };
  const auto fetch_b = [&](int it, int ir) -> cf32 {
    return vb(static_cast<std::size_t>(it), static_cast<std::size_t>(ir));
  };

  const float r0f = static_cast<float>(p.near_range_m);
  const float drf = static_cast<float>(p.range_bin_m);
  std::vector<sar::MergeGeom> geom_row(p_af.block_cols);
  for (std::size_t i = 0; i < p_af.block_rows; ++i) {
    const float theta = geom.theta_of_row(p, parent_theta_bin + i);
    const float cr = 2.0f * geom.d * fastmath::poly_cos(theta);
    sar::kernels::merge_geometry_row(r0f, drf, parent_range_bin,
                                     p_af.block_cols, cr, geom.d2,
                                     geom.inv_2d, geom_row.data());
    for (std::size_t j = 0; j < p_af.block_cols; ++j) {
      const sar::MergeGeom& g = geom_row[j];
      // Cubic sampling: the measurement must resolve sub-bin shifts, so
      // it uses the high-quality kernel even when the merges themselves
      // run the cheap nearest-neighbour one.
      bp.minus(i, j) = dechirp[j] *
                       sar::sample_child(grid, g.r1, g.theta1,
                                         sar::Interp::kCubic, false,
                                         fetch_a);
      bp.plus(i, j) = dechirp[j] *
                      sar::sample_child(grid, g.r2, g.theta2,
                                        sar::Interp::kCubic, false,
                                        fetch_b);
    }
  }
  if (tally) *tally += project_block_ops(p_af);
  return bp;
}

OpCounts project_block_ops(const AfParams& criterion) {
  return static_cast<std::uint64_t>(criterion.block_rows) *
             criterion.block_cols *
             (sar::kMergePixelOps + 2 * sar::kNeville4Ops +
              OpCounts{.fadd = 16, .fmul = 32, .load = 16}) +
         static_cast<std::uint64_t>(criterion.block_rows) * sar::kMergeRowOps;
}

OpCounts estimate_pair_ops(const AfParams& criterion, std::size_t n_blocks) {
  const std::uint64_t steps =
      static_cast<std::uint64_t>(criterion.shift_candidates.size()) *
      criterion.windows * criterion.samples_per_row;
  return static_cast<std::uint64_t>(n_blocks) *
         (project_block_ops(criterion) + steps * per_sample_ops(criterion));
}

PairEstimate estimate_pair_shift(const sar::SubapertureImage& a,
                                 const sar::SubapertureImage& b,
                                 const sar::RadarParams& p,
                                 const IntegratedOptions& opt,
                                 OpCounts* ops_out, std::size_t* sweeps_out) {
  OpCounts local_ops;
  std::size_t local_sweeps = 0;
  OpCounts* ops = ops_out != nullptr ? ops_out : &local_ops;
  std::size_t* sweeps = sweeps_out != nullptr ? sweeps_out : &local_sweeps;
  const AfParams& cp = opt.criterion;
  // Select bright regions on the trailing child's own grid, then map each
  // region's brightest pixel THROUGH WORLD COORDINATES to the parent grid
  // (the polar angle of a fixed scene point differs between the child and
  // parent phase centres), and centre the parent block on it. Centring
  // matters: the criterion's window sweep is symmetric in the tested
  // shift only when the dominant scatterer sits mid-block.
  const auto child_blocks = select_aoi_blocks(a, cp, opt.blocks_per_merge);
  const sar::MergeLevelGeom geom = sar::merge_level_geom(p, a.level + 1);
  const double x_parent = 0.5 * (a.x_center + b.x_center);
  const sar::PolarGrid child_grid(p, a.n_theta());
  const sar::PolarGrid parent_grid(p, geom.n_theta_parent);
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  for (const auto& [ti, tj] : child_blocks) {
    // Brightest pixel within the selected child block.
    std::size_t bi = ti, bj = tj;
    double best = -1.0;
    for (std::size_t r = 0; r < cp.block_rows; ++r)
      for (std::size_t c = 0; c < cp.block_cols; ++c) {
        const double m = std::norm(a.data(ti + r, tj + c));
        if (m > best) {
          best = m;
          bi = ti + r;
          bj = tj + c;
        }
      }
    // World position of the bright pixel as seen from the child centre...
    const double th_a = child_grid.theta_of(bi);
    const double r_a = child_grid.r_of(bj);
    const double px = a.x_center + r_a * std::cos(th_a);
    const double py = r_a * std::sin(th_a);
    // ...re-expressed about the parent centre.
    const double r_p = std::hypot(px - x_parent, py);
    const double th_p = std::atan2(py, px - x_parent);
    const long pti = parent_grid.theta_bin(th_p);
    const long prj = parent_grid.range_bin_nearest(r_p);
    if (pti < 0 || prj < 0) continue; // outside the parent sector/swath
    const std::size_t pt = std::min<std::size_t>(
        pti > static_cast<long>(cp.block_rows / 2)
            ? static_cast<std::size_t>(pti) - cp.block_rows / 2
            : 0,
        geom.n_theta_parent - cp.block_rows);
    const std::size_t pr = std::min<std::size_t>(
        prj > static_cast<long>(cp.block_cols / 2 - 1)
            ? static_cast<std::size_t>(prj) - (cp.block_cols / 2 - 1)
            : 0,
        p.n_range - cp.block_cols);
    blocks.emplace_back(pt, pr);
  }
  if (blocks.empty()) return {0.0f, 1.0};

  // Index of the zero (or closest-to-zero) candidate for the gain metric.
  std::size_t zero_idx = 0;
  for (std::size_t i = 1; i < cp.shift_candidates.size(); ++i)
    if (std::abs(cp.shift_candidates[i]) <
        std::abs(cp.shift_candidates[zero_idx]))
      zero_idx = i;

  double weight_sum = 0.0;
  double shift_sum = 0.0;
  double gain_sum = 0.0;
  for (const auto& [ti, tj] : blocks) {
    const BlockPair pair =
        project_contribution_blocks(a, b, p, cp, ti, tj, ops);
    const CriterionResult res = criterion_sweep(pair.minus, pair.plus, cp);
    *ops += res.ops;
    ++*sweeps;
    const double peak = res.criteria[res.best_index];
    const double zero = res.criteria[zero_idx];
    if (peak <= 0.0) continue;
    // Robustness gates: reject blocks where one child barely contributes
    // (sector-edge effects) or where the sweep saturates at a candidate
    // extreme (the true shift is outside the tested range).
    double e_minus = 0.0, e_plus = 0.0;
    for (std::size_t r = 0; r < cp.block_rows; ++r)
      for (std::size_t c = 0; c < cp.block_cols; ++c) {
        e_minus += std::norm(pair.minus(r, c));
        e_plus += std::norm(pair.plus(r, c));
      }
    const double e_lo = std::min(e_minus, e_plus);
    const double e_hi = std::max(e_minus, e_plus);
    if (e_hi <= 0.0 || e_lo / e_hi < 0.4) continue;
    if (res.best_index <= 1 || res.best_index + 2 >= res.criteria.size())
      continue;

    // Parabolic refinement of the peak over the candidate grid.
    double shift = res.best_shift(cp);
    const std::size_t bi2 = res.best_index;
    if (bi2 > 0 && bi2 + 1 < res.criteria.size()) {
      const double cm = res.criteria[bi2 - 1];
      const double c0 = res.criteria[bi2];
      const double cp1 = res.criteria[bi2 + 1];
      const double denom = cm - 2.0 * c0 + cp1;
      if (denom < 0.0) {
        const double step = cp.shift_candidates[bi2 + 1] -
                            cp.shift_candidates[bi2];
        shift += 0.5 * step * (cm - cp1) / denom;
      }
    }

    shift_sum += peak * shift;
    weight_sum += peak;
    gain_sum += zero > 0.0 ? peak / zero : 1.0;
  }
  if (weight_sum <= 0.0) return {0.0f, 1.0};
  return {static_cast<float>(shift_sum / weight_sum),
          gain_sum / static_cast<double>(blocks.size())};
}

IntegratedResult ffbp_with_autofocus(const Array2D<cf32>& data,
                                     const sar::RadarParams& p,
                                     const IntegratedOptions& opt) {
  opt.criterion.validate();
  ESARP_EXPECTS(opt.blocks_per_merge >= 1);

  IntegratedResult res;
  std::vector<sar::SubapertureImage> current =
      sar::initial_subapertures(data, p);
  const std::size_t n_levels = p.merge_levels();

  for (std::size_t level = 1; level <= n_levels; ++level) {
    std::vector<sar::SubapertureImage> next;
    next.reserve(current.size() / 2);
    for (std::size_t i = 0; i + 1 < current.size(); i += 2) {
      float shift = 0.0f;
      double gain = 1.0;
      if (level >= opt.first_level) {
        const PairEstimate est = estimate_pair_shift(
            current[i], current[i + 1], p, opt, &res.ops, &res.sweeps_run);
        // Confidence gate: a decisive criterion peak is required before
        // touching the data (paper: the *best possible match* is chosen —
        // if zero shift already matches, nothing is compensated).
        shift = est.applied(opt.min_gain);
        gain = est.gain;
        res.corrections.push_back({level, i / 2, shift, gain});
      }
      next.push_back(sar::merge_pair_compensated(
          current[i], current[i + 1], p, opt.ffbp, shift, &res.ops));
    }
    current = std::move(next);
  }

  ESARP_ENSURES(current.size() == 1);
  res.image = std::move(current.front());

  const std::uint64_t total_pixels =
      static_cast<std::uint64_t>(n_levels) * p.n_pulses * p.n_range;
  res.host_work.ops = res.ops;
  res.host_work.scattered_reads = 2 * total_pixels;
  res.host_work.stream_write_bytes = total_pixels * sizeof(cf32);
  return res;
}

} // namespace esarp::af
