// Binary dataset I/O: raw-data matrices and images with their radar
// parameters, in a small self-describing container ("ESRP" magic, version,
// dimensions, parameter block, CRC-32 of the payload). Lets the expensive
// products — simulated raw data, GBP reference images — be computed once
// and reloaded by examples and benches.
#pragma once

#include <cstdint>
#include <filesystem>

#include "common/array2d.hpp"
#include "common/types.hpp"
#include "sar/params.hpp"

namespace esarp::sar {

/// A stored dataset: complex matrix + the geometry it was produced with.
struct Dataset {
  RadarParams params;
  Array2D<cf32> data;
};

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer — the payload checksum.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes,
                                  std::uint32_t seed = 0);

/// Write `ds` to `path`. Throws ContractViolation on I/O failure.
void save_dataset(const std::filesystem::path& path, const Dataset& ds);

/// Read a dataset back. Throws ContractViolation on bad magic, unsupported
/// version, size mismatch, or checksum failure.
[[nodiscard]] Dataset load_dataset(const std::filesystem::path& path);

} // namespace esarp::sar
