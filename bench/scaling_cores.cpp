// Reproduces the paper's Section V-A scalability claim: coarse-grained
// data partitioning of the FFBP output "gives us natural scalability by
// increasing the number of compute nodes". Sweeps the SPMD mapping over
// 1..16 cores on the paper-size workload.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"
#include "epiphany/machine_metrics.hpp"

static int bench_body() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();

  Table t("FFBP SPMD scaling over Epiphany cores");
  t.header({"Cores", "Time (ms)", "Speedup vs 1 core", "Efficiency",
            "Avg power (W)", "Energy (mJ)"});
  CsvWriter csv(bench::out_dir() / "scaling_cores.csv",
                {"cores", "time_ms", "speedup", "efficiency", "power_w",
                 "energy_mj"});

  // The core counts are independent simulations of the same workload:
  // fan out across host threads (ESARP_JOBS); gathered by sweep index.
  const std::vector<int> core_counts = {1, 2, 4, 8, 16};
  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "simulating " << core_counts.size()
            << " core counts (" << pool.jobs() << " host thread(s))...\n";
  WallTimer sweep_timer;
  auto results = pool.run(core_counts.size(), [&](std::size_t i) {
    core::FfbpMapOptions opt;
    opt.n_cores = core_counts[i];
    return core::run_ffbp_epiphany(w.data, w.params, opt,
                                   bench::power_chip());
  });
  const double sweep_s = sweep_timer.elapsed_s();

  const double t1 = results.front().seconds;
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < core_counts.size(); ++i) {
    const int cores = core_counts[i];
    const auto& res = results[i];
    events += res.perf.engine_events;
    const double sp = t1 / res.seconds;
    const double eff = sp / cores;
    t.row({std::to_string(cores), bench::ms(res.seconds),
           Table::num(sp, 2), Table::num(eff * 100.0, 0) + " %",
           Table::num(res.energy.avg_watts, 2),
           Table::num(res.energy.total_j() * 1e3, 1)});
    csv.row_numeric({static_cast<double>(cores), res.seconds * 1e3, sp, eff,
                     res.energy.avg_watts, res.energy.total_j() * 1e3});
  }

  // Manifest for the 16-core configuration plus sweep-level engine
  // throughput (docs/performance.md).
  auto& head = results.back();
  telemetry::RunManifest man("scaling_cores");
  ep::fill_manifest(man, head.perf, head.energy);
  bench::add_workload(man, w.params);
  man.add_workload("n_cores", 16.0);
  bench::add_engine_stats(man, &head.metrics, events, sweep_s,
                          pool.jobs());
  bench::add_power_results(
      man, head.power,
      static_cast<double>(w.params.n_pulses * w.params.n_range));
  man.set_metrics(&head.metrics);
  bench::write_manifest(man);
  t.note("all configurations DMA-prefetch child rows; the 1-core row is "
         "the prefetching mapping, not the naive sequential version of "
         "Table I");
  t.note("sub-linear scaling at high core counts reflects the shared "
         "8 GB/s eLink and prefetch misses at late merge levels");
  t.print(std::cout);
  return 0;
}

int main() { return esarp::bench::guarded_main("scaling_cores", bench_body); }
