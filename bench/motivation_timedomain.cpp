// Quantifies the paper's Section-I motivation for time-domain processing:
// the frequency-domain (Range-Doppler / FFT) technique "is computationally
// efficient but requires that the flight trajectory is linear"; time-domain
// back-projection "can compensate for non-linear flight tracks" — at a
// higher computational cost that FFBP then factorises down.
//
// Sweeps a smooth cross-track path error and reports image peak retention
// for RDA, FFBP, and FFBP with the integrated autofocus loop, plus the
// modelled single-core i7 cost of each processor.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "hostmodel/host_model.hpp"
#include "autofocus/integrated.hpp"
#include "sar/ffbp.hpp"
#include "sar/rda.hpp"
#include "sar/scene.hpp"

static int bench_body() {
  using namespace esarp;
  const auto p = sar::test_params(64, 161);
  sar::Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  const host::HostModel intel;
  const af::IntegratedOptions af_opt;

  // Clean-track peaks (the 100 % reference per processor).
  const auto clean = sar::simulate_compressed(p, s);
  const double rda100 =
      peak_magnitude(sar::range_doppler(clean, p).image);
  const double ffbp100 =
      peak_magnitude(sar::ffbp(clean, p, af_opt.ffbp).image.data);

  // Non-constant platform speed: a smooth ALONG-track deviation, so the
  // slow-time samples are no longer uniform. The FFT-based processor has
  // no way to use the recorded positions; back-projection honours them in
  // its geometry (and autofocus handles the case where even the recording
  // is missing).
  Table t("Non-uniform flight track: frequency domain vs time domain");
  t.header({"Speed error (m)", "RDA peak", "FFBP nominal track",
            "FFBP recorded track", "FFBP + autofocus"});
  CsvWriter csv(bench::out_dir() / "motivation_timedomain.csv",
                {"error_m", "rda", "ffbp_nominal", "ffbp_recorded",
                 "ffbp_af"});

  for (double amp_m : {0.0, 4.0, 8.0, 12.0}) {
    sar::FlightPathError err;
    err.dx.resize(p.n_pulses);
    for (std::size_t i = 0; i < p.n_pulses; ++i)
      err.dx[i] = amp_m * std::sin(2.0 * kPi * static_cast<double>(i) /
                                   static_cast<double>(p.n_pulses));
    const auto data = sar::simulate_compressed(p, s, err);

    const double rda =
        peak_magnitude(sar::range_doppler(data, p).image) / rda100;
    const double bp_nom =
        peak_magnitude(sar::ffbp(data, p, af_opt.ffbp).image.data) /
        ffbp100;
    const double bp_rec =
        peak_magnitude(
            sar::ffbp(data, p, af_opt.ffbp, &err).image.data) /
        ffbp100;
    const double bp_af =
        peak_magnitude(af::ffbp_with_autofocus(data, p, af_opt).image.data) /
        ffbp100;

    t.row({Table::num(amp_m, 1), Table::num(rda * 100, 0) + " %",
           Table::num(bp_nom * 100, 0) + " %",
           Table::num(bp_rec * 100, 0) + " %",
           Table::num(bp_af * 100, 0) + " %"});
    csv.row_numeric({amp_m, rda, bp_nom, bp_rec, bp_af});
  }

  // Arithmetic cost comparison on the clean run.
  const auto rda_res = sar::range_doppler(clean, p);
  const auto ffbp_res = sar::ffbp(clean, p);
  t.note("modelled single-core i7 time: RDA " +
         format_seconds(intel.seconds(rda_res.host_work)) + ", FFBP " +
         format_seconds(intel.seconds(ffbp_res.host_work)) + " (" +
         Table::num(static_cast<double>(ffbp_res.ops.flops()) /
                        static_cast<double>(rda_res.ops.flops()),
                    1) +
         "x the flops) — the efficiency edge frequency-domain processing "
         "gives up under non-linear tracks");
  t.note("peaks as % of each processor's own clean-track peak; sinusoidal "
         "along-track (speed) error; FFBP/autofocus use cubic merges");
  t.note("'recorded track' feeds the actual pulse positions into the "
         "back-projection geometry — the compensation the paper says only "
         "time-domain processing can do (Section I)");
  t.print(std::cout);
  return 0;
}

int main() { return esarp::bench::guarded_main("motivation_timedomain", bench_body); }
