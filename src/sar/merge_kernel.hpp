// The FFBP element-combining inner kernel — shared verbatim by the
// sequential host reference, the sequential-Epiphany kernel, and the
// 16-core SPMD kernel, so all three produce bit-identical images and are
// charged for exactly the same counted work.
//
// Geometry (paper eqs. 1-4, Fig. 3(b)): a parent subaperture pixel at polar
// position (r, theta) about the parent phase centre receives contributions
// from its two child subapertures whose phase centres sit at -l/2 and +l/2
// along the track (l = child subaperture length). The cosine theorem gives
// the child-relative coordinates:
//   r1 = sqrt(r^2 + d^2 + 2 r d cos(theta)),  d = l/2      (eq. 1)
//   r2 = sqrt(r^2 + d^2 - 2 r d cos(theta))                (eq. 2)
//   theta1 =        acos((r1^2 + d^2 - r^2) / (2 r1 d))    (eq. 3)
//   theta2 = pi -   acos((r2^2 + d^2 - r^2) / (2 r2 d))    (eq. 4)
// and the element combining is a(r,theta) = a1(r1,theta1) + a2(r2,theta2)
// (eq. 5). The square roots, reciprocals and arccosines use the shared
// fastmath implementations (the paper's "less compute-intensive
// implementation of the square root", applied on both architectures).
#pragma once

#include "common/fastmath.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"
#include "sar/interp.hpp"

namespace esarp::sar {

/// Child-relative polar coordinates of one parent pixel.
struct MergeGeom {
  float r1, theta1; ///< in the trailing child (centre at -l/2)
  float r2, theta2; ///< in the leading child (centre at +l/2)
};

/// Compute eqs. 1-4. `r` is the parent pixel range, `cr = 2*d*cos(theta)`
/// is precomputed once per theta row (d = half the child spacing), `d2 =
/// d*d`, `inv_2d = 1/(2*d)`.
inline MergeGeom merge_geometry(float r, float cr, float d2, float inv_2d) {
  namespace fm = esarp::fastmath;
  const float r2v = r * r;
  const float base = r2v + d2;
  const float rcr = r * cr;
  const float r1sq = base + rcr; // eq. 1 squared
  const float r2sq = base - rcr; // eq. 2 squared
  const float r1 = fm::fast_sqrt(r1sq);
  const float r2 = fm::fast_sqrt(r2sq);
  // eq. 3: acos((r1^2 + d^2 - r^2) / (r1 * l)) with l = 2d.
  const float n1 = r1sq + d2 - r2v;
  const float n2 = r2sq + d2 - r2v;
  const float i1 = fm::fast_recip_pos(r1 > 0.0f ? r1 : 1.0f);
  const float i2 = fm::fast_recip_pos(r2 > 0.0f ? r2 : 1.0f);
  const float a1 = n1 * i1 * inv_2d;
  const float a2 = n2 * i2 * inv_2d;
  const float c1 = a1 > 1.0f ? 1.0f : (a1 < -1.0f ? -1.0f : a1);
  const float c2 = a2 > 1.0f ? 1.0f : (a2 < -1.0f ? -1.0f : a2);
  constexpr float pi = 3.14159265358979f;
  return {r1, fm::poly_acos(c1), r2, pi - fm::poly_acos(c2)};
}

/// Work of one merge_geometry call, matching the body above:
///   3 fmul + 3 fadd for the squared-range forms,
///   2 fast_sqrt, 2 fast_recip,
///   per child: 2 fadd (numerator) + 2 fmul (normalise) + clamp (2 fcmp),
///   2 poly_acos + 1 fadd (the pi - ... of eq. 4).
inline constexpr OpCounts kMergeGeomOps =
    OpCounts{.fadd = 3 + 4 + 1, .fmul = 3 + 4, .fcmp = 4 + 2} +
    2 * fastmath::kSqrtOps + 2 * fastmath::kRecipOps + 2 * fastmath::kAcosOps;

/// Work of turning the geometry into nearest-neighbour (range, angle)
/// indices for both children and combining (paper eq. 5):
///   per child: 2 fma (scale to bin coordinates) + 2 float->int + bounds
///   checks, 2 word loads; plus the complex accumulate (2 fadd) and the
///   2-word store of the parent pixel.
inline constexpr OpCounts kMergeIndexCombineOps{
    .fadd = 4, // complex accumulation of both children
    .fma = 4,  // bin-coordinate scaling (r and theta, both children)
    .fcmp = 8, // bounds checks
    .ialu = 12, // float->int conversions, address arithmetic
    .branch = 2,
    .load = 4,  // two complex child pixels
    .store = 2, // one complex parent pixel
};

/// Total per-pixel work of the nearest-neighbour merge inner loop.
inline constexpr OpCounts kMergePixelOps =
    kMergeGeomOps + kMergeIndexCombineOps;

/// Per-theta-row setup work (cos(theta) and derived constants, amortised
/// over n_range pixels).
inline constexpr OpCounts kMergeRowOps =
    fastmath::kCosOps + OpCounts{.fadd = 1, .fmul = 2, .ialu = 6};

/// Interpolation kernel used when sampling child subaperture images.
enum class Interp {
  kNearest, ///< the paper's "simplified (nearest neighbor) interpolation"
  kLinear,  ///< linear in range, nearest in angle
  kCubic,   ///< 4-point Neville in range, nearest in angle
};

/// Child-grid constants in single precision, precomputed once per merge.
struct ChildGrid {
  float theta_start; ///< lower edge of the angular sector
  float inv_dtheta;  ///< 1 / child angular bin width
  int n_theta;
  float r0;      ///< range of bin 0
  float dr;      ///< range-bin spacing
  float inv_dr;  ///< 1 / dr
  int n_range;
  float k_phase; ///< 4*pi/lambda, for the phase-compensated variant
  // Carrier rotation per range bin (k_phase * dr) and its phasor powers,
  // used by the carrier-aware linear/cubic kernels: the stored data's
  // phase is referenced to the bin grid, so neighbouring bins differ by a
  // fixed rotation that must be removed before complex interpolation and
  // restored at the interpolated position.
  float carrier_rad;  ///< k_phase * dr [radians per bin]
  cf32 rot_m1;        ///< e^{-i carrier_rad}
  cf32 rot_p1;        ///< e^{+i carrier_rad}
  cf32 rot_m2;        ///< e^{-2 i carrier_rad}
};

/// Sample one child image at child-relative polar position (rc, thc).
/// `fetch(it, ir)` returns the child pixel at integer indices and is only
/// invoked with it in [0, n_theta) and ir in [0, n_range). Out-of-sector /
/// out-of-swath positions contribute zero (the paper's "skip the additions
/// with zero when the indices are out of range").
///
/// This template is the single definition of the merge arithmetic: the
/// sequential host reference and the simulated Epiphany kernels instantiate
/// it with different fetchers but produce bit-identical pixels.
template <typename Fetch>
inline cf32 sample_child(const ChildGrid& g, float rc, float thc,
                         Interp interp, bool phase_compensate,
                         Fetch&& fetch) {
  namespace fm = esarp::fastmath;
  const float tf = (thc - g.theta_start) * g.inv_dtheta;
  const int it = static_cast<int>(tf); // containing angular bin
  if (tf < 0.0f || it >= g.n_theta) return {};
  const float rf = (rc - g.r0) * g.inv_dr;

  cf32 v{};
  switch (interp) {
    case Interp::kNearest: {
      const int ir = static_cast<int>(rf + 0.5f);
      if (rf < -0.5f || ir < 0 || ir >= g.n_range) return {};
      v = fetch(it, ir);
      if (phase_compensate) {
        // Residual range phase between the exact range and the bin grid.
        const float resid =
            g.k_phase * (rc - (g.r0 + static_cast<float>(ir) * g.dr));
        const cf32 ph{fm::poly_cos(resid), fm::poly_sin(resid)};
        v *= ph;
      }
      break;
    }
    case Interp::kLinear: {
      const int ir = static_cast<int>(rf);
      if (rf < 0.0f || ir + 1 >= g.n_range) return {};
      const float t = rf - static_cast<float>(ir);
      // Carrier-aware: de-reference the second node to bin ir's carrier
      // phase, interpolate the now-smooth signal, then restore the
      // carrier at the fractional position.
      const cf32 y0 = fetch(it, ir);
      const cf32 y1 = fetch(it, ir + 1) * g.rot_m1;
      const cf32 s = y0 + (y1 - y0) * t;
      const float ph = g.carrier_rad * t;
      v = s * cf32{fm::poly_cos(ph), fm::poly_sin(ph)};
      break;
    }
    case Interp::kCubic: {
      const int ir = static_cast<int>(rf);
      if (rf < 1.0f || ir + 2 >= g.n_range || ir < 1) return {};
      const float t = rf - static_cast<float>(ir) + 1.0f; // node offset
      // Carrier-aware Neville: nodes de-referenced to bin ir (node 1).
      const cf32 y[4] = {fetch(it, ir - 1) * g.rot_p1, fetch(it, ir),
                         fetch(it, ir + 1) * g.rot_m1,
                         fetch(it, ir + 2) * g.rot_m2};
      const cf32 s = neville4(y, t);
      const float ph = g.carrier_rad * (t - 1.0f);
      v = s * cf32{fm::poly_cos(ph), fm::poly_sin(ph)};
      break;
    }
  }
  return v;
}

/// One complex multiply expressed as mul/fma pairs.
inline constexpr OpCounts kComplexMulOps{.fmul = 2, .fma = 2};

/// Extra per-child-sample work of the carrier handling in the linear
/// kernel: one node de-reference, the fractional re-reference phasor
/// (poly cos+sin) and the result rotation.
inline constexpr OpCounts kCarrierLinearOps =
    2 * kComplexMulOps + fastmath::kCosOps + fastmath::kSinOps +
    OpCounts{.fmul = 1};

/// Extra per-child-sample work of the carrier handling in the cubic
/// kernel: three node de-references plus the fractional re-reference.
inline constexpr OpCounts kCarrierCubicOps =
    4 * kComplexMulOps + fastmath::kCosOps + fastmath::kSinOps +
    OpCounts{.fadd = 1, .fmul = 1};

/// Additional per-pixel work when the residual range phase is compensated
/// (the quality-improving merge variant; see FfbpOptions::phase_compensate):
/// one poly_sin + one poly_cos on the residual and a complex multiply.
inline constexpr OpCounts kPhaseCompensateOps =
    fastmath::kSinOps + fastmath::kCosOps +
    OpCounts{.fadd = 4, .fmul = 4, .fma = 2};

} // namespace esarp::sar
