#include "core/gbp_epiphany.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "epiphany/machine_metrics.hpp"
#include "sar/kernels.hpp"
#include "sar/polar.hpp"

namespace esarp::core {

namespace {

struct GbpShared {
  std::span<const cf32> data_ext; ///< raw pulses [n_pulses x n_range]
  std::span<cf32> image_ext;      ///< output [n_theta x n_range]
  std::vector<float> pulse_x;
};

ep::Task gbp_core_program(ep::CoreCtx& ctx, const sar::RadarParams& p,
                          GbpShared& st, int core_index, int n_cores) {
  const std::size_t n_range = p.n_range;
  const std::size_t row_bytes = n_range * sizeof(cf32);

  // Bank 1: output-row accumulator; banks 2-3: two streamed pulse rows.
  auto acc = ctx.local().alloc_in_bank<cf32>(n_range, 1);
  auto pulse_a = ctx.local().alloc_in_bank<cf32>(n_range, 2);
  auto pulse_b = ctx.local().alloc_in_bank<cf32>(n_range, 3);

  const sar::PolarGrid grid(p, p.n_pulses);
  sar::GbpGrid g{};
  g.r0 = static_cast<float>(p.near_range_m);
  g.inv_dr = static_cast<float>(1.0 / p.range_bin_m);
  g.n_range = static_cast<int>(n_range);
  g.k_phase = 4.0 * kPi / p.wavelength_m();

  const std::size_t rows_total = grid.n_theta;
  const std::size_t begin =
      static_cast<std::size_t>(core_index) * rows_total / n_cores;
  const std::size_t end =
      (static_cast<std::size_t>(core_index) + 1) * rows_total / n_cores;

  // Host-side pixel-position scratch (constant along a row, so it is
  // computed once per row instead of once per pulse pair — same values).
  std::vector<float> px(n_range), py(n_range);

  for (std::size_t i = begin; i < end; ++i) {
    const double theta = grid.theta_of(i);
    const float cos_t = static_cast<float>(std::cos(theta));
    const float sin_t = static_cast<float>(std::sin(theta));
    for (std::size_t j = 0; j < n_range; ++j) {
      const float r = static_cast<float>(grid.r_of(j));
      px[j] = r * cos_t;
      py[j] = r * sin_t;
    }
    std::fill(acc.begin(), acc.end(), cf32{});

    for (std::size_t pu = 0; pu < p.n_pulses; pu += 2) {
      // Stream the next two pulses through the data banks.
      if (ctx.config().burst_transfers) {
        const ep::DmaSeg segs[2] = {
            {pulse_a.data(), st.data_ext.data() + pu * n_range, row_bytes},
            {pulse_b.data(), st.data_ext.data() + (pu + 1) * n_range,
             row_bytes}};
        co_await ctx.wait(ctx.dma_read_ext_burst(segs));
      } else {
        ep::DmaJob j1 = ctx.dma_read_ext(
            pulse_a.data(), st.data_ext.data() + pu * n_range, row_bytes);
        ep::DmaJob j2 = ctx.dma_read_ext(
            pulse_b.data(), st.data_ext.data() + (pu + 1) * n_range,
            row_bytes);
        co_await ctx.wait(j1);
        co_await ctx.wait(j2);
      }

      // Two row-kernel calls keep the per-pixel accumulation order (pulse
      // pu, then pu + 1) of the original scalar loop — bit-identical image.
      sar::kernels::gbp_contrib_row(px.data(), py.data(), st.pulse_x[pu],
                                    pulse_a.data(), g, acc.data(), n_range);
      sar::kernels::gbp_contrib_row(px.data(), py.data(), st.pulse_x[pu + 1],
                                    pulse_b.data(), g, acc.data(), n_range);
      co_await ctx.compute(2 * static_cast<std::uint64_t>(n_range) *
                           sar::kGbpContribOps);
    }
    co_await ctx.write_ext(st.image_ext.data() + i * n_range, acc.data(),
                           row_bytes);
  }
}

} // namespace

GbpSimResult run_gbp_epiphany(const Array2D<cf32>& data,
                              const sar::RadarParams& p, int n_cores,
                              ep::ChipConfig cfg, ep::Cycles max_cycles) {
  p.validate();
  ESARP_EXPECTS(n_cores >= 1 && n_cores <= cfg.core_count());
  ESARP_EXPECTS(p.n_pulses % 2 == 0);
  ESARP_EXPECTS(data.rows() == p.n_pulses && data.cols() == p.n_range);

  const std::size_t total = p.n_pulses * p.n_range;
  ep::Machine m(cfg, std::max<std::size_t>(2 * total * sizeof(cf32) +
                                               (1u << 20),
                                           8u << 20));
  GbpShared st;
  auto data_ext = m.ext().alloc<cf32>(total);
  std::copy(data.flat().begin(), data.flat().end(), data_ext.begin());
  st.data_ext = data_ext;
  st.image_ext = m.ext().alloc<cf32>(total);
  st.pulse_x.resize(p.n_pulses);
  for (std::size_t pu = 0; pu < p.n_pulses; ++pu)
    st.pulse_x[pu] = static_cast<float>(p.pulse_x(pu));

  for (int c = 0; c < n_cores; ++c) {
    m.launch(c, [&p, &st, c, n_cores](ep::CoreCtx& ctx) {
      return gbp_core_program(ctx, p, st, c, n_cores);
    });
  }

  GbpSimResult res;
  res.cycles = m.run(max_cycles);
  res.seconds = m.seconds(res.cycles);
  res.perf = m.report();
  res.power = ep::collect_power(m, res.perf);
  res.energy = res.power.energy;
  res.image = Array2D<cf32>(p.n_pulses, p.n_range);
  std::copy(st.image_ext.begin(), st.image_ext.end(), res.image.data());
  if (const fault::FaultInjector* fi = m.fault_injector()) {
    res.faults = fi->summary();
  }
  return res;
}

} // namespace esarp::core
