// Static mapping analyzer (esarp lint): every checker must fire on a
// seeded violation, every shipped mapping must lint clean, and the
// analytic cost model must track full simulation on the tier-1 scenes
// within the pinned error band (docs/static-analysis.md).
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/cost_model.hpp"
#include "analysis/lint_report.hpp"
#include "autofocus/workload.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/autofocus_epiphany.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "core/mapping_desc.hpp"
#include "sar/scene.hpp"

namespace esarp {
namespace {

using analysis::LintFinding;
using analysis::MappingSpec;

/// Maximum |predicted - simulated| / simulated pinned by the issue: the
/// analytic model must stay within 15% of full simulation on the tier-1
/// scenes. Measured errors are recorded in docs/static-analysis.md.
constexpr double kCycleBand = 0.15;
constexpr double kEnergyBand = 0.15;

std::size_t count_check(const std::vector<LintFinding>& fs,
                        const std::string& check) {
  std::size_t n = 0;
  for (const auto& f : fs)
    if (f.check == check) ++n;
  return n;
}

bool has_message(const std::vector<LintFinding>& fs,
                 const std::string& check, const std::string& substr) {
  for (const auto& f : fs)
    if (f.check == check && f.message.find(substr) != std::string::npos)
      return true;
  return false;
}

std::string dump(const std::vector<LintFinding>& fs) {
  std::string out;
  for (const auto& f : fs) out += analysis::format(f) + "\n";
  return out;
}

double rel_error(double predicted, double simulated) {
  return std::abs(predicted - simulated) / simulated;
}

/// All shipped mapping descriptors at tier-1 sizes.
std::vector<MappingSpec> shipped_specs() {
  const sar::RadarParams p = sar::test_params(32, 101);
  std::vector<MappingSpec> specs;
  core::FfbpMapOptions ffbp;
  specs.push_back(core::describe_ffbp_mapping(p, ffbp));
  core::FfbpMapOptions seq;
  seq.n_cores = 1;
  seq.prefetch = false;
  specs.push_back(core::describe_ffbp_mapping(p, seq));
  core::FfbpMapOptions db;
  db.double_buffer = true;
  specs.push_back(core::describe_ffbp_mapping(p, db));
  const af::IntegratedOptions aopt;
  core::FfbpMapOptions withaf;
  withaf.autofocus = &aopt;
  specs.push_back(core::describe_ffbp_mapping(sar::test_params(64, 161),
                                              withaf));
  specs.push_back(core::describe_gbp_mapping(p, 16));
  const af::AfParams afp;
  core::AfMapOptions compact;
  specs.push_back(core::describe_autofocus_mpmd(4, afp, compact));
  core::AfMapOptions scattered;
  scattered.placement = core::AfPlacement::kScattered;
  specs.push_back(core::describe_autofocus_mpmd(4, afp, scattered));
  specs.push_back(core::describe_autofocus_sequential(4, afp));
  return specs;
}

// --- legality: shipped mappings ------------------------------------------

TEST(AnalyzerShipped, AllShippedMappingsLintClean) {
  for (const MappingSpec& spec : shipped_specs()) {
    const auto findings = analysis::analyze(spec);
    EXPECT_TRUE(findings.empty())
        << "mapping '" << spec.name << "':\n" << dump(findings);
  }
}

TEST(AnalyzerShipped, AnalyzeIsDeterministicAndSorted) {
  for (const MappingSpec& spec : shipped_specs()) {
    const auto a = analysis::analyze(spec);
    const auto b = analysis::analyze(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(analysis::format(a[i]), analysis::format(b[i]));
  }
}

// --- seeded violations, one per checker ----------------------------------

/// Two-core skeleton with one shared barrier, legal by construction.
MappingSpec two_core_spec() {
  MappingSpec spec;
  spec.name = "synthetic";
  spec.family = "spmd";
  spec.barriers.push_back(analysis::BarrierDecl{"sync", 2, {0, 1}});
  for (int id : {0, 1}) {
    analysis::CoreSpec c;
    c.id = id;
    c.role = "worker";
    c.sync.push_back(
        analysis::SyncOp{analysis::SyncOp::Kind::kBarrier, 0, 1, "phase"});
    spec.cores.push_back(std::move(c));
  }
  return spec;
}

TEST(AnalyzerCheckers, CoreIdFlagsOffChipAndDuplicateIds) {
  MappingSpec spec = two_core_spec();
  spec.cores[1].id = 16; // off the 4x4 mesh
  analysis::CoreSpec dup;
  dup.id = 0;
  spec.cores.push_back(dup);
  spec.barriers.clear();
  for (auto& c : spec.cores) c.sync.clear();
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "core-id", "off-chip"))
      << dump(findings);
  EXPECT_TRUE(has_message(findings, "core-id", "mapped 2 times"))
      << dump(findings);
}

TEST(AnalyzerCheckers, LocalFitFlagsOverflowCollisionAndBadBank) {
  MappingSpec spec = two_core_spec();
  // Bank 2 filled past bank 3's base (collision), then a buffer that
  // cannot fit anywhere (overflow), then a bank the chip does not have.
  spec.cores[0].allocs = {
      {"big", 2, 12000, "setup"},
      {"late", 3, 9000, "setup"},
      {"ghost", 7, 8, "setup"},
  };
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "local-fit", "collision"))
      << dump(findings);
  EXPECT_TRUE(has_message(findings, "local-fit", "overflow"))
      << dump(findings);
  EXPECT_TRUE(has_message(findings, "local-fit", "does not exist"))
      << dump(findings);
}

TEST(AnalyzerCheckers, LocalFitRejectsPaperSizeDoubleBuffer) {
  // The FfbpMapOptions doc promises the 1001-bin double-buffered prefetch
  // cannot fit the four-bank budget; the static checker must prove it
  // without running the allocator.
  core::FfbpMapOptions opt;
  opt.double_buffer = true;
  const auto findings = analysis::analyze(
      core::describe_ffbp_mapping(sar::test_params(32, 1001), opt));
  EXPECT_GT(count_check(findings, "local-fit"), 0u) << dump(findings);
  EXPECT_TRUE(has_message(findings, "local-fit", "overflow"))
      << dump(findings);
}

TEST(AnalyzerCheckers, BarrierFlagsArityMismatchAndMissingMember) {
  MappingSpec spec = two_core_spec();
  spec.barriers[0].parties = 3;       // constructed for 3, 2 mapped
  spec.barriers[0].members = {0, 5};  // core 5 does not exist
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "barrier", "arity mismatch"))
      << dump(findings);
  EXPECT_TRUE(has_message(findings, "barrier", "not part of the mapping"))
      << dump(findings);
}

TEST(AnalyzerCheckers, BarrierFlagsUnbalancedCrossings) {
  MappingSpec spec = two_core_spec();
  spec.cores[0].sync[0].count = 2; // core 0 crosses twice, core 1 once
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "barrier", "unbalanced crossings"))
      << dump(findings);
  // The extra waiter also deadlocks the abstract execution.
  EXPECT_TRUE(has_message(findings, "deadlock", "blocked waiting on barrier"))
      << dump(findings);
}

TEST(AnalyzerCheckers, ChannelFlagsCountMismatchAndWrongEndpoint) {
  MappingSpec spec = two_core_spec();
  spec.barriers.clear();
  for (auto& c : spec.cores) c.sync.clear();
  spec.channels.push_back(analysis::ChannelDecl{"a->b", 0, 1, 8, 16});
  spec.cores[0].sync.push_back(
      analysis::SyncOp{analysis::SyncOp::Kind::kSend, 0, 3, "stream"});
  spec.cores[1].sync.push_back(
      analysis::SyncOp{analysis::SyncOp::Kind::kRecv, 0, 2, "stream"});
  // Core 1 also (bogusly) sends on a channel it only consumes.
  spec.cores[1].sync.push_back(
      analysis::SyncOp{analysis::SyncOp::Kind::kSend, 0, 1, "stream"});
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "channel", "sends on a channel produced"))
      << dump(findings);
  EXPECT_TRUE(has_message(findings, "channel", "send(s) vs"))
      << dump(findings);
}

TEST(AnalyzerCheckers, ChannelFlagsZeroCapacity) {
  MappingSpec spec = two_core_spec();
  spec.channels.push_back(analysis::ChannelDecl{"a->b", 0, 1, 0, 16});
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "channel", "capacity 0")) << dump(findings);
}

TEST(AnalyzerCheckers, DeadlockFlagsCrossedReceiveOrder) {
  MappingSpec spec = two_core_spec();
  spec.barriers.clear();
  for (auto& c : spec.cores) c.sync.clear();
  spec.channels.push_back(analysis::ChannelDecl{"a->b", 0, 1, 1, 16});
  spec.channels.push_back(analysis::ChannelDecl{"b->a", 1, 0, 1, 16});
  // Both sides receive before sending: classic wait-for cycle.
  spec.cores[0].sync = {
      {analysis::SyncOp::Kind::kRecv, 1, 1, "exchange"},
      {analysis::SyncOp::Kind::kSend, 0, 1, "exchange"},
  };
  spec.cores[1].sync = {
      {analysis::SyncOp::Kind::kRecv, 0, 1, "exchange"},
      {analysis::SyncOp::Kind::kSend, 1, 1, "exchange"},
  };
  const auto findings = analysis::analyze(spec);
  EXPECT_EQ(count_check(findings, "deadlock"), 2u) << dump(findings);
  EXPECT_TRUE(has_message(findings, "deadlock", "blocked receiving"))
      << dump(findings);
  // No other checker fires: the topology itself is legal.
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(AnalyzerCheckers, DeadlockFlagsCapacityBackpressureCycle) {
  MappingSpec spec = two_core_spec();
  spec.channels.push_back(analysis::ChannelDecl{"a->b", 0, 1, 2, 16});
  // Core 0 pushes 5 messages before the barrier; core 1 drains only after
  // it — backpressure parks core 0 at queue 2/2 and the barrier never fires.
  spec.cores[0].sync = {
      {analysis::SyncOp::Kind::kSend, 0, 5, "stream"},
      {analysis::SyncOp::Kind::kBarrier, 0, 1, "stream"},
  };
  spec.cores[1].sync = {
      {analysis::SyncOp::Kind::kBarrier, 0, 1, "stream"},
      {analysis::SyncOp::Kind::kRecv, 0, 5, "stream"},
  };
  const auto findings = analysis::analyze(spec);
  EXPECT_TRUE(has_message(findings, "deadlock", "queue 2/2 full"))
      << dump(findings);
  EXPECT_TRUE(has_message(findings, "deadlock", "blocked waiting on barrier"))
      << dump(findings);
}

TEST(AnalyzerCheckers, FindingFormatMirrorsCheckDiagnostics) {
  const LintFinding f{"local-fit", 3, "child_row1", "ffbp-setup", "boom"};
  EXPECT_EQ(analysis::format(f),
            "[local-fit] core 3 (child_row1, span ffbp-setup): boom");
  const LintFinding mapping_level{"barrier", -1, "sync", "", "arity"};
  EXPECT_EQ(analysis::format(mapping_level), "[barrier] (sync): arity");
}

// --- cost model vs simulation (tier-1 scenes) ----------------------------

TEST(CostModelValidation, FfbpSpmdWithinBand) {
  const sar::RadarParams p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  core::FfbpMapOptions opt;
  const auto pred = analysis::predict_cost(core::describe_ffbp_mapping(p, opt));
  const auto sim = core::run_ffbp_epiphany(data, p, opt);
  EXPECT_LT(rel_error(static_cast<double>(pred.makespan),
                      static_cast<double>(sim.cycles)),
            kCycleBand)
      << "predicted " << pred.makespan << " vs simulated " << sim.cycles;
  EXPECT_LT(rel_error(pred.energy.total_j(), sim.energy.total_j()),
            kEnergyBand)
      << "predicted " << pred.energy.total_j() << " J vs simulated "
      << sim.energy.total_j() << " J";
}

TEST(CostModelValidation, FfbpSequentialWithinBand) {
  const sar::RadarParams p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  core::FfbpMapOptions opt;
  opt.n_cores = 1;
  opt.prefetch = false;
  const auto pred = analysis::predict_cost(core::describe_ffbp_mapping(p, opt));
  const auto sim = core::run_ffbp_epiphany(data, p, opt);
  EXPECT_LT(rel_error(static_cast<double>(pred.makespan),
                      static_cast<double>(sim.cycles)),
            kCycleBand)
      << "predicted " << pred.makespan << " vs simulated " << sim.cycles;
}

TEST(CostModelValidation, GbpWithinBand) {
  const sar::RadarParams p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const auto pred = analysis::predict_cost(core::describe_gbp_mapping(p, 16));
  const auto sim = core::run_gbp_epiphany(data, p, 16);
  EXPECT_LT(rel_error(static_cast<double>(pred.makespan),
                      static_cast<double>(sim.cycles)),
            kCycleBand)
      << "predicted " << pred.makespan << " vs simulated " << sim.cycles;
  EXPECT_LT(rel_error(pred.energy.total_j(), sim.energy.total_j()),
            kEnergyBand);
}

TEST(CostModelValidation, IntegratedAutofocusWithinBand) {
  const sar::RadarParams p = sar::test_params(64, 161);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const af::IntegratedOptions aopt;
  core::FfbpMapOptions opt;
  opt.autofocus = &aopt;
  const auto pred = analysis::predict_cost(core::describe_ffbp_mapping(p, opt));
  const auto sim = core::run_ffbp_epiphany(data, p, opt);
  EXPECT_LT(rel_error(static_cast<double>(pred.makespan),
                      static_cast<double>(sim.cycles)),
            kCycleBand)
      << "predicted " << pred.makespan << " vs simulated " << sim.cycles;
  EXPECT_LT(rel_error(pred.energy.total_j(), sim.energy.total_j()),
            kEnergyBand);
}

TEST(CostModelValidation, AutofocusMpmdWithinBand) {
  const af::AfParams p;
  Rng rng(1);
  std::vector<af::BlockPair> pairs;
  for (int i = 0; i < 4; ++i)
    pairs.push_back(
        af::synthetic_block_pair(rng, p, rng.uniform_f(-0.5f, 0.5f)));
  core::AfMapOptions opt;
  const auto pred = analysis::predict_cost(
      core::describe_autofocus_mpmd(pairs.size(), p, opt));
  const auto sim = core::run_autofocus_mpmd(pairs, p, opt);
  EXPECT_LT(rel_error(static_cast<double>(pred.makespan),
                      static_cast<double>(sim.cycles)),
            kCycleBand)
      << "predicted " << pred.makespan << " vs simulated " << sim.cycles;
}

TEST(CostModelValidation, AutofocusSequentialIsNearExact) {
  // One core, no contention: the model's closed forms should reproduce
  // the scheduler almost cycle for cycle.
  const af::AfParams p;
  Rng rng(1);
  std::vector<af::BlockPair> pairs;
  for (int i = 0; i < 4; ++i)
    pairs.push_back(
        af::synthetic_block_pair(rng, p, rng.uniform_f(-0.5f, 0.5f)));
  const auto pred = analysis::predict_cost(
      core::describe_autofocus_sequential(pairs.size(), p));
  const auto sim = core::run_autofocus_sequential_epiphany(pairs, p);
  EXPECT_LT(rel_error(static_cast<double>(pred.makespan),
                      static_cast<double>(sim.cycles)),
            0.01)
      << "predicted " << pred.makespan << " vs simulated " << sim.cycles;
}

// --- lint manifest -------------------------------------------------------

TEST(LintManifest, RoundTripsThroughJsonParser) {
  const sar::RadarParams p = sar::test_params(32, 101);
  core::FfbpMapOptions opt;
  const auto spec = core::describe_ffbp_mapping(p, opt);

  analysis::MappingReport clean;
  clean.name = spec.name;
  clean.family = spec.family;
  clean.cores = static_cast<int>(spec.cores.size());
  clean.findings = analysis::analyze(spec);
  clean.prediction = analysis::predict_cost(spec);
  clean.validated = true;
  clean.simulated_cycles = 151322;
  clean.cycle_error = 0.085;
  clean.simulated_joules = 1.7e-4;
  clean.energy_error = 0.011;

  analysis::MappingReport dirty;
  dirty.name = "broken";
  dirty.family = "mpmd";
  dirty.cores = 2;
  dirty.findings.push_back(
      LintFinding{"deadlock", 1, "a->b", "exchange", "blocked receiving"});

  std::ostringstream os;
  analysis::write_manifest(os, {clean, dirty});
  const JsonValue doc = parse_json(os.str());

  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "esarp-lint-manifest/1");
  EXPECT_EQ(doc.find("total_findings")->as_number(), 1.0);
  const auto& mappings = doc.find("mappings")->as_array();
  ASSERT_EQ(mappings.size(), 2u);
  EXPECT_EQ(mappings[0].find("name")->as_string(), spec.name);
  EXPECT_EQ(mappings[0].find_path("prediction.makespan_cycles")->as_number(),
            static_cast<double>(clean.prediction.makespan));
  EXPECT_EQ(mappings[0].find_path("validation.simulated_cycles")->as_number(),
            151322.0);
  const auto& findings = mappings[1].find("findings")->as_array();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].find("check")->as_string(), "deadlock");
  EXPECT_EQ(findings[0].find("core")->as_number(), 1.0);
  EXPECT_EQ(mappings[1].find("validation"), nullptr);
  EXPECT_EQ(analysis::total_findings({clean, dirty}), 1u);
}

TEST(LintManifest, ConsoleReportIsStable) {
  analysis::MappingReport rep;
  rep.name = "synthetic";
  rep.family = "spmd";
  rep.cores = 2;
  rep.prediction.makespan = 100;
  rep.prediction.energy.avg_watts = 0.5;
  std::ostringstream a, b;
  analysis::write_console_report(a, {rep});
  analysis::write_console_report(b, {rep});
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("==esarp-lint== mapping 'synthetic'"),
            std::string::npos);
}

} // namespace
} // namespace esarp
