// Reproduces Table I (autofocus rows): throughput in criterion-pixels per
// second, speedup, and estimated power for (1) the sequential Intel
// reference (model), (2) sequential on one Epiphany core, (3) the 13-core
// MPMD streaming pipeline.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "core/autofocus_epiphany.hpp"
#include "epiphany/machine_metrics.hpp"
#include "hostmodel/host_model.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/workload.hpp"

static int bench_body() {
  using namespace esarp;
  af::AfParams p;
  const std::size_t n_pairs = bench::fast_mode() ? 16 : 64;

  Rng rng(20130801); // ICPP'13
  std::vector<af::BlockPair> pairs;
  for (std::size_t i = 0; i < n_pairs; ++i)
    pairs.push_back(
        af::synthetic_block_pair(rng, p, rng.uniform_f(-0.6f, 0.6f)));

  // --- Sequential reference on the Intel model. ---
  std::cerr << "running host-reference criterion sweeps...\n";
  WallTimer timer;
  host::HostWork total_work;
  for (const auto& bp : pairs)
    total_work += af::criterion_sweep(bp.minus, bp.plus, p).host_work;
  const double native_s = timer.elapsed_s();
  const host::HostModel intel;
  const double intel_s = intel.seconds(total_work);
  const double pixels = static_cast<double>(n_pairs * p.pixels());
  const double intel_tp = pixels / intel_s;

  // --- Sequential on one simulated Epiphany core. ---
  std::cerr << "simulating sequential Epiphany autofocus...\n";
  const auto seq = core::run_autofocus_sequential_epiphany(pairs, p);

  // --- 13-core MPMD pipeline. ---
  std::cerr << "simulating 13-core MPMD autofocus pipeline...\n";
  const auto par =
      core::run_autofocus_mpmd(pairs, p, {}, bench::power_chip());

  Table t("Table I (Autofocus): throughput, speedup, estimated power");
  t.header({"Implementation", "Cores", "Throughput (px/s)", "Speedup",
            "Power (W)", "Paper px/s", "Paper speedup"});
  t.row({"Sequential on Intel i7 @ 2.67 GHz", "1",
         format_rate(intel_tp, "px"), "1.00", "17.5", "21,600", "1"});
  t.row({"Sequential on Epiphany @ 1 GHz", "1",
         format_rate(seq.pixels_per_second, "px"),
         Table::num(seq.pixels_per_second / intel_tp, 2),
         Table::num(seq.energy.avg_watts, 2), "17,668", "0.8"});
  t.row({"Parallel on Epiphany @ 1 GHz", "13",
         format_rate(par.pixels_per_second, "px"),
         Table::num(par.pixels_per_second / intel_tp, 2),
         Table::num(par.energy.avg_watts, 2), "192,857", "8.93"});
  t.note(std::to_string(n_pairs) + " block pairs of 6x6 px, " +
         std::to_string(p.shift_candidates.size()) +
         " candidate shifts, cubic Neville interpolation, 3 windows");
  t.note("parallel vs sequential-Epiphany: " +
         Table::num(par.pixels_per_second / seq.pixels_per_second, 1) +
         "x (paper: 10.9x)");
  t.note("native host wall time of the reference sweeps: " +
         format_seconds(native_s) + " (informational)");
  t.print(std::cout);

  std::cout << "\n-- simulated pipeline details --\n"
            << par.perf.summary() << par.energy.summary() << "\n";
  std::cout << par.power.profile.table();

  CsvWriter csv(bench::out_dir() / "table1_autofocus.csv",
                {"impl", "cores", "throughput_px_s", "speedup", "power_w"});
  csv.row({"intel_seq", "1", Table::num(intel_tp, 1), "1.0", "17.5"});
  csv.row({"epiphany_seq", "1", Table::num(seq.pixels_per_second, 1),
           Table::num(seq.pixels_per_second / intel_tp, 4),
           Table::num(seq.energy.avg_watts, 3)});
  csv.row({"epiphany_par", "13", Table::num(par.pixels_per_second, 1),
           Table::num(par.pixels_per_second / intel_tp, 4),
           Table::num(par.energy.avg_watts, 3)});

  // Machine-readable evidence for the headline (13-core MPMD) run.
  telemetry::RunManifest man("table1_autofocus");
  ep::fill_manifest(man, par.perf, par.energy);
  man.add_workload("n_pairs", static_cast<double>(n_pairs));
  man.add_workload("block_rows", static_cast<double>(p.block_rows));
  man.add_workload("block_cols", static_cast<double>(p.block_cols));
  man.add_workload("fast_mode", bench::fast_mode() ? 1.0 : 0.0);
  man.add_result("pixels_per_second", par.pixels_per_second);
  man.add_result("seq_px_per_s", seq.pixels_per_second);
  man.add_result("speedup_vs_intel", par.pixels_per_second / intel_tp);
  bench::add_power_results(man, par.power, pixels);
  man.set_metrics(&par.metrics);
  bench::write_manifest(man);
  return 0;
}

int main() { return esarp::bench::guarded_main("table1_autofocus", bench_body); }
