// Reproduces the paper's related-work energy comparison (Section VI-A,
// closing paragraph): the 12-core Xeon X5675 system of Lidberg & Olin [15]
// runs FFBP faster in absolute terms (more silicon, more watts, SSE), but
// the 16-core Epiphany "outperforms theirs in terms of energy efficiency".
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"
#include "hostmodel/parallel_host_model.hpp"
#include "sar/ffbp.hpp"

static int bench_body() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();

  std::cerr << "reference FFBP (for the counted work)...\n";
  const auto host_res = sar::ffbp(w.data, w.params);

  const host::HostModel i7_single;
  const host::ParallelHostModel xeon(
      host::ParallelHostParams::xeon_x5675_pair());
  const double t_i7 = i7_single.seconds(host_res.host_work);
  const double t_xeon = xeon.seconds(host_res.host_work);
  const double j_i7 = i7_single.joules(host_res.host_work);
  const double j_xeon = xeon.joules(host_res.host_work);

  std::cerr << "16-core Epiphany simulation...\n";
  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto epi = core::run_ffbp_epiphany(w.data, w.params, opt);
  const double j_epi = epi.energy.total_j();

  Table t("FFBP across platforms: speed vs energy (paper Section VI-A)");
  t.header({"Platform", "Cores", "Time (ms)", "Power (W)",
            "Energy/image (J)", "Images/s/W"});
  auto row = [&](const char* name, int cores, double secs, double watts,
                 double joules) {
    t.row({name, std::to_string(cores), bench::ms(secs),
           Table::num(watts, 1), Table::num(joules, 3),
           Table::num(1.0 / secs / watts, 3)});
  };
  row("Intel i7-M620, 1 core (paper ref.)", 1, t_i7, 17.5, j_i7);
  row("2x Xeon X5675 + SSE (Lidberg [15])", 12, t_xeon, 190.0, j_xeon);
  row("Epiphany E16G3, 16 cores", 16, epi.seconds, epi.energy.avg_watts,
      j_epi);
  t.note("Xeon wins on raw speed (" +
         Table::num(epi.seconds / t_xeon, 1) +
         "x faster than Epiphany) but Epiphany wins on energy: " +
         Table::num(j_xeon / j_epi, 1) +
         "x fewer joules per image than the Xeon pair (paper: 'our "
         "implementation outperforms theirs in terms of energy "
         "efficiency')");
  t.note("Xeon model: 12 cores @ 3.06 GHz, 4-wide SSE at 60 % efficiency, "
         "85 % OpenMP scaling, 2 x 95 W TDP; same counted work as the "
         "other rows");
  t.print(std::cout);

  CsvWriter csv(bench::out_dir() / "related_work.csv",
                {"platform", "time_ms", "watts", "joules"});
  csv.row({"i7_1core", Table::num(t_i7 * 1e3, 2), "17.5",
           Table::num(j_i7, 4)});
  csv.row({"xeon_12core", Table::num(t_xeon * 1e3, 2), "190",
           Table::num(j_xeon, 4)});
  csv.row({"epiphany_16core", Table::num(epi.seconds * 1e3, 2),
           Table::num(epi.energy.avg_watts, 3), Table::num(j_epi, 4)});
  return 0;
}

int main() { return esarp::bench::guarded_main("related_work", bench_body); }
