// Analytic cycle + energy prediction over a MappingSpec.
//
// Mirrors the simulator's closed forms instead of re-deriving them:
// compute blocks go through ep::CostModel::cycles call-by-call (so the
// per-call rounding matches), DMA bursts / blocking gathers / posted
// writes use the uncontended ExtPort formulas, channel sends pay the
// cMesh injection cost, and barrier crossings pay the flag round trip.
// Contention is modelled with two corrections the simulator exhibits:
//
//   * port bounds — a phase can never finish before the SDRAM read/write
//     channel has served every byte the phase moves;
//   * the phase-start convoy — barrier-released (or t=0) cores issue
//     their first external read in the same cycle, so the last core in
//     the service order queues behind all the others once per phase.
//
// SPMD mappings sum per-phase makespans (phases are barrier-aligned);
// barrier-free mappings (GBP, the MPMD pipeline) take the slowest core
// plus a pipeline-fill term along the longest channel chain.
//
// Energy mirrors ep::compute_energy over the predicted counters. The
// tier-1 accuracy of all of this against full simulation is pinned in
// tests/test_analysis.cpp and reported in docs/static-analysis.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mapping_spec.hpp"
#include "epiphany/config.hpp"

namespace esarp::analysis {

/// Predicted timing for one phase group (phases sharing a name).
struct PhasePrediction {
  std::string name;
  Cycles serial_max = 0;       ///< slowest core's uncontended serial time
  Cycles convoy = 0;           ///< phase-start ext-port queueing correction
  Cycles read_port = 0;        ///< total SDRAM read-channel occupancy
  Cycles write_port = 0;       ///< total SDRAM write-channel occupancy
  Cycles barrier_overhead = 0; ///< closing barrier flag round trip
  Cycles makespan = 0;         ///< the phase's contribution to the total
};

/// Predicted per-core totals (comparable to ep::CoreCounters).
struct CorePrediction {
  int id = -1;
  std::string role;
  Cycles busy = 0;   ///< compute cycles (CoreCounters::busy)
  Cycles serial = 0; ///< busy + ext stalls + write issue + send injection
  OpCounts ops;
};

/// Predicted energy, field-for-field comparable to ep::EnergyReport.
struct EnergyPrediction {
  double core_active_j = 0.0;
  double core_idle_j = 0.0;
  double alu_j = 0.0;
  double noc_j = 0.0;
  double elink_j = 0.0;
  double static_j = 0.0;
  double avg_watts = 0.0;
  [[nodiscard]] double total_j() const {
    return core_active_j + core_idle_j + alu_j + noc_j + elink_j + static_j;
  }
};

struct CostPrediction {
  Cycles makespan = 0;
  std::vector<PhasePrediction> phases;
  std::vector<CorePrediction> cores;
  std::uint64_t ext_read_bytes = 0;
  std::uint64_t ext_write_bytes = 0;
  std::uint64_t byte_hops = 0;
  EnergyPrediction energy;
};

[[nodiscard]] CostPrediction predict_cost(const MappingSpec& spec);

} // namespace esarp::analysis
