// FFT-based matched filtering (pulse / range compression).
//
// Correlates each received pulse with the transmitted replica; the output
// peaks at the target delay with a sinc-like mainlobe of width fs/B samples.
// This is the "pulse compression" stage of the paper's Fig. 1 chain whose
// output feeds the back-projection block.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "fft/fft.hpp"
#include "fft/window.hpp"

namespace esarp::fft {

/// Matched filter for a fixed replica and record length.
class MatchedFilter {
public:
  /// `replica` is the transmitted pulse; `record_len` the echo length.
  /// Internally zero-pads both to the next power of two >= record_len +
  /// replica length (linear, not circular, correlation). `window` tapers
  /// the reference (sidelobe suppression at a small SNR/resolution cost).
  MatchedFilter(std::span<const cf32> replica, std::size_t record_len,
                WindowKind window = WindowKind::kRectangular);

  /// Compress one echo record (size == record_len). The output has
  /// record_len samples; sample k corresponds to a scatterer whose echo
  /// started at input sample k (group delay removed).
  [[nodiscard]] std::vector<cf32> compress(std::span<const cf32> echo) const;

  [[nodiscard]] std::size_t record_len() const { return record_len_; }
  [[nodiscard]] std::size_t fft_len() const { return plan_.size(); }

private:
  std::size_t record_len_;
  std::size_t replica_len_;
  Fft plan_;
  std::vector<cf32> replica_spectrum_conj_;
};

} // namespace esarp::fft
