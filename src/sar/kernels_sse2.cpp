// SSE2 backend of the unified kernel API (4 float lanes). SSE2 is the
// x86-64 baseline, so this TU needs no extra arch flags; on non-x86
// targets the trait is absent and the table is null (scalar fallback).
// Built with -ffp-contract=off — see kernels_simd_body.hpp for the
// bit-exactness contract.
#include "sar/kernels_impl.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "sar/kernels_simd_body.hpp"

namespace esarp::sar::kernels::detail {

namespace {

struct VSse2 {
  static constexpr std::size_t kLanes = 4;
  using F = __m128;
  using I = __m128i;

  static F load(const float* p) { return _mm_loadu_ps(p); }
  static void store(float* p, F v) { _mm_storeu_ps(p, v); }
  static F set1(float x) { return _mm_set1_ps(x); }
  static F zero() { return _mm_setzero_ps(); }
  static F add(F a, F b) { return _mm_add_ps(a, b); }
  static F sub(F a, F b) { return _mm_sub_ps(a, b); }
  static F mul(F a, F b) { return _mm_mul_ps(a, b); }
  static F sqrt(F a) { return _mm_sqrt_ps(a); }
  static F cmp_lt(F a, F b) { return _mm_cmplt_ps(a, b); }
  static F cmp_le(F a, F b) { return _mm_cmple_ps(a, b); }
  static F cmp_gt(F a, F b) { return _mm_cmpgt_ps(a, b); }
  static F blend(F m, F a, F b) {
    return _mm_or_ps(_mm_and_ps(m, a), _mm_andnot_ps(m, b));
  }
  static F xor_(F a, F b) { return _mm_xor_ps(a, b); }
  static I to_i(F a) { return _mm_castps_si128(a); }
  static F to_f(I a) { return _mm_castsi128_ps(a); }
  static I shr(I a, int count) { return _mm_srli_epi32(a, count); }
  static I add_i(I a, I b) { return _mm_add_epi32(a, b); }
  static I sub_i(I a, I b) { return _mm_sub_epi32(a, b); }
  static I set1_i(std::int32_t x) { return _mm_set1_epi32(x); }
  static F cvt_f(I a) { return _mm_cvtepi32_ps(a); }
  static I cvt_i(F a) { return _mm_cvttps_epi32(a); }
  static I cmp_lt_i(I a, I b) { return _mm_cmplt_epi32(a, b); }
  static I andnot_i(I a, I b) { return _mm_andnot_si128(a, b); }
  static void store_i(std::int32_t* p, I v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static I iota() { return _mm_set_epi32(3, 2, 1, 0); }

  static void load_cf(const cf32* p, F& re, F& im) {
    const float* f = reinterpret_cast<const float*>(p);
    const F a = _mm_loadu_ps(f);     // r0 i0 r1 i1
    const F b = _mm_loadu_ps(f + 4); // r2 i2 r3 i3
    re = _mm_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0));
    im = _mm_shuffle_ps(a, b, _MM_SHUFFLE(3, 1, 3, 1));
  }
  static void store_cf(cf32* p, F re, F im) {
    float* f = reinterpret_cast<float*>(p);
    _mm_storeu_ps(f, _mm_unpacklo_ps(re, im));
    _mm_storeu_ps(f + 4, _mm_unpackhi_ps(re, im));
  }
};

} // namespace

const KernelTable* sse2_table() { return SimdKernels<VSse2>::table(); }

} // namespace esarp::sar::kernels::detail

#else // !__SSE2__

namespace esarp::sar::kernels::detail {

const KernelTable* sse2_table() { return nullptr; }

} // namespace esarp::sar::kernels::detail

#endif
