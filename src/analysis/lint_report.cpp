#include "analysis/lint_report.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace esarp::analysis {

void write_console_report(std::ostream& os,
                          const std::vector<MappingReport>& reports) {
  // Build the whole report before writing so concurrent stderr users
  // cannot interleave mid-line (same convention as esarp-check).
  std::ostringstream buf;
  for (const MappingReport& r : reports) {
    buf << "==esarp-lint== mapping '" << r.name << "' (" << r.family << ", "
        << r.cores << " core(s)): ";
    if (r.findings.empty()) {
      buf << "clean; predicted " << r.prediction.makespan << " cycles, "
          << r.prediction.energy.total_j() << " J, "
          << r.prediction.energy.avg_watts << " W avg\n";
    } else {
      buf << r.findings.size() << " finding(s)\n";
      for (const LintFinding& f : r.findings)
        buf << "  " << format(f) << "\n";
    }
    if (r.validated)
      buf << "  cross-validated: simulated " << r.simulated_cycles
          << " cycles (cycle error " << r.cycle_error * 100.0
          << "%), simulated " << r.simulated_joules << " J (energy error "
          << r.energy_error * 100.0 << "%)\n";
  }
  os << buf.str();
  os.flush();
}

namespace {

void write_prediction(JsonWriter& w, const CostPrediction& p) {
  w.begin_object();
  w.kv("makespan_cycles", static_cast<std::uint64_t>(p.makespan));
  w.kv("ext_read_bytes", p.ext_read_bytes);
  w.kv("ext_write_bytes", p.ext_write_bytes);
  w.kv("noc_byte_hops", p.byte_hops);
  w.key("energy");
  w.begin_object();
  w.kv("core_active_j", p.energy.core_active_j);
  w.kv("core_idle_j", p.energy.core_idle_j);
  w.kv("alu_j", p.energy.alu_j);
  w.kv("noc_j", p.energy.noc_j);
  w.kv("elink_j", p.energy.elink_j);
  w.kv("static_j", p.energy.static_j);
  w.kv("total_j", p.energy.total_j());
  w.kv("avg_watts", p.energy.avg_watts);
  w.end_object();
  w.key("phases");
  w.begin_array();
  for (const PhasePrediction& ph : p.phases) {
    w.begin_object();
    w.kv("name", ph.name);
    w.kv("serial_max", static_cast<std::uint64_t>(ph.serial_max));
    w.kv("convoy", static_cast<std::uint64_t>(ph.convoy));
    w.kv("read_port", static_cast<std::uint64_t>(ph.read_port));
    w.kv("write_port", static_cast<std::uint64_t>(ph.write_port));
    w.kv("barrier_overhead",
         static_cast<std::uint64_t>(ph.barrier_overhead));
    w.kv("makespan", static_cast<std::uint64_t>(ph.makespan));
    w.end_object();
  }
  w.end_array();
  w.key("cores");
  w.begin_array();
  for (const CorePrediction& c : p.cores) {
    w.begin_object();
    w.kv("id", c.id);
    w.kv("role", c.role);
    w.kv("busy_cycles", static_cast<std::uint64_t>(c.busy));
    w.kv("serial_cycles", static_cast<std::uint64_t>(c.serial));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

} // namespace

void write_manifest(std::ostream& os,
                    const std::vector<MappingReport>& reports) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "esarp-lint-manifest/1");
  w.kv("total_findings", static_cast<std::uint64_t>(total_findings(reports)));
  w.key("mappings");
  w.begin_array();
  for (const MappingReport& r : reports) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("family", r.family);
    w.kv("cores", r.cores);
    w.key("findings");
    w.begin_array();
    for (const LintFinding& f : r.findings) {
      w.begin_object();
      w.kv("check", f.check);
      w.kv("core", f.core);
      w.kv("construct", f.construct);
      w.kv("span", f.span);
      w.kv("message", f.message);
      w.end_object();
    }
    w.end_array();
    w.key("prediction");
    write_prediction(w, r.prediction);
    if (r.validated) {
      w.key("validation");
      w.begin_object();
      w.kv("simulated_cycles", static_cast<std::uint64_t>(r.simulated_cycles));
      w.kv("cycle_error", r.cycle_error);
      w.kv("simulated_total_j", r.simulated_joules);
      w.kv("energy_error", r.energy_error);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  ESARP_ENSURES(w.done());
}

void write_manifest(const std::filesystem::path& path,
                    const std::vector<MappingReport>& reports) {
  std::ofstream out(path);
  if (!out)
    throw ContractViolation("cannot write lint manifest: " + path.string());
  write_manifest(out, reports);
}

std::size_t total_findings(const std::vector<MappingReport>& reports) {
  std::size_t n = 0;
  for (const MappingReport& r : reports) n += r.findings.size();
  return n;
}

} // namespace esarp::analysis
