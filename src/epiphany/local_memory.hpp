// Per-core 32 KB local store with a bank-aware bump allocator.
//
// The E16G3 splits each core's memory into four 8 KB banks; the paper
// dedicates "the two upper data banks" (16 KB) to subaperture data — enough
// for exactly two pulses of 1001 complex pixels (16,016 bytes). The
// allocator enforces capacity, so kernels that exceed a bank budget fail
// loudly instead of silently using impossible hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace esarp::ep {

class LocalMemory {
public:
  LocalMemory(std::size_t bytes, int banks)
      : store_(bytes), banks_(banks), bank_size_(bytes / banks) {
    ESARP_EXPECTS(banks > 0 && bytes % static_cast<std::size_t>(banks) == 0);
  }

  [[nodiscard]] std::size_t capacity() const { return store_.size(); }
  [[nodiscard]] int banks() const { return banks_; }
  [[nodiscard]] std::size_t bank_size() const { return bank_size_; }

  /// Allocate n objects of T, 8-byte aligned, anywhere in free space.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    return alloc_at<T>(n, cursor_);
  }

  /// Allocate n objects of T starting at the given bank (the paper places
  /// code/stack in the lower banks, data in the upper two). Fails if the
  /// allocation would collide with earlier allocations past that point.
  template <typename T>
  std::span<T> alloc_in_bank(std::size_t n, int bank) {
    ESARP_EXPECTS(bank >= 0 && bank < banks_);
    const std::size_t base = static_cast<std::size_t>(bank) * bank_size_;
    ESARP_EXPECTS(base >= cursor_); // banks must be claimed in order
    return alloc_at<T>(n, base);
  }

  /// Offset of a pointer inside this memory (for address-map encoding).
  [[nodiscard]] std::uint32_t offset_of(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    ESARP_EXPECTS(b >= store_.data() && b < store_.data() + store_.size());
    return static_cast<std::uint32_t>(b - store_.data());
  }

  [[nodiscard]] bool owns(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= store_.data() && b < store_.data() + store_.size();
  }

  [[nodiscard]] std::size_t used() const { return cursor_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t free_bytes() const {
    return store_.size() - cursor_;
  }

  /// Release all allocations (between kernel launches).
  void reset() { cursor_ = 0; }

private:
  template <typename T>
  std::span<T> alloc_at(std::size_t n, std::size_t from) {
    const std::size_t aligned = (from + 7) & ~std::size_t{7};
    const std::size_t bytes = n * sizeof(T);
    if (aligned + bytes > store_.size())
      throw ContractViolation(
          "LocalMemory overflow: request exceeds the 32 KB local store");
    cursor_ = aligned + bytes;
    high_water_ = cursor_ > high_water_ ? cursor_ : high_water_;
    return {reinterpret_cast<T*>(store_.data() + aligned), n};
  }

  std::vector<std::byte> store_;
  int banks_;
  std::size_t bank_size_;
  std::size_t cursor_ = 0;
  std::size_t high_water_ = 0;
};

} // namespace esarp::ep
