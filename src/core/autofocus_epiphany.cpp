#include "core/autofocus_epiphany.hpp"

#include <array>
#include <memory>

#include "common/assert.hpp"
#include "common/fastmath.hpp"
#include "core/mapping_profiles.hpp"
#include "epiphany/graph.hpp"
#include "epiphany/machine_metrics.hpp"
#include "epiphany/resilient.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/criterion_kernel.hpp"

namespace esarp::core {

namespace {

struct AfShared {
  std::span<const cf32> blocks_ext; ///< [pair][block(2)][rows*cols]
  std::span<float> out_ext;         ///< criterion results [pair][shift]
  std::vector<std::vector<double>> criteria;
  std::unique_ptr<ep::Channel<RangePacket>> range_to_beam[2][3];
  std::unique_ptr<ep::Channel<BeamPacket>> beam_to_corr[2][3];
};

template <typename OutChan>
ep::Task range_program(ep::CoreCtx& ctx, const af::AfParams& p,
                       std::span<const cf32> blocks_ext, std::size_t n_pairs,
                       int block, int window, OutChan& chan) {
  const std::size_t block_px = p.block_rows * p.block_cols;
  auto local_block = ctx.local().alloc_in_bank<cf32>(block_px, 2);
  const OpCounts sample_ops = range_core_sample_ops(p);

  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    ctx.begin_span("range-interp/" + std::to_string(pair));
    // Fetch this pair's contributing block (the paper DMAs the area of
    // interest into each interpolator's local memory).
    const cf32* src =
        blocks_ext.data() + (2 * pair + static_cast<std::size_t>(block)) *
                                block_px;
    ep::DmaJob job = ctx.dma_read_ext(
        local_block.data(), src, block_px * sizeof(cf32));
    co_await ctx.wait(job);
    const View2D<const cf32> view(local_block.data(), p.block_rows,
                                  p.block_cols);

    for (std::size_t sh = 0; sh < p.shift_candidates.size(); ++sh) {
      const float delta = p.shift_candidates[sh];
      for (std::size_t s = 0; s < p.samples_per_row; ++s) {
        const af::SampleGeom g = af::af_sample_geom(p, s, delta);
        RangePacket pkt;
        pkt.rows = static_cast<std::uint8_t>(p.block_rows);
        pkt.valid = g.valid ? 1 : 0;
        if (g.valid) {
          const float t = block == 0 ? g.t_minus : g.t_plus;
          af::range_interp_column(view, static_cast<std::size_t>(window), t,
                                  pkt.col.data(), p.block_rows);
        }
        co_await ctx.compute(sample_ops);
        co_await chan.send(ctx, pkt);
      }
    }
    ctx.end_span();
  }
}

template <typename InChan, typename OutChan>
ep::Task beam_program(ep::CoreCtx& ctx, const af::AfParams& p,
                      std::size_t n_pairs, int block, int window,
                      InChan& in, OutChan& out) {
  (void)block;
  (void)window;
  const OpCounts sample_ops = beam_core_sample_ops(p);

  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    ctx.begin_span("beam-interp/" + std::to_string(pair));
    for (std::size_t sh = 0; sh < p.shift_candidates.size(); ++sh) {
      const float delta = p.shift_candidates[sh];
      for (std::size_t s = 0; s < p.samples_per_row; ++s) {
        RangePacket pkt = co_await in.recv(ctx);
        const af::SampleGeom g = af::af_sample_geom(p, s, delta);
        BeamPacket bp;
        bp.count = static_cast<std::uint8_t>(p.beams);
        bp.valid = pkt.valid;
        if (pkt.valid) {
          for (std::size_t b = 0; b < p.beams; ++b) {
            const cf32 v = af::beam_interp(pkt.col.data(), b, g.u);
            bp.mags[b] = fastmath::norm2(v.real(), v.imag());
          }
        }
        co_await ctx.compute(sample_ops);
        co_await out.send(ctx, bp);
      }
    }
    ctx.end_span();
  }
}

template <typename InChan>
ep::Task corr_program(ep::CoreCtx& ctx, const af::AfParams& p,
                      InChan* (&inputs)[2][3], std::span<float> out_ext,
                      std::vector<std::vector<double>>& criteria,
                      std::size_t n_pairs) {
  const OpCounts sample_ops = corr_sample_ops(p);
  const std::size_t n_shifts = p.shift_candidates.size();
  std::vector<float> row(n_shifts);

  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    ctx.begin_span("criterion-block/" + std::to_string(pair));
    criteria[pair].assign(n_shifts, 0.0);
    for (std::size_t sh = 0; sh < n_shifts; ++sh) {
      // Accumulate in float, window-major then sample — the exact order of
      // the sequential af::criterion_sweep, so results match bit-for-bit.
      float criterion = 0.0f;
      for (std::size_t w = 0; w < p.windows; ++w) {
        for (std::size_t s = 0; s < p.samples_per_row; ++s) {
          const BeamPacket bm = co_await inputs[0][w]->recv(ctx);
          const BeamPacket bp = co_await inputs[1][w]->recv(ctx);
          if (bm.valid && bp.valid) {
            for (std::size_t b = 0; b < p.beams; ++b)
              criterion += bm.mags[b] * bp.mags[b];
          }
          co_await ctx.compute(sample_ops);
        }
      }
      criteria[pair][sh] = static_cast<double>(criterion);
      row[sh] = criterion;
    }
    // Post the pair's criterion row to SDRAM (paper: the correlation core
    // "provides the final ... result to be written to the off-chip SDRAM").
    co_await ctx.write_ext(out_ext.data() + pair * n_shifts, row.data(),
                           n_shifts * sizeof(float));
    ctx.end_span();
  }
}

// --- Fault-campaign variants of the MPMD pipeline programs ----------------
//
// Selected whenever the machine carries a FaultInjector
// (docs/fault-injection.md). The pipeline has no spare cores, so it cannot
// repartition like FFBP; instead it degrades: when any core of a window
// pipeline (range -> beam -> corr input) fail-stops, the correlator drops
// that window from the criterion on BOTH contributing blocks and rescores
// by scaling the surviving windows up to the full window count. Producers
// and consumers use the timed channel ops and give up only on the
// confirmed-failure oracle, so a slow chain is never dropped and an
// abandoned chain can never livelock the run. With plan.resilient == false
// the timed ops revert to the blocking ones while the fail-stop polls stay
// on — the configuration that demonstrates the pre-recovery deadlock.

/// True once any member of window pipeline (f, w) — or the shared
/// correlator — has a passed fail-stop trigger. The whole chain quits when
/// any link is confirmed dead, which is what keeps the survivors free of
/// blocked-forever channel ops.
[[nodiscard]] bool chain_dead(const fault::FaultInjector& inj,
                              const Placement& pl, int f, int w,
                              ep::Cycles now) {
  const auto cycle = static_cast<std::uint64_t>(now);
  return inj.fail_stop_due(pl.range[f][w], cycle) ||
         inj.fail_stop_due(pl.beam[f][w], cycle) ||
         inj.fail_stop_due(pl.corr, cycle);
}

template <typename OutChan>
ep::Task range_program_resilient(ep::CoreCtx& ctx, const af::AfParams& p,
                                 std::span<const cf32> blocks_ext,
                                 std::size_t n_pairs, int block, int window,
                                 OutChan& chan, const Placement& pl) {
  fault::FaultInjector& inj = *ctx.fault_injector();
  const fault::RetryPolicy& pol = inj.plan().retry;
  const bool resilient = inj.plan().resilient;
  const std::size_t block_px = p.block_rows * p.block_cols;
  auto local_block = ctx.local().alloc_in_bank<cf32>(block_px, 2);
  const OpCounts sample_ops = range_core_sample_ops(p);

  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    if (ctx.fail_stop_due()) {
      ctx.mark_failed();
      co_return;
    }
    const cf32* src =
        blocks_ext.data() +
        (2 * pair + static_cast<std::size_t>(block)) * block_px;
    co_await ep::reliable_dma_read(ctx, local_block.data(), src,
                                   block_px * sizeof(cf32));
    const View2D<const cf32> view(local_block.data(), p.block_rows,
                                  p.block_cols);

    for (std::size_t sh = 0; sh < p.shift_candidates.size(); ++sh) {
      const float delta = p.shift_candidates[sh];
      for (std::size_t s = 0; s < p.samples_per_row; ++s) {
        if (ctx.fail_stop_due()) {
          ctx.mark_failed();
          co_return;
        }
        const af::SampleGeom g = af::af_sample_geom(p, s, delta);
        RangePacket pkt;
        pkt.rows = static_cast<std::uint8_t>(p.block_rows);
        pkt.valid = g.valid ? 1 : 0;
        if (g.valid) {
          const float t = block == 0 ? g.t_minus : g.t_plus;
          af::range_interp_column(view, static_cast<std::size_t>(window), t,
                                  pkt.col.data(), p.block_rows);
        }
        co_await ctx.compute(sample_ops);
        if (!resilient) {
          co_await chan.send(ctx, pkt);
          continue;
        }
        for (;;) {
          if (ctx.fail_stop_due()) {
            ctx.mark_failed();
            co_return;
          }
          if (co_await chan.send_for(ctx, pkt, pol.channel_timeout,
                                     pol.channel_poll))
            break;
          if (chain_dead(inj, pl, block, window, ctx.now())) {
            inj.count_detected(fault::Site::kFailStop);
            if (ctx.checker() != nullptr)
              ctx.checker()->set_fault_degraded();
            co_return; // downstream confirmed dead: stop producing
          }
        }
      }
    }
  }
}

template <typename InChan, typename OutChan>
ep::Task beam_program_resilient(ep::CoreCtx& ctx, const af::AfParams& p,
                                std::size_t n_pairs, int block, int window,
                                InChan& in, OutChan& out,
                                const Placement& pl) {
  fault::FaultInjector& inj = *ctx.fault_injector();
  const fault::RetryPolicy& pol = inj.plan().retry;
  const bool resilient = inj.plan().resilient;
  const OpCounts sample_ops = beam_core_sample_ops(p);

  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    for (std::size_t sh = 0; sh < p.shift_candidates.size(); ++sh) {
      const float delta = p.shift_candidates[sh];
      for (std::size_t s = 0; s < p.samples_per_row; ++s) {
        if (ctx.fail_stop_due()) {
          ctx.mark_failed();
          co_return;
        }
        RangePacket pkt;
        if (!resilient) {
          pkt = co_await in.recv(ctx);
        } else {
          for (;;) {
            if (ctx.fail_stop_due()) {
              ctx.mark_failed();
              co_return;
            }
            auto got = co_await in.recv_for(ctx, pol.channel_timeout,
                                            pol.channel_poll);
            if (got.has_value()) {
              pkt = *got;
              break;
            }
            if (chain_dead(inj, pl, block, window, ctx.now())) {
              inj.count_detected(fault::Site::kFailStop);
              if (ctx.checker() != nullptr)
                ctx.checker()->set_fault_degraded();
              co_return;
            }
          }
        }
        const af::SampleGeom g = af::af_sample_geom(p, s, delta);
        BeamPacket bp;
        bp.count = static_cast<std::uint8_t>(p.beams);
        bp.valid = pkt.valid;
        if (pkt.valid) {
          for (std::size_t b = 0; b < p.beams; ++b) {
            const cf32 v = af::beam_interp(pkt.col.data(), b, g.u);
            bp.mags[b] = fastmath::norm2(v.real(), v.imag());
          }
        }
        co_await ctx.compute(sample_ops);
        if (!resilient) {
          co_await out.send(ctx, bp);
          continue;
        }
        for (;;) {
          if (ctx.fail_stop_due()) {
            ctx.mark_failed();
            co_return;
          }
          if (co_await out.send_for(ctx, bp, pol.channel_timeout,
                                    pol.channel_poll))
            break;
          if (chain_dead(inj, pl, block, window, ctx.now())) {
            inj.count_detected(fault::Site::kFailStop);
            if (ctx.checker() != nullptr)
              ctx.checker()->set_fault_degraded();
            co_return;
          }
        }
      }
    }
  }
}

template <typename InChan>
ep::Task corr_program_resilient(ep::CoreCtx& ctx, const af::AfParams& p,
                                InChan* (&inputs)[2][3],
                                std::span<float> out_ext,
                                std::vector<std::vector<double>>& criteria,
                                std::size_t n_pairs, const Placement& pl) {
  fault::FaultInjector& inj = *ctx.fault_injector();
  const fault::RetryPolicy& pol = inj.plan().retry;
  const bool resilient = inj.plan().resilient;
  const OpCounts sample_ops = corr_sample_ops(p);
  const std::size_t n_shifts = p.shift_candidates.size();
  std::vector<float> row(n_shifts);

  // side_alive: whether the (block, window) input chain still delivers
  // (the live side of a dropped window keeps being drained so its
  // producers can run to completion). win_alive: whether the window still
  // contributes to the criterion — it needs BOTH sides.
  bool side_alive[2][3] = {{true, true, true}, {true, true, true}};
  bool win_alive[3] = {true, true, true};

  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    ctx.begin_span("criterion-block/" + std::to_string(pair));
    criteria[pair].assign(n_shifts, 0.0);
    for (std::size_t sh = 0; sh < n_shifts; ++sh) {
      // Per-window partial sums: a window dropped mid-shift is excluded
      // whole, not with a half-accumulated contribution.
      float wsum[3] = {0.0f, 0.0f, 0.0f};
      for (std::size_t w = 0; w < p.windows; ++w) {
        for (std::size_t s = 0; s < p.samples_per_row; ++s) {
          BeamPacket pk[2];
          pk[0].valid = 0;
          pk[1].valid = 0;
          for (int f = 0; f < 2; ++f) {
            if (!side_alive[f][w]) continue;
            if (!resilient) {
              pk[f] = co_await inputs[f][w]->recv(ctx);
              continue;
            }
            for (;;) {
              if (ctx.fail_stop_due()) {
                ctx.mark_failed();
                co_return;
              }
              auto got = co_await inputs[f][w]->recv_for(
                  ctx, pol.channel_timeout, pol.channel_poll);
              if (got.has_value()) {
                pk[f] = *got;
                break;
              }
              if (inj.fail_stop_due(pl.range[f][w],
                                    static_cast<std::uint64_t>(ctx.now())) ||
                  inj.fail_stop_due(pl.beam[f][w],
                                    static_cast<std::uint64_t>(ctx.now()))) {
                side_alive[f][w] = false;
                inj.count_detected(fault::Site::kFailStop);
                if (win_alive[w]) {
                  win_alive[w] = false;
                  inj.count_af_window_dropped();
                }
                if (ctx.checker() != nullptr)
                  ctx.checker()->set_fault_degraded();
                break;
              }
            }
          }
          if (win_alive[w] && pk[0].valid && pk[1].valid) {
            for (std::size_t b = 0; b < p.beams; ++b)
              wsum[w] += pk[0].mags[b] * pk[1].mags[b];
          }
          co_await ctx.compute(sample_ops);
        }
      }
      float criterion = 0.0f;
      std::size_t live = 0;
      for (std::size_t w = 0; w < p.windows; ++w) {
        if (!win_alive[w]) continue;
        criterion += wsum[w];
        ++live;
      }
      // Rescoring: the surviving windows stand in for the dropped ones so
      // the criterion keeps the magnitude the shift search expects.
      if (live > 0 && live < p.windows)
        criterion *= static_cast<float>(p.windows) /
                     static_cast<float>(live);
      criteria[pair][sh] = static_cast<double>(criterion);
      row[sh] = criterion;
    }
    co_await ep::reliable_write_ext(ctx, out_ext.data() + pair * n_shifts,
                                    row.data(), n_shifts * sizeof(float));
    ctx.end_span();
  }
}

ep::Task af_sequential_program(ep::CoreCtx& ctx, const af::AfParams& p,
                               std::span<const af::BlockPair> pairs,
                               std::span<const cf32> blocks,
                               std::span<float> out,
                               std::vector<std::vector<double>>& criteria) {
  const std::size_t block_px = p.block_rows * p.block_cols;
  const std::size_t n_shifts = p.shift_candidates.size();
  auto local = ctx.local().alloc_in_bank<cf32>(2 * block_px, 2);

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (ctx.fail_stop_due()) {
      ctx.mark_failed();
      co_return;
    }
    ctx.begin_span("criterion-block/" + std::to_string(i));
    // The reliable wrapper degenerates to the plain DMA outside a fault
    // campaign, so the no-campaign path stays bit-identical.
    co_await ep::reliable_dma_read(ctx, local.data(),
                                   blocks.data() + 2 * i * block_px,
                                   2 * block_px * sizeof(cf32));

    // The sweep itself: the same reference code path as the host run,
    // charged as one counted compute block per pair.
    Array2D<cf32> bm(p.block_rows, p.block_cols);
    Array2D<cf32> bp(p.block_rows, p.block_cols);
    std::copy(local.begin(), local.begin() + block_px, bm.data());
    std::copy(local.begin() + block_px, local.end(), bp.data());
    const af::CriterionResult cr = af::criterion_sweep(bm, bp, p);
    co_await ctx.compute(cr.ops);

    criteria[i] = cr.criteria;
    std::vector<float> row(cr.criteria.begin(), cr.criteria.end());
    co_await ep::reliable_write_ext(ctx, out.data() + i * n_shifts,
                                    row.data(), n_shifts * sizeof(float));
    ctx.end_span();
  }
}

/// Publish the campaign totals into the result (and the schedule hash into
/// the manifest-visible metrics, split in two because results are doubles).
/// No-op outside a fault campaign. Call before snapshotting res.metrics.
void fill_fault_summary(ep::Machine& m, AfSimResult& res) {
  const fault::FaultInjector* fi = m.fault_injector();
  if (fi == nullptr) return;
  res.faults = fi->summary();
  res.degraded =
      res.faults.failed_cores > 0 || res.faults.af_windows_dropped > 0;
  m.metrics()
      .gauge("fault.schedule_hash_hi")
      .set(static_cast<double>(res.faults.schedule_hash >> 32));
  m.metrics()
      .gauge("fault.schedule_hash_lo")
      .set(static_cast<double>(res.faults.schedule_hash & 0xffffffffULL));
}

/// Pack all pairs into SDRAM; returns the span.
std::span<cf32> pack_blocks(ep::Machine& m, std::span<const af::BlockPair> pairs,
                            const af::AfParams& p) {
  const std::size_t block_px = p.block_rows * p.block_cols;
  auto ext = m.ext().alloc<cf32>(2 * pairs.size() * block_px);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::copy(pairs[i].minus.flat().begin(), pairs[i].minus.flat().end(),
              ext.begin() + static_cast<std::ptrdiff_t>(2 * i * block_px));
    std::copy(pairs[i].plus.flat().begin(), pairs[i].plus.flat().end(),
              ext.begin() +
                  static_cast<std::ptrdiff_t>((2 * i + 1) * block_px));
  }
  return ext;
}

} // namespace

AfSimResult run_autofocus_sequential_epiphany(
    std::span<const af::BlockPair> pairs, const af::AfParams& p,
    ep::ChipConfig cfg, ep::Tracer* tracer) {
  p.validate();
  ESARP_EXPECTS(!pairs.empty());
  ep::Machine m(cfg, 16u << 20, {}, tracer);
  const std::span<cf32> blocks = pack_blocks(m, pairs, p);
  auto out = m.ext().alloc<float>(pairs.size() * p.shift_candidates.size());

  AfSimResult res;
  res.criteria.resize(pairs.size());
  res.cores_used = 1;

  m.launch(0, [&p, pairs, blocks, out, &res](ep::CoreCtx& ctx) {
    return af_sequential_program(ctx, p, pairs, blocks, out, res.criteria);
  });

  res.cycles = m.run();
  res.seconds = m.seconds(res.cycles);
  res.perf = m.report();
  res.power = ep::collect_power(m, res.perf);
  res.energy = res.power.energy;
  res.pixels_per_second =
      static_cast<double>(pairs.size() * p.pixels()) / res.seconds;
  ep::collect_machine_metrics(m);
  fill_fault_summary(m, res);
  res.metrics = m.metrics();
  return res;
}

AfSimResult run_autofocus_mpmd(std::span<const af::BlockPair> pairs,
                               const af::AfParams& p, const AfMapOptions& opt,
                               ep::ChipConfig cfg) {
  p.validate();
  ESARP_EXPECTS(!pairs.empty());
  ESARP_EXPECTS(p.block_rows <= 8 && p.beams <= 4); // packet capacities
  ESARP_EXPECTS(p.windows == 3);                    // 13-core pipeline shape
  ESARP_EXPECTS(cfg.core_count() >= 14);

  ep::Machine m(cfg, 16u << 20, {}, opt.tracer);
  AfShared st;
  st.blocks_ext = pack_blocks(m, pairs, p);
  st.out_ext = m.ext().alloc<float>(pairs.size() * p.shift_candidates.size());
  st.criteria.resize(pairs.size());

  const Placement pl = make_placement(opt.placement == AfPlacement::kCompact);
  for (int f = 0; f < 2; ++f) {
    for (int w = 0; w < 3; ++w) {
      st.range_to_beam[f][w] = m.make_channel<RangePacket>(
          pl.beam[f][w], opt.channel_capacity, "range->beam");
      st.beam_to_corr[f][w] = m.make_channel<BeamPacket>(
          pl.corr, opt.channel_capacity, "beam->corr");
    }
  }

  const std::size_t n_pairs = pairs.size();
  ep::Channel<BeamPacket>* corr_inputs[2][3];
  for (int f = 0; f < 2; ++f)
    for (int w = 0; w < 3; ++w)
      corr_inputs[f][w] = st.beam_to_corr[f][w].get();
  const bool fault_mode = m.fault_injector() != nullptr;
  for (int f = 0; f < 2; ++f) {
    for (int w = 0; w < 3; ++w) {
      m.launch(pl.range[f][w],
               [&p, &st, &pl, n_pairs, f, w, fault_mode](ep::CoreCtx& ctx) {
                 return fault_mode
                            ? range_program_resilient(
                                  ctx, p, st.blocks_ext, n_pairs, f, w,
                                  *st.range_to_beam[f][w], pl)
                            : range_program(ctx, p, st.blocks_ext, n_pairs,
                                            f, w, *st.range_to_beam[f][w]);
               });
      m.launch(pl.beam[f][w],
               [&p, &st, &pl, n_pairs, f, w, fault_mode](ep::CoreCtx& ctx) {
                 return fault_mode
                            ? beam_program_resilient(
                                  ctx, p, n_pairs, f, w,
                                  *st.range_to_beam[f][w],
                                  *st.beam_to_corr[f][w], pl)
                            : beam_program(ctx, p, n_pairs, f, w,
                                           *st.range_to_beam[f][w],
                                           *st.beam_to_corr[f][w]);
               });
    }
  }
  m.launch(pl.corr,
           [&p, &st, &pl, &corr_inputs, n_pairs, fault_mode](
               ep::CoreCtx& ctx) {
             return fault_mode
                        ? corr_program_resilient(ctx, p, corr_inputs,
                                                 st.out_ext, st.criteria,
                                                 n_pairs, pl)
                        : corr_program(ctx, p, corr_inputs, st.out_ext,
                                       st.criteria, n_pairs);
           });

  AfSimResult res;
  res.cores_used = 13;
  res.cycles = m.run(opt.max_cycles);
  res.seconds = m.seconds(res.cycles);
  res.perf = m.report();
  res.power = ep::collect_power(m, res.perf);
  res.energy = res.power.energy;
  res.criteria = st.criteria;
  res.pixels_per_second =
      static_cast<double>(pairs.size() * p.pixels()) / res.seconds;
  ep::collect_machine_metrics(m);
  fill_fault_summary(m, res);
  res.metrics = m.metrics();
  return res;
}

AfGraphResult run_autofocus_graph(std::span<const af::BlockPair> pairs,
                                  const af::AfParams& p,
                                  std::size_t channel_capacity,
                                  ep::ChipConfig cfg) {
  p.validate();
  ESARP_EXPECTS(!pairs.empty());
  ESARP_EXPECTS(p.block_rows <= 8 && p.beams <= 4);
  ESARP_EXPECTS(p.windows == 3);
  ESARP_EXPECTS(cfg.core_count() >= 14);
  // The declarative network has no fault-hardened programs; refuse a
  // campaign rather than let injected corruption pass silently.
  ESARP_REQUIRE(!cfg.faults.enabled(),
                "run_autofocus_graph does not support fault campaigns; use "
                "run_autofocus_mpmd");

  ep::Machine m(cfg, 16u << 20);
  ep::ProcessNetwork net(m);

  std::span<const cf32> blocks_ext = pack_blocks(m, pairs, p);
  auto out_ext = m.ext().alloc<float>(pairs.size() * p.shift_candidates.size());
  std::vector<std::vector<double>> criteria(pairs.size());
  const std::size_t n_pairs = pairs.size();

  // Declare the typed channels. Edge weights reflect relative traffic
  // volume: range->beam packets are ~6x larger than beam->corr packets.
  ep::GraphChannel<RangePacket>* r2b[2][3];
  ep::GraphChannel<BeamPacket>* b2c[2][3];
  ep::GraphChannel<BeamPacket>* corr_inputs[2][3];
  for (int f = 0; f < 2; ++f) {
    for (int w = 0; w < 3; ++w) {
      r2b[f][w] = &net.channel<RangePacket>(
          "range->beam[" + std::to_string(f) + "][" + std::to_string(w) + "]",
          channel_capacity);
      b2c[f][w] = &net.channel<BeamPacket>(
          "beam->corr[" + std::to_string(f) + "][" + std::to_string(w) + "]",
          channel_capacity);
      corr_inputs[f][w] = b2c[f][w];
    }
  }

  // Declare the nodes. No coordinates anywhere: the network places them.
  int range_id[2][3];
  int beam_id[2][3];
  for (int f = 0; f < 2; ++f) {
    for (int w = 0; w < 3; ++w) {
      range_id[f][w] = net.node(
          "range[" + std::to_string(f) + "][" + std::to_string(w) + "]",
          [&p, blocks_ext, n_pairs, f, w, &r2b](ep::CoreCtx& ctx) {
            return range_program(ctx, p, blocks_ext, n_pairs, f, w,
                                 *r2b[f][w]);
          });
      beam_id[f][w] = net.node(
          "beam[" + std::to_string(f) + "][" + std::to_string(w) + "]",
          [&p, n_pairs, f, w, &r2b, &b2c](ep::CoreCtx& ctx) {
            return beam_program(ctx, p, n_pairs, f, w, *r2b[f][w],
                                *b2c[f][w]);
          });
    }
  }
  const int corr_id = net.node(
      "corr", [&p, &corr_inputs, out_ext, &criteria, n_pairs](
                  ep::CoreCtx& ctx) {
        return corr_program(ctx, p, corr_inputs, out_ext, criteria, n_pairs);
      });

  for (int f = 0; f < 2; ++f) {
    for (int w = 0; w < 3; ++w) {
      net.connect(range_id[f][w], beam_id[f][w], *r2b[f][w],
                  /*weight=*/static_cast<double>(sizeof(RangePacket)));
      net.connect(beam_id[f][w], corr_id, *b2c[f][w],
                  /*weight=*/static_cast<double>(sizeof(BeamPacket)));
    }
  }

  AfGraphResult res;
  res.sim.cores_used = 13;
  res.sim.cycles = net.run();
  res.sim.seconds = m.seconds(res.sim.cycles);
  res.sim.perf = m.report();
  res.sim.power = ep::collect_power(m, res.sim.perf);
  res.sim.energy = res.sim.power.energy;
  res.sim.criteria = std::move(criteria);
  res.sim.pixels_per_second =
      static_cast<double>(pairs.size() * p.pixels()) / res.sim.seconds;
  res.placement_description = net.describe();
  res.weighted_hops = net.weighted_hops();
  ep::collect_machine_metrics(m);
  res.sim.metrics = m.metrics();
  return res;
}

} // namespace esarp::core

