#include "epiphany/energy.hpp"

#include <sstream>

#include "common/table.hpp"

namespace esarp::ep {

EnergyReport compute_energy(const PerfReport& rep, const EnergyParams& p) {
  EnergyReport e;
  const double pj = 1e-12;

  for (const auto& c : rep.per_core) {
    const auto busy = static_cast<double>(c.busy);
    // Stall/wait cycles are clock-gated on Epiphany (the paper: "shutting
    // off the clock to unused function units and entire cores on a
    // cycle-by-cycle basis"), so they are charged at the idle rate.
    const double idle = static_cast<double>(rep.makespan) - busy;
    e.core_active_j += busy * p.core_active_pj_per_cycle * pj;
    e.core_idle_j += (idle > 0 ? idle : 0.0) * p.core_idle_pj_per_cycle * pj;
    e.alu_j += (static_cast<double>(c.ops.fp_issues()) * p.flop_pj +
                static_cast<double>(c.ops.ialu) * p.ialu_pj +
                static_cast<double>(c.ops.load + c.ops.store) *
                    p.ldst_local_pj) *
               pj;
  }
  e.noc_j = static_cast<double>(rep.noc_total.byte_hops) *
            p.noc_pj_per_byte_hop * pj;
  e.elink_j = static_cast<double>(rep.ext.read_bytes + rep.ext.write_bytes) *
              p.elink_pj_per_byte * pj;
  e.static_j = p.chip_static_w * rep.seconds();

  const double secs = rep.seconds();
  e.avg_watts = secs > 0.0 ? e.total_j() / secs : 0.0;
  return e;
}

double peak_chip_watts(const ChipConfig& cfg, const EnergyParams& p) {
  // All cores busy every cycle, one FP + one IALU issue per cycle, one local
  // access per cycle, plus static power: the datasheet-style max figure.
  const double per_core_pj = p.core_active_pj_per_cycle + p.flop_pj +
                             p.ialu_pj + p.ldst_local_pj;
  return cfg.core_count() * per_core_pj * 1e-12 * cfg.clock_hz +
         p.chip_static_w;
}

std::string EnergyReport::summary() const {
  std::ostringstream os;
  os << "energy: " << Table::num(total_j() * 1e3, 3) << " mJ ("
     << "cores " << Table::num((core_active_j + core_idle_j) * 1e3, 3)
     << " mJ, ops " << Table::num(alu_j * 1e3, 3) << " mJ, noc "
     << Table::num(noc_j * 1e3, 3) << " mJ, elink "
     << Table::num(elink_j * 1e3, 3) << " mJ, static "
     << Table::num(static_j * 1e3, 3) << " mJ); avg power "
     << Table::num(avg_watts, 3) << " W";
  return os.str();
}

} // namespace esarp::ep
