#include "epiphany/perf.hpp"

#include <sstream>

#include "common/format.hpp"
#include "common/table.hpp"

namespace esarp::ep {

OpCounts PerfReport::total_ops() const {
  OpCounts total;
  for (const auto& c : per_core) total += c.ops;
  return total;
}

Cycles PerfReport::total_busy() const {
  Cycles total = 0;
  for (const auto& c : per_core) total += c.busy;
  return total;
}

Cycles PerfReport::total_ext_stall() const {
  Cycles total = 0;
  for (const auto& c : per_core) total += c.ext_stall;
  return total;
}

double PerfReport::utilization() const {
  if (makespan == 0) return 0.0;
  Cycles busy = 0;
  int active = 0;
  for (const auto& c : per_core) {
    if (c.finish_time == 0 && c.busy == 0) continue; // never launched
    busy += c.busy;
    ++active;
  }
  if (active == 0) return 0.0;
  return static_cast<double>(busy) /
         (static_cast<double>(makespan) * active);
}

double PerfReport::flops_per_second() const {
  const double secs = seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(total_ops().flops()) / secs;
}

std::string PerfReport::summary() const {
  std::ostringstream os;
  const OpCounts ops = total_ops();
  os << "makespan: " << format_cycles(makespan) << " cycles ("
     << format_seconds(seconds()) << " @ "
     << cfg.clock_hz / 1e9 << " GHz)\n"
     << "flops: " << format_rate(flops_per_second(), "FLOP") << " ("
     << format_cycles(ops.flops()) << " total)\n"
     << "core utilization: " << Table::num(utilization() * 100.0, 1) << " %\n"
     << "ext reads: " << format_bytes(ext.read_bytes) << " in "
     << ext.read_transactions << " transactions; writes: "
     << format_bytes(ext.write_bytes) << " in " << ext.write_transactions
     << " transactions\n"
     << "noc: " << noc_total.transfers << " transfers, "
     << format_bytes(noc_total.bytes) << " (read mesh "
     << format_bytes(noc_read.bytes) << ", on-chip write mesh "
     << format_bytes(noc_write_onchip.bytes) << ", off-chip write mesh "
     << format_bytes(noc_write_offchip.bytes) << ")\n";
  return os.str();
}

std::string PerfReport::per_core_table() const {
  Table t("per-core counters");
  t.header({"core", "busy", "ext stall", "dma wait", "chan wait",
            "barrier", "flops", "ext R", "ext W", "finish"});
  for (std::size_t i = 0; i < per_core.size(); ++i) {
    const auto& c = per_core[i];
    if (c.finish_time == 0 && c.busy == 0) continue;
    t.row({std::to_string(i), format_cycles(c.busy),
           format_cycles(c.ext_stall), format_cycles(c.dma_wait),
           format_cycles(c.chan_wait), format_cycles(c.barrier_wait),
           format_cycles(c.ops.flops()), format_bytes(c.ext_read_bytes),
           format_bytes(c.ext_write_bytes), format_cycles(c.finish_time)});
  }
  return t.str();
}

} // namespace esarp::ep
