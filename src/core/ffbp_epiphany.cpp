#include "core/ffbp_epiphany.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/fastmath.hpp"
#include "core/ffbp_layout.hpp"
#include "core/mapping_profiles.hpp"
#include "epiphany/machine_metrics.hpp"
#include "epiphany/resilient.hpp"
#include "sar/kernels.hpp"
#include "sar/merge_kernel.hpp"

namespace esarp::core {

namespace {

struct SharedState {
  std::span<cf32> buf_a;
  std::span<cf32> buf_b;
  std::vector<LevelPrefetchStats> stats;
  std::unique_ptr<ep::SimBarrier> barrier;
  // Autofocus integration (null when disabled): per-pair shifts of the
  // level being produced, plus the applied-correction log.
  std::vector<float> shifts;
  std::vector<af::MergeCorrection> corrections;
  // Fault-campaign checkpoints in SDRAM (empty outside a campaign), one
  // array per merge level: row_done[level-1][row] flips to 1 once that
  // output row is verified in the destination buffer, af_done[level-1][pair]
  // once that pair's shift is published. Survivors of a fail-stop scan them
  // to repartition the unfinished work (docs/fault-injection.md).
  std::vector<std::span<std::uint32_t>> row_done;
  std::vector<std::span<std::uint32_t>> af_done;
};

/// Rebuild a child subaperture (level `lvl`, index `subap`) from its SDRAM
/// level buffer, with the exact phase-centre the host factorisation
/// assigns (uniform track: the mean of its pulse positions).
sar::SubapertureImage load_subaperture(std::span<const cf32> src,
                                       const LevelLayout& lc,
                                       const sar::RadarParams& p,
                                       std::size_t lvl, std::size_t subap) {
  sar::SubapertureImage s;
  s.level = lvl;
  s.n_pulses = std::size_t{1} << lvl;
  s.first_pulse = subap * s.n_pulses;
  s.x_center = 0.5 * (p.pulse_x(s.first_pulse) +
                      p.pulse_x(s.first_pulse + s.n_pulses - 1));
  s.data = Array2D<cf32>(lc.n_theta, lc.n_range);
  std::copy(src.begin() + static_cast<std::ptrdiff_t>(lc.offset(subap, 0)),
            src.begin() +
                static_cast<std::ptrdiff_t>(lc.offset(subap, 0) +
                                            lc.n_theta * lc.n_range),
            s.data.data());
  return s;
}

ep::Task ffbp_core_program(ep::CoreCtx& ctx, const sar::RadarParams& p,
                           const FfbpMapOptions& opt, SharedState& st,
                           int core_index) {
  const std::size_t n_levels = p.merge_levels();
  const std::size_t n_range = p.n_range;
  const std::size_t row_bytes = n_range * sizeof(cf32);

  // Local-store layout (paper Section V-B): bank 1 stages the output row;
  // banks 2 and 3 — "the two upper data banks" — hold one row of each
  // contributing child subaperture (16,016 bytes at paper size). With
  // double buffering each data bank holds two rows (ping/pong).
  auto out_row = ctx.local().alloc_in_bank<cf32>(n_range, 1);
  auto child_row1 = ctx.local().alloc_in_bank<cf32>(
      opt.double_buffer ? 2 * n_range : n_range, 2);
  auto child_row2 = ctx.local().alloc_in_bank<cf32>(
      opt.double_buffer ? 2 * n_range : n_range, 3);
  int pong = 0; // active half of the double buffers

  const sar::FfbpOptions algo =
      opt.autofocus != nullptr ? opt.autofocus->ffbp : opt.algo;
  const OpCounts pixel_ops = sar::merge_pixel_ops(algo);
  const float r0f = static_cast<float>(p.near_range_m);
  const float drf = static_cast<float>(p.range_bin_m);
  // Host-side scratch for the row's cosine-theorem geometry; the simulated
  // local-store budget is unaffected (the geometry never lived in a bank).
  std::vector<sar::MergeGeom> geom_row(n_range);

  std::span<cf32> src = st.buf_a;
  std::span<cf32> dst = st.buf_b;

  for (std::size_t level = 1; level <= n_levels; ++level) {
    ctx.begin_span("merge-iter/" + std::to_string(level));
    const LevelLayout lc = LevelLayout::at(p, level - 1);
    const LevelLayout lp = LevelLayout::at(p, level);
    const sar::MergeLevelGeom geom = sar::merge_level_geom(p, level);
    const sar::ChildGrid& grid = geom.child;

    const std::size_t rows_total = lp.rows_total();
    const std::size_t n = static_cast<std::size_t>(opt.n_cores);
    const std::size_t begin =
        static_cast<std::size_t>(core_index) * rows_total / n;
    const std::size_t end =
        (static_cast<std::size_t>(core_index) + 1) * rows_total / n;

    // --- Autofocus phase (paper Fig. 4): before this level's merges, the
    // cores divide the subaperture pairs among themselves, stream both
    // children from SDRAM, and run the criterion estimator. A barrier
    // publishes the shifts before any merge starts.
    const bool af_level =
        opt.autofocus != nullptr && level >= opt.autofocus->first_level;
    if (opt.autofocus != nullptr) {
      ctx.begin_span("af-estimate/" + std::to_string(level));
      for (std::size_t pair = static_cast<std::size_t>(core_index);
           pair < lp.n_subaps; pair += n) {
        if (!af_level) {
          st.shifts[pair] = 0.0f;
          continue;
        }
        ctx.begin_span("criterion-block/" + std::to_string(pair));
        const auto a =
            load_subaperture(src, lc, p, level - 1, 2 * pair);
        const auto b =
            load_subaperture(src, lc, p, level - 1, 2 * pair + 1);
        // Streaming both children through the core: two bulk SDRAM reads.
        const std::size_t child_bytes =
            lc.n_theta * lc.n_range * sizeof(cf32);
        co_await ctx.read_ext_gather(2, child_bytes);
        OpCounts est_ops;
        const af::PairEstimate est = af::estimate_pair_shift(
            a, b, p, *opt.autofocus, &est_ops, nullptr);
        co_await ctx.compute(est_ops);
        st.shifts[pair] = est.applied(opt.autofocus->min_gain);
        st.corrections.push_back(
            {level, pair, st.shifts[pair], est.gain});
        ctx.end_span();
      }
      ctx.end_span();
      co_await st.barrier->arrive_and_wait(ctx);
    }

    // Row-prediction helper (shared by the single- and double-buffered
    // paths): which child theta rows does parent row `ti` need?
    const auto predict = [&](std::size_t ti) {
      const float theta_row = geom.theta_of_row(p, ti);
      const float cr_row = 2.0f * geom.d * fastmath::poly_cos(theta_row);
      const float r_mid = r0f + static_cast<float>(n_range / 2) * drf;
      const sar::MergeGeom mid =
          sar::merge_geometry(r_mid, cr_row, geom.d2, geom.inv_2d);
      const auto clamp_bin = [&](float th) {
        const float f = (th - grid.theta_start) * grid.inv_dtheta;
        int b = static_cast<int>(f);
        if (b < 0) b = 0;
        if (b >= grid.n_theta) b = grid.n_theta - 1;
        return b;
      };
      return std::pair<int, int>{clamp_bin(mid.theta1),
                                 clamp_bin(mid.theta2)};
    };

    // Double-buffered pipeline state: the DMA for row `gr` was issued
    // while row `gr-1` computed.
    ep::DmaJob pending1{};
    ep::DmaJob pending2{};
    int pending_pre1 = -1;
    int pending_pre2 = -1;
    const auto issue_prefetch = [&](std::size_t gr, int half) {
      const std::size_t subap = gr / lp.n_theta;
      const std::size_t ti = gr % lp.n_theta;
      auto [a1, a2] = predict(ti);
      pending_pre1 = a1;
      pending_pre2 = a2;
      cf32* dst1 = child_row1.data() + static_cast<std::size_t>(half) *
                                           (opt.double_buffer ? n_range : 0);
      cf32* dst2 = child_row2.data() + static_cast<std::size_t>(half) *
                                           (opt.double_buffer ? n_range : 0);
      const cf32* src1 =
          src.data() + lc.offset(2 * subap, static_cast<std::size_t>(a1));
      const cf32* src2 =
          src.data() + lc.offset(2 * subap + 1, static_cast<std::size_t>(a2));
      if (ctx.config().burst_transfers) {
        // Both child rows as one burst job: one wait event per prefetch
        // instead of two, identical cycle accounting (see DmaSeg docs).
        const ep::DmaSeg segs[2] = {{dst1, src1, row_bytes},
                                    {dst2, src2, row_bytes}};
        pending1 = ctx.dma_read_ext_burst(segs);
        pending2 = ep::DmaJob{}; // completes at 0: wait() is a no-op
      } else {
        pending1 = ctx.dma_read_ext(dst1, src1, row_bytes);
        pending2 = ctx.dma_read_ext(dst2, src2, row_bytes);
      }
    };

    if (opt.prefetch && opt.double_buffer && begin < end) {
      co_await ctx.compute(kPredictOps);
      issue_prefetch(begin, pong);
    }

    for (std::size_t gr = begin; gr < end; ++gr) {
      const std::size_t subap = gr / lp.n_theta;
      const std::size_t ti = gr % lp.n_theta;
      const float theta = geom.theta_of_row(p, ti);
      const float cr = 2.0f * geom.d * fastmath::poly_cos(theta);

      const std::size_t child1 = 2 * subap;
      const std::size_t child2 = 2 * subap + 1;

      // Obtain the prefetched child rows for this row.
      int pre1 = -1;
      int pre2 = -1;
      const cf32* buf1 = child_row1.data();
      const cf32* buf2 = child_row2.data();
      if (opt.prefetch && opt.double_buffer) {
        // The DMA issued one row ago targets `pong`'s half.
        ctx.begin_span("dma-prefetch");
        co_await ctx.wait(pending1);
        co_await ctx.wait(pending2);
        ctx.end_span();
        pre1 = pending_pre1;
        pre2 = pending_pre2;
        buf1 += static_cast<std::size_t>(pong) * n_range;
        buf2 += static_cast<std::size_t>(pong) * n_range;
        // Immediately issue the next row's prefetch into the other half;
        // it streams while this row computes.
        if (gr + 1 < end) {
          co_await ctx.compute(kPredictOps);
          issue_prefetch(gr + 1, 1 - pong);
        }
        pong = 1 - pong;
      } else if (opt.prefetch) {
        ctx.begin_span("dma-prefetch");
        co_await ctx.compute(kPredictOps);
        issue_prefetch(gr, 0);
        co_await ctx.wait(pending1);
        co_await ctx.wait(pending2);
        ctx.end_span();
        pre1 = pending_pre1;
        pre2 = pending_pre2;
      }

      std::uint64_t misses = 0;
      const auto fetch1 = [&](int it, int ir) -> cf32 {
        if (it == pre1) return buf1[static_cast<std::size_t>(ir)];
        ++misses;
        return src[lc.offset(child1, static_cast<std::size_t>(it),
                             static_cast<std::size_t>(ir))];
      };
      const auto fetch2 = [&](int it, int ir) -> cf32 {
        if (it == pre2) return buf2[static_cast<std::size_t>(ir)];
        ++misses;
        return src[lc.offset(child2, static_cast<std::size_t>(it),
                             static_cast<std::size_t>(ir))];
      };

      // Per-pair autofocus compensation (0 when disabled; adding the
      // resulting -0.0f keeps the plain path bit-identical).
      const float af_shift =
          opt.autofocus != nullptr ? st.shifts[subap] : 0.0f;
      const float shift_a = -0.5f * af_shift * drf;
      const float shift_b = 0.5f * af_shift * drf;

      std::uint64_t fetches = 0;
      sar::kernels::merge_geometry_row(r0f, drf, 0, n_range, cr, geom.d2,
                                       geom.inv_2d, geom_row.data());
      for (std::size_t j = 0; j < n_range; ++j) {
        const sar::MergeGeom& g = geom_row[j];
        const cf32 v1 = sar::sample_child(grid, g.r1 + shift_a, g.theta1,
                                          algo.interp,
                                          algo.phase_compensate, fetch1);
        const cf32 v2 = sar::sample_child(grid, g.r2 + shift_b, g.theta2,
                                          algo.interp,
                                          algo.phase_compensate, fetch2);
        out_row[j] = v1 + v2; // paper eq. 5
        fetches += 2;
      }

      co_await ctx.compute(static_cast<std::uint64_t>(n_range) * pixel_ops +
                           sar::kMergeRowOps);
      if (misses > 0)
        co_await ctx.read_ext_gather(misses, sizeof(cf32));
      co_await ctx.write_ext(dst.data() + lp.offset(subap, ti),
                             out_row.data(), row_bytes);

      auto& ls = st.stats[level - 1];
      ls.local_hits += fetches - misses;
      ls.ext_misses += misses;
    }

    co_await st.barrier->arrive_and_wait(ctx);
    ctx.end_span(); // merge-iter
    std::swap(src, dst);
  }
}

/// Live launch-set cores at `now` under the campaign's fail-stop schedule.
/// Pure in (plan, now): at a common post-barrier cycle every survivor
/// computes the identical set, which is what makes the repartition
/// bookkeeping below coordinator-free.
std::vector<int> alive_cores(const fault::FaultInjector& inj, int n_cores,
                             ep::Cycles now) {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(n_cores));
  for (int c = 0; c < n_cores; ++c)
    if (!inj.fail_stop_due(c, static_cast<std::uint64_t>(now)))
      alive.push_back(c);
  return alive;
}

[[nodiscard]] std::size_t rank_of(const std::vector<int>& alive, int core) {
  for (std::size_t i = 0; i < alive.size(); ++i)
    if (alive[i] == core) return i;
  // A core only ranks itself after passing its own fail_stop_due() check,
  // so it is always in the set it just computed.
  ESARP_REQUIRE(false, "core not in its own live set");
  return 0;
}

/// Fault-campaign variant of ffbp_core_program, selected whenever the
/// machine carries a FaultInjector (docs/fault-injection.md). Same inner
/// arithmetic, hardened control flow:
///
///  - ctx.fail_stop_due() is polled at every work-item boundary (row, af
///    pair, pass); a due core records its failure and stops without
///    arriving at the barrier, so the survivors' failure detection (which
///    uses the same oracle) has no false positives.
///  - All SDRAM payload traffic goes through the reliable_* wrappers:
///    checksum-verified, retried with exponential backoff on injected
///    corruption / drops / bit flips.
///  - Each merge level runs as repartition passes over the SDRAM row_done
///    checkpoint flags: process your slice of the unfinished rows, cross
///    the (failure-detecting) barrier, rescan — surviving cores pick up a
///    fail-stopped core's rows instead of deadlocking. Rows are idempotent,
///    so a row caught mid-flight by a failure is simply recomputed.
///  - Autofocus degrades instead of redistributing: pairs a failed core
///    never finished fall back to a zero shift (uncompensated merge) and
///    are counted as fault.af_pairs_dropped.
///
/// The prefetch pipeline is single-buffered here — verification serializes
/// each transfer anyway — and with plan.resilient == false the wrappers and
/// the barrier degenerate to the plain protocol while the fail-stop polls
/// stay on: that configuration demonstrates the pre-recovery behaviour,
/// where one fail-stopped core deadlocks the whole chip (SimDeadlock).
ep::Task ffbp_core_program_resilient(ep::CoreCtx& ctx,
                                     const sar::RadarParams& p,
                                     const FfbpMapOptions& opt,
                                     SharedState& st, int core_index) {
  fault::FaultInjector& inj = *ctx.fault_injector();
  const bool resilient = inj.plan().resilient;
  const std::size_t n_levels = p.merge_levels();
  const std::size_t n_range = p.n_range;
  const std::size_t row_bytes = n_range * sizeof(cf32);
  const std::size_t n = static_cast<std::size_t>(opt.n_cores);

  auto out_row = ctx.local().alloc_in_bank<cf32>(n_range, 1);
  auto child_row1 = ctx.local().alloc_in_bank<cf32>(n_range, 2);
  auto child_row2 = ctx.local().alloc_in_bank<cf32>(n_range, 3);

  const sar::FfbpOptions algo =
      opt.autofocus != nullptr ? opt.autofocus->ffbp : opt.algo;
  const OpCounts pixel_ops = sar::merge_pixel_ops(algo);
  const float r0f = static_cast<float>(p.near_range_m);
  const float drf = static_cast<float>(p.range_bin_m);
  // Host-side geometry scratch, as in the plain program.
  std::vector<sar::MergeGeom> geom_row(n_range);

  std::span<cf32> src = st.buf_a;
  std::span<cf32> dst = st.buf_b;

  for (std::size_t level = 1; level <= n_levels; ++level) {
    ctx.begin_span("merge-iter/" + std::to_string(level));
    const LevelLayout lc = LevelLayout::at(p, level - 1);
    const LevelLayout lp = LevelLayout::at(p, level);
    const sar::MergeLevelGeom geom = sar::merge_level_geom(p, level);
    const sar::ChildGrid& grid = geom.child;
    const std::size_t rows_total = lp.rows_total();

    // --- Autofocus phase. Level entry is a uniform instant (launch or the
    // aligned barrier release), so every survivor strides over the same
    // live set.
    const bool af_level =
        opt.autofocus != nullptr && level >= opt.autofocus->first_level;
    if (opt.autofocus != nullptr) {
      if (ctx.fail_stop_due()) {
        ctx.mark_failed();
        co_return;
      }
      const std::vector<int> alive = alive_cores(inj, opt.n_cores, ctx.now());
      const std::size_t stride = resilient ? alive.size() : n;
      const std::size_t first = resilient
                                    ? rank_of(alive, core_index)
                                    : static_cast<std::size_t>(core_index);
      std::span<std::uint32_t> af_done =
          resilient ? st.af_done[level - 1] : std::span<std::uint32_t>{};
      ctx.begin_span("af-estimate/" + std::to_string(level));
      for (std::size_t pair = first; pair < lp.n_subaps; pair += stride) {
        if (ctx.fail_stop_due()) {
          ctx.mark_failed();
          co_return;
        }
        if (!af_level) {
          st.shifts[pair] = 0.0f;
          continue;
        }
        ctx.begin_span("criterion-block/" + std::to_string(pair));
        const auto a = load_subaperture(src, lc, p, level - 1, 2 * pair);
        const auto b = load_subaperture(src, lc, p, level - 1, 2 * pair + 1);
        const std::size_t child_bytes = lc.n_theta * lc.n_range * sizeof(cf32);
        co_await ctx.read_ext_gather(2, child_bytes);
        OpCounts est_ops;
        const af::PairEstimate est =
            af::estimate_pair_shift(a, b, p, *opt.autofocus, &est_ops, nullptr);
        co_await ctx.compute(est_ops);
        st.shifts[pair] = est.applied(opt.autofocus->min_gain);
        st.corrections.push_back({level, pair, st.shifts[pair], est.gain});
        if (resilient) {
          const std::uint32_t done_flag = 1;
          co_await ep::reliable_write_ext(ctx, &af_done[pair], &done_flag,
                                          sizeof(done_flag));
        }
        ctx.end_span();
      }
      ctx.end_span();
      co_await st.barrier->arrive_and_wait(ctx);
      if (resilient && af_level) {
        // Uniform post-barrier instant: every survivor sees the identical
        // flag snapshot, so all agree on which pairs a failed core left
        // unfinished. Those merge uncompensated (shift 0); the
        // lowest-ranked survivor accounts for the drops once.
        const std::vector<int> after =
            alive_cores(inj, opt.n_cores, ctx.now());
        const bool accountant = after.front() == core_index;
        std::size_t dropped = 0;
        for (std::size_t pair = 0; pair < lp.n_subaps; ++pair) {
          if (af_done[pair] != 0) continue;
          st.shifts[pair] = 0.0f;
          ++dropped;
          if (accountant) inj.count_af_pair_dropped();
        }
        if (dropped > 0 && ctx.checker() != nullptr)
          ctx.checker()->set_fault_degraded();
        co_await ctx.read_ext_gather(lp.n_subaps, sizeof(std::uint32_t));
      }
    }

    const auto predict = [&](std::size_t ti) {
      const float theta_row = geom.theta_of_row(p, ti);
      const float cr_row = 2.0f * geom.d * fastmath::poly_cos(theta_row);
      const float r_mid = r0f + static_cast<float>(n_range / 2) * drf;
      const sar::MergeGeom mid =
          sar::merge_geometry(r_mid, cr_row, geom.d2, geom.inv_2d);
      const auto clamp_bin = [&](float th) {
        const float f = (th - grid.theta_start) * grid.inv_dtheta;
        int b = static_cast<int>(f);
        if (b < 0) b = 0;
        if (b >= grid.n_theta) b = grid.n_theta - 1;
        return b;
      };
      return std::pair<int, int>{clamp_bin(mid.theta1), clamp_bin(mid.theta2)};
    };

    std::span<std::uint32_t> row_done =
        resilient ? st.row_done[level - 1] : std::span<std::uint32_t>{};
    for (std::size_t pass = 0;; ++pass) {
      // Uniform instant (level entry / aligned post-barrier release): the
      // flag snapshot and the live set below are host-side and identical
      // across survivors, so the break / repartition decisions agree
      // without a coordinator.
      if (ctx.fail_stop_due()) {
        ctx.mark_failed();
        co_return;
      }
      std::vector<std::uint32_t> mine; // global row indices for this pass
      if (resilient) {
        std::vector<std::uint32_t> undone;
        for (std::size_t r = 0; r < rows_total; ++r)
          if (row_done[r] == 0) undone.push_back(static_cast<std::uint32_t>(r));
        if (undone.empty()) break; // level complete on every survivor
        const std::vector<int> alive =
            alive_cores(inj, opt.n_cores, ctx.now());
        const std::size_t rank = rank_of(alive, core_index);
        if (pass > 0 || alive.size() < n) {
          if (rank == 0) inj.count_repartition(alive.size());
        }
        for (std::size_t k = rank; k < undone.size(); k += alive.size())
          mine.push_back(undone[k]);
        // Rescan cost: pass 0 needs none (flags are known clear at level
        // entry), later passes charge one flag sweep.
        if (pass > 0)
          co_await ctx.read_ext_gather(rows_total, sizeof(std::uint32_t));
      } else {
        const std::size_t begin =
            static_cast<std::size_t>(core_index) * rows_total / n;
        const std::size_t end =
            (static_cast<std::size_t>(core_index) + 1) * rows_total / n;
        for (std::size_t r = begin; r < end; ++r)
          mine.push_back(static_cast<std::uint32_t>(r));
      }

      for (const std::uint32_t gr32 : mine) {
        if (ctx.fail_stop_due()) {
          ctx.mark_failed();
          co_return;
        }
        const std::size_t gr = gr32;
        const std::size_t subap = gr / lp.n_theta;
        const std::size_t ti = gr % lp.n_theta;
        const float theta = geom.theta_of_row(p, ti);
        const float cr = 2.0f * geom.d * fastmath::poly_cos(theta);
        const std::size_t child1 = 2 * subap;
        const std::size_t child2 = 2 * subap + 1;

        int pre1 = -1;
        int pre2 = -1;
        if (opt.prefetch) {
          ctx.begin_span("dma-prefetch");
          co_await ctx.compute(kPredictOps);
          const auto [a1, a2] = predict(ti);
          pre1 = a1;
          pre2 = a2;
          const ep::DmaSeg segs[2] = {
              {child_row1.data(),
               src.data() + lc.offset(child1, static_cast<std::size_t>(a1)),
               row_bytes},
              {child_row2.data(),
               src.data() + lc.offset(child2, static_cast<std::size_t>(a2)),
               row_bytes}};
          co_await ep::reliable_dma_read_burst(ctx, segs);
          ctx.end_span();
        }

        std::uint64_t misses = 0;
        const auto fetch1 = [&](int it, int ir) -> cf32 {
          if (it == pre1) return child_row1[static_cast<std::size_t>(ir)];
          ++misses;
          return src[lc.offset(child1, static_cast<std::size_t>(it),
                               static_cast<std::size_t>(ir))];
        };
        const auto fetch2 = [&](int it, int ir) -> cf32 {
          if (it == pre2) return child_row2[static_cast<std::size_t>(ir)];
          ++misses;
          return src[lc.offset(child2, static_cast<std::size_t>(it),
                               static_cast<std::size_t>(ir))];
        };

        const float af_shift =
            opt.autofocus != nullptr ? st.shifts[subap] : 0.0f;
        const float shift_a = -0.5f * af_shift * drf;
        const float shift_b = 0.5f * af_shift * drf;

        std::uint64_t fetches = 0;
        sar::kernels::merge_geometry_row(r0f, drf, 0, n_range, cr, geom.d2,
                                         geom.inv_2d, geom_row.data());
        for (std::size_t j = 0; j < n_range; ++j) {
          const sar::MergeGeom& g = geom_row[j];
          const cf32 v1 =
              sar::sample_child(grid, g.r1 + shift_a, g.theta1, algo.interp,
                                algo.phase_compensate, fetch1);
          const cf32 v2 =
              sar::sample_child(grid, g.r2 + shift_b, g.theta2, algo.interp,
                                algo.phase_compensate, fetch2);
          out_row[j] = v1 + v2;
          fetches += 2;
        }

        co_await ctx.compute(static_cast<std::uint64_t>(n_range) * pixel_ops +
                             sar::kMergeRowOps);
        if (misses > 0) co_await ctx.read_ext_gather(misses, sizeof(cf32));
        co_await ep::reliable_write_ext(
            ctx, dst.data() + lp.offset(subap, ti), out_row.data(), row_bytes);
        if (resilient) {
          // SDRAM checkpoint: once verified, this row survives any later
          // repartition of the level.
          const std::uint32_t done_flag = 1;
          co_await ep::reliable_write_ext(ctx, &row_done[gr], &done_flag,
                                          sizeof(done_flag));
        }

        // Rows recomputed across passes double-count here; the prefetch
        // stats describe work performed, not distinct rows.
        auto& ls = st.stats[level - 1];
        ls.local_hits += fetches - misses;
        ls.ext_misses += misses;
      }

      co_await st.barrier->arrive_and_wait(ctx);
      if (!resilient) break; // single pass; checkpoint flags unused
    }
    ctx.end_span(); // merge-iter
    std::swap(src, dst);
  }
}

} // namespace

FfbpSimResult run_ffbp_epiphany(const Array2D<cf32>& data,
                                const sar::RadarParams& p,
                                const FfbpMapOptions& opt,
                                ep::ChipConfig cfg) {
  p.validate();
  ESARP_EXPECTS(opt.n_cores >= 1 && opt.n_cores <= cfg.core_count());
  ESARP_EXPECTS(!opt.double_buffer || opt.prefetch);
  const sar::FfbpOptions algo_check =
      opt.autofocus != nullptr ? opt.autofocus->ffbp : opt.algo;
  ESARP_EXPECTS(!algo_check.phase_compensate ||
                algo_check.interp == sar::Interp::kNearest);
  if (opt.autofocus != nullptr) opt.autofocus->criterion.validate();

  const std::size_t total = p.n_pulses * p.n_range;
  // Fault campaigns keep per-level checkpoint flags in SDRAM; budget them
  // explicitly so large campaigns never eat the allocation slack.
  std::size_t flag_bytes = 0;
  if (cfg.faults.enabled()) {
    for (std::size_t l = 1; l <= p.merge_levels(); ++l) {
      const LevelLayout lp = LevelLayout::at(p, l);
      flag_bytes +=
          (lp.rows_total() + lp.n_subaps) * sizeof(std::uint32_t) + 16;
    }
  }
  const std::size_t ext_bytes = 2 * total * sizeof(cf32) + flag_bytes +
                                (1u << 20); // two level buffers + slack
  ep::Machine m(cfg, std::max<std::size_t>(ext_bytes, 8u << 20), {},
                opt.tracer);

  SharedState st;
  st.buf_a = m.ext().alloc<cf32>(total);
  st.buf_b = m.ext().alloc<cf32>(total);
  st.stats.resize(p.merge_levels());
  for (std::size_t l = 0; l < st.stats.size(); ++l)
    st.stats[l].level = l + 1;
  st.barrier = m.make_barrier(opt.n_cores);
  st.shifts.assign(p.n_pulses / 2, 0.0f);
  const bool fault_mode = m.fault_injector() != nullptr;
  if (fault_mode) {
    st.row_done.resize(p.merge_levels());
    if (opt.autofocus != nullptr) st.af_done.resize(p.merge_levels());
    for (std::size_t l = 1; l <= p.merge_levels(); ++l) {
      const LevelLayout lp = LevelLayout::at(p, l);
      st.row_done[l - 1] = m.ext().alloc<std::uint32_t>(lp.rows_total());
      std::fill(st.row_done[l - 1].begin(), st.row_done[l - 1].end(), 0u);
      if (opt.autofocus != nullptr) {
        st.af_done[l - 1] = m.ext().alloc<std::uint32_t>(lp.n_subaps);
        std::fill(st.af_done[l - 1].begin(), st.af_done[l - 1].end(), 0u);
      }
    }
  }

  // Load level 0 into SDRAM (range-phase referenced, like the reference).
  const auto level0 = sar::initial_subapertures(data, p);
  for (std::size_t pu = 0; pu < p.n_pulses; ++pu)
    std::copy(level0[pu].data.row(0).begin(), level0[pu].data.row(0).end(),
              st.buf_a.begin() + static_cast<std::ptrdiff_t>(pu * p.n_range));

  for (int c = 0; c < opt.n_cores; ++c) {
    m.launch(c, [&p, &opt, &st, c, fault_mode](ep::CoreCtx& ctx) {
      return fault_mode ? ffbp_core_program_resilient(ctx, p, opt, st, c)
                        : ffbp_core_program(ctx, p, opt, st, c);
    });
  }

  FfbpSimResult res;
  res.cycles = m.run(opt.max_cycles);
  res.seconds = m.seconds(res.cycles);
  res.perf = m.report();
  res.power = ep::collect_power(m, res.perf);
  res.energy = res.power.energy;
  res.prefetch_stats = st.stats;
  res.corrections = std::move(st.corrections);

  // Snapshot telemetry: machine-wide metrics plus the per-level prefetch
  // hit/miss counters only this mapping knows about.
  ep::collect_machine_metrics(m);
  for (const LevelPrefetchStats& ls : st.stats) {
    const std::string lvl = std::to_string(ls.level);
    m.metrics()
        .counter(telemetry::labeled("ffbp.prefetch.local_hits",
                                    {{"level", lvl}}))
        .add(ls.local_hits);
    m.metrics()
        .counter(telemetry::labeled("ffbp.prefetch.ext_misses",
                                    {{"level", lvl}}))
        .add(ls.ext_misses);
  }
  if (const fault::FaultInjector* fi = m.fault_injector()) {
    res.faults = fi->summary();
    res.degraded =
        res.faults.failed_cores > 0 || res.faults.af_pairs_dropped > 0;
    // Manifest results carry doubles; split the 64-bit reproducibility
    // witness in two so zero-tolerance diffs catch schedule drift exactly.
    m.metrics()
        .gauge("fault.schedule_hash_hi")
        .set(static_cast<double>(res.faults.schedule_hash >> 32));
    m.metrics()
        .gauge("fault.schedule_hash_lo")
        .set(static_cast<double>(res.faults.schedule_hash & 0xffffffffULL));
  }
  res.metrics = m.metrics();

  const std::span<cf32> final_buf =
      (p.merge_levels() % 2 == 1) ? st.buf_b : st.buf_a;
  res.image = Array2D<cf32>(p.n_pulses, p.n_range);
  std::copy(final_buf.begin(), final_buf.end(), res.image.data());
  return res;
}

} // namespace esarp::core
