// Shared op-count profiles, message formats and placements of the shipped
// Epiphany mappings.
//
// These constants used to live in anonymous namespaces inside
// ffbp_epiphany.cpp / autofocus_epiphany.cpp; they are the ground truth
// for what each core charges per unit of work and how the MPMD pipeline
// is laid out on the mesh. The static analyzer's mapping descriptors
// (core/mapping_desc.hpp) must agree with the programs byte-for-byte, so
// both sides now read the same definitions.
#pragma once

#include <array>
#include <cstdint>

#include "autofocus/criterion_kernel.hpp"
#include "common/opcounts.hpp"
#include "sar/merge_kernel.hpp"

namespace esarp::core {

/// Work of predicting the two contributing child rows for a parent row
/// (one merge_geometry evaluation at the row's mid pixel plus index math).
constexpr OpCounts kPredictOps =
    sar::kMergeGeomOps + OpCounts{.fma = 2, .fcmp = 4, .ialu = 10};

/// Streaming message: one range-interpolated column (all block rows at one
/// sample position). Sized for the paper's 6-row blocks (up to 8 rows).
struct RangePacket {
  std::array<cf32, 8> col;
  std::uint8_t rows = 0;
  std::uint8_t valid = 0;
};

/// Streaming message: squared magnitudes of the beam outputs at one sample
/// position (up to 4 beam windows).
struct BeamPacket {
  std::array<float, 4> mags;
  std::uint8_t count = 0;
  std::uint8_t valid = 0;
};

/// Core ids of the 13-core pipeline on the 4x4 mesh.
struct Placement {
  int range[2][3]; ///< [block][window]
  int beam[2][3];
  int corr;
};

/// `compact` selects the paper-style placement (each window pipeline on
/// one mesh row, producers adjacent to consumers); otherwise every
/// producer-consumer pair is several hops apart.
inline Placement make_placement(bool compact) {
  if (compact) {
    // Paper Fig. 9 style: each window pipeline occupies one mesh row;
    // range -> beam are horizontal neighbours, beams flank the columns
    // next to the correlator's column.
    //   block 0: range col 0 -> beam col 1; block 1: range col 3 -> beam
    //   col 2; correlator at (3,1), adjacent to the last beam row.
    return Placement{{{0, 4, 8}, {3, 7, 11}},
                     {{1, 5, 9}, {2, 6, 10}},
                     13};
  }
  return Placement{{{0, 1, 2}, {4, 8, 12}},
                   {{15, 14, 13}, {3, 7, 11}},
                   5};
}

/// Per-sample work charged on a range core: the sample geometry plus one
/// Neville evaluation per block row.
inline OpCounts range_core_sample_ops(const af::AfParams& p) {
  return af::kSampleGeomOps + af::range_stage_ops(p.block_rows);
}
/// Per-sample work charged on a beam core.
inline OpCounts beam_core_sample_ops(const af::AfParams& p) {
  return af::kSampleGeomOps +
         static_cast<std::uint64_t>(p.beams) * af::kBeamOutputOps;
}
/// Per-sample work charged on the correlation core.
inline OpCounts corr_sample_ops(const af::AfParams& p) {
  return static_cast<std::uint64_t>(p.beams) * af::kCorrTermOps +
         OpCounts{.ialu = 4, .branch = 1};
}

} // namespace esarp::core
