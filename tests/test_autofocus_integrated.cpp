// Tests for autofocus integrated into the FFBP factorisation (the paper's
// Fig. 4 loop): AOI block selection, zero-error behaviour, and focus
// recovery under a synthetic flight-path error.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "autofocus/integrated.hpp"
#include "sar/ffbp.hpp"
#include "sar/scene.hpp"

namespace esarp::af {
namespace {

sar::RadarParams params() { return sar::test_params(64, 161); }

sar::Scene one_target(const sar::RadarParams& p) {
  sar::Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  return s;
}

/// Smooth sinusoidal cross-track path error of the given amplitude.
sar::FlightPathError smooth_error(const sar::RadarParams& p,
                                  double amplitude_m) {
  sar::FlightPathError err;
  err.dy.resize(p.n_pulses);
  for (std::size_t i = 0; i < p.n_pulses; ++i)
    err.dy[i] = amplitude_m * std::sin(2.0 * kPi * static_cast<double>(i) /
                                       static_cast<double>(p.n_pulses));
  return err;
}

TEST(SelectAoiBlocks, FindsBrightRegionsWithoutOverlap) {
  sar::SubapertureImage img;
  img.data = Array2D<cf32>(16, 64);
  img.data(4, 10) = {10.0f, 0.0f};
  img.data(10, 40) = {8.0f, 0.0f};
  AfParams p;
  const auto blocks = select_aoi_blocks(img, p, 3);
  ASSERT_GE(blocks.size(), 2u);
  // The brightest block must contain the strongest scatterer.
  const auto [ti, tj] = blocks[0];
  EXPECT_LE(ti, 4u);
  EXPECT_GE(ti + p.block_rows, 4u);
  EXPECT_LE(tj, 10u);
  EXPECT_GE(tj + p.block_cols, 10u);
  // No two selected blocks overlap.
  for (std::size_t i = 0; i < blocks.size(); ++i)
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      const bool sep_t =
          blocks[i].first + p.block_rows <= blocks[j].first ||
          blocks[j].first + p.block_rows <= blocks[i].first;
      const bool sep_r =
          blocks[i].second + p.block_cols <= blocks[j].second ||
          blocks[j].second + p.block_cols <= blocks[i].second;
      EXPECT_TRUE(sep_t || sep_r);
    }
}

TEST(SelectAoiBlocks, EmptyImageYieldsNothing) {
  sar::SubapertureImage img;
  img.data = Array2D<cf32>(16, 64);
  EXPECT_TRUE(select_aoi_blocks(img, AfParams{}, 3).empty());
}

TEST(SelectAoiBlocks, TooSmallImageYieldsNothing) {
  sar::SubapertureImage img;
  img.data = Array2D<cf32>(4, 4, cf32{1.0f, 0.0f});
  EXPECT_TRUE(select_aoi_blocks(img, AfParams{}, 3).empty());
}

TEST(CompensatedMerge, ZeroShiftIsBitIdenticalToPlainMerge) {
  const auto p = sar::test_params(16, 101);
  const auto data = sar::simulate_compressed(p, one_target(p));
  const auto subs = sar::initial_subapertures(data, p);
  sar::FfbpOptions opt;
  const auto plain = sar::merge_pair(subs[0], subs[1], p, opt);
  const auto comp =
      sar::merge_pair_compensated(subs[0], subs[1], p, opt, 0.0f);
  EXPECT_EQ(plain.data, comp.data);
}

TEST(CompensatedMerge, ShiftMovesChildSampling) {
  const auto p = sar::test_params(16, 101);
  const auto data = sar::simulate_compressed(p, one_target(p));
  const auto subs = sar::initial_subapertures(data, p);
  sar::FfbpOptions opt;
  const auto plain = sar::merge_pair(subs[0], subs[1], p, opt);
  const auto shifted =
      sar::merge_pair_compensated(subs[0], subs[1], p, opt, 2.0f);
  EXPECT_NE(plain.data, shifted.data);
  // Misaligning a correctly-aligned pair destroys coherence: the peak of
  // the merged image must drop.
  EXPECT_LT(peak_magnitude(shifted.data), peak_magnitude(plain.data));
}

TEST(IntegratedAutofocus, CleanPathLeavesImageNearlyUnchanged) {
  const auto p = params();
  const auto data = sar::simulate_compressed(p, one_target(p));
  const auto plain = sar::ffbp(data, p);
  const auto focused = ffbp_with_autofocus(data, p);
  // Estimated shifts on an error-free path are small...
  for (const auto& c : focused.corrections)
    EXPECT_LE(std::abs(c.shift_bins), 0.8f) << "level " << c.level;
  // ...and the image peak stays within a few percent of the plain FFBP.
  const double ratio = peak_magnitude(focused.image.data) /
                       peak_magnitude(plain.image.data);
  EXPECT_GT(ratio, 0.9);
}

TEST(IntegratedAutofocus, RecoversFocusUnderPathError) {
  // The headline property: with a ~1-bin smooth path error, FFBP
  // defocuses; the autofocus loop recovers a large part of the peak.
  // Baselines use the same (cubic) merge kernel as the integrated run.
  const auto p = params();
  const auto scene = one_target(p);
  const auto clean = sar::simulate_compressed(p, scene);
  const auto perturbed =
      sar::simulate_compressed(p, scene, smooth_error(p, 0.5));

  const IntegratedOptions opt; // defaults: cubic merges
  const double peak_clean =
      peak_magnitude(sar::ffbp(clean, p, opt.ffbp).image.data);
  const double peak_defocused =
      peak_magnitude(sar::ffbp(perturbed, p, opt.ffbp).image.data);
  const auto focused = ffbp_with_autofocus(perturbed, p, opt);
  const double peak_focused = peak_magnitude(focused.image.data);

  EXPECT_LT(peak_defocused, 0.8 * peak_clean); // the error visibly defocuses
  // Autofocus recovers a substantial fraction of the lost peak.
  EXPECT_GT(peak_focused, 1.15 * peak_defocused);
  // Some correction was actually applied.
  float max_shift = 0.0f;
  for (const auto& c : focused.corrections)
    max_shift = std::max(max_shift, std::abs(c.shift_bins));
  EXPECT_GT(max_shift, 0.1f);
  EXPECT_GT(focused.sweeps_run, 0u);
}

TEST(IntegratedAutofocus, AccountsCriterionWork) {
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, one_target(p));
  const auto plain = sar::ffbp(data, p);
  const auto focused = ffbp_with_autofocus(data, p);
  // The integrated run charges strictly more work than plain FFBP.
  EXPECT_GT(focused.ops.flops(), plain.ops.flops());
  EXPECT_GT(focused.sweeps_run, 0u);
}

TEST(IntegratedAutofocus, FirstLevelGatesTheSweeps) {
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, one_target(p));
  IntegratedOptions late;
  late.first_level = 5;
  IntegratedOptions early;
  early.first_level = 3;
  const auto a = ffbp_with_autofocus(data, p, late);
  const auto b = ffbp_with_autofocus(data, p, early);
  EXPECT_LT(a.sweeps_run, b.sweeps_run);
  for (const auto& c : a.corrections) EXPECT_GE(c.level, 5u);
}

} // namespace
} // namespace esarp::af
