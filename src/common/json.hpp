// Dependency-free JSON support for telemetry artefacts (run manifests,
// Chrome traces): a streaming writer with automatic comma/indent handling
// and a small recursive-descent parser used by the regression tooling and
// the round-trip tests. Not a general-purpose JSON library — documents are
// machine-generated, so the parser favours strictness over recovery.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace esarp {

/// Escape a string for embedding in a JSON document (adds no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming JSON writer. Call sequence is validated with assertions:
///
///   JsonWriter w(os);
///   w.begin_object();
///     w.key("makespan"); w.value(123u);
///     w.key("levels");   w.begin_array();
///       w.value(1.5); w.value("seven");
///     w.end_array();
///   w.end_object();
class JsonWriter {
public:
  /// `indent` spaces per nesting level; 0 writes a compact single line.
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value/container.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v); ///< non-finite values are emitted as null
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// True once the root value is complete (all containers closed).
  [[nodiscard]] bool done() const { return root_done_; }

private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void newline();

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool root_done_ = false;
};

/// Parsed JSON document. Numbers are stored as double (telemetry values
/// fit: cycle counts stay below 2^53 for any simulation this tool runs).
class JsonValue {
public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  /// Typed accessors; throw ContractViolation on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Dotted-path lookup, e.g. find_path("results.makespan_cycles").
  [[nodiscard]] const JsonValue* find_path(std::string_view path) const;

private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a complete JSON document; throws ContractViolation with position
/// information on malformed input or trailing garbage. Inputs that end
/// mid-document get a "truncated" hint (partially written manifests), and
/// containers may nest at most 128 levels (stack-overflow guard).
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Read and parse a JSON file; throws ContractViolation if unreadable.
[[nodiscard]] JsonValue load_json_file(const std::filesystem::path& path);

} // namespace esarp
