// Execution tracing for the simulated chip.
//
// When enabled (Machine::enable_tracing), every timed activity — compute
// blocks, external-memory stalls, DMA waits, channel blocking, barrier
// waits — is recorded as a per-core segment. On top of the raw segments the
// tracer records two richer event kinds:
//
//   - named, nestable spans (push_span/pop_span): phase annotations such as
//     "merge-iter/7" or "criterion-block/3" emitted by the SAR core
//     mappings. Spans nest per core (a per-core open-span stack) and export
//     as enclosing slices above the segment slices of the same core track.
//   - counter tracks (counter_track/counter): time-series samples such as
//     the ext-port read-channel backlog, exported as Chrome counter events
//     so Perfetto draws them as a graph under the core tracks.
//
// Traces export to the Chrome tracing JSON format (load in
// chrome://tracing or https://ui.perfetto.dev) for visual inspection of
// pipeline behaviour, prefetch stalls and barrier imbalance.
//
// Lifecycle: a Tracer is usually owned by its Machine, but a caller may
// construct one externally and hand it to several consecutive Machines
// (Machine's tracer parameter), accumulating one combined trace — or call
// clear() between runs for one trace per run. clear() drops all recorded
// segments/spans/samples and any open span stacks but keeps the enabled
// flag and registered counter-track names, so instrumented components can
// cache track ids across runs. A Machine never clears a tracer it did not
// create.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "epiphany/config.hpp"

namespace esarp::ep {

enum class SegmentKind : std::uint8_t {
  kCompute,
  kExtRead,     ///< blocking SDRAM read stall
  kExtWrite,    ///< posted-write issue (incl. backpressure stall)
  kDmaWait,     ///< waiting on a DMA completion
  kChanSend,    ///< blocked in Channel::send (FIFO full) + injection
  kChanRecv,    ///< blocked in Channel::recv (FIFO empty / in flight)
  kBarrier,
};

[[nodiscard]] constexpr const char* to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kExtRead: return "ext-read";
    case SegmentKind::kExtWrite: return "ext-write";
    case SegmentKind::kDmaWait: return "dma-wait";
    case SegmentKind::kChanSend: return "chan-send";
    case SegmentKind::kChanRecv: return "chan-recv";
    case SegmentKind::kBarrier: return "barrier";
  }
  return "?";
}

struct TraceSegment {
  int core;
  SegmentKind kind;
  Cycles start;
  Cycles end;
};

/// A closed named span on one core's track. `depth` is the nesting level at
/// which it was opened (0 = outermost).
struct TraceSpan {
  int core;
  std::string name;
  Cycles start;
  Cycles end;
  int depth;
};

/// One sample of a counter track.
struct CounterSample {
  int track; ///< id from counter_track()
  Cycles time;
  double value;
};

class Tracer {
public:
  void enable() { enabled_ = true; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record a segment [start, end) on `core`. No-op while disabled or for
  /// empty segments.
  void add(int core, SegmentKind kind, Cycles start, Cycles end) {
    if (!enabled_ || end <= start) return;
    segments_.push_back({core, kind, start, end});
  }

  // --- Named spans -------------------------------------------------------

  /// Open a span named `name` on `core` at time `start`. Spans nest: pops
  /// close the innermost open span. No-op while disabled.
  void push_span(int core, std::string name, Cycles start);

  /// Close the innermost open span on `core` at time `end`. No-op while
  /// disabled or when no span is open (so callers need no disabled-path
  /// bookkeeping).
  void pop_span(int core, Cycles end);

  /// Number of currently open spans on `core`.
  [[nodiscard]] std::size_t open_spans(int core) const;

  // --- Counter tracks ----------------------------------------------------

  /// Register (find-or-create) a counter track; returns its id. Track
  /// names survive clear().
  int counter_track(const std::string& name);

  /// Record one sample on `track` (from counter_track). No-op while
  /// disabled. Samples need not be time-ordered; export sorts them.
  void counter(int track, Cycles time, double value) {
    if (!enabled_) return;
    samples_.push_back({track, time, value});
  }

  [[nodiscard]] const std::vector<TraceSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<CounterSample>& counter_samples() const {
    return samples_;
  }
  [[nodiscard]] const std::vector<std::string>& counter_tracks() const {
    return track_names_;
  }
  [[nodiscard]] std::size_t size() const { return segments_.size(); }

  /// Drop all recorded events and open-span stacks; keeps the enabled flag
  /// and registered counter-track names (see lifecycle note above). Call
  /// between reuses when each run should produce a separate trace.
  void clear();

  /// Write the trace as Chrome tracing JSON: complete 'X' events for
  /// segments and named spans (one tid per core, named via 'M' metadata
  /// events), 'C' counter events for the counter tracks; timestamps in
  /// microseconds of chip time at the given clock. Spans still open are
  /// closed at the latest event time and flagged with "unclosed":true.
  void write_chrome_json(const std::filesystem::path& path,
                         double clock_hz = 1e9) const;

  /// Total traced cycles of `kind` across cores, for quick assertions.
  [[nodiscard]] Cycles total_cycles(SegmentKind kind) const;

  /// Total cycles covered by closed spans named `name` across cores.
  [[nodiscard]] Cycles total_span_cycles(const std::string& name) const;

private:
  struct OpenSpan {
    std::string name;
    Cycles start;
  };
  struct CoreStack {
    int core;
    std::vector<OpenSpan> open;
  };
  [[nodiscard]] CoreStack* find_stack(int core);
  [[nodiscard]] const CoreStack* find_stack(int core) const;

  bool enabled_ = false;
  std::vector<TraceSegment> segments_;
  std::vector<TraceSpan> spans_;
  std::vector<CounterSample> samples_;
  std::vector<std::string> track_names_;
  std::vector<CoreStack> stacks_;
};

} // namespace esarp::ep
