// Grayscale image output (binary PGM, P5) for reproducing the paper's
// Figure 7 panels. Complex SAR images are rendered as log-magnitude with a
// configurable dynamic range, the standard display convention for SAR.
#pragma once

#include <filesystem>
#include <string>

#include "common/array2d.hpp"
#include "common/types.hpp"

namespace esarp {

struct PgmOptions {
  /// Displayed dynamic range below the image peak [dB].
  double dynamic_range_db = 40.0;
  /// If true, apply 20*log10(|x|) before scaling; otherwise linear magnitude.
  bool log_scale = true;
  /// Invert (targets dark on light background) to match printed figures.
  bool invert = false;
};

/// Write |img| as an 8-bit binary PGM. Returns bytes written.
std::size_t write_pgm(const std::filesystem::path& path,
                      const Array2D<cf32>& img, const PgmOptions& opts = {});

/// Write a real-valued image (already scaled by caller) as PGM,
/// normalising [min,max] -> [0,255].
std::size_t write_pgm(const std::filesystem::path& path,
                      const Array2D<float>& img, bool invert = false);

/// Render |img| to an ASCII-art string (for quick terminal inspection in
/// benches/examples; `cols` output characters wide, aspect-corrected).
std::string ascii_render(const Array2D<cf32>& img, std::size_t cols = 72,
                         double dynamic_range_db = 30.0);

} // namespace esarp
