#include "serve/trace.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"

namespace esarp::serve {

namespace {

constexpr const char* kTraceSchemaV1 = "esarp-arrival-trace/1";
constexpr const char* kTraceSchemaV2 = "esarp-arrival-trace/2";

/// Exponential inter-arrival sample at mean 1/rate (inverse transform).
[[nodiscard]] double exp_sample(Rng& rng, double rate_hz) {
  return -std::log(1.0 - rng.uniform()) / rate_hz;
}

/// Per-job priority draw on a stream independent of the arrival Rng (a
/// SplitMix64 finalizer over seed and id), so the mix fractions never
/// shift any arrival time of the same seed.
[[nodiscard]] Priority roll_priority(std::uint64_t seed, int id,
                                     double frac_low, double frac_high) {
  if (frac_low <= 0.0 && frac_high <= 0.0) return Priority::kNormal;
  SplitMix64 sm(seed ^ 0x7072696f72697479ULL /* "priority" */ ^
                (static_cast<std::uint64_t>(static_cast<unsigned>(id))
                 << 17));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  if (u < frac_low) return Priority::kLow;
  if (u < frac_low + frac_high) return Priority::kHigh;
  return Priority::kNormal;
}

/// Per-job deadline scale on the same arrival-independent stream family
/// as roll_priority (different key), uniform in [1 - jitter, 1 + jitter].
[[nodiscard]] double roll_deadline_scale(std::uint64_t seed, int id,
                                         double jitter) {
  if (jitter <= 0.0) return 1.0;
  SplitMix64 sm(seed ^ 0x646561646c696e65ULL /* "deadline" */ ^
                (static_cast<std::uint64_t>(static_cast<unsigned>(id))
                 << 17));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return 1.0 - jitter + 2.0 * jitter * u;
}

} // namespace

ArrivalTrace make_trace(const TraceParams& p) {
  ESARP_EXPECTS(p.n_jobs >= 1);
  ESARP_EXPECTS(p.rate_hz > 0.0);
  ESARP_EXPECTS(!p.bursty || p.burst_mean >= 1.0);
  ESARP_EXPECTS(p.frac_low >= 0.0 && p.frac_high >= 0.0 &&
                p.frac_low + p.frac_high <= 1.0);
  ESARP_EXPECTS(p.deadline_jitter >= 0.0 && p.deadline_jitter < 1.0);

  ArrivalTrace t;
  t.seed = p.seed;
  t.jobs.reserve(p.n_jobs);

  JobSpec proto;
  proto.n_pulses = p.n_pulses;
  proto.n_range = p.n_range;
  proto.algo = p.algo;
  proto.n_cores = p.n_cores;
  proto.deadline_s = p.deadline_s;

  Rng rng(p.seed);
  double now = 0.0;
  while (t.jobs.size() < p.n_jobs) {
    if (!p.bursty) {
      now += exp_sample(rng, p.rate_hz);
      JobSpec j = proto;
      j.id = static_cast<int>(t.jobs.size());
      j.arrival_s = now;
      j.priority = roll_priority(p.seed, j.id, p.frac_low, p.frac_high);
      j.deadline_s =
          p.deadline_s * roll_deadline_scale(p.seed, j.id, p.deadline_jitter);
      t.jobs.push_back(j);
      continue;
    }
    // Bursts arrive as a Poisson process at rate/burst_mean so the *mean*
    // job rate stays rate_hz; burst sizes are geometric with mean
    // burst_mean, and every job in a burst lands at the burst instant.
    now += exp_sample(rng, p.rate_hz / p.burst_mean);
    std::size_t burst = 1;
    while (rng.uniform() < 1.0 - 1.0 / p.burst_mean) ++burst;
    for (std::size_t i = 0; i < burst && t.jobs.size() < p.n_jobs; ++i) {
      JobSpec j = proto;
      j.id = static_cast<int>(t.jobs.size());
      j.arrival_s = now;
      j.priority = roll_priority(p.seed, j.id, p.frac_low, p.frac_high);
      j.deadline_s =
          p.deadline_s * roll_deadline_scale(p.seed, j.id, p.deadline_jitter);
      t.jobs.push_back(j);
    }
  }
  return t;
}

void save_trace(const std::filesystem::path& path, const ArrivalTrace& t) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream f(tmp);
    ESARP_REQUIRE(f.good(), "cannot open " + tmp.string() + " for writing");
    JsonWriter w(f);
    w.begin_object();
    w.kv("schema", kTraceSchemaV2);
    w.kv("seed", t.seed);
    w.key("jobs");
    w.begin_array();
    for (const JobSpec& j : t.jobs) {
      w.begin_object();
      w.kv("id", j.id);
      w.kv("arrival_s", j.arrival_s);
      w.kv("n_pulses", static_cast<std::uint64_t>(j.n_pulses));
      w.kv("n_range", static_cast<std::uint64_t>(j.n_range));
      w.kv("algo", to_string(j.algo));
      w.kv("n_cores", j.n_cores);
      w.kv("deadline_s", j.deadline_s);
      w.kv("priority", to_string(j.priority));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    f << "\n";
    ESARP_REQUIRE(f.good(), "failed writing " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

ArrivalTrace load_trace(const std::filesystem::path& path) {
  const JsonValue doc = load_json_file(path);
  const JsonValue* schema = doc.find("schema");
  ESARP_REQUIRE(schema != nullptr && schema->is_string(),
                path.string() + ": missing trace \"schema\"");
  const std::string& got = schema->as_string();
  const bool v2 = got == kTraceSchemaV2;
  ESARP_REQUIRE(v2 || got == kTraceSchemaV1,
                path.string() + ": unsupported trace schema \"" + got +
                    "\" (supported: " + kTraceSchemaV1 + ", " +
                    kTraceSchemaV2 + ")");
  const JsonValue* seed = doc.find("seed");
  ESARP_REQUIRE(seed != nullptr && seed->is_number(),
                path.string() + ": missing \"seed\"");
  const JsonValue* jobs = doc.find("jobs");
  ESARP_REQUIRE(jobs != nullptr && jobs->is_array(),
                path.string() + ": missing \"jobs\" array");

  ArrivalTrace t;
  t.seed = static_cast<std::uint64_t>(seed->as_number());
  double prev_arrival = -1.0;
  for (const JsonValue& e : jobs->as_array()) {
    const auto num = [&](const char* key) {
      const JsonValue* v = e.find(key);
      ESARP_REQUIRE(v != nullptr && v->is_number(),
                    path.string() + ": job missing numeric \"" +
                        std::string(key) + "\"");
      return v->as_number();
    };
    JobSpec j;
    j.id = static_cast<int>(num("id"));
    j.arrival_s = num("arrival_s");
    j.n_pulses = static_cast<std::size_t>(num("n_pulses"));
    j.n_range = static_cast<std::size_t>(num("n_range"));
    j.n_cores = static_cast<int>(num("n_cores"));
    j.deadline_s = num("deadline_s");
    const JsonValue* algo = e.find("algo");
    ESARP_REQUIRE(algo != nullptr && algo->is_string(),
                  path.string() + ": job missing \"algo\"");
    j.algo = algo_from_string(algo->as_string());
    // v2 carries a per-job priority class; v1 jobs default to normal. A
    // v1 file that happens to carry the field is accepted leniently.
    const JsonValue* prio = e.find("priority");
    if (v2) {
      ESARP_REQUIRE(prio != nullptr && prio->is_string(),
                    path.string() + ": job missing \"priority\" (required " +
                        "by " + kTraceSchemaV2 + ")");
    }
    if (prio != nullptr) {
      ESARP_REQUIRE(prio->is_string(),
                    path.string() + ": job \"priority\" must be a string");
      j.priority = priority_from_string(prio->as_string());
    }
    ESARP_REQUIRE(j.arrival_s >= prev_arrival,
                  path.string() + ": jobs not sorted by arrival_s");
    prev_arrival = j.arrival_s;
    t.jobs.push_back(j);
  }
  ESARP_REQUIRE(!t.jobs.empty(), path.string() + ": empty trace");
  return t;
}

} // namespace esarp::serve
