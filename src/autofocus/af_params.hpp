// Autofocus criterion-calculation workload definition.
//
// Before each FFBP subaperture merge, candidate flight-path compensations
// are tested; a path error is approximated as a linear shift of one child
// subimage against the other (paper Section II-A). For each candidate the
// two contributing 6x6 pixel blocks are resampled with cubic (Neville)
// interpolation along tilted paths — range direction first, then beam
// direction — and scored with the correlation criterion of eq. 6. Three
// sliding 4-column range windows ("three iterations" in the paper's
// dataflow) cover the 6x6 block.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace esarp::af {

struct AfParams {
  std::size_t block_rows = 6; ///< paper: 6x6 pixel blocks
  std::size_t block_cols = 6;
  std::size_t windows = 3;    ///< sliding 4-column range windows
  std::size_t beams = 3;      ///< sliding 4-row beam windows per sample
  std::size_t samples_per_row = 12; ///< interpolation positions per window
  float tilt = 0.30f; ///< beam drift per normalised range position (the
                      ///< "tilted paths in memory" the kernels sweep)
  std::vector<float> shift_candidates = default_shifts();

  /// Default candidate compensations: +-0.9 range bins in 8 steps.
  [[nodiscard]] static std::vector<float> default_shifts() {
    std::vector<float> s;
    for (int i = 0; i < 8; ++i)
      s.push_back(-0.9f + 0.257143f * static_cast<float>(i));
    return s;
  }

  [[nodiscard]] std::size_t pixels() const { return block_rows * block_cols; }

  void validate() const {
    ESARP_EXPECTS(block_rows >= 6 && block_cols >= 6);
    ESARP_EXPECTS(windows >= 1 && windows + 3 <= block_cols);
    ESARP_EXPECTS(beams >= 1 && beams + 3 <= block_rows);
    ESARP_EXPECTS(samples_per_row >= 1);
    ESARP_EXPECTS(!shift_candidates.empty());
  }
};

} // namespace esarp::af
