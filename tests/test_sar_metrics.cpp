// Tests for IRF metrology, azimuth presummation, and noise injection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"
#include "sar/metrics.hpp"
#include "sar/presum.hpp"
#include "sar/scene.hpp"

namespace esarp::sar {
namespace {

TEST(AnalyzeCut, SincCutMatchesTheory) {
  // |sinc| with first nulls at +-4 bins: -3 dB width ~0.886*4, PSLR -13 dB.
  std::vector<float> cut(256);
  for (std::size_t i = 0; i < cut.size(); ++i) {
    const double u = (static_cast<double>(i) - 128.0) / 4.0;
    cut[i] = static_cast<float>(
        std::abs(u) < 1e-9 ? 1.0 : std::abs(std::sin(kPi * u) / (kPi * u)));
  }
  const IrfAxis a = analyze_cut(cut);
  ASSERT_TRUE(a.valid);
  EXPECT_NEAR(a.peak_index, 128.0, 0.05);
  EXPECT_NEAR(a.width_3db, 0.886 * 4.0, 0.2);
  EXPECT_NEAR(a.pslr_db, -13.26, 0.6);
  EXPECT_LT(a.islr_db, -9.0); // sinc ISLR ~ -10 dB
}

TEST(AnalyzeCut, GaussianHasNoSidelobes) {
  std::vector<float> cut(128);
  for (std::size_t i = 0; i < cut.size(); ++i) {
    const double u = (static_cast<double>(i) - 64.0) / 6.0;
    cut[i] = static_cast<float>(std::exp(-0.5 * u * u));
  }
  const IrfAxis a = analyze_cut(cut);
  ASSERT_TRUE(a.valid);
  // Gaussian -3 dB width = 2*sigma*sqrt(2 ln sqrt2...) = 2.355*sigma/…:
  // FWHM of amplitude at 1/sqrt(2): 2*sigma*sqrt(ln 2) ~ 1.665*sigma.
  EXPECT_NEAR(a.width_3db, 1.665 * 6.0, 0.5);
  EXPECT_LT(a.pslr_db, -35.0); // numerically tiny sidelobes only
}

TEST(AnalyzeCut, DegenerateInputsAreInvalid) {
  std::vector<float> flat(32, 1.0f);
  EXPECT_FALSE(analyze_cut(std::vector<float>(3, 1.0f)).valid);
  // Peak at the edge cannot be analysed.
  std::vector<float> edge(32, 0.0f);
  edge[0] = 1.0f;
  EXPECT_FALSE(analyze_cut(edge).valid);
}

TEST(AnalyzePointTarget, GbpResolutionMatchesApertureTheory) {
  // Azimuth -3 dB resolution of a fully-processed aperture:
  // ~0.886 * lambda * R / (2 L) -> in azimuth bins of size dx * R/R = dx.
  const auto p = test_params(64, 161);
  Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const auto g = gbp(data, p);
  const IrfReport rep = analyze_point_target(g.image.data);

  ASSERT_TRUE(rep.azimuth.valid);
  const double r_target = p.near_range_m + 80.0 * p.range_bin_m;
  const double aperture =
      static_cast<double>(p.n_pulses) * p.pulse_spacing_m;
  // Azimuth bin size on the polar grid at target range [m].
  const double az_bin_m =
      p.theta_span_rad / static_cast<double>(p.n_pulses) * r_target;
  const double theory_m = 0.886 * p.wavelength_m() * r_target /
                          (2.0 * aperture);
  EXPECT_NEAR(rep.azimuth.width_3db * az_bin_m, theory_m,
              0.6 * theory_m);
  // Range width tracks the compressed-pulse mainlobe (~1.2 bins at the
  // default 1.3-bin first-null envelope).
  ASSERT_TRUE(rep.range.valid);
  EXPECT_NEAR(rep.range.width_3db, 1.15, 0.5);
}

TEST(Presum, ReducesPulseCountAndPreservesBroadsideSignal) {
  const auto p = test_params(64, 101);
  Scene s;
  s.targets = {{0.0, p.near_range_m + 50.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const auto ps = presum(data, p, 4);
  EXPECT_EQ(ps.data.rows(), 16u);
  EXPECT_EQ(ps.params.n_pulses, 16u);
  EXPECT_DOUBLE_EQ(ps.params.pulse_spacing_m, 4.0);
  // Broadside energy is preserved (phases nearly aligned within a group).
  EXPECT_GT(peak_magnitude(ps.data), 0.7 * peak_magnitude(data));
}

TEST(Presum, GainsSnrAgainstWhiteNoise) {
  const auto p = test_params(64, 101);
  Scene s;
  s.targets = {{0.0, p.near_range_m + 50.0 * p.range_bin_m, 1.0f}};
  auto data = simulate_compressed(p, s);
  Rng rng(42);
  add_noise(data, rng, 0.15f);

  const double snr_before = peak_to_median(data);
  const auto ps = presum(data, p, 4);
  const double snr_after = peak_to_median(ps.data);
  // Coherent gain on the target, incoherent on the noise: ~sqrt(4) = 2x.
  EXPECT_GT(snr_after, 1.4 * snr_before);
}

TEST(Presum, DownstreamFfbpStillFocuses) {
  const auto p = test_params(64, 101);
  Scene s;
  s.targets = {{0.0, p.near_range_m + 50.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const auto ps = presum(data, p, 2);
  FfbpOptions cubic;
  cubic.interp = Interp::kCubic; // low-artifact merges for a clean peak
  const auto img = ffbp(ps.data, ps.params, cubic);
  // The target focuses at mid-azimuth, same range bin.
  const IrfReport rep = analyze_point_target(img.image.data);
  EXPECT_NEAR(static_cast<double>(rep.peak_col), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(rep.peak_row),
              static_cast<double>(ps.params.n_pulses) / 2.0, 3.0);
  // And back-projection work dropped with the data rate.
  const auto full = ffbp(data, p, cubic);
  EXPECT_LT(img.ops.flops(), full.ops.flops());
}

TEST(Presum, NyquistBoundIsSane) {
  const auto p = test_params(64, 101);
  const std::size_t f = max_presum_factor(p);
  EXPECT_GE(f, 1u);
  // lambda = 2 m, span ~0.15 rad -> max spacing ~6-7 m -> factor 6-7.
  EXPECT_GE(f, 4u);
  EXPECT_LE(f, 10u);
}

TEST(Presum, RejectsNonDividingFactor) {
  const auto p = test_params(64, 101);
  const Array2D<cf32> data(64, 101);
  EXPECT_THROW((void)presum(data, p, 7), ContractViolation);
}

TEST(AddNoise, ZeroSigmaIsIdentityAndStatsMatch) {
  Array2D<cf32> data(16, 33);
  Rng rng(1);
  add_noise(data, rng, 0.0f);
  for (const auto& px : data.flat()) EXPECT_EQ(px, (cf32{0.0f, 0.0f}));

  add_noise(data, rng, 0.5f);
  RunningStats st;
  for (const auto& px : data.flat()) {
    st.add(px.real());
    st.add(px.imag());
  }
  EXPECT_NEAR(st.mean(), 0.0, 0.06);
  EXPECT_NEAR(st.stddev(), 0.5, 0.06);
}

} // namespace
} // namespace esarp::sar
