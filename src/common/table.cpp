#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/assert.hpp"

namespace esarp {

void Table::header(std::vector<std::string> cols, std::string alignment) {
  header_ = std::move(cols);
  align_ = std::move(alignment);
}

void Table::row(std::vector<std::string> cols) {
  if (!header_.empty()) ESARP_EXPECTS(cols.size() == header_.size());
  rows_.push_back({std::move(cols), false});
}

void Table::separator() { rows_.push_back({{}, true}); }

void Table::note(std::string line) { notes_.push_back(std::move(line)); }

void Table::print(std::ostream& os) const { os << str(); }

std::string Table::str() const {
  // Compute column widths.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> w(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    w[c] = std::max(w[c], header_[c].size());
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      w[c] = std::max(w[c], r.cells[c].size());

  auto align_of = [&](std::size_t c) -> char {
    if (c < align_.size()) return align_[c];
    return c == 0 ? 'l' : 'r';
  };
  auto emit_cell = [&](std::ostringstream& os2, const std::string& s,
                       std::size_t c) {
    const std::size_t pad = w[c] - s.size();
    if (align_of(c) == 'l')
      os2 << s << std::string(pad, ' ');
    else
      os2 << std::string(pad, ' ') << s;
  };
  auto rule = [&](std::ostringstream& os2) {
    for (std::size_t c = 0; c < ncols; ++c) {
      os2 << std::string(w[c] + 2, '-');
      if (c + 1 < ncols) os2 << '+';
    }
    os2 << '\n';
  };

  std::ostringstream out;
  out << "\n== " << title_ << " ==\n";
  if (!header_.empty()) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << ' ';
      std::ostringstream cell;
      emit_cell(cell, header_[c], c);
      out << cell.str() << ' ';
      if (c + 1 < ncols) out << '|';
    }
    out << '\n';
    rule(out);
  }
  for (const auto& r : rows_) {
    if (r.is_separator) {
      rule(out);
      continue;
    }
    for (std::size_t c = 0; c < ncols; ++c) {
      out << ' ';
      std::ostringstream cell;
      emit_cell(cell, c < r.cells.size() ? r.cells[c] : std::string{}, c);
      out << cell.str() << ' ';
      if (c + 1 < ncols) out << '|';
    }
    out << '\n';
  }
  for (const auto& n : notes_) out << "  * " << n << '\n';
  return out.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::eng(double v, const std::string& unit, int precision) {
  static constexpr const char* prefixes[] = {"", "k", "M", "G", "T"};
  int idx = 0;
  double mag = std::abs(v);
  while (mag >= 1000.0 && idx < 4) {
    mag /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << ' ' << prefixes[idx]
     << unit;
  return os.str();
}

} // namespace esarp
