#!/usr/bin/env bash
# Asserts the esarp CLI's documented exit-code contract (tools/esarp_cli.cpp
# header): 0 ok, 2 usage error, 3 simulated-chip deadlock, 4 contract
# violation (including the max_cycles watchdog), 5 unrecovered fault,
# 6 static-analysis (esarp lint) findings.
# ctest only distinguishes zero from nonzero, so scripted checks are the
# one place the *specific* codes scripts and CI key off are pinned down.
#
# Usage: cli_exit_codes.sh <path-to-esarp> <scratch-dir>
set -u

esarp="$1"
scratch="${2:-.}"
ds="$scratch/cli_exit_codes.esrp"
fails=0

expect() {
  local want="$1"
  shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: expected exit $want, got $got: $*" >&2
    fails=$((fails + 1))
  else
    echo "ok (exit $want): $*"
  fi
}

expect 0 "$esarp" simulate --out "$ds" --pulses 32 --range 65

# Recovered campaign: transfer faults retried back to the exact image.
expect 0 "$esarp" chaos --in "$ds" --cores 4 --seed 7 --dma-corrupt 1e-3

# No faults requested -> usage error.
expect 2 "$esarp" chaos --in "$ds" --cores 4

# Early fail-stop with resilience off: survivors wait forever at the next
# barrier and the engine quiesces -> SimDeadlock.
expect 3 "$esarp" chaos --in "$ds" --cores 4 --fail 3@1000 --no-resilience

# Cycle budget far below the real makespan -> WatchdogExpired, which is a
# ContractViolation (the run asked for an impossible bound).
expect 4 "$esarp" chaos --in "$ds" --cores 4 --dma-corrupt 1e-3 \
  --max-cycles 1000

# Every transfer attempt corrupted -> retries exhaust -> FaultUnrecovered.
expect 5 "$esarp" chaos --in "$ds" --cores 4 --dma-corrupt 1.0

# Serve fleet: a small clean campaign terminates every job.
expect 0 "$esarp" serve --gen poisson --jobs-count 4 --chips 2 \
  --pulses 32 --range 65 --rate 2000 --seed 5

# No trace and no generator -> usage error; so is an unknown generator.
expect 2 "$esarp" serve
expect 2 "$esarp" serve --gen no-such-process

# Malformed generator and policy knobs are usage errors (exit 2), never
# contract aborts: the values are validated before any fleet is built.
expect 2 "$esarp" serve --gen poisson --jobs-count 0
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 0
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate abc
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 --pulses 0
expect 2 "$esarp" serve --gen bursty --jobs-count 4 --rate 2000 \
  --burst-mean 0.5
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --deadline 0
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --priority-mix 0.5,0.5
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --deadline-jitter 1.5
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --dispatch no-such-order
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --shed --shed-factor 0
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --shed --shed-priority urgent
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --hedge --hedge-margin -1
expect 2 "$esarp" serve --gen poisson --jobs-count 4 --rate 2000 \
  --probation -1

# Every dispatch fail-stops its chip: the whole fleet dies with jobs
# outstanding and the campaign aborts -> FaultUnrecovered.
expect 5 "$esarp" serve --gen poisson --jobs-count 4 --chips 2 \
  --pulses 32 --range 65 --rate 2000 --seed 5 --chip-kill 1.0

# Static mapping analysis: the shipped mappings lint clean...
expect 0 "$esarp" lint --mapping all
# ...an unknown mapping name is a usage error...
expect 2 "$esarp" lint --mapping no-such-mapping
# ...and a mapping that provably cannot fit (double-buffered prefetch at
# the paper's 1001-bin rows overflows the four-bank local store) exits
# with the distinct findings code.
expect 6 "$esarp" lint --mapping ffbp-db --pulses 32 --range 1001

if [ "$fails" -gt 0 ]; then
  echo "cli_exit_codes: $fails check(s) failed" >&2
  exit 1
fi
echo "cli_exit_codes: all exit codes match the documented contract"
