// SweepRunner determinism contract (docs/performance.md): fanning
// independent Machine runs across host threads must produce byte-identical
// results for ANY thread count, and the burst transfer model must produce
// exactly the same simulated cycle counts as the per-chunk model it
// replaces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/autofocus_epiphany.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "epiphany/machine_metrics.hpp"
#include "host/sweep_runner.hpp"
#include "autofocus/workload.hpp"
#include "sar/scene.hpp"
#include "telemetry/manifest.hpp"

namespace esarp {
namespace {

TEST(SweepRunner, GathersResultsInIndexOrder) {
  host::SweepRunner pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  const auto out =
      pool.run(100, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(SweepRunner, SingleJobRunsInline) {
  host::SweepRunner pool(1);
  const auto caller = std::this_thread::get_id();
  const auto ids = pool.run(
      3, [&](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(SweepRunner, PropagatesWorkerExceptions) {
  host::SweepRunner pool(4);
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) -> int {
                          if (i == 5) throw std::runtime_error("boom");
                          return 0;
                        }),
               std::runtime_error);
}

TEST(SweepRunner, ThrowAtEitherEndFailsTheRunWithoutHanging) {
  // The serve fleet leans on this: a job that dies on the very first or
  // very last index must fail the whole run() promptly — workers past the
  // throw still join, nothing deadlocks, and the exception surfaces.
  host::SweepRunner pool(8);
  for (const std::size_t bad : {std::size_t{0}, std::size_t{63}}) {
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) -> int {
                            if (i == bad) throw std::runtime_error("edge");
                            return static_cast<int>(i);
                          }),
                 std::runtime_error);
  }
  // The pool stays usable after a failed run.
  const auto out = pool.run(16, [](std::size_t i) { return i * 2; });
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(out[15], 30u);
}

TEST(SweepRunner, OneOfSeveralThrownExceptionsSurfaces) {
  // Multiple throwing jobs: exactly one exception is rethrown (the first
  // recorded — chronological, not index order) and it is one of ours, not
  // a terminate() or a silent success.
  host::SweepRunner pool(4);
  try {
    (void)pool.run(32, [](std::size_t i) -> int {
      if (i == 3 || i == 20) throw std::runtime_error("worker-failure");
      return 0;
    });
    FAIL() << "expected a worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker-failure");
  }
}

TEST(SweepRunner, JobsFromEnvironment) {
  ::setenv("ESARP_JOBS", "3", 1);
  EXPECT_EQ(host::sweep_jobs_from_env(1), 3);
  ::unsetenv("ESARP_JOBS");
  EXPECT_EQ(host::sweep_jobs_from_env(7), 7);
  EXPECT_GE(host::sweep_jobs_from_env(0), 1); // hardware fallback
}

/// Runs the same FFBP core-count sweep with `jobs` host threads and
/// returns the serialized per-run manifests (no wall-clock fields, so the
/// bytes must not depend on the thread count).
std::string sweep_manifests(int jobs) {
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const std::vector<int> cores = {1, 2, 4, 8};

  host::SweepRunner pool(jobs);
  const auto results = pool.run(cores.size(), [&](std::size_t i) {
    core::FfbpMapOptions opt;
    opt.n_cores = cores[i];
    return core::run_ffbp_epiphany(data, p, opt);
  });

  std::ostringstream os;
  for (std::size_t i = 0; i < results.size(); ++i) {
    telemetry::RunManifest man("sweep_determinism");
    ep::fill_manifest(man, results[i].perf, results[i].energy);
    man.add_workload("n_cores", static_cast<double>(cores[i]));
    man.write(os);
  }
  return os.str();
}

TEST(SweepRunner, ManifestsAreThreadCountInvariant) {
  const std::string serial = sweep_manifests(1);
  EXPECT_EQ(serial, sweep_manifests(4));
  const int hw =
      static_cast<int>(std::thread::hardware_concurrency());
  EXPECT_EQ(serial, sweep_manifests(std::max(hw, 2)));
}

// ---------------------------------------------------------------------
// Burst transfer model: ChipConfig::burst_transfers collapses per-chunk
// DMA/ext-port loops into single analytically-costed events. The ISSUE
// contract is exact equivalence of the simulated timing.

TEST(BurstTransfers, FfbpCyclesAndImageMatchPerChunk) {
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  core::FfbpMapOptions opt;
  opt.n_cores = 16;

  ep::ChipConfig burst;
  burst.burst_transfers = true;
  ep::ChipConfig chunked;
  chunked.burst_transfers = false;

  const auto a = core::run_ffbp_epiphany(data, p, opt, burst);
  const auto b = core::run_ffbp_epiphany(data, p, opt, chunked);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.perf.ext.read_bytes, b.perf.ext.read_bytes);
  // Burst mode fuses the two per-level prefetch DMAs into one wait, so it
  // must process strictly fewer engine events for the same timing.
  EXPECT_LT(a.perf.engine_events, b.perf.engine_events);
}

TEST(BurstTransfers, GbpCyclesMatchPerChunk) {
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));

  ep::ChipConfig burst;
  burst.burst_transfers = true;
  ep::ChipConfig chunked;
  chunked.burst_transfers = false;

  const auto a = core::run_gbp_epiphany(data, p, 16, burst);
  const auto b = core::run_gbp_epiphany(data, p, 16, chunked);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.image, b.image);
}

TEST(BurstTransfers, AutofocusCyclesMatchPerChunk) {
  af::AfParams p;
  Rng rng(123);
  std::vector<af::BlockPair> pairs;
  for (int i = 0; i < 4; ++i)
    pairs.push_back(
        af::synthetic_block_pair(rng, p, rng.uniform_f(-0.5f, 0.5f)));

  ep::ChipConfig burst;
  burst.burst_transfers = true;
  ep::ChipConfig chunked;
  chunked.burst_transfers = false;

  const auto a = core::run_autofocus_mpmd(pairs, p, {}, burst);
  const auto b = core::run_autofocus_mpmd(pairs, p, {}, chunked);
  EXPECT_EQ(a.cycles, b.cycles);
}

} // namespace
} // namespace esarp
