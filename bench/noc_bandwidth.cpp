// Validates the simulated interconnect against the paper's Section III
// datasheet numbers: 64 GB/s NoC cross-section bandwidth, 512 GB/s total
// on-chip bandwidth, 8 GB/s total off-chip bandwidth, single-cycle
// per-node routing latency at 1 GHz.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"
#include "epiphany/machine_metrics.hpp"

static int bench_body() {
  using namespace esarp;
  using namespace esarp::ep;
  const ChipConfig cfg;
  constexpr std::size_t kBytesPerFlow = 1u << 20; // 1 MB per flow

  // --- Bisection bandwidth: 8 flows crossing the vertical mid-cut. ---
  double bisection_gbs = 0.0;
  {
    Machine m(cfg);
    for (int r = 0; r < 4; ++r) {
      for (int half = 0; half < 2; ++half) {
        // One flow per row per direction: (r,1)->(r,2) and (r,2)->(r,1).
        const int src = m.id_of({r, half == 0 ? 1 : 2});
        const int dst_core = m.id_of({r, half == 0 ? 2 : 1});
        const Coord dst = m.coord_of(dst_core);
        // Each receiver gets one incoming flow: a real local-store sink
        // (the hazard sanitizer rejects remote windows into host memory).
        auto sink = m.core(dst_core).mem().alloc<std::byte>(1024);
        m.launch(src, [dst, sink](CoreCtx& ctx) -> Task {
          std::byte payload[1024] = {};
          for (std::size_t sent = 0; sent < kBytesPerFlow;
               sent += sizeof(payload))
            co_await ctx.write_remote(dst, sink.data(), payload,
                                      sizeof(payload));
        });
      }
    }
    const Cycles c = m.run();
    const double total_bytes = 8.0 * kBytesPerFlow;
    bisection_gbs = total_bytes / m.seconds(c) / 1e9;
  }

  // --- Aggregate on-chip bandwidth: all 16 cores stream to a neighbour
  //     over disjoint links (4 independent rows x 4 directed flows). ---
  double aggregate_gbs = 0.0;
  {
    Machine m(cfg);
    for (int id = 0; id < 16; ++id) {
      const Coord src = m.coord_of(id);
      const Coord dst{src.row, (src.col + 1) % 4};
      // The ring gives every core exactly one upstream neighbour, so one
      // local-store sink per destination core suffices.
      auto sink = m.core(m.id_of(dst)).mem().alloc<std::byte>(1024);
      m.launch(id, [dst, sink](CoreCtx& ctx) -> Task {
        std::byte payload[1024] = {};
        for (std::size_t sent = 0; sent < kBytesPerFlow;
             sent += sizeof(payload))
          co_await ctx.write_remote(dst, sink.data(), payload,
                                    sizeof(payload));
      });
    }
    const Cycles c = m.run();
    aggregate_gbs = 16.0 * kBytesPerFlow / m.seconds(c) / 1e9;
  }

  // --- Off-chip bandwidth: all cores DMA-stream from SDRAM. ---
  double offchip_gbs = 0.0;
  telemetry::MetricsRegistry offchip_metrics;
  PerfReport offchip_perf;
  EnergyReport offchip_energy;
  PowerReport offchip_power;
  {
    Machine m(bench::power_chip(cfg), 64u << 20);
    auto src = m.ext().alloc<std::byte>(16 * kBytesPerFlow);
    for (int id = 0; id < 16; ++id) {
      const std::byte* base = src.data() + id * kBytesPerFlow;
      m.launch(id, [base](CoreCtx& ctx) -> Task {
        auto buf = ctx.local().alloc<std::byte>(8192);
        for (std::size_t got = 0; got < kBytesPerFlow; got += 8192) {
          DmaJob j = ctx.dma_read_ext(buf.data(), base + got, 8192);
          co_await ctx.wait(j);
        }
      });
    }
    const Cycles c = m.run();
    offchip_gbs = 16.0 * kBytesPerFlow / m.seconds(c) / 1e9;
    collect_machine_metrics(m);
    offchip_metrics = m.metrics();
    offchip_perf = m.report();
    offchip_power = collect_power(m, offchip_perf);
    offchip_energy = offchip_power.energy;
  }

  // --- Per-hop latency: probe an idle mesh. ---
  Machine probe(cfg);
  const Cycles lat1 =
      probe.noc().probe({0, 0}, {0, 1}, 8, 0, Mesh::kOnChipWrite);
  const Cycles lat6 =
      probe.noc().probe({0, 0}, {3, 3}, 8, 0, Mesh::kOnChipWrite);
  const double per_hop = static_cast<double>(lat6 - lat1) / 5.0;

  Table t("eGrid NoC: simulated vs datasheet bandwidth (paper Section III)");
  t.header({"Metric", "Simulated", "Datasheet"});
  t.row({"cross-section bandwidth", Table::num(bisection_gbs, 1) + " GB/s",
         "64 GB/s"});
  t.row({"aggregate on-chip bandwidth (16 injectors)",
         Table::num(aggregate_gbs, 1) + " GB/s", "512 GB/s (64 links)"});
  t.row({"total off-chip bandwidth", Table::num(offchip_gbs, 2) + " GB/s",
         "8 GB/s"});
  t.row({"routing latency per node", Table::num(per_hop, 2) + " cycles",
         "1 cycle"});
  t.note("aggregate here uses one injector per core (16 of 64 links "
         "active): 16 links x 8 B/cycle = 128 GB/s is the 16-flow bound; "
         "the 512 GB/s figure counts all 64 node links");
  t.note("off-chip below 8 GB/s reflects DMA setup + SDRAM latency per "
         "8 KB burst");
  t.print(std::cout);

  CsvWriter csv(bench::out_dir() / "noc_bandwidth.csv",
                {"metric", "simulated", "datasheet"});
  csv.row({"bisection_gbs", Table::num(bisection_gbs, 3), "64"});
  csv.row({"aggregate_gbs", Table::num(aggregate_gbs, 3), "512"});
  csv.row({"offchip_gbs", Table::num(offchip_gbs, 3), "8"});
  csv.row({"hop_latency_cycles", Table::num(per_hop, 3), "1"});

  // Manifest keyed on the off-chip streaming leg (the contended resource).
  telemetry::RunManifest man("noc_bandwidth");
  fill_manifest(man, offchip_perf, offchip_energy);
  man.add_result("bisection_gbs", bisection_gbs);
  man.add_result("aggregate_gbs", aggregate_gbs);
  man.add_result("offchip_gbs", offchip_gbs);
  man.add_result("hop_latency_cycles", per_hop);
  // No image here: charge energy per streamed cf32-sized word (the SAR
  // pixel equivalent) so the CI energy gate covers this manifest too.
  bench::add_power_results(man, offchip_power,
                           16.0 * kBytesPerFlow / sizeof(cf32));
  man.set_metrics(&offchip_metrics);
  bench::write_manifest(man);
  return 0;
}

int main() { return esarp::bench::guarded_main("noc_bandwidth", bench_body); }
