// End-to-end integration: scene -> raw data -> (GBP | FFBP host | FFBP on
// the simulated chip) -> quality metrics, and autofocus on blocks cut from
// real FFBP child subapertures — a miniature of the paper's whole
// evaluation flow, at test size.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "core/autofocus_epiphany.hpp"
#include "core/ffbp_epiphany.hpp"
#include "hostmodel/host_model.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/workload.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"
#include "sar/scene.hpp"

namespace esarp {
namespace {

TEST(Integration, FullPipelineSmallScale) {
  const auto p = sar::test_params(64, 161);
  const auto scene = sar::six_target_scene(p);
  const auto data = sar::simulate_compressed(p, scene);

  const auto g = sar::gbp(data, p);
  const auto f = sar::ffbp(data, p);
  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto sim = core::run_ffbp_epiphany(data, p, opt);

  // (1) The simulated chip reproduces the host image exactly.
  EXPECT_EQ(sim.image, f.image.data);
  // (2) Both focus: entropy well below the raw data's.
  EXPECT_LT(image_entropy(f.image.data), image_entropy(data));
  EXPECT_LT(image_entropy(g.image.data), image_entropy(data));
  // (3) GBP is the quality reference (Fig. 7 ordering).
  EXPECT_LE(image_entropy(g.image.data), image_entropy(f.image.data));
}

TEST(Integration, SpeedupShapeMatchesTableOne) {
  // Small-scale rehearsal of Table I's FFBP rows: sequential Epiphany is
  // slower than the modelled Intel reference; 16-core Epiphany is faster.
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));

  const auto host_ref = sar::ffbp(data, p);
  const host::HostModel intel;
  const double t_intel = intel.seconds(host_ref.host_work);

  const auto seq = core::run_ffbp_sequential_epiphany(data, p);
  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto par = core::run_ffbp_epiphany(data, p, opt);

  EXPECT_GT(seq.seconds, t_intel);  // paper: 0.36x
  EXPECT_LT(par.seconds, t_intel);  // paper: 4.25x
}

TEST(Integration, AutofocusOnRealSubapertureBlocks) {
  // Cut 6x6 area-of-interest blocks around a bright target from two
  // late-level child subapertures and run the criterion sweep — the usage
  // the paper's Fig. 4 describes (autofocus before each merge).
  auto p = sar::test_params(64, 161);
  sar::Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  const auto data = sar::simulate_compressed(p, s);

  // Build subapertures up to level 4 (children of the level-5 merge).
  auto subs = sar::initial_subapertures(data, p);
  sar::FfbpOptions algo;
  for (std::size_t level = 1; level <= 4; ++level) {
    std::vector<sar::SubapertureImage> next;
    for (std::size_t i = 0; i + 1 < subs.size(); i += 2)
      next.push_back(sar::merge_pair(subs[i], subs[i + 1], p, algo));
    subs = std::move(next);
  }
  ASSERT_EQ(subs.size(), 4u);
  const auto& child_a = subs[1];
  const auto& child_b = subs[2];

  // Locate the target in child_a and cut blocks around it.
  std::size_t ti = 0, tj = 0;
  double best = -1;
  for (std::size_t i = 0; i < child_a.n_theta(); ++i)
    for (std::size_t j = 0; j < child_a.n_range(); ++j)
      if (std::abs(child_a.data(i, j)) > best) {
        best = std::abs(child_a.data(i, j));
        ti = i;
        tj = j;
      }
  af::AfParams ap;
  const std::size_t bi = std::min(ti > 3 ? ti - 3 : 0,
                                  child_a.n_theta() - ap.block_rows);
  const std::size_t bj = std::min(tj > 3 ? tj - 3 : 0,
                                  child_a.n_range() - ap.block_cols);
  auto blocks = af::blocks_from_subapertures(child_a, child_b, ap, bi, bj);

  const auto res = af::criterion_sweep(blocks.minus, blocks.plus, ap);
  // With no path error the best compensation should be near zero.
  EXPECT_LE(std::abs(res.best_shift(ap)), 0.5f);

  // And the MPMD pipeline agrees with the host sweep on this real block.
  std::vector<af::BlockPair> pairs;
  pairs.push_back(std::move(blocks));
  const auto sim = core::run_autofocus_mpmd(pairs, ap);
  for (std::size_t sh = 0; sh < res.criteria.size(); ++sh)
    EXPECT_EQ(sim.criteria[0][sh], res.criteria[sh]);
}

TEST(Integration, PathErrorDegradesUncompensatedImage) {
  // A flight-path error defocuses the image formed with nominal geometry —
  // the problem autofocus exists to solve.
  const auto p = sar::test_params(64, 161);
  sar::Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};

  const auto clean = sar::simulate_compressed(p, s);
  sar::FlightPathError err;
  err.dy.resize(p.n_pulses);
  for (std::size_t i = 0; i < p.n_pulses; ++i)
    err.dy[i] = 1.5 * std::sin(2.0 * kPi * static_cast<double>(i) /
                               static_cast<double>(p.n_pulses));
  const auto perturbed = sar::simulate_compressed(p, s, err);

  const auto img_clean = sar::ffbp(clean, p);
  const auto img_bad = sar::ffbp(perturbed, p);
  EXPECT_GT(peak_magnitude(img_clean.image.data),
            peak_magnitude(img_bad.image.data));
}

TEST(Integration, EnergyEfficiencyShapeMatchesPaper) {
  // Both parallel implementations must be at least an order of magnitude
  // more energy-efficient than the modelled Intel reference (paper: 38x
  // and 78x).
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const auto host_ref = sar::ffbp(data, p);
  const host::HostModel intel;
  const double intel_j = intel.joules(host_ref.host_work);

  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto par = core::run_ffbp_epiphany(data, p, opt);
  const double ratio = intel_j / par.energy.total_j();
  EXPECT_GT(ratio, 10.0);
}

} // namespace
} // namespace esarp
