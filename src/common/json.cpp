#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace esarp {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i)
    for (int s = 0; s < indent_; ++s) os_ << ' ';
}

void JsonWriter::before_value() {
  ESARP_EXPECTS(!root_done_);
  if (stack_.empty()) return; // root value
  if (stack_.back() == Frame::kObject) {
    ESARP_EXPECTS(key_pending_); // object members need a key first
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  ESARP_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject);
  ESARP_EXPECTS(!key_pending_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline();
  os_ << '}';
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  ESARP_EXPECTS(!stack_.empty() && stack_.back() == Frame::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline();
  os_ << ']';
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::key(std::string_view k) {
  ESARP_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject);
  ESARP_EXPECTS(!key_pending_);
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  key_pending_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null"; // JSON has no Inf/NaN
  } else {
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), v); // shortest round-trip form
    ESARP_ENSURES(ec == std::errc());
    os_.write(buf, ptr - buf);
  }
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) root_done_ = true;
}

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  ESARP_EXPECTS(is_bool());
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  ESARP_EXPECTS(is_number());
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  ESARP_EXPECTS(is_string());
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  ESARP_EXPECTS(is_array());
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  ESARP_EXPECTS(is_object());
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(v_);
  const auto it = obj.find(std::string(key));
  return it != obj.end() ? &it->second : nullptr;
}

const JsonValue* JsonValue::find_path(std::string_view path) const {
  const JsonValue* cur = this;
  while (cur != nullptr && !path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
    cur = cur->find(head);
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

private:
  /// Containers nest on the host call stack (parse_value recurses), so a
  /// hostile or corrupted document could otherwise overflow it. Manifests
  /// nest ~4 deep; 128 is far above any legitimate producer.
  static constexpr int kMaxDepth = 128;

  /// RAII nesting accounting for parse_object / parse_array (both have
  /// multiple return paths).
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth)
        p_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                " levels");
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

  private:
    Parser& p_;
  };

  [[noreturn]] void fail(const std::string& why) const {
    throw ContractViolation("JSON parse error at offset " +
                            std::to_string(pos_) + ": " + why);
  }

  /// Message suffix for errors that usually mean a partially written or
  /// truncated file (e.g. a manifest from an interrupted run).
  [[nodiscard]] static std::string truncated_hint() {
    return " (input ends mid-document; file truncated or still being "
           "written?)";
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size())
      fail("unexpected end of input" + truncated_hint());
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    const DepthGuard depth(*this);
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(k)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard depth(*this);
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size())
        fail("unterminated string" + truncated_hint());
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size())
        fail("unterminated escape" + truncated_hint());
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size())
            fail("truncated \\u escape" + truncated_hint());
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs unsupported: telemetry emitters
          // only escape control characters, which are all < U+0800).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_)
      fail("malformed number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0; ///< current container nesting (DepthGuard)
};

} // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue load_json_file(const std::filesystem::path& path) {
  std::ifstream f(path);
  if (!f.is_open())
    throw ContractViolation("cannot open JSON file: " + path.string());
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_json(ss.str());
}

} // namespace esarp
