// Scalar reference backend of the unified kernel API: thin loops over the
// exact inline kernels the adoption sites used to call directly, so this
// backend is bit-identical to the pre-kernel-API code by construction.
// Compiled with -ffp-contract=off like every kernel TU (see
// src/sar/CMakeLists.txt) so the reference semantics cannot drift under a
// contraction-happy compiler configuration.
#include "sar/kernels_impl.hpp"

#include "sar/interp.hpp"

namespace esarp::sar::kernels::detail {

namespace {

void merge_geometry_row_scalar(float r0, float dr, std::size_t j0,
                               std::size_t n, float cr, float d2,
                               float inv_2d, MergeGeom* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float r = r0 + static_cast<float>(j0 + i) * dr;
    out[i] = merge_geometry(r, cr, d2, inv_2d);
  }
}

void neville4_many_scalar(const cf32* y, const float* t, cf32* out,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = neville4(y, t[i]);
}

void neville4_rows_scalar(const cf32* row0, const cf32* row1,
                          const cf32* row2, const cf32* row3, const float* t,
                          cf32* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const cf32 y[4] = {row0[i], row1[i], row2[i], row3[i]};
    out[i] = neville4(y, t[i]);
  }
}

void criterion_terms_scalar(const cf32* minus, const cf32* plus, float* out,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = criterion_term(minus[i], plus[i]);
}

void gbp_contrib_row_scalar(const float* px, const float* py, float pulse_x,
                            const cf32* pulse_row, const GbpGrid& g,
                            cf32* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    acc[i] += gbp_contribution(px[i], py[i], pulse_x, pulse_row, g);
}

} // namespace

const KernelTable* scalar_table() {
  static const KernelTable table{
      merge_geometry_row_scalar, neville4_many_scalar, neville4_rows_scalar,
      criterion_terms_scalar, gbp_contrib_row_scalar};
  return &table;
}

} // namespace esarp::sar::kernels::detail
