// Metrics registry: labeled counters, gauges and fixed-bucket histograms.
//
// The simulator and the SAR mappings publish machine-readable evidence of
// where cycles go — external-memory stall durations, per-link NoC traffic,
// barrier wait imbalance, channel backpressure — into one registry per
// Machine. The registry dumps into the run manifest (manifest.hpp), which
// the esarp_compare regression checker diffs between runs.
//
// Conventions:
//   - Metric names are dot-separated ("ext.read.stall_cycles"); labels are
//     appended in braces via labeled(): "noc.link.bytes{dir=E,node=1_2}".
//   - Counters are monotonically increasing event/byte totals.
//   - Gauges are point-in-time doubles (utilization, hit rates).
//   - Histograms have fixed, ascending bucket edges chosen at creation;
//     bucket i counts observations x with edges[i-1] < x <= edges[i]
//     (bucket 0: x <= edges[0]; last bucket: x > edges.back()).
//
// Lookup is find-or-create; references returned by the registry stay valid
// for the registry's lifetime (node-based map storage). Instrumented
// components cache these references, so the per-event cost is an add or a
// short binary search — negligible next to a discrete-event step.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace esarp {
class JsonWriter;
} // namespace esarp

namespace esarp::telemetry {

/// Monotonic event/byte count.
class Counter {
public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

private:
  std::uint64_t value_ = 0;
};

/// Point-in-time scalar.
class Gauge {
public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with running count/sum/min/max.
class Histogram {
public:
  /// `edges` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> edges);

  void observe(double x);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// One entry per bucket: edges().size() + 1 (last bucket is overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; } ///< 0 when empty
  [[nodiscard]] double max() const { return max_; } ///< 0 when empty
  [[nodiscard]] double mean() const {
    return count_ != 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Compose a labeled metric name: labeled("noc.link.bytes",
/// {{"mesh","read"},{"dir","E"}}) -> "noc.link.bytes{dir=E,mesh=read}".
/// Labels are sorted so the same set always produces the same name.
[[nodiscard]] std::string
labeled(std::string_view name,
        std::vector<std::pair<std::string, std::string>> labels);

/// Cycle-duration bucket edges shared by the stall/wait histograms so
/// before/after manifests are always bucket-compatible.
[[nodiscard]] const std::vector<double>& cycle_histogram_edges();

class MetricsRegistry {
public:
  /// Find-or-create. References remain valid while the registry lives.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `edges` is used on first creation only; later calls with the same
  /// name return the existing histogram regardless of `edges`.
  Histogram& histogram(const std::string& name, std::vector<double> edges);
  /// Shorthand using cycle_histogram_edges().
  Histogram& cycle_histogram(const std::string& name);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Total number of distinct metric names across all kinds.
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void clear();

  /// Emit the registry as one JSON object value:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{"edges":[...],"counts":[...],...}}}
  /// The writer must be positioned where a value is expected.
  void write_json(JsonWriter& w) const;

private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

} // namespace esarp::telemetry
