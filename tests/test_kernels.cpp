// Bit-exactness tests of the unified kernel API (sar/kernels.hpp): every
// available SIMD backend must reproduce the scalar reference bit for bit
// on every kernel, including the non-multiple-of-width tails, clamp and
// validity edge cases. Comparison is on the float bit patterns, not on a
// tolerance — the SIMD backends are only allowed to exist because they
// change nothing.
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.hpp"
#include "sar/kernels.hpp"

namespace esarp::sar {
namespace {

namespace k = kernels;

std::uint32_t bits(float x) { return std::bit_cast<std::uint32_t>(x); }

void expect_bits_eq(float a, float b, const char* what, std::size_t i) {
  EXPECT_EQ(bits(a), bits(b)) << what << " lane " << i << ": " << a
                              << " vs " << b;
}

void expect_bits_eq(cf32 a, cf32 b, const char* what, std::size_t i) {
  expect_bits_eq(a.real(), b.real(), what, i);
  expect_bits_eq(a.imag(), b.imag(), what, i);
}

/// Deterministic xorshift float in [lo, hi) — no libc rand, identical
/// sequences on every platform.
struct Rng {
  std::uint32_t s = 0x9e3779b9u;
  std::uint32_t next_u32() {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    return s;
  }
  float uniform(float lo, float hi) {
    const float u =
        static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
    return lo + (hi - lo) * u;
  }
  cf32 complex(float lo, float hi) {
    const float re = uniform(lo, hi);
    return {re, uniform(lo, hi)};
  }
};

std::vector<k::Backend> simd_backends() {
  std::vector<k::Backend> b;
  if (k::backend_available(k::Backend::kSse2)) b.push_back(k::Backend::kSse2);
  if (k::backend_available(k::Backend::kAvx2)) b.push_back(k::Backend::kAvx2);
  return b;
}

/// Run `fn` once per available SIMD backend, restoring the scalar backend
/// between runs so the reference outputs inside `fn` are scalar-computed.
template <typename Fn>
void for_each_simd_backend(Fn&& fn) {
  const k::Backend before = k::active();
  for (const k::Backend b : simd_backends()) {
    SCOPED_TRACE(k::backend_name(b));
    fn(b);
  }
  k::force_backend(before);
}

// Odd sizes exercise the scalar tails after the full vector quanta.
constexpr std::size_t kSizes[] = {1, 3, 4, 7, 8, 15, 16, 101};

TEST(Kernels, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(k::backend_available(k::Backend::kScalar));
  EXPECT_STREQ(k::backend_name(k::Backend::kScalar), "scalar");
}

TEST(Kernels, MergeGeometryRowMatchesScalarBitForBit) {
  for_each_simd_backend([&](k::Backend b) {
    Rng rng;
    for (const std::size_t n : kSizes) {
      const float r0 = rng.uniform(1000.0f, 5000.0f);
      const float dr = rng.uniform(0.5f, 2.0f);
      const float d = rng.uniform(1.0f, 50.0f);
      // cos(theta) spans [-1, 1] across rows; include both signs.
      const float cr = 2.0f * d * rng.uniform(-1.0f, 1.0f);
      const float d2 = d * d;
      const float inv_2d = 1.0f / (2.0f * d);
      const std::size_t j0 = n % 3 == 0 ? 17 : 0;

      std::vector<MergeGeom> ref(n), simd(n);
      k::force_backend(k::Backend::kScalar);
      k::merge_geometry_row(r0, dr, j0, n, cr, d2, inv_2d, ref.data());
      k::force_backend(b);
      k::merge_geometry_row(r0, dr, j0, n, cr, d2, inv_2d, simd.data());
      for (std::size_t i = 0; i < n; ++i) {
        expect_bits_eq(ref[i].r1, simd[i].r1, "r1", i);
        expect_bits_eq(ref[i].theta1, simd[i].theta1, "theta1", i);
        expect_bits_eq(ref[i].r2, simd[i].r2, "r2", i);
        expect_bits_eq(ref[i].theta2, simd[i].theta2, "theta2", i);
      }
    }
  });
}

TEST(Kernels, MergeGeometryRowClampEdges) {
  // Degenerate geometry drives the acos argument outside [-1, 1]; the
  // clamp ternaries must blend identically.
  for_each_simd_backend([&](k::Backend b) {
    const std::size_t n = 11;
    const float d = 1e-3f;
    std::vector<MergeGeom> ref(n), simd(n);
    k::force_backend(k::Backend::kScalar);
    k::merge_geometry_row(0.0f, 0.25f, 0, n, 2.0f * d, d * d,
                          1.0f / (2.0f * d), ref.data());
    k::force_backend(b);
    k::merge_geometry_row(0.0f, 0.25f, 0, n, 2.0f * d, d * d,
                          1.0f / (2.0f * d), simd.data());
    for (std::size_t i = 0; i < n; ++i) {
      expect_bits_eq(ref[i].theta1, simd[i].theta1, "theta1", i);
      expect_bits_eq(ref[i].theta2, simd[i].theta2, "theta2", i);
    }
  });
}

TEST(Kernels, Neville4ManyMatchesScalarBitForBit) {
  for_each_simd_backend([&](k::Backend b) {
    Rng rng;
    for (const std::size_t n : kSizes) {
      cf32 y[4];
      for (cf32& v : y) v = rng.complex(-2.0f, 2.0f);
      std::vector<float> t(n);
      for (float& v : t) v = rng.uniform(0.4f, 2.6f);
      std::vector<cf32> ref(n), simd(n);
      k::force_backend(k::Backend::kScalar);
      k::neville4_many(y, t.data(), ref.data(), n);
      k::force_backend(b);
      k::neville4_many(y, t.data(), simd.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        expect_bits_eq(ref[i], simd[i], "neville4_many", i);
    }
  });
}

TEST(Kernels, Neville4RowsMatchesScalarBitForBit) {
  for_each_simd_backend([&](k::Backend b) {
    Rng rng;
    for (const std::size_t n : kSizes) {
      std::vector<cf32> rows[4];
      for (auto& r : rows) {
        r.resize(n);
        for (cf32& v : r) v = rng.complex(-3.0f, 3.0f);
      }
      std::vector<float> t(n);
      for (float& v : t) v = rng.uniform(0.9f, 2.1f);
      std::vector<cf32> ref(n), simd(n);
      k::force_backend(k::Backend::kScalar);
      k::neville4_rows(rows[0].data(), rows[1].data(), rows[2].data(),
                       rows[3].data(), t.data(), ref.data(), n);
      k::force_backend(b);
      k::neville4_rows(rows[0].data(), rows[1].data(), rows[2].data(),
                       rows[3].data(), t.data(), simd.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        expect_bits_eq(ref[i], simd[i], "neville4_rows", i);
    }
  });
}

TEST(Kernels, CriterionTermsMatchesScalarBitForBit) {
  for_each_simd_backend([&](k::Backend b) {
    Rng rng;
    for (const std::size_t n : kSizes) {
      std::vector<cf32> minus(n), plus(n);
      for (cf32& v : minus) v = rng.complex(-4.0f, 4.0f);
      for (cf32& v : plus) v = rng.complex(-4.0f, 4.0f);
      std::vector<float> ref(n), simd(n);
      k::force_backend(k::Backend::kScalar);
      k::criterion_terms(minus.data(), plus.data(), ref.data(), n);
      k::force_backend(b);
      k::criterion_terms(minus.data(), plus.data(), simd.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        expect_bits_eq(ref[i], simd[i], "criterion_terms", i);
    }
  });
}

TEST(Kernels, GbpContribRowMatchesScalarBitForBit) {
  for_each_simd_backend([&](k::Backend b) {
    Rng rng;
    for (const std::size_t n : kSizes) {
      GbpGrid g{};
      g.r0 = 1000.0f;
      g.inv_dr = 1.0f;
      g.n_range = static_cast<int>(n);
      g.k_phase = 25.0;
      std::vector<cf32> pulse(n);
      for (cf32& v : pulse) v = rng.complex(-1.0f, 1.0f);
      std::vector<float> px(n), py(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Mix in-swath pixels with out-of-swath ones (validity mask).
        const float r = rng.uniform(990.0f, 1010.0f + 2.0f * float(n));
        px[i] = r * 0.6f;
        py[i] = r * 0.8f;
      }
      std::vector<cf32> ref(n, cf32{0.5f, -0.25f});
      std::vector<cf32> simd = ref; // same nonzero accumulator start
      k::force_backend(k::Backend::kScalar);
      k::gbp_contrib_row(px.data(), py.data(), 3.5f, pulse.data(), g,
                         ref.data(), n);
      k::force_backend(b);
      k::gbp_contrib_row(px.data(), py.data(), 3.5f, pulse.data(), g,
                         simd.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        expect_bits_eq(ref[i], simd[i], "gbp_contrib_row", i);
    }
  });
}

TEST(Kernels, ForceBackendRoundTrip) {
  const k::Backend before = k::active();
  k::force_backend(k::Backend::kScalar);
  EXPECT_EQ(k::active(), k::Backend::kScalar);
  EXPECT_STREQ(k::active_name(), "scalar");
  k::force_backend(before);
  EXPECT_EQ(k::active(), before);
}

} // namespace
} // namespace esarp::sar
