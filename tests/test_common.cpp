// Unit tests for the common utilities: contracts, 2-D arrays/views, RNG,
// statistics, image output, tables, formatting, CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/array2d.hpp"
#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/pgm.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace esarp {
namespace {

TEST(Assert, ExpectsThrowsOnViolation) {
  EXPECT_NO_THROW(ESARP_EXPECTS(1 + 1 == 2));
  EXPECT_THROW(ESARP_EXPECTS(1 + 1 == 3), ContractViolation);
  EXPECT_THROW(ESARP_ENSURES(false), ContractViolation);
}

TEST(Assert, MessageNamesExpressionAndLocation) {
  try {
    ESARP_EXPECTS(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Array2D, StoresAndRetrievesRowMajor) {
  Array2D<int> a(3, 4);
  int v = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = v++;
  EXPECT_EQ(a(0, 0), 0);
  EXPECT_EQ(a(2, 3), 11);
  EXPECT_EQ(a.data()[5], a(1, 1));
  EXPECT_EQ(a.row(1)[2], a(1, 2));
}

TEST(Array2D, OutOfBoundsThrows) {
  Array2D<int> a(2, 2);
  EXPECT_THROW(a(2, 0), ContractViolation);
  EXPECT_THROW(a(0, 2), ContractViolation);
  EXPECT_THROW((void)a.row(2), ContractViolation);
}

TEST(Array2D, FillAndEquality) {
  Array2D<int> a(2, 3, 7);
  Array2D<int> b(2, 3);
  b.fill(7);
  EXPECT_EQ(a, b);
  b(1, 2) = 8;
  EXPECT_FALSE(a == b);
}

TEST(View2D, SubviewSeesParentMemory) {
  Array2D<int> a(4, 4, 0);
  auto sub = a.subview(1, 1, 2, 2);
  sub(0, 0) = 42;
  EXPECT_EQ(a(1, 1), 42);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.row_stride(), 4u);
}

TEST(View2D, ConstConversion) {
  Array2D<int> a(2, 2, 1);
  View2D<int> v = a.view();
  View2D<const int> cv = v;
  EXPECT_EQ(cv(1, 1), 1);
}

TEST(View2D, NestedSubview) {
  Array2D<int> a(6, 6);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) a(r, c) = static_cast<int>(r * 6 + c);
  auto outer = a.subview(1, 1, 4, 4);
  auto inner = outer.subview(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), a(2, 2));
  EXPECT_EQ(inner(1, 1), a(3, 3));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(99);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(42);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.03);
  EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_EQ(st.count(), 8u);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(-3, 11);
    (i < 37 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, RmseZeroForIdentical) {
  std::vector<float> v{1.f, 2.f, 3.f};
  EXPECT_DOUBLE_EQ(rmse(std::span<const float>(v), v), 0.0);
}

TEST(Stats, RmseKnownValue) {
  std::vector<float> a{0.f, 0.f};
  std::vector<float> b{3.f, 4.f};
  EXPECT_NEAR(rmse(std::span<const float>(a), b), std::sqrt(12.5), 1e-6);
}

TEST(Stats, EntropyOfUniformIsLogN) {
  Array2D<cf32> img(4, 4, cf32{1.0f, 0.0f});
  EXPECT_NEAR(image_entropy(img), 4.0, 1e-6); // log2(16)
}

TEST(Stats, EntropyOfPointIsZero) {
  Array2D<cf32> img(4, 4);
  img(2, 2) = {3.0f, 0.0f};
  EXPECT_NEAR(image_entropy(img), 0.0, 1e-9);
}

TEST(Stats, ContrastHigherForSparseImage) {
  Array2D<cf32> flat(8, 8, cf32{1.0f, 0.0f});
  Array2D<cf32> sparse(8, 8);
  sparse(1, 1) = {8.0f, 0.0f};
  EXPECT_GT(image_contrast(sparse), image_contrast(flat));
}

TEST(Pgm, WritesValidHeaderAndSize) {
  const auto path = std::filesystem::temp_directory_path() / "esarp_test.pgm";
  Array2D<cf32> img(5, 7);
  img(2, 3) = {1.0f, 0.0f};
  write_pgm(path, img);
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  f >> magic;
  int w = 0, h = 0, maxv = 0;
  f >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 7);
  EXPECT_EQ(h, 5);
  EXPECT_EQ(maxv, 255);
  f.get(); // single whitespace after header
  std::vector<char> pixels(35);
  f.read(pixels.data(), 35);
  EXPECT_EQ(f.gcount(), 35);
  std::filesystem::remove(path);
}

TEST(Pgm, AsciiRenderMarksPeak) {
  Array2D<cf32> img(16, 32);
  img(8, 16) = {1.0f, 0.0f};
  const std::string art = ascii_render(img, 32);
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(Table, AlignsColumnsAndPrintsNotes) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"bb", "22"});
  t.note("a note");
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("a note"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("x");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractViolation);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::eng(1500.0, "B", 1), "1.5 kB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(1.5), "1.50 s");
  EXPECT_EQ(format_seconds(0.0015), "1.50 ms");
  EXPECT_EQ(format_seconds(1.5e-6), "1.50 us");
  EXPECT_EQ(format_seconds(5e-9), "5.00 ns");
}

TEST(Format, Cycles) {
  EXPECT_EQ(format_cycles(1234567), "1,234,567");
  EXPECT_EQ(format_cycles(12), "12");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(16016), "15.6 KB");
}

TEST(Csv, WritesHeaderAndRows) {
  const auto path = std::filesystem::temp_directory_path() / "esarp_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "hello, world"});
    w.row_numeric({2.5, 3.5});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,\"hello, world\"");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "esarp_test2.csv";
  CsvWriter w(path, {"a"});
  EXPECT_THROW(w.row({"1", "2"}), ContractViolation);
  std::filesystem::remove(path);
}

} // namespace
} // namespace esarp
