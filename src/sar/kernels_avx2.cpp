// AVX2 backend of the unified kernel API (8 float lanes). This TU is the
// only one compiled with -mavx2, and deliberately WITHOUT -mfma and with
// -ffp-contract=off: fused multiply-adds would change rounding versus the
// scalar reference, breaking the bit-exactness contract
// (kernels_simd_body.hpp). When the build does not enable AVX2
// (ESARP_ENABLE_SIMD=OFF or a non-x86 target) the table is null and the
// dispatcher falls back to SSE2 or scalar; runtime cpu support is checked
// separately in kernels.cpp.
#include "sar/kernels_impl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "sar/kernels_simd_body.hpp"

namespace esarp::sar::kernels::detail {

namespace {

struct VAvx2 {
  static constexpr std::size_t kLanes = 8;
  using F = __m256;
  using I = __m256i;

  static F load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, F v) { _mm256_storeu_ps(p, v); }
  static F set1(float x) { return _mm256_set1_ps(x); }
  static F zero() { return _mm256_setzero_ps(); }
  static F add(F a, F b) { return _mm256_add_ps(a, b); }
  static F sub(F a, F b) { return _mm256_sub_ps(a, b); }
  static F mul(F a, F b) { return _mm256_mul_ps(a, b); }
  static F sqrt(F a) { return _mm256_sqrt_ps(a); }
  static F cmp_lt(F a, F b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static F cmp_le(F a, F b) { return _mm256_cmp_ps(a, b, _CMP_LE_OQ); }
  static F cmp_gt(F a, F b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  static F blend(F m, F a, F b) { return _mm256_blendv_ps(b, a, m); }
  static F xor_(F a, F b) { return _mm256_xor_ps(a, b); }
  static I to_i(F a) { return _mm256_castps_si256(a); }
  static F to_f(I a) { return _mm256_castsi256_ps(a); }
  static I shr(I a, int count) { return _mm256_srli_epi32(a, count); }
  static I add_i(I a, I b) { return _mm256_add_epi32(a, b); }
  static I sub_i(I a, I b) { return _mm256_sub_epi32(a, b); }
  static I set1_i(std::int32_t x) { return _mm256_set1_epi32(x); }
  static F cvt_f(I a) { return _mm256_cvtepi32_ps(a); }
  static I cvt_i(F a) { return _mm256_cvttps_epi32(a); }
  static I cmp_lt_i(I a, I b) { return _mm256_cmpgt_epi32(b, a); }
  static I andnot_i(I a, I b) { return _mm256_andnot_si256(a, b); }
  static void store_i(std::int32_t* p, I v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static I iota() { return _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0); }

  static void load_cf(const cf32* p, F& re, F& im) {
    const float* f = reinterpret_cast<const float*>(p);
    const F a = _mm256_loadu_ps(f);     // r0 i0 r1 i1 | r2 i2 r3 i3
    const F b = _mm256_loadu_ps(f + 8); // r4 i4 r5 i5 | r6 i6 r7 i7
    // shuffle gathers within 128-bit halves; the cross-lane permute puts
    // the lanes back in element order.
    const I fix = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
    re = _mm256_permutevar8x32_ps(
        _mm256_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0)), fix);
    im = _mm256_permutevar8x32_ps(
        _mm256_shuffle_ps(a, b, _MM_SHUFFLE(3, 1, 3, 1)), fix);
  }
  static void store_cf(cf32* p, F re, F im) {
    float* f = reinterpret_cast<float*>(p);
    const F lo = _mm256_unpacklo_ps(re, im); // c0 c1 | c4 c5
    const F hi = _mm256_unpackhi_ps(re, im); // c2 c3 | c6 c7
    _mm256_storeu_ps(f, _mm256_permute2f128_ps(lo, hi, 0x20));
    _mm256_storeu_ps(f + 8, _mm256_permute2f128_ps(lo, hi, 0x31));
  }
};

} // namespace

const KernelTable* avx2_table() { return SimdKernels<VAvx2>::table(); }

} // namespace esarp::sar::kernels::detail

#else // !__AVX2__

namespace esarp::sar::kernels::detail {

const KernelTable* avx2_table() { return nullptr; }

} // namespace esarp::sar::kernels::detail

#endif
