// Unified kernel API: the interpolation / merge / criterion /
// back-projection inner loops behind one runtime-dispatched interface with
// scalar and SIMD (SSE2 / AVX2) backends.
//
// The scalar backend is the reference: it calls the exact inline kernels
// (sar/interp.hpp, sar/merge_kernel.hpp, sar/gbp.hpp) the adoption sites
// used to inline directly. The SIMD backends replicate every operation
// lane-by-lane — same operation order and association, ternaries as
// blends, the fastmath bit tricks on integer lanes, `sqrtps` for the
// IEEE-exact std::sqrt — and all kernel translation units are compiled
// with -ffp-contract=off, so every backend produces bit-identical results
// (enforced by tests/test_kernels.cpp and the micro_kernels bench rows).
// Simulated-cycle costs are analytic (OpCounts), so backend choice affects
// host wall-clock only: images, cycles, energy and manifests are unchanged.
//
// Backend selection: the best available backend is picked once at first
// use (compile-time availability + runtime cpu detection); the
// ESARP_KERNELS environment variable (scalar | sse2 | avx2 | auto)
// overrides it, e.g. ESARP_KERNELS=scalar to rule the vector backends out
// while debugging (docs/performance.md).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "sar/gbp.hpp"
#include "sar/merge_kernel.hpp"

namespace esarp::sar::kernels {

enum class Backend { kScalar, kSse2, kAvx2 };

/// Static name of a backend ("scalar", "sse2", "avx2").
[[nodiscard]] const char* backend_name(Backend b);

/// True when `b` is both compiled in and supported by this CPU.
[[nodiscard]] bool backend_available(Backend b);

/// The backend the dispatch table currently points at (resolved on first
/// use from availability and ESARP_KERNELS).
[[nodiscard]] Backend active();
[[nodiscard]] const char* active_name();

/// Repoint the dispatch table (tests and benches only). Not thread-safe:
/// call before any worker threads touch the kernels. Requires
/// backend_available(b).
void force_backend(Backend b);

/// merge_geometry (paper eqs. 1-4) for a contiguous run of range bins:
/// out[i] = merge_geometry(r0 + float(j0 + i) * dr, cr, d2, inv_2d).
void merge_geometry_row(float r0, float dr, std::size_t j0, std::size_t n,
                        float cr, float d2, float inv_2d, MergeGeom* out);

/// Neville cubic at many positions over one fixed 4-node window:
/// out[i] = neville4(y, t[i]).
void neville4_many(const cf32 y[4], const float* t, cf32* out,
                   std::size_t n);

/// Neville cubic with per-position nodes gathered from four parallel
/// arrays: out[i] = neville4({row0[i], row1[i], row2[i], row3[i]}, t[i]).
void neville4_rows(const cf32* row0, const cf32* row1, const cf32* row2,
                   const cf32* row3, const float* t, cf32* out,
                   std::size_t n);

/// Criterion correlation terms (paper eq. 6, before accumulation):
/// out[i] = |minus[i]|^2 * |plus[i]|^2.
void criterion_terms(const cf32* minus, const cf32* plus, float* out,
                     std::size_t n);

/// One pulse's GBP contributions to a row of pixels:
/// acc[i] += gbp_contribution(px[i], py[i], pulse_x, pulse_row, g).
/// The range/bin geometry is vectorized; the double-precision carrier
/// phase (fmod/cos/sin) stays in scalar libm per valid lane, keeping the
/// result bit-identical to the scalar reference.
void gbp_contrib_row(const float* px, const float* py, float pulse_x,
                     const cf32* pulse_row, const GbpGrid& g, cf32* acc,
                     std::size_t n);

} // namespace esarp::sar::kernels
