// Reproduces Figure 7: (a) pulse-compressed raw data with the curved
// range-migration paths of six point targets, (b) the GBP-processed image
// (quality reference), (c) the FFBP image from the Intel-reference code
// path, (d) the FFBP image computed by the simulated 16-core Epiphany.
//
// Writes PGM renderings plus quantitative quality metrics (the paper's
// Fig.-7 discussion: FFBP with simplified interpolation is visibly noisier
// than GBP; the Intel and Epiphany FFBP images are of equal quality — in
// this reproduction they are bit-identical by construction).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/pgm.hpp"
#include "common/stats.hpp"
#include "core/ffbp_epiphany.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"

static int bench_body() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();
  const auto dir = bench::out_dir();

  std::cerr << "fig 7(a): raw data...\n";
  write_pgm(dir / "fig7a_raw_data.pgm", w.data, {.dynamic_range_db = 35.0});

  std::cerr << "fig 7(b): GBP (this is the long one)...\n";
  WallTimer gbp_timer;
  const std::size_t decim = bench::fast_mode() ? 4 : 1;
  const auto g = sar::gbp(w.data, w.params, decim);
  std::cerr << "  gbp took " << format_seconds(gbp_timer.elapsed_s()) << "\n";
  write_pgm(dir / "fig7b_gbp.pgm", g.image.data, {.dynamic_range_db = 45.0});

  std::cerr << "fig 7(c): FFBP, Intel reference path...\n";
  const auto f_host = sar::ffbp(w.data, w.params);
  write_pgm(dir / "fig7c_ffbp_intel.pgm", f_host.image.data,
            {.dynamic_range_db = 45.0});

  std::cerr << "fig 7(d): FFBP on the simulated 16-core Epiphany...\n";
  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto f_epi = core::run_ffbp_epiphany(w.data, w.params, opt);
  write_pgm(dir / "fig7d_ffbp_epiphany.pgm", f_epi.image,
            {.dynamic_range_db = 45.0});

  const bool identical = f_epi.image == f_host.image.data;

  Table t("Figure 7: image quality metrics");
  t.header({"Panel", "Entropy (bits)", "Contrast", "Peak/avg (dB)",
            "rel. RMSE vs GBP"});
  t.row({"(a) raw data", Table::num(image_entropy(w.data), 2),
         Table::num(image_contrast(w.data), 2),
         Table::num(peak_to_average_db(w.data), 1), "-"});
  t.row({"(b) GBP", Table::num(image_entropy(g.image.data), 2),
         Table::num(image_contrast(g.image.data), 2),
         Table::num(peak_to_average_db(g.image.data), 1), "0"});
  t.row({"(c) FFBP (Intel path)",
         Table::num(image_entropy(f_host.image.data), 2),
         Table::num(image_contrast(f_host.image.data), 2),
         Table::num(peak_to_average_db(f_host.image.data), 1),
         Table::num(relative_rmse(f_host.image.data, g.image.data), 4)});
  t.row({"(d) FFBP (Epiphany)", Table::num(image_entropy(f_epi.image), 2),
         Table::num(image_contrast(f_epi.image), 2),
         Table::num(peak_to_average_db(f_epi.image), 1),
         Table::num(relative_rmse(f_epi.image, g.image.data), 4)});
  t.note("PGM files written to " + dir.string());
  t.note(std::string("Intel-path and Epiphany FFBP images are ") +
         (identical ? "bit-identical" : "DIFFERENT (unexpected!)") +
         " (paper: 'similar in quality')");
  t.note("lower entropy / higher contrast = sharper; GBP is the quality"
         " reference the paper compares FFBP against");
  t.print(std::cout);

  std::cout << "\nFFBP image preview (log magnitude):\n"
            << ascii_render(f_host.image.data, 72, 35.0) << "\n";

  CsvWriter csv(bench::out_dir() / "fig7_metrics.csv",
                {"panel", "entropy", "contrast", "peak_avg_db", "rmse_vs_gbp"});
  csv.row({"raw", Table::num(image_entropy(w.data), 4),
           Table::num(image_contrast(w.data), 4),
           Table::num(peak_to_average_db(w.data), 3), ""});
  csv.row({"gbp", Table::num(image_entropy(g.image.data), 4),
           Table::num(image_contrast(g.image.data), 4),
           Table::num(peak_to_average_db(g.image.data), 3), "0"});
  csv.row({"ffbp", Table::num(image_entropy(f_host.image.data), 4),
           Table::num(image_contrast(f_host.image.data), 4),
           Table::num(peak_to_average_db(f_host.image.data), 3),
           Table::num(relative_rmse(f_host.image.data, g.image.data), 6)});
  return 0;
}

int main() { return esarp::bench::guarded_main("fig7_images", bench_body); }
