// Console table printer used by the benchmark harness to render
// paper-style result tables (Table I and the ablation tables).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace esarp {

/// Simple fixed-grid table with a title, header row, and left/right aligned
/// columns. Column widths auto-fit the content.
class Table {
public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row; alignment: 'l' or 'r' per column (defaults right,
  /// first column left).
  void header(std::vector<std::string> cols, std::string alignment = "");

  /// Append a data row; must match header width if a header was set.
  void row(std::vector<std::string> cols);

  /// Append a horizontal separator between row groups.
  void separator();

  /// Free-form footnote lines printed under the table.
  void note(std::string line);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  /// Helpers for consistent numeric formatting.
  static std::string num(double v, int precision = 2);
  static std::string eng(double v, const std::string& unit, int precision = 2);

private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::string align_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

} // namespace esarp
