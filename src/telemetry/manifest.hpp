// Run manifest: the single JSON document every bench and `esarp chip` run
// writes next to its CSV artefacts (schema "esarp-run-manifest/1"):
//
//   {
//     "schema":   "esarp-run-manifest/1",
//     "tool":     "table1_ffbp",
//     "version":  "1.0.0",            // project version baked at build time
//     "chip":     { "rows": 4, ... },      // numeric chip configuration
//     "workload": { "n_pulses": 1024, ... },
//     "results":  { "makespan_cycles": ..., "energy_j": ..., ... },
//     "metrics":  { "counters": {...}, "gauges": {...},
//                   "histograms": {...} }  // full MetricsRegistry dump
//   }
//
// Manifests are the machine-readable before/after evidence for performance
// claims: tools/esarp_compare diffs two of them with per-metric thresholds
// and exits nonzero on regression (wired into CI).
#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace esarp::telemetry {

/// Project version baked into manifests (CMake PROJECT_VERSION).
[[nodiscard]] const char* esarp_version();

class RunManifest {
public:
  explicit RunManifest(std::string tool) : tool_(std::move(tool)) {}

  /// Override the schema tag. The default is "esarp-run-manifest/1"; the
  /// fleet runtime writes "esarp-serve-manifest/1" (docs/serving.md) with
  /// the same section layout. esarp_compare accepts any esarp manifest
  /// family, so serve manifests stay diffable.
  void set_schema(std::string schema) { schema_ = std::move(schema); }
  [[nodiscard]] const std::string& schema() const { return schema_; }

  /// Numeric chip-configuration entry (rows, cols, clock_hz, ...).
  void add_chip(std::string name, double v) {
    chip_.emplace_back(std::move(name), v);
  }
  /// Numeric workload-parameter entry (n_pulses, n_range, fast_mode, ...).
  void add_workload(std::string name, double v) {
    workload_.emplace_back(std::move(name), v);
  }
  /// Numeric result entry (makespan_cycles, seconds, energy_j, ...).
  void add_result(std::string name, double v) {
    results_.emplace_back(std::move(name), v);
  }

  /// Attach the metrics registry dumped under "metrics". The pointee must
  /// outlive write(); null writes an empty metrics object.
  void set_metrics(const MetricsRegistry* m) { metrics_ = m; }

  [[nodiscard]] const std::string& tool() const { return tool_; }

  void write(std::ostream& os) const;
  /// Write to `path`, creating parent directories on demand.
  void write(const std::filesystem::path& path) const;

private:
  using Section = std::vector<std::pair<std::string, double>>;

  std::string tool_;
  std::string schema_ = "esarp-run-manifest/1";
  Section chip_;
  Section workload_;
  Section results_;
  const MetricsRegistry* metrics_ = nullptr;
};

} // namespace esarp::telemetry
