// Per-core 32 KB local store with a bank-aware bump allocator.
//
// The E16G3 splits each core's memory into four 8 KB banks; the paper
// dedicates "the two upper data banks" (16 KB) to subaperture data — enough
// for exactly two pulses of 1001 complex pixels (16,016 bytes). The
// allocator enforces capacity, so kernels that exceed a bank budget fail
// loudly instead of silently using impossible hardware.
//
// An optional observer (attach_observer) lets the esarp::check hazard
// sanitizer shadow the allocation state: it is told about every allocation,
// reset and contract violation, which is how stale-span writes and
// bank-budget overflows get diagnosed with core id + simulated cycle
// (docs/static-analysis.md). With no observer attached the allocator
// behaves exactly as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace esarp::ep {

/// Interface the hazard sanitizer implements to shadow a core's local
/// store. All callbacks fire synchronously from the allocator; violation
/// callbacks fire immediately *before* the corresponding ContractViolation
/// is thrown, so the diagnostic is recorded even though the throw unwinds
/// the kernel.
class LocalMemoryObserver {
public:
  virtual ~LocalMemoryObserver() = default;
  virtual void on_local_alloc(int core, std::size_t offset,
                              std::size_t bytes) = 0;
  virtual void on_local_reset(int core) = 0;
  /// An allocation request violated a contract (`what` says which: bank
  /// collision or capacity overflow). `requested`/`limit` describe the
  /// failed request.
  virtual void on_local_violation(int core, const char* what,
                                  std::size_t requested,
                                  std::size_t limit) = 0;
};

class LocalMemory {
public:
  LocalMemory(std::size_t bytes, int banks)
      : store_(bytes), banks_(banks), bank_size_(bytes / banks) {
    ESARP_EXPECTS(banks > 0 && bytes % static_cast<std::size_t>(banks) == 0);
  }

  [[nodiscard]] std::size_t capacity() const { return store_.size(); }
  [[nodiscard]] int banks() const { return banks_; }
  [[nodiscard]] std::size_t bank_size() const { return bank_size_; }

  /// Attach the hazard-sanitizer observer (nullptr detaches). `core_id` is
  /// echoed back on every callback.
  void attach_observer(LocalMemoryObserver* obs, int core_id) {
    observer_ = obs;
    core_id_ = core_id;
  }

  /// Allocate n objects of T, 8-byte aligned, anywhere in free space.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    return alloc_at<T>(n, cursor_);
  }

  /// Allocate n objects of T starting at the given bank (the paper places
  /// code/stack in the lower banks, data in the upper two). Fails if the
  /// allocation would collide with earlier allocations past that point.
  template <typename T>
  std::span<T> alloc_in_bank(std::size_t n, int bank) {
    ESARP_EXPECTS(bank >= 0 && bank < banks_);
    const std::size_t base = static_cast<std::size_t>(bank) * bank_size_;
    if (base < cursor_ && observer_ != nullptr)
      observer_->on_local_violation(core_id_, "alloc_in_bank collision", base,
                                    cursor_);
    ESARP_EXPECTS(base >= cursor_); // banks must be claimed in order
    return alloc_at<T>(n, base);
  }

  /// Offset of a pointer inside this memory (for address-map encoding).
  [[nodiscard]] std::uint32_t offset_of(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    ESARP_EXPECTS(b >= store_.data() && b < store_.data() + store_.size());
    return static_cast<std::uint32_t>(b - store_.data());
  }

  [[nodiscard]] bool owns(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= store_.data() && b < store_.data() + store_.size();
  }

  [[nodiscard]] std::size_t used() const { return cursor_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t free_bytes() const {
    return store_.size() - cursor_;
  }

  /// Release all allocations (between kernel launches). Spans handed out
  /// before the reset become stale; the sanitizer flags accesses through
  /// them until the memory is re-allocated.
  void reset() {
    cursor_ = 0;
    if (observer_ != nullptr) observer_->on_local_reset(core_id_);
  }

private:
  template <typename T>
  std::span<T> alloc_at(std::size_t n, std::size_t from) {
    const std::size_t aligned = (from + 7) & ~std::size_t{7};
    const std::size_t bytes = n * sizeof(T);
    if (aligned + bytes > store_.size()) {
      if (observer_ != nullptr)
        observer_->on_local_violation(core_id_, "local store overflow",
                                      aligned + bytes, store_.size());
      throw ContractViolation(
          "LocalMemory overflow: request exceeds the 32 KB local store");
    }
    cursor_ = aligned + bytes;
    high_water_ = cursor_ > high_water_ ? cursor_ : high_water_;
    if (observer_ != nullptr && bytes > 0)
      observer_->on_local_alloc(core_id_, aligned, bytes);
    return {reinterpret_cast<T*>(store_.data() + aligned), n};
  }

  std::vector<std::byte> store_;
  int banks_;
  std::size_t bank_size_;
  std::size_t cursor_ = 0;
  std::size_t high_water_ = 0;
  LocalMemoryObserver* observer_ = nullptr;
  int core_id_ = -1;
};

} // namespace esarp::ep
