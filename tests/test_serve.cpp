// Fleet runtime contract (docs/serving.md): seeded arrival traces
// round-trip through JSON and regenerate bit-identically; a clean
// campaign meets every deadline; chaos campaigns (whole-chip fail-stop +
// DMA corruption) finish with zero lost jobs and byte-identical same-seed
// manifests; an unservable fleet aborts with FaultUnrecovered instead of
// silently dropping work.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "fault/plan.hpp"
#include "serve/fleet.hpp"
#include "serve/trace.hpp"
#include "telemetry/compare.hpp"
#include "telemetry/manifest.hpp"

namespace esarp {
namespace {

using serve::Algo;
using serve::ArrivalTrace;
using serve::ChipHealth;
using serve::Fleet;
using serve::FleetConfig;
using serve::JobState;
using serve::ServeReport;
using serve::TraceParams;

TraceParams small_trace_params(std::uint64_t seed = 5) {
  TraceParams p;
  p.n_jobs = 6;
  p.rate_hz = 2000.0;
  p.seed = seed;
  p.n_pulses = 32;
  p.n_range = 65;
  p.deadline_s = 0.01;
  return p;
}

FleetConfig small_fleet(int chips) {
  FleetConfig cfg;
  cfg.n_chips = chips;
  return cfg;
}

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- Trace generation -----------------------------------------------------

TEST(ArrivalTraceGen, SameParamsSameTrace) {
  const ArrivalTrace a = serve::make_trace(small_trace_params());
  const ArrivalTrace b = serve::make_trace(small_trace_params());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].arrival_s, b.jobs[i].arrival_s);
  }
  const ArrivalTrace c = serve::make_trace(small_trace_params(6));
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    differs = differs || a.jobs[i].arrival_s != c.jobs[i].arrival_s;
  EXPECT_TRUE(differs);
}

TEST(ArrivalTraceGen, PoissonTraceIsSortedWithDenseIds) {
  const ArrivalTrace t = serve::make_trace(small_trace_params());
  ASSERT_EQ(t.jobs.size(), 6u);
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(t.jobs[i].id, i);
    EXPECT_GE(t.jobs[i].arrival_s, 0.0);
    if (i > 0) {
      EXPECT_GE(t.jobs[i].arrival_s, t.jobs[i - 1].arrival_s);
    }
  }
}

TEST(ArrivalTraceGen, BurstyTraceHasSameInstantArrivals) {
  TraceParams p = small_trace_params();
  p.n_jobs = 32;
  p.bursty = true;
  p.burst_mean = 4.0;
  const ArrivalTrace t = serve::make_trace(p);
  ASSERT_EQ(t.jobs.size(), 32u);
  std::size_t coincident = 0;
  for (std::size_t i = 1; i < t.jobs.size(); ++i)
    if (t.jobs[i].arrival_s == t.jobs[i - 1].arrival_s) ++coincident;
  EXPECT_GT(coincident, 0u); // bursts land at one instant so queues build
}

TEST(ArrivalTraceGen, RoundTripsThroughJson) {
  const ArrivalTrace t = serve::make_trace(small_trace_params());
  const auto path = temp_file("esarp_test_trace.json");
  serve::save_trace(path, t);
  const ArrivalTrace back = serve::load_trace(path);
  EXPECT_EQ(back.seed, t.seed);
  ASSERT_EQ(back.jobs.size(), t.jobs.size());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].id, t.jobs[i].id);
    EXPECT_EQ(back.jobs[i].arrival_s, t.jobs[i].arrival_s);
    EXPECT_EQ(back.jobs[i].n_pulses, t.jobs[i].n_pulses);
    EXPECT_EQ(back.jobs[i].n_range, t.jobs[i].n_range);
    EXPECT_EQ(back.jobs[i].algo, t.jobs[i].algo);
    EXPECT_EQ(back.jobs[i].n_cores, t.jobs[i].n_cores);
    EXPECT_EQ(back.jobs[i].deadline_s, t.jobs[i].deadline_s);
  }
  std::filesystem::remove(path);
}

TEST(ArrivalTraceGen, LoadRejectsWrongSchema) {
  const auto path = temp_file("esarp_test_bad_trace.json");
  std::ofstream(path) << R"({"schema":"esarp-run-manifest/1","jobs":[]})";
  EXPECT_THROW((void)serve::load_trace(path), ContractViolation);
  std::filesystem::remove(path);
}

TEST(ServeMath, NearestRankPercentile) {
  std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(serve::percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(serve::percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::percentile(xs, 0.01), 1.0);
}

// --- Clean campaigns ------------------------------------------------------

TEST(FleetServe, CleanCampaignMeetsEveryDeadline) {
  Fleet fleet(small_fleet(2));
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  const ServeReport rep = fleet.run(trace);
  EXPECT_EQ(rep.counters.jobs_total, 6u);
  EXPECT_EQ(rep.counters.jobs_met, 6u);
  EXPECT_EQ(rep.counters.jobs_lost, 0u);
  EXPECT_EQ(rep.counters.attempts, 6u);
  EXPECT_EQ(rep.counters.retries, 0u);
  EXPECT_EQ(rep.counters.migrations, 0u);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 1.0);
  EXPECT_GT(rep.throughput_jobs_per_s, 0.0);
  EXPECT_GT(rep.energy_per_image_j, 0.0);
  EXPECT_GE(rep.latency_p99_s, rep.latency_p50_s);
  for (const auto& job : rep.jobs) {
    EXPECT_EQ(job.state, JobState::kMet);
    EXPECT_LE(job.latency_s, 0.01);
    EXPECT_EQ(job.attempts, 1);
  }
  for (const auto& chip : rep.chips)
    EXPECT_EQ(chip.health, ChipHealth::kHealthy);
}

TEST(FleetServe, SameSeedCampaignsAreBitIdentical) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.5;
  cfg.chaos.dma_corrupt_rate = 2e-6;
  const ServeReport a = Fleet(cfg).run(trace);
  const ServeReport b = Fleet(cfg).run(trace);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);

  const auto pa = temp_file("esarp_serve_a.json");
  const auto pb = temp_file("esarp_serve_b.json");
  telemetry::RunManifest ma("serve"), mb("serve");
  serve::fill_serve_manifest(ma, cfg, trace, a);
  serve::fill_serve_manifest(mb, cfg, trace, b);
  ma.write(pa);
  mb.write(pb);
  EXPECT_EQ(slurp(pa), slurp(pb)); // the CI serve-smoke `cmp` property
  std::filesystem::remove(pa);
  std::filesystem::remove(pb);
}

TEST(FleetServe, HostThreadCountDoesNotChangeTheCampaign) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.5;
  const std::uint64_t seq = Fleet(cfg).run(trace).schedule_hash;
  cfg.host_jobs = 4;
  EXPECT_EQ(Fleet(cfg).run(trace).schedule_hash, seq);
}

// --- Chaos campaigns ------------------------------------------------------

TEST(FleetServe, ChaosCampaignLosesNoJobs) {
  // Seeded so the campaign actually exercises the fail-stop path: chips
  // die mid-job, their jobs migrate, and every job still reaches a
  // terminal state (met, late, or degraded — never lost).
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.5;
  cfg.chaos.dma_corrupt_rate = 2e-6;
  const ServeReport rep = Fleet(cfg).run(trace);
  EXPECT_GE(rep.counters.chip_kills, 1u);
  EXPECT_GE(rep.counters.migrations, 1u);
  EXPECT_GE(rep.counters.retries, rep.counters.chip_kills);
  EXPECT_EQ(rep.counters.jobs_lost, 0u);
  EXPECT_EQ(rep.counters.jobs_met + rep.counters.jobs_late +
                rep.counters.jobs_degraded,
            rep.counters.jobs_total);
  std::size_t failed = 0;
  for (const auto& chip : rep.chips)
    if (chip.health == ChipHealth::kFailed) {
      ++failed;
      EXPECT_GE(chip.failed_at_s, 0.0);
    }
  EXPECT_EQ(failed, rep.counters.chip_kills);
}

TEST(FleetServe, KilledAttemptsEventuallyDegrade) {
  // With a one-attempt retry budget, a single fail-stop pushes the job
  // down the degradation ladder instead of burning more full-quality
  // retries. Scan a few chaos seeds for a campaign that both degrades and
  // completes — the scan itself is deterministic.
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    FleetConfig cfg = small_fleet(4);
    cfg.policy.max_attempts = 1;
    cfg.chaos.seed = seed;
    cfg.chaos.chip_kill_rate = 0.45;
    try {
      const ServeReport rep = Fleet(cfg).run(trace);
      if (rep.counters.degradations == 0) continue;
      found = true;
      EXPECT_GE(rep.counters.jobs_degraded, 1u);
      EXPECT_EQ(rep.counters.jobs_lost, 0u);
      EXPECT_LT(rep.slo_attainment, 1.0);
      for (const auto& job : rep.jobs) {
        if (job.state == JobState::kDegraded) {
          EXPECT_GE(job.degrade_level, 1);
        }
      }
    } catch (const fault::FaultUnrecovered&) {
      // This seed killed the whole fleet — a legal outcome, keep scanning.
    }
  }
  EXPECT_TRUE(found);
}

TEST(FleetServe, ExhaustedFleetAbortsLoudly) {
  // Every dispatch kills its chip: after both chips die the fleet cannot
  // make progress and must abort with FaultUnrecovered (CLI exit 5), not
  // drop the outstanding jobs.
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  cfg.chaos.chip_kill_rate = 1.0;
  Fleet fleet(cfg);
  EXPECT_THROW((void)fleet.run(trace), fault::FaultUnrecovered);
}

TEST(FleetServe, PersistentCorruptionExhaustsTheDegradationLadder) {
  // Corrupting every transfer defeats the checksum verify at every
  // degradation level, so the job runs out of ladder and the campaign
  // aborts instead of returning a corrupt image.
  TraceParams p = small_trace_params();
  p.n_jobs = 1;
  const ArrivalTrace trace = serve::make_trace(p);
  FleetConfig cfg = small_fleet(2);
  cfg.policy.max_attempts = 1;
  cfg.policy.max_degrade = 1;
  cfg.chaos.dma_corrupt_rate = 1.0;
  Fleet fleet(cfg);
  EXPECT_THROW((void)fleet.run(trace), fault::FaultUnrecovered);
}

// --- Manifest -------------------------------------------------------------

TEST(ServeManifest, CarriesTheServeSchemaAndComparesClean) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  const ServeReport rep = Fleet(cfg).run(trace);
  telemetry::RunManifest m("serve");
  serve::fill_serve_manifest(m, cfg, trace, rep);
  std::ostringstream os;
  m.write(os);
  const JsonValue doc = parse_json(os.str());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "esarp-serve-manifest/1");
  const JsonValue* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  for (const char* key :
       {"jobs_total", "jobs_lost", "latency_p99_s", "slo_attainment",
        "throughput_jobs_per_s", "energy_per_image_j", "retries",
        "migrations", "degradations", "chip_kills", "schedule_hash_lo"}) {
    EXPECT_NE(results->find(key), nullptr) << key;
  }
  // compare_manifests accepts the serve schema and a self-compare is
  // clean at zero tolerance (the CI regression gate).
  telemetry::CompareOptions opt;
  opt.default_threshold = 0.0;
  opt.latency_slo_band = 0.0;
  const auto cmp = telemetry::compare_manifests(doc, doc, opt);
  EXPECT_TRUE(cmp.ok());
}

TEST(ServeManifest, MetricsRegistryMirrorsTheCounters) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  const ServeReport rep = Fleet(cfg).run(trace);
  telemetry::MetricsRegistry reg;
  serve::fill_serve_metrics(reg, rep);
  telemetry::RunManifest m("serve");
  m.set_metrics(&reg);
  std::ostringstream os;
  m.write(os);
  const JsonValue doc = parse_json(os.str());
  const JsonValue* counters = doc.find_path("metrics.counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* jobs = counters->find("serve.jobs_total");
  ASSERT_NE(jobs, nullptr);
  EXPECT_DOUBLE_EQ(jobs->as_number(), 6.0);
  const JsonValue* gauges = doc.find_path("metrics.gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("serve.slo_attainment"), nullptr);
}

} // namespace
} // namespace esarp
