// Width-generic SIMD implementation of the unified kernel API, shared by
// the SSE2 (4-lane) and AVX2 (8-lane) backend translation units. Each TU
// defines a vector-trait struct V with the intrinsics of its instruction
// set and instantiates SimdKernels<V>; the traits live in anonymous
// namespaces, so the instantiations are TU-local (no ODR interaction
// between arch-specific object files).
//
// BIT-EXACTNESS CONTRACT: every function here replicates its scalar
// reference (sar/interp.hpp, sar/merge_kernel.hpp, common/fastmath.hpp,
// sar/gbp.hpp) operation for operation — the same association (a*b*c is
// (a*b)*c exactly where the scalar source writes it that way), ternaries
// as mask blends evaluating both arms, the rsqrt bit trick on integer
// lanes, truncating float->int conversion, and no FMA contraction (all
// kernel TUs build with -ffp-contract=off, and the AVX2 TU deliberately
// enables -mavx2 WITHOUT -mfma). IEEE sqrtps matches std::sqrt(float)
// exactly, so the GBP range vectorizes; the double-precision carrier
// phase does not, and stays scalar per valid lane. Changing any
// expression here requires re-running the cross-backend tests in
// tests/test_kernels.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sar/kernels_impl.hpp"

// The scalar kernels handle the non-multiple-of-width tails.
#include "sar/interp.hpp"

namespace esarp::sar::kernels::detail {

template <class V>
struct SimdKernels {
  using F = typename V::F;
  using I = typename V::I;
  static constexpr std::size_t kLanes = V::kLanes;

  /// -x as the sign-bit flip (exactly what scalar unary minus does).
  static F neg(F x) { return V::xor_(x, V::set1(-0.0f)); }

  /// fastmath::fast_rsqrt, lane-exact: y = y * (1.5f - ((xhalf*y)*y)).
  static F fast_rsqrt(F x) {
    const F xhalf = V::mul(V::set1(0.5f), x);
    I bits = V::to_i(x);
    bits = V::sub_i(V::set1_i(0x5f375a86), V::shr(bits, 1));
    F y = V::to_f(bits);
    y = V::mul(y, V::sub(V::set1(1.5f), V::mul(V::mul(xhalf, y), y)));
    y = V::mul(y, V::sub(V::set1(1.5f), V::mul(V::mul(xhalf, y), y)));
    return y;
  }

  /// fastmath::fast_sqrt: the x <= 0 early-out becomes a blend; the
  /// discarded arm's garbage lanes are masked away exactly like the
  /// scalar branch never computes them.
  static F fast_sqrt(F x) {
    const F le0 = V::cmp_le(x, V::zero());
    const F r = V::mul(x, fast_rsqrt(x));
    return V::blend(le0, V::zero(), r);
  }

  /// fastmath::fast_recip_pos.
  static F fast_recip_pos(F x) {
    const F r = fast_rsqrt(x);
    return V::mul(r, r);
  }

  /// fastmath::poly_cos with the two ternaries and the flip as blends.
  static F poly_cos(F x) {
    const F half_pi = V::set1(1.57079632679490f);
    const F pi = V::set1(3.14159265358979f);
    const F a0 = V::blend(V::cmp_lt(x, V::zero()), neg(x), x);
    const F flip = V::cmp_gt(a0, half_pi);
    const F a = V::blend(flip, V::sub(pi, a0), a0);
    const F u = V::mul(a, a);
    F c = V::set1(-1.0f / 3628800.0f);
    c = V::add(V::set1(1.0f / 40320.0f), V::mul(u, c));
    c = V::add(V::set1(-1.0f / 720.0f), V::mul(u, c));
    c = V::add(V::set1(1.0f / 24.0f), V::mul(u, c));
    c = V::add(V::set1(-1.0f / 2.0f), V::mul(u, c));
    c = V::add(V::set1(1.0f), V::mul(u, c));
    return V::blend(flip, neg(c), c);
  }

  /// fastmath::poly_acos (A&S 4.4.45 form, mirrored for x < 0).
  static F poly_acos(F x) {
    const F is_neg = V::cmp_lt(x, V::zero());
    const F ax = V::blend(is_neg, neg(x), x);
    F poly = V::set1(-0.0187293f);
    poly = V::add(V::set1(0.0742610f), V::mul(ax, poly));
    poly = V::add(V::set1(-0.2121144f), V::mul(ax, poly));
    poly = V::add(V::set1(1.5707288f), V::mul(ax, poly));
    const F r = V::mul(fast_sqrt(V::sub(V::set1(1.0f), ax)), poly);
    const F pi = V::set1(3.14159265358979f);
    return V::blend(is_neg, V::sub(pi, r), r);
  }

  /// sar::merge_geometry (paper eqs. 1-4) for a lane of ranges. The
  /// nested clamp ternary c = a > 1 ? 1 : (a < -1 ? -1 : a) becomes
  /// inner-then-outer blends with identical selection semantics.
  static void merge_geometry_lanes(F r, F cr, F d2, F inv_2d, F& r1, F& th1,
                                   F& r2, F& th2) {
    const F r2v = V::mul(r, r);
    const F base = V::add(r2v, d2);
    const F rcr = V::mul(r, cr);
    const F r1sq = V::add(base, rcr);
    const F r2sq = V::sub(base, rcr);
    r1 = fast_sqrt(r1sq);
    r2 = fast_sqrt(r2sq);
    const F n1 = V::sub(V::add(r1sq, d2), r2v);
    const F n2 = V::sub(V::add(r2sq, d2), r2v);
    const F one = V::set1(1.0f);
    const F i1 = fast_recip_pos(V::blend(V::cmp_gt(r1, V::zero()), r1, one));
    const F i2 = fast_recip_pos(V::blend(V::cmp_gt(r2, V::zero()), r2, one));
    const F a1 = V::mul(V::mul(n1, i1), inv_2d);
    const F a2 = V::mul(V::mul(n2, i2), inv_2d);
    const F neg_one = V::set1(-1.0f);
    const F c1 = V::blend(V::cmp_gt(a1, one), one,
                          V::blend(V::cmp_lt(a1, neg_one), neg_one, a1));
    const F c2 = V::blend(V::cmp_gt(a2, one), one,
                          V::blend(V::cmp_lt(a2, neg_one), neg_one, a2));
    const F pi = V::set1(3.14159265358979f);
    th1 = poly_acos(c1);
    th2 = V::sub(pi, poly_acos(c2));
  }

  static void merge_geometry_row(float r0, float dr, std::size_t j0,
                                 std::size_t n, float cr, float d2,
                                 float inv_2d, MergeGeom* out) {
    const F vr0 = V::set1(r0);
    const F vdr = V::set1(dr);
    const F vcr = V::set1(cr);
    const F vd2 = V::set1(d2);
    const F vinv = V::set1(inv_2d);
    std::size_t i = 0;
    float b_r1[kLanes], b_t1[kLanes], b_r2[kLanes], b_t2[kLanes];
    for (; i + kLanes <= n; i += kLanes) {
      const I j =
          V::add_i(V::set1_i(static_cast<std::int32_t>(j0 + i)), V::iota());
      const F r = V::add(vr0, V::mul(V::cvt_f(j), vdr));
      F r1, th1, r2, th2;
      merge_geometry_lanes(r, vcr, vd2, vinv, r1, th1, r2, th2);
      V::store(b_r1, r1);
      V::store(b_t1, th1);
      V::store(b_r2, r2);
      V::store(b_t2, th2);
      for (std::size_t l = 0; l < kLanes; ++l)
        out[i + l] = MergeGeom{b_r1[l], b_t1[l], b_r2[l], b_t2[l]};
    }
    for (; i < n; ++i) {
      const float r = r0 + static_cast<float>(j0 + i) * dr;
      out[i] = merge_geometry(r, cr, d2, inv_2d);
    }
  }

  /// One component pair of a Neville recurrence step:
  /// out = (a * tx - b * ty) * scale, matching the scalar complex
  /// arithmetic componentwise (complex * float scales both components).
  static void neville_step(F are, F aim, F bre, F bim, F tx, F ty, F scale,
                           F& ore, F& oim) {
    ore = V::mul(V::sub(V::mul(are, tx), V::mul(bre, ty)), scale);
    oim = V::mul(V::sub(V::mul(aim, tx), V::mul(bim, ty)), scale);
  }

  /// sar::neville4 on component lanes (nodes y0..y3, positions t).
  static void neville4_lanes(F y0re, F y0im, F y1re, F y1im, F y2re, F y2im,
                             F y3re, F y3im, F t, F& ore, F& oim) {
    const F t0 = t;
    const F t1 = V::sub(t, V::set1(1.0f));
    const F t2 = V::sub(t, V::set1(2.0f));
    const F t3 = V::sub(t, V::set1(3.0f));
    const F m1 = V::set1(-1.0f);
    const F mh = V::set1(-0.5f);
    const F mthird = V::set1(-1.0f / 3.0f);
    F p0re, p0im, p1re, p1im, p2re, p2im;
    neville_step(y0re, y0im, y1re, y1im, t1, t0, m1, p0re, p0im);
    neville_step(y1re, y1im, y2re, y2im, t2, t1, m1, p1re, p1im);
    neville_step(y2re, y2im, y3re, y3im, t3, t2, m1, p2re, p2im);
    neville_step(p0re, p0im, p1re, p1im, t2, t0, mh, p0re, p0im);
    neville_step(p1re, p1im, p2re, p2im, t3, t1, mh, p1re, p1im);
    neville_step(p0re, p0im, p1re, p1im, t3, t0, mthird, ore, oim);
  }

  static void neville4_many(const cf32* y, const float* t, cf32* out,
                            std::size_t n) {
    const F y0re = V::set1(y[0].real());
    const F y0im = V::set1(y[0].imag());
    const F y1re = V::set1(y[1].real());
    const F y1im = V::set1(y[1].imag());
    const F y2re = V::set1(y[2].real());
    const F y2im = V::set1(y[2].imag());
    const F y3re = V::set1(y[3].real());
    const F y3im = V::set1(y[3].imag());
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      F ore, oim;
      neville4_lanes(y0re, y0im, y1re, y1im, y2re, y2im, y3re, y3im,
                     V::load(t + i), ore, oim);
      V::store_cf(out + i, ore, oim);
    }
    for (; i < n; ++i) out[i] = neville4(y, t[i]);
  }

  static void neville4_rows(const cf32* row0, const cf32* row1,
                            const cf32* row2, const cf32* row3,
                            const float* t, cf32* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      F y0re, y0im, y1re, y1im, y2re, y2im, y3re, y3im;
      V::load_cf(row0 + i, y0re, y0im);
      V::load_cf(row1 + i, y1re, y1im);
      V::load_cf(row2 + i, y2re, y2im);
      V::load_cf(row3 + i, y3re, y3im);
      F ore, oim;
      neville4_lanes(y0re, y0im, y1re, y1im, y2re, y2im, y3re, y3im,
                     V::load(t + i), ore, oim);
      V::store_cf(out + i, ore, oim);
    }
    for (; i < n; ++i) {
      const cf32 y[4] = {row0[i], row1[i], row2[i], row3[i]};
      out[i] = neville4(y, t[i]);
    }
  }

  static void criterion_terms(const cf32* minus, const cf32* plus,
                              float* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      F mre, mim, pre, pim;
      V::load_cf(minus + i, mre, mim);
      V::load_cf(plus + i, pre, pim);
      const F mm = V::add(V::mul(mre, mre), V::mul(mim, mim));
      const F mp = V::add(V::mul(pre, pre), V::mul(pim, pim));
      V::store(out + i, V::mul(mm, mp));
    }
    for (; i < n; ++i) out[i] = criterion_term(minus[i], plus[i]);
  }

  static void gbp_contrib_row(const float* px, const float* py,
                              float pulse_x, const cf32* pulse_row,
                              const GbpGrid& g, cf32* acc, std::size_t n) {
    const F vpx = V::set1(pulse_x);
    const F vr0 = V::set1(g.r0);
    const F vinv = V::set1(g.inv_dr);
    const F vhalf = V::set1(0.5f);
    const F vminus_half = V::set1(-0.5f);
    const I vnr = V::set1_i(g.n_range);
    std::size_t i = 0;
    float rng[kLanes];
    std::int32_t bin[kLanes];
    std::int32_t ok[kLanes];
    for (; i + kLanes <= n; i += kLanes) {
      const F dx = V::sub(V::load(px + i), vpx);
      const F pyv = V::load(py + i);
      const F range = V::sqrt(V::add(V::mul(dx, dx), V::mul(pyv, pyv)));
      const F bf = V::mul(V::sub(range, vr0), vinv);
      const I b = V::cvt_i(V::add(bf, vhalf));
      // valid = !(bf < -0.5f) && (bin < n_range), exactly the scalar
      // early-out `if (bf < -0.5f || bin >= g.n_range) return {}`.
      const I valid = V::andnot_i(V::to_i(V::cmp_lt(bf, vminus_half)),
                                  V::cmp_lt_i(b, vnr));
      V::store(rng, range);
      V::store_i(bin, b);
      V::store_i(ok, valid);
      for (std::size_t l = 0; l < kLanes; ++l) {
        if (ok[l] == 0) continue;
        // Double-precision carrier phase: scalar libm, like the reference.
        const double phase = std::fmod(
            g.k_phase * static_cast<double>(rng[l]), 2.0 * kPi);
        const cf32 rot{static_cast<float>(std::cos(phase)),
                       static_cast<float>(std::sin(phase))};
        acc[i + l] += pulse_row[bin[l]] * rot;
      }
    }
    for (; i < n; ++i)
      acc[i] += gbp_contribution(px[i], py[i], pulse_x, pulse_row, g);
  }

  static const KernelTable* table() {
    static const KernelTable t{merge_geometry_row, neville4_many,
                               neville4_rows, criterion_terms,
                               gbp_contrib_row};
    return &t;
  }
};

} // namespace esarp::sar::kernels::detail
