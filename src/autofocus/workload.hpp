// Input-block generators for autofocus experiments.
#pragma once

#include <cstdint>

#include "common/array2d.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "autofocus/af_params.hpp"
#include "sar/polar.hpp"

namespace esarp::af {

struct BlockPair {
  Array2D<cf32> minus; ///< block from the trailing child subaperture
  Array2D<cf32> plus;  ///< block from the leading child subaperture
};

/// Synthesise a pair of blocks sampled from the same smooth complex field,
/// with `true_shift` (range bins) of relative displacement — the linear
/// data shift a flight-path error induces between the two contributing
/// subimages. criterion_sweep's maximum should land on the candidate
/// closest to `true_shift`.
[[nodiscard]] BlockPair synthetic_block_pair(Rng& rng, const AfParams& p,
                                             float true_shift);

/// Cut a pair of 6x6 blocks at (theta_bin, range_bin) out of two child
/// subaperture images (area-of-interest extraction used before a merge).
[[nodiscard]] BlockPair blocks_from_subapertures(
    const sar::SubapertureImage& child_minus,
    const sar::SubapertureImage& child_plus, const AfParams& p,
    std::size_t theta_bin, std::size_t range_bin);

} // namespace esarp::af
