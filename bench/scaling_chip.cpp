// The paper's closing remark: "a 64-core Epiphany chip is now available"
// — and its programming-effort warning about scaling MPMD. This bench
// takes the SPMD FFBP (which the paper argues scales naturally) from the
// 16-core E16G3 to an E64G4-class 8x8 chip (64 cores, 800 MHz, 65 nm)
// and reports where the shared 8 GB/s eLink starts to cap the speedup.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"

int main() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();

  struct Chip {
    const char* name;
    ep::ChipConfig cfg;
    int cores;
  };
  ep::ChipConfig e16;
  ep::ChipConfig e64;
  e64.rows = 8;
  e64.cols = 8;
  e64.clock_hz = 800e6; // E64G4 spec clock
  const Chip chips[] = {
      {"E16G3 4x4 @ 1 GHz", e16, 16},
      {"E64G4 8x8 @ 800 MHz", e64, 64},
  };

  Table t("FFBP SPMD across Epiphany generations");
  t.header({"Chip", "Cores", "Time (ms)", "Speedup vs E16",
            "Core util.", "eLink read util.", "Avg power (W)"});
  CsvWriter csv(bench::out_dir() / "scaling_chip.csv",
                {"chip", "cores", "time_ms", "util", "power_w"});

  double t16 = 0.0;
  for (const auto& chip : chips) {
    std::cerr << "simulating " << chip.name << "...\n";
    core::FfbpMapOptions opt;
    opt.n_cores = chip.cores;
    const auto res = core::run_ffbp_epiphany(w.data, w.params, opt, chip.cfg);
    if (t16 == 0.0) t16 = res.seconds;
    // eLink read-channel utilisation: serialised read cycles / makespan.
    const double elink_util =
        static_cast<double>(res.perf.ext.read_bytes) /
        static_cast<double>(chip.cfg.elink_bytes_per_cycle) /
        static_cast<double>(res.cycles);
    t.row({chip.name, std::to_string(chip.cores), bench::ms(res.seconds),
           Table::num(t16 / res.seconds, 2),
           Table::num(res.perf.utilization() * 100.0, 0) + " %",
           Table::num(elink_util * 100.0, 0) + " %",
           Table::num(res.energy.avg_watts, 2)});
    csv.row({chip.name, std::to_string(chip.cores),
             Table::num(res.seconds * 1e3, 2),
             Table::num(res.perf.utilization(), 4),
             Table::num(res.energy.avg_watts, 3)});
  }
  t.note("same SPMD source scales to the larger chip unchanged (the SPMD "
         "productivity argument of Section VI-B); the eLink becomes the "
         "limiter as core count quadruples while off-chip bandwidth stays "
         "at 8 GB/s");
  t.print(std::cout);
  return 0;
}
