// The kernel-facing API of a simulated core.
//
// A core program is a coroutine `Task program(CoreCtx& ctx)`. Simulated time
// advances only through the awaitables returned here:
//
//   co_await ctx.compute(ops);            // run a counted compute block
//   co_await ctx.read_ext(dst, src, n);   // blocking bulk SDRAM read
//   co_await ctx.read_ext_gather(k, sz);  // k scattered blocking reads
//   co_await ctx.write_ext(dst, src, n);  // posted SDRAM write
//   auto job = ctx.dma_read_ext(...);     // start DMA, keep computing
//   co_await ctx.wait(job);               // double-buffer sync point
//   co_await ctx.write_remote(c, d, s, n) // on-chip write to another core
//
// Data moves eagerly (host memcpy at call time) while the awaitable carries
// the simulated completion time; this is sound for the blocking operations
// (program order preserved) and for DMA provided the kernel awaits the job
// before reading the destination — which real double-buffered Epiphany code
// must do too.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "common/opcounts.hpp"
#include "epiphany/config.hpp"
#include "fault/injector.hpp"
#include "epiphany/core.hpp"
#include "epiphany/cost_model.hpp"
#include "epiphany/ext_port.hpp"
#include "epiphany/external_memory.hpp"
#include "epiphany/noc.hpp"
#include "epiphany/power.hpp"
#include "epiphany/scheduler.hpp"
#include "epiphany/task.hpp"
#include "epiphany/trace.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::ep {

/// Handle for an in-flight DMA transfer. `check_id` identifies the job to
/// the hazard sanitizer (0 = unchecked run or null job; see check.hpp).
/// `fault` is the injected outcome on a fault campaign (kNone otherwise);
/// the resilience layer (resilient.hpp) reads it to model detection — plain
/// kernels ignore it and consume whatever payload was delivered.
struct DmaJob {
  Cycles done_at = 0;
  std::uint64_t check_id = 0;
  fault::TransferFault fault = fault::TransferFault::kNone;
};

/// One segment of a burst DMA transfer (see CoreCtx::dma_read_ext_burst).
struct DmaSeg {
  void* dst = nullptr;
  const void* src = nullptr;
  std::size_t bytes = 0;
};

class CoreCtx {
public:
  /// `checker` (optional) hooks the esarp::check hazard sanitizer into
  /// every memory/DMA/NoC operation issued through this context. All hooks
  /// are pure shadow-state updates: they never touch the scheduler, so a
  /// checked run is cycle-identical to an unchecked one.
  CoreCtx(Core& core, Scheduler& sched, Noc& noc, ExtPort& ext_port,
          ExternalMemory& ext_mem, const CostModel& cost,
          const ChipConfig& cfg, Tracer& tracer,
          telemetry::MetricsRegistry& metrics,
          check::CheckContext* checker = nullptr,
          fault::FaultInjector* fault = nullptr,
          PowerSampler* power = nullptr)
      : core_(core), sched_(sched), noc_(noc), ext_port_(ext_port),
        ext_mem_(ext_mem), cost_(cost), cfg_(cfg), tracer_(tracer),
        metrics_(metrics), check_(checker), fault_(fault), power_(power) {}

  CoreCtx(const CoreCtx&) = delete;
  CoreCtx& operator=(const CoreCtx&) = delete;

  [[nodiscard]] int id() const { return core_.id(); }
  [[nodiscard]] Coord coord() const { return core_.coord(); }
  [[nodiscard]] Core& core() { return core_; }
  [[nodiscard]] LocalMemory& local() { return core_.mem(); }
  [[nodiscard]] ExternalMemory& ext() { return ext_mem_; }
  [[nodiscard]] Scheduler& sched() { return sched_; }
  [[nodiscard]] Noc& noc() { return noc_; }
  [[nodiscard]] const ChipConfig& config() const { return cfg_; }
  [[nodiscard]] Cycles now() const { return sched_.now(); }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  /// The hazard sanitizer attached to this machine, or nullptr.
  [[nodiscard]] check::CheckContext* checker() { return check_; }
  /// The fault injector attached to this machine, or nullptr (no campaign).
  [[nodiscard]] fault::FaultInjector* fault_injector() { return fault_; }

  /// True once this core's fail-stop trigger cycle has passed (always
  /// false outside a fault campaign). Resilient kernels poll this at
  /// work-item boundaries and call mark_failed() + co_return.
  [[nodiscard]] bool fail_stop_due() const {
    return fault_ != nullptr && fault_->fail_stop_due(id(), now());
  }

  /// Record this core's fail-stop: state flips to kFailed and the failure
  /// becomes visible to the recovery layer's confirmed-failure oracle.
  void mark_failed() {
    core_.state = CoreState::kFailed;
    if (fault_ != nullptr) fault_->mark_failed(id(), now());
  }

  /// Open a named, nestable trace span on this core. The core's live span
  /// stack always tracks these (for deadlock/watchdog diagnostics); the
  /// tracer additionally records them when tracing is enabled. Pair with
  /// end_span(); see Tracer::push_span.
  void begin_span(std::string name) {
    if (check_ != nullptr) check_->on_span_push(id(), name);
    core_.spans.push_back(name);
    tracer_.push_span(id(), std::move(name), now());
  }
  /// Close this core's innermost open trace span.
  void end_span() {
    if (check_ != nullptr) check_->on_span_pop(id());
    if (!core_.spans.empty()) core_.spans.pop_back();
    tracer_.pop_span(id(), now());
  }

  /// Execute a compute block of counted work from local memory.
  [[nodiscard]] DelayFor compute(const OpCounts& ops) {
    const Cycles c = cost_.cycles(ops);
    core_.counters.busy += c;
    core_.counters.ops += ops;
    tracer_.add(id(), SegmentKind::kCompute, now(), now() + c);
    if (power_ != nullptr) power_->record_compute(id(), now(), now() + c, ops);
    return DelayFor{sched_, c};
  }

  /// Blocking bulk read of `bytes` from SDRAM (one transaction).
  [[nodiscard]] DelayUntil read_ext(void* dst, const void* src,
                                    std::size_t bytes) {
    ESARP_EXPECTS(ext_mem_.owns(src));
    if (check_ != nullptr) {
      check_->on_ext_access(id(), src, bytes, /*is_read=*/true, "read_ext");
      check_->on_local_access(id(), dst, bytes, /*is_write=*/true, "read_ext");
    }
    std::memcpy(dst, src, bytes);
    last_fault_ = roll_transfer(dst, bytes);
    const Cycles done = ext_port_.blocking_read(coord(), 1, bytes, now());
    core_.counters.ext_stall += done - now();
    core_.counters.ext_read_bytes += bytes;
    tracer_.add(id(), SegmentKind::kExtRead, now(), done);
    return DelayUntil{sched_, done};
  }

  /// `elems` independent blocking reads of `bytes_each` (scattered gather,
  /// e.g. per-pixel loads in sequential FFBP). Caller copies the data itself
  /// (addresses are data-dependent); this charges the time.
  [[nodiscard]] DelayUntil read_ext_gather(std::uint64_t elems,
                                           std::size_t bytes_each) {
    const Cycles done =
        ext_port_.blocking_read(coord(), elems, bytes_each, now());
    core_.counters.ext_stall += done - now();
    core_.counters.ext_read_bytes += elems * bytes_each;
    tracer_.add(id(), SegmentKind::kExtRead, now(), done);
    return DelayUntil{sched_, done};
  }

  /// Posted write of `bytes` to SDRAM; the core continues after issuing
  /// (paper: "the write operation is performed without stalling").
  [[nodiscard]] DelayUntil write_ext(void* dst, const void* src,
                                     std::size_t bytes) {
    ESARP_EXPECTS(ext_mem_.owns(dst));
    if (check_ != nullptr) {
      check_->on_ext_access(id(), dst, bytes, /*is_read=*/false, "write_ext");
      check_->on_local_access(id(), src, bytes, /*is_write=*/false,
                              "write_ext");
    }
    std::memcpy(dst, src, bytes);
    last_fault_ = roll_transfer(dst, bytes);
    const Cycles done = ext_port_.posted_write(coord(), bytes, now());
    core_.counters.ext_write_bytes += bytes;
    tracer_.add(id(), SegmentKind::kExtWrite, now(), done);
    return DelayUntil{sched_, done};
  }

  /// Start a DMA read SDRAM -> local store. Returns immediately.
  [[nodiscard]] DmaJob dma_read_ext(void* dst, const void* src,
                                    std::size_t bytes) {
    ESARP_EXPECTS(ext_mem_.owns(src));
    ESARP_EXPECTS(core_.mem().owns(dst));
    std::memcpy(dst, src, bytes);
    const fault::TransferFault tf = roll_transfer(dst, bytes);
    core_.counters.dma_transfers += 1;
    core_.counters.dma_bytes += bytes;
    const Cycles done = ext_port_.dma_read(coord(), bytes, now());
    std::uint64_t check_id = 0;
    if (check_ != nullptr) {
      check_id = check_->open_dma_job(id());
      check_->on_ext_access(id(), src, bytes, /*is_read=*/true,
                            "dma_read_ext");
      check_->on_dma_segment(id(), check_id, dst, bytes,
                             /*writes_local=*/true, done, "dma_read_ext");
    }
    return DmaJob{done, check_id, tf};
  }

  /// Start a burst of DMA read segments SDRAM -> local store as one job.
  /// Cycle-for-cycle equivalent to one dma_read_ext per segment followed by
  /// a wait on each (same per-segment setup, channel queueing and stat
  /// accounting; the returned job completes with the last segment), but the
  /// whole burst costs a single scheduler event to await — the engine's
  /// burst-level transfer modeling (ChipConfig::burst_transfers).
  [[nodiscard]] DmaJob dma_read_ext_burst(std::span<const DmaSeg> segs) {
    ESARP_EXPECTS(!segs.empty());
    burst_sizes_.clear();
    fault::TransferFault worst = fault::TransferFault::kNone;
    for (const DmaSeg& s : segs) {
      ESARP_EXPECTS(ext_mem_.owns(s.src));
      ESARP_EXPECTS(core_.mem().owns(s.dst));
      std::memcpy(s.dst, s.src, s.bytes);
      const fault::TransferFault tf = roll_transfer(s.dst, s.bytes);
      if (static_cast<int>(tf) > static_cast<int>(worst)) worst = tf;
      core_.counters.dma_transfers += 1;
      core_.counters.dma_bytes += s.bytes;
      burst_sizes_.push_back(s.bytes);
    }
    const Cycles done = ext_port_.dma_read_burst(coord(), burst_sizes_, now());
    std::uint64_t check_id = 0;
    if (check_ != nullptr) {
      check_id = check_->open_dma_job(id());
      for (const DmaSeg& s : segs) {
        check_->on_ext_access(id(), s.src, s.bytes, /*is_read=*/true,
                              "dma_read_ext_burst");
        // Every segment window stays hazardous until the whole burst
        // completes — kernels must await the job, not individual segments.
        check_->on_dma_segment(id(), check_id, s.dst, s.bytes,
                               /*writes_local=*/true, done,
                               "dma_read_ext_burst");
      }
    }
    return DmaJob{done, check_id, worst};
  }

  /// Start a DMA write local store -> SDRAM. Returns immediately.
  [[nodiscard]] DmaJob dma_write_ext(void* dst, const void* src,
                                     std::size_t bytes) {
    ESARP_EXPECTS(ext_mem_.owns(dst));
    std::memcpy(dst, src, bytes);
    const fault::TransferFault tf = roll_transfer(dst, bytes);
    core_.counters.dma_transfers += 1;
    core_.counters.dma_bytes += bytes;
    const Cycles done = ext_port_.dma_write(coord(), bytes, now());
    std::uint64_t check_id = 0;
    if (check_ != nullptr) {
      check_id = check_->open_dma_job(id());
      check_->on_ext_access(id(), dst, bytes, /*is_read=*/false,
                            "dma_write_ext");
      check_->on_dma_segment(id(), check_id, src, bytes,
                             /*writes_local=*/false, done, "dma_write_ext");
    }
    return DmaJob{done, check_id, tf};
  }

  /// Block until a DMA job completes.
  [[nodiscard]] DelayUntil wait(DmaJob job) {
    if (check_ != nullptr) check_->on_dma_wait(id(), job.check_id);
    if (job.done_at > now()) {
      core_.counters.dma_wait += job.done_at - now();
      tracer_.add(id(), SegmentKind::kDmaWait, now(), job.done_at);
    }
    return DelayUntil{sched_, job.done_at};
  }

  /// On-chip write into another core's local store (cMesh). The writer is
  /// busy for the injection time; delivery completes at the returned time.
  [[nodiscard]] DelayUntil write_remote(Coord dst_core, void* dst,
                                        const void* src, std::size_t bytes) {
    std::memcpy(dst, src, bytes);
    const Cycles arrival =
        noc_.transfer(coord(), dst_core, bytes, now(), Mesh::kOnChipWrite);
    if (check_ != nullptr) {
      check_->on_local_access(id(), src, bytes, /*is_write=*/false,
                              "write_remote");
      check_->on_remote_write(id(), dst_core, dst, bytes, arrival);
    }
    core_.counters.msgs_sent += 1;
    core_.counters.msg_bytes_sent += bytes;
    // Writer only pays injection (stores issue at link rate), not delivery.
    const Cycles inject = cfg_.cycles_for_bytes_on_link(bytes);
    (void)arrival;
    return DelayUntil{sched_, now() + inject};
  }

  /// Blocking on-chip read from another core's local store (rMesh):
  /// request travels to the remote node and the reply returns — the paper
  /// notes reads are the expensive direction, which is why its pipelines
  /// push data with writes instead.
  [[nodiscard]] DelayUntil read_remote(Coord src_core, void* dst,
                                       const void* src, std::size_t bytes) {
    if (check_ != nullptr) {
      check_->on_remote_read(id(), src_core, src, bytes);
      check_->on_local_access(id(), dst, bytes, /*is_write=*/true,
                              "read_remote");
    }
    std::memcpy(dst, src, bytes);
    const Cycles hops = static_cast<Cycles>(hop_distance(coord(), src_core)) *
                        cfg_.hop_latency;
    // Request packet out, data serialised back on the read mesh. The
    // reading core initiates, so it owns the byte-hop energy even though
    // the data flows from src_core.
    const Cycles arrival = noc_.transfer(src_core, coord(), bytes,
                                         now() + hops, Mesh::kRead, coord());
    core_.counters.ext_stall += arrival - now(); // read-stall accounting
    tracer_.add(id(), SegmentKind::kExtRead, now(), arrival);
    return DelayUntil{sched_, arrival};
  }

  /// Pure simulated delay (e.g. modelling fixed overheads).
  [[nodiscard]] DelayFor idle(Cycles cycles) { return DelayFor{sched_, cycles}; }

  /// Injected outcome of the most recent read_ext/write_ext on this core
  /// (kNone outside a fault campaign). The blocking ops can't carry the
  /// outcome in a DmaJob, so the resilience layer reads it here right
  /// after awaiting the transfer.
  [[nodiscard]] fault::TransferFault last_transfer_fault() const {
    return last_fault_;
  }

private:
  template <typename T>
  friend class Channel;
  friend class SimBarrier;

  /// Roll the fault sites for one delivered transfer segment (no-op
  /// returning kNone when no campaign is attached).
  fault::TransferFault roll_transfer(void* dst, std::size_t bytes) {
    if (fault_ == nullptr) return fault::TransferFault::kNone;
    return fault_->on_transfer(id(), dst, bytes, now());
  }

  Core& core_;
  Scheduler& sched_;
  Noc& noc_;
  ExtPort& ext_port_;
  ExternalMemory& ext_mem_;
  const CostModel& cost_;
  const ChipConfig& cfg_;
  Tracer& tracer_;
  telemetry::MetricsRegistry& metrics_;
  check::CheckContext* check_; ///< hazard sanitizer hooks, or nullptr
  fault::FaultInjector* fault_ = nullptr; ///< fault campaign, or nullptr
  PowerSampler* power_ = nullptr; ///< power-telemetry sampler, or nullptr
  fault::TransferFault last_fault_ = fault::TransferFault::kNone;
  std::vector<std::size_t> burst_sizes_; ///< scratch for dma_read_ext_burst
};

} // namespace esarp::ep
