#include "epiphany/trace.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace esarp::ep {

Tracer::CoreStack* Tracer::find_stack(int core) {
  for (auto& s : stacks_)
    if (s.core == core) return &s;
  return nullptr;
}

const Tracer::CoreStack* Tracer::find_stack(int core) const {
  for (const auto& s : stacks_)
    if (s.core == core) return &s;
  return nullptr;
}

void Tracer::push_span(int core, std::string name, Cycles start) {
  if (!enabled_) return;
  CoreStack* st = find_stack(core);
  if (st == nullptr) {
    stacks_.push_back({core, {}});
    st = &stacks_.back();
  }
  st->open.push_back({std::move(name), start});
}

void Tracer::pop_span(int core, Cycles end) {
  if (!enabled_) return;
  CoreStack* st = find_stack(core);
  if (st == nullptr || st->open.empty()) return;
  OpenSpan top = std::move(st->open.back());
  st->open.pop_back();
  spans_.push_back({core, std::move(top.name), top.start, end,
                    static_cast<int>(st->open.size())});
}

std::size_t Tracer::open_spans(int core) const {
  const CoreStack* st = find_stack(core);
  return st != nullptr ? st->open.size() : 0;
}

int Tracer::counter_track(const std::string& name) {
  for (std::size_t i = 0; i < track_names_.size(); ++i)
    if (track_names_[i] == name) return static_cast<int>(i);
  track_names_.push_back(name);
  return static_cast<int>(track_names_.size() - 1);
}

void Tracer::clear() {
  segments_.clear();
  spans_.clear();
  samples_.clear();
  stacks_.clear();
}

void Tracer::write_chrome_json(const std::filesystem::path& path,
                               double clock_hz) const {
  std::ofstream f(path);
  ESARP_EXPECTS(f.is_open());
  const double to_us = 1e6 / clock_hz;

  Cycles last = 0;
  for (const auto& s : segments_) last = std::max(last, s.end);
  for (const auto& s : spans_) last = std::max(last, s.end);
  for (const auto& c : samples_) last = std::max(last, c.time);

  JsonWriter w(f, 0); // compact: traces get large
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Thread-name metadata so Perfetto labels each tid as its core.
  std::set<int> cores;
  for (const auto& s : segments_) cores.insert(s.core);
  for (const auto& s : spans_) cores.insert(s.core);
  for (const auto& st : stacks_)
    if (!st.open.empty()) cores.insert(st.core);
  for (const int core : cores) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", core);
    w.key("args");
    w.begin_object();
    w.kv("name", "core " + std::to_string(core));
    w.end_object();
    w.end_object();
  }

  const auto emit_complete = [&](const char* name, int tid, Cycles start,
                                 Cycles end, bool unclosed) {
    w.begin_object();
    w.kv("name", name);
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", tid);
    w.kv("ts", static_cast<double>(start) * to_us);
    w.kv("dur", static_cast<double>(end - start) * to_us);
    if (unclosed) {
      w.key("args");
      w.begin_object();
      w.kv("unclosed", true);
      w.end_object();
    }
    w.end_object();
  };

  // Spans before segments: Perfetto resolves equal-timestamp nesting by
  // emission order, and spans always enclose the segments they cover.
  for (const auto& s : spans_)
    emit_complete(s.name.c_str(), s.core, s.start, s.end, false);
  for (const auto& st : stacks_)
    for (const auto& open : st.open)
      emit_complete(open.name.c_str(), st.core, open.start,
                    std::max(last, open.start), true);
  for (const auto& s : segments_)
    emit_complete(to_string(s.kind), s.core, s.start, s.end, false);

  // Counter tracks, time-ordered per track.
  std::vector<CounterSample> sorted = samples_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CounterSample& a, const CounterSample& b) {
                     if (a.track != b.track) return a.track < b.track;
                     return a.time < b.time;
                   });
  for (const auto& c : sorted) {
    w.begin_object();
    w.kv("name", track_names_[static_cast<std::size_t>(c.track)]);
    w.kv("ph", "C");
    w.kv("pid", 0);
    w.kv("ts", static_cast<double>(c.time) * to_us);
    w.key("args");
    w.begin_object();
    w.kv("value", c.value);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  f << "\n";
  ESARP_ENSURES(f.good());
}

Cycles Tracer::total_cycles(SegmentKind kind) const {
  Cycles total = 0;
  for (const auto& s : segments_)
    if (s.kind == kind) total += s.end - s.start;
  return total;
}

Cycles Tracer::total_span_cycles(const std::string& name) const {
  Cycles total = 0;
  for (const auto& s : spans_)
    if (s.name == name) total += s.end - s.start;
  return total;
}

} // namespace esarp::ep
