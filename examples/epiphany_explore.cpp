// Tour of the Epiphany chip simulator as a standalone substrate: write a
// small MPMD program by hand (producer -> worker -> consumer over NoC
// channels, with DMA from SDRAM and a barrier), run it, and inspect the
// timing, per-core counters, NoC statistics and the energy breakdown.
//
// Build & run:  ./examples/epiphany_explore
#include <iostream>
#include <numeric>
#include <vector>

#include "common/format.hpp"
#include "common/table.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"

using namespace esarp;
using namespace esarp::ep;

namespace {

constexpr std::size_t kItems = 256;

struct WorkItem {
  float values[16];
};

/// Producer (core 0): DMA blocks from SDRAM and stream them to the worker.
Task producer(CoreCtx& ctx, std::span<const WorkItem> input,
              Channel<WorkItem>& out) {
  auto staging = ctx.local().alloc<WorkItem>(8);
  for (std::size_t i = 0; i < input.size(); i += 8) {
    DmaJob job = ctx.dma_read_ext(staging.data(), &input[i],
                                  8 * sizeof(WorkItem));
    co_await ctx.wait(job);
    for (std::size_t k = 0; k < 8; ++k)
      co_await out.send(ctx, staging[k]);
  }
}

/// Worker (core 1): square every value (counted as FMA work) and forward.
Task worker(CoreCtx& ctx, Channel<WorkItem>& in, Channel<float>& out) {
  for (std::size_t i = 0; i < kItems; ++i) {
    WorkItem item = co_await in.recv(ctx);
    float acc = 0.0f;
    for (float v : item.values) acc += v * v;
    co_await ctx.compute({.fma = 16, .load = 16});
    co_await out.send(ctx, acc);
  }
}

/// Consumer (core 2): accumulate and post the result to SDRAM.
Task consumer(CoreCtx& ctx, Channel<float>& in, std::span<float> result) {
  float total = 0.0f;
  for (std::size_t i = 0; i < kItems; ++i) {
    total += co_await in.recv(ctx);
    co_await ctx.compute({.fadd = 1});
  }
  co_await ctx.write_ext(result.data(), &total, sizeof(total));
}

} // namespace

int main() {
  Machine m; // default: the 4x4 E16G3 at 1 GHz

  std::cout << "chip: " << m.config().rows << "x" << m.config().cols
            << " cores @ " << m.config().clock_hz / 1e9 << " GHz, "
            << format_bytes(m.config().local_mem_bytes)
            << " local store per core, eLink "
            << m.config().elink_bytes_per_cycle << " B/cycle\n";
  std::cout << "address map: core (0,0) aperture at 0x" << std::hex
            << m.address_map().core_base({0, 0}) << ", SDRAM window at 0x"
            << m.address_map().external_base() << std::dec << "\n\n";

  // Input data in SDRAM.
  auto input = m.ext().alloc<WorkItem>(kItems);
  float expected = 0.0f;
  for (std::size_t i = 0; i < kItems; ++i)
    for (std::size_t k = 0; k < 16; ++k) {
      input[i].values[k] = static_cast<float>((i + k) % 7);
      expected += input[i].values[k] * input[i].values[k];
    }
  auto result = m.ext().alloc<float>(1);

  // Pipeline on three neighbouring cores (ids 0, 1, 2 share a mesh row).
  auto c01 = m.make_channel<WorkItem>(1, 4, "producer->worker");
  auto c12 = m.make_channel<float>(2, 4, "worker->consumer");

  m.launch(0, [&](CoreCtx& ctx) { return producer(ctx, input, *c01); });
  m.launch(1, [&](CoreCtx& ctx) { return worker(ctx, *c01, *c12); });
  m.launch(2, [&](CoreCtx& ctx) { return consumer(ctx, *c12, result); });

  const Cycles end = m.run();
  std::cout << "pipeline finished at cycle " << format_cycles(end) << " ("
            << format_seconds(m.seconds(end)) << " of chip time)\n";
  std::cout << "result " << result[0] << " (expected " << expected << ")\n\n";

  const PerfReport rep = m.report();
  std::cout << rep.summary() << rep.per_core_table() << "\n";

  const EnergyReport energy = compute_energy(rep);
  std::cout << energy.summary() << "\n";
  std::cout << "chip all-busy power would be "
            << Table::num(peak_chip_watts(m.config()), 2)
            << " W (the paper's 2 W Table-I figure)\n";

  std::cout << "\nchannel stats: " << c01->name() << " carried "
            << c01->stats().messages << " messages ("
            << format_bytes(c01->stats().bytes) << "), producer blocked "
            << format_cycles(c01->stats().send_block_cycles) << " cycles\n";
  return 0;
}
