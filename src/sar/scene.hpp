// Synthetic scenes and raw-data simulation.
//
// The paper validates with "a test scenario of six target points" whose
// pulse-compressed raw data shows the classic range-migration curves
// (Fig. 7(a)). Real radar recordings are unavailable, so — like the paper —
// we synthesise the echoes of point scatterers. Two generators are
// provided: a direct one that injects the compressed response (envelope +
// carrier phase) analytically, and a full-chain one that synthesises chirp
// echoes and pulse-compresses them with the fft::MatchedFilter, used to
// validate that the direct generator matches the physical chain.
#pragma once

#include <vector>

#include "common/array2d.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fft/window.hpp"
#include "sar/params.hpp"

namespace esarp::sar {

struct PointTarget {
  double x = 0.0;       ///< along-track position [m]
  double y = 0.0;       ///< slant-plane cross-track position [m] (> 0)
  float amplitude = 1.0f;
};

struct Scene {
  std::vector<PointTarget> targets;
};

/// The six-point-target validation scene of the paper's Fig. 7, spread over
/// the swath and azimuth extent of the given geometry.
[[nodiscard]] Scene six_target_scene(const RadarParams& p);

/// Along-track flight-path deviation (for autofocus experiments): the
/// actual pulse position is (pulse_x(p) + dx(p), dy(p)).
struct FlightPathError {
  std::vector<double> dx; ///< per-pulse along-track error [m] (may be empty)
  std::vector<double> dy; ///< per-pulse cross-track error [m] (may be empty)

  [[nodiscard]] double at_x(std::size_t p) const {
    return p < dx.size() ? dx[p] : 0.0;
  }
  [[nodiscard]] double at_y(std::size_t p) const {
    return p < dy.size() ? dy[p] : 0.0;
  }
  [[nodiscard]] bool empty() const { return dx.empty() && dy.empty(); }
};

/// Slant range from pulse p (with path error) to a target.
[[nodiscard]] double slant_range(const RadarParams& p, std::size_t pulse,
                                 const PointTarget& t,
                                 const FlightPathError& err = {});

/// Pulse-compressed data matrix [n_pulses x n_range]: for each target, a
/// sinc-shaped compressed envelope at its range with carrier phase
/// exp(-i 4 pi R / lambda). `mainlobe_bins` controls the envelope width
/// (fs/B of the matched filter; ~1.3 bins by default).
[[nodiscard]] Array2D<cf32>
simulate_compressed(const RadarParams& p, const Scene& scene,
                    const FlightPathError& err = {},
                    double mainlobe_bins = 1.3);

/// Full-chain generator: synthesise baseband chirp echoes per pulse, then
/// pulse-compress with a matched filter. Slower; used for validation and
/// the stripmap example. The chirp bandwidth is derived from range_bin_m;
/// `window` tapers the compression reference (range sidelobe control).
[[nodiscard]] Array2D<cf32>
simulate_via_chirp(const RadarParams& p, const Scene& scene,
                   const FlightPathError& err = {},
                   fft::WindowKind window = fft::WindowKind::kRectangular);

/// Add circular complex white Gaussian noise of standard deviation `sigma`
/// per component (thermal noise floor for SNR experiments). Deterministic
/// for a given rng state.
void add_noise(Array2D<cf32>& data, Rng& rng, float sigma);

/// Signal-to-noise proxy: peak magnitude over the median magnitude.
[[nodiscard]] double peak_to_median(const Array2D<cf32>& data);

} // namespace esarp::sar
