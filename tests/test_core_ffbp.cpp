// Integration tests for FFBP on the simulated Epiphany: correctness against
// the host reference (bit-identical images), timing behaviour of the
// sequential vs SPMD mappings, prefetch effectiveness, and scaling.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/stats.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/ffbp_layout.hpp"
#include "sar/ffbp.hpp"
#include "sar/scene.hpp"

namespace esarp::core {
namespace {

sar::RadarParams small_params() { return sar::test_params(32, 101); }

Array2D<cf32> small_data(const sar::RadarParams& p) {
  return sar::simulate_compressed(p, sar::six_target_scene(p));
}

TEST(LevelLayout, ShapesAndOffsets) {
  const auto p = sar::test_params(16, 51);
  const LevelLayout l0 = LevelLayout::at(p, 0);
  EXPECT_EQ(l0.n_subaps, 16u);
  EXPECT_EQ(l0.n_theta, 1u);
  const LevelLayout l2 = LevelLayout::at(p, 2);
  EXPECT_EQ(l2.n_subaps, 4u);
  EXPECT_EQ(l2.n_theta, 4u);
  EXPECT_EQ(l2.rows_total(), 16u);
  EXPECT_EQ(l2.total_pixels(), 16u * 51u);
  EXPECT_EQ(l2.offset(1, 2, 3), (4u + 2u) * 51u + 3u);
  EXPECT_EQ(l2.row_bytes(), 51u * sizeof(cf32));
}

TEST(FfbpEpiphany, SequentialImageMatchesHostReferenceExactly) {
  const auto p = small_params();
  const auto data = small_data(p);
  const auto host = sar::ffbp(data, p);
  const auto sim = run_ffbp_sequential_epiphany(data, p);
  ASSERT_EQ(sim.image.rows(), host.image.data.rows());
  // Bit-identical: the simulated kernel executes the same merge arithmetic.
  EXPECT_EQ(sim.image, host.image.data);
}

TEST(FfbpEpiphany, SpmdImageMatchesHostReferenceExactly) {
  const auto p = small_params();
  const auto data = small_data(p);
  const auto host = sar::ffbp(data, p);
  FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto sim = run_ffbp_epiphany(data, p, opt);
  EXPECT_EQ(sim.image, host.image.data);
}

TEST(FfbpEpiphany, SpmdMatchesForOtherCoreCounts) {
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  const auto host = sar::ffbp(data, p);
  for (int cores : {2, 5, 8}) {
    FfbpMapOptions opt;
    opt.n_cores = cores;
    const auto sim = run_ffbp_epiphany(data, p, opt);
    EXPECT_EQ(sim.image, host.image.data) << cores << " cores";
  }
}

TEST(FfbpEpiphany, CubicVariantAlsoMatchesHost) {
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  sar::FfbpOptions algo;
  algo.interp = sar::Interp::kCubic;
  const auto host = sar::ffbp(data, p, algo);
  FfbpMapOptions opt;
  opt.algo = algo;
  const auto sim = run_ffbp_epiphany(data, p, opt);
  EXPECT_EQ(sim.image, host.image.data);
}

TEST(FfbpEpiphany, ParallelIsMuchFasterThanSequential) {
  const auto p = small_params();
  const auto data = small_data(p);
  const auto seq = run_ffbp_sequential_epiphany(data, p);
  FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto par = run_ffbp_epiphany(data, p, opt);
  // The paper reports 11.7x on 16 cores; demand at least 6x here.
  EXPECT_GT(static_cast<double>(seq.cycles) /
                static_cast<double>(par.cycles),
            6.0);
}

TEST(FfbpEpiphany, MoreCoresNeverSlower) {
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  ep::Cycles prev = ~ep::Cycles{0};
  for (int cores : {1, 2, 4, 8, 16}) {
    FfbpMapOptions opt;
    opt.n_cores = cores;
    const auto sim = run_ffbp_epiphany(data, p, opt);
    EXPECT_LT(sim.cycles, prev) << cores;
    prev = sim.cycles;
  }
}

TEST(FfbpEpiphany, PrefetchReducesExternalStalls) {
  const auto p = small_params();
  const auto data = small_data(p);
  FfbpMapOptions with;
  with.n_cores = 16;
  FfbpMapOptions without = with;
  without.prefetch = false;
  const auto a = run_ffbp_epiphany(data, p, with);
  const auto b = run_ffbp_epiphany(data, p, without);
  EXPECT_LT(a.cycles, b.cycles);
  EXPECT_LT(a.perf.total_ext_stall(), b.perf.total_ext_stall());
  // Images identical either way.
  EXPECT_EQ(a.image, b.image);
}

TEST(FfbpEpiphany, FirstLevelPrefetchIsSufficient) {
  // Paper: "During the first merge iteration the prefetched data is
  // sufficient"; misses appear only at later levels.
  const auto p = small_params();
  const auto data = small_data(p);
  FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto sim = run_ffbp_epiphany(data, p, opt);
  ASSERT_FALSE(sim.prefetch_stats.empty());
  EXPECT_EQ(sim.prefetch_stats.front().ext_misses, 0u);
  EXPECT_GT(sim.prefetch_stats.front().local_hits, 0u);
}

TEST(FfbpEpiphany, HitRateDegradesAtHigherLevels) {
  const auto p = sar::test_params(64, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto sim = run_ffbp_epiphany(data, p, opt);
  const auto& st = sim.prefetch_stats;
  // Hit rate at the last level must not exceed the first level's.
  EXPECT_LE(st.back().hit_rate(), st.front().hit_rate());
}

TEST(FfbpEpiphany, SequentialStallsDominatedByExternalReads) {
  // The paper's explanation for the 0.36x sequential slowdown.
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  const auto sim = run_ffbp_sequential_epiphany(data, p);
  const auto& c = sim.perf.per_core[0];
  EXPECT_GT(c.ext_stall, c.busy / 4); // stalls are a major component
}

TEST(FfbpEpiphany, EnergyScalesWithCores) {
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  const auto seq = run_ffbp_sequential_epiphany(data, p);
  FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto par = run_ffbp_epiphany(data, p, opt);
  // Parallel run: higher average power (more cores busy)...
  EXPECT_GT(par.energy.avg_watts, seq.energy.avg_watts);
  // ...but bounded by the chip's all-busy figure.
  EXPECT_LT(par.energy.avg_watts, ep::peak_chip_watts(ep::ChipConfig{}));
}

TEST(FfbpEpiphany, RejectsInvalidOptions) {
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  FfbpMapOptions opt;
  opt.n_cores = 17;
  EXPECT_THROW((void)run_ffbp_epiphany(data, p, opt), ContractViolation);
  opt.n_cores = 4;
  opt.algo.interp = sar::Interp::kLinear;
  opt.algo.phase_compensate = true;
  EXPECT_THROW((void)run_ffbp_epiphany(data, p, opt), ContractViolation);
}

TEST(FfbpEpiphany, LocalMemoryRespectsPaperBudget) {
  // 1024-range-bin rows (paper: 1001) must fit the bank layout; much
  // larger rows must be rejected by the local-memory allocator.
  auto p = sar::test_params(16, 1025);
  p.validate();
  const Array2D<cf32> data(16, 1025);
  EXPECT_THROW((void)run_ffbp_sequential_epiphany(data, p),
               ContractViolation);
}


TEST(FfbpEpiphany, OnChipAutofocusMatchesHostIntegratedLoop) {
  // The complete Fig.-4 system on the simulated chip: estimation + gated
  // compensation + merges must reproduce the host af::ffbp_with_autofocus
  // bit-for-bit (same estimator, same data, same merge arithmetic).
  const auto p = sar::test_params(64, 161);
  sar::Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  sar::FlightPathError err;
  err.dy.resize(p.n_pulses);
  for (std::size_t i = 0; i < p.n_pulses; ++i)
    err.dy[i] = 0.5 * std::sin(2.0 * kPi * static_cast<double>(i) /
                               static_cast<double>(p.n_pulses));
  const auto data = sar::simulate_compressed(p, s, err);

  const af::IntegratedOptions aopt;
  const auto host = af::ffbp_with_autofocus(data, p, aopt);

  FfbpMapOptions opt;
  opt.n_cores = 16;
  opt.autofocus = &aopt;
  const auto sim = run_ffbp_epiphany(data, p, opt);

  EXPECT_EQ(sim.image, host.image.data); // bit-identical

  // Same corrections, pair by pair (orders differ between the host's
  // sequential sweep and the cores' round-robin).
  std::map<std::pair<std::size_t, std::size_t>, float> host_shift;
  for (const auto& c : host.corrections)
    host_shift[{c.level, c.pair_index}] = c.shift_bins;
  ASSERT_EQ(sim.corrections.size(), host.corrections.size());
  for (const auto& c : sim.corrections) {
    auto it = host_shift.find({c.level, c.pair_index});
    ASSERT_NE(it, host_shift.end())
        << "level " << c.level << " pair " << c.pair_index;
    EXPECT_EQ(c.shift_bins, it->second);
  }
}

TEST(FfbpEpiphany, OnChipAutofocusCostsTime) {
  const auto p = sar::test_params(32, 101);
  const auto data = small_data(p);
  const af::IntegratedOptions aopt;
  FfbpMapOptions plain;
  plain.n_cores = 16;
  plain.algo = aopt.ffbp; // same merge kernel, no autofocus
  FfbpMapOptions with = plain;
  with.autofocus = &aopt;
  const auto a = run_ffbp_epiphany(data, p, plain);
  const auto b = run_ffbp_epiphany(data, p, with);
  EXPECT_GT(b.cycles, a.cycles); // estimation work + extra barrier
  EXPECT_TRUE(a.corrections.empty());
  EXPECT_FALSE(b.corrections.empty());
}


TEST(FfbpEpiphany, DoubleBufferingHidesDmaLatency) {
  // Pipelined prefetch: the next row's DMA streams during the current
  // row's compute. Image identical; DMA wait time drops.
  const auto p = sar::test_params(32, 101); // rows fit two-per-bank
  const auto data = small_data(p);
  FfbpMapOptions single;
  single.n_cores = 4; // 8 rows per core per level: deep enough pipelines
  FfbpMapOptions dbl = single;
  dbl.double_buffer = true;
  const auto a = run_ffbp_epiphany(data, p, single);
  const auto b = run_ffbp_epiphany(data, p, dbl);
  EXPECT_EQ(a.image, b.image);
  ep::Cycles wait_a = 0, wait_b = 0;
  for (const auto& c : a.perf.per_core) wait_a += c.dma_wait;
  for (const auto& c : b.perf.per_core) wait_b += c.dma_wait;
  EXPECT_LT(wait_b, wait_a / 2);
  EXPECT_LE(b.cycles, a.cycles);
}

TEST(FfbpEpiphany, DoubleBufferingImpossibleAtPaperRowSize) {
  // The honest hardware finding: 1001-bin rows (8,008 B) cannot be
  // double-buffered inside an 8 KB bank — the local-store allocator
  // rejects the layout, as the real chip's bank budget would.
  auto p = sar::test_params(16, 1001);
  const Array2D<cf32> data(16, 1001);
  FfbpMapOptions opt;
  opt.n_cores = 4;
  opt.double_buffer = true;
  EXPECT_THROW((void)run_ffbp_epiphany(data, p, opt), ContractViolation);
  // Without double buffering the same configuration is fine.
  opt.double_buffer = false;
  EXPECT_NO_THROW((void)run_ffbp_epiphany(data, p, opt));
}

TEST(FfbpEpiphany, DoubleBufferRequiresPrefetch) {
  const auto p = sar::test_params(16, 51);
  const auto data = small_data(p);
  FfbpMapOptions opt;
  opt.prefetch = false;
  opt.double_buffer = true;
  EXPECT_THROW((void)run_ffbp_epiphany(data, p, opt), ContractViolation);
}

} // namespace
} // namespace esarp::core
