// Shared helpers for the benchmark harness (one binary per reproduced
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/array2d.hpp"
#include "common/format.hpp"
#include "epiphany/machine_metrics.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "host/sweep_runner.hpp"
#include "sar/params.hpp"
#include "sar/scene.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::bench {

/// Directory that benches drop CSV/PGM artefacts into (created on demand).
inline std::filesystem::path out_dir() {
  const char* env = std::getenv("ESARP_BENCH_OUT");
  std::filesystem::path dir = env ? env : "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// True when the harness should run a reduced-size configuration
/// (ESARP_BENCH_FAST=1). Full paper-size runs are the default.
inline bool fast_mode() {
  const char* env = std::getenv("ESARP_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// The paper's evaluation input: 1024 x 1001 pulse-compressed samples of
/// the six-point-target scene (Fig. 7(a)). In fast mode a 256 x 251
/// geometrically-scaled configuration is used instead.
struct PaperWorkload {
  sar::RadarParams params;
  Array2D<cf32> data;
};

inline PaperWorkload make_paper_workload() {
  PaperWorkload w;
  if (fast_mode()) {
    w.params = sar::test_params(256, 251);
  } else {
    w.params = sar::paper_params();
  }
  std::cerr << "generating " << w.params.n_pulses << "x" << w.params.n_range
            << " six-target raw data...\n";
  w.data = sar::simulate_compressed(w.params, sar::six_target_scene(w.params));
  return w;
}

/// Record the standard workload parameters on a run manifest.
inline void add_workload(telemetry::RunManifest& man,
                         const sar::RadarParams& p) {
  man.add_workload("n_pulses", static_cast<double>(p.n_pulses));
  man.add_workload("n_range", static_cast<double>(p.n_range));
  man.add_workload("fast_mode", fast_mode() ? 1.0 : 0.0);
}

/// ChipConfig with the power sampler switched on. Benches use this for
/// their headline configuration so the manifest carries the time-resolved
/// energy evidence (span attribution, energy_per_pixel). Sampling is
/// zero-perturbation: cycle counts, images and schedule hashes are
/// bit-identical to an unsampled run (docs/observability.md).
inline ep::ChipConfig power_chip(ep::ChipConfig cfg = {}) {
  cfg.power.enabled = true;
  return cfg;
}

/// Record the power-sampled energy evidence on a manifest: the span
/// attribution keys (`energy_j.span.*`, `energy_j.attributed`, ...) plus
/// the headline joules-per-pixel figure that CI gates.
inline void add_power_results(telemetry::RunManifest& man,
                              const ep::PowerReport& power, double pixels) {
  ep::fill_power_manifest(man, power);
  if (pixels > 0.0)
    man.add_result("energy_per_pixel", power.energy.total_j() / pixels);
}

/// Write `man` as `<tool>.manifest.json` in out_dir() and log the path.
/// Every bench calls this once for its headline configuration so
/// tools/esarp_compare can diff runs (see docs/observability.md).
inline std::filesystem::path
write_manifest(const telemetry::RunManifest& man) {
  const std::filesystem::path path =
      out_dir() / (man.tool() + ".manifest.json");
  man.write(path);
  std::cerr << "wrote " << path.string() << "\n";
  return path;
}

/// Worker-thread count for SweepRunner-based benches: ESARP_JOBS when set,
/// else 1 (the deterministic reference schedule; results are identical for
/// any value, only host wall-clock changes).
inline int sweep_jobs() { return host::sweep_jobs_from_env(1); }

/// Record engine throughput on a run manifest (docs/performance.md):
/// `engine_events` (deterministic, regression-checked by esarp_compare's
/// default results threshold) as a result, and the host-side wall-clock /
/// events-per-second / jobs — which legitimately vary run to run — as
/// informational metrics gauges on `reg`. Call before set_metrics(&reg).
inline void add_engine_stats(telemetry::RunManifest& man,
                             telemetry::MetricsRegistry* reg,
                             std::uint64_t events, double wall_seconds,
                             int jobs) {
  // "engine_events" is the per-run count fill_manifest() records; the
  // sweep-level total gets its own key so the two never collide.
  man.add_result("engine_events_total", static_cast<double>(events));
  if (reg != nullptr) {
    reg->gauge("engine.wall_seconds").set(wall_seconds);
    reg->gauge("engine.events_per_second")
        .set(wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                                : 0.0);
    reg->gauge("engine.jobs").set(static_cast<double>(jobs));
  }
}

/// Standard bench entry point: run `body` and turn any escaped exception
/// into a named nonzero exit instead of std::terminate. This matters for
/// sweep benches (SweepRunner rethrows the first worker exception): a
/// throwing sweep point must fail the bench — and therefore CI — rather
/// than abort mid-write and leave a stale or partial manifest behind for
/// esarp_compare to diff against. Manifest writes themselves are atomic
/// (tmp + rename in RunManifest::write), so the last complete artefact
/// survives a failed re-run.
inline int guarded_main(const char* tool, int (*body)()) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::cerr << tool << ": FAILED: " << e.what() << "\n";
    return 1;
  }
}

/// Format a speedup ratio like the paper's Table I ("4.25").
inline std::string speedup(double ref_time, double time) {
  return Table::num(ref_time / time, 2);
}

inline std::string ms(double seconds) {
  return Table::num(seconds * 1e3, 1);
}

} // namespace esarp::bench
