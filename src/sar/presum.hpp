// Azimuth presummation (pre-filtering) — the data-rate reduction stage of
// the SAR front end (paper Fig. 1's preprocessing before back-projection).
//
// Coherently averages groups of `factor` consecutive pulses into one,
// cutting the azimuth data rate (and all downstream back-projection work)
// by `factor` while gaining SNR against uncorrelated noise. Valid while
// the per-group phase rotation stays small, i.e. the presummed sampling
// still satisfies the processed-sector Nyquist rate — enforce_nyquist
// checks exactly that.
#pragma once

#include "common/array2d.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"
#include "fft/window.hpp"
#include "sar/params.hpp"

namespace esarp::sar {

struct PresumResult {
  Array2D<cf32> data;  ///< [n_pulses/factor x n_range]
  RadarParams params;  ///< geometry of the reduced data set
  OpCounts ops;        ///< counted work of the filter
};

/// Presum by `factor` (must divide n_pulses) with an optional amplitude
/// weighting across each group. Output pulse i sits at the group's mean
/// along-track position; the new pulse spacing is factor x the old one.
[[nodiscard]] PresumResult presum(const Array2D<cf32>& data,
                                  const RadarParams& p, std::size_t factor,
                                  fft::WindowKind weighting =
                                      fft::WindowKind::kRectangular);

/// Largest presum factor that keeps the azimuth sampling above the
/// Nyquist rate of the processed sector: spacing <= lambda / (2 sin(span/2))
/// ... conservatively lambda / (2 * span) for small sectors.
[[nodiscard]] std::size_t max_presum_factor(const RadarParams& p);

} // namespace esarp::sar
