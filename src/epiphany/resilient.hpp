// Fault-tolerant transfer wrappers (docs/fault-injection.md).
//
// Each reliable_* coroutine performs one logical SDRAM transfer the way a
// hardened Epiphany runtime would: issue, verify the delivered payload
// against an FNV checksum of the source, and on a mismatch (corruption /
// bit flip) or a modeled DMA watchdog expiry (drop) retry with exponential
// backoff. Every retry attempt — backoff, re-issue, re-verify — runs inside
// a "fault/dma-retry" span: the span prefix is what tells the hazard
// sanitizer that shadow-state oddities underneath are injected faults being
// recovered, not kernel bugs. Retries exhausting RetryPolicy::max_attempts
// throw fault::FaultUnrecovered.
//
// Outside a fault campaign (no injector, or plan.resilient == false) every
// wrapper degenerates to the plain single-attempt operation, so kernels
// can call these unconditionally without changing fault-free behaviour...
// though the shipped kernels keep their plain paths for bit-identical
// baseline manifests and only route through here when an injector is
// attached.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "epiphany/core_ctx.hpp"
#include "epiphany/task.hpp"
#include "fault/injector.hpp"

namespace esarp::ep {

namespace detail {

/// Modeled verification cost: the core checksums the delivered payload at
/// 8 bytes/cycle (a word-wide XOR/rotate loop on the dual-issue core).
[[nodiscard]] inline Cycles verify_cycles(std::size_t bytes) {
  return static_cast<Cycles>(bytes / 8 + 1);
}

[[nodiscard]] inline bool payload_ok(const void* dst, const void* src,
                                     std::size_t bytes) {
  return fault::FaultInjector::checksum(dst, bytes) ==
         fault::FaultInjector::checksum(src, bytes);
}

[[nodiscard]] inline fault::Site site_of(fault::TransferFault tf) {
  return tf == fault::TransferFault::kDropped ? fault::Site::kDmaDrop
                                              : fault::Site::kDmaCorrupt;
}

/// Backoff before retry attempt `retry` (0-based).
[[nodiscard]] inline Cycles backoff_for(const fault::RetryPolicy& pol,
                                        int retry) {
  return pol.backoff_base << retry;
}

} // namespace detail

/// Blocking bulk SDRAM read with verification + retry.
inline TaskT<void> reliable_read_ext(CoreCtx& ctx, void* dst, const void* src,
                                     std::size_t bytes) {
  fault::FaultInjector* inj = ctx.fault_injector();
  if (inj == nullptr || !inj->plan().resilient) {
    co_await ctx.read_ext(dst, src, bytes);
    co_return;
  }
  const fault::RetryPolicy& pol = inj->plan().retry;
  Cycles first_attempt_done = 0;
  fault::Site last_site = fault::Site::kDmaCorrupt;
  for (int attempt = 0;; ++attempt) {
    const bool retrying = attempt > 0;
    if (retrying) {
      ctx.begin_span("fault/dma-retry");
      co_await ctx.idle(detail::backoff_for(pol, attempt - 1));
    }
    co_await ctx.read_ext(dst, src, bytes);
    const fault::TransferFault tf = ctx.last_transfer_fault();
    // A lost transfer is detected by the modeled DMA watchdog, not the
    // checksum: charge the full timeout margin before giving up on it.
    if (tf == fault::TransferFault::kDropped)
      co_await ctx.idle(pol.drop_timeout);
    co_await ctx.idle(detail::verify_cycles(bytes));
    if (retrying) ctx.end_span();
    if (attempt == 0) first_attempt_done = ctx.now();
    if (detail::payload_ok(dst, src, bytes)) {
      if (retrying)
        inj->count_recovered(last_site, ctx.now() - first_attempt_done);
      co_return;
    }
    last_site = detail::site_of(tf);
    inj->count_detected(last_site);
    if (attempt + 1 >= pol.max_attempts)
      throw fault::FaultUnrecovered("read_ext still failing after " +
                                    std::to_string(attempt + 1) +
                                    " attempts on core " +
                                    std::to_string(ctx.id()));
    inj->count_retry();
  }
}

/// Posted SDRAM write with read-back verification + retry.
inline TaskT<void> reliable_write_ext(CoreCtx& ctx, void* dst, const void* src,
                                      std::size_t bytes) {
  fault::FaultInjector* inj = ctx.fault_injector();
  if (inj == nullptr || !inj->plan().resilient) {
    co_await ctx.write_ext(dst, src, bytes);
    co_return;
  }
  const fault::RetryPolicy& pol = inj->plan().retry;
  Cycles first_attempt_done = 0;
  fault::Site last_site = fault::Site::kDmaCorrupt;
  for (int attempt = 0;; ++attempt) {
    const bool retrying = attempt > 0;
    if (retrying) {
      ctx.begin_span("fault/dma-retry");
      co_await ctx.idle(detail::backoff_for(pol, attempt - 1));
    }
    co_await ctx.write_ext(dst, src, bytes);
    const fault::TransferFault tf = ctx.last_transfer_fault();
    if (tf == fault::TransferFault::kDropped)
      co_await ctx.idle(pol.drop_timeout);
    co_await ctx.idle(detail::verify_cycles(bytes));
    if (retrying) ctx.end_span();
    if (attempt == 0) first_attempt_done = ctx.now();
    if (detail::payload_ok(dst, src, bytes)) {
      if (retrying)
        inj->count_recovered(last_site, ctx.now() - first_attempt_done);
      co_return;
    }
    last_site = detail::site_of(tf);
    inj->count_detected(last_site);
    if (attempt + 1 >= pol.max_attempts)
      throw fault::FaultUnrecovered("write_ext still failing after " +
                                    std::to_string(attempt + 1) +
                                    " attempts on core " +
                                    std::to_string(ctx.id()));
    inj->count_retry();
  }
}

/// Burst DMA read with per-segment verification + whole-burst retry. The
/// re-issue recopies every segment, which also repairs destinations a
/// mem-bits flip corrupted after delivery.
inline TaskT<void> reliable_dma_read_burst(CoreCtx& ctx,
                                           std::span<const DmaSeg> segs) {
  fault::FaultInjector* inj = ctx.fault_injector();
  if (inj == nullptr || !inj->plan().resilient) {
    co_await ctx.wait(ctx.dma_read_ext_burst(segs));
    co_return;
  }
  const fault::RetryPolicy& pol = inj->plan().retry;
  Cycles first_attempt_done = 0;
  fault::Site last_site = fault::Site::kDmaCorrupt;
  for (int attempt = 0;; ++attempt) {
    const bool retrying = attempt > 0;
    if (retrying) {
      ctx.begin_span("fault/dma-retry");
      co_await ctx.idle(detail::backoff_for(pol, attempt - 1));
    }
    const DmaJob job = ctx.dma_read_ext_burst(segs);
    co_await ctx.wait(job);
    if (job.fault == fault::TransferFault::kDropped)
      co_await ctx.idle(pol.drop_timeout);
    std::size_t total = 0;
    bool ok = true;
    for (const DmaSeg& s : segs) {
      total += s.bytes;
      ok = ok && detail::payload_ok(s.dst, s.src, s.bytes);
    }
    co_await ctx.idle(detail::verify_cycles(total));
    if (retrying) ctx.end_span();
    if (attempt == 0) first_attempt_done = ctx.now();
    if (ok) {
      if (retrying)
        inj->count_recovered(last_site, ctx.now() - first_attempt_done);
      co_return;
    }
    last_site = detail::site_of(job.fault);
    inj->count_detected(last_site);
    if (attempt + 1 >= pol.max_attempts)
      throw fault::FaultUnrecovered("dma burst still failing after " +
                                    std::to_string(attempt + 1) +
                                    " attempts on core " +
                                    std::to_string(ctx.id()));
    inj->count_retry();
  }
}

/// Single-segment DMA read with verification + retry.
inline TaskT<void> reliable_dma_read(CoreCtx& ctx, void* dst, const void* src,
                                     std::size_t bytes) {
  const DmaSeg seg{dst, src, bytes};
  co_await reliable_dma_read_burst(ctx, std::span<const DmaSeg>{&seg, 1});
}

/// DMA write local -> SDRAM with verification + retry.
inline TaskT<void> reliable_dma_write(CoreCtx& ctx, void* dst, const void* src,
                                      std::size_t bytes) {
  fault::FaultInjector* inj = ctx.fault_injector();
  if (inj == nullptr || !inj->plan().resilient) {
    co_await ctx.wait(ctx.dma_write_ext(dst, src, bytes));
    co_return;
  }
  const fault::RetryPolicy& pol = inj->plan().retry;
  Cycles first_attempt_done = 0;
  fault::Site last_site = fault::Site::kDmaCorrupt;
  for (int attempt = 0;; ++attempt) {
    const bool retrying = attempt > 0;
    if (retrying) {
      ctx.begin_span("fault/dma-retry");
      co_await ctx.idle(detail::backoff_for(pol, attempt - 1));
    }
    const DmaJob job = ctx.dma_write_ext(dst, src, bytes);
    co_await ctx.wait(job);
    if (job.fault == fault::TransferFault::kDropped)
      co_await ctx.idle(pol.drop_timeout);
    co_await ctx.idle(detail::verify_cycles(bytes));
    if (retrying) ctx.end_span();
    if (attempt == 0) first_attempt_done = ctx.now();
    if (detail::payload_ok(dst, src, bytes)) {
      if (retrying)
        inj->count_recovered(last_site, ctx.now() - first_attempt_done);
      co_return;
    }
    last_site = detail::site_of(job.fault);
    inj->count_detected(last_site);
    if (attempt + 1 >= pol.max_attempts)
      throw fault::FaultUnrecovered("dma write still failing after " +
                                    std::to_string(attempt + 1) +
                                    " attempts on core " +
                                    std::to_string(ctx.id()));
    inj->count_retry();
  }
}

} // namespace esarp::ep
