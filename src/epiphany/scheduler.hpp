// Discrete-event scheduler driving the simulated chip.
//
// A single global virtual clock (in core cycles); coroutine handles are
// resumed in (time, insertion-order) order. Everything in the simulation is
// event-driven, so an empty queue means quiescence.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "epiphany/config.hpp"

namespace esarp::ep {

class Scheduler {
public:
  [[nodiscard]] Cycles now() const { return now_; }

  /// Resume `h` at absolute cycle `t` (>= now).
  void schedule_at(Cycles t, std::coroutine_handle<> h) {
    ESARP_EXPECTS(t >= now_);
    ESARP_EXPECTS(h && !h.done());
    queue_.push(Event{t, seq_++, h});
  }

  /// Resume `h` immediately after currently-runnable work at this cycle.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Run until the event queue drains. Returns the final cycle count.
  /// `max_cycles` (0 = unlimited) guards against runaway simulations:
  /// exceeding it throws instead of spinning forever.
  Cycles run(Cycles max_cycles = 0) {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      ESARP_ENSURES(ev.time >= now_);
      now_ = ev.time;
      if (max_cycles != 0 && now_ > max_cycles)
        throw ContractViolation(
            "simulation exceeded the max_cycles watchdog");
      ev.handle.resume();
    }
    return now_;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Reset the clock (only valid when idle; used between experiments).
  void reset() {
    ESARP_EXPECTS(queue_.empty());
    now_ = 0;
    seq_ = 0;
  }

private:
  struct Event {
    Cycles time;
    std::uint64_t seq; ///< FIFO tie-break for equal timestamps
    std::coroutine_handle<> handle;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace esarp::ep
