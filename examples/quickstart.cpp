// Quickstart: form a SAR image with FFBP in ~30 lines of user code.
//
//   1. define the radar geometry,
//   2. simulate pulse-compressed echoes of a few point targets,
//   3. run fast factorized back-projection,
//   4. write the image as a PGM and print a terminal preview.
//
// Build & run:  ./examples/quickstart [out.pgm]
#include <iostream>

#include "common/pgm.hpp"
#include "sar/ffbp.hpp"
#include "sar/scene.hpp"

int main(int argc, char** argv) {
  using namespace esarp;

  // A small geometry (128 pulses x 201 range bins) that runs in well under
  // a second; sar::paper_params() gives the paper's full 1024x1001 setup.
  const sar::RadarParams params = sar::test_params(128, 201);

  // Three point scatterers in the imaged area.
  sar::Scene scene;
  scene.targets = {
      {-20.0, params.near_range_m + 30.0 * params.range_bin_m, 1.0f},
      {0.0, params.near_range_m + 50.0 * params.range_bin_m, 0.8f},
      {25.0, params.near_range_m + 70.0 * params.range_bin_m, 1.0f},
  };

  // Simulate the pulse-compressed raw data the back-projection block of
  // the SAR chain receives (paper Fig. 1).
  const Array2D<cf32> data = sar::simulate_compressed(params, scene);

  // Image formation: merge base 2, nearest-neighbour interpolation — the
  // paper's configuration. FfbpOptions selects cubic interpolation or
  // residual-phase compensation for higher quality.
  const sar::FfbpResult result = sar::ffbp(data, params);

  std::cout << "formed a " << result.image.n_theta() << " x "
            << result.image.n_range() << " image in "
            << result.levels.size() << " merge iterations ("
            << result.ops.flops() / 1000000 << " Mflop counted)\n\n";
  std::cout << ascii_render(result.image.data, 64, 30.0) << "\n";

  const char* path = argc > 1 ? argv[1] : "quickstart.pgm";
  write_pgm(path, result.image.data, {.dynamic_range_db = 40.0});
  std::cout << "image written to " << path << "\n";
  return 0;
}
