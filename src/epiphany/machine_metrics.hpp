// Post-run telemetry collection: machine state -> MetricsRegistry, and
// PerfReport/EnergyReport -> run manifest.
//
// The telemetry library (src/telemetry) is deliberately ignorant of the
// simulator, so the translation from machine internals (per-link NoC
// occupancy, ext-port totals, per-core counters, trace-segment totals) into
// named metrics lives here on the epiphany side. Call
// collect_machine_metrics() once after Machine::run(); it is additive over
// the registry the live components (ext port, barriers, channels) already
// populated during the run.
#pragma once

#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"
#include "epiphany/perf.hpp"
#include "epiphany/power.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::ep {

/// Short mesh name for metric labels: "cmesh", "xmesh" or "rmesh".
[[nodiscard]] const char* mesh_label(Mesh mesh);

/// Snapshot machine state into its metrics registry: per-link NoC traffic
/// counters (`noc.link.bytes{dir=E,mesh=cmesh,node=1_2}` + busy cycles),
/// per-mesh aggregates, ext-port totals, per-core counters and — when
/// tracing was on — per-kind traced-cycle totals.
void collect_machine_metrics(Machine& m);

/// Fill the manifest's chip/results sections from a finished run: makespan
/// and throughput figures plus the full energy breakdown — `energy_j`,
/// `avg_watts` and the per-component keys (`energy_j.core_active`,
/// `energy_j.core_idle`, `energy_j.alu`, `energy_j.noc`, `energy_j.elink`,
/// `energy_j.static`). The caller adds workload parameters and attaches a
/// metrics registry itself (typically set_metrics(&machine.metrics()) after
/// collect_machine_metrics()).
void fill_manifest(telemetry::RunManifest& man, const PerfReport& rep,
                   const EnergyReport& energy);

/// Derive the full power report of a finished run: the aggregate
/// EnergyReport always, and — when the machine ran with a PowerSampler —
/// the time-resolved trace and span-attribution profile. Both derived
/// views are checked against the aggregate for energy conservation to
/// within 1e-9 relative (a violation is a model bug and throws
/// ContractViolation), and the trace's power counter tracks are exported
/// into the machine's tracer when tracing is on.
[[nodiscard]] PowerReport collect_power(Machine& m, const PerfReport& rep,
                                        const EnergyParams& p = {});

/// Append the span-attribution result keys of an enabled PowerReport to a
/// manifest: `energy_j.span.<group>` per span group plus
/// `energy_j.attributed` / `energy_j.unattributed`, and the trace's
/// `peak_chip_watts`. No-op when the report is disabled, so callers can
/// pass their PowerReport unconditionally.
void fill_power_manifest(telemetry::RunManifest& man,
                         const PowerReport& power);

} // namespace esarp::ep
