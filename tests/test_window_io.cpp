// Tests for window functions (sidelobe control) and the binary dataset
// container (save/load with CRC).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "fft/chirp.hpp"
#include "fft/matched_filter.hpp"
#include "fft/window.hpp"
#include "sar/io.hpp"
#include "sar/scene.hpp"

namespace esarp {
namespace {

using fft::WindowKind;

class WindowShapes : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowShapes, SymmetricPositivePeakOne) {
  const auto w = fft::make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65u);
  float peak = 0.0f;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-4f);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-5f) << "i=" << i;
    peak = std::max(peak, w[i]);
  }
  EXPECT_NEAR(peak, 1.0f, 1e-5f);
}

TEST_P(WindowShapes, TaperReducesNoiseBandwidthBelowTwo) {
  const auto w = fft::make_window(GetParam(), 128);
  const double nb = fft::noise_bandwidth_bins(w);
  EXPECT_GE(nb, 1.0 - 1e-9);
  EXPECT_LT(nb, 2.1); // all standard windows stay below ~2 bins
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowShapes,
                         ::testing::Values(WindowKind::kRectangular,
                                           WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kBlackman,
                                           WindowKind::kTaylor));

TEST(Window, RectangularIsAllOnes) {
  const auto w = fft::make_window(WindowKind::kRectangular, 16);
  for (float v : w) EXPECT_EQ(v, 1.0f);
  EXPECT_DOUBLE_EQ(fft::coherent_gain(w), 1.0);
  EXPECT_DOUBLE_EQ(fft::noise_bandwidth_bins(w), 1.0);
}

TEST(Window, HammingKnownValues) {
  const auto w = fft::make_window(WindowKind::kHamming, 11);
  EXPECT_NEAR(w[0], 0.08f, 1e-5f);
  EXPECT_NEAR(w[5], 1.0f, 1e-5f);
  EXPECT_NEAR(fft::coherent_gain(w), 0.54, 0.05);
}

TEST(Window, ApplyScalesSignal) {
  std::vector<cf32> sig(8, cf32{2.0f, -2.0f});
  const auto w = fft::make_window(WindowKind::kHann, 8);
  fft::apply_window(sig, w);
  EXPECT_NEAR(std::abs(sig[0]), 0.0f, 1e-5f); // Hann endpoints are zero
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(sig[i].real(), 2.0f * w[i], 1e-5f);
}

TEST(Window, MatchedFilterTaperSuppressesSidelobes) {
  // Windowed pulse compression: first range sidelobe drops well below the
  // rectangular filter's -13 dB, at the cost of a slightly wider and lower
  // mainlobe.
  fft::ChirpParams cp;
  cp.sample_rate_hz = 50e6;
  cp.bandwidth_hz = 25e6;
  cp.duration_s = 4e-6; // 200 samples, TB = 100
  const auto replica = fft::make_chirp(cp);
  std::vector<cf32> echo(512);
  for (std::size_t i = 0; i < replica.size(); ++i) echo[100 + i] = replica[i];

  auto sidelobe_db = [&](WindowKind k) {
    fft::MatchedFilter mf(replica, echo.size(), k);
    const auto out = mf.compress(echo);
    const double peak = std::abs(out[100]);
    // Largest response outside the +-4-sample mainlobe region.
    double side = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      if (i + 4 < 100 || i > 104) side = std::max(side, (double)std::abs(out[i]));
    return 20.0 * std::log10(side / peak);
  };

  const double rect = sidelobe_db(WindowKind::kRectangular);
  const double hamming = sidelobe_db(WindowKind::kHamming);
  EXPECT_GT(rect, -21.0);        // rectangular: ~-13..-18 dB sidelobes
  EXPECT_LT(hamming, rect - 8);  // taper buys >= 8 dB
}

TEST(Crc32, KnownVectorAndSensitivity) {
  // "123456789" -> 0xCBF43926 (standard check value).
  const char msg[] = "123456789";
  EXPECT_EQ(sar::crc32(msg, 9), 0xCBF43926u);
  char msg2[] = "123456788";
  EXPECT_NE(sar::crc32(msg2, 9), 0xCBF43926u);
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  const auto p = sar::test_params(16, 33);
  sar::Dataset ds;
  ds.params = p;
  ds.data = sar::simulate_compressed(p, sar::six_target_scene(p));

  const auto path =
      std::filesystem::temp_directory_path() / "esarp_ds_test.esrp";
  sar::save_dataset(path, ds);
  const sar::Dataset back = sar::load_dataset(path);
  std::filesystem::remove(path);

  EXPECT_EQ(back.data, ds.data);
  EXPECT_DOUBLE_EQ(back.params.center_freq_hz, p.center_freq_hz);
  EXPECT_DOUBLE_EQ(back.params.near_range_m, p.near_range_m);
  EXPECT_EQ(back.params.n_pulses, p.n_pulses);
  EXPECT_DOUBLE_EQ(back.params.theta_span_rad, p.theta_span_rad);
}

TEST(DatasetIo, DetectsCorruption) {
  const auto p = sar::test_params(8, 17);
  sar::Dataset ds;
  ds.params = p;
  ds.data = Array2D<cf32>(8, 17, cf32{1.0f, 2.0f});
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_ds_corrupt.esrp";
  sar::save_dataset(path, ds);

  // Flip one payload byte.
  {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(96 + 40);
    char b = 0x7F;
    f.write(&b, 1);
  }
  EXPECT_THROW((void)sar::load_dataset(path), ContractViolation);
  std::filesystem::remove(path);
}

TEST(DatasetIo, RejectsBadMagic) {
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_ds_magic.esrp";
  {
    std::ofstream f(path, std::ios::binary);
    const char junk[200] = "not a dataset";
    f.write(junk, sizeof(junk));
  }
  EXPECT_THROW((void)sar::load_dataset(path), ContractViolation);
  std::filesystem::remove(path);
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW((void)sar::load_dataset("/nonexistent/nowhere.esrp"),
               ContractViolation);
}

} // namespace
} // namespace esarp
