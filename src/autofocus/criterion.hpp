// Sequential autofocus criterion calculation (the reference both Table-I
// sequential rows execute, and the ground truth for the MPMD pipeline).
#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"
#include "autofocus/af_params.hpp"
#include "hostmodel/host_model.hpp"

namespace esarp::af {

struct CriterionResult {
  /// Criterion value per shift candidate (same order as the params list).
  std::vector<double> criteria;
  /// Index of the maximising candidate.
  std::size_t best_index = 0;
  /// Counted work of the sweep.
  OpCounts ops;
  /// Same work in host-model form (working set fits on-die: no ext traffic).
  host::HostWork host_work;

  [[nodiscard]] float best_shift(const AfParams& p) const {
    return p.shift_candidates[best_index];
  }
};

/// Evaluate the focus criterion (eq. 6) for every candidate shift between
/// the two contributing 6x6 blocks. Accumulation order: shift -> window ->
/// sample -> beam (the simulated pipeline reproduces this order exactly).
[[nodiscard]] CriterionResult criterion_sweep(const Array2D<cf32>& block_minus,
                                              const Array2D<cf32>& block_plus,
                                              const AfParams& p);

/// Counted work of one (shift, window, sample) step — used by the Epiphany
/// kernels to charge per-packet compute.
[[nodiscard]] OpCounts per_sample_ops(const AfParams& p);

} // namespace esarp::af
