// Analytic cost model of the paper's reference CPU: one core of an Intel
// Core i7-M620 (Westmere, 32 nm, 2.67 GHz), running the algorithms as
// single-threaded scalar code — the paper deliberately does not use the
// second core or SSE vectorisation.
//
// Micro-architectural assumptions (Intel Optimization Reference Manual,
// Westmere):
//   - out-of-order, with one FP-add port and one FP-mul port (no FMA unit:
//     an fma in OpCounts costs one slot on EACH port),
//   - one load + one store port,
//   - divss/sqrtss are long-latency, partially pipelined ops on the mul
//     port (our kernels use the shared fastmath expansions instead, so fdiv
//     counts are normally zero),
//   - three cache levels + hardware prefetch: sequential streams run at
//     DRAM bandwidth; scattered 8-byte gathers from a working set larger
//     than L3 pay an average miss cost.
//
// The same OpCounts that drive the Epiphany CostModel drive this model, so
// cross-architecture speedups are a pure function of counted work.
#pragma once

#include <cstdint>

#include "common/opcounts.hpp"

namespace esarp::host {

struct HostParams {
  double clock_hz = 2.67e9;

  /// Fraction of the ideal dual-FP-port throughput the OoO core sustains on
  /// dependency-laden scalar kernel code (the paper's reference is plain
  /// single-threaded C without SSE vectorisation; Neville/cosine-theorem
  /// chains keep the ports well below peak). Calibrated so the sequential
  /// throughput ratios land near the paper's Table I (EXPERIMENTS.md).
  double fp_port_efficiency = 0.45;

  /// Load+store ports: one load and one store per cycle (Westmere).
  double mem_ops_per_cycle = 2.0;

  /// Integer/address ops per cycle on the remaining ALU ports.
  double ialu_per_cycle = 2.0;

  /// divss: ~14-cycle recurring cost on the mul port (unpipelined).
  double div_cycles = 14.0;

  /// Average cost of a scattered 8-byte read whose working set exceeds L3
  /// (mix of L2/L3 hits and DRAM misses with some spatial locality).
  double scattered_read_cycles = 7.0;

  /// Sustained sequential stream bandwidth in bytes/cycle
  /// (~16 GB/s of the triple-channel DDR3 at 2.67 GHz).
  double stream_bytes_per_cycle = 6.0;

  /// Loop/bookkeeping overhead applied multiplicatively.
  double overhead = 0.08;

  /// Power attributed to one busy core: the paper takes half the 35 W TDP.
  double watts = 17.5;
};

/// Work description for a host run: counted ops plus memory traffic that
/// does not fit in cache.
struct HostWork {
  OpCounts ops;
  std::uint64_t stream_read_bytes = 0;  ///< sequential (prefetchable) reads
  std::uint64_t stream_write_bytes = 0; ///< sequential writes
  std::uint64_t scattered_reads = 0;    ///< 8-byte cache-unfriendly gathers

  HostWork& operator+=(const HostWork& o) {
    ops += o.ops;
    stream_read_bytes += o.stream_read_bytes;
    stream_write_bytes += o.stream_write_bytes;
    scattered_reads += o.scattered_reads;
    return *this;
  }
};

class HostModel {
public:
  explicit HostModel(HostParams p = {}) : p_(p) {}

  /// Estimated core cycles for the work.
  [[nodiscard]] double cycles(const HostWork& w) const;

  /// Estimated wall time [s].
  [[nodiscard]] double seconds(const HostWork& w) const {
    return cycles(w) / p_.clock_hz;
  }

  /// Energy [J] for the work at the attributed core power.
  [[nodiscard]] double joules(const HostWork& w) const {
    return seconds(w) * p_.watts;
  }

  [[nodiscard]] const HostParams& params() const { return p_; }

private:
  HostParams p_;
};

} // namespace esarp::host
