#include "sar/ffbp.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "sar/kernels.hpp"

namespace esarp::sar {

std::vector<cf32> range_phase_table(const RadarParams& p) {
  std::vector<cf32> table(p.n_range);
  const double k = 4.0 * kPi / p.wavelength_m();
  for (std::size_t j = 0; j < p.n_range; ++j) {
    // Computed in double precision: k*r is ~1e4 radians at VHF ranges.
    const double phase =
        std::fmod(k * (p.near_range_m + static_cast<double>(j) * p.range_bin_m),
                  2.0 * kPi);
    table[j] = {static_cast<float>(std::cos(phase)),
                static_cast<float>(std::sin(phase))};
  }
  return table;
}

std::vector<SubapertureImage> initial_subapertures(const Array2D<cf32>& data,
                                                   const RadarParams& p,
                                                   const FlightPathError* track) {
  p.validate();
  ESARP_EXPECTS(data.rows() == p.n_pulses && data.cols() == p.n_range);
  const auto phase = range_phase_table(p);
  std::vector<SubapertureImage> subs(p.n_pulses);
  for (std::size_t pu = 0; pu < p.n_pulses; ++pu) {
    SubapertureImage& s = subs[pu];
    s.level = 0;
    s.first_pulse = pu;
    s.n_pulses = 1;
    s.x_center = p.pulse_x(pu) + (track != nullptr ? track->at_x(pu) : 0.0);
    s.data = Array2D<cf32>(1, p.n_range);
    for (std::size_t j = 0; j < p.n_range; ++j)
      s.data(0, j) = data(pu, j) * phase[j];
  }
  return subs;
}

OpCounts merge_pixel_ops(const FfbpOptions& opt) {
  OpCounts ops = kMergePixelOps;
  switch (opt.interp) {
    case Interp::kNearest:
      if (opt.phase_compensate) ops += 2 * kPhaseCompensateOps;
      break;
    case Interp::kLinear:
      // Two extra carrier-aware complex lerps on top of the NN pattern.
      ops += 2 * (kLerpOps + kCarrierLinearOps);
      break;
    case Interp::kCubic:
      // Two carrier-aware Neville evaluations replace the plain fetches.
      ops += 2 * (kNeville4Ops + kCarrierCubicOps);
      break;
  }
  return ops;
}

ChildGrid make_child_grid(const RadarParams& p, std::size_t n_theta_child) {
  const PolarGrid cg(p, n_theta_child);
  ChildGrid grid{};
  grid.theta_start = static_cast<float>(cg.theta_start);
  grid.inv_dtheta = static_cast<float>(1.0 / cg.dtheta);
  grid.n_theta = static_cast<int>(cg.n_theta);
  grid.r0 = static_cast<float>(cg.r0);
  grid.dr = static_cast<float>(cg.dr);
  grid.inv_dr = static_cast<float>(1.0 / cg.dr);
  grid.n_range = static_cast<int>(cg.n_range);
  grid.k_phase = static_cast<float>(4.0 * kPi / p.wavelength_m());
  // Carrier rotation per range bin and its phasor powers (double-precision
  // trigonometry; these are per-merge constants).
  const double c = static_cast<double>(grid.k_phase) * p.range_bin_m;
  grid.carrier_rad = static_cast<float>(c);
  grid.rot_m1 = {static_cast<float>(std::cos(c)),
                 static_cast<float>(-std::sin(c))};
  grid.rot_p1 = std::conj(grid.rot_m1);
  grid.rot_m2 = {static_cast<float>(std::cos(2.0 * c)),
                 static_cast<float>(-std::sin(2.0 * c))};
  return grid;
}

MergeLevelGeom merge_level_geom(const RadarParams& p, std::size_t level) {
  ESARP_EXPECTS(level >= 1 && level <= p.merge_levels());
  MergeLevelGeom g{};
  // Child-centre spacing equals the child aperture extent: 2^(level-1)
  // pulse spacings; d is half of it (computed exactly like merge_pair does
  // from the x_centers so the float value matches bit-for-bit).
  const double spacing =
      static_cast<double>(std::size_t{1} << (level - 1)) * p.pulse_spacing_m;
  g.d = static_cast<float>(0.5 * spacing);
  g.d2 = g.d * g.d;
  g.inv_2d = 1.0f / (2.0f * g.d);
  g.n_theta_parent = std::size_t{1} << level;
  g.child = make_child_grid(p, g.n_theta_parent / 2);
  return g;
}

SubapertureImage merge_pair(const SubapertureImage& a,
                            const SubapertureImage& b, const RadarParams& p,
                            const FfbpOptions& opt, OpCounts* tally) {
  return merge_pair_compensated(a, b, p, opt, 0.0f, tally);
}

SubapertureImage merge_pair_compensated(const SubapertureImage& a,
                                        const SubapertureImage& b,
                                        const RadarParams& p,
                                        const FfbpOptions& opt,
                                        float shift_bins, OpCounts* tally) {
  ESARP_EXPECTS(a.level == b.level);
  ESARP_EXPECTS(a.n_pulses == b.n_pulses);
  ESARP_EXPECTS(a.first_pulse + a.n_pulses == b.first_pulse); // adjacent
  ESARP_EXPECTS(a.n_range() == p.n_range && b.n_range() == p.n_range);
  ESARP_EXPECTS(!opt.phase_compensate || opt.interp == Interp::kNearest);

  SubapertureImage parent;
  parent.level = a.level + 1;
  parent.first_pulse = a.first_pulse;
  parent.n_pulses = 2 * a.n_pulses;
  parent.x_center = 0.5 * (a.x_center + b.x_center);
  const std::size_t n_theta_p = 2 * a.n_theta();
  parent.data = Array2D<cf32>(n_theta_p, p.n_range);

  const PolarGrid pg(p, n_theta_p);
  const PolarGrid cg(p, a.n_theta());

  // Child phase centres sit at -d and +d from the parent centre, where
  // 2d = child spacing = child aperture length (paper's l/2 with l the
  // child subaperture length).
  const float d = static_cast<float>(0.5 * (b.x_center - a.x_center));
  const float d2 = d * d;
  const float inv_2d = 1.0f / (2.0f * d);

  const ChildGrid grid = make_child_grid(p, cg.n_theta);

  const auto va = a.data.view();
  const auto vb = b.data.view();
  const auto fetch_a = [&](int it, int ir) -> cf32 {
    return va(static_cast<std::size_t>(it), static_cast<std::size_t>(ir));
  };
  const auto fetch_b = [&](int it, int ir) -> cf32 {
    return vb(static_cast<std::size_t>(it), static_cast<std::size_t>(ir));
  };

  const float r0f = static_cast<float>(p.near_range_m);
  const float drf = static_cast<float>(p.range_bin_m);
  // Flight-path compensation: realign the children by -/+ half the tested
  // shift along range (0 for the plain merge; adding a zero offset keeps
  // the arithmetic bit-identical to the uncompensated path).
  const float shift_a = -0.5f * shift_bins * drf;
  const float shift_b = 0.5f * shift_bins * drf;
  // The cosine-theorem geometry of a whole row goes through the kernel
  // backend (vectorized when available, bit-identical either way); the
  // data-dependent child sampling stays scalar.
  std::vector<MergeGeom> geom_row(p.n_range);
  for (std::size_t i = 0; i < n_theta_p; ++i) {
    const float theta = static_cast<float>(pg.theta_of(i));
    const float cr = 2.0f * d * fastmath::poly_cos(theta);
    auto out = parent.data.row(i);
    kernels::merge_geometry_row(r0f, drf, 0, p.n_range, cr, d2, inv_2d,
                                geom_row.data());
    for (std::size_t j = 0; j < p.n_range; ++j) {
      const MergeGeom& g = geom_row[j];
      const cf32 v1 = sample_child(grid, g.r1 + shift_a, g.theta1,
                                   opt.interp, opt.phase_compensate,
                                   fetch_a);
      const cf32 v2 = sample_child(grid, g.r2 + shift_b, g.theta2,
                                   opt.interp, opt.phase_compensate,
                                   fetch_b);
      out[j] = v1 + v2; // paper eq. 5
    }
  }

  if (tally) {
    const std::uint64_t pixels =
        static_cast<std::uint64_t>(n_theta_p) * p.n_range;
    *tally += pixels * merge_pixel_ops(opt) +
              static_cast<std::uint64_t>(n_theta_p) * kMergeRowOps;
  }
  return parent;
}

FfbpResult ffbp(const Array2D<cf32>& data, const RadarParams& p,
                const FfbpOptions& opt, const FlightPathError* track) {
  FfbpResult res;
  std::vector<SubapertureImage> current =
      initial_subapertures(data, p, track);
  const std::size_t n_levels = p.merge_levels();

  for (std::size_t level = 1; level <= n_levels; ++level) {
    LevelStats ls;
    ls.level = level;
    std::vector<SubapertureImage> next;
    next.reserve(current.size() / 2);
    for (std::size_t i = 0; i + 1 < current.size(); i += 2) {
      next.push_back(
          merge_pair(current[i], current[i + 1], p, opt, &ls.ops));
      ++ls.merges;
      ls.pixels += next.back().data.size();
    }
    res.ops += ls.ops;
    res.levels.push_back(ls);
    current = std::move(next);
  }

  ESARP_ENSURES(current.size() == 1);
  res.image = std::move(current.front());

  // Host-model memory traffic: every parent pixel gathers two child pixels
  // from a working set (the full level image, 8 MB at paper size) that does
  // not fit in cache, and streams one pixel out.
  const std::uint64_t total_pixels =
      static_cast<std::uint64_t>(n_levels) * p.n_pulses * p.n_range;
  res.host_work.ops = res.ops;
  res.host_work.scattered_reads = 2 * total_pixels;
  res.host_work.stream_write_bytes = total_pixels * sizeof(cf32);
  return res;
}

} // namespace esarp::sar
