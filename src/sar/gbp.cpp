#include "sar/gbp.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "sar/kernels.hpp"

namespace esarp::sar {

GbpResult gbp(const Array2D<cf32>& data, const RadarParams& p,
              std::size_t azimuth_decimation) {
  p.validate();
  ESARP_EXPECTS(data.rows() == p.n_pulses && data.cols() == p.n_range);
  ESARP_EXPECTS(azimuth_decimation >= 1);

  GbpResult res;
  res.image.level = p.merge_levels();
  res.image.first_pulse = 0;
  res.image.n_pulses = p.n_pulses;
  res.image.x_center = p.aperture_center_x();
  res.image.data = Array2D<cf32>(p.n_pulses, p.n_range);

  const PolarGrid grid(p, p.n_pulses);
  GbpGrid g{};
  g.r0 = static_cast<float>(p.near_range_m);
  g.inv_dr = static_cast<float>(1.0 / p.range_bin_m);
  g.n_range = static_cast<int>(p.n_range);
  g.k_phase = 4.0 * kPi / p.wavelength_m();

  std::vector<float> pulse_x(p.n_pulses);
  for (std::size_t pu = 0; pu < p.n_pulses; ++pu)
    pulse_x[pu] = static_cast<float>(p.pulse_x(pu));

  // Pulse-outer row accumulation through the kernel backend: each pixel
  // still sums its contributions in pulse order pu = 0, 1, ..., so the
  // accumulation chain — and therefore the image — is bit-identical to the
  // pixel-outer reference loop.
  std::vector<float> px(p.n_range), py(p.n_range);
  std::uint64_t contribs = 0;
  for (std::size_t i = 0; i < grid.n_theta; i += azimuth_decimation) {
    const double theta = grid.theta_of(i);
    const float ct = static_cast<float>(std::cos(theta));
    const float st = static_cast<float>(std::sin(theta));
    auto out = res.image.data.row(i);
    for (std::size_t j = 0; j < p.n_range; ++j) {
      const float r = static_cast<float>(grid.r_of(j));
      px[j] = r * ct; // pixel position (slant plane)
      py[j] = r * st;
      out[j] = cf32{};
    }
    for (std::size_t pu = 0; pu < p.n_pulses; ++pu) {
      kernels::gbp_contrib_row(px.data(), py.data(), pulse_x[pu],
                               &data(pu, 0), g, out.data(), p.n_range);
      contribs += p.n_range;
    }
  }

  res.ops = contribs * kGbpContribOps;
  res.host_work.ops = res.ops;
  // GBP walks each pulse row along a smooth range-migration curve: accesses
  // are near-sequential, so the traffic is stream-like rather than
  // scattered.
  res.host_work.stream_read_bytes = contribs * sizeof(cf32);
  res.host_work.stream_write_bytes =
      res.image.data.size() * sizeof(cf32) / azimuth_decimation;
  return res;
}

} // namespace esarp::sar
