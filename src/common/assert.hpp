// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures. Violations throw (they are programmer errors surfaced to
// tests) rather than abort, so property tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace esarp {

/// Thrown when a precondition/postcondition/invariant check fails.
class ContractViolation : public std::logic_error {
public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  throw ContractViolation(os.str());
}
} // namespace detail

} // namespace esarp

/// Precondition check: argument/state requirements at function entry.
#define ESARP_EXPECTS(cond)                                                    \
  ((cond) ? void(0)                                                            \
          : ::esarp::detail::contract_fail("Precondition", #cond, __FILE__,    \
                                           __LINE__))

/// Postcondition / internal invariant check.
#define ESARP_ENSURES(cond)                                                    \
  ((cond) ? void(0)                                                            \
          : ::esarp::detail::contract_fail("Postcondition", #cond, __FILE__,   \
                                           __LINE__))
