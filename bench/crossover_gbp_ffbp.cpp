// Quantifies the paper's motivating claim (Section I): FFBP "reduces the
// performance requirements significantly relative to those for the
// conventional Global Back-projection (GBP) technique". Runs both SPMD
// mappings on the simulated 16-core chip across aperture sizes: GBP's
// O(N^2 M) back-projection work grows a factor N/log2(N) faster than
// FFBP's O(N M log N), and GBP additionally re-streams the whole raw data
// set once per output row.
//
// Each aperture size is an independent (GBP, FFBP) simulation pair, fanned
// out across host threads via host::SweepRunner (ESARP_JOBS); results are
// gathered by sweep index and are byte-identical for any thread count.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "epiphany/machine_metrics.hpp"
#include "sar/scene.hpp"

static int bench_body() {
  using namespace esarp;

  std::vector<std::size_t> sizes;
  const std::size_t max_n = bench::fast_mode() ? 128 : 256;
  for (std::size_t n = 32; n <= max_n; n *= 2) sizes.push_back(n);

  struct Pair {
    core::GbpSimResult g;
    core::FfbpSimResult f;
  };
  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "simulating " << sizes.size() << " aperture sizes x "
            << "{GBP, FFBP} (" << pool.jobs() << " host thread(s))...\n";
  WallTimer sweep_timer;
  auto results = pool.run(sizes.size(), [&](std::size_t i) {
    const auto p = sar::test_params(sizes[i], 161);
    const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
    Pair pr{core::run_gbp_epiphany(data, p, 16, bench::power_chip()), {}};
    core::FfbpMapOptions fopt;
    fopt.n_cores = 16;
    pr.f = core::run_ffbp_epiphany(data, p, fopt, bench::power_chip());
    return pr;
  });
  const double sweep_s = sweep_timer.elapsed_s();

  Table t("GBP vs FFBP on the simulated 16-core Epiphany");
  t.header({"Pulses", "GBP time (ms)", "FFBP time (ms)", "FFBP advantage",
            "GBP ext reads", "FFBP ext reads", "flops ratio"});
  CsvWriter csv(bench::out_dir() / "crossover_gbp_ffbp.csv",
                {"pulses", "gbp_ms", "ffbp_ms", "advantage", "gbp_ext_mb",
                 "ffbp_ext_mb"});

  std::uint64_t events = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& g = results[i].g;
    const auto& f = results[i].f;
    events += g.perf.engine_events + f.perf.engine_events;
    const double gbp_flops =
        static_cast<double>(g.perf.total_ops().flops());
    const double ffbp_flops =
        static_cast<double>(f.perf.total_ops().flops());
    t.row({std::to_string(n), bench::ms(g.seconds), bench::ms(f.seconds),
           Table::num(g.seconds / f.seconds, 1) + "x",
           format_bytes(g.perf.ext.read_bytes),
           format_bytes(f.perf.ext.read_bytes),
           Table::num(gbp_flops / ffbp_flops, 1) + "x"});
    csv.row_numeric({static_cast<double>(n), g.seconds * 1e3,
                     f.seconds * 1e3, g.seconds / f.seconds,
                     static_cast<double>(g.perf.ext.read_bytes) / 1e6,
                     static_cast<double>(f.perf.ext.read_bytes) / 1e6});
  }

  // Manifest for the largest aperture plus sweep-level engine throughput.
  const auto& head = results.back();
  telemetry::RunManifest man("crossover_gbp_ffbp");
  // Headline energy evidence is the FFBP leg; the GBP totals ride along
  // as plain results so the energy advantage is visible in the diff.
  ep::fill_manifest(man, head.f.perf, head.f.energy);
  bench::add_power_results(
      man, head.f.power, static_cast<double>(sizes.back()) * 161.0);
  man.add_result("gbp_seconds", head.g.seconds);
  man.add_result("ffbp_seconds", head.f.seconds);
  man.add_result("ffbp_advantage", head.g.seconds / head.f.seconds);
  man.add_result("gbp_energy_j", head.g.energy.total_j());
  man.add_result("energy_advantage",
                 head.g.energy.total_j() / head.f.energy.total_j());
  man.add_workload("n_pulses", static_cast<double>(sizes.back()));
  man.add_workload("n_range", 161.0);
  man.add_workload("fast_mode", bench::fast_mode() ? 1.0 : 0.0);
  // Per-point event counts for both legs (each exactly representable in a
  // double, unlike a giant uint64 total converted once) plus the sweep
  // total, fault_sweep's "p<i>." key convention.
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string pfx = "engine_events.p" + std::to_string(i);
    man.add_result(pfx + ".gbp",
                   static_cast<double>(results[i].g.perf.engine_events));
    man.add_result(pfx + ".ffbp",
                   static_cast<double>(results[i].f.perf.engine_events));
  }
  bench::add_engine_stats(man, nullptr, events, sweep_s, pool.jobs());
  bench::write_manifest(man);

  t.note("FFBP's advantage grows ~N/log2(N): the reason time-domain SAR "
         "needs factorisation to be real-time capable (paper Section I)");
  t.print(std::cout);
  return 0;
}

int main() { return esarp::bench::guarded_main("crossover_gbp_ffbp", bench_body); }
