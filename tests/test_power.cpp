// Power observability tests (docs/observability.md): energy conservation
// between the epoch trace / span profile and the aggregate energy model,
// zero-perturbation of the sampler (bit-identical runs with sampling on,
// off, at any epoch size, under the hazard checker and under fault
// injection), clock-gating monotonicity of the energy model, and the
// non-finite guards on manifests and the comparator.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/autofocus_epiphany.hpp"
#include "core/ffbp_epiphany.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/power.hpp"
#include "autofocus/workload.hpp"
#include "sar/scene.hpp"
#include "telemetry/compare.hpp"
#include "telemetry/manifest.hpp"

namespace esarp {
namespace {

using ep::Cycles;

// Relative 1e-9 tolerance with an absolute floor for near-zero bins.
void expect_close(double a, double b) {
  EXPECT_NEAR(a, b, 1e-12 + 1e-9 * std::max(std::abs(a), std::abs(b)));
}

core::FfbpSimResult run_small_ffbp(ep::ChipConfig cfg) {
  const auto p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  return core::run_ffbp_epiphany(data, p, opt, cfg);
}

core::AfSimResult run_small_mpmd(ep::ChipConfig cfg) {
  af::AfParams p;
  Rng rng(42);
  std::vector<af::BlockPair> pairs;
  for (int i = 0; i < 4; ++i)
    pairs.push_back(
        af::synthetic_block_pair(rng, p, rng.uniform_f(-0.5f, 0.5f)));
  return core::run_autofocus_mpmd(pairs, p, {}, cfg);
}

// ---------------------------------------------------------- conservation

TEST(PowerConservation, TraceReconcilesWithAggregateEnergy) {
  ep::ChipConfig cfg;
  cfg.power.enabled = true;
  cfg.power.epoch_cycles = 512; // many epochs on the small run
  const auto sim = run_small_ffbp(cfg);
  ASSERT_TRUE(sim.power.enabled);
  const auto& tr = sim.power.trace;
  ASSERT_GT(tr.n_epochs, 4u);

  const double total = sim.energy.total_j();
  expect_close(tr.total_j, total);

  // The chip row is the column sum of the per-core grid, bin by bin, and
  // the bins sum back to the aggregate model's joules.
  double sum = 0.0;
  for (std::size_t e = 0; e < tr.n_epochs; ++e) {
    double col = 0.0;
    for (int c = 0; c < tr.n_cores; ++c) col += tr.joules(c, e);
    expect_close(col, tr.chip_j[e]);
    sum += tr.chip_j[e];
  }
  expect_close(sum, total);
}

TEST(PowerConservation, RebinningFoldPreservesTotals) {
  // A tiny epoch with a tiny cap forces the sampler to re-bin (double the
  // epoch and fold pairwise) many times; joules must survive exactly.
  ep::ChipConfig cfg;
  cfg.power.enabled = true;
  cfg.power.epoch_cycles = 16;
  cfg.power.max_epochs = 8;
  const auto sim = run_small_ffbp(cfg);
  const auto& tr = sim.power.trace;
  EXPECT_LE(tr.n_epochs, 8u);
  EXPECT_GT(tr.epoch_cycles, Cycles{16});
  expect_close(tr.total_j, sim.energy.total_j());
}

TEST(PowerConservation, SpanProfileReconcilesWithAggregateEnergy) {
  ep::ChipConfig cfg;
  cfg.power.enabled = true;
  const auto sim = run_small_ffbp(cfg);
  const auto& prof = sim.power.profile;
  expect_close(prof.attributed_j + prof.unattributed_j, prof.total_j);
  expect_close(prof.total_j, sim.energy.total_j());
}

// ------------------------------------------------------ zero-perturbation

void expect_same_run(const core::FfbpSimResult& a,
                     const core::FfbpSimResult& b, const char* what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.image, b.image) << what;
  EXPECT_EQ(a.perf.makespan, b.perf.makespan) << what;
  EXPECT_EQ(a.perf.engine_events, b.perf.engine_events) << what;
  ASSERT_EQ(a.perf.per_core.size(), b.perf.per_core.size()) << what;
  for (std::size_t i = 0; i < a.perf.per_core.size(); ++i) {
    const auto& ca = a.perf.per_core[i];
    const auto& cb = b.perf.per_core[i];
    EXPECT_EQ(ca.busy, cb.busy) << what << " core " << i;
    EXPECT_EQ(ca.total_wait(), cb.total_wait()) << what << " core " << i;
    EXPECT_EQ(ca.finish_time, cb.finish_time) << what << " core " << i;
    EXPECT_EQ(ca.ops.flops(), cb.ops.flops()) << what << " core " << i;
    EXPECT_EQ(ca.dma_bytes, cb.dma_bytes) << what << " core " << i;
  }
  EXPECT_EQ(a.perf.noc_total.transfers, b.perf.noc_total.transfers) << what;
  EXPECT_EQ(a.perf.noc_total.bytes, b.perf.noc_total.bytes) << what;
  EXPECT_EQ(a.perf.noc_total.byte_hops, b.perf.noc_total.byte_hops) << what;
  EXPECT_EQ(a.perf.ext.read_bytes, b.perf.ext.read_bytes) << what;
  EXPECT_EQ(a.perf.ext.write_bytes, b.perf.ext.write_bytes) << what;
}

TEST(PowerZeroPerturbation, SamplingNeverChangesTheRun) {
  const auto off = run_small_ffbp({});

  ep::ChipConfig fine;
  fine.power.enabled = true;
  fine.power.epoch_cycles = 64;
  expect_same_run(off, run_small_ffbp(fine), "epoch=64");

  ep::ChipConfig coarse;
  coarse.power.enabled = true; // default epoch size
  expect_same_run(off, run_small_ffbp(coarse), "epoch=default");

  ep::ChipConfig checked;
  checked.power.enabled = true;
  checked.check.enabled = true;
  expect_same_run(off, run_small_ffbp(checked), "checker+power");
}

TEST(PowerZeroPerturbation, FaultCampaignScheduleHashUnchanged) {
  ep::ChipConfig plain;
  plain.faults.seed = 99;
  plain.faults.dma_corrupt_rate = 1e-3;
  const auto a = run_small_ffbp(plain);

  ep::ChipConfig sampled = plain;
  sampled.power.enabled = true;
  sampled.power.epoch_cycles = 128;
  const auto b = run_small_ffbp(sampled);

  EXPECT_EQ(a.faults.schedule_hash, b.faults.schedule_hash);
  EXPECT_EQ(a.faults.injected, b.faults.injected);
  expect_same_run(a, b, "faults+power");
}

// ------------------------------------------------------------ energy model

TEST(ClockGating, IdlingACoreNeverIncreasesTotalEnergy) {
  ep::PerfReport rep;
  rep.makespan = 100'000;
  rep.per_core.resize(16);
  for (auto& c : rep.per_core) {
    c.busy = 80'000;
    c.ops.fadd = 10'000;
    c.ops.load = 5'000;
  }
  double prev = ep::compute_energy(rep).total_j();
  // Progressively clock-gate one core (same makespan, same ops): the
  // idle rate is below the active rate, so total energy is monotone
  // non-increasing in busy cycles.
  for (Cycles busy : {Cycles{60'000}, Cycles{30'000}, Cycles{0}}) {
    rep.per_core[7].busy = busy;
    const double now = ep::compute_energy(rep).total_j();
    EXPECT_LE(now, prev) << "busy=" << busy;
    prev = now;
  }
}

TEST(EnergyGuards, ZeroCycleRunHasFiniteAvgWatts) {
  ep::PerfReport rep; // makespan == 0, no cores ran
  const auto e = ep::compute_energy(rep);
  EXPECT_TRUE(std::isfinite(e.avg_watts));
  EXPECT_EQ(e.avg_watts, 0.0);
}

// -------------------------------------------------------- span attribution

TEST(SpanAttribution, PipelinePhasesAreAttributed) {
  ep::ChipConfig cfg;
  cfg.power.enabled = true;
  const auto sim = run_small_mpmd(cfg);
  ASSERT_TRUE(sim.power.enabled);
  const auto& prof = sim.power.profile;
  expect_close(prof.attributed_j + prof.unattributed_j, prof.total_j);
  expect_close(prof.total_j, sim.energy.total_j());

  bool range = false, beam = false, corr = false;
  for (const auto& e : prof.entries) {
    if (e.name == "range-interp") range = true;
    if (e.name == "beam-interp") beam = true;
    if (e.name == "criterion-block") corr = true;
    EXPECT_GT(e.spans, 0) << e.name;
  }
  EXPECT_TRUE(range && beam && corr);
  // The pipeline's compute phases dominate: most joules are attributed.
  EXPECT_GT(prof.attributed_j, prof.unattributed_j);
}

// ------------------------------------------------------------- artefacts

TEST(PowerArtifacts, CsvAndHeatmapAreWritten) {
  ep::ChipConfig cfg;
  cfg.power.enabled = true;
  const auto sim = run_small_ffbp(cfg);
  const auto dir = std::filesystem::temp_directory_path();
  const auto csv = dir / "esarp_test_power.csv";
  const auto pgm = dir / "esarp_test_power.pgm";
  ep::write_power_csv(csv, sim.power.trace);
  ep::write_power_heatmap(pgm, sim.power.trace);
  std::ifstream fc(csv);
  std::string header;
  std::getline(fc, header);
  EXPECT_EQ(header.rfind("epoch,start_cycle,seconds,chip_j,chip_w", 0), 0u);
  std::ifstream fp(pgm);
  std::string magic;
  fp >> magic;
  EXPECT_EQ(magic, "P5");
  std::filesystem::remove(csv);
  std::filesystem::remove(pgm);
}

// ------------------------------------------------------- non-finite guards

TEST(ManifestGuards, WriteRejectsNonFiniteValues) {
  telemetry::RunManifest man("t");
  man.add_result("bad", std::numeric_limits<double>::quiet_NaN());
  std::ostringstream os;
  EXPECT_THROW(man.write(os), ContractViolation);
}

TEST(CompareGuards, NonFiniteValueIsANamedRegression) {
  const char* good =
      R"({"schema":"esarp-run-manifest/1","tool":"t",)"
      R"("results":{"energy_j":1.0}})";
  const char* bad =
      R"({"schema":"esarp-run-manifest/1","tool":"t",)"
      R"("results":{"energy_j":null}})";
  const auto rep =
      telemetry::compare_manifests(parse_json(good), parse_json(bad));
  EXPECT_FALSE(rep.ok());
  bool named = false;
  for (const auto& l : rep.lines)
    if (l.key == "results.energy_j" && l.unusable &&
        l.problem.find("non-finite") != std::string::npos)
      named = true;
  EXPECT_TRUE(named);
}

} // namespace
} // namespace esarp
