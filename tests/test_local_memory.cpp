// LocalMemory edge paths: bank-claim ordering, the paper's exact two-pulse
// bank budget (16,016 bytes in the upper two banks), zero-size allocations,
// alignment rounding, and the observer callbacks the hazard sanitizer
// depends on.
#include "epiphany/local_memory.hpp"

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace esarp::ep {
namespace {

using cf32 = std::complex<float>;

constexpr std::size_t kStore = 32u * 1024;
constexpr int kBanks = 4;
constexpr std::size_t kBank = kStore / kBanks; // 8 KB

TEST(LocalMemory, BanksClaimedInOrder) {
  LocalMemory mem(kStore, kBanks);
  auto a = mem.alloc_in_bank<float>(16, 1);
  EXPECT_EQ(mem.offset_of(a.data()), kBank);
  auto b = mem.alloc_in_bank<float>(16, 2);
  EXPECT_EQ(mem.offset_of(b.data()), 2 * kBank);
}

TEST(LocalMemory, AllocInBankCollisionThrows) {
  LocalMemory mem(kStore, kBanks);
  (void)mem.alloc_in_bank<float>(16, 2);
  // Bank 1 starts below the cursor bank 2 left behind: out-of-order claim.
  EXPECT_THROW((void)mem.alloc_in_bank<float>(16, 1), ContractViolation);
}

TEST(LocalMemory, CollisionWithinSameBankThrows) {
  LocalMemory mem(kStore, kBanks);
  (void)mem.alloc_in_bank<float>(16, 1);
  // Re-claiming the same bank would overlap the earlier allocation.
  EXPECT_THROW((void)mem.alloc_in_bank<float>(16, 1), ContractViolation);
}

TEST(LocalMemory, TwoPulseFillOfUpperBanksExactlyFits) {
  // Paper Section V-B: two pulses of 1001 complex pixels = 16,016 bytes in
  // the two upper data banks (banks 2 and 3, 16,384 bytes).
  LocalMemory mem(kStore, kBanks);
  auto pulses = mem.alloc_in_bank<cf32>(2 * 1001, 2);
  EXPECT_EQ(pulses.size_bytes(), 16'016u);
  EXPECT_EQ(mem.offset_of(pulses.data()), 2 * kBank);
  EXPECT_EQ(mem.used(), 2 * kBank + 16'016u);
  EXPECT_EQ(mem.free_bytes(), 16'384u - 16'016u);
  // A third pulse cannot fit: the budget discipline is real.
  EXPECT_THROW((void)mem.alloc<cf32>(1001), ContractViolation);
}

TEST(LocalMemory, ExactCapacityFillLeavesZeroFree) {
  LocalMemory mem(kStore, kBanks);
  auto all = mem.alloc<std::byte>(kStore);
  EXPECT_EQ(all.size(), kStore);
  EXPECT_EQ(mem.free_bytes(), 0u);
  EXPECT_THROW((void)mem.alloc<std::byte>(1), ContractViolation);
  // ...but a zero-byte allocation still succeeds at full capacity.
  auto empty = mem.alloc<std::byte>(0);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(LocalMemory, ZeroSizeAllocDoesNotAdvanceAlignedCursor) {
  LocalMemory mem(kStore, kBanks);
  (void)mem.alloc<std::byte>(8);
  const std::size_t before = mem.used();
  (void)mem.alloc<float>(0);
  EXPECT_EQ(mem.used(), before);
}

TEST(LocalMemory, MisalignedSizesRoundUpToEightBytes) {
  LocalMemory mem(kStore, kBanks);
  auto a = mem.alloc<std::byte>(3); // cursor 3
  auto b = mem.alloc<float>(1);     // aligned to 8
  EXPECT_EQ(mem.offset_of(a.data()), 0u);
  EXPECT_EQ(mem.offset_of(b.data()), 8u);
  auto c = mem.alloc<std::byte>(1); // 8 + 4 = 12 -> aligned to 16
  EXPECT_EQ(mem.offset_of(c.data()), 16u);
}

TEST(LocalMemory, HighWaterSurvivesReset) {
  LocalMemory mem(kStore, kBanks);
  (void)mem.alloc<std::byte>(1000);
  mem.reset();
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.high_water(), 1000u);
  (void)mem.alloc<std::byte>(10);
  EXPECT_EQ(mem.high_water(), 1000u);
}

/// Observer double for the callbacks the hazard sanitizer relies on.
class RecordingObserver final : public LocalMemoryObserver {
public:
  struct Alloc {
    int core;
    std::size_t offset;
    std::size_t bytes;
  };
  std::vector<Alloc> allocs;
  std::vector<int> resets;
  std::vector<std::string> violations;

  void on_local_alloc(int core, std::size_t offset,
                      std::size_t bytes) override {
    allocs.push_back({core, offset, bytes});
  }
  void on_local_reset(int core) override { resets.push_back(core); }
  void on_local_violation(int core, const char* what, std::size_t,
                          std::size_t) override {
    violations.push_back(std::to_string(core) + ":" + what);
  }
};

TEST(LocalMemory, ObserverSeesAllocsResetsAndViolations) {
  LocalMemory mem(kStore, kBanks);
  RecordingObserver obs;
  mem.attach_observer(&obs, 7);

  (void)mem.alloc<float>(4);
  ASSERT_EQ(obs.allocs.size(), 1u);
  EXPECT_EQ(obs.allocs[0].core, 7);
  EXPECT_EQ(obs.allocs[0].offset, 0u);
  EXPECT_EQ(obs.allocs[0].bytes, 16u);

  (void)mem.alloc<float>(0); // zero-size: no callback
  EXPECT_EQ(obs.allocs.size(), 1u);

  mem.reset();
  ASSERT_EQ(obs.resets.size(), 1u);
  EXPECT_EQ(obs.resets[0], 7);

  EXPECT_THROW((void)mem.alloc<std::byte>(kStore + 1), ContractViolation);
  ASSERT_EQ(obs.violations.size(), 1u);
  EXPECT_EQ(obs.violations[0], "7:local store overflow");

  (void)mem.alloc_in_bank<float>(4, 2);
  EXPECT_THROW((void)mem.alloc_in_bank<float>(4, 1), ContractViolation);
  ASSERT_EQ(obs.violations.size(), 2u);
  EXPECT_EQ(obs.violations[1], "7:alloc_in_bank collision");

  // Detach: no further callbacks.
  mem.attach_observer(nullptr, -1);
  mem.reset();
  EXPECT_EQ(obs.resets.size(), 1u);
}

} // namespace
} // namespace esarp::ep
