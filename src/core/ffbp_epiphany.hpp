// FFBP on the simulated Epiphany chip.
//
// Two variants, both of which execute the *same* inner arithmetic as the
// sequential host reference (sar::merge_geometry / sar::sample_child), so
// the produced image is bit-identical to sar::ffbp with equal options:
//
//  - sequential (1 core): the complete algorithm on one core, all level
//    data in off-chip SDRAM accessed with blocking per-pixel reads — the
//    paper's "Sequential on Epiphany" Table-I row, whose slowdown comes
//    from SDRAM read stalls.
//  - SPMD (up to 16 cores): the paper's parallel version. The output image
//    of each merge level is partitioned into row slices; every core
//    prefetches (DMA) the two predicted contributing child rows into the
//    two upper local-memory banks (16,016 bytes at paper size — exactly
//    the figure in Section V-B), falls back to blocking SDRAM reads when a
//    pixel's contribution lies outside the prefetched rows (the paper's
//    "in later iterations it still requires contributing data to be read
//    from the external memory"), and writes finished rows back to SDRAM
//    with posted writes. A barrier separates merge iterations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.hpp"
#include "common/types.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"
#include "autofocus/integrated.hpp"
#include "fault/injector.hpp"
#include "sar/ffbp.hpp"
#include "sar/params.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::core {

struct FfbpMapOptions {
  int n_cores = 16;      ///< participating cores (1 == sequential mapping)
  bool prefetch = true;  ///< DMA child-row prefetch into local banks
  /// Double-buffer the child-row prefetch: the next row's DMA overlaps the
  /// current row's compute. Requires `prefetch` and TWO rows per data bank
  /// — i.e. n_range <= bank_size / (2 * sizeof(cf32)) = 512 at the default
  /// 8 KB banks. At the paper's 1001-bin rows this is physically
  /// impossible within the E16G3's four-bank budget (the allocator rejects
  /// it), which is presumably why the paper's implementation is
  /// single-buffered.
  bool double_buffer = false;
  sar::FfbpOptions algo; ///< interpolation kernel / phase compensation
  /// When set, the chip also runs the paper's Fig.-4 autofocus loop: at
  /// each merge level >= autofocus->first_level the cores estimate the
  /// per-pair flight-path shifts (dividing the pairs among themselves,
  /// streaming the contributing child images from SDRAM) and the merges
  /// apply the gated compensations. `algo` is overridden by
  /// autofocus->ffbp so the result is bit-identical to the host
  /// af::ffbp_with_autofocus. The pointee must outlive the run.
  const af::IntegratedOptions* autofocus = nullptr;
  /// Externally owned tracer handed to the Machine (see Machine's
  /// shared_tracer parameter). Enable it before the run to get named
  /// merge-iteration / dma-prefetch / criterion-block spans and the
  /// ext-port counter tracks. Must outlive the run.
  ep::Tracer* tracer = nullptr;
  /// Nonzero arms the scheduler watchdog: a run exceeding this many
  /// simulated cycles throws ep::WatchdogExpired with per-core
  /// diagnostics instead of spinning (useful for fault campaigns that
  /// might livelock a misconfigured recovery policy).
  ep::Cycles max_cycles = 0;
};

struct LevelPrefetchStats {
  std::size_t level = 0;
  std::uint64_t local_hits = 0;  ///< child fetches served from local banks
  std::uint64_t ext_misses = 0;  ///< blocking SDRAM fetches
  [[nodiscard]] double hit_rate() const {
    const auto total = local_hits + ext_misses;
    return total != 0 ? static_cast<double>(local_hits) /
                            static_cast<double>(total)
                      : 1.0;
  }
};

struct FfbpSimResult {
  Array2D<cf32> image; ///< final full-aperture polar image
  ep::Cycles cycles = 0;
  double seconds = 0.0;
  ep::PerfReport perf;
  ep::EnergyReport energy;
  /// Time-resolved power trace + span-level energy attribution, filled
  /// when the run's ChipConfig::power (or ESARP_POWER=1) enabled the
  /// sampler; power.enabled is false otherwise (power.hpp).
  ep::PowerReport power;
  std::vector<LevelPrefetchStats> prefetch_stats; ///< one entry per level
  /// Applied autofocus corrections (empty unless options.autofocus set).
  std::vector<af::MergeCorrection> corrections;
  /// Snapshot of the machine's telemetry registry after the run: ext-port
  /// stall histograms, barrier wait/imbalance, per-link NoC traffic, plus
  /// per-level prefetch hit/miss counters (`ffbp.prefetch.*{level=N}`).
  telemetry::MetricsRegistry metrics;
  /// Fault-campaign totals (all zero unless ChipConfig::faults is enabled
  /// — see docs/fault-injection.md). `faults.schedule_hash` is the
  /// reproducibility witness: equal seeds must give equal hashes.
  fault::FaultSummary faults;
  /// True when the campaign degraded the output (fail-stopped cores or
  /// dropped autofocus pairs): the image is then an approximation of the
  /// fault-free result, not bit-identical to it. Recovered transfer faults
  /// (retries) alone never set this — retried data is verified exact.
  bool degraded = false;
};

/// Run FFBP on the simulated chip with the given mapping.
[[nodiscard]] FfbpSimResult run_ffbp_epiphany(const Array2D<cf32>& data,
                                              const sar::RadarParams& p,
                                              const FfbpMapOptions& opt = {},
                                              ep::ChipConfig cfg = {});

/// Convenience: the paper's "Sequential on Epiphany" configuration
/// (one core, no prefetch).
[[nodiscard]] inline FfbpSimResult
run_ffbp_sequential_epiphany(const Array2D<cf32>& data,
                             const sar::RadarParams& p,
                             sar::FfbpOptions algo = {},
                             ep::ChipConfig cfg = {}) {
  FfbpMapOptions opt;
  opt.n_cores = 1;
  opt.prefetch = false;
  opt.algo = algo;
  return run_ffbp_epiphany(data, p, opt, cfg);
}

} // namespace esarp::core
