// Reproduces Section VI-A: energy efficiency (throughput per watt) of the
// parallel Epiphany implementations versus the sequential Intel reference.
// Paper figures: 38x for FFBP, 78x for the autofocus criterion.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "core/autofocus_epiphany.hpp"
#include "core/ffbp_epiphany.hpp"
#include "epiphany/machine_metrics.hpp"
#include "hostmodel/host_model.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/workload.hpp"
#include "sar/ffbp.hpp"

static int bench_body() {
  using namespace esarp;
  const host::HostModel intel;

  // ---------- FFBP ----------
  const auto w = bench::make_paper_workload();
  std::cerr << "FFBP: reference + 16-core simulation...\n";
  const auto host_res = sar::ffbp(w.data, w.params);
  const double intel_s = intel.seconds(host_res.host_work);
  const double intel_j = intel.joules(host_res.host_work);

  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto par =
      core::run_ffbp_epiphany(w.data, w.params, opt, bench::power_chip());

  // Throughput per watt: images/s/W, normalised to the Intel reference.
  const double ffbp_intel_tpw = (1.0 / intel_s) / intel.params().watts;
  const double ffbp_epi_tpw =
      (1.0 / par.seconds) / par.energy.avg_watts;
  const double ffbp_ratio = ffbp_epi_tpw / ffbp_intel_tpw;

  // ---------- Autofocus ----------
  std::cerr << "autofocus: reference + 13-core pipeline simulation...\n";
  af::AfParams p;
  Rng rng(7);
  std::vector<af::BlockPair> pairs;
  const std::size_t n_pairs = bench::fast_mode() ? 16 : 64;
  for (std::size_t i = 0; i < n_pairs; ++i)
    pairs.push_back(
        af::synthetic_block_pair(rng, p, rng.uniform_f(-0.6f, 0.6f)));

  host::HostWork af_work;
  for (const auto& bp : pairs)
    af_work += af::criterion_sweep(bp.minus, bp.plus, p).host_work;
  const double af_intel_s = intel.seconds(af_work);
  const double pixels = static_cast<double>(n_pairs * p.pixels());
  const auto mpmd =
      core::run_autofocus_mpmd(pairs, p, {}, bench::power_chip());

  const double af_intel_tpw =
      (pixels / af_intel_s) / intel.params().watts;
  const double af_epi_tpw =
      mpmd.pixels_per_second / mpmd.energy.avg_watts;
  const double af_ratio = af_epi_tpw / af_intel_tpw;

  Table t("Section VI-A: energy efficiency (throughput per watt)");
  t.header({"Case study", "Intel i7 (ref)", "Epiphany parallel",
            "Efficiency ratio", "Paper ratio"});
  t.row({"FFBP (images/s/W)", Table::num(ffbp_intel_tpw, 5),
         Table::num(ffbp_epi_tpw, 5), Table::num(ffbp_ratio, 1) + "x",
         "38x"});
  t.row({"Autofocus (px/s/W)", Table::num(af_intel_tpw, 1),
         Table::num(af_epi_tpw, 1), Table::num(af_ratio, 1) + "x", "78x"});
  t.note("Intel power: 17.5 W (half the 35 W TDP, per the paper);"
         " Epiphany power: energy model average over the run");
  t.note("FFBP energy per image: Intel " + Table::num(intel_j, 2) +
         " J vs Epiphany " + Table::num(par.energy.total_j(), 3) + " J");
  t.note("Epiphany avg power: FFBP " +
         Table::num(par.energy.avg_watts, 2) + " W, autofocus " +
         Table::num(mpmd.energy.avg_watts, 2) + " W (chip max ~2 W)");
  t.print(std::cout);

  // Per-phase energy attribution for both legs: the 38x/78x ratios are
  // attributable to the phases that spend the joules, not just a single
  // chip-level number (power sampling, docs/observability.md).
  std::cout << "\n-- FFBP energy profile --\n"
            << par.power.profile.table()
            << "\n-- autofocus pipeline energy profile --\n"
            << mpmd.power.profile.table();

  CsvWriter csv(bench::out_dir() / "energy_efficiency.csv",
                {"case", "intel_tpw", "epiphany_tpw", "ratio"});
  csv.row({"ffbp", Table::num(ffbp_intel_tpw, 6),
           Table::num(ffbp_epi_tpw, 6), Table::num(ffbp_ratio, 2)});
  csv.row({"autofocus", Table::num(af_intel_tpw, 3),
           Table::num(af_epi_tpw, 3), Table::num(af_ratio, 2)});

  CsvWriter phases(bench::out_dir() / "energy_efficiency_phases.csv",
                   {"case", "phase", "joules", "share"});
  const auto phase_rows = [&phases](const std::string& leg,
                                    const ep::SpanEnergyProfile& prof) {
    for (const auto& e : prof.entries)
      phases.row({leg, e.name, Table::num(e.joules, 9),
                  Table::num(e.joules / prof.total_j, 6)});
    phases.row({leg, "(unattributed)", Table::num(prof.unattributed_j, 9),
                Table::num(prof.unattributed_j / prof.total_j, 6)});
  };
  phase_rows("ffbp", par.power.profile);
  phase_rows("autofocus", mpmd.power.profile);

  // Manifest for the FFBP leg (the headline 38x claim); the autofocus
  // leg's throughput-per-watt and phase breakdown ride along under an
  // `af.` / `energy_j.af.` prefix so the 78x claim is gated too.
  telemetry::RunManifest man("energy_efficiency");
  ep::fill_manifest(man, par.perf, par.energy);
  bench::add_workload(man, w.params);
  man.add_result("ffbp_efficiency_ratio", ffbp_ratio);
  man.add_result("autofocus_efficiency_ratio", af_ratio);
  man.add_result("ffbp_epiphany_tpw", ffbp_epi_tpw);
  man.add_result("autofocus_epiphany_tpw", af_epi_tpw);
  bench::add_power_results(
      man, par.power,
      static_cast<double>(w.params.n_pulses * w.params.n_range));
  man.add_result("af.energy_j", mpmd.energy.total_j());
  man.add_result("af.avg_watts", mpmd.energy.avg_watts);
  for (const auto& e : mpmd.power.profile.entries)
    man.add_result("energy_j.af." + e.name, e.joules);
  man.add_result("energy_j.af.unattributed",
                 mpmd.power.profile.unattributed_j);
  man.set_metrics(&par.metrics);
  bench::write_manifest(man);
  return 0;
}

int main() { return esarp::bench::guarded_main("energy_efficiency", bench_body); }
