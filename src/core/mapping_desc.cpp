#include "core/mapping_desc.hpp"

#include <string>

#include "autofocus/criterion.hpp"
#include "autofocus/integrated.hpp"
#include "core/ffbp_layout.hpp"
#include "core/mapping_profiles.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"
#include "sar/merge_kernel.hpp"

namespace esarp::core {

namespace {

using analysis::BarrierDecl;
using analysis::BlockingRead;
using analysis::ChannelDecl;
using analysis::ChannelTraffic;
using analysis::ComputeBlock;
using analysis::CorePhase;
using analysis::CoreSpec;
using analysis::DmaRead;
using analysis::LocalAlloc;
using analysis::MappingSpec;
using analysis::PostedWrite;
using analysis::SyncOp;

std::size_t interp_taps(sar::Interp interp) {
  switch (interp) {
  case sar::Interp::kNearest: return 1;
  case sar::Interp::kLinear: return 2;
  default: return 4; // cubic (Neville)
  }
}

/// Area-of-interest blocks one estimate_pair_shift call lands at a level
/// whose children have `n_theta` x `n_range` pixels: zero when the
/// children are smaller than the criterion block, else at most
/// blocks_per_merge of the available candidate grid.
std::size_t aoi_blocks(const af::IntegratedOptions& afo, std::size_t n_theta,
                       std::size_t n_range) {
  const af::AfParams& cp = afo.criterion;
  if (n_theta < cp.block_rows || n_range < cp.block_cols) return 0;
  const std::size_t step_t = std::max<std::size_t>(1, cp.block_rows / 2);
  const std::size_t step_c = std::max<std::size_t>(1, cp.block_cols / 2);
  const std::size_t candidates = ((n_theta - cp.block_rows) / step_t + 1) *
                                 ((n_range - cp.block_cols) / step_c + 1);
  return std::min(afo.blocks_per_merge, candidates);
}

} // namespace

analysis::MappingSpec describe_ffbp_mapping(const sar::RadarParams& p,
                                            const FfbpMapOptions& opt,
                                            ep::ChipConfig cfg) {
  const std::size_t n_levels = p.merge_levels();
  const std::size_t n_range = p.n_range;
  const std::size_t row_bytes = n_range * sizeof(cf32);
  const auto n = static_cast<std::size_t>(opt.n_cores);
  const sar::FfbpOptions algo =
      opt.autofocus != nullptr ? opt.autofocus->ffbp : opt.algo;
  const OpCounts pixel_ops = sar::merge_pixel_ops(algo);
  const std::size_t taps = interp_taps(algo.interp);

  MappingSpec spec;
  spec.name = opt.autofocus != nullptr ? "ffbp-autofocus"
              : opt.n_cores == 1       ? "ffbp-sequential"
              : opt.double_buffer      ? "ffbp-double-buffer"
                                       : "ffbp-spmd";
  spec.family = "spmd";
  spec.cfg = cfg;
  spec.barriers.push_back(BarrierDecl{"merge-barrier", opt.n_cores, {}});
  for (int c = 0; c < opt.n_cores; ++c)
    spec.barriers.back().members.push_back(c);

  for (int c = 0; c < opt.n_cores; ++c) {
    CoreSpec core;
    core.id = c;
    core.role = "merge";
    core.allocs = {
        {"out_row", 1, row_bytes, "ffbp-setup"},
        {"child_row1", 2, (opt.double_buffer ? 2 : 1) * row_bytes,
         "ffbp-setup"},
        {"child_row2", 3, (opt.double_buffer ? 2 : 1) * row_bytes,
         "ffbp-setup"},
    };
    for (std::size_t level = 1; level <= n_levels; ++level) {
      const LevelLayout lc = LevelLayout::at(p, level - 1);
      const LevelLayout lp = LevelLayout::at(p, level);
      const std::string iter = std::to_string(level);

      if (opt.autofocus != nullptr) {
        CorePhase af;
        af.name = "af-estimate/" + iter;
        // Pairs strided core, core + n, ... across the level's subapertures.
        const std::size_t pairs_own =
            lp.n_subaps > static_cast<std::size_t>(c)
                ? (lp.n_subaps - static_cast<std::size_t>(c) + n - 1) / n
                : 0;
        if (level >= opt.autofocus->first_level && pairs_own > 0) {
          const std::size_t child_bytes =
              lc.n_theta * lc.n_range * sizeof(cf32);
          af.blocking_reads.push_back(BlockingRead{pairs_own, 2, child_bytes});
          af.compute.push_back(ComputeBlock{
              af::estimate_pair_ops(
                  opt.autofocus->criterion,
                  aoi_blocks(*opt.autofocus, lc.n_theta, lc.n_range)),
              pairs_own});
        }
        af.barrier = 0;
        core.phases.push_back(std::move(af));
        core.sync.push_back(
            SyncOp{SyncOp::Kind::kBarrier, 0, 1, "af-estimate/" + iter});
      }

      CorePhase merge;
      merge.name = "merge-iter/" + iter;
      const std::size_t rows_total = lp.rows_total();
      const std::size_t begin = static_cast<std::size_t>(c) * rows_total / n;
      const std::size_t end =
          (static_cast<std::size_t>(c) + 1) * rows_total / n;
      const std::size_t rows = end - begin;
      if (rows > 0) {
        if (opt.prefetch) {
          merge.compute.push_back(ComputeBlock{kPredictOps, rows});
          merge.dma_reads.push_back(
              DmaRead{rows, 2, row_bytes, opt.double_buffer});
        } else {
          // Every sample_child fetch misses: up to 2 children x taps x
          // n_range word gathers per row (fewer at sector edges).
          merge.blocking_reads.push_back(
              BlockingRead{rows, 2 * taps * n_range, sizeof(cf32)});
        }
        merge.compute.push_back(ComputeBlock{
            static_cast<std::uint64_t>(n_range) * pixel_ops +
                sar::kMergeRowOps,
            rows});
        merge.writes.push_back(PostedWrite{rows, row_bytes});
      }
      merge.barrier = 0;
      core.phases.push_back(std::move(merge));
      core.sync.push_back(
          SyncOp{SyncOp::Kind::kBarrier, 0, 1, "merge-iter/" + iter});
    }
    spec.cores.push_back(std::move(core));
  }
  return spec;
}

analysis::MappingSpec describe_gbp_mapping(const sar::RadarParams& p,
                                           int n_cores, ep::ChipConfig cfg) {
  const std::size_t n_range = p.n_range;
  const std::size_t row_bytes = n_range * sizeof(cf32);
  const std::size_t rows_total = p.n_pulses; // polar grid: one row per pulse
  const std::size_t iters = p.n_pulses / 2;  // two pulses per DMA burst

  MappingSpec spec;
  spec.name = n_cores == 1 ? "gbp-sequential" : "gbp-spmd";
  spec.family = "spmd";
  spec.cfg = cfg;
  for (int c = 0; c < n_cores; ++c) {
    CoreSpec core;
    core.id = c;
    core.role = "backprojection";
    core.allocs = {
        {"acc", 1, row_bytes, "gbp-setup"},
        {"pulse_a", 2, row_bytes, "gbp-setup"},
        {"pulse_b", 3, row_bytes, "gbp-setup"},
    };
    const std::size_t begin =
        static_cast<std::size_t>(c) * rows_total /
        static_cast<std::size_t>(n_cores);
    const std::size_t end = (static_cast<std::size_t>(c) + 1) * rows_total /
                            static_cast<std::size_t>(n_cores);
    const std::size_t rows = end - begin;
    CorePhase ph;
    ph.name = "gbp-rows";
    if (rows > 0) {
      ph.dma_reads.push_back(DmaRead{rows * iters, 2, row_bytes});
      ph.compute.push_back(ComputeBlock{
          2 * static_cast<std::uint64_t>(n_range) * sar::kGbpContribOps,
          rows * iters});
      ph.writes.push_back(PostedWrite{rows, row_bytes});
    }
    core.phases.push_back(std::move(ph));
    spec.cores.push_back(std::move(core));
  }
  return spec;
}

analysis::MappingSpec describe_autofocus_mpmd(std::size_t n_pairs,
                                              const af::AfParams& p,
                                              const AfMapOptions& opt,
                                              ep::ChipConfig cfg) {
  const Placement pl =
      make_placement(opt.placement == AfPlacement::kCompact);
  const std::size_t block_px = p.block_rows * p.block_cols;
  const std::size_t n_shifts = p.shift_candidates.size();
  const std::uint64_t msgs = n_pairs * n_shifts * p.samples_per_row;

  MappingSpec spec;
  spec.name = opt.placement == AfPlacement::kCompact ? "af-mpmd-compact"
                                                     : "af-mpmd-scattered";
  spec.family = "mpmd";
  spec.cfg = cfg;

  // Channel indices: r2b(f, w) = 3f + w, b2c(f, w) = 6 + 3f + w.
  const auto r2b = [](int f, int w) {
    return static_cast<std::size_t>(3 * f + w);
  };
  const auto b2c = [](int f, int w) {
    return static_cast<std::size_t>(6 + 3 * f + w);
  };
  spec.channels.resize(12);
  for (int f = 0; f < 2; ++f)
    for (int w = 0; w < 3; ++w) {
      spec.channels[r2b(f, w)] = ChannelDecl{
          "range->beam[" + std::to_string(f) + "][" + std::to_string(w) + "]",
          pl.range[f][w], pl.beam[f][w], opt.channel_capacity,
          sizeof(RangePacket)};
      spec.channels[b2c(f, w)] = ChannelDecl{
          "beam->corr[" + std::to_string(f) + "][" + std::to_string(w) + "]",
          pl.beam[f][w], pl.corr, opt.channel_capacity, sizeof(BeamPacket)};
    }

  for (int f = 0; f < 2; ++f)
    for (int w = 0; w < 3; ++w) {
      CoreSpec range;
      range.id = pl.range[f][w];
      range.role = "range";
      range.allocs = {
          {"aoi_block", 2, block_px * sizeof(cf32), "range-interp"}};
      CorePhase rp;
      rp.name = "range-stream";
      rp.dma_reads.push_back(DmaRead{n_pairs, 1, block_px * sizeof(cf32)});
      rp.compute.push_back(ComputeBlock{range_core_sample_ops(p), msgs});
      rp.sends.push_back(ChannelTraffic{r2b(f, w), msgs});
      range.phases.push_back(std::move(rp));
      range.sync.push_back(
          SyncOp{SyncOp::Kind::kSend, r2b(f, w), msgs, "range-interp"});
      spec.cores.push_back(std::move(range));

      CoreSpec beam;
      beam.id = pl.beam[f][w];
      beam.role = "beam";
      CorePhase bp;
      bp.name = "beam-stream";
      bp.compute.push_back(ComputeBlock{beam_core_sample_ops(p), msgs});
      bp.recvs.push_back(ChannelTraffic{r2b(f, w), msgs});
      bp.sends.push_back(ChannelTraffic{b2c(f, w), msgs});
      beam.phases.push_back(std::move(bp));
      // recv/send strictly alternate, which is what bounds the in-flight
      // packets the deadlock checker reasons about.
      for (std::uint64_t i = 0; i < msgs; ++i) {
        beam.sync.push_back(
            SyncOp{SyncOp::Kind::kRecv, r2b(f, w), 1, "beam-interp"});
        beam.sync.push_back(
            SyncOp{SyncOp::Kind::kSend, b2c(f, w), 1, "beam-interp"});
      }
      spec.cores.push_back(std::move(beam));
    }

  CoreSpec corr;
  corr.id = pl.corr;
  corr.role = "corr";
  CorePhase cp;
  cp.name = "corr-stream";
  cp.compute.push_back(ComputeBlock{
      corr_sample_ops(p),
      n_pairs * n_shifts * p.windows * p.samples_per_row});
  for (int f = 0; f < 2; ++f)
    for (int w = 0; w < 3; ++w)
      cp.recvs.push_back(ChannelTraffic{b2c(f, w), msgs});
  cp.writes.push_back(PostedWrite{n_pairs, n_shifts * sizeof(float)});
  corr.phases.push_back(std::move(cp));
  for (std::uint64_t i = 0; i < n_pairs * n_shifts; ++i)
    for (int w = 0; w < 3; ++w)
      for (std::size_t s = 0; s < p.samples_per_row; ++s) {
        corr.sync.push_back(
            SyncOp{SyncOp::Kind::kRecv, b2c(0, w), 1, "criterion-block"});
        corr.sync.push_back(
            SyncOp{SyncOp::Kind::kRecv, b2c(1, w), 1, "criterion-block"});
      }
  spec.cores.push_back(std::move(corr));
  return spec;
}

analysis::MappingSpec describe_autofocus_sequential(std::size_t n_pairs,
                                                    const af::AfParams& p,
                                                    ep::ChipConfig cfg) {
  const std::size_t block_px = p.block_rows * p.block_cols;
  const std::size_t n_shifts = p.shift_candidates.size();
  const std::uint64_t steps =
      static_cast<std::uint64_t>(n_shifts) * p.windows * p.samples_per_row;

  MappingSpec spec;
  spec.name = "af-sequential";
  spec.family = "spmd";
  spec.cfg = cfg;
  CoreSpec core;
  core.id = 0;
  core.role = "autofocus";
  core.allocs = {
      {"block_pair", 2, 2 * block_px * sizeof(cf32), "criterion-block"}};
  CorePhase ph;
  ph.name = "af-sequential";
  ph.dma_reads.push_back(DmaRead{n_pairs, 1, 2 * block_px * sizeof(cf32)});
  ph.compute.push_back(ComputeBlock{steps * af::per_sample_ops(p), n_pairs});
  ph.writes.push_back(PostedWrite{n_pairs, n_shifts * sizeof(float)});
  core.phases.push_back(std::move(ph));
  spec.cores.push_back(std::move(core));
  return spec;
}

} // namespace esarp::core
