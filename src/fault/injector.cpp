#include "fault/injector.hpp"

#include <algorithm>

namespace esarp::fault {

namespace {

// SplitMix64 finalizer: a full-avalanche mix of the 64-bit key built from
// (seed, site, core, counter). Stateless, so rolls for one (site, core)
// stream never depend on activity elsewhere on the chip.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t key_of(std::uint64_t seed, Site site, int core,
                                   std::uint64_t counter) {
  return seed ^ (static_cast<std::uint64_t>(site) << 56) ^
         (static_cast<std::uint64_t>(static_cast<unsigned>(core)) << 48) ^
         counter;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// Sized for any plausible chip; rolls index counters by core id directly.
constexpr int kMaxCores = 1024;

} // namespace

FaultInjector::FaultInjector(const FaultPlan& plan,
                             telemetry::MetricsRegistry* metrics)
    : plan_(plan), metrics_(metrics), dma_ops_(kMaxCores, 0),
      noc_ops_(kMaxCores, 0), failed_(kMaxCores, false) {}

double FaultInjector::roll(Site site, int core, std::uint64_t counter) const {
  const std::uint64_t x = mix64(key_of(plan_.seed, site, core, counter));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

void FaultInjector::record(Site site, int core, std::uint64_t index,
                           std::uint64_t cycle) {
  log_.push_back({site, core, index, cycle});
  totals_.injected++;
  if (metrics_ != nullptr) {
    metrics_->counter(telemetry::labeled("fault.injected",
                                         {{"site", to_string(site)}}))
        .add();
  }
}

TransferFault FaultInjector::on_transfer(int core, void* dst,
                                         std::size_t bytes,
                                         std::uint64_t cycle) {
  if (core < 0 || core >= kMaxCores || bytes == 0) {
    return TransferFault::kNone;
  }
  const std::uint64_t n = dma_ops_[static_cast<std::size_t>(core)]++;
  // One roll stream, three thresholds: drop wins over corrupt wins over
  // mem-bits, so raising one rate never reshuffles another site's stream.
  const double r = roll(Site::kDmaCorrupt, core, n);
  if (r < plan_.dma_drop_rate) {
    record(Site::kDmaDrop, core, n, cycle);
    // The engine copies payloads eagerly, so a "never delivered" transfer
    // must leave observably wrong bytes behind (stale-buffer model): scrub
    // a deterministic window of the destination.
    auto* p = static_cast<unsigned char*>(dst);
    const std::uint64_t at =
        mix64(key_of(plan_.seed + 4, Site::kDmaDrop, core, n)) % bytes;
    const std::size_t span = std::min<std::size_t>(bytes, 8);
    for (std::size_t i = 0; i < span; ++i) {
      p[(at + i) % bytes] ^= 0xffU;
    }
    return TransferFault::kDropped;
  }
  if (r < plan_.dma_drop_rate + plan_.dma_corrupt_rate) {
    record(Site::kDmaCorrupt, core, n, cycle);
    // Flip a deterministic byte (and its neighbor for multi-byte payloads)
    // so checksum verification always detects the corruption.
    auto* p = static_cast<unsigned char*>(dst);
    const std::uint64_t at = mix64(key_of(plan_.seed + 1, Site::kDmaCorrupt,
                                          core, n)) %
                             bytes;
    p[at] ^= 0xa5U;
    if (bytes > 1) {
      p[(at + 1) % bytes] ^= 0x5aU;
    }
    return TransferFault::kCorrupt;
  }
  if (r < plan_.dma_drop_rate + plan_.dma_corrupt_rate + plan_.membits_rate) {
    record(Site::kMemBits, core, n, cycle);
    auto* p = static_cast<unsigned char*>(dst);
    const std::uint64_t at = mix64(key_of(plan_.seed + 2, Site::kMemBits,
                                          core, n)) %
                             bytes;
    const unsigned bit = static_cast<unsigned>(
        mix64(key_of(plan_.seed + 3, Site::kMemBits, core, n)) % 8);
    p[at] ^= static_cast<unsigned char>(1U << bit);
    return TransferFault::kCorrupt;
  }
  return TransferFault::kNone;
}

std::uint64_t FaultInjector::noc_stall(int core, std::uint64_t cycle) {
  if (plan_.noc_stall_rate <= 0.0 || core < 0 || core >= kMaxCores) {
    return 0;
  }
  const std::uint64_t n = noc_ops_[static_cast<std::size_t>(core)]++;
  if (roll(Site::kNocStall, core, n) < plan_.noc_stall_rate) {
    record(Site::kNocStall, core, n, cycle);
    return plan_.noc_stall_cycles;
  }
  return 0;
}

bool FaultInjector::fail_stop_due(int core, std::uint64_t cycle) const {
  return std::any_of(plan_.fail_stops.begin(), plan_.fail_stops.end(),
                     [&](const FailStop& f) {
                       return f.core == core && f.cycle <= cycle;
                     });
}

void FaultInjector::mark_failed(int core, std::uint64_t cycle) {
  if (core < 0 || core >= kMaxCores ||
      failed_[static_cast<std::size_t>(core)]) {
    return;
  }
  failed_[static_cast<std::size_t>(core)] = true;
  record(Site::kFailStop, core, 0, cycle);
  totals_.failed_cores++;
  if (metrics_ != nullptr) {
    metrics_->gauge("fault.failed_cores")
        .set(static_cast<double>(totals_.failed_cores));
  }
}

bool FaultInjector::marked_failed(int core) const {
  return core >= 0 && core < kMaxCores &&
         failed_[static_cast<std::size_t>(core)];
}

void FaultInjector::mark_chip_failed(std::uint64_t cycle) {
  if (chip_failed_) {
    return;
  }
  chip_failed_ = true;
  record(Site::kChipFailStop, /*core=*/-1, 0, cycle);
  totals_.failed_chips = 1;
  if (metrics_ != nullptr) {
    metrics_->gauge("fault.failed_chips").set(1.0);
  }
}

void FaultInjector::count_detected(Site site) {
  totals_.detected++;
  if (metrics_ != nullptr) {
    metrics_->counter(telemetry::labeled("fault.detected",
                                         {{"site", to_string(site)}}))
        .add();
  }
}

void FaultInjector::count_recovered(Site site, std::uint64_t recovery_cycles) {
  totals_.recovered++;
  totals_.recovery_cycles += recovery_cycles;
  if (metrics_ != nullptr) {
    metrics_->counter(telemetry::labeled("fault.recovered",
                                         {{"site", to_string(site)}}))
        .add();
    metrics_->counter("fault.recovery_cycles").add(recovery_cycles);
  }
}

void FaultInjector::count_retry() {
  totals_.retries++;
  if (metrics_ != nullptr) {
    metrics_->counter("fault.retries").add();
  }
}

void FaultInjector::count_repartition(std::uint64_t surviving_cores) {
  totals_.repartitions++;
  if (metrics_ != nullptr) {
    metrics_->counter("fault.repartitions").add();
    metrics_->gauge("fault.surviving_cores")
        .set(static_cast<double>(surviving_cores));
  }
}

void FaultInjector::count_af_window_dropped() {
  totals_.af_windows_dropped++;
  if (metrics_ != nullptr) {
    metrics_->counter("fault.af_windows_dropped").add();
  }
}

void FaultInjector::count_af_pair_dropped() {
  totals_.af_pairs_dropped++;
  if (metrics_ != nullptr) {
    metrics_->counter("fault.af_pairs_dropped").add();
  }
}

std::uint64_t FaultInjector::schedule_hash() const {
  std::uint64_t h = kFnvOffset;
  auto mix_in = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= kFnvPrime;
    }
  };
  for (const FaultRecord& r : log_) {
    mix_in(static_cast<std::uint64_t>(r.site));
    mix_in(static_cast<std::uint64_t>(static_cast<unsigned>(r.core)));
    mix_in(r.index);
    mix_in(r.cycle);
  }
  return h;
}

FaultSummary FaultInjector::summary() const {
  FaultSummary s = totals_;
  s.schedule_hash = schedule_hash();
  return s;
}

std::uint64_t FaultInjector::checksum(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

} // namespace esarp::fault
