// Tests for the autofocus criterion calculation: sample geometry, the
// criterion sweep (property: the maximum lands at the true shift), and
// work accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "autofocus/af_params.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/criterion_kernel.hpp"
#include "autofocus/workload.hpp"

namespace esarp::af {
namespace {

TEST(AfParams, DefaultsAreValid) {
  AfParams p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.pixels(), 36u);
  EXPECT_EQ(p.shift_candidates.size(), 8u);
  EXPECT_LT(p.shift_candidates.front(), 0.0f);
  EXPECT_GT(p.shift_candidates.back(), 0.0f);
}

TEST(AfParams, ValidationCatchesBadShapes) {
  AfParams p;
  p.windows = 4; // 4 + 3 > 6 columns
  EXPECT_THROW(p.validate(), ContractViolation);
  p = AfParams{};
  p.shift_candidates.clear();
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(SampleGeom, ShiftSplitsSymmetrically) {
  AfParams p;
  const SampleGeom g = af_sample_geom(p, 5, 0.4f);
  EXPECT_NEAR(g.t_plus - g.t_minus, 0.4f, 1e-6f);
  EXPECT_NEAR(0.5f * (g.t_plus + g.t_minus),
              1.0f + (5.5f / 12.0f), 1e-5f);
  EXPECT_TRUE(g.valid);
}

TEST(SampleGeom, BeamPositionFollowsTilt) {
  AfParams p;
  p.tilt = 0.5f;
  const SampleGeom g0 = af_sample_geom(p, 0, 0.0f);
  const SampleGeom g11 = af_sample_geom(p, 11, 0.0f);
  EXPECT_LT(g0.u, g11.u); // the tilted path drifts across the beam axis
  EXPECT_NEAR(g11.u - g0.u, 0.5f * (11.0f / 12.0f), 1e-5f);
}

TEST(SampleGeom, ExtremeShiftIsInvalid) {
  AfParams p;
  const SampleGeom g = af_sample_geom(p, 11, 3.5f);
  EXPECT_FALSE(g.valid);
}

TEST(CriterionSweep, RejectsWrongBlockShape) {
  AfParams p;
  Array2D<cf32> ok(6, 6), bad(5, 6);
  EXPECT_THROW((void)criterion_sweep(bad, ok, p), ContractViolation);
}

TEST(CriterionSweep, IdenticalBlocksPeakAtZeroShift) {
  AfParams p;
  Rng rng(11);
  const BlockPair bp = synthetic_block_pair(rng, p, 0.0f);
  const CriterionResult res = criterion_sweep(bp.minus, bp.plus, p);
  ASSERT_EQ(res.criteria.size(), p.shift_candidates.size());
  // Best candidate should be one of the two closest to zero.
  EXPECT_LT(std::abs(res.best_shift(p)), 0.2f);
}

class ShiftRecovery : public ::testing::TestWithParam<int> {};

TEST_P(ShiftRecovery, CriterionPeaksNearTrueShift) {
  // Property (paper Section II-A): the focus criterion is maximised by the
  // candidate compensation closest to the true path-error shift.
  AfParams p;
  // Dense candidate grid for resolution.
  p.shift_candidates.clear();
  for (int i = -8; i <= 8; ++i)
    p.shift_candidates.push_back(0.1f * static_cast<float>(i));
  const float true_shift = 0.1f * static_cast<float>(GetParam());

  int hits = 0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(static_cast<std::uint64_t>(100 + trial) * 7919u +
            static_cast<std::uint64_t>(GetParam() + 50));
    const BlockPair bp = synthetic_block_pair(rng, p, true_shift);
    const CriterionResult res = criterion_sweep(bp.minus, bp.plus, p);
    if (std::abs(res.best_shift(p) - true_shift) <= 0.25f) ++hits;
  }
  // Random fields occasionally have weak criterion gradients; demand that
  // a clear majority of trials recover the shift to within 2.5 candidate
  // steps.
  EXPECT_GE(hits, 4) << "true shift " << true_shift;
}

INSTANTIATE_TEST_SUITE_P(ShiftsInBins, ShiftRecovery,
                         ::testing::Values(-6, -4, -2, 0, 2, 4, 6));

TEST(CriterionSweep, CriterionIsNonNegative) {
  AfParams p;
  Rng rng(3);
  const BlockPair bp = synthetic_block_pair(rng, p, 0.3f);
  const CriterionResult res = criterion_sweep(bp.minus, bp.plus, p);
  for (double c : res.criteria) EXPECT_GE(c, 0.0);
}

TEST(CriterionSweep, ZeroBlocksGiveZeroCriterion) {
  AfParams p;
  Array2D<cf32> z(6, 6);
  const CriterionResult res = criterion_sweep(z, z, p);
  for (double c : res.criteria) EXPECT_EQ(c, 0.0);
}

TEST(CriterionSweep, ScalingOneImageScalesCriterion) {
  // criterion = sum |f-|^2 |f+|^2: scaling f+ by a scales it by a^2.
  AfParams p;
  Rng rng(17);
  BlockPair bp = synthetic_block_pair(rng, p, 0.0f);
  const CriterionResult base = criterion_sweep(bp.minus, bp.plus, p);
  for (auto& px : bp.plus.flat()) px *= 2.0f;
  const CriterionResult scaled = criterion_sweep(bp.minus, bp.plus, p);
  for (std::size_t i = 0; i < base.criteria.size(); ++i)
    EXPECT_NEAR(scaled.criteria[i] / base.criteria[i], 4.0, 1e-3);
}

TEST(CriterionSweep, OpsScaleWithCandidatesAndSamples) {
  AfParams p8;
  AfParams p16 = p8;
  p16.shift_candidates.insert(p16.shift_candidates.end(),
                              p8.shift_candidates.begin(),
                              p8.shift_candidates.end());
  Rng rng(5);
  const BlockPair bp = synthetic_block_pair(rng, p8, 0.0f);
  const auto r8 = criterion_sweep(bp.minus, bp.plus, p8);
  const auto r16 = criterion_sweep(bp.minus, bp.plus, p16);
  EXPECT_EQ(r16.ops.flops(), 2 * r8.ops.flops());
}

TEST(PerSampleOps, CompositionMatchesStages) {
  AfParams p;
  const OpCounts total = per_sample_ops(p);
  const OpCounts stages = kSampleGeomOps + 2 * range_stage_ops(p.block_rows) +
                          2 * static_cast<std::uint64_t>(p.beams) *
                              kBeamOutputOps +
                          static_cast<std::uint64_t>(p.beams) * kCorrTermOps;
  EXPECT_EQ(total, stages);
}

TEST(Workload, SyntheticPairIsDeterministicPerSeed) {
  AfParams p;
  Rng r1(42), r2(42);
  const BlockPair a = synthetic_block_pair(r1, p, 0.2f);
  const BlockPair b = synthetic_block_pair(r2, p, 0.2f);
  EXPECT_EQ(a.minus, b.minus);
  EXPECT_EQ(a.plus, b.plus);
}

TEST(Workload, BlocksFromSubaperturesCopyPatch) {
  AfParams p;
  sar::SubapertureImage a, b;
  a.data = Array2D<cf32>(10, 12);
  b.data = Array2D<cf32>(10, 12);
  a.data(3, 4) = {5.0f, 0.0f};
  b.data(4, 5) = {0.0f, 7.0f};
  const BlockPair bp = blocks_from_subapertures(a, b, p, 2, 3);
  EXPECT_EQ(bp.minus(1, 1), (cf32{5.0f, 0.0f}));
  EXPECT_EQ(bp.plus(2, 2), (cf32{0.0f, 7.0f}));
  EXPECT_THROW((void)blocks_from_subapertures(a, b, p, 8, 3),
               ContractViolation);
}

} // namespace
} // namespace esarp::af
