#include "analysis/cost_model.hpp"

#include <algorithm>
#include <map>

#include "epiphany/cost_model.hpp"

namespace esarp::analysis {
namespace {

constexpr double kPicojoule = 1e-12;

Coord coord_of(const ChipConfig& cfg, int id) {
  return Coord{id / cfg.cols, id % cfg.cols};
}

/// Per-(core, phase) uncontended totals.
struct PhaseSerial {
  Cycles serial = 0;
  Cycles busy = 0;
  Cycles first_ext_occupancy = 0; ///< read-channel slice of the first read
  Cycles read_occ = 0;
  Cycles write_occ = 0;
  OpCounts ops;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t byte_hops = 0;
};

PhaseSerial phase_serial(const ChipConfig& cfg, const ep::CostModel& cost,
                         const MappingSpec& spec, const CoreSpec& core,
                         const CorePhase& ph) {
  PhaseSerial out;
  const Coord here = coord_of(cfg, core.id);
  const Coord port{cfg.rows / 2, cfg.cols - 1};
  const auto hops = static_cast<Cycles>(hop_distance(here, port)) *
                    cfg.hop_latency;

  for (const ComputeBlock& cb : ph.compute) {
    out.busy += cb.count * cost.cycles(cb.ops);
    out.ops += cb.ops * cb.count;
  }
  Cycles other = out.busy;
  Cycles overlapped_occ = 0;
  Cycles overlapped_fill = 0;
  for (const DmaRead& d : ph.dma_reads) {
    const Cycles ser = cfg.cycles_for_bytes_on_elink(d.seg_bytes);
    const Cycles occ = static_cast<Cycles>(d.segments) * ser;
    const Cycles burst =
        cfg.dma_setup_cycles + cfg.ext_read_latency + occ + hops;
    if (out.first_ext_occupancy == 0 && d.count > 0)
      out.first_ext_occupancy = occ;
    out.read_occ += d.count * occ;
    out.read_bytes += d.count * d.segments * d.seg_bytes;
    out.byte_hops += d.count * d.segments * d.seg_bytes *
                     static_cast<std::uint64_t>(hop_distance(here, port));
    if (d.overlapped) {
      // The burst streams under the previous row's compute; the core only
      // pays the pipeline fill of the first burst, plus any shortfall when
      // the port is slower than the ALU (max() below).
      overlapped_occ += d.count * occ;
      overlapped_fill = std::max(overlapped_fill, burst);
    } else {
      other += d.count * burst;
    }
  }
  for (const BlockingRead& b : ph.blocking_reads) {
    const Cycles ser = cfg.cycles_for_bytes_on_elink(b.bytes_each);
    const Cycles occ = static_cast<Cycles>(b.transactions) *
                       std::max(ser, cfg.ext_random_occupancy);
    if (out.first_ext_occupancy == 0 && b.count > 0)
      out.first_ext_occupancy = occ;
    other += b.count * b.transactions *
             (cfg.ext_read_latency + ser + 2 * hops);
    out.read_occ += b.count * occ;
    out.read_bytes += b.count * b.transactions * b.bytes_each;
    out.byte_hops += b.count * b.transactions * b.bytes_each *
                     static_cast<std::uint64_t>(hop_distance(here, port));
  }
  for (const PostedWrite& w : ph.writes) {
    const Cycles ser = cfg.cycles_for_bytes_on_elink(w.bytes);
    other += w.count * std::max(cfg.ext_write_issue, ser);
    out.write_occ += w.count * ser;
    out.write_bytes += w.count * w.bytes;
    out.byte_hops += w.count * w.bytes *
                     static_cast<std::uint64_t>(hop_distance(here, port));
  }
  for (const ChannelTraffic& s : ph.sends) {
    const ChannelDecl& ch = spec.channels[s.channel];
    other += s.messages * cfg.cycles_for_bytes_on_link(ch.msg_bytes);
    out.byte_hops += s.messages * ch.msg_bytes *
                     static_cast<std::uint64_t>(hop_distance(
                         coord_of(cfg, ch.producer),
                         coord_of(cfg, ch.consumer)));
  }
  out.serial = std::max(other, overlapped_occ) + overlapped_fill;
  return out;
}

/// Flag round trip that the closing barrier adds past the slowest member:
/// arrival write to the master plus the farthest-corner release.
Cycles barrier_overhead(const ChipConfig& cfg, const BarrierDecl& bar) {
  const Coord master{0, 0};
  Cycles arrive = 0;
  for (int m : bar.members) {
    const Coord c = coord_of(cfg, m);
    if (c == master) continue;
    arrive = std::max(
        arrive, static_cast<Cycles>(hop_distance(c, master)) *
                        cfg.hop_latency +
                    cfg.cycles_for_bytes_on_link(8));
  }
  const Cycles release =
      static_cast<Cycles>((cfg.rows - 1) + (cfg.cols - 1)) * cfg.hop_latency +
      2;
  return arrive + release;
}

/// Pipeline-fill estimate for channel pipelines: the longest chain of
/// (link delivery + downstream per-message service) a message traverses
/// after the bottleneck stage produces its last one.
Cycles pipeline_fill(const MappingSpec& spec,
                     const std::vector<CorePrediction>& cores) {
  if (spec.channels.empty()) return 0;
  std::map<int, Cycles> per_msg;   // consumer core -> service per message
  std::map<int, std::uint64_t> received;
  for (const CoreSpec& c : spec.cores)
    for (const CorePhase& ph : c.phases)
      for (const ChannelTraffic& r : ph.recvs) received[c.id] += r.messages;
  for (const CorePrediction& cp : cores) {
    auto it = received.find(cp.id);
    if (it != received.end() && it->second > 0)
      per_msg[cp.id] = cp.serial / static_cast<Cycles>(it->second);
  }
  // Longest path over the channel DAG by memoised DFS (cycles cut short —
  // the deadlock checker owns cyclic topologies).
  std::map<int, std::vector<std::size_t>> out_edges;
  for (std::size_t i = 0; i < spec.channels.size(); ++i)
    out_edges[spec.channels[i].producer].push_back(i);
  std::map<int, Cycles> memo;
  std::map<int, bool> visiting;
  auto dfs = [&](auto&& self, int core) -> Cycles {
    auto it = memo.find(core);
    if (it != memo.end()) return it->second;
    if (visiting[core]) return 0;
    visiting[core] = true;
    Cycles best = 0;
    for (std::size_t ci : out_edges[core]) {
      const ChannelDecl& ch = spec.channels[ci];
      const Cycles edge =
          static_cast<Cycles>(hop_distance(coord_of(spec.cfg, ch.producer),
                                           coord_of(spec.cfg, ch.consumer))) *
              spec.cfg.hop_latency +
          spec.cfg.cycles_for_bytes_on_link(ch.msg_bytes) +
          (per_msg.count(ch.consumer) != 0 ? per_msg[ch.consumer] : 0) +
          self(self, ch.consumer);
      best = std::max(best, edge);
    }
    visiting[core] = false;
    memo[core] = best;
    return best;
  };
  Cycles fill = 0;
  for (const CoreSpec& c : spec.cores) fill = std::max(fill, dfs(dfs, c.id));
  return fill;
}

} // namespace

CostPrediction predict_cost(const MappingSpec& spec) {
  const ChipConfig& cfg = spec.cfg;
  const ep::CostModel cost;
  CostPrediction out;

  // Per-core / per-phase uncontended serial times.
  std::vector<std::string> group_order;
  std::map<std::string, std::vector<std::pair<const CoreSpec*, PhaseSerial>>>
      groups;
  std::map<std::string, int> group_barrier;
  for (const CoreSpec& c : spec.cores) {
    CorePrediction cp;
    cp.id = c.id;
    cp.role = c.role;
    for (const CorePhase& ph : c.phases) {
      const PhaseSerial ps = phase_serial(cfg, cost, spec, c, ph);
      cp.busy += ps.busy;
      cp.serial += ps.serial;
      cp.ops += ps.ops;
      out.ext_read_bytes += ps.read_bytes;
      out.ext_write_bytes += ps.write_bytes;
      out.byte_hops += ps.byte_hops;
      if (groups.find(ph.name) == groups.end()) group_order.push_back(ph.name);
      groups[ph.name].emplace_back(&c, ps);
      if (ph.barrier >= 0) group_barrier[ph.name] = ph.barrier;
    }
    // Barrier arrival flags (8 bytes to the master per crossing).
    const Coord master{0, 0};
    for (const SyncOp& op : c.sync)
      if (op.kind == SyncOp::Kind::kBarrier)
        out.byte_hops += op.count * 8 *
                         static_cast<std::uint64_t>(hop_distance(
                             coord_of(cfg, c.id), master));
    out.cores.push_back(cp);
  }

  if (!spec.barriers.empty()) {
    // SPMD: phases are barrier-aligned; the total is the sum of per-phase
    // makespans.
    for (const std::string& name : group_order) {
      PhasePrediction pp;
      pp.name = name;
      Cycles convoy_sum = 0;
      Cycles convoy_max = 0;
      for (const auto& entry : groups[name]) {
        const PhaseSerial& ps = entry.second;
        pp.serial_max = std::max(pp.serial_max, ps.serial);
        pp.read_port += ps.read_occ;
        pp.write_port += ps.write_occ;
        convoy_sum += ps.first_ext_occupancy;
        convoy_max = std::max(convoy_max, ps.first_ext_occupancy);
      }
      pp.convoy = convoy_sum - convoy_max;
      auto bit = group_barrier.find(name);
      if (bit != group_barrier.end() &&
          bit->second < static_cast<int>(spec.barriers.size()))
        pp.barrier_overhead = barrier_overhead(
            cfg, spec.barriers[static_cast<std::size_t>(bit->second)]);
      pp.makespan =
          std::max({pp.serial_max + pp.convoy, pp.read_port, pp.write_port}) +
          pp.barrier_overhead;
      out.makespan += pp.makespan;
      out.phases.push_back(std::move(pp));
    }
  } else {
    // Barrier-free (GBP, the MPMD pipeline): slowest core end to end, a
    // t=0 convoy on the ext port, and the drain of the channel pipeline.
    PhasePrediction pp;
    pp.name = spec.cores.size() == 1 ? "sequential" : "steady-state";
    Cycles convoy_sum = 0;
    Cycles convoy_max = 0;
    for (const CoreSpec& c : spec.cores) {
      Cycles first_occ = 0;
      for (const CorePhase& ph : c.phases) {
        const PhaseSerial ps = phase_serial(cfg, cost, spec, c, ph);
        if (first_occ == 0) first_occ = ps.first_ext_occupancy;
        pp.read_port += ps.read_occ;
        pp.write_port += ps.write_occ;
      }
      convoy_sum += first_occ;
      convoy_max = std::max(convoy_max, first_occ);
    }
    for (const CorePrediction& cp : out.cores)
      pp.serial_max = std::max(pp.serial_max, cp.serial);
    pp.convoy = convoy_sum - convoy_max;
    const Cycles fill = pipeline_fill(spec, out.cores);
    pp.makespan =
        std::max({pp.serial_max + pp.convoy, pp.read_port, pp.write_port}) +
        fill;
    out.makespan = pp.makespan;
    out.phases.push_back(std::move(pp));
  }

  // Energy: ep::compute_energy over the predicted counters.
  const ep::EnergyParams p{};
  EnergyPrediction& e = out.energy;
  for (const CorePrediction& cp : out.cores) {
    e.core_active_j +=
        static_cast<double>(cp.busy) * p.core_active_pj_per_cycle * kPicojoule;
    const Cycles idle = out.makespan > cp.busy ? out.makespan - cp.busy : 0;
    e.core_idle_j +=
        static_cast<double>(idle) * p.core_idle_pj_per_cycle * kPicojoule;
    e.alu_j += (static_cast<double>(cp.ops.fp_issues()) * p.flop_pj +
                static_cast<double>(cp.ops.ialu) * p.ialu_pj +
                static_cast<double>(cp.ops.load + cp.ops.store) *
                    p.ldst_local_pj) *
               kPicojoule;
  }
  e.noc_j = static_cast<double>(out.byte_hops) * p.noc_pj_per_byte_hop *
            kPicojoule;
  e.elink_j = static_cast<double>(out.ext_read_bytes + out.ext_write_bytes) *
              p.elink_pj_per_byte * kPicojoule;
  const double secs = cfg.seconds(out.makespan);
  e.static_j = p.chip_static_w * secs;
  e.avg_watts = secs > 0.0 ? e.total_j() / secs : 0.0;
  return out;
}

} // namespace esarp::analysis
