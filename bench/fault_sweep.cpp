// Degradation curve under seeded fault injection (docs/fault-injection.md):
// the FFBP SPMD mapping swept across DMA fault rates, plus one fail-stop
// point. At every rate the resilient runtime must finish with the fault-free
// image bit-identical (all transfer faults recover exactly) while the
// makespan grows with the retry traffic — the curve this bench reports. The
// final point fail-stops a core mid-merge to show graceful degradation:
// survivors repartition the remaining rows instead of deadlocking.
//
// Everything here is cycle-deterministic: same seed, same schedule, same
// manifest — CI runs the sweep twice and diffs the manifests at zero
// tolerance.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"
#include "epiphany/machine_metrics.hpp"

namespace {

double image_rmse(const esarp::Array2D<esarp::cf32>& a,
                  const esarp::Array2D<esarp::cf32>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(a.flat()[i] - b.flat()[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(std::max<std::size_t>(
                             a.size(), 1)));
}

} // namespace

static int bench_body() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();
  constexpr int kCores = 16;
  constexpr std::uint64_t kSeed = 2026;

  struct Point {
    const char* label;
    double dma_rate = 0.0; ///< split 2:1 between corrupt and drop
    bool fail_stop = false;
  };
  const std::vector<Point> points = {
      {"clean", 0.0},        {"1e-4", 1e-4}, {"3e-4", 3e-4},
      {"1e-3", 1e-3},        {"3e-3", 3e-3}, {"1e-2", 1e-2},
      {"fail-stop", 1e-4, true},
  };

  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "fault sweep: " << points.size() << " campaign(s) ("
            << pool.jobs() << " host thread(s))...\n";
  WallTimer sweep_timer;
  auto results = pool.run(points.size(), [&](std::size_t i) {
    core::FfbpMapOptions opt;
    opt.n_cores = kCores;
    ep::ChipConfig cfg;
    cfg.power.enabled = true; // observes only; schedule hashes unchanged
    cfg.faults.seed = kSeed;
    cfg.faults.dma_corrupt_rate = points[i].dma_rate * 2.0 / 3.0;
    cfg.faults.dma_drop_rate = points[i].dma_rate / 3.0;
    if (points[i].fail_stop) {
      // Kill the last core a third of the way into the clean makespan —
      // deep enough that it owns finished rows, early enough that plenty
      // of its partition remains for the survivors to repartition.
      cfg.faults.fail_stops = {{kCores - 1, 100'000}};
    }
    return core::run_ffbp_epiphany(w.data, w.params, opt, cfg);
  });
  const double sweep_s = sweep_timer.elapsed_s();

  const auto& clean = results.front();
  Table t("FFBP under fault injection (seed " + std::to_string(kSeed) +
          ", " + std::to_string(kCores) + " cores)");
  t.header({"Campaign", "Time (ms)", "Slowdown", "Injected", "Retries",
            "Repart.", "Image RMSE"});
  CsvWriter csv(bench::out_dir() / "fault_sweep.csv",
                {"dma_rate", "fail_stops", "cycles", "slowdown", "injected",
                 "recovered", "retries", "repartitions", "rmse"});

  telemetry::RunManifest man("fault_sweep");
  std::uint64_t events = 0;
  bool all_recovered = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& res = results[i];
    const auto& f = res.faults;
    events += res.perf.engine_events;
    const double slowdown =
        static_cast<double>(res.cycles) / static_cast<double>(clean.cycles);
    const double rmse = image_rmse(res.image, clean.image);
    // Exact recovery == bit-identical image. Transfer faults must also
    // balance detected/recovered; a fail-stop "recovers" by repartition
    // (its detection has no retry-style recovered counterpart).
    all_recovered =
        all_recovered && rmse == 0.0 &&
        (points[i].fail_stop
             ? f.repartitions > 0 && f.failed_cores == 1
             : f.recovered == f.detected && f.failed_cores == 0);
    t.row({points[i].label, bench::ms(res.seconds), Table::num(slowdown, 3),
           Table::num(static_cast<double>(f.injected), 0),
           Table::num(static_cast<double>(f.retries), 0),
           Table::num(static_cast<double>(f.repartitions), 0),
           Table::num(rmse, 9)});
    csv.row_numeric({points[i].dma_rate,
                     static_cast<double>(points[i].fail_stop ? 1 : 0),
                     static_cast<double>(res.cycles), slowdown,
                     static_cast<double>(f.injected),
                     static_cast<double>(f.recovered),
                     static_cast<double>(f.retries),
                     static_cast<double>(f.repartitions), rmse});
    // Per-point results: every value deterministic, diffed by CI at zero
    // tolerance. Keys are prefixed by sweep index so the curve is ordered.
    const std::string p = "p" + std::to_string(i) + ".";
    man.add_result(p + "cycles", static_cast<double>(res.cycles));
    man.add_result(p + "injected", static_cast<double>(f.injected));
    man.add_result(p + "recovered", static_cast<double>(f.recovered));
    man.add_result(p + "retries", static_cast<double>(f.retries));
    man.add_result(p + "repartitions", static_cast<double>(f.repartitions));
    man.add_result(p + "failed_cores", static_cast<double>(f.failed_cores));
    man.add_result(p + "rmse", rmse);
    man.add_result(p + "schedule_hash_hi",
                   static_cast<double>(f.schedule_hash >> 32));
    man.add_result(p + "schedule_hash_lo",
                   static_cast<double>(f.schedule_hash & 0xffffffffULL));
  }

  // Headline manifest entry: the last rate point before the fail-stop run.
  auto& head = results[points.size() - 2];
  ep::fill_manifest(man, head.perf, head.energy);
  bench::add_workload(man, w.params);
  man.add_workload("n_cores", static_cast<double>(kCores));
  man.add_workload("seed", static_cast<double>(kSeed));
  bench::add_engine_stats(man, &head.metrics, events, sweep_s, pool.jobs());
  bench::add_power_results(
      man, head.power,
      static_cast<double>(w.params.n_pulses * w.params.n_range));
  man.set_metrics(&head.metrics);
  bench::write_manifest(man);

  t.note(all_recovered
             ? "every campaign recovered exactly: all images bit-identical "
               "to the clean run, including the repartitioned fail-stop "
               "campaign"
             : "WARNING: some campaigns left faults unrecovered");
  t.note("fault campaigns assign output rows to cores interleaved (so "
         "survivors can repartition), which balances the merge levels "
         "slightly better than the clean run's contiguous partition — a "
         "sub-1.0 slowdown at low rates is that scheduling difference, "
         "not free recovery");
  t.print(std::cout);
  return all_recovered ? 0 : 1;
}

int main() { return esarp::bench::guarded_main("fault_sweep", bench_body); }
