// Execution tracing for the simulated chip.
//
// When enabled (Machine::enable_tracing), every timed activity — compute
// blocks, external-memory stalls, DMA waits, channel blocking, barrier
// waits — is recorded as a per-core segment. Traces export to the Chrome
// tracing JSON format (load in chrome://tracing or https://ui.perfetto.dev)
// for visual inspection of pipeline behaviour, prefetch stalls and
// barrier imbalance.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "epiphany/config.hpp"

namespace esarp::ep {

enum class SegmentKind : std::uint8_t {
  kCompute,
  kExtRead,     ///< blocking SDRAM read stall
  kExtWrite,    ///< posted-write issue (incl. backpressure stall)
  kDmaWait,     ///< waiting on a DMA completion
  kChanSend,    ///< blocked in Channel::send (FIFO full) + injection
  kChanRecv,    ///< blocked in Channel::recv (FIFO empty / in flight)
  kBarrier,
};

[[nodiscard]] constexpr const char* to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kExtRead: return "ext-read";
    case SegmentKind::kExtWrite: return "ext-write";
    case SegmentKind::kDmaWait: return "dma-wait";
    case SegmentKind::kChanSend: return "chan-send";
    case SegmentKind::kChanRecv: return "chan-recv";
    case SegmentKind::kBarrier: return "barrier";
  }
  return "?";
}

struct TraceSegment {
  int core;
  SegmentKind kind;
  Cycles start;
  Cycles end;
};

class Tracer {
public:
  void enable() { enabled_ = true; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record a segment [start, end) on `core`. No-op while disabled or for
  /// empty segments.
  void add(int core, SegmentKind kind, Cycles start, Cycles end) {
    if (!enabled_ || end <= start) return;
    segments_.push_back({core, kind, start, end});
  }

  [[nodiscard]] const std::vector<TraceSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  void clear() { segments_.clear(); }

  /// Write the trace as Chrome tracing JSON ("traceEvents" array of
  /// complete 'X' events; one tid per core, timestamps in microseconds of
  /// chip time at the given clock).
  void write_chrome_json(const std::filesystem::path& path,
                         double clock_hz = 1e9) const;

  /// Busy (kCompute) cycles per core, for quick assertions.
  [[nodiscard]] Cycles total_cycles(SegmentKind kind) const;

private:
  bool enabled_ = false;
  std::vector<TraceSegment> segments_;
};

} // namespace esarp::ep
