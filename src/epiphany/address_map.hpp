// Epiphany 32-bit global address map.
//
// Every core's 32 KB local store is visible to all cores (and the host)
// through a flat map: bits [31:20] select the core (6-bit mesh row, 6-bit
// mesh column), bits [19:0] the offset inside that core's 1 MB aperture.
// Addresses below 1 MB alias the issuing core's own memory; a configurable
// high window maps the board SDRAM. Mirrors the E16G3 datasheet layout
// (first core at mesh coordinate (32, 8), i.e. core id 0x808).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "epiphany/config.hpp"

namespace esarp::ep {

using Addr = std::uint32_t;

enum class Region : std::uint8_t {
  kLocalAlias, ///< [0, 1MB): issuing core's own aperture
  kCore,       ///< another (or own) core's aperture via global id
  kExternal,   ///< board SDRAM window
  kInvalid,
};

struct Decoded {
  Region region = Region::kInvalid;
  Coord coord;       ///< valid for kCore
  Addr offset = 0;   ///< offset within aperture / SDRAM window
};

class AddressMap {
public:
  /// `ext_base == 0` selects the default SDRAM window: 0x8E000000 (the
  /// Parallella board map) when it does not collide with a core aperture,
  /// otherwise the first 1 MB boundary above the last core (larger
  /// meshes, e.g. 8x8, extend past the E16 window).
  explicit AddressMap(const ChipConfig& cfg, int first_row = 32,
                      int first_col = 8, Addr ext_base = 0,
                      Addr ext_size = 32u * 1024 * 1024);

  /// Global base address of a core's 1 MB aperture.
  [[nodiscard]] Addr core_base(Coord c) const;

  /// Global address of `offset` within core `c`'s local memory.
  [[nodiscard]] Addr encode_core(Coord c, Addr offset) const;

  /// Global address of `offset` within the external SDRAM window.
  [[nodiscard]] Addr encode_external(Addr offset) const;

  /// Classify a global address. Never throws; unknown -> kInvalid.
  [[nodiscard]] Decoded decode(Addr addr) const;

  /// Whether `addr` falls in any core's *local-memory* range (not just the
  /// aperture, which is mostly unmapped above local_mem_bytes).
  [[nodiscard]] bool is_mapped(Addr addr) const;

  [[nodiscard]] Addr external_base() const { return ext_base_; }
  [[nodiscard]] Addr external_size() const { return ext_size_; }

private:
  static constexpr Addr kApertureBits = 20; // 1 MB per core
  /// Aperture base of core (row, col) at index row * cols + col; filled at
  /// construction so the hot translation path is a table lookup.
  std::vector<Addr> bases_;
  ChipConfig cfg_;
  int first_row_;
  int first_col_;
  Addr ext_base_;
  Addr ext_size_;
};

} // namespace esarp::ep
