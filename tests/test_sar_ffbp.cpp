// Tests for the FFBP implementation: merge geometry (paper eqs. 1-4),
// level bookkeeping, focusing quality versus GBP, interpolation variants,
// and operation accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"
#include "sar/interp.hpp"
#include "sar/merge_kernel.hpp"
#include "sar/scene.hpp"

namespace esarp::sar {
namespace {

std::pair<std::size_t, std::size_t> find_peak(const Array2D<cf32>& img) {
  std::pair<std::size_t, std::size_t> best{0, 0};
  double mag = -1.0;
  for (std::size_t i = 0; i < img.rows(); ++i)
    for (std::size_t j = 0; j < img.cols(); ++j)
      if (std::abs(img(i, j)) > mag) {
        mag = std::abs(img(i, j));
        best = {i, j};
      }
  return best;
}

TEST(MergeGeometry, MatchesLawOfCosinesReference) {
  // Pick a point P in the plane; (r, theta) about the parent centre at the
  // origin must map to the exact polar coordinates of P about the child
  // centres at (-d, 0) and (+d, 0).
  const double d = 8.0;
  for (double theta = 1.35; theta < 1.85; theta += 0.05) {
    for (double r = 4000.0; r < 6000.0; r += 333.0) {
      const double px = r * std::cos(theta);
      const double py = r * std::sin(theta);
      const double r1_ref = std::hypot(px + d, py);
      const double r2_ref = std::hypot(px - d, py);
      const double th1_ref = std::atan2(py, px + d);
      const double th2_ref = std::atan2(py, px - d);

      const float cr =
          2.0f * static_cast<float>(d) * std::cos(static_cast<float>(theta));
      const MergeGeom g = merge_geometry(
          static_cast<float>(r), cr, static_cast<float>(d * d),
          static_cast<float>(1.0 / (2.0 * d)));
      EXPECT_NEAR(g.r1, r1_ref, 0.05) << "r=" << r << " theta=" << theta;
      EXPECT_NEAR(g.r2, r2_ref, 0.05);
      EXPECT_NEAR(g.theta1, th1_ref, 2e-4);
      EXPECT_NEAR(g.theta2, th2_ref, 2e-4);
    }
  }
}

TEST(MergeGeometry, BroadsideIsSymmetric) {
  // At theta = pi/2 the two children see mirror-symmetric coordinates.
  const float d = 4.0f;
  const MergeGeom g = merge_geometry(5000.0f, 0.0f, d * d, 1.0f / (2 * d));
  EXPECT_FLOAT_EQ(g.r1, g.r2);
  EXPECT_NEAR(g.theta1 + g.theta2, 3.14159265f, 1e-4f);
}

TEST(RangePhaseTable, UnitModulusAndCorrectPhase) {
  RadarParams p = test_params(4, 64);
  const auto table = range_phase_table(p);
  ASSERT_EQ(table.size(), p.n_range);
  const double k = 4.0 * kPi / p.wavelength_m();
  for (std::size_t j = 0; j < table.size(); j += 7) {
    EXPECT_NEAR(std::abs(table[j]), 1.0f, 1e-5f);
    const double expect = std::fmod(
        k * (p.near_range_m + static_cast<double>(j) * p.range_bin_m),
        2.0 * kPi);
    EXPECT_NEAR(std::remainder(std::arg(table[j]) - expect, 2.0 * kPi), 0.0,
                1e-4);
  }
}

TEST(InitialSubapertures, OnePerPulseWithDeramp) {
  RadarParams p = test_params(8, 32);
  Array2D<cf32> data(8, 32);
  data(3, 10) = {2.0f, 0.0f};
  const auto subs = initial_subapertures(data, p);
  ASSERT_EQ(subs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(subs[i].level, 0u);
    EXPECT_EQ(subs[i].n_theta(), 1u);
    EXPECT_EQ(subs[i].first_pulse, i);
    EXPECT_DOUBLE_EQ(subs[i].x_center, p.pulse_x(i));
  }
  // Deramp preserves magnitude.
  EXPECT_NEAR(std::abs(subs[3].data(0, 10)), 2.0f, 1e-5f);
  EXPECT_NEAR(std::abs(subs[3].data(0, 11)), 0.0f, 1e-6f);
}

TEST(MergePair, ValidatesAdjacency) {
  RadarParams p = test_params(8, 32);
  Array2D<cf32> data(8, 32);
  auto subs = initial_subapertures(data, p);
  FfbpOptions opt;
  EXPECT_NO_THROW((void)merge_pair(subs[0], subs[1], p, opt));
  EXPECT_THROW((void)merge_pair(subs[0], subs[2], p, opt),
               ContractViolation); // not adjacent
  EXPECT_THROW((void)merge_pair(subs[1], subs[0], p, opt),
               ContractViolation); // wrong order
}

TEST(MergePair, DoublesAngularResolution) {
  RadarParams p = test_params(8, 32);
  Array2D<cf32> data(8, 32);
  auto subs = initial_subapertures(data, p);
  FfbpOptions opt;
  OpCounts tally;
  const auto parent = merge_pair(subs[2], subs[3], p, opt, &tally);
  EXPECT_EQ(parent.level, 1u);
  EXPECT_EQ(parent.n_theta(), 2u);
  EXPECT_EQ(parent.n_pulses, 2u);
  EXPECT_DOUBLE_EQ(parent.x_center,
                   0.5 * (subs[2].x_center + subs[3].x_center));
  EXPECT_GT(tally.flops(), 0u);
}

TEST(Ffbp, FocusesSingleTargetNearGbpPeak) {
  RadarParams p = test_params(64, 201);
  Scene s;
  s.targets = {{2.0, p.near_range_m + 120.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const auto fres = ffbp(data, p);
  const auto gres = gbp(data, p);
  const auto [fi, fj] = find_peak(fres.image.data);
  const auto [gi, gj] = find_peak(gres.image.data);
  EXPECT_NEAR(static_cast<double>(fi), static_cast<double>(gi), 3.0);
  EXPECT_NEAR(static_cast<double>(fj), static_cast<double>(gj), 2.0);
}

TEST(Ffbp, RunsAllLevelsWithConstantStorage) {
  RadarParams p = test_params(32, 101);
  const auto data = simulate_compressed(p, six_target_scene(p));
  const auto res = ffbp(data, p);
  EXPECT_EQ(res.image.n_theta(), 32u);
  EXPECT_EQ(res.image.n_range(), 101u);
  ASSERT_EQ(res.levels.size(), 5u);
  for (const auto& l : res.levels) {
    EXPECT_EQ(l.pixels, 32u * 101u); // constant pyramid size
    EXPECT_GT(l.ops.flops(), 0u);
  }
}

TEST(Ffbp, GbpHasBetterQualityThanNearestNeighbourFfbp) {
  // The paper's Fig. 7 claim: FFBP with simplified interpolation degrades
  // image quality relative to GBP. Entropy (lower = sharper) quantifies it.
  RadarParams p = test_params(64, 201);
  const auto data = simulate_compressed(p, six_target_scene(p));
  const auto f = ffbp(data, p);
  const auto g = gbp(data, p);
  EXPECT_GT(image_entropy(f.image.data), image_entropy(g.image.data));
  // But FFBP still focuses: far sharper than raw data.
  EXPECT_LT(image_entropy(f.image.data), image_entropy(data));
}

TEST(Ffbp, PhaseCompensationImprovesQuality) {
  RadarParams p = test_params(64, 201);
  const auto data = simulate_compressed(p, six_target_scene(p));
  FfbpOptions plain;
  FfbpOptions comp;
  comp.phase_compensate = true;
  const auto f_plain = ffbp(data, p, plain);
  const auto f_comp = ffbp(data, p, comp);
  EXPECT_LT(image_entropy(f_comp.image.data),
            image_entropy(f_plain.image.data));
}

TEST(Ffbp, CubicInterpolationImprovesQualityOverNearest) {
  // "the quality ... could be considerably improved by using more complex
  // interpolation kernels such as cubic interpolation" (paper Section V-B).
  RadarParams p = test_params(64, 201);
  const auto data = simulate_compressed(p, six_target_scene(p));
  FfbpOptions nn;
  FfbpOptions cubic;
  cubic.interp = Interp::kCubic;
  const auto f_nn = ffbp(data, p, nn);
  const auto f_cubic = ffbp(data, p, cubic);
  const auto g = gbp(data, p);
  const double err_nn = relative_rmse(f_nn.image.data, g.image.data);
  const double err_cubic = relative_rmse(f_cubic.image.data, g.image.data);
  EXPECT_LT(err_cubic, err_nn);
}

TEST(Ffbp, InterpolationVariantsCostMore) {
  FfbpOptions nn, lin, cub, comp;
  lin.interp = Interp::kLinear;
  cub.interp = Interp::kCubic;
  comp.phase_compensate = true;
  const auto base = merge_pixel_ops(nn).flops();
  EXPECT_GT(merge_pixel_ops(lin).flops(), base);
  EXPECT_GT(merge_pixel_ops(cub).flops(), merge_pixel_ops(lin).flops());
  EXPECT_GT(merge_pixel_ops(comp).flops(), base);
}

TEST(Ffbp, PhaseCompensationRequiresNearest) {
  RadarParams p = test_params(8, 32);
  Array2D<cf32> data(8, 32);
  auto subs = initial_subapertures(data, p);
  FfbpOptions bad;
  bad.interp = Interp::kCubic;
  bad.phase_compensate = true;
  EXPECT_THROW((void)merge_pair(subs[0], subs[1], p, bad),
               ContractViolation);
}

TEST(Ffbp, ZeroInputGivesZeroImage) {
  RadarParams p = test_params(16, 51);
  Array2D<cf32> data(16, 51);
  const auto res = ffbp(data, p);
  for (const auto& px : res.image.data.flat())
    EXPECT_EQ(std::abs(px), 0.0f);
}

TEST(Ffbp, OpAccountingMatchesLevelSum) {
  RadarParams p = test_params(16, 51);
  const auto data = simulate_compressed(p, six_target_scene(p));
  const auto res = ffbp(data, p);
  OpCounts sum;
  for (const auto& l : res.levels) sum += l.ops;
  EXPECT_EQ(sum, res.ops);
  EXPECT_EQ(res.host_work.scattered_reads,
            2ull * res.levels.size() * p.n_pulses * p.n_range);
}

TEST(Ffbp, MergeLevelGeomMatchesMergePairConstants) {
  RadarParams p = test_params(16, 51);
  for (std::size_t level = 1; level <= p.merge_levels(); ++level) {
    const MergeLevelGeom g = merge_level_geom(p, level);
    const double child_span =
        static_cast<double>(std::size_t{1} << (level - 1)) *
        p.pulse_spacing_m;
    EXPECT_FLOAT_EQ(g.d, static_cast<float>(0.5 * child_span));
    EXPECT_EQ(g.n_theta_parent, std::size_t{1} << level);
    EXPECT_EQ(g.child.n_theta, static_cast<int>(g.n_theta_parent / 2));
  }
}

TEST(Neville, ExactOnCubicPolynomials) {
  // Neville's 4-point interpolation reproduces any cubic exactly.
  const auto poly = [](float x) {
    return cf32{2.0f + x * (0.5f + x * (-1.0f + 0.25f * x)),
                -1.0f + x * (1.0f + x * (0.5f - 0.1f * x))};
  };
  cf32 y[4] = {poly(0), poly(1), poly(2), poly(3)};
  for (float t = 0.0f; t <= 3.01f; t += 0.125f) {
    const cf32 v = neville4(y, t);
    const cf32 e = poly(t);
    EXPECT_NEAR(v.real(), e.real(), 1e-4f) << "t=" << t;
    EXPECT_NEAR(v.imag(), e.imag(), 1e-4f) << "t=" << t;
  }
}

TEST(Neville, InterpolatesNodesExactly) {
  cf32 y[4] = {{1, 2}, {3, -4}, {-5, 6}, {7, 8}};
  for (int i = 0; i < 4; ++i) {
    const cf32 v = neville4(y, static_cast<float>(i));
    EXPECT_NEAR(v.real(), y[i].real(), 1e-4f);
    EXPECT_NEAR(v.imag(), y[i].imag(), 1e-4f);
  }
}

TEST(Lerp, MidpointAndEndpoints) {
  const cf32 a{1.0f, 0.0f}, b{3.0f, 4.0f};
  EXPECT_EQ(lerp(a, b, 0.0f), a);
  EXPECT_EQ(lerp(a, b, 1.0f), b);
  const cf32 mid = lerp(a, b, 0.5f);
  EXPECT_FLOAT_EQ(mid.real(), 2.0f);
  EXPECT_FLOAT_EQ(mid.imag(), 2.0f);
}

} // namespace
} // namespace esarp::sar
