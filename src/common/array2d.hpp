// Owning 2-D array and non-owning strided 2-D view.
//
// Row-major storage. Rows correspond to the slow dimension (for SAR data:
// pulses / azimuth), columns to the fast dimension (range bins), matching
// the layout the paper streams through Epiphany local memory banks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace esarp {

/// Non-owning view of a (possibly strided) 2-D block of T.
/// Cheap to copy; never allocates. Mutability follows T's constness.
template <typename T>
class View2D {
public:
  View2D() = default;
  View2D(T* data, std::size_t rows, std::size_t cols, std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), stride_(row_stride) {
    ESARP_EXPECTS(row_stride >= cols);
  }
  View2D(T* data, std::size_t rows, std::size_t cols)
      : View2D(data, rows, cols, cols) {}

  /// Implicit view-of-const conversion (View2D<T> -> View2D<const T>).
  operator View2D<const T>() const
    requires(!std::is_const_v<T>)
  {
    return {data_, rows_, cols_, stride_};
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t row_stride() const { return stride_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] T* data() const { return data_; }

  T& operator()(std::size_t r, std::size_t c) const {
    ESARP_EXPECTS(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// One row as a contiguous span.
  [[nodiscard]] std::span<T> row(std::size_t r) const {
    ESARP_EXPECTS(r < rows_);
    return {data_ + r * stride_, cols_};
  }

  /// Rectangular sub-view [r0, r0+nr) x [c0, c0+nc).
  [[nodiscard]] View2D subview(std::size_t r0, std::size_t c0, std::size_t nr,
                               std::size_t nc) const {
    ESARP_EXPECTS(r0 + nr <= rows_ && c0 + nc <= cols_);
    return {data_ + r0 * stride_ + c0, nr, nc, stride_};
  }

private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Owning, contiguous, row-major 2-D array.
template <typename T>
class Array2D {
public:
  Array2D() = default;
  Array2D(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), store_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] bool empty() const { return store_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    ESARP_EXPECTS(r < rows_ && c < cols_);
    return store_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    ESARP_EXPECTS(r < rows_ && c < cols_);
    return store_[r * cols_ + c];
  }

  [[nodiscard]] std::span<T> row(std::size_t r) {
    ESARP_EXPECTS(r < rows_);
    return {store_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    ESARP_EXPECTS(r < rows_);
    return {store_.data() + r * cols_, cols_};
  }

  [[nodiscard]] T* data() { return store_.data(); }
  [[nodiscard]] const T* data() const { return store_.data(); }
  [[nodiscard]] std::span<T> flat() { return {store_.data(), store_.size()}; }
  [[nodiscard]] std::span<const T> flat() const {
    return {store_.data(), store_.size()};
  }

  [[nodiscard]] View2D<T> view() { return {store_.data(), rows_, cols_}; }
  [[nodiscard]] View2D<const T> view() const {
    return {store_.data(), rows_, cols_};
  }
  [[nodiscard]] View2D<T> subview(std::size_t r0, std::size_t c0,
                                  std::size_t nr, std::size_t nc) {
    return view().subview(r0, c0, nr, nc);
  }
  [[nodiscard]] View2D<const T> subview(std::size_t r0, std::size_t c0,
                                        std::size_t nr, std::size_t nc) const {
    return view().subview(r0, c0, nr, nc);
  }

  void fill(const T& v) { std::fill(store_.begin(), store_.end(), v); }

  friend bool operator==(const Array2D& a, const Array2D& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.store_ == b.store_;
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> store_;
};

} // namespace esarp
