// Machine-level simulator tests: compute timing, external memory ops, DMA
// double buffering, channels, barriers, deadlock detection, counters and
// the energy model.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"

namespace esarp::ep {
namespace {

TEST(Machine, ComputeAdvancesTimePerCostModel) {
  Machine m;
  OpCounts ops{.fadd = 50, .fmul = 50}; // 100 FPU issues, dual-issue bound
  m.launch(0, [ops](CoreCtx& ctx) -> Task { co_await ctx.compute(ops); });
  const Cycles end = m.run();
  EXPECT_EQ(end, m.cost_model().cycles(ops));
  EXPECT_EQ(m.core(0).counters.busy, end);
  EXPECT_EQ(m.core(0).counters.ops.fadd, 50u);
}

TEST(CostModel, DualIssueTakesMaxOfStreams) {
  CostModel cm({.stall_overhead = 0.0, .branch_penalty = 0.0});
  EXPECT_EQ(cm.cycles({.fadd = 100}), 100u);
  EXPECT_EQ(cm.cycles({.ialu = 60, .load = 40}), 100u);
  // FPU and IALU streams overlap.
  EXPECT_EQ(cm.cycles({.fadd = 100, .ialu = 60, .load = 40}), 100u);
  // FMA occupies one issue slot.
  EXPECT_EQ(cm.cycles({.fma = 80}), 80u);
}

TEST(CostModel, BranchesAddPenalty) {
  CostModel cm({.stall_overhead = 0.0, .branch_penalty = 2.0});
  EXPECT_EQ(cm.cycles({.fadd = 10, .branch = 5}), 20u);
}

TEST(Machine, SequentialComputesAccumulate) {
  Machine m;
  m.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 100});
    co_await ctx.compute({.fadd = 100});
  });
  Machine m2;
  m2.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 200});
  });
  EXPECT_EQ(m.run(), m2.run());
}

TEST(Machine, ParallelCoresOverlapInTime) {
  auto heavy = [](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 10000});
  };
  Machine m1;
  m1.launch(0, heavy);
  const Cycles solo = m1.run();
  Machine m16;
  for (int c = 0; c < 16; ++c) m16.launch(c, heavy);
  const Cycles all = m16.run();
  EXPECT_EQ(solo, all); // independent compute: no slowdown
}

TEST(Machine, ExtReadMovesDataAndStalls) {
  Machine m;
  auto src = m.ext().alloc<int>(16);
  std::iota(src.begin(), src.end(), 0);
  int dst[16] = {};
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    co_await ctx.read_ext(dst, src.data(), sizeof(dst));
  });
  const Cycles end = m.run();
  EXPECT_GE(end, m.config().ext_read_latency);
  EXPECT_EQ(dst[7], 7);
  EXPECT_EQ(m.core(0).counters.ext_stall, end);
  EXPECT_EQ(m.core(0).counters.ext_read_bytes, sizeof(dst));
}

TEST(Machine, ExtWriteIsPostedAndMovesData) {
  Machine m;
  auto dst = m.ext().alloc<int>(16);
  int src[16];
  std::iota(src, src + 16, 100);
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    co_await ctx.write_ext(dst.data(), src, sizeof(src));
  });
  const Cycles end = m.run();
  EXPECT_LE(end, 16u); // posted: far cheaper than a read
  EXPECT_EQ(dst[15], 115);
}

TEST(Machine, GatherChargesPerTransaction) {
  Machine m1, m2;
  m1.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.read_ext_gather(1, 8);
  });
  m2.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.read_ext_gather(100, 8);
  });
  const Cycles one = m1.run();
  const Cycles hundred = m2.run();
  EXPECT_GE(hundred, 99 * one);
}

TEST(Machine, DmaOverlapsWithCompute) {
  // Start a DMA, compute meanwhile, then wait: total time should be close
  // to max(dma, compute), not the sum.
  Machine overlap;
  auto src = overlap.ext().alloc<cf32>(1001);
  Cycles dma_only = 0;
  {
    Machine m;
    auto s2 = m.ext().alloc<cf32>(1001);
    m.launch(0, [&](CoreCtx& ctx) -> Task {
      auto buf = ctx.local().alloc<cf32>(1001);
      DmaJob j = ctx.dma_read_ext(buf.data(), s2.data(), 8008);
      co_await ctx.wait(j);
    });
    dma_only = m.run();
  }
  overlap.launch(0, [&](CoreCtx& ctx) -> Task {
    auto buf = ctx.local().alloc<cf32>(1001);
    DmaJob j = ctx.dma_read_ext(buf.data(), src.data(), 8008);
    co_await ctx.compute({.fadd = 900}); // less than the DMA duration
    co_await ctx.wait(j);
  });
  const Cycles overlapped = overlap.run();
  EXPECT_LE(overlapped, dma_only + 50);
  EXPECT_GT(overlap.core(0).counters.dma_wait, 0u);
}

TEST(Machine, ChannelDeliversInOrderWithLatency) {
  Machine m;
  auto chan = m.make_channel<int>(/*consumer=*/1, 4);
  std::vector<int> received;
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 10; ++i) co_await chan->send(ctx, i);
  });
  m.launch(1, [&](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 10; ++i) received.push_back(co_await chan->recv(ctx));
  });
  const Cycles end = m.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_GT(end, 0u);
  EXPECT_EQ(chan->stats().messages, 10u);
}

TEST(Machine, ChannelBackpressuresFastProducer) {
  Machine m;
  auto chan = m.make_channel<int>(1, 2); // tiny FIFO
  Cycles producer_done = 0;
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 8; ++i) co_await chan->send(ctx, i);
    producer_done = ctx.now();
  });
  m.launch(1, [&](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 8; ++i) {
      (void)co_await chan->recv(ctx);
      co_await ctx.compute({.fadd = 1000}); // slow consumer
    }
  });
  m.run();
  // The producer cannot finish before the consumer has drained most slots.
  EXPECT_GT(producer_done, 4000u);
  EXPECT_GT(chan->stats().send_block_cycles, 0u);
}

TEST(Machine, ChannelToFarCoreTakesLonger) {
  auto run_one = [](int consumer) {
    Machine m;
    auto chan = m.make_channel<std::array<char, 64>>(consumer, 2);
    m.launch(0, [&chan](CoreCtx& ctx) -> Task {
      for (int i = 0; i < 100; ++i)
        co_await chan->send(ctx, std::array<char, 64>{});
    });
    m.launch(consumer, [&chan](CoreCtx& ctx) -> Task {
      for (int i = 0; i < 100; ++i) (void)co_await chan->recv(ctx);
    });
    return m.run();
  };
  EXPECT_LT(run_one(1), run_one(15)); // neighbour vs far corner
}

TEST(Machine, BarrierSynchronisesAllParties) {
  Machine m;
  auto bar = m.make_barrier(4);
  std::vector<Cycles> after(4);
  for (int c = 0; c < 4; ++c) {
    m.launch(c, [&, c](CoreCtx& ctx) -> Task {
      co_await ctx.compute({.fadd = static_cast<std::uint64_t>(100 * c)});
      co_await bar->arrive_and_wait(ctx);
      after[c] = ctx.now();
    });
  }
  m.run();
  // Everyone leaves the barrier at the same cycle, after the slowest.
  for (int c = 1; c < 4; ++c) EXPECT_EQ(after[c], after[0]);
  EXPECT_GE(after[0], 300u);
  EXPECT_EQ(bar->crossings(), 4u);
}

TEST(Machine, BarrierIsReusableAcrossIterations) {
  Machine m;
  auto bar = m.make_barrier(2);
  std::vector<int> order;
  for (int c = 0; c < 2; ++c) {
    m.launch(c, [&, c](CoreCtx& ctx) -> Task {
      for (int iter = 0; iter < 3; ++iter) {
        co_await ctx.compute({.fadd = static_cast<std::uint64_t>(
                                  100 * (c + 1) * (iter + 1))});
        co_await bar->arrive_and_wait(ctx);
        if (c == 0) order.push_back(iter);
      }
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(bar->generation(), 3u);
}

TEST(Machine, DeadlockIsDetected) {
  Machine m;
  auto chan = m.make_channel<int>(1, 1);
  m.launch(1, [&](CoreCtx& ctx) -> Task {
    (void)co_await chan->recv(ctx); // nobody ever sends
  });
  EXPECT_THROW(m.run(), SimDeadlock);
}

TEST(Machine, KernelExceptionPropagates) {
  Machine m;
  m.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 1});
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, LaunchValidation) {
  Machine m;
  auto prog = [](CoreCtx& ctx) -> Task { co_await ctx.idle(1); };
  m.launch(0, prog);
  EXPECT_THROW(m.launch(0, prog), ContractViolation); // duplicate core
  EXPECT_THROW(m.launch(99, prog), ContractViolation);
}

TEST(Machine, ReportAggregatesCounters) {
  Machine m;
  for (int c = 0; c < 4; ++c)
    m.launch(c, [](CoreCtx& ctx) -> Task {
      co_await ctx.compute({.fadd = 100, .fma = 50});
    });
  m.run();
  const PerfReport rep = m.report();
  EXPECT_EQ(rep.total_ops().fadd, 400u);
  EXPECT_EQ(rep.total_ops().flops(), 400u + 4 * 2 * 50u);
  EXPECT_GT(rep.makespan, 0u);
  EXPECT_GT(rep.utilization(), 0.9); // pure compute, no waiting
  EXPECT_FALSE(rep.summary().empty());
  EXPECT_FALSE(rep.per_core_table().empty());
}

TEST(Energy, BusyChipNearTwoWatts) {
  // The paper's Table-I figure for the E16G3: ~2 W at 1 GHz all-busy.
  const double peak = peak_chip_watts(ChipConfig{});
  EXPECT_GT(peak, 1.0);
  EXPECT_LT(peak, 3.0);
}

TEST(Energy, IdleCoresCostAlmostNothing) {
  // Same work on 1 core vs chip with 15 idle cores: energy should be
  // dominated by the active core (fine-grained clock gating).
  Machine m;
  m.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 1000000});
  });
  m.run();
  const EnergyReport e = compute_energy(m.report());
  EXPECT_GT(e.total_j(), 0.0);
  EXPECT_LT(e.core_idle_j, e.core_active_j);
  EXPECT_GT(e.avg_watts, 0.0);
  EXPECT_LT(e.avg_watts, 2.0); // far below the all-busy figure
}

TEST(Energy, MoreWorkMoreJoules) {
  auto joules_for = [](std::uint64_t n) {
    Machine m;
    m.launch(0, [n](CoreCtx& ctx) -> Task {
      co_await ctx.compute({.fadd = n});
    });
    m.run();
    return compute_energy(m.report()).total_j();
  };
  EXPECT_LT(joules_for(1000), joules_for(100000));
}

TEST(Machine, WriteRemoteMovesDataWithInjectCost) {
  Machine m;
  // The destination must live in the target core's local store — the
  // hazard sanitizer (ESARP_CHECK=1) flags windows into host memory.
  auto dst = m.core(m.id_of({0, 1})).mem().alloc<int>(1);
  const int src_value = 42;
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    co_await ctx.write_remote({0, 1}, dst.data(), &src_value, sizeof(int));
  });
  const Cycles end = m.run();
  EXPECT_EQ(dst[0], 42);
  EXPECT_LE(end, 4u); // writer only pays injection
}


TEST(Trace, DisabledByDefault) {
  Machine m;
  m.launch(0, [](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 100});
  });
  m.run();
  EXPECT_EQ(m.tracer().size(), 0u);
}

TEST(Trace, RecordsComputeAndWaitSegments) {
  Machine m;
  m.enable_tracing();
  auto chan = m.make_channel<int>(1, 2);
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 100});
    co_await chan->send(ctx, 7);
  });
  m.launch(1, [&](CoreCtx& ctx) -> Task {
    (void)co_await chan->recv(ctx);
  });
  m.run();
  EXPECT_GT(m.tracer().size(), 0u);
  // Compute cycles in the trace match the counter.
  EXPECT_EQ(m.tracer().total_cycles(SegmentKind::kCompute),
            m.core(0).counters.busy);
  // The receiver blocked waiting for the message.
  EXPECT_GT(m.tracer().total_cycles(SegmentKind::kChanRecv), 0u);
}

TEST(Trace, ChromeJsonExport) {
  Machine m;
  m.enable_tracing();
  auto src = m.ext().alloc<int>(64);
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    int buf[64];
    co_await ctx.read_ext(buf, src.data(), sizeof(buf));
    co_await ctx.compute({.fmul = 50});
  });
  m.run();
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_trace.json";
  m.tracer().write_chrome_json(path);
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  EXPECT_NE(content.find("compute"), std::string::npos);
  EXPECT_NE(content.find("ext-read"), std::string::npos);
  std::filesystem::remove(path);
}


TEST(Machine, ReadRemoteMovesDataAndStallsForRoundTrip) {
  Machine m;
  int remote_value = 99;
  int local_copy = 0;
  m.launch(0, [&](CoreCtx& ctx) -> Task {
    co_await ctx.read_remote({3, 3}, &local_copy, &remote_value,
                             sizeof(int));
  });
  const Cycles end = m.run();
  EXPECT_EQ(local_copy, 99);
  // Round trip across the mesh: strictly slower than a local access and
  // slower than the posted write direction.
  EXPECT_GE(end, 12u); // 6 hops out + 6 back at 1 cycle/hop
  EXPECT_GT(m.core(0).counters.ext_stall, 0u);
}

TEST(Machine, RemoteReadSlowerThanRemoteWrite) {
  // The asymmetry the paper's pipelines exploit: push with writes. Remote
  // windows target real local-store bytes on core (3,3) so the hazard
  // sanitizer accepts the traffic.
  Machine mw, mr;
  auto wdst = mw.core(mw.id_of({3, 3})).mem().alloc<int>(1);
  auto rsrc = mr.core(mr.id_of({3, 3})).mem().alloc<int>(1);
  int out = 0;
  const int v = 5;
  mw.launch(0, [&](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 100; ++i)
      co_await ctx.write_remote({3, 3}, wdst.data(), &v, sizeof(int));
  });
  mr.launch(0, [&](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 100; ++i)
      co_await ctx.read_remote({3, 3}, &out, rsrc.data(), sizeof(int));
  });
  EXPECT_LT(mw.run(), mr.run() / 3);
}

namespace watchdog_detail {
Task forever(Scheduler& s) {
  for (;;) co_await DelayFor{s, 1000}; // never terminates on its own
}
} // namespace watchdog_detail

TEST(Scheduler, WatchdogCatchesRunawaySimulation) {
  Scheduler s;
  Task t = watchdog_detail::forever(s);
  s.schedule_at(0, t.handle());
  EXPECT_THROW(s.run(50'000), ContractViolation);
}

} // namespace
} // namespace esarp::ep
