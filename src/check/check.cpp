#include "check/check.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <tuple>

#include "check/report.hpp"
#include "epiphany/external_memory.hpp"

namespace esarp::check {

namespace {

/// Truthy env var: set and not "0".
bool env_flag(const char* name, bool dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return dflt;
  return !(v[0] == '0' && v[1] == '\0');
}

std::string hex_range(std::size_t offset, std::size_t bytes) {
  std::ostringstream os;
  os << "[+0x" << std::hex << offset << ", +0x" << offset + bytes << ")";
  return os.str();
}

} // namespace

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << "[" << to_string(kind) << "] core " << core << " @ cycle " << cycle;
  if (!span.empty()) os << " (span " << span << ")";
  os << ": " << message;
  return os.str();
}

ep::CheckOptions options_with_env(ep::CheckOptions base) {
  if (std::getenv("ESARP_CHECK") != nullptr)
    base.enabled = env_flag("ESARP_CHECK", base.enabled);
  if (const char* s = std::getenv("ESARP_CHECK_SUPPRESS"))
    base.suppressions = s;
  if (const char* s = std::getenv("ESARP_CHECK_JSON")) base.json_out = s;
  if (std::getenv("ESARP_CHECK_ABORT") != nullptr)
    base.abort_on_hazard = env_flag("ESARP_CHECK_ABORT", base.abort_on_hazard);
  return base;
}

CheckContext::CheckContext(const ep::ChipConfig& cfg,
                           const ep::Scheduler& sched)
    : opt_(options_with_env(cfg.check)), sched_(sched) {
  cores_.resize(static_cast<std::size_t>(cfg.core_count()));
  if (!opt_.suppressions.empty())
    suppressions_ = load_suppressions(opt_.suppressions);
}

CheckContext::~CheckContext() {
  // Detach from any local memories that still point at us (the Machine
  // destroys cores after the context, so normally this is a no-op; it
  // matters when a test tears a context down early).
  for (CoreShadow& cs : cores_)
    if (cs.mem != nullptr) cs.mem->attach_observer(nullptr, -1);
}

void CheckContext::register_core(int id, ep::Coord coord,
                                 ep::LocalMemory* mem) {
  ESARP_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < cores_.size());
  CoreShadow& cs = cores_[static_cast<std::size_t>(id)];
  cs.coord = coord;
  cs.mem = mem;
  mem->attach_observer(this, id);
}

CheckContext::CoreShadow& CheckContext::shadow(int core) {
  ESARP_EXPECTS(core >= 0 && static_cast<std::size_t>(core) < cores_.size());
  return cores_[static_cast<std::size_t>(core)];
}

// --- Diagnostics ----------------------------------------------------------

void CheckContext::report(Hazard kind, int core, std::string message) {
  report_at(kind, core, now(), std::move(message));
}

void CheckContext::report_at(Hazard kind, int core, ep::Cycles cycle,
                             std::string message) {
  if (diags_.size() >= opt_.max_diagnostics) {
    ++dropped_;
    return;
  }
  Diagnostic d;
  d.kind = kind;
  d.core = core;
  d.cycle = cycle;
  if (core >= 0 && static_cast<std::size_t>(core) < cores_.size() &&
      !cores_[static_cast<std::size_t>(core)].spans.empty())
    d.span = cores_[static_cast<std::size_t>(core)].spans.back();
  d.message = std::move(message);
  // Fault-campaign composition (docs/fault-injection.md): anything detected
  // while the offending core is inside a "fault/..." span is a consequence
  // of an injected fault being recovered, not a kernel bug.
  if (d.span.rfind("fault/", 0) == 0) d.suppressed = true;
  // Graceful degradation legally tears down with shrunken barriers and
  // drained-but-unreceived channels; those findings are noise once the
  // machine reports that faults actually degraded the run.
  if (fault_degraded_ &&
      (d.kind == Hazard::kChannel || d.kind == Hazard::kBarrier))
    d.suppressed = true;
  for (const std::string& rule : suppressions_) {
    if (d.suppressed) break;
    if (suppression_matches(rule, d.kind, d.message)) {
      d.suppressed = true;
      break;
    }
  }
  diags_.push_back(std::move(d));
}

std::size_t CheckContext::unsuppressed_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_)
    if (!d.suppressed) ++n;
  return n;
}

bool CheckContext::has(Hazard kind) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [kind](const Diagnostic& d) { return d.kind == kind; });
}

// --- Spans ----------------------------------------------------------------

void CheckContext::on_span_push(int core, const std::string& name) {
  shadow(core).spans.push_back(name);
}

void CheckContext::on_span_pop(int core) {
  CoreShadow& cs = shadow(core);
  if (!cs.spans.empty()) cs.spans.pop_back();
}

// --- Local store shadow ---------------------------------------------------

void CheckContext::on_local_alloc(int core, std::size_t offset,
                                  std::size_t bytes) {
  CoreShadow& cs = shadow(core);
  const LiveSpan span{offset, bytes};
  const auto pos = std::lower_bound(
      cs.live.begin(), cs.live.end(), span,
      [](const LiveSpan& a, const LiveSpan& b) { return a.offset < b.offset; });
  cs.live.insert(pos, span);
}

void CheckContext::on_local_reset(int core) {
  shadow(core).live.clear();
}

void CheckContext::on_local_violation(int core, const char* what,
                                      std::size_t requested,
                                      std::size_t limit) {
  report(Hazard::kBankBudget, core,
         std::string(what) + ": requested " + std::to_string(requested) +
             " against limit " + std::to_string(limit) + " bytes");
}

bool CheckContext::covered(const std::vector<LiveSpan>& live,
                           std::size_t offset, std::size_t bytes) {
  if (bytes == 0) return true;
  const std::size_t need_end = offset + bytes;
  std::size_t pos = offset; // live is kept sorted by offset
  for (const LiveSpan& s : live) {
    if (s.offset > pos) break; // gap before the next span
    pos = std::max(pos, s.offset + s.bytes);
    if (pos >= need_end) return true;
  }
  return pos >= need_end;
}

void CheckContext::check_local_span(int core, std::size_t offset,
                                    std::size_t bytes, const char* op) {
  const CoreShadow& cs = shadow(core);
  if (covered(cs.live, offset, bytes)) return;
  report(Hazard::kLocalSpan, core,
         std::string(op) + " touches local bytes " + hex_range(offset, bytes) +
             " outside any live allocation (unallocated, or stale after a "
             "LocalMemory reset)");
}

// --- DMA shadow -----------------------------------------------------------

void CheckContext::prune(CoreShadow& cs) {
  const ep::Cycles t = now();
  std::erase_if(cs.windows, [t](const DmaWindow& w) { return w.done <= t; });
  if (cs.jobs.size() > 4096)
    cs.jobs.erase(cs.jobs.begin(),
                  cs.jobs.begin() +
                      static_cast<std::ptrdiff_t>(cs.jobs.size() / 2));
}

void CheckContext::check_dma_overlap(int core, std::size_t offset,
                                     std::size_t bytes, bool is_write,
                                     const char* op,
                                     std::uint64_t exclude_job) {
  CoreShadow& cs = shadow(core);
  prune(cs);
  for (const DmaWindow& w : cs.windows) {
    if (w.job == exclude_job) continue;
    if (offset >= w.offset + w.bytes || w.offset >= offset + bytes) continue;
    if (!is_write && !w.writes_local) continue; // read vs read is benign
    report(Hazard::kDmaRace, core,
           std::string(op) + (is_write ? " writes" : " reads") +
               " local bytes " + hex_range(offset, bytes) +
               " overlapping an in-flight " + w.op + " window " +
               hex_range(w.offset, w.bytes) + " (issued @ cycle " +
               std::to_string(w.issued) + ", completes @ cycle " +
               std::to_string(w.done) + "); await the DMA job first");
    return; // one diagnostic per access is enough
  }
}

void CheckContext::on_local_access(int core, const void* p, std::size_t bytes,
                                   bool is_write, const char* op) {
  CoreShadow& cs = shadow(core);
  if (cs.mem == nullptr || !cs.mem->owns(p)) return; // host scratch memory
  const std::size_t offset = cs.mem->offset_of(p);
  check_local_span(core, offset, bytes, op);
  check_dma_overlap(core, offset, bytes, is_write, op, /*exclude_job=*/0);
}

std::uint64_t CheckContext::open_dma_job(int core) {
  CoreShadow& cs = shadow(core);
  prune(cs);
  const std::uint64_t id = next_job_++;
  cs.jobs.push_back(DmaJobRec{id, false});
  return id;
}

void CheckContext::on_dma_segment(int core, std::uint64_t job, const void* p,
                                  std::size_t bytes, bool writes_local,
                                  ep::Cycles done_at, const char* op) {
  CoreShadow& cs = shadow(core);
  if (cs.mem == nullptr || !cs.mem->owns(p)) return; // host scratch memory
  const std::size_t offset = cs.mem->offset_of(p);
  check_local_span(core, offset, bytes, op);
  check_dma_overlap(core, offset, bytes, writes_local, op, job);
  if (done_at > now())
    cs.windows.push_back(
        DmaWindow{offset, bytes, writes_local, now(), done_at, job, op});
}

void CheckContext::on_dma_wait(int core, std::uint64_t job) {
  if (job == 0) return; // null job (e.g. the second half of a burst pair)
  CoreShadow& cs = shadow(core);
  const auto it =
      std::find_if(cs.jobs.begin(), cs.jobs.end(),
                   [job](const DmaJobRec& r) { return r.id == job; });
  if (it == cs.jobs.end()) return; // pruned long-retired job
  if (it->waited) {
    report(Hazard::kDoubleWait, core,
           "DMA job completed twice (wait called again on an already-awaited "
           "job)");
    return;
  }
  it->waited = true;
}

// --- External memory ------------------------------------------------------

void CheckContext::on_ext_access(int core, const void* p, std::size_t bytes,
                                 bool is_read, const char* op) {
  if (ext_ == nullptr || !ext_->owns(p) || bytes == 0) return;
  const std::size_t offset = ext_->offset_of(p);
  if (offset + bytes <= ext_->used()) return;
  report(Hazard::kExtMemory, core,
         std::string(op) + (is_read ? " reads" : " writes") +
             " external bytes " + hex_range(offset, bytes) +
             " beyond the allocated SDRAM region (" +
             std::to_string(ext_->used()) + " bytes in use); " +
             (is_read ? "no producer ever wrote this memory"
                      : "allocate the destination first"));
}

// --- Remote windows -------------------------------------------------------

void CheckContext::on_remote_write(int writer, ep::Coord dst_core,
                                   const void* dst, std::size_t bytes,
                                   ep::Cycles arrival) {
  // Resolve the owner of the destination pointer among all local stores.
  int owner = -1;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].mem != nullptr && cores_[i].mem->owns(dst)) {
      owner = static_cast<int>(i);
      break;
    }
  }
  int target = -1;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].coord == dst_core && cores_[i].mem != nullptr) {
      target = static_cast<int>(i);
      break;
    }
  }
  if (owner < 0) {
    report(Hazard::kRemoteAliasing, writer,
           "write_remote destination is not inside any simulated local "
           "store (host memory?)");
    return;
  }
  if (owner != target) {
    report(Hazard::kRemoteAliasing, writer,
           "write_remote window addressed to core " + std::to_string(target) +
               " but the destination bytes belong to core " +
               std::to_string(owner) + "'s local store");
    return;
  }
  const std::size_t offset = cores_[static_cast<std::size_t>(owner)]
                                 .mem->offset_of(dst);
  check_local_span(owner, offset, bytes, "write_remote (remote window)");

  const ep::Cycles t = now();
  std::erase_if(remote_windows_,
                [t](const RemoteWindow& w) { return w.end <= t; });
  for (const RemoteWindow& w : remote_windows_) {
    if (w.target != target || w.writer == writer) continue;
    if (offset >= w.offset + w.bytes || w.offset >= offset + bytes) continue;
    report(Hazard::kRemoteAliasing, writer,
           "cores " + std::to_string(w.writer) + " and " +
               std::to_string(writer) +
               " hold overlapping in-flight remote windows " +
               hex_range(w.offset, w.bytes) + " and " +
               hex_range(offset, bytes) + " into core " +
               std::to_string(target) + "'s local store");
    break;
  }
  if (arrival > t)
    remote_windows_.push_back(
        RemoteWindow{writer, target, offset, bytes, t, arrival});
}

void CheckContext::on_remote_read(int reader, ep::Coord src_core,
                                  const void* src, std::size_t bytes) {
  (void)bytes;
  int owner = -1;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].mem != nullptr && cores_[i].mem->owns(src)) {
      owner = static_cast<int>(i);
      break;
    }
  }
  if (owner < 0) return; // host memory source: not a simulated local store
  const CoreShadow& target = cores_[static_cast<std::size_t>(owner)];
  if (!(target.coord == src_core))
    report(Hazard::kRemoteAliasing, reader,
           "read_remote addressed to core (" + std::to_string(src_core.row) +
               "," + std::to_string(src_core.col) +
               ") but the source bytes belong to core " +
               std::to_string(owner) + "'s local store");
}

// --- Channels / barriers --------------------------------------------------

CheckContext::ChannelShadow&
CheckContext::chan_shadow(const void* chan, const std::string& name) {
  for (ChannelShadow& c : channels_)
    if (c.chan == chan) return c;
  channels_.push_back(ChannelShadow{chan, name, 0, 0, -1, 0});
  return channels_.back();
}

void CheckContext::on_chan_send(const void* chan, const std::string& name,
                                int core) {
  ChannelShadow& cs = chan_shadow(chan, name);
  ++cs.sends;
  cs.last_send_core = core;
  cs.last_send_cycle = now();
}

void CheckContext::on_chan_recv(const void* chan, const std::string& name,
                                int core) {
  (void)core;
  ++chan_shadow(chan, name).recvs;
}

CheckContext::BarrierShadow&
CheckContext::barrier_shadow(const void* barrier, int parties) {
  for (BarrierShadow& b : barriers_)
    if (b.barrier == barrier) return b;
  barriers_.push_back(BarrierShadow{barrier, parties, {}, {}, false});
  return barriers_.back();
}

void CheckContext::on_barrier_arrive(const void* barrier, int parties,
                                     int core) {
  BarrierShadow& bs = barrier_shadow(barrier, parties);
  if (std::find(bs.arrived.begin(), bs.arrived.end(), core) !=
      bs.arrived.end()) {
    report(Hazard::kBarrier, core,
           "core arrived twice in one generation of a " +
               std::to_string(bs.parties) + "-party barrier");
  } else {
    bs.arrived.push_back(core);
  }
  if (std::find(bs.participants.begin(), bs.participants.end(), core) ==
      bs.participants.end()) {
    bs.participants.push_back(core);
    if (static_cast<int>(bs.participants.size()) > bs.parties &&
        !bs.arity_reported) {
      bs.arity_reported = true;
      report(Hazard::kBarrier, core,
             "barrier arity mismatch: " +
                 std::to_string(bs.participants.size()) +
                 " distinct cores crossed a " + std::to_string(bs.parties) +
                 "-party barrier");
    }
  }
  // A full generation releases; the next arrival starts a new one.
  if (static_cast<int>(bs.arrived.size()) >= bs.parties) bs.arrived.clear();
}

// --- Teardown -------------------------------------------------------------

void CheckContext::finalize(bool allow_throw) {
  if (!finalized_) {
    finalized_ = true;
    for (const ChannelShadow& c : channels_) {
      if (c.sends <= c.recvs) continue;
      report_at(Hazard::kChannel, c.last_send_core, c.last_send_cycle,
                "channel '" + c.name + "': " +
                    std::to_string(c.sends - c.recvs) +
                    " message(s) sent but never received by teardown");
    }
    for (const BarrierShadow& b : barriers_) {
      if (b.arrived.empty()) continue;
      std::string cores;
      for (const int c : b.arrived)
        cores += (cores.empty() ? "" : ", ") + std::to_string(c);
      report(Hazard::kBarrier, b.arrived.front(),
             "simulation ended with " + std::to_string(b.arrived.size()) +
                 " core(s) (" + cores + ") waiting at a " +
                 std::to_string(b.parties) +
                 "-party barrier no other core reached");
    }
    // Deterministic output: diagnostics are reported in (cycle, core,
    // span, kind) order with exact repeats collapsed, so reports are
    // byte-identical run to run regardless of ESARP_JOBS or the engine's
    // within-cycle event order.
    const auto key = [](const Diagnostic& d) {
      return std::tie(d.cycle, d.core, d.span, d.kind, d.message,
                      d.suppressed);
    };
    std::stable_sort(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& a, const Diagnostic& b) {
                       return key(a) < key(b);
                     });
    diags_.erase(std::unique(diags_.begin(), diags_.end(),
                             [&](const Diagnostic& a, const Diagnostic& b) {
                               return key(a) == key(b);
                             }),
                 diags_.end());
    if (!diags_.empty()) write_console_report(std::cerr, diags_, dropped_);
    if (!opt_.json_out.empty())
      write_json_report(opt_.json_out, diags_, dropped_);
  }
  const std::size_t bad = unsuppressed_count();
  if (allow_throw && opt_.abort_on_hazard && bad > 0) {
    const auto first =
        std::find_if(diags_.begin(), diags_.end(),
                     [](const Diagnostic& d) { return !d.suppressed; });
    throw CheckFailure("esarp-check: " + std::to_string(bad) +
                       " unsuppressed hazard(s); first: " + first->format());
  }
}

} // namespace esarp::check
