// Manifest regression checking: the logic behind tools/esarp_compare.
//
// Two run manifests (manifest.hpp) are diffed key by key. Every numeric
// entry under "results" is threshold-checked; counters, gauges and
// histogram summaries under "metrics" are reported informationally unless
// an explicit per-metric threshold opts them into checking. The regression
// direction is inferred from the key name: throughput-like quantities
// (utilization, flops, px_per_s, hit_rate) regress downward, everything
// else — times, cycle counts, energy, stalls, bytes — regresses upward.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace esarp::telemetry {

struct CompareOptions {
  /// Relative threshold applied to every "results" entry (0.05 == 5%).
  double default_threshold = 0.05;
  /// Per-key overrides / opt-ins. Keys are manifest paths relative to the
  /// sections compared: "results.makespan_cycles" or
  /// "metrics.counters.ext.read.bytes" (the metric name may itself contain
  /// dots, so metric overrides match on the full remainder).
  std::map<std::string, double> per_key;
  /// Glob-pattern thresholds (`*` matches any run, `?` one character),
  /// checked in order after per_key and before the default: the first
  /// pattern that matches a key supplies its threshold. A pattern is tried
  /// against the full flattened key ("results.wall_seconds") and, for
  /// convenience, against the key with its section prefix stripped — so
  /// "wall_*" widens every wall-clock result. Patterns that match nothing
  /// are not an error (unlike per_key entries, which must resolve).
  std::vector<std::pair<std::string, double>> noisy_patterns;
  /// Values |base| <= abs_floor on both sides are never flagged (guards
  /// against noisy relative deltas of near-zero quantities).
  double abs_floor = 1e-12;
  /// Built-in noise band for serving-latency keys (docs/serving.md): any
  /// key whose name (after section-prefix stripping) matches `latency_*`
  /// or `slo_*` and that no per_key override or noisy pattern claimed
  /// first is checked at this relative threshold instead of the default.
  /// Latency percentiles are order statistics — one reordered job can move
  /// p99 by a whole service time — so they get a wider band than analytic
  /// results. Direction is still enforced (slo_* regress downward,
  /// latency_* upward). Set to 0.0 (or pin `--noisy-metric 'latency_*=0'`)
  /// when diffing two same-seed runs of a deterministic serve campaign,
  /// which must match exactly.
  double latency_slo_band = 0.10;
};

/// Iterative `*`/`?` glob match (no brackets, no escapes) — the matcher
/// behind CompareOptions::noisy_patterns, exposed for tests.
[[nodiscard]] bool glob_match(const std::string& pattern,
                              const std::string& text);

/// Which way a metric regresses. The builtin table (metric_direction):
///  - higher-is-better: throughput-like keys (utilization, flops,
///    throughput, hit_rate, px_per_s / pixels_per_s, speedup,
///    events_per_second, jobs_per_s) and slo_attainment;
///  - neutral: outcome tallies with no regression direction — hedge_wins
///    depends on where the chaos landed, so a delta is information, not a
///    verdict. Neutral keys are never threshold-checked by default; an
///    explicit per-key opt-in (--metric) still checks them, flagging a
///    move beyond the threshold in *either* direction;
///  - lower-is-better: everything else — times, cycles, energy, stalls,
///    bytes, and the overload counters jobs_late / jobs_shed /
///    hedge_wasted (wasted duplicates are pure overhead).
enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

/// Builtin regression direction for a manifest key (substring match on
/// the flattened key, e.g. "results.jobs_shed").
[[nodiscard]] Direction metric_direction(const std::string& key);

/// True when a larger value of `key` is an improvement (throughput-like).
/// Equivalent to metric_direction(key) == Direction::kHigherBetter.
[[nodiscard]] bool higher_is_better(const std::string& key);

struct CompareLine {
  std::string key;
  double base = 0.0;
  double current = 0.0;
  double rel_delta = 0.0; ///< (current - base) / |base|; +inf when base == 0
  bool checked = false;   ///< thresholded (vs. informational)
  bool regressed = false;
  double threshold = 0.0; ///< the threshold applied when checked
  /// An explicitly checked (--metric) key that could not be diffed: missing
  /// from a manifest, or present but not numeric. Counted as a regression —
  /// a silently vanished metric must fail CI, not pass it — with `problem`
  /// naming which side is broken and how.
  bool unusable = false;
  std::string problem;
};

struct CompareReport {
  std::vector<CompareLine> lines;
  std::vector<std::string> notes; ///< structural mismatches (missing keys...)
  int regressions = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
  /// Multi-line human-readable diff (regressions first).
  [[nodiscard]] std::string summary(bool verbose = false) const;
};

/// Diff two parsed manifests. Throws ContractViolation when either document
/// is not an esarp manifest object (any "esarp-*-manifest/*" schema: run
/// manifests and serve manifests share the section layout).
[[nodiscard]] CompareReport compare_manifests(const JsonValue& base,
                                              const JsonValue& current,
                                              const CompareOptions& opt = {});

} // namespace esarp::telemetry
