// esarp::check hazard sanitizer: negative tests (each injected hazard must
// produce exactly the expected diagnostic with core id + simulated cycle),
// suppression/report plumbing, and the bit-identity guarantee (a checked
// run matches an unchecked run cycle for cycle).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/report.hpp"
#include "common/json.hpp"
#include "core/ffbp_epiphany.hpp"
#include "epiphany/machine.hpp"
#include "sar/scene.hpp"

namespace esarp {
namespace {

using check::CheckFailure;
using check::Hazard;

ep::ChipConfig checked_config(bool abort_on_hazard = false) {
  ep::ChipConfig cfg;
  cfg.check.enabled = true;
  cfg.check.abort_on_hazard = abort_on_hazard;
  return cfg;
}

/// First diagnostic of `kind`, failing the test if absent.
const check::Diagnostic& first_of(const ep::Machine& m, Hazard kind) {
  const auto& diags = m.checker()->diagnostics();
  for (const auto& d : diags)
    if (d.kind == kind) return d;
  ADD_FAILURE() << "no diagnostic of kind " << check::to_string(kind)
                << " among " << diags.size();
  static const check::Diagnostic none{};
  return none;
}

/// Removes an environment variable for the enclosing scope, restoring any
/// previous value on destruction. Lets the suite itself run under
/// `ESARP_CHECK=1` without the override leaking into tests that pin the
/// un-overridden default.
class ScopedUnsetEnv {
 public:
  explicit ScopedUnsetEnv(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) {
      saved_ = v;
      ::unsetenv(name);
    }
  }
  ~ScopedUnsetEnv() {
    if (saved_) ::setenv(name_, saved_->c_str(), /*overwrite=*/1);
  }
  ScopedUnsetEnv(const ScopedUnsetEnv&) = delete;
  ScopedUnsetEnv& operator=(const ScopedUnsetEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(Check, DisabledByDefault) {
  const ScopedUnsetEnv guard("ESARP_CHECK");
  ep::Machine m;
  EXPECT_EQ(m.checker(), nullptr);
}

TEST(Check, CleanRunHasNoDiagnostics) {
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  ASSERT_NE(m.checker(), nullptr);
  auto src = m.ext().alloc<float>(256);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto buf = ctx.local().alloc<float>(256);
    auto job = ctx.dma_read_ext(buf.data(), src.data(), 256 * sizeof(float));
    co_await ctx.compute({.fadd = 64});
    co_await ctx.wait(job);
    co_await ctx.write_ext(src.data(), buf.data(), 256 * sizeof(float));
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(m.checker()->diagnostics().empty());
}

// --- dma-race -------------------------------------------------------------

TEST(Check, DmaRaceReadingDestinationBeforeWait) {
  ep::Machine m(checked_config());
  auto src = m.ext().alloc<float>(512);
  m.launch(2, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto buf = ctx.local().alloc<float>(512);
    auto job = ctx.dma_read_ext(buf.data(), src.data(), 512 * sizeof(float));
    // BUG under test: consume the buffer before awaiting the DMA.
    co_await ctx.write_ext(src.data(), buf.data(), 512 * sizeof(float));
    co_await ctx.wait(job);
  });
  m.run();
  ASSERT_TRUE(m.checker()->has(Hazard::kDmaRace));
  const auto& d = first_of(m, Hazard::kDmaRace);
  EXPECT_EQ(d.core, 2);
  EXPECT_EQ(d.cycle, 0u); // the racing access happens before any await
  EXPECT_NE(d.message.find("dma_read_ext"), std::string::npos);
}

TEST(Check, DmaRaceCarriesSpanName) {
  ep::Machine m(checked_config());
  auto src = m.ext().alloc<float>(512);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    ctx.begin_span("prefetch/0");
    auto buf = ctx.local().alloc<float>(512);
    auto job = ctx.dma_read_ext(buf.data(), src.data(), 512 * sizeof(float));
    co_await ctx.write_ext(src.data(), buf.data(), 512 * sizeof(float));
    co_await ctx.wait(job);
    ctx.end_span();
  });
  m.run();
  EXPECT_EQ(first_of(m, Hazard::kDmaRace).span, "prefetch/0");
}

TEST(Check, NoDmaRaceAfterWait) {
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  auto src = m.ext().alloc<float>(512);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto buf = ctx.local().alloc<float>(512);
    auto job = ctx.dma_read_ext(buf.data(), src.data(), 512 * sizeof(float));
    co_await ctx.wait(job);
    co_await ctx.write_ext(src.data(), buf.data(), 512 * sizeof(float));
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(m.checker()->diagnostics().empty());
}

// --- double-wait ----------------------------------------------------------

TEST(Check, DoubleWaitOnSameJob) {
  ep::Machine m(checked_config());
  auto src = m.ext().alloc<float>(64);
  m.launch(1, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto buf = ctx.local().alloc<float>(64);
    auto job = ctx.dma_read_ext(buf.data(), src.data(), 64 * sizeof(float));
    co_await ctx.wait(job);
    co_await ctx.wait(job); // BUG under test
  });
  m.run();
  EXPECT_EQ(first_of(m, Hazard::kDoubleWait).core, 1);
}

TEST(Check, NullJobWaitIsBenign) {
  // The FFBP double-buffer epilogue waits a default-constructed DmaJob.
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await ctx.wait(ep::DmaJob{});
    co_await ctx.wait(ep::DmaJob{});
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(m.checker()->diagnostics().empty());
}

// --- bank-budget ----------------------------------------------------------

TEST(Check, BankBudgetOverflowDiagnosed) {
  ep::Machine m(checked_config());
  m.launch(3, [&](ep::CoreCtx& ctx) -> ep::Task {
    // BUG under test: 40 KB request against the 32 KB local store. The
    // allocator still throws; the diagnostic is recorded first.
    auto buf = ctx.local().alloc<float>(10 * 1024);
    (void)buf;
    co_return;
  });
  EXPECT_THROW(m.run(), ContractViolation);
  const auto& d = first_of(m, Hazard::kBankBudget);
  EXPECT_EQ(d.core, 3);
  EXPECT_NE(d.message.find("overflow"), std::string::npos);
}

TEST(Check, BankCollisionDiagnosed) {
  ep::Machine m(checked_config());
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto a = ctx.local().alloc_in_bank<float>(16, 2);
    (void)a;
    // BUG under test: bank 1 starts below the cursor left by bank 2.
    auto b = ctx.local().alloc_in_bank<float>(16, 1);
    (void)b;
    co_return;
  });
  EXPECT_THROW(m.run(), ContractViolation);
  EXPECT_NE(first_of(m, Hazard::kBankBudget).message.find("collision"),
            std::string::npos);
}

// --- local-span -----------------------------------------------------------

TEST(Check, StaleSpanAfterResetDiagnosed) {
  ep::Machine m(checked_config());
  auto dst = m.ext().alloc<float>(64);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto buf = ctx.local().alloc<float>(64);
    ctx.local().reset();
    // BUG under test: the span predates the reset — nothing is live.
    co_await ctx.write_ext(dst.data(), buf.data(), 64 * sizeof(float));
  });
  m.run();
  const auto& d = first_of(m, Hazard::kLocalSpan);
  EXPECT_EQ(d.core, 0);
  EXPECT_NE(d.message.find("stale"), std::string::npos);
}

TEST(Check, ReallocatedSpanAfterResetIsClean) {
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  auto dst = m.ext().alloc<float>(64);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto stale = ctx.local().alloc<float>(64);
    (void)stale;
    ctx.local().reset();
    auto fresh = ctx.local().alloc<float>(64);
    co_await ctx.write_ext(dst.data(), fresh.data(), 64 * sizeof(float));
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(m.checker()->diagnostics().empty());
}

// --- barrier --------------------------------------------------------------

TEST(Check, BarrierArityMismatchDiagnosed) {
  ep::Machine m(checked_config());
  // BUG under test: barrier sized for 2 parties, crossed by 3 cores. The
  // 3-core generation "releases" after any 2 arrivals, so the run still
  // terminates — only the sanitizer notices the impossible arity.
  auto bar = m.make_barrier(2);
  for (int c = 0; c < 3; ++c) {
    m.launch(c, [&](ep::CoreCtx& ctx) -> ep::Task {
      co_await bar->arrive_and_wait(ctx);
    });
  }
  try {
    m.run();
  } catch (const ep::SimDeadlock&) {
    // One core may be left waiting, depending on arrival order.
  }
  const auto& d = first_of(m, Hazard::kBarrier);
  EXPECT_NE(d.message.find("arity"), std::string::npos);
  EXPECT_NE(d.message.find("3"), std::string::npos);
}

TEST(Check, BarrierStuckCoresDiagnosed) {
  ep::Machine m(checked_config());
  // BUG under test: 3-party barrier, only 2 cores arrive -> deadlock.
  auto bar = m.make_barrier(3);
  for (int c = 0; c < 2; ++c) {
    m.launch(c, [&](ep::CoreCtx& ctx) -> ep::Task {
      co_await bar->arrive_and_wait(ctx);
    });
  }
  EXPECT_THROW(m.run(), ep::SimDeadlock);
  const auto& d = first_of(m, Hazard::kBarrier);
  EXPECT_NE(d.message.find("waiting"), std::string::npos);
}

// --- channel --------------------------------------------------------------

TEST(Check, UnreceivedChannelMessageDiagnosed) {
  ep::Machine m(checked_config());
  auto chan = m.make_channel<int>(1, 4, "pipe");
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await chan->send(ctx, 7);
    co_await chan->send(ctx, 8);
  });
  m.launch(1, [&](ep::CoreCtx& ctx) -> ep::Task {
    (void)co_await chan->recv(ctx); // BUG under test: second send dropped
  });
  m.run();
  const auto& d = first_of(m, Hazard::kChannel);
  EXPECT_EQ(d.core, 0); // reported against the last sender
  EXPECT_NE(d.message.find("pipe"), std::string::npos);
  EXPECT_NE(d.message.find("1 message(s)"), std::string::npos);
}

TEST(Check, BalancedChannelIsClean) {
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  auto chan = m.make_channel<int>(1, 4, "pipe");
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    for (int i = 0; i < 8; ++i) co_await chan->send(ctx, i);
  });
  m.launch(1, [&](ep::CoreCtx& ctx) -> ep::Task {
    for (int i = 0; i < 8; ++i) (void)co_await chan->recv(ctx);
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(m.checker()->diagnostics().empty());
}

// --- ext-memory -----------------------------------------------------------

TEST(Check, ReadOfUnallocatedSdramDiagnosed) {
  ep::Machine m(checked_config());
  auto small = m.ext().alloc<float>(16);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    auto buf = ctx.local().alloc<float>(64);
    // BUG under test: reads 64 floats from a 16-float allocation.
    co_await ctx.read_ext(buf.data(), small.data(), 64 * sizeof(float));
  });
  m.run();
  const auto& d = first_of(m, Hazard::kExtMemory);
  EXPECT_EQ(d.core, 0);
  EXPECT_NE(d.message.find("read_ext"), std::string::npos);
}

// --- remote-aliasing ------------------------------------------------------

TEST(Check, OverlappingRemoteWindowsDiagnosed) {
  ep::Machine m(checked_config());
  const int target = m.id_of({1, 1});
  auto dst = m.core(target).mem().alloc<int>(256);
  // BUG under test: two writers push into the same window with no
  // coordination; their in-flight transfers overlap in simulated time.
  for (int writer : {0, 3}) {
    m.launch(writer, [&, writer](ep::CoreCtx& ctx) -> ep::Task {
      const int v = writer;
      for (int i = 0; i < 16; ++i)
        co_await ctx.write_remote({1, 1}, dst.data(), &v, sizeof(int));
    });
  }
  m.run();
  const auto& d = first_of(m, Hazard::kRemoteAliasing);
  EXPECT_NE(d.message.find("overlapping"), std::string::npos);
}

TEST(Check, DisjointRemoteWindowsAreClean) {
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  const int target = m.id_of({1, 1});
  auto dst = m.core(target).mem().alloc<int>(256);
  for (int writer : {0, 3}) {
    m.launch(writer, [&, writer](ep::CoreCtx& ctx) -> ep::Task {
      const int v = writer;
      // Each writer owns half of the buffer: no aliasing.
      int* base = dst.data() + (writer == 0 ? 0 : 128);
      for (int i = 0; i < 16; ++i)
        co_await ctx.write_remote({1, 1}, base + i, &v, sizeof(int));
    });
  }
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(m.checker()->diagnostics().empty());
}

TEST(Check, RemoteWindowIntoHostMemoryDiagnosed) {
  ep::Machine m(checked_config());
  int host = 0;
  const int v = 1;
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await ctx.write_remote({0, 1}, &host, &v, sizeof(int));
  });
  m.run();
  EXPECT_NE(
      first_of(m, Hazard::kRemoteAliasing).message.find("host memory"),
      std::string::npos);
}

TEST(Check, RemoteWindowIntoWrongCoreDiagnosed) {
  ep::Machine m(checked_config());
  // BUG under test: window addressed to (0,1) but the bytes belong to
  // core (2,2)'s store — the classic address-map aliasing mistake.
  auto dst = m.core(m.id_of({2, 2})).mem().alloc<int>(1);
  const int v = 1;
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await ctx.write_remote({0, 1}, dst.data(), &v, sizeof(int));
  });
  m.run();
  EXPECT_NE(first_of(m, Hazard::kRemoteAliasing).message.find("belong"),
            std::string::npos);
}

// --- abort / suppression / report plumbing --------------------------------

TEST(Check, AbortOnHazardThrowsCheckFailure) {
  ep::Machine m(checked_config(/*abort_on_hazard=*/true));
  auto chan = m.make_channel<int>(1, 4);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await chan->send(ctx, 7);
  });
  m.launch(1, [&](ep::CoreCtx& ctx) -> ep::Task {
    (void)co_await chan->recv(ctx);
    co_await chan->send(ctx, 9); // never received
  });
  EXPECT_THROW(m.run(), CheckFailure);
}

TEST(Check, SuppressionSilencesMatchingDiagnostics) {
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_check_supp.txt";
  {
    std::ofstream f(path);
    f << "# test suppressions\n";
    f << "channel:*never received*\n";
  }
  ep::ChipConfig cfg = checked_config(/*abort_on_hazard=*/true);
  cfg.check.suppressions = path.string();
  ep::Machine m(cfg);
  auto chan = m.make_channel<int>(1, 4);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await chan->send(ctx, 7);
  });
  m.launch(1, [&](ep::CoreCtx&) -> ep::Task { co_return; });
  EXPECT_NO_THROW(m.run()); // diagnostic recorded but suppressed
  ASSERT_EQ(m.checker()->diagnostics().size(), 1u);
  EXPECT_TRUE(m.checker()->diagnostics()[0].suppressed);
  EXPECT_EQ(m.checker()->unsuppressed_count(), 0u);
  std::filesystem::remove(path);
}

TEST(Check, JsonReportWritten) {
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_check_report.json";
  ep::ChipConfig cfg = checked_config();
  cfg.check.json_out = path.string();
  ep::Machine m(cfg);
  auto chan = m.make_channel<int>(1, 4, "leaky");
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await chan->send(ctx, 7);
  });
  m.launch(1, [&](ep::CoreCtx&) -> ep::Task { co_return; });
  m.run();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("esarp-check-report/1"), std::string::npos);
  EXPECT_NE(text.find("leaky"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Check, GlobMatcher) {
  EXPECT_TRUE(check::glob_match("*", "anything"));
  EXPECT_TRUE(check::glob_match("a*c", "abc"));
  EXPECT_TRUE(check::glob_match("a*c", "ac"));
  EXPECT_TRUE(check::glob_match("*race*", "a dma race here"));
  EXPECT_TRUE(check::glob_match("a?c", "abc"));
  EXPECT_FALSE(check::glob_match("a?c", "ac"));
  EXPECT_FALSE(check::glob_match("a*d", "abc"));
  EXPECT_FALSE(check::glob_match("", "x"));
  EXPECT_TRUE(check::glob_match("", ""));
}

TEST(Check, MalformedSuppressionFileRejected) {
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_check_bad_supp.txt";
  {
    std::ofstream f(path);
    f << "no-colon-here\n";
  }
  EXPECT_THROW((void)check::load_suppressions(path), ContractViolation);
  std::filesystem::remove(path);
  EXPECT_THROW((void)check::load_suppressions(path), ContractViolation);
}

TEST(Check, SuppressionFileVariants) {
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_check_supp_var.txt";
  // Leading-colon rules have an empty kind and are malformed.
  {
    std::ofstream f(path);
    f << ":leading-colon\n";
  }
  EXPECT_THROW((void)check::load_suppressions(path), ContractViolation);
  // Comments, blank lines and surrounding whitespace are tolerated; only
  // real rules load.
  {
    std::ofstream f(path);
    f << "# comment\n\n   \t \n  channel:*leak*  \n*:anything?\n";
  }
  const auto rules = check::load_suppressions(path);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "channel:*leak*");
  EXPECT_EQ(rules[1], "*:anything?");
  std::filesystem::remove(path);
}

TEST(Check, ZeroMatchGlobSuppressionLeavesHazardsFatal) {
  const auto path =
      std::filesystem::temp_directory_path() / "esarp_check_nomatch.txt";
  {
    std::ofstream f(path);
    f << "channel:*no such message ever*\n";
    f << "dma-race:completely-unrelated-?\n";
  }
  ep::ChipConfig cfg = checked_config(/*abort_on_hazard=*/true);
  cfg.check.suppressions = path.string();
  ep::Machine m(cfg);
  auto chan = m.make_channel<int>(1, 4);
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await chan->send(ctx, 7); // never received
  });
  m.launch(1, [&](ep::CoreCtx&) -> ep::Task { co_return; });
  EXPECT_THROW(m.run(), CheckFailure);
  ASSERT_EQ(m.checker()->diagnostics().size(), 1u);
  EXPECT_FALSE(m.checker()->diagnostics()[0].suppressed);
  EXPECT_EQ(m.checker()->unsuppressed_count(), 1u);
  std::filesystem::remove(path);
}

TEST(Check, JsonReportRoundTripsThroughParser) {
  const auto path = std::filesystem::temp_directory_path() /
                    "esarp_check_roundtrip.json";
  ep::ChipConfig cfg = checked_config();
  cfg.check.json_out = path.string();
  ep::Machine m(cfg);
  auto chan = m.make_channel<int>(1, 4, "leaky");
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    co_await chan->send(ctx, 7);
  });
  m.launch(1, [&](ep::CoreCtx&) -> ep::Task { co_return; });
  m.run();

  const JsonValue doc = load_json_file(path);
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "esarp-check-report/1");
  EXPECT_EQ(doc.find("dropped")->as_number(), 0.0);
  const auto& diags = doc.find("diagnostics")->as_array();
  ASSERT_EQ(diags.size(), 1u);
  const auto& recorded = m.checker()->diagnostics()[0];
  EXPECT_EQ(diags[0].find("kind")->as_string(),
            check::to_string(recorded.kind));
  EXPECT_EQ(diags[0].find("core")->as_number(),
            static_cast<double>(recorded.core));
  EXPECT_EQ(diags[0].find("cycle")->as_number(),
            static_cast<double>(recorded.cycle));
  EXPECT_EQ(diags[0].find("message")->as_string(), recorded.message);
  EXPECT_FALSE(diags[0].find("suppressed")->as_bool());
  std::filesystem::remove(path);
}

TEST(Check, DiagnosticsAreSortedAndDedupedAtFinalize) {
  ep::ChipConfig cfg = checked_config();
  ep::Machine m(cfg);
  check::CheckContext* ck = m.checker();
  ASSERT_NE(ck, nullptr);
  // Seed teardown hazards out of order (core 2 before core 0) plus an
  // exact duplicate (two distinct channels, same name, same leak count
  // produce byte-identical diagnostics at the same cycle).
  int a = 0;
  int b = 0;
  int c = 0;
  ck->on_chan_send(&a, "dup", 2);
  ck->on_chan_send(&b, "dup", 0);
  ck->on_chan_send(&c, "dup", 0);
  ck->finalize(/*allow_throw=*/false);
  const auto& diags = ck->diagnostics();
  ASSERT_EQ(diags.size(), 2u); // core-0 duplicate collapsed
  EXPECT_EQ(diags[0].core, 0);
  EXPECT_EQ(diags[1].core, 2);
  for (const auto& d : diags)
    EXPECT_NE(d.message.find("never received"), std::string::npos);
}

TEST(Check, ConsoleReportIsByteStable) {
  std::vector<check::Diagnostic> diags;
  check::Diagnostic d;
  d.kind = Hazard::kChannel;
  d.core = 1;
  d.cycle = 42;
  d.message = "channel 'x': 1 message(s) sent but never received";
  diags.push_back(d);
  d.suppressed = true;
  diags.push_back(d);
  std::ostringstream first;
  std::ostringstream second;
  check::write_console_report(first, diags, /*dropped=*/1);
  check::write_console_report(second, diags, 1);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("2 hazard diagnostic(s) (1 suppressed), "
                             "1 dropped past the cap"),
            std::string::npos);
}

TEST(Check, DiagnosticCapDropsExcess) {
  ep::ChipConfig cfg = checked_config();
  cfg.check.max_diagnostics = 3;
  ep::Machine m(cfg);
  int host = 0;
  const int v = 1;
  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    for (int i = 0; i < 10; ++i)
      co_await ctx.write_remote({0, 1}, &host, &v, sizeof(int));
  });
  m.run();
  EXPECT_EQ(m.checker()->diagnostics().size(), 3u);
  EXPECT_EQ(m.checker()->dropped(), 7u);
}

// --- bit identity ---------------------------------------------------------

TEST(Check, CheckedFfbpRunIsCycleIdentical) {
  const sar::RadarParams p = sar::test_params(32, 101);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  core::FfbpMapOptions opt;
  opt.n_cores = 4;
  const auto plain = core::run_ffbp_epiphany(data, p, opt);
  ep::ChipConfig cfg;
  cfg.check.enabled = true;
  const auto checked = core::run_ffbp_epiphany(data, p, opt, cfg);
  EXPECT_EQ(plain.cycles, checked.cycles);
  EXPECT_EQ(plain.image, checked.image); // bit-identical pixels
}

} // namespace
} // namespace esarp
