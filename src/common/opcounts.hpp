// Architecture-neutral accounting of the work a kernel performs.
//
// Kernels tally the arithmetic/memory operations of each compute block; the
// Epiphany cost model (src/epiphany/cost_model.hpp) and the Intel host model
// (src/hostmodel/host_model.hpp) translate the *same* counts into cycles for
// their respective micro-architectures. This makes the paper's cross-
// architecture speedup comparison a deterministic function of counted work.
#pragma once

#include <cstdint>

namespace esarp {

struct OpCounts {
  // Floating-point (32-bit) operations.
  std::uint64_t fadd = 0; ///< additions/subtractions
  std::uint64_t fmul = 0; ///< multiplications
  std::uint64_t fma = 0;  ///< fused multiply-adds (1 instruction on Epiphany,
                          ///< mul+add pair on pre-AVX2 Intel: Westmere has no FMA)
  std::uint64_t fdiv = 0; ///< divisions (no HW divide on Epiphany -> expanded)
  std::uint64_t fcmp = 0; ///< compares / min / max / abs
  // Integer / address arithmetic and control.
  std::uint64_t ialu = 0;   ///< integer ALU ops incl. address arithmetic
  std::uint64_t branch = 0; ///< taken-branch estimate
  // Local (on-core / L1-resident) memory accesses, in 32-bit words.
  std::uint64_t load = 0;
  std::uint64_t store = 0;

  constexpr OpCounts& operator+=(const OpCounts& o) {
    fadd += o.fadd;
    fmul += o.fmul;
    fma += o.fma;
    fdiv += o.fdiv;
    fcmp += o.fcmp;
    ialu += o.ialu;
    branch += o.branch;
    load += o.load;
    store += o.store;
    return *this;
  }
  friend constexpr OpCounts operator+(OpCounts a, const OpCounts& b) {
    return a += b;
  }
  /// Scale all counts by n (e.g. per-pixel counts times pixel count).
  friend constexpr OpCounts operator*(OpCounts a, std::uint64_t n) {
    a.fadd *= n;
    a.fmul *= n;
    a.fma *= n;
    a.fdiv *= n;
    a.fcmp *= n;
    a.ialu *= n;
    a.branch *= n;
    a.load *= n;
    a.store *= n;
    return a;
  }
  friend constexpr OpCounts operator*(std::uint64_t n, const OpCounts& a) {
    return a * n;
  }

  /// Total FP operations, counting an FMA as two flops (reporting convention).
  [[nodiscard]] constexpr std::uint64_t flops() const {
    return fadd + fmul + 2 * fma + fdiv + fcmp;
  }
  /// Total FP *instructions* (FMA as one issue slot).
  [[nodiscard]] constexpr std::uint64_t fp_issues() const {
    return fadd + fmul + fma + fdiv + fcmp;
  }

  friend constexpr bool operator==(const OpCounts&, const OpCounts&) = default;
};

} // namespace esarp
