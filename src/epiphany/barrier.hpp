// All-to-one flag barrier across participating cores.
//
// Models the SPMD synchronisation the paper's FFBP implementation needs
// between merge iterations: each core writes an arrival flag to a master
// core, the master releases everyone by writing flags back. The release
// cost is charged as one round of flag traffic on the cMesh.
#pragma once

#include "common/assert.hpp"
#include "epiphany/core_ctx.hpp"
#include "epiphany/task.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::ep {

class SimBarrier {
public:
  /// `metrics` (optional, must outlive the barrier) receives per-crossing
  /// wait-time and wait-imbalance histograms plus a crossings counter.
  SimBarrier(Scheduler& sched, Noc& noc, const ChipConfig& cfg, int parties,
             Coord master = {0, 0},
             telemetry::MetricsRegistry* metrics = nullptr)
      : sched_(sched), noc_(noc), cfg_(cfg), parties_(parties),
        master_(master) {
    ESARP_EXPECTS(parties > 0);
    if (metrics != nullptr) {
      wait_hist_ = &metrics->cycle_histogram("barrier.wait_cycles");
      imbalance_hist_ = &metrics->cycle_histogram("barrier.imbalance_cycles");
      crossings_counter_ = &metrics->counter("barrier.crossings");
    }
  }

  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;

  TaskT<void> arrive_and_wait(CoreCtx& ctx) {
    if (ctx.checker() != nullptr)
      ctx.checker()->on_barrier_arrive(this, parties_, ctx.id());
    const Cycles entered = sched_.now();
    // Arrival flag: 8-byte write to the master core.
    const Cycles flag_arrival = noc_.transfer(ctx.coord(), master_, 8,
                                              sched_.now(), Mesh::kOnChipWrite);
    latest_arrival_ = std::max(latest_arrival_, flag_arrival);

    const std::uint64_t my_generation = generation_;
    if (arrived_ == 0) first_entered_ = entered;
    ++arrived_;
    if (arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      // Wait imbalance: gap between the earliest and latest arrival in this
      // crossing — the paper's load-balance story in one number.
      if (imbalance_hist_ != nullptr)
        imbalance_hist_->observe(static_cast<double>(entered - first_entered_));
      // Release flags: master writes back to every participant; charge the
      // farthest-corner delivery as the common release time.
      const Cycles max_hops =
          static_cast<Cycles>((cfg_.rows - 1) + (cfg_.cols - 1)) *
          cfg_.hop_latency;
      release_time_ = latest_arrival_ + max_hops + 2 /*flag write*/;
      latest_arrival_ = 0;
      waiters_.wake_all(sched_);
    } else {
      ctx.core().state = CoreState::kWaitBarrier;
      while (generation_ == my_generation) co_await waiters_.wait();
      ctx.core().state = CoreState::kRunning;
    }
    if (release_time_ > sched_.now())
      co_await DelayUntil{sched_, release_time_};
    ctx.core().counters.barrier_wait += sched_.now() - entered;
    ctx.tracer().add(ctx.id(), SegmentKind::kBarrier, entered, sched_.now());
    if (wait_hist_ != nullptr)
      wait_hist_->observe(static_cast<double>(sched_.now() - entered));
    if (crossings_counter_ != nullptr) crossings_counter_->add(1);
    ++crossings_;
  }

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t crossings() const { return crossings_; }

private:
  Scheduler& sched_;
  Noc& noc_;
  const ChipConfig& cfg_;
  int parties_;
  Coord master_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t crossings_ = 0;
  Cycles latest_arrival_ = 0;
  Cycles release_time_ = 0;
  Cycles first_entered_ = 0;
  telemetry::Histogram* wait_hist_ = nullptr;
  telemetry::Histogram* imbalance_hist_ = nullptr;
  telemetry::Counter* crossings_counter_ = nullptr;
  WaitList waiters_;
};

} // namespace esarp::ep
