#include "epiphany/ext_port.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "epiphany/power.hpp"

namespace esarp::ep {

Cycles ExtPort::blocking_read(Coord core, std::uint64_t transactions,
                              std::size_t bytes_each, Cycles now) {
  ESARP_EXPECTS(transactions > 0 && bytes_each > 0);
  // Request travels the rMesh to the port; the reply returns the same
  // distance. The core blocks, so each transaction pays the full round trip
  // plus its slice of the SDRAM read channel.
  const Cycles hops =
      static_cast<Cycles>(hop_distance(core, port_coord_)) * cfg_.hop_latency;
  const Cycles ser = cfg_.cycles_for_bytes_on_elink(bytes_each);
  // Model the n-transaction sequence as one reservation: the SDRAM read
  // channel is occupied for the random-access occupancy (closed-page
  // activate + CAS) or the serialisation time per transaction, whichever
  // is longer — concurrent gathers from many cores queue here. The core
  // additionally pays the full round trip (mesh hops both ways + SDRAM
  // latency + data serialisation) per transaction, since it blocks on
  // each one (no pipelining).
  const Cycles occupancy = std::max(ser, cfg_.ext_random_occupancy);
  const Cycles start = read_chan_.acquire(
      now, transactions * occupancy, transactions * bytes_each);
  const Cycles t =
      start + transactions * (cfg_.ext_read_latency + ser + 2 * hops);
  // Record the route once on the rMesh for congestion stats (requests are
  // 8-byte packets; replies carry the data).
  noc_.transfer(core, port_coord_, transactions * bytes_each, now, Mesh::kRead);
  stats_.read_transactions += transactions;
  stats_.read_bytes += transactions * bytes_each;
  if (power_ != nullptr)
    power_->record_elink(core_id(core), transactions * bytes_each, start,
                         start + transactions * occupancy);
  if (read_stall_hist_ != nullptr)
    read_stall_hist_->observe(static_cast<double>(t - now));
  sample_backlog(read_backlog_track_, read_chan_, now);
  return t;
}

Cycles ExtPort::dma_read(Coord core, std::size_t bytes, Cycles now) {
  ESARP_EXPECTS(bytes > 0);
  const Cycles hops =
      static_cast<Cycles>(hop_distance(core, port_coord_)) * cfg_.hop_latency;
  const Cycles ser = cfg_.cycles_for_bytes_on_elink(bytes);
  const Cycles start = read_chan_.acquire(now + cfg_.dma_setup_cycles, ser,
                                          bytes);
  // The DMA payload streams from the port toward the requesting core, so
  // the requester (not the port's node) owns the byte-hop energy.
  noc_.transfer(port_coord_, core, bytes, start, Mesh::kRead, core);
  stats_.read_transactions += 1;
  stats_.read_bytes += bytes;
  if (power_ != nullptr)
    power_->record_elink(core_id(core), bytes, start, start + ser);
  // Queueing delay ahead of this DMA burst (beyond the fixed setup cost).
  if (dma_queue_hist_ != nullptr)
    dma_queue_hist_->observe(
        static_cast<double>(start - (now + cfg_.dma_setup_cycles)));
  sample_backlog(read_backlog_track_, read_chan_, now);
  return start + cfg_.ext_read_latency + ser + hops;
}

Cycles ExtPort::dma_read_burst(Coord core,
                               std::span<const std::size_t> seg_bytes,
                               Cycles now) {
  ESARP_EXPECTS(!seg_bytes.empty());
  // Each segment is a separate DMA descriptor: it pays its own setup and
  // serialises on the SDRAM read channel behind its predecessors, exactly
  // as if the segments had been issued one dma_read call at a time. The
  // burst only changes how many *scheduler* events the waiting core needs.
  Cycles done = now;
  for (std::size_t bytes : seg_bytes)
    done = std::max(done, dma_read(core, bytes, now));
  return done;
}

Cycles ExtPort::posted_write(Coord core, std::size_t bytes, Cycles now) {
  ESARP_EXPECTS(bytes > 0);
  // Core-side cost: stores issue at one double word per cycle.
  const Cycles issue =
      std::max<Cycles>(cfg_.ext_write_issue,
                       cfg_.cycles_for_bytes_on_elink(bytes));
  const Cycles ser = cfg_.cycles_for_bytes_on_elink(bytes);
  const Cycles start = write_chan_.acquire(now, ser, bytes);
  noc_.transfer(core, port_coord_, bytes, now, Mesh::kOffChipWrite);
  stats_.write_transactions += 1;
  stats_.write_bytes += bytes;
  if (power_ != nullptr)
    power_->record_elink(core_id(core), bytes, start, start + ser);
  // Backpressure: if the write channel is backlogged beyond the buffering
  // allowance, the core stalls until the backlog shrinks to the allowance.
  const Cycles backlog_end = start + ser;
  const Cycles unstalled_done = now + issue;
  Cycles done = unstalled_done;
  if (backlog_end > unstalled_done + kPostedBacklogAllowance)
    done = backlog_end - kPostedBacklogAllowance;
  if (write_backpressure_hist_ != nullptr)
    write_backpressure_hist_->observe(
        static_cast<double>(done - unstalled_done));
  sample_backlog(write_backlog_track_, write_chan_, now);
  return done;
}

Cycles ExtPort::dma_write(Coord core, std::size_t bytes, Cycles now) {
  ESARP_EXPECTS(bytes > 0);
  const Cycles ser = cfg_.cycles_for_bytes_on_elink(bytes);
  const Cycles start =
      write_chan_.acquire(now + cfg_.dma_setup_cycles, ser, bytes);
  noc_.transfer(core, port_coord_, bytes, now, Mesh::kOffChipWrite);
  stats_.write_transactions += 1;
  stats_.write_bytes += bytes;
  if (power_ != nullptr)
    power_->record_elink(core_id(core), bytes, start, start + ser);
  if (dma_queue_hist_ != nullptr)
    dma_queue_hist_->observe(
        static_cast<double>(start - (now + cfg_.dma_setup_cycles)));
  sample_backlog(write_backlog_track_, write_chan_, now);
  return start + ser;
}

} // namespace esarp::ep
