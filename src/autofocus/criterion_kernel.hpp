// The autofocus inner kernels, shared verbatim by the sequential reference
// and the simulated 13-core MPMD pipeline so both produce identical
// criterion values (up to the documented accumulation order).
//
// Stage structure (paper Fig. 8/9):
//   range interpolation:  per sample position, Neville-cubic along a 4-column
//                         range window of each of the 6 rows (shift candidate
//                         applied as +-delta/2 per contributing image);
//   beam interpolation:   Neville-cubic across 4 of the interpolated rows at
//                         the tilted-path beam position;
//   correlation/summation: eq. 6 accumulation of |f-|^2 |f+|^2.
#pragma once

#include "common/array2d.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"
#include "autofocus/af_params.hpp"
#include "sar/interp.hpp"

namespace esarp::af {

/// Interpolation positions of one sample index s for shift candidate delta.
struct SampleGeom {
  float t_minus; ///< range node position in the f- block window
  float t_plus;  ///< range node position in the f+ block window
  float u;       ///< beam node position (shared)
  bool valid;    ///< false when a position leaves the safe node interval
};

/// Compute the tilted-path positions. Range positions live on Neville node
/// interval [0.5, 2.5]; the shift moves the two images apart by delta
/// (+-delta/2 each). The beam position drifts with the tilt.
inline SampleGeom af_sample_geom(const AfParams& p, std::size_t s,
                                 float delta) {
  const float frac =
      (static_cast<float>(s) + 0.5f) / static_cast<float>(p.samples_per_row);
  const float t_base = 1.0f + frac; // sweep the central node interval
  const float half = 0.5f * delta;
  SampleGeom g;
  g.t_minus = t_base - half;
  g.t_plus = t_base + half;
  g.u = 1.0f + p.tilt * frac; // tilted path in the beam direction
  g.valid = g.t_minus >= 0.5f && g.t_minus <= 2.5f && g.t_plus >= 0.5f &&
            g.t_plus <= 2.5f;
  return g;
}
/// Work of af_sample_geom: a handful of scalar ops per sample.
inline constexpr OpCounts kSampleGeomOps{
    .fadd = 4, .fmul = 3, .fcmp = 4, .ialu = 4, .branch = 1};

/// Range-interpolate the `rows` rows of `block` inside the 4-column window
/// starting at `window` column, at node position t. Writes one complex
/// value per row to `out`.
inline void range_interp_column(const View2D<const cf32>& block,
                                std::size_t window, float t, cf32* out,
                                std::size_t rows) {
  for (std::size_t r = 0; r < rows; ++r) {
    const cf32* src = &block(r, window);
    out[r] = sar::neville4(src, t);
  }
}

/// Beam-interpolate 4 consecutive range-interpolated rows starting at
/// `first_row`, at beam node position u.
inline cf32 beam_interp(const cf32* column, std::size_t first_row, float u) {
  return sar::neville4(column + first_row, u);
}

/// Work per range-interpolated column of R rows.
[[nodiscard]] inline OpCounts range_stage_ops(std::size_t rows) {
  return rows * sar::kNeville4Ops;
}
/// Work per beam output (one Neville + squared magnitude).
inline constexpr OpCounts kBeamOutputOps =
    sar::kNeville4Ops + OpCounts{.fmul = 1, .fma = 1, .store = 1};
/// Work per correlation term (eq. 6 product + accumulate).
inline constexpr OpCounts kCorrTermOps{.fadd = 1, .fmul = 1, .load = 2};

} // namespace esarp::af
