// Reporters for `esarp lint` — the static mapping analyzer.
//
// Console reports mirror the esarp-check style: one line per finding with
// core id + construct + span, plus a per-mapping summary line carrying the
// analytic prediction. The JSON manifest (schema "esarp-lint-manifest/1")
// bundles findings + cost prediction per mapping — and, when the caller
// cross-validated against simulation, the measured error — so CI can
// archive it and the mapping-search tooling can consume it.
#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/cost_model.hpp"

namespace esarp::analysis {

/// Everything the reporters know about one linted mapping.
struct MappingReport {
  std::string name;
  std::string family;
  int cores = 0;
  std::vector<LintFinding> findings;
  CostPrediction prediction;
  /// Filled when the mapping was cross-validated against full simulation.
  bool validated = false;
  Cycles simulated_cycles = 0;
  double cycle_error = 0.0;      ///< |predicted - simulated| / simulated
  double simulated_joules = 0.0;
  double energy_error = 0.0;
};

/// One block per mapping: summary line + findings (if any).
void write_console_report(std::ostream& os,
                          const std::vector<MappingReport>& reports);

/// Schema "esarp-lint-manifest/1".
void write_manifest(std::ostream& os,
                    const std::vector<MappingReport>& reports);
void write_manifest(const std::filesystem::path& path,
                    const std::vector<MappingReport>& reports);

/// Total unsuppressed findings across all mappings.
[[nodiscard]] std::size_t total_findings(
    const std::vector<MappingReport>& reports);

} // namespace esarp::analysis
