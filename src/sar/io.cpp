#include "sar/io.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "common/assert.hpp"

namespace esarp::sar {

namespace {

constexpr std::uint32_t kMagic = 0x45535250u; // "ESRP"
constexpr std::uint32_t kVersion = 1;

/// Fixed-layout header. All fields little-endian (we read/write natively;
/// the format is for same-machine caching, not interchange).
struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  double center_freq_hz = 0;
  double range_bin_m = 0;
  std::uint64_t n_pulses = 0;
  std::uint64_t n_range = 0;
  double pulse_spacing_m = 0;
  double near_range_m = 0;
  double theta_center_rad = 0;
  double theta_span_rad = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(Header) == 96, "stable on-disk header layout");

} // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  // Table-less bitwise CRC-32 (IEEE, reflected). Fast enough for the file
  // sizes involved (a few MB).
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
  }
  return ~crc;
}

void save_dataset(const std::filesystem::path& path, const Dataset& ds) {
  Header h;
  h.rows = ds.data.rows();
  h.cols = ds.data.cols();
  h.center_freq_hz = ds.params.center_freq_hz;
  h.range_bin_m = ds.params.range_bin_m;
  h.n_pulses = ds.params.n_pulses;
  h.n_range = ds.params.n_range;
  h.pulse_spacing_m = ds.params.pulse_spacing_m;
  h.near_range_m = ds.params.near_range_m;
  h.theta_center_rad = ds.params.theta_center_rad;
  h.theta_span_rad = ds.params.theta_span_rad;
  h.payload_crc =
      crc32(ds.data.data(), ds.data.size() * sizeof(cf32));

  std::ofstream f(path, std::ios::binary);
  ESARP_EXPECTS(f.is_open());
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.write(reinterpret_cast<const char*>(ds.data.data()),
          static_cast<std::streamsize>(ds.data.size() * sizeof(cf32)));
  f.flush();
  ESARP_ENSURES(f.good());
}

Dataset load_dataset(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  ESARP_EXPECTS(f.is_open());
  Header h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  ESARP_EXPECTS(f.good());
  ESARP_EXPECTS(h.magic == kMagic);
  ESARP_EXPECTS(h.version == kVersion);
  ESARP_EXPECTS(h.rows > 0 && h.cols > 0);
  ESARP_EXPECTS(h.rows * h.cols < (std::uint64_t{1} << 32)); // sanity

  Dataset ds;
  ds.params.center_freq_hz = h.center_freq_hz;
  ds.params.range_bin_m = h.range_bin_m;
  ds.params.n_pulses = h.n_pulses;
  ds.params.n_range = h.n_range;
  ds.params.pulse_spacing_m = h.pulse_spacing_m;
  ds.params.near_range_m = h.near_range_m;
  ds.params.theta_center_rad = h.theta_center_rad;
  ds.params.theta_span_rad = h.theta_span_rad;

  ds.data = Array2D<cf32>(h.rows, h.cols);
  f.read(reinterpret_cast<char*>(ds.data.data()),
         static_cast<std::streamsize>(ds.data.size() * sizeof(cf32)));
  ESARP_EXPECTS(f.gcount() ==
                static_cast<std::streamsize>(ds.data.size() * sizeof(cf32)));

  const std::uint32_t crc =
      crc32(ds.data.data(), ds.data.size() * sizeof(cf32));
  ESARP_EXPECTS(crc == h.payload_crc); // corruption check
  return ds;
}

} // namespace esarp::sar
