#include "telemetry/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace esarp::telemetry {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  ESARP_EXPECTS(!edges_.empty());
  ESARP_EXPECTS(std::is_sorted(edges_.begin(), edges_.end()));
  for (std::size_t i = 1; i < edges_.size(); ++i)
    ESARP_EXPECTS(edges_[i - 1] < edges_[i]); // strictly ascending
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double x) {
  // First bucket whose upper edge admits x (bucket i: x <= edges[i]).
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

std::string labeled(std::string_view name,
                    std::vector<std::pair<std::string, std::string>> labels) {
  ESARP_EXPECTS(!labels.empty());
  std::sort(labels.begin(), labels.end());
  std::string out(name);
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

const std::vector<double>& cycle_histogram_edges() {
  // Powers of four from 16 cycles to ~4M cycles: wide enough to separate a
  // hit-under-prefetch stall from a full SDRAM gather at any workload size
  // the benches run, small enough to diff by eye.
  static const std::vector<double> edges = {16.0,    64.0,     256.0,
                                            1024.0,  4096.0,   16384.0,
                                            65536.0, 262144.0, 1048576.0,
                                            4194304.0};
  return edges;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(edges))).first->second;
}

Histogram& MetricsRegistry::cycle_histogram(const std::string& name) {
  return histogram(name, cycle_histogram_edges());
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram*
MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("edges");
    w.begin_array();
    for (const double e : h.edges()) w.value(e);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (const std::uint64_t c : h.bucket_counts()) w.value(c);
    w.end_array();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

} // namespace esarp::telemetry
