// Quantifies the paper's motivating claim (Section I): FFBP "reduces the
// performance requirements significantly relative to those for the
// conventional Global Back-projection (GBP) technique". Runs both SPMD
// mappings on the simulated 16-core chip across aperture sizes: GBP's
// O(N^2 M) back-projection work grows a factor N/log2(N) faster than
// FFBP's O(N M log N), and GBP additionally re-streams the whole raw data
// set once per output row.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "sar/scene.hpp"

int main() {
  using namespace esarp;

  Table t("GBP vs FFBP on the simulated 16-core Epiphany");
  t.header({"Pulses", "GBP time (ms)", "FFBP time (ms)", "FFBP advantage",
            "GBP ext reads", "FFBP ext reads", "flops ratio"});
  CsvWriter csv(bench::out_dir() / "crossover_gbp_ffbp.csv",
                {"pulses", "gbp_ms", "ffbp_ms", "advantage", "gbp_ext_mb",
                 "ffbp_ext_mb"});

  const std::size_t max_n = bench::fast_mode() ? 128 : 256;
  for (std::size_t n = 32; n <= max_n; n *= 2) {
    const auto p = sar::test_params(n, 161);
    const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
    std::cerr << "n=" << n << ": GBP...\n";
    const auto g = core::run_gbp_epiphany(data, p, 16);
    std::cerr << "n=" << n << ": FFBP...\n";
    core::FfbpMapOptions fopt;
    fopt.n_cores = 16;
    const auto f = core::run_ffbp_epiphany(data, p, fopt);

    const double gbp_flops =
        static_cast<double>(g.perf.total_ops().flops());
    const double ffbp_flops =
        static_cast<double>(f.perf.total_ops().flops());
    t.row({std::to_string(n), bench::ms(g.seconds), bench::ms(f.seconds),
           Table::num(g.seconds / f.seconds, 1) + "x",
           format_bytes(g.perf.ext.read_bytes),
           format_bytes(f.perf.ext.read_bytes),
           Table::num(gbp_flops / ffbp_flops, 1) + "x"});
    csv.row_numeric({static_cast<double>(n), g.seconds * 1e3,
                     f.seconds * 1e3, g.seconds / f.seconds,
                     static_cast<double>(g.perf.ext.read_bytes) / 1e6,
                     static_cast<double>(f.perf.ext.read_bytes) / 1e6});
  }
  t.note("FFBP's advantage grows ~N/log2(N): the reason time-domain SAR "
         "needs factorisation to be real-time capable (paper Section I)");
  t.print(std::cout);
  return 0;
}
