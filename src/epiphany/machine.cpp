#include "epiphany/machine.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

namespace esarp::ep {

namespace {

/// ESARP_BATCH=0 forces per-event stepping, any other value forces the
/// batched-quantum fast path; unset defers to ChipConfig::batch_quanta.
/// Both modes are bit-identical (docs/performance.md) — the switch exists
/// for the equivalence tests and for engine debugging.
bool batch_quanta_with_env(bool cfg_value) {
  const char* env = std::getenv("ESARP_BATCH");
  if (env == nullptr || *env == '\0') return cfg_value;
  return std::string_view(env) != "0";
}

} // namespace

Machine::Machine(ChipConfig cfg, std::size_t ext_bytes, CoreCostParams cost,
                 Tracer* shared_tracer)
    : cfg_(cfg), cost_(cost),
      tracer_(shared_tracer != nullptr ? shared_tracer : &owned_tracer_),
      noc_(cfg), ext_port_(cfg, noc_, tracer_, &metrics_),
      ext_mem_(ext_bytes), amap_(cfg) {
  ESARP_EXPECTS(cfg.rows > 0 && cfg.cols > 0);
  sched_.set_batching(batch_quanta_with_env(cfg_.batch_quanta));
  cores_.reserve(static_cast<std::size_t>(cfg.core_count()));
  ctxs_.reserve(static_cast<std::size_t>(cfg.core_count()));
  // The sanitizer is created before the contexts so every CoreCtx can carry
  // the hook pointer; env vars (ESARP_CHECK etc.) can force it on/off.
  if (check::options_with_env(cfg_.check).enabled)
    checker_ = std::make_unique<check::CheckContext>(cfg_, sched_);
  // Likewise the fault campaign: one injector per machine, hooked into the
  // NoC and every context. Disabled plans build nothing, so the default
  // configuration simulates exactly as before.
  if (cfg_.faults.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(cfg_.faults, &metrics_);
    noc_.set_injector(injector_.get());
  }
  // And the power sampler: hooked into the NoC, the ext port and every
  // context, but purely host-side — an instrumented run is bit-identical
  // to an uninstrumented one (docs/observability.md).
  const PowerOptions power_opt = power_options_with_env(cfg_.power);
  if (power_opt.enabled) {
    power_ = std::make_unique<PowerSampler>(cfg_, power_opt);
    noc_.set_power_sampler(power_.get());
    ext_port_.set_power_sampler(power_.get());
  }
  for (int id = 0; id < cfg.core_count(); ++id) {
    cores_.push_back(std::make_unique<Core>(id, coord_of(id), cfg));
    ctxs_.push_back(std::make_unique<CoreCtx>(
        *cores_.back(), sched_, noc_, ext_port_, ext_mem_, cost_, cfg_,
        *tracer_, metrics_, checker_.get(), injector_.get(), power_.get()));
    if (checker_ != nullptr)
      checker_->register_core(id, coord_of(id), &cores_.back()->mem());
    if (power_ != nullptr)
      power_->register_core(id, &cores_.back()->spans);
  }
  if (checker_ != nullptr) checker_->register_ext(&ext_mem_);
}

Core& Machine::core(int id) {
  ESARP_EXPECTS(id >= 0 && id < core_count());
  return *cores_[static_cast<std::size_t>(id)];
}

CoreCtx& Machine::ctx(int id) {
  ESARP_EXPECTS(id >= 0 && id < core_count());
  return *ctxs_[static_cast<std::size_t>(id)];
}

Task Machine::wrap(CoreCtx& ctx, std::function<Task(CoreCtx&)> fn,
                   Scheduler& sched) {
  ctx.core().state = CoreState::kRunning;
  Task inner = fn(ctx);
  co_await std::move(inner);
  // A fail-stopped core's program returns early; keep the kFailed state
  // visible (it is what the recovery layer and diagnostics key off).
  if (ctx.core().state != CoreState::kFailed)
    ctx.core().state = CoreState::kDone;
  ctx.core().counters.finish_time = sched.now();
}

void Machine::launch(int core_id, std::function<Task(CoreCtx&)> program) {
  ESARP_EXPECTS(core_id >= 0 && core_id < core_count());
  ESARP_EXPECTS(!ran_);
  for (const auto& p : programs_)
    ESARP_EXPECTS(p.core_id != core_id); // one program per core
  programs_.push_back(
      {core_id, wrap(ctx(core_id), std::move(program), sched_)});
}

Cycles Machine::run(Cycles max_cycles) {
  ESARP_EXPECTS(!ran_);
  ESARP_EXPECTS(!programs_.empty());
  ran_ = true;
  for (auto& p : programs_) sched_.schedule_at(0, p.task.handle());
  // A planned whole-chip fail-stop reuses the scheduler watchdog as its
  // stop mechanism: nothing executes at or beyond the kill cycle. The
  // expiry is converted to fault::ChipFailed so callers can tell "the
  // chip died on schedule" apart from "the run blew its cycle budget".
  const Cycles chip_fail =
      injector_ != nullptr ? injector_->plan().chip_fail_cycle : 0;
  const bool chip_fail_first =
      chip_fail > 0 && (max_cycles == 0 || chip_fail < max_cycles);
  Cycles end = 0;
  try {
    end = sched_.run(chip_fail_first ? chip_fail : max_cycles);
  } catch (const WatchdogExpired& e) {
    if (checker_ != nullptr) checker_->finalize(/*allow_throw=*/false);
    if (chip_fail_first) {
      injector_->mark_chip_failed(e.cycle());
      std::ostringstream msg;
      msg << "whole-chip fail-stop at cycle " << e.cycle() << " ("
          << e.pending_events() << " events abandoned)";
      throw fault::ChipFailed(e.cycle(), msg.str());
    }
    // Rebuild the watchdog error with the per-core picture: which
    // programs were still live, in what state, and inside which phase.
    throw WatchdogExpired(e.cycle(), e.pending_events(),
                          ";" + blocked_cores_brief());
  }

  // Surface kernel failures and deadlocks. The sanitizer still runs its
  // teardown checks (and writes its reports) on those paths, but only a
  // clean run lets it abort with CheckFailure — a kernel exception or
  // SimDeadlock is the more precise error and must not be masked.
  try {
    for (auto& p : programs_) p.task.rethrow_if_error();
  } catch (...) {
    if (checker_ != nullptr) checker_->finalize(/*allow_throw=*/false);
    throw;
  }
  bool any_blocked = false;
  for (auto& p : programs_)
    if (!p.task.done()) any_blocked = true;
  if (any_blocked) {
    if (checker_ != nullptr) checker_->finalize(/*allow_throw=*/false);
    std::ostringstream msg;
    msg << "simulation quiesced with blocked cores at cycle " << sched_.now()
        << " (" << sched_.pending_events() << " pending events):"
        << blocked_cores_brief();
    throw SimDeadlock(msg.str());
  }
  if (checker_ != nullptr) checker_->finalize(/*allow_throw=*/true);
  return end;
}

std::string Machine::blocked_cores_brief() const {
  std::ostringstream out;
  bool any = false;
  for (const auto& p : programs_) {
    if (p.task.done()) continue;
    any = true;
    const Core& c = *cores_[static_cast<std::size_t>(p.core_id)];
    out << " core " << p.core_id << " (" << to_string(c.state);
    if (!c.spans.empty()) out << ", span " << c.spans.back();
    out << ")";
  }
  if (!any) out << " (none)";
  return out.str();
}

PerfReport Machine::report() const {
  PerfReport rep;
  rep.cfg = cfg_;
  rep.engine_events = sched_.events_processed();
  rep.engine_quanta = sched_.quanta_batched();
  rep.per_core.reserve(cores_.size());
  for (const auto& c : cores_) {
    rep.per_core.push_back(c->counters);
    rep.makespan = std::max(rep.makespan, c->counters.finish_time);
  }
  rep.noc_total = noc_.stats_total();
  rep.noc_read = noc_.stats(Mesh::kRead);
  rep.noc_write_onchip = noc_.stats(Mesh::kOnChipWrite);
  rep.noc_write_offchip = noc_.stats(Mesh::kOffChipWrite);
  rep.ext = ext_port_.stats();
  return rep;
}

} // namespace esarp::ep
