#include "sar/rda.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "fft/fft.hpp"

namespace esarp::sar {

namespace {

/// Per-(sample) op estimates for the host model: one complex multiply and
/// the butterfly share of the FFT passes.
constexpr OpCounts kFftButterflyOps{.fadd = 4, .fmul = 4, .ialu = 4,
                                    .load = 4, .store = 4};
constexpr OpCounts kComplexMacOps{.fadd = 2, .fmul = 4, .load = 4,
                                  .store = 2};

} // namespace

RdaResult range_doppler(const Array2D<cf32>& data, const RadarParams& p,
                        const RdaOptions& opt) {
  p.validate();
  ESARP_EXPECTS(data.rows() == p.n_pulses && data.cols() == p.n_range);
  ESARP_EXPECTS(fft::is_pow2(p.n_pulses));

  const std::size_t n_az = p.n_pulses;
  const std::size_t n_rg = p.n_range;
  const fft::Fft plan(n_az);
  const double lambda = p.wavelength_m();
  const double dx = p.pulse_spacing_m;

  RdaResult res;

  // ---- 1. Azimuth FFT per range bin: into the range-Doppler domain. ----
  Array2D<cf32> rd(n_az, n_rg); // rd(f, j): azimuth frequency x range
  {
    std::vector<cf32> col(n_az);
    for (std::size_t j = 0; j < n_rg; ++j) {
      for (std::size_t pu = 0; pu < n_az; ++pu) col[pu] = data(pu, j);
      plan.forward(col);
      for (std::size_t f = 0; f < n_az; ++f) rd(f, j) = col[f];
    }
  }

  // Signed spatial frequency of FFT bin f [cycles/m].
  const auto freq_of = [&](std::size_t f) {
    const double k = f <= n_az / 2 ? static_cast<double>(f)
                                   : static_cast<double>(f) -
                                         static_cast<double>(n_az);
    return k / (static_cast<double>(n_az) * dx);
  };

  // ---- 2. RCMC: in range-Doppler, a scatterer's energy sits at
  //         R0 + lambda^2 R0 fx^2 / 8 — shift it back to R0 (linear
  //         interpolation along range). ----
  if (opt.rcmc) {
    std::vector<cf32> row(n_rg);
    for (std::size_t f = 0; f < n_az; ++f) {
      const double fx = freq_of(f);
      const double factor = lambda * lambda * fx * fx / 8.0;
      for (std::size_t j = 0; j < n_rg; ++j) row[j] = rd(f, j);
      for (std::size_t j = 0; j < n_rg; ++j) {
        const double r0 = p.near_range_m + static_cast<double>(j) *
                                               p.range_bin_m;
        const double shift_bins = factor * r0 / p.range_bin_m;
        const double src = static_cast<double>(j) + shift_bins;
        const auto lo = static_cast<std::size_t>(src);
        if (src < 0.0 || lo + 1 >= n_rg) {
          rd(f, j) = {};
          continue;
        }
        const float t = static_cast<float>(src - static_cast<double>(lo));
        rd(f, j) = row[lo] + (row[lo + 1] - row[lo]) * t;
      }
    }
  }

  // ---- 3. Azimuth compression: matched filter per range gate (exact
  //         hyperbolic reference, windowed by the processed sector),
  //         then inverse azimuth FFT. ----
  res.image = Array2D<cf32>(n_az, n_rg);
  {
    std::vector<cf32> ref(n_az);
    std::vector<cf32> col(n_az);
    const double half_sector = 0.5 * p.theta_span_rad;
    for (std::size_t j = 0; j < n_rg; ++j) {
      const double r0 =
          p.near_range_m + static_cast<double>(j) * p.range_bin_m;
      // Time-domain azimuth reference: the phase history of a scatterer at
      // broadside range r0, limited to the processed angular sector.
      const double x_max = r0 * std::tan(half_sector);
      for (std::size_t pu = 0; pu < n_az; ++pu) {
        // Centre the reference at x = 0 with wrap-around (matched filter
        // applied circularly; the aperture is the full data extent).
        double x = static_cast<double>(pu) * dx;
        if (x > 0.5 * static_cast<double>(n_az) * dx)
          x -= static_cast<double>(n_az) * dx;
        if (std::abs(x) > x_max) {
          ref[pu] = {};
          continue;
        }
        const double dr = std::sqrt(r0 * r0 + x * x) - r0;
        const double phase =
            -std::fmod(4.0 * kPi / lambda * dr, 2.0 * kPi);
        ref[pu] = {static_cast<float>(std::cos(phase)),
                   static_cast<float>(std::sin(phase))};
      }
      plan.forward(ref);

      for (std::size_t f = 0; f < n_az; ++f) col[f] = rd(f, j);
      for (std::size_t f = 0; f < n_az; ++f) col[f] *= std::conj(ref[f]);
      plan.inverse(col);
      for (std::size_t pu = 0; pu < n_az; ++pu) res.image(pu, j) = col[pu];
    }
  }

  // ---- Work accounting (for the host model): 3 length-n_az FFT passes
  //      per range bin (data fwd, reference fwd, inverse) plus the
  //      spectral multiply, plus the RCMC interpolation. ----
  const std::uint64_t fft_butterflies =
      static_cast<std::uint64_t>(n_rg) * 3 *
      static_cast<std::uint64_t>(
          n_az / 2 * static_cast<std::size_t>(std::log2(n_az)));
  res.ops += fft_butterflies * kFftButterflyOps;
  res.ops += static_cast<std::uint64_t>(n_rg) * n_az * kComplexMacOps;
  if (opt.rcmc)
    res.ops += static_cast<std::uint64_t>(n_rg) * n_az *
               OpCounts{.fadd = 4, .fmul = 5, .ialu = 6, .load = 4,
                        .store = 2};
  res.host_work.ops = res.ops;
  // Column-major azimuth FFTs stride through the matrix: stream-like at
  // row granularity.
  res.host_work.stream_read_bytes =
      3 * static_cast<std::uint64_t>(n_rg) * n_az * sizeof(cf32);
  res.host_work.stream_write_bytes =
      static_cast<std::uint64_t>(n_rg) * n_az * sizeof(cf32);
  return res;
}

} // namespace esarp::sar
