// Runtime dispatch of the unified kernel API (sar/kernels.hpp): the best
// available backend is resolved once on first use from compile-time
// availability, runtime cpu detection and the ESARP_KERNELS environment
// variable, then every kernel call goes through one function-pointer
// table. The per-call indirection is amortised over the lane count each
// entry point processes.
#include "sar/kernels.hpp"

#include <cstdlib>
#include <string>
#include <string_view>

#include "common/assert.hpp"
#include "sar/kernels_impl.hpp"

namespace esarp::sar::kernels {

namespace {

using detail::KernelTable;

bool cpu_has(Backend b) {
#if defined(__x86_64__) || defined(__i386__)
  switch (b) {
    case Backend::kScalar: return true;
    case Backend::kSse2: return __builtin_cpu_supports("sse2") != 0;
    case Backend::kAvx2: return __builtin_cpu_supports("avx2") != 0;
  }
#endif
  return b == Backend::kScalar;
}

const KernelTable* table_of(Backend b) {
  switch (b) {
    case Backend::kScalar: return detail::scalar_table();
    case Backend::kSse2: return detail::sse2_table();
    case Backend::kAvx2: return detail::avx2_table();
  }
  return nullptr;
}

Backend best_available() {
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kSse2)) return Backend::kSse2;
  return Backend::kScalar;
}

/// ESARP_KERNELS=scalar|sse2|avx2 pins a backend (ignored when the named
/// backend is not available on this build/cpu); anything else — including
/// the documented "auto" — picks the best available one.
Backend initial_backend() {
  const char* env = std::getenv("ESARP_KERNELS");
  if (env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "scalar") return Backend::kScalar;
    if (v == "sse2" && backend_available(Backend::kSse2))
      return Backend::kSse2;
    if (v == "avx2" && backend_available(Backend::kAvx2))
      return Backend::kAvx2;
  }
  return best_available();
}

struct Dispatch {
  Backend backend;
  const KernelTable* table;
};

Dispatch& dispatch() {
  static Dispatch d{initial_backend(), table_of(initial_backend())};
  return d;
}

} // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kSse2: return "sse2";
    case Backend::kAvx2: return "avx2";
  }
  return "?";
}

bool backend_available(Backend b) {
  return table_of(b) != nullptr && cpu_has(b);
}

Backend active() { return dispatch().backend; }

const char* active_name() { return backend_name(active()); }

void force_backend(Backend b) {
  ESARP_REQUIRE(backend_available(b),
                std::string("kernel backend not available: ") +
                    backend_name(b));
  dispatch() = Dispatch{b, table_of(b)};
}

void merge_geometry_row(float r0, float dr, std::size_t j0, std::size_t n,
                        float cr, float d2, float inv_2d, MergeGeom* out) {
  dispatch().table->merge_geometry_row(r0, dr, j0, n, cr, d2, inv_2d, out);
}

void neville4_many(const cf32 y[4], const float* t, cf32* out,
                   std::size_t n) {
  dispatch().table->neville4_many(y, t, out, n);
}

void neville4_rows(const cf32* row0, const cf32* row1, const cf32* row2,
                   const cf32* row3, const float* t, cf32* out,
                   std::size_t n) {
  dispatch().table->neville4_rows(row0, row1, row2, row3, t, out, n);
}

void criterion_terms(const cf32* minus, const cf32* plus, float* out,
                     std::size_t n) {
  dispatch().table->criterion_terms(minus, plus, out, n);
}

void gbp_contrib_row(const float* px, const float* py, float pulse_x,
                     const cf32* pulse_row, const GbpGrid& g, cf32* acc,
                     std::size_t n) {
  dispatch().table->gbp_contrib_row(px, py, pulse_x, pulse_row, g, acc, n);
}

} // namespace esarp::sar::kernels
