// Fleet runtime contract (docs/serving.md): seeded arrival traces
// round-trip through JSON and regenerate bit-identically; a clean
// campaign meets every deadline; chaos campaigns (whole-chip fail-stop +
// DMA corruption) finish with zero lost jobs and byte-identical same-seed
// manifests; an unservable fleet aborts with FaultUnrecovered instead of
// silently dropping work.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "fault/plan.hpp"
#include "serve/fleet.hpp"
#include "serve/trace.hpp"
#include "telemetry/compare.hpp"
#include "telemetry/manifest.hpp"

namespace esarp {
namespace {

using serve::Algo;
using serve::ArrivalTrace;
using serve::ChipHealth;
using serve::Fleet;
using serve::FleetConfig;
using serve::JobState;
using serve::ServeReport;
using serve::TraceParams;

TraceParams small_trace_params(std::uint64_t seed = 5) {
  TraceParams p;
  p.n_jobs = 6;
  p.rate_hz = 2000.0;
  p.seed = seed;
  p.n_pulses = 32;
  p.n_range = 65;
  p.deadline_s = 0.01;
  return p;
}

FleetConfig small_fleet(int chips) {
  FleetConfig cfg;
  cfg.n_chips = chips;
  return cfg;
}

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- Trace generation -----------------------------------------------------

TEST(ArrivalTraceGen, SameParamsSameTrace) {
  const ArrivalTrace a = serve::make_trace(small_trace_params());
  const ArrivalTrace b = serve::make_trace(small_trace_params());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].arrival_s, b.jobs[i].arrival_s);
  }
  const ArrivalTrace c = serve::make_trace(small_trace_params(6));
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    differs = differs || a.jobs[i].arrival_s != c.jobs[i].arrival_s;
  EXPECT_TRUE(differs);
}

TEST(ArrivalTraceGen, PoissonTraceIsSortedWithDenseIds) {
  const ArrivalTrace t = serve::make_trace(small_trace_params());
  ASSERT_EQ(t.jobs.size(), 6u);
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(t.jobs[i].id, i);
    EXPECT_GE(t.jobs[i].arrival_s, 0.0);
    if (i > 0) {
      EXPECT_GE(t.jobs[i].arrival_s, t.jobs[i - 1].arrival_s);
    }
  }
}

TEST(ArrivalTraceGen, BurstyTraceHasSameInstantArrivals) {
  TraceParams p = small_trace_params();
  p.n_jobs = 32;
  p.bursty = true;
  p.burst_mean = 4.0;
  const ArrivalTrace t = serve::make_trace(p);
  ASSERT_EQ(t.jobs.size(), 32u);
  std::size_t coincident = 0;
  for (std::size_t i = 1; i < t.jobs.size(); ++i)
    if (t.jobs[i].arrival_s == t.jobs[i - 1].arrival_s) ++coincident;
  EXPECT_GT(coincident, 0u); // bursts land at one instant so queues build
}

TEST(ArrivalTraceGen, RoundTripsThroughJson) {
  const ArrivalTrace t = serve::make_trace(small_trace_params());
  const auto path = temp_file("esarp_test_trace.json");
  serve::save_trace(path, t);
  const ArrivalTrace back = serve::load_trace(path);
  EXPECT_EQ(back.seed, t.seed);
  ASSERT_EQ(back.jobs.size(), t.jobs.size());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].id, t.jobs[i].id);
    EXPECT_EQ(back.jobs[i].arrival_s, t.jobs[i].arrival_s);
    EXPECT_EQ(back.jobs[i].n_pulses, t.jobs[i].n_pulses);
    EXPECT_EQ(back.jobs[i].n_range, t.jobs[i].n_range);
    EXPECT_EQ(back.jobs[i].algo, t.jobs[i].algo);
    EXPECT_EQ(back.jobs[i].n_cores, t.jobs[i].n_cores);
    EXPECT_EQ(back.jobs[i].deadline_s, t.jobs[i].deadline_s);
  }
  std::filesystem::remove(path);
}

TEST(ArrivalTraceGen, LoadRejectsWrongSchema) {
  const auto path = temp_file("esarp_test_bad_trace.json");
  std::ofstream(path) << R"({"schema":"esarp-run-manifest/1","jobs":[]})";
  EXPECT_THROW((void)serve::load_trace(path), ContractViolation);
  std::filesystem::remove(path);
}

TEST(ArrivalTraceGen, UnknownSchemaErrorNamesPathAndSupportedVersions) {
  // The rejection must tell the user what file broke and what the loader
  // actually speaks — both supported schema strings, verbatim.
  const auto path = temp_file("esarp_test_future_trace.json");
  std::ofstream(path)
      << R"({"schema":"esarp-arrival-trace/9","seed":1,"jobs":[]})";
  try {
    (void)serve::load_trace(path);
    FAIL() << "future schema must not load";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path.string()), std::string::npos) << msg;
    EXPECT_NE(msg.find("esarp-arrival-trace/9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("esarp-arrival-trace/1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("esarp-arrival-trace/2"), std::string::npos) << msg;
  }
  std::filesystem::remove(path);
}

TEST(ArrivalTraceGen, PriorityMixAndJitterLeaveArrivalsUntouched) {
  // The per-job priority and deadline draws come from streams independent
  // of the arrival Rng, so turning them on reshapes classes and deadlines
  // without moving a single arrival — v2 stays replay-compatible with v1.
  TraceParams plain = small_trace_params();
  plain.n_jobs = 32;
  TraceParams mixed = plain;
  mixed.frac_low = 0.3;
  mixed.frac_high = 0.2;
  mixed.deadline_jitter = 0.5;
  const ArrivalTrace a = serve::make_trace(plain);
  const ArrivalTrace b = serve::make_trace(mixed);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  bool class_spread = false;
  bool deadline_spread = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival_s, b.jobs[i].arrival_s);
    EXPECT_EQ(a.jobs[i].priority, serve::Priority::kNormal);
    class_spread =
        class_spread || b.jobs[i].priority != serve::Priority::kNormal;
    deadline_spread =
        deadline_spread || b.jobs[i].deadline_s != a.jobs[i].deadline_s;
    EXPECT_GE(b.jobs[i].deadline_s, plain.deadline_s * 0.5);
    EXPECT_LE(b.jobs[i].deadline_s, plain.deadline_s * 1.5);
  }
  EXPECT_TRUE(class_spread);
  EXPECT_TRUE(deadline_spread);
}

TEST(ArrivalTraceGen, V2RoundTripKeepsPrioritiesAndDeadlines) {
  TraceParams p = small_trace_params();
  p.n_jobs = 16;
  p.frac_low = 0.4;
  p.frac_high = 0.3;
  p.deadline_jitter = 0.6;
  const ArrivalTrace t = serve::make_trace(p);
  const auto path = temp_file("esarp_test_trace_v2.json");
  serve::save_trace(path, t);
  const ArrivalTrace back = serve::load_trace(path);
  ASSERT_EQ(back.jobs.size(), t.jobs.size());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].priority, t.jobs[i].priority);
    EXPECT_EQ(back.jobs[i].deadline_s, t.jobs[i].deadline_s);
  }
  std::filesystem::remove(path);
}

TEST(ArrivalTraceGen, V1TracesLoadWithEveryJobNormal) {
  // A v1 file has no "priority" field; the loader defaults every job to
  // the normal class so pre-overload traces replay under the new fleet.
  const auto path = temp_file("esarp_test_trace_v1.json");
  std::ofstream(path) << R"({
    "schema": "esarp-arrival-trace/1",
    "seed": 3,
    "jobs": [
      {"id": 0, "arrival_s": 0.0, "n_pulses": 32, "n_range": 65,
       "algo": "ffbp", "n_cores": 16, "deadline_s": 0.01},
      {"id": 1, "arrival_s": 0.001, "n_pulses": 32, "n_range": 65,
       "algo": "gbp", "n_cores": 16, "deadline_s": 0.02,
       "priority": "high"}
    ]
  })";
  const ArrivalTrace t = serve::load_trace(path);
  ASSERT_EQ(t.jobs.size(), 2u);
  EXPECT_EQ(t.jobs[0].priority, serve::Priority::kNormal);
  // A v1 file that happens to carry the field is accepted leniently.
  EXPECT_EQ(t.jobs[1].priority, serve::Priority::kHigh);
  std::filesystem::remove(path);
}

TEST(ServeMath, NearestRankPercentile) {
  std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(serve::percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(serve::percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::percentile(xs, 0.01), 1.0);
}

// --- Clean campaigns ------------------------------------------------------

TEST(FleetServe, CleanCampaignMeetsEveryDeadline) {
  Fleet fleet(small_fleet(2));
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  const ServeReport rep = fleet.run(trace);
  EXPECT_EQ(rep.counters.jobs_total, 6u);
  EXPECT_EQ(rep.counters.jobs_met, 6u);
  EXPECT_EQ(rep.counters.jobs_lost, 0u);
  EXPECT_EQ(rep.counters.attempts, 6u);
  EXPECT_EQ(rep.counters.retries, 0u);
  EXPECT_EQ(rep.counters.migrations, 0u);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 1.0);
  EXPECT_GT(rep.throughput_jobs_per_s, 0.0);
  EXPECT_GT(rep.energy_per_image_j, 0.0);
  EXPECT_GE(rep.latency_p99_s, rep.latency_p50_s);
  for (const auto& job : rep.jobs) {
    EXPECT_EQ(job.state, JobState::kMet);
    EXPECT_LE(job.latency_s, 0.01);
    EXPECT_EQ(job.attempts, 1);
  }
  for (const auto& chip : rep.chips)
    EXPECT_EQ(chip.health, ChipHealth::kHealthy);
}

TEST(FleetServe, SameSeedCampaignsAreBitIdentical) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.5;
  cfg.chaos.dma_corrupt_rate = 2e-6;
  const ServeReport a = Fleet(cfg).run(trace);
  const ServeReport b = Fleet(cfg).run(trace);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);

  const auto pa = temp_file("esarp_serve_a.json");
  const auto pb = temp_file("esarp_serve_b.json");
  telemetry::RunManifest ma("serve"), mb("serve");
  serve::fill_serve_manifest(ma, cfg, trace, a);
  serve::fill_serve_manifest(mb, cfg, trace, b);
  ma.write(pa);
  mb.write(pb);
  EXPECT_EQ(slurp(pa), slurp(pb)); // the CI serve-smoke `cmp` property
  std::filesystem::remove(pa);
  std::filesystem::remove(pb);
}

TEST(FleetServe, HostThreadCountDoesNotChangeTheCampaign) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.5;
  const std::uint64_t seq = Fleet(cfg).run(trace).schedule_hash;
  cfg.host_jobs = 4;
  EXPECT_EQ(Fleet(cfg).run(trace).schedule_hash, seq);
}

// --- Chaos campaigns ------------------------------------------------------

TEST(FleetServe, ChaosCampaignLosesNoJobs) {
  // Seeded so the campaign actually exercises the fail-stop path: chips
  // die mid-job, their jobs migrate, and every job still reaches a
  // terminal state (met, late, or degraded — never lost).
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.5;
  cfg.chaos.dma_corrupt_rate = 2e-6;
  const ServeReport rep = Fleet(cfg).run(trace);
  EXPECT_GE(rep.counters.chip_kills, 1u);
  EXPECT_GE(rep.counters.migrations, 1u);
  EXPECT_GE(rep.counters.retries, rep.counters.chip_kills);
  EXPECT_EQ(rep.counters.jobs_lost, 0u);
  EXPECT_EQ(rep.counters.jobs_met + rep.counters.jobs_late +
                rep.counters.jobs_degraded,
            rep.counters.jobs_total);
  std::size_t failed = 0;
  for (const auto& chip : rep.chips)
    if (chip.health == ChipHealth::kFailed) {
      ++failed;
      EXPECT_GE(chip.failed_at_s, 0.0);
    }
  EXPECT_EQ(failed, rep.counters.chip_kills);
}

TEST(FleetServe, KilledAttemptsEventuallyDegrade) {
  // With a one-attempt retry budget, a single fail-stop pushes the job
  // down the degradation ladder instead of burning more full-quality
  // retries. Scan a few chaos seeds for a campaign that both degrades and
  // completes — the scan itself is deterministic.
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    FleetConfig cfg = small_fleet(4);
    cfg.policy.max_attempts = 1;
    cfg.chaos.seed = seed;
    cfg.chaos.chip_kill_rate = 0.45;
    try {
      const ServeReport rep = Fleet(cfg).run(trace);
      if (rep.counters.degradations == 0) continue;
      found = true;
      EXPECT_GE(rep.counters.jobs_degraded, 1u);
      EXPECT_EQ(rep.counters.jobs_lost, 0u);
      EXPECT_LT(rep.slo_attainment, 1.0);
      for (const auto& job : rep.jobs) {
        if (job.state == JobState::kDegraded) {
          EXPECT_GE(job.degrade_level, 1);
        }
      }
    } catch (const fault::FaultUnrecovered&) {
      // This seed killed the whole fleet — a legal outcome, keep scanning.
    }
  }
  EXPECT_TRUE(found);
}

TEST(FleetServe, ExhaustedFleetAbortsLoudly) {
  // Every dispatch kills its chip: after both chips die the fleet cannot
  // make progress and must abort with FaultUnrecovered (CLI exit 5), not
  // drop the outstanding jobs.
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  cfg.chaos.chip_kill_rate = 1.0;
  Fleet fleet(cfg);
  EXPECT_THROW((void)fleet.run(trace), fault::FaultUnrecovered);
}

TEST(FleetServe, PersistentCorruptionExhaustsTheDegradationLadder) {
  // Corrupting every transfer defeats the checksum verify at every
  // degradation level, so the job runs out of ladder and the campaign
  // aborts instead of returning a corrupt image.
  TraceParams p = small_trace_params();
  p.n_jobs = 1;
  const ArrivalTrace trace = serve::make_trace(p);
  FleetConfig cfg = small_fleet(2);
  cfg.policy.max_attempts = 1;
  cfg.policy.max_degrade = 1;
  cfg.chaos.dma_corrupt_rate = 1.0;
  Fleet fleet(cfg);
  EXPECT_THROW((void)fleet.run(trace), fault::FaultUnrecovered);
}

// --- Overload control -------------------------------------------------

using serve::Priority;

/// One hand-built job of the memoized 32x65/16-core shape (clean service
/// ~98 us on the default chip) — the unit tests pin scheduling decisions
/// with deadlines expressed in multiples of that service time.
serve::JobSpec job_at(int id, double arrival_s, double deadline_s,
                      Priority prio = Priority::kNormal) {
  serve::JobSpec j;
  j.id = id;
  j.arrival_s = arrival_s;
  j.n_pulses = 32;
  j.n_range = 65;
  j.n_cores = 16;
  j.deadline_s = deadline_s;
  j.priority = prio;
  return j;
}

TEST(FleetServe, BackoffShiftClampsPastTwentyDoublings) {
  const double base = 100e-6;
  EXPECT_DOUBLE_EQ(serve::backoff_delay_s(base, 1), base);
  EXPECT_DOUBLE_EQ(serve::backoff_delay_s(base, 2), base * 2.0);
  EXPECT_DOUBLE_EQ(serve::backoff_delay_s(base, 5), base * 16.0);
  const double ceiling = base * static_cast<double>(1u << 20);
  EXPECT_DOUBLE_EQ(serve::backoff_delay_s(base, 21), ceiling);
  // Pathological retry streaks saturate instead of overflowing.
  EXPECT_DOUBLE_EQ(serve::backoff_delay_s(base, 22), ceiling);
  EXPECT_DOUBLE_EQ(serve::backoff_delay_s(base, 1000), ceiling);
}

TEST(FleetServe, EdfServesUrgentDeadlinesFirst) {
  // Four same-instant jobs on one chip, two tight deadlines (1.5x / 2.5x
  // the ~98 us service time) interleaved with two loose ones. EDF runs
  // the tight pair first and meets everything; FIFO runs in id order and
  // blows both tight deadlines.
  ArrivalTrace t;
  t.seed = 1;
  t.jobs = {job_at(0, 0.0, 0.01), job_at(1, 0.0, 0.00015),
            job_at(2, 0.0, 0.01), job_at(3, 0.0, 0.00025)};
  FleetConfig cfg = small_fleet(1);
  cfg.policy.dispatch = serve::DispatchOrder::kEdf;
  const ServeReport edf = Fleet(cfg).run(t);
  EXPECT_EQ(edf.counters.jobs_met, 4u);
  cfg.policy.dispatch = serve::DispatchOrder::kFifo;
  const ServeReport fifo = Fleet(cfg).run(t);
  EXPECT_EQ(fifo.counters.jobs_met, 2u);
  EXPECT_EQ(fifo.counters.jobs_late, 2u);
  EXPECT_EQ(fifo.jobs[1].state, JobState::kLate);
  EXPECT_EQ(fifo.jobs[3].state, JobState::kLate);
}

TEST(FleetServe, HighPriorityClassJumpsTheEdfQueue) {
  // Same deadline everywhere: the high-priority job is served first even
  // though its id sorts last.
  ArrivalTrace t;
  t.seed = 1;
  t.jobs = {job_at(0, 0.0, 0.01), job_at(1, 0.0, 0.01),
            job_at(2, 0.0, 0.01), job_at(3, 0.0, 0.01, Priority::kHigh)};
  FleetConfig cfg = small_fleet(1);
  const ServeReport rep = Fleet(cfg).run(t);
  for (int id = 0; id < 3; ++id)
    EXPECT_LT(rep.jobs[3].latency_s, rep.jobs[id].latency_s) << id;
}

TEST(FleetServe, EdfEqualsFifoOnUniformCleanTraces) {
  // With one deadline and one priority class EDF degenerates to FIFO, so
  // the default dispatch reproduces the legacy clean schedule bit for bit
  // (the PR 8 back-compat property the CI serve-smoke job pins).
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  cfg.policy.dispatch = serve::DispatchOrder::kEdf;
  const std::uint64_t edf = Fleet(cfg).run(trace).schedule_hash;
  cfg.policy.dispatch = serve::DispatchOrder::kFifo;
  EXPECT_EQ(Fleet(cfg).run(trace).schedule_hash, edf);
}

TEST(FleetServe, ShedRetiresDoomedJobsExplicitly) {
  // Six same-instant low-priority jobs, one chip, deadline ~2.5 service
  // times: two can make it, the other four are doomed the moment they
  // queue. Admission control retires exactly those four with explicit
  // kShed tombstones — never a silent drop.
  ArrivalTrace t;
  t.seed = 1;
  for (int i = 0; i < 6; ++i)
    t.jobs.push_back(job_at(i, 0.0, 0.00025, Priority::kLow));
  FleetConfig cfg = small_fleet(1);
  cfg.policy.shed.enabled = true;
  const ServeReport rep = Fleet(cfg).run(t);
  EXPECT_EQ(rep.counters.jobs_met, 2u);
  EXPECT_EQ(rep.counters.jobs_late, 0u);
  EXPECT_EQ(rep.counters.jobs_shed, 4u);
  EXPECT_EQ(rep.counters.jobs_lost, 0u);
  EXPECT_EQ(rep.counters.jobs_met + rep.counters.jobs_late +
                rep.counters.jobs_degraded + rep.counters.jobs_shed,
            rep.counters.jobs_total);
  std::size_t shed_records = 0;
  for (const auto& rec : rep.jobs) {
    if (rec.state != JobState::kShed) continue;
    ++shed_records;
    EXPECT_EQ(rec.chip, -1);
    EXPECT_EQ(rec.attempts, 0); // retired before any dispatch
    EXPECT_EQ(rec.sim_cycles, 0u);
    EXPECT_EQ(rec.image_checksum, 0u);
    EXPECT_GE(rec.finish_s, rec.spec.arrival_s);
  }
  EXPECT_EQ(shed_records, rep.counters.jobs_shed);
  // The analytic cost model cross-checks the wait estimator; the memoized
  // makespans and the model must roughly agree for shedding to be sane.
  EXPECT_GT(rep.shed_model_max_rel_err, 0.0);
  EXPECT_LT(rep.shed_model_max_rel_err, 0.25);

  // Same trace without shedding: the doomed jobs run anyway and go late.
  cfg.policy.shed.enabled = false;
  const ServeReport noshed = Fleet(cfg).run(t);
  EXPECT_EQ(noshed.counters.jobs_met, 2u);
  EXPECT_EQ(noshed.counters.jobs_late, 4u);
  EXPECT_EQ(noshed.counters.jobs_shed, 0u);
  EXPECT_DOUBLE_EQ(noshed.shed_model_max_rel_err, 0.0);
}

TEST(FleetServe, ShedRespectsThePriorityFence) {
  // Normal-priority jobs sit above max_shed_priority = kLow, so the same
  // doomed queue runs to completion (late) instead of shedding.
  ArrivalTrace t;
  t.seed = 1;
  for (int i = 0; i < 6; ++i)
    t.jobs.push_back(job_at(i, 0.0, 0.00025, Priority::kNormal));
  FleetConfig cfg = small_fleet(1);
  cfg.policy.shed.enabled = true;
  ASSERT_EQ(cfg.policy.shed.max_shed_priority, Priority::kLow);
  const ServeReport rep = Fleet(cfg).run(t);
  EXPECT_EQ(rep.counters.jobs_shed, 0u);
  EXPECT_EQ(rep.counters.jobs_late, 4u);
  // Raising the fence to normal sheds them.
  cfg.policy.shed.max_shed_priority = Priority::kNormal;
  EXPECT_EQ(Fleet(cfg).run(t).counters.jobs_shed, 4u);
}

TEST(FleetServe, HedgesAreAccountedAndDeterministic) {
  // A huge margin factor hedges every job that finds a second chip free.
  // On a clean fleet the original always delivers first (launch order
  // breaks the same-instant tie), so every hedge is cancelled and counted
  // wasted — and the whole campaign stays bit-reproducible.
  TraceParams p = small_trace_params();
  const ArrivalTrace trace = serve::make_trace(p);
  FleetConfig cfg = small_fleet(2);
  cfg.policy.hedge.enabled = true;
  cfg.policy.hedge.margin_factor = 1e6;
  const ServeReport a = Fleet(cfg).run(trace);
  const ServeReport b = Fleet(cfg).run(trace);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_GE(a.counters.hedges_launched, 1u);
  EXPECT_EQ(a.counters.hedge_wins, 0u);
  EXPECT_EQ(a.counters.hedge_wins + a.counters.hedge_wasted,
            a.counters.hedges_launched);
  EXPECT_EQ(a.counters.hedge_cancelled, a.counters.hedge_wasted);
  EXPECT_EQ(a.counters.jobs_lost, 0u);
  std::uint64_t per_job_hedges = 0;
  for (const auto& rec : a.jobs) {
    EXPECT_LE(rec.hedges, 1); // once per job lifetime
    per_job_hedges += static_cast<std::uint64_t>(rec.hedges);
  }
  EXPECT_EQ(per_job_hedges, a.counters.hedges_launched);
}

TEST(FleetServe, HedgeWinsWhenTheOriginalChipDies) {
  // Under chip-kill chaos a hedge can outlive its original: scan seeds
  // (deterministically) for a campaign where that happens and check the
  // win is accounted and the job still delivered exactly once.
  TraceParams p = small_trace_params();
  p.n_jobs = 8;
  const ArrivalTrace trace = serve::make_trace(p);
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    FleetConfig cfg = small_fleet(3);
    cfg.chaos.seed = seed;
    cfg.chaos.chip_kill_rate = 0.4;
    cfg.policy.hedge.enabled = true;
    cfg.policy.hedge.margin_factor = 1e6;
    try {
      const ServeReport rep = Fleet(cfg).run(trace);
      EXPECT_EQ(rep.counters.hedge_wins + rep.counters.hedge_wasted,
                rep.counters.hedges_launched);
      EXPECT_EQ(rep.counters.jobs_lost, 0u);
      if (rep.counters.hedge_wins == 0) continue;
      found = true;
    } catch (const fault::FaultUnrecovered&) {
      // This seed killed the whole fleet — legal, keep scanning.
    }
  }
  EXPECT_TRUE(found);
}

TEST(FleetServe, DegradedChipsOnlyTakeOverflow) {
  // Sequential load: every attempt lands on the healthy chip and the
  // pre-degraded one stays idle. Burst load: the degraded chip is still
  // better than queueing, so it takes the overflow.
  FleetConfig cfg = small_fleet(2);
  cfg.initial_health = {ChipHealth::kHealthy, ChipHealth::kDegraded};

  ArrivalTrace spread;
  spread.seed = 1;
  for (int i = 0; i < 4; ++i)
    spread.jobs.push_back(job_at(i, i * 0.001, 0.01));
  const ServeReport seq = Fleet(cfg).run(spread);
  EXPECT_EQ(seq.chips[0].attempts, 4u);
  EXPECT_EQ(seq.chips[1].attempts, 0u);
  EXPECT_EQ(seq.chips[1].health, ChipHealth::kDegraded);

  ArrivalTrace burst;
  burst.seed = 1;
  for (int i = 0; i < 4; ++i)
    burst.jobs.push_back(job_at(i, 0.0, 0.01));
  const ServeReport par = Fleet(cfg).run(burst);
  EXPECT_GE(par.chips[1].attempts, 1u);
}

TEST(FleetServe, ProbationRestoresDegradedChips) {
  // A pre-degraded chip earns back kHealthy after probation_clean_limit
  // consecutive clean attempts; with probation disabled (the PR 8
  // default) degraded is forever.
  FleetConfig cfg = small_fleet(1);
  cfg.initial_health = {ChipHealth::kDegraded};
  ArrivalTrace t;
  t.seed = 1;
  for (int i = 0; i < 5; ++i)
    t.jobs.push_back(job_at(i, i * 0.001, 0.01));

  const ServeReport frozen = Fleet(cfg).run(t);
  EXPECT_EQ(frozen.chips[0].health, ChipHealth::kDegraded);
  EXPECT_EQ(frozen.counters.chip_recoveries, 0u);

  cfg.policy.probation_clean_limit = 3;
  const ServeReport rep = Fleet(cfg).run(t);
  EXPECT_EQ(rep.chips[0].health, ChipHealth::kHealthy);
  EXPECT_EQ(rep.chips[0].recoveries, 1u);
  EXPECT_EQ(rep.counters.chip_recoveries, 1u);
  EXPECT_EQ(rep.counters.jobs_met, 5u);
}

TEST(FleetServe, OverloadPoliciesKeepHostThreadInvariance) {
  // Everything on at once — EDF, shedding, hedging, probation, chaos —
  // and the schedule hash still must not depend on host parallelism.
  TraceParams p = small_trace_params();
  p.n_jobs = 16;
  p.bursty = true;
  p.burst_mean = 4.0;
  p.rate_hz = 40000.0;
  p.deadline_s = 0.0005;
  p.frac_low = 0.3;
  p.frac_high = 0.2;
  p.deadline_jitter = 0.5;
  const ArrivalTrace trace = serve::make_trace(p);
  FleetConfig cfg = small_fleet(4);
  cfg.chaos.seed = 7;
  cfg.chaos.chip_kill_rate = 0.1;
  cfg.policy.shed.enabled = true;
  cfg.policy.hedge.enabled = true;
  cfg.policy.probation_clean_limit = 2;
  const ServeReport seq = Fleet(cfg).run(trace);
  cfg.host_jobs = 4;
  const ServeReport par = Fleet(cfg).run(trace);
  EXPECT_EQ(par.schedule_hash, seq.schedule_hash);
  EXPECT_EQ(seq.counters.jobs_met + seq.counters.jobs_late +
                seq.counters.jobs_degraded + seq.counters.jobs_shed,
            seq.counters.jobs_total);
  EXPECT_EQ(seq.counters.jobs_lost, 0u);
}

// --- Manifest -------------------------------------------------------------

TEST(ServeManifest, CarriesTheServeSchemaAndComparesClean) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  const ServeReport rep = Fleet(cfg).run(trace);
  telemetry::RunManifest m("serve");
  serve::fill_serve_manifest(m, cfg, trace, rep);
  std::ostringstream os;
  m.write(os);
  const JsonValue doc = parse_json(os.str());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "esarp-serve-manifest/2");
  const JsonValue* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  for (const char* key :
       {"jobs_total", "jobs_lost", "latency_p99_s", "slo_attainment",
        "throughput_jobs_per_s", "energy_per_image_j", "retries",
        "migrations", "degradations", "chip_kills", "schedule_hash_lo",
        "jobs_shed", "hedges_launched", "hedge_wins", "hedge_wasted",
        "hedge_cancelled", "chip_probations", "chip_recoveries",
        "shed_model_max_rel_err"}) {
    EXPECT_NE(results->find(key), nullptr) << key;
  }
  // compare_manifests accepts the serve schema and a self-compare is
  // clean at zero tolerance (the CI regression gate).
  telemetry::CompareOptions opt;
  opt.default_threshold = 0.0;
  opt.latency_slo_band = 0.0;
  const auto cmp = telemetry::compare_manifests(doc, doc, opt);
  EXPECT_TRUE(cmp.ok());
}

TEST(ServeManifest, MetricsRegistryMirrorsTheCounters) {
  const ArrivalTrace trace = serve::make_trace(small_trace_params());
  FleetConfig cfg = small_fleet(2);
  const ServeReport rep = Fleet(cfg).run(trace);
  telemetry::MetricsRegistry reg;
  serve::fill_serve_metrics(reg, rep);
  telemetry::RunManifest m("serve");
  m.set_metrics(&reg);
  std::ostringstream os;
  m.write(os);
  const JsonValue doc = parse_json(os.str());
  const JsonValue* counters = doc.find_path("metrics.counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* jobs = counters->find("serve.jobs_total");
  ASSERT_NE(jobs, nullptr);
  EXPECT_DOUBLE_EQ(jobs->as_number(), 6.0);
  const JsonValue* gauges = doc.find_path("metrics.gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("serve.slo_attainment"), nullptr);
}

} // namespace
} // namespace esarp
