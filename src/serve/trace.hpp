// Synthetic arrival traces for the fleet runtime (docs/serving.md).
//
// A trace is the replayable input of a serve campaign: a seeded list of
// JobSpecs sorted by arrival time. Two generators cover the load shapes
// latency studies care about — a Poisson process (memoryless steady load)
// and a bursty process (Poisson bursts with geometric sizes, arrivals
// inside a burst landing at the same instant so the queue actually
// builds). Traces round-trip through JSON ("esarp-arrival-trace/2", which
// adds a per-job "priority" class; v1 files still load with every job
// defaulting to normal priority) so CI can pin one file and replay it
// forever.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "serve/job.hpp"

namespace esarp::serve {

/// Knobs for the trace generators. Every job in a generated trace shares
/// the scene/algorithm/deadline template; heterogeneous traces can be
/// edited or synthesized as JSON.
struct TraceParams {
  std::size_t n_jobs = 16;
  double rate_hz = 400.0; ///< mean arrival rate (jobs per second)
  bool bursty = false;    ///< burst arrivals instead of a plain Poisson
  double burst_mean = 4.0; ///< mean jobs per burst (bursty only, >= 1)
  std::uint64_t seed = 1;
  std::size_t n_pulses = 64;
  std::size_t n_range = 101;
  Algo algo = Algo::kFfbp;
  int n_cores = 16;
  double deadline_s = 0.05;
  /// Priority mix: each job independently draws low with frac_low, high
  /// with frac_high, normal otherwise. The draw comes from a SplitMix64
  /// stream keyed on (seed, job id) that is independent of the arrival
  /// process, so (frac_low, frac_high) never perturb arrival times — a
  /// v2 trace with an all-normal mix has byte-identical arrivals to the
  /// v1 trace of the same seed. Requires frac_low + frac_high <= 1.
  double frac_low = 0.0;
  double frac_high = 0.0;
  /// Per-job deadline spread: job i's deadline is deadline_s scaled by a
  /// uniform factor in [1 - jitter, 1 + jitter], drawn from the same
  /// arrival-independent per-job stream as the priority class. 0 keeps
  /// the uniform deadline. Heterogeneous deadlines are what make EDF
  /// dispatch meaningfully different from FIFO. Requires [0, 1).
  double deadline_jitter = 0.0;
};

struct ArrivalTrace {
  std::uint64_t seed = 0;
  std::vector<JobSpec> jobs; ///< sorted by (arrival_s, id); ids are dense
};

/// Generate a trace from `p` (Poisson or bursty per p.bursty). Pure
/// function of the parameters — same params, same trace, byte for byte.
[[nodiscard]] ArrivalTrace make_trace(const TraceParams& p);

/// Write the trace as "esarp-arrival-trace/2" JSON (atomic tmp + rename).
void save_trace(const std::filesystem::path& path, const ArrivalTrace& t);

/// Load a trace written by save_trace (or hand-authored to either
/// supported schema): "esarp-arrival-trace/2" carries per-job "priority",
/// "esarp-arrival-trace/1" defaults every job to normal. Any other schema
/// is rejected with the file path and both supported schemas named in the
/// error. Throws ContractViolation on schema/shape errors.
[[nodiscard]] ArrivalTrace load_trace(const std::filesystem::path& path);

} // namespace esarp::serve
