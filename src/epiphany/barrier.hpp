// All-to-one flag barrier across participating cores.
//
// Models the SPMD synchronisation the paper's FFBP implementation needs
// between merge iterations: each core writes an arrival flag to a master
// core, the master releases everyone by writing flags back. The release
// cost is charged as one round of flag traffic on the cMesh.
//
// Fault campaigns (docs/fault-injection.md) switch waiters to a resilient
// protocol: instead of sleeping on a wake list they poll the generation
// flag, and when a crossing stalls past the configured timeout they probe
// for fail-stopped members. A confirmed-failed member that has not arrived
// is removed from the party permanently (the SAR kernels then repartition
// its work), so the barrier completes with the survivors instead of
// deadlocking. Detection is oracle-confirmed — a slow core is never
// declared dead — and purely cycle-deterministic.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "epiphany/core_ctx.hpp"
#include "epiphany/task.hpp"
#include "fault/plan.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::ep {

class SimBarrier {
public:
  /// `metrics` (optional, must outlive the barrier) receives per-crossing
  /// wait-time and wait-imbalance histograms plus a crossings counter.
  SimBarrier(Scheduler& sched, Noc& noc, const ChipConfig& cfg, int parties,
             Coord master = {0, 0},
             telemetry::MetricsRegistry* metrics = nullptr)
      : sched_(sched), noc_(noc), cfg_(cfg), parties_(parties),
        initial_parties_(parties), master_(master) {
    ESARP_EXPECTS(parties > 0);
    // Default membership: core ids 0..parties-1 (what both SAR mappings
    // use). Failure probing needs the ids, not just the count.
    members_.resize(static_cast<std::size_t>(parties));
    std::iota(members_.begin(), members_.end(), 0);
    arrived_ids_.assign(members_.size(), false);
    if (metrics != nullptr) {
      wait_hist_ = &metrics->cycle_histogram("barrier.wait_cycles");
      imbalance_hist_ = &metrics->cycle_histogram("barrier.imbalance_cycles");
      crossings_counter_ = &metrics->counter("barrier.crossings");
    }
  }

  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;

  /// Override the participating core ids (size must equal `parties`).
  void set_members(std::vector<int> members) {
    ESARP_EXPECTS(static_cast<int>(members.size()) == parties_);
    members_ = std::move(members);
  }

  TaskT<void> arrive_and_wait(CoreCtx& ctx) {
    // Report the construction-time arity: a fault campaign can legally
    // shrink the live party below it, which is recovery, not a hazard.
    if (ctx.checker() != nullptr)
      ctx.checker()->on_barrier_arrive(this, initial_parties_, ctx.id());
    const Cycles entered = sched_.now();
    // Arrival flag: 8-byte write to the master core.
    const Cycles flag_arrival = noc_.transfer(ctx.coord(), master_, 8,
                                              sched_.now(), Mesh::kOnChipWrite);
    latest_arrival_ = std::max(latest_arrival_, flag_arrival);

    const std::uint64_t my_generation = generation_;
    if (arrived_ == 0) first_entered_ = entered;
    ++arrived_;
    mark_arrived(ctx.id());
    fault::FaultInjector* inj = ctx.fault_injector();
    const bool resilient = inj != nullptr && inj->plan().resilient;
    // Resilient waiters detect a completed crossing only at their next poll
    // tick, up to barrier_poll cycles late and staggered per core. Recovery
    // kernels need every survivor to resume at ONE cycle (their host-side
    // snapshots of checkpoint flags / the live set must agree), so
    // complete_crossing pushes the release out past the last possible
    // detection tick; record the quantum it needs before completing.
    if (resilient) poll_quantum_ = inj->plan().retry.barrier_poll;
    if (arrived_ >= parties_) {
      complete_crossing(entered);
    } else if (!resilient) {
      ctx.core().state = CoreState::kWaitBarrier;
      while (generation_ == my_generation) co_await waiters_.wait();
      ctx.core().state = CoreState::kRunning;
    } else {
      // Resilient waiter: poll the generation flag so a stalled crossing
      // can escalate to failure detection instead of sleeping forever.
      const fault::RetryPolicy& pol = inj->plan().retry;
      ctx.core().state = CoreState::kWaitBarrier;
      while (generation_ == my_generation) {
        co_await DelayFor{sched_, pol.barrier_poll};
        if (generation_ != my_generation) break;
        const Cycles waited = sched_.now() - entered;
        if (waited >= pol.barrier_abandon)
          throw fault::FaultUnrecovered(
              "barrier crossing abandoned: core " + std::to_string(ctx.id()) +
              " waited " + std::to_string(waited) + " cycles at generation " +
              std::to_string(my_generation));
        if (waited >= pol.barrier_timeout &&
            probe_failures(*inj, sched_.now())) {
          // Degradation begins: the live party shrank, so the checker's
          // shadow arity bookkeeping no longer applies.
          if (ctx.checker() != nullptr) ctx.checker()->set_fault_degraded();
          if (arrived_ >= parties_) complete_crossing(entered);
        }
      }
      ctx.core().state = CoreState::kRunning;
    }
    Cycles rel = release_time_;
    if (resilient && resilient_release_ > rel) rel = resilient_release_;
    if (rel > sched_.now()) co_await DelayUntil{sched_, rel};
    ctx.core().counters.barrier_wait += sched_.now() - entered;
    ctx.tracer().add(ctx.id(), SegmentKind::kBarrier, entered, sched_.now());
    if (wait_hist_ != nullptr)
      wait_hist_->observe(static_cast<double>(sched_.now() - entered));
    if (crossings_counter_ != nullptr) crossings_counter_->add(1);
    ++crossings_;
  }

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t crossings() const { return crossings_; }
  /// Live party size (shrinks as fail-stopped members are detected).
  [[nodiscard]] int parties() const { return parties_; }

private:
  void mark_arrived(int core_id) {
    for (std::size_t i = 0; i < members_.size(); ++i)
      if (members_[i] == core_id) arrived_ids_[i] = true;
  }

  /// Remove members whose fail-stop trigger has passed and who have not
  /// arrived this generation. Returns true when anything was removed.
  /// Removal is permanent: a fail-stopped core never arrives again (the
  /// resilient kernels check fail_stop_due before every arrival).
  bool probe_failures(fault::FaultInjector& inj, Cycles now) {
    bool removed = false;
    for (std::size_t i = members_.size(); i-- > 0;) {
      if (arrived_ids_[i] ||
          !inj.fail_stop_due(members_[i],
                             static_cast<std::uint64_t>(now)))
        continue;
      inj.count_detected(fault::Site::kFailStop);
      members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(i));
      arrived_ids_.erase(arrived_ids_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      --parties_;
      removed = true;
    }
    ESARP_ENSURES(parties_ > 0);
    return removed;
  }

  void complete_crossing(Cycles entered) {
    arrived_ = 0;
    std::fill(arrived_ids_.begin(), arrived_ids_.end(), false);
    ++generation_;
    // Wait imbalance: gap between the earliest and latest arrival in this
    // crossing — the paper's load-balance story in one number.
    if (imbalance_hist_ != nullptr)
      imbalance_hist_->observe(static_cast<double>(entered - first_entered_));
    // Release flags: master writes back to every participant; charge the
    // farthest-corner delivery as the common release time.
    const Cycles max_hops =
        static_cast<Cycles>((cfg_.rows - 1) + (cfg_.cols - 1)) *
        cfg_.hop_latency;
    release_time_ = latest_arrival_ + max_hops + 2 /*flag write*/;
    // A resilient poller notices this crossing at most poll_quantum_ cycles
    // from now; releasing past that bound puts every survivor — pollers and
    // the completer alike — at the same resume cycle.
    resilient_release_ =
        std::max(release_time_, sched_.now() + poll_quantum_ + 1);
    latest_arrival_ = 0;
    waiters_.wake_all(sched_);
  }

  Scheduler& sched_;
  Noc& noc_;
  const ChipConfig& cfg_;
  int parties_;
  const int initial_parties_;
  Coord master_;
  std::vector<int> members_;      ///< live participant core ids
  std::vector<bool> arrived_ids_; ///< arrived-this-generation, per member
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t crossings_ = 0;
  Cycles latest_arrival_ = 0;
  Cycles release_time_ = 0;
  Cycles resilient_release_ = 0; ///< aligned release for resilient pollers
  Cycles poll_quantum_ = 0;      ///< RetryPolicy::barrier_poll of the waiters
  Cycles first_entered_ = 0;
  telemetry::Histogram* wait_hist_ = nullptr;
  telemetry::Histogram* imbalance_hist_ = nullptr;
  telemetry::Counter* crossings_counter_ = nullptr;
  WaitList waiters_;
};

} // namespace esarp::ep
