// esarp_compare — regression check between two run manifests.
//
//   esarp_compare base.manifest.json current.manifest.json
//                 [--threshold 0.05] [--metric key=thr ...]
//                 [--noisy-metric pattern=thr ...] [--verbose]
//
// Diffs the "results" sections with a relative threshold (regression
// direction inferred from the key name: throughput-like keys regress
// downward, time/energy/stall-like keys upward). Metrics entries are
// informational unless opted in with --metric, e.g.
//
//   esarp_compare a.json b.json --metric results.makespan_cycles=0.01
//       --metric "metrics.counters.ext.read.bytes=0.0"
//
// --noisy-metric widens (or opts in) every key matching a `*`/`?` glob —
// the go-to for machine-varying wall-clock keys next to a zero-tolerance
// default, e.g.
//
//   esarp_compare a.json b.json --threshold 0.0 --noisy-metric 'wall_*=0.15'
//
// Resolution order per key: --metric exact match, first matching
// --noisy-metric pattern, then the builtin latency/SLO noise band (keys
// named latency_* or slo_* default to a 10% relative band because order
// statistics over small job populations are legitimately noisy — override
// with --latency-band, e.g. --latency-band 0.0 when diffing same-seed
// deterministic runs), then the default threshold (results.* only). A
// pattern that matches nothing is fine; an exact --metric key missing from
// either manifest is a named failure.
//
// Exit status: 0 = no regression, 1 = regression past threshold (which
// includes a --metric key that is missing from either manifest or is not
// numeric — reported as a named FAILED line, not a parse abort),
// 2 = usage or unreadable/invalid manifest. CI runs a self-compare of the
// fast-mode table1_ffbp manifest as a smoke check (.github/workflows).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/compare.hpp"

int main(int argc, char** argv) {
  using namespace esarp;

  std::vector<std::string> paths;
  telemetry::CompareOptions opt;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--threshold") {
      if (++i >= argc) { paths.clear(); break; }
      opt.default_threshold = std::stod(argv[i]);
    } else if (arg == "--latency-band") {
      if (++i >= argc) { paths.clear(); break; }
      opt.latency_slo_band = std::stod(argv[i]);
    } else if (arg == "--metric") {
      if (++i >= argc) { paths.clear(); break; }
      const std::string spec = argv[i];
      const std::size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) { paths.clear(); break; }
      opt.per_key[spec.substr(0, eq)] = std::stod(spec.substr(eq + 1));
    } else if (arg == "--noisy-metric") {
      if (++i >= argc) { paths.clear(); break; }
      const std::string spec = argv[i];
      const std::size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) { paths.clear(); break; }
      opt.noisy_patterns.emplace_back(spec.substr(0, eq),
                                      std::stod(spec.substr(eq + 1)));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      paths.clear();
      break;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: esarp_compare base.json current.json"
                 " [--threshold X] [--latency-band X] [--metric key=thr ...]"
                 " [--noisy-metric pattern=thr ...] [--verbose]\n";
    return 2;
  }

  try {
    const JsonValue base = load_json_file(paths[0]);
    const JsonValue current = load_json_file(paths[1]);
    const telemetry::CompareReport rep =
        telemetry::compare_manifests(base, current, opt);
    std::cout << rep.summary(verbose);
    if (!rep.ok()) {
      std::cout << "\nREGRESSION: " << rep.regressions
                << " metric(s) past threshold (base " << paths[0]
                << ", current " << paths[1] << ")\n";
      return 1;
    }
    std::cout << "\nOK: no regression (" << paths[1] << " vs " << paths[0]
              << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
