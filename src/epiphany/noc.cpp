#include "epiphany/noc.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "epiphany/power.hpp"

namespace esarp::ep {

Noc::Noc(const ChipConfig& cfg) : cfg_(cfg) {
  const std::size_t n_links =
      static_cast<std::size_t>(cfg_.rows) * cfg_.cols * 4;
  for (auto& mesh : links_) mesh.assign(n_links, BusyResource{});
  const std::size_t n_nodes = static_cast<std::size_t>(cfg_.rows) * cfg_.cols;
  route_cache_.resize(n_nodes * n_nodes);
}

const std::vector<std::size_t>& Noc::cached_route(Coord src, Coord dst) const {
  const std::size_t n_nodes = static_cast<std::size_t>(cfg_.rows) * cfg_.cols;
  const std::size_t key =
      (static_cast<std::size_t>(src.row) * cfg_.cols + src.col) * n_nodes +
      static_cast<std::size_t>(dst.row) * cfg_.cols + dst.col;
  std::vector<std::size_t>& cached = route_cache_[key];
  if (cached.empty()) route(src, dst, cached);
  return cached;
}

std::size_t Noc::link_index(Coord node, int dir) const {
  ESARP_EXPECTS(node.row >= 0 && node.row < cfg_.rows);
  ESARP_EXPECTS(node.col >= 0 && node.col < cfg_.cols);
  ESARP_EXPECTS(dir >= 0 && dir < 4);
  return (static_cast<std::size_t>(node.row) * cfg_.cols + node.col) * 4 + dir;
}

void Noc::route(Coord src, Coord dst, std::vector<std::size_t>& out) const {
  out.clear();
  Coord cur = src;
  // X (column) first, matching Epiphany's row-then-column... the eMesh
  // routes along the row (east/west) first, then the column.
  while (cur.col != dst.col) {
    const int dir = dst.col > cur.col ? 0 /*E*/ : 1 /*W*/;
    out.push_back(link_index(cur, dir));
    cur.col += dst.col > cur.col ? 1 : -1;
  }
  while (cur.row != dst.row) {
    const int dir = dst.row > cur.row ? 2 /*S*/ : 3 /*N*/;
    out.push_back(link_index(cur, dir));
    cur.row += dst.row > cur.row ? 1 : -1;
  }
}

Cycles Noc::transfer(Coord src, Coord dst, std::size_t bytes, Cycles now,
                     Mesh mesh, Coord initiator) {
  if (src == dst || bytes == 0) return now;
  auto& links = links_[static_cast<int>(mesh)];
  auto& st = stats_[static_cast<int>(mesh)];

  const std::vector<std::size_t>& path = cached_route(src, dst);
  const Cycles serialization = cfg_.cycles_for_bytes_on_link(bytes);

  // Wormhole approximation: the message starts when every link on the path
  // is free, holds each link for the serialisation time, and the tail
  // arrives after per-hop latency plus serialisation.
  Cycles start = now;
  if (injector_ != nullptr) {
    const int src_id = src.row * cfg_.cols + src.col;
    const Cycles stall = injector_->noc_stall(src_id, now);
    if (stall != 0) {
      // The stalled message holds its first link busy for the stall, so
      // the perturbation back-pressures sharers of that link too.
      links[path.front()].acquire(now, stall, 0);
      start += stall;
    }
  }
  for (std::size_t idx : path) start = std::max(start, links[idx].free_at);
  for (std::size_t idx : path) {
    links[idx].acquire(start, serialization, bytes);
    st.max_link_busy = std::max(st.max_link_busy, links[idx].total_busy);
  }

  const Cycles hops = static_cast<Cycles>(path.size());
  st.transfers += 1;
  st.bytes += bytes;
  st.byte_hops += bytes * hops;
  const Cycles done = start + hops * cfg_.hop_latency + serialization;
  if (power_ != nullptr)
    power_->record_noc(initiator.row * cfg_.cols + initiator.col,
                       bytes * hops, start, done);
  return done;
}

Cycles Noc::probe(Coord src, Coord dst, std::size_t bytes, Cycles now,
                  Mesh mesh) const {
  if (src == dst || bytes == 0) return now;
  const auto& links = links_[static_cast<int>(mesh)];
  const std::vector<std::size_t>& path = cached_route(src, dst);
  Cycles start = now;
  for (std::size_t idx : path) start = std::max(start, links[idx].free_at);
  const Cycles hops = static_cast<Cycles>(path.size());
  return start + hops * cfg_.hop_latency +
         cfg_.cycles_for_bytes_on_link(bytes);
}

NocStats Noc::stats(Mesh mesh) const { return stats_[static_cast<int>(mesh)]; }

NocStats Noc::stats_total() const {
  NocStats total;
  for (const auto& st : stats_) {
    total.transfers += st.transfers;
    total.bytes += st.bytes;
    total.byte_hops += st.byte_hops;
    total.max_link_busy = std::max(total.max_link_busy, st.max_link_busy);
  }
  return total;
}

std::uint64_t Noc::hottest_link_bytes(Mesh mesh) const {
  const auto& links = links_[static_cast<int>(mesh)];
  std::uint64_t hottest = 0;
  for (const auto& l : links) hottest = std::max(hottest, l.total_bytes);
  return hottest;
}

std::vector<Noc::LinkUsage> Noc::link_usage(Mesh mesh) const {
  static constexpr char kDir[4] = {'E', 'W', 'S', 'N'};
  const auto& links = links_[static_cast<int>(mesh)];
  std::vector<LinkUsage> usage;
  for (int r = 0; r < cfg_.rows; ++r)
    for (int c = 0; c < cfg_.cols; ++c)
      for (int d = 0; d < 4; ++d) {
        const auto& l = links[link_index({r, c}, d)];
        if (l.total_bytes == 0) continue;
        usage.push_back({{r, c}, kDir[d], l.total_bytes, l.total_busy});
      }
  return usage;
}

void Noc::reset_stats() {
  for (auto& mesh : links_)
    for (auto& l : mesh) l = BusyResource{};
  for (auto& st : stats_) st = NocStats{};
}

} // namespace esarp::ep
