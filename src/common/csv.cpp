#include "common/csv.hpp"

#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace esarp {

CsvWriter::CsvWriter(const std::filesystem::path& path,
                     const std::vector<std::string>& columns)
    : out_(path), ncols_(columns.size()) {
  ESARP_EXPECTS(out_.is_open());
  ESARP_EXPECTS(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() { out_.flush(); }

void CsvWriter::row(const std::vector<std::string>& cells) {
  ESARP_EXPECTS(cells.size() == ncols_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  row(cells);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

} // namespace esarp
