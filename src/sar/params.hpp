// Radar system and imaging-geometry parameters.
//
// Defaults model a CARABAS/LORA-class ultra-wideband, low-frequency
// stripmap SAR — the system family behind the paper (refs [2],[5],[6]):
// such systems have range resolution on the order of the wavelength, which
// is what lets FFBP merge subapertures with plain complex addition (paper
// eq. 5) after the range-phase is referenced to the bin grid.
//
// The paper's evaluation size: 1024 pulses x 1001 range bins.
#pragma once

#include <cstddef>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace esarp::sar {

struct RadarParams {
  // Waveform.
  double center_freq_hz = 50.0e6; ///< VHF UWB (wavelength ~6 m)
  double range_bin_m = 1.5;       ///< slant-range bin spacing (c/2B)

  // Collection geometry (linear nominal track along +x at y = 0).
  std::size_t n_pulses = 1024;    ///< azimuth positions (full aperture)
  std::size_t n_range = 1001;     ///< range bins per pulse
  double pulse_spacing_m = 1.0;   ///< along-track distance between pulses
  double near_range_m = 4500.0;   ///< slant range of bin 0

  // Processed angular sector (broadside-centred polar image).
  double theta_center_rad = 1.5707963267948966; ///< pi/2: broadside
  double theta_span_rad = 0.20;   ///< processed beam sector

  [[nodiscard]] double wavelength_m() const {
    return kSpeedOfLight / center_freq_hz;
  }
  [[nodiscard]] double far_range_m() const {
    return near_range_m + range_bin_m * static_cast<double>(n_range - 1);
  }
  /// x-coordinate of pulse p on the nominal track.
  [[nodiscard]] double pulse_x(std::size_t p) const {
    return (static_cast<double>(p) -
            0.5 * static_cast<double>(n_pulses - 1)) *
           pulse_spacing_m;
  }
  /// Centre of the full synthetic aperture (origin by construction).
  [[nodiscard]] double aperture_center_x() const { return 0.0; }

  /// Number of merge iterations for merge base 2 (n_pulses must be 2^k).
  [[nodiscard]] std::size_t merge_levels() const {
    std::size_t levels = 0;
    std::size_t n = n_pulses;
    while (n > 1) {
      ESARP_EXPECTS(n % 2 == 0);
      n /= 2;
      ++levels;
    }
    return levels;
  }

  void validate() const {
    ESARP_EXPECTS(center_freq_hz > 0);
    ESARP_EXPECTS(range_bin_m > 0);
    ESARP_EXPECTS(n_pulses >= 2 && n_range >= 2);
    ESARP_EXPECTS(pulse_spacing_m > 0);
    ESARP_EXPECTS(near_range_m > 0);
    ESARP_EXPECTS(theta_span_rad > 0 && theta_span_rad < 3.1);
  }
};

/// The paper's evaluation configuration: 1024 x 1001.
[[nodiscard]] inline RadarParams paper_params() { return RadarParams{}; }

/// A small configuration for unit tests (fast, still >= 3 merge levels).
/// Scaled so the short test aperture still focuses: shorter wavelength and
/// nearer range give several azimuth resolution cells across the image,
/// the range bin stays at lambda/4 (the ratio that makes plain-addition
/// merges coherent, same as the paper-scale defaults), and the processed
/// sector matches the aperture's angular extent.
[[nodiscard]] inline RadarParams test_params(std::size_t pulses = 64,
                                             std::size_t range = 101) {
  RadarParams p;
  p.n_pulses = pulses;
  p.n_range = range;
  p.center_freq_hz = 149.896229e6; // lambda = 2 m
  p.range_bin_m = 0.5;             // lambda / 4
  p.near_range_m = 400.0;
  const double mid_range =
      p.near_range_m + 0.5 * static_cast<double>(range - 1) * p.range_bin_m;
  p.theta_span_rad =
      static_cast<double>(pulses) * p.pulse_spacing_m / mid_range;
  return p;
}

} // namespace esarp::sar
