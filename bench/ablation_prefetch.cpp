// Reproduces the paper's prefetch analysis (Section VI): the parallel FFBP
// speedup comes not only from using 16 cores but from DMA-prefetching the
// contributing subaperture rows into local memory; and "during the first
// merge iteration the prefetched data is sufficient, but in the later
// iterations it still requires contributing data to be read from the
// external memory" — visible here as the per-level prefetch hit rate.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"

int main() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();

  std::cerr << "16-core FFBP with DMA prefetch...\n";
  core::FfbpMapOptions with;
  with.n_cores = 16;
  const auto a = core::run_ffbp_epiphany(w.data, w.params, with);

  std::cerr << "16-core FFBP without prefetch (all reads blocking)...\n";
  core::FfbpMapOptions without = with;
  without.prefetch = false;
  const auto b = core::run_ffbp_epiphany(w.data, w.params, without);

  Table t("FFBP SPMD: DMA prefetch ablation (16 cores)");
  t.header({"Configuration", "Time (ms)", "Ext-read stall (Mcycles)",
            "Ext bytes read", "Speedup from prefetch"});
  t.row({"prefetch into local banks", bench::ms(a.seconds),
         Table::num(static_cast<double>(a.perf.total_ext_stall()) / 1e6, 1),
         format_bytes(a.perf.ext.read_bytes), "-"});
  t.row({"no prefetch (blocking reads)", bench::ms(b.seconds),
         Table::num(static_cast<double>(b.perf.total_ext_stall()) / 1e6, 1),
         format_bytes(b.perf.ext.read_bytes),
         Table::num(b.seconds / a.seconds, 2) + "x"});
  // Double buffering needs two rows per 8 KB data bank: only possible up
  // to 512 range bins — NOT at the paper's 1001 (the bank-budget finding).
  if (w.params.n_range * sizeof(cf32) * 2 <= 8192) {
    core::FfbpMapOptions dbl = with;
    dbl.double_buffer = true;
    const auto c = core::run_ffbp_epiphany(w.data, w.params, dbl);
    t.row({"double-buffered prefetch", bench::ms(c.seconds),
           Table::num(static_cast<double>(c.perf.total_ext_stall()) / 1e6,
                      1),
           format_bytes(c.perf.ext.read_bytes),
           Table::num(b.seconds / c.seconds, 2) + "x"});
  } else {
    t.note("double-buffered prefetch is impossible at this row size: two "
           "8,008-byte rows do not fit one 8 KB bank — the four-bank "
           "budget forces the paper's single-buffered scheme");
  }
  t.print(std::cout);

  Table h("Per-level prefetch hit rate (prefetching configuration)");
  h.header({"Merge level", "Local hits", "Ext misses", "Hit rate"});
  CsvWriter csv(bench::out_dir() / "ablation_prefetch.csv",
                {"level", "hits", "misses", "hit_rate"});
  for (const auto& ls : a.prefetch_stats) {
    h.row({std::to_string(ls.level), format_cycles(ls.local_hits),
           format_cycles(ls.ext_misses),
           Table::num(ls.hit_rate() * 100.0, 1) + " %"});
    csv.row_numeric({static_cast<double>(ls.level),
                     static_cast<double>(ls.local_hits),
                     static_cast<double>(ls.ext_misses), ls.hit_rate()});
  }
  h.note("level 1 children are single rows: prefetch is sufficient "
         "(100 %); at later levels the contributing angular bins spread "
         "beyond the two prefetched rows, forcing blocking SDRAM reads — "
         "exactly the paper's description");
  h.print(std::cout);
  return 0;
}
