// Deterministic pseudo-random generation for reproducible experiments.
//
// All workloads in the benchmark harness are seeded explicitly so that every
// table/figure regenerates identically across runs and machines (std::mt19937
// distributions are not guaranteed identical across standard libraries, so we
// implement the generator and the distributions we need ourselves).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"

namespace esarp {

/// SplitMix64: used to seed Xoshiro and for cheap one-off hashing.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, fully deterministic PRNG.
class Rng {
public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    ESARP_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [lo, hi).
  float uniform_f(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) {
    ESARP_EXPECTS(n > 0);
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

} // namespace esarp
