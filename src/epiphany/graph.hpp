// Declarative process networks over the simulated chip — the high-level
// programming model the paper's conclusions call for ("a high-level
// language support that can raise the abstraction level for the
// programmer, while not compromising the performance benefits"), inspired
// by the authors' occam-pi work (refs [19], [20]).
//
// Instead of hand-assigning MPMD programs to core ids and wiring channels
// to fixed coordinates (Section V-C's "added work of managing
// synchronization ... reduces productivity"), the user declares nodes and
// typed channels; the network places nodes on the mesh automatically,
// minimising communication distance (weighted hop count), binds the
// channels, and launches everything:
//
//   ep::Machine m;
//   ep::ProcessNetwork net(m);
//   auto& ch = net.channel<Packet>("stage1->stage2", 8);
//   const int a = net.node("stage1", [&](ep::CoreCtx& c) -> ep::Task {...});
//   const int b = net.node("stage2", [&](ep::CoreCtx& c) -> ep::Task {...});
//   net.connect(a, b, ch, /*weight=*/6.0);
//   net.run();
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "epiphany/channel.hpp"
#include "epiphany/machine.hpp"

namespace esarp::ep {

/// Type-erased handle the placement engine uses to bind a channel to its
/// consumer's placed coordinate.
class GraphChannelBase {
public:
  virtual ~GraphChannelBase() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual bool bound() const = 0;

private:
  friend class ProcessNetwork;
  virtual void bind(Scheduler& sched, Noc& noc, Coord consumer) = 0;
};

/// Typed channel endpoint declared on a ProcessNetwork. Usable inside node
/// programs exactly like ep::Channel once the network has been placed.
template <typename T>
class GraphChannel final : public GraphChannelBase {
public:
  GraphChannel(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  TaskT<void> send(CoreCtx& from, T value) {
    ESARP_EXPECTS(chan_ != nullptr); // network must be placed before use
    return chan_->send(from, std::move(value));
  }
  TaskT<T> recv(CoreCtx& to) {
    ESARP_EXPECTS(chan_ != nullptr);
    return chan_->recv(to);
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] bool bound() const override { return chan_ != nullptr; }
  [[nodiscard]] const ChannelStats& stats() const {
    ESARP_EXPECTS(chan_ != nullptr);
    return chan_->stats();
  }

private:
  void bind(Scheduler& sched, Noc& noc, Coord consumer) override {
    ESARP_EXPECTS(chan_ == nullptr);
    chan_ = std::make_unique<Channel<T>>(sched, noc, consumer, capacity_,
                                         name_);
  }

  std::string name_;
  std::size_t capacity_;
  std::unique_ptr<Channel<T>> chan_;
};

class ProcessNetwork {
public:
  explicit ProcessNetwork(Machine& m) : machine_(m) {}

  ProcessNetwork(const ProcessNetwork&) = delete;
  ProcessNetwork& operator=(const ProcessNetwork&) = delete;

  /// Declare a typed channel. The returned reference stays valid for the
  /// network's lifetime.
  template <typename T>
  GraphChannel<T>& channel(std::string name, std::size_t capacity = 8) {
    auto ch = std::make_unique<GraphChannel<T>>(std::move(name), capacity);
    auto& ref = *ch;
    channels_.push_back(std::move(ch));
    return ref;
  }

  /// Declare a node (one core program). Returns the node id.
  int node(std::string name, std::function<Task(CoreCtx&)> program);

  /// Declare that `from` streams into `to` over `ch`. `weight` expresses
  /// relative traffic volume and steers the placement (heavier edges end
  /// up shorter). The channel's consumer is `to`.
  void connect(int from, int to, GraphChannelBase& ch, double weight = 1.0);

  /// Pin a node to a fixed mesh coordinate (e.g. next to the eLink).
  void pin(int node_id, Coord coord);

  /// Compute the placement: greedy weighted-adjacency assignment that
  /// places heavily-communicating nodes on neighbouring cores. Idempotent;
  /// called implicitly by run().
  const std::vector<Coord>& place();

  /// Place (if needed), bind channels, launch all node programs and run
  /// the machine to completion.
  Cycles run();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<Coord>& placement() const {
    ESARP_EXPECTS(placed_);
    return placement_;
  }
  [[nodiscard]] const std::string& node_name(int id) const {
    return nodes_[static_cast<std::size_t>(id)].name;
  }

  /// Total weighted hop count of the current placement (the objective the
  /// greedy placer minimises; exposed for tests and diagnostics).
  [[nodiscard]] double weighted_hops() const;

  /// Multi-line "node @ (row,col)" summary.
  [[nodiscard]] std::string describe() const;

private:
  struct Node {
    std::string name;
    std::function<Task(CoreCtx&)> program;
    bool pinned = false;
    Coord pin_coord;
  };
  struct Edge {
    int from;
    int to;
    GraphChannelBase* chan;
    double weight;
  };

  Machine& machine_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::unique_ptr<GraphChannelBase>> channels_;
  std::vector<Coord> placement_;
  bool placed_ = false;
  bool ran_ = false;
};

} // namespace esarp::ep
