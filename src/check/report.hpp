// Reporters and suppression matching for the esarp::check hazard sanitizer.
//
// Console reports go to stderr in a TSan-like one-line-per-finding format;
// JSON reports (schema "esarp-check-report/1") are written when
// ChipConfig::check.json_out / ESARP_CHECK_JSON names a path, so CI can
// archive and diff them like run manifests.
//
// Suppression files are line-oriented:
//
//   # comment / blank lines ignored
//   <kind>:<glob>        e.g.  dma-race:*write_ext*child_row*
//   *:<glob>             any hazard kind
//
// where <kind> is a Hazard name (to_string form) and <glob> is matched
// against the diagnostic message with '*' (any run) and '?' (any one
// character). A suppressed diagnostic is still recorded and reported (as
// "suppressed"), but does not fail the run.
#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "check/check.hpp"

namespace esarp::check {

/// Glob match with '*' and '?'.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view s);

/// Parse a suppression file into "kind:glob" rules. Throws
/// ContractViolation when the file cannot be read or a line is malformed.
[[nodiscard]] std::vector<std::string>
load_suppressions(const std::filesystem::path& path);

/// True when `rule` ("kind:glob") matches a diagnostic of `kind` with
/// message `message`.
[[nodiscard]] bool suppression_matches(const std::string& rule, Hazard kind,
                                       const std::string& message);

/// Human-readable report: one line per diagnostic plus a summary.
void write_console_report(std::ostream& os,
                          const std::vector<Diagnostic>& diags,
                          std::size_t dropped);

/// Machine-readable report (schema "esarp-check-report/1").
void write_json_report(const std::filesystem::path& path,
                       const std::vector<Diagnostic>& diags,
                       std::size_t dropped);

} // namespace esarp::check
