// Linear-FM (chirp) waveform generation.
//
// The SAR front end (Fig. 1) transmits a chirp; range (pulse) compression
// correlates the echo with a replica of it. We generate baseband chirps for
// the raw-data simulator and the matched filter.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace esarp::fft {

struct ChirpParams {
  double sample_rate_hz = 100e6;  ///< complex baseband sampling rate
  double bandwidth_hz = 50e6;     ///< swept bandwidth (sets range resolution)
  double duration_s = 2e-6;       ///< pulse length
};

/// Number of complex samples in the chirp.
std::size_t chirp_length(const ChirpParams& p);

/// Complex baseband linear-FM pulse:
///   s(t) = exp(i*pi*K*(t - T/2)^2), K = B/T, t in [0, T).
/// Centred so the instantaneous frequency sweeps [-B/2, +B/2].
std::vector<cf32> make_chirp(const ChirpParams& p);

/// Theoretical 3 dB compressed-pulse width in samples (~ fs / B).
double compressed_width_samples(const ChirpParams& p);

/// Time-bandwidth product (compression gain).
double time_bandwidth_product(const ChirpParams& p);

} // namespace esarp::fft
