// FFT substrate tests: transform identities (property-style, parameterized
// over sizes), chirp generation, and matched-filter pulse compression.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "fft/chirp.hpp"
#include "fft/fft.hpp"
#include "fft/matched_filter.hpp"

namespace esarp::fft {
namespace {

std::vector<cf32> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cf32> v(n);
  for (auto& x : v)
    x = {rng.uniform_f(-1.0f, 1.0f), rng.uniform_f(-1.0f, 1.0f)};
  return v;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, InverseRoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  auto sig = random_signal(n, n);
  const auto orig = sig;
  Fft plan(n);
  plan.forward(sig);
  plan.inverse(sig);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sig[i].real(), orig[i].real(), 1e-4f);
    EXPECT_NEAR(sig[i].imag(), orig[i].imag(), 1e-4f);
  }
}

TEST_P(FftSizes, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  auto sig = random_signal(n, 2 * n + 1);
  double time_energy = 0.0;
  for (const auto& x : sig) time_energy += std::norm(x);
  Fft(n).forward(sig);
  double freq_energy = 0.0;
  for (const auto& x : sig) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n) / time_energy, 1.0, 1e-4);
}

TEST_P(FftSizes, LinearityHolds) {
  const std::size_t n = GetParam();
  auto a = random_signal(n, 5);
  auto b = random_signal(n, 6);
  std::vector<cf32> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = a[i] + 2.0f * b[i];
  Fft plan(n);
  plan.forward(a);
  plan.forward(b);
  plan.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const cf32 expect = a[i] + 2.0f * b[i];
    EXPECT_NEAR(sum[i].real(), expect.real(), 2e-3f);
    EXPECT_NEAR(sum[i].imag(), expect.imag(), 2e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024,
                                           4096));

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  std::vector<cf32> sig(8);
  sig[0] = {1.0f, 0.0f};
  fft_forward(sig);
  for (const auto& x : sig) {
    EXPECT_NEAR(x.real(), 1.0f, 1e-6f);
    EXPECT_NEAR(x.imag(), 0.0f, 1e-6f);
  }
}

TEST(Fft, SinusoidConcentratesInOneBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  std::vector<cf32> sig(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * kPi * static_cast<double>(k * i) / n;
    sig[i] = {static_cast<float>(std::cos(ph)),
              static_cast<float>(std::sin(ph))};
  }
  fft_forward(sig);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k)
      EXPECT_NEAR(std::abs(sig[i]), static_cast<float>(n), 1e-3f);
    else
      EXPECT_NEAR(std::abs(sig[i]), 0.0f, 1e-3f);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft(12), ContractViolation);
  EXPECT_THROW(Fft(0), ContractViolation);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Fft, CircularConvolveWithDeltaIsIdentity) {
  auto a = random_signal(16, 9);
  std::vector<cf32> delta(16);
  delta[0] = {1.0f, 0.0f};
  const auto out = circular_convolve(a, delta);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(out[i] - a[i]), 0.0f, 1e-4f);
}

TEST(Fft, CircularCorrelatePeaksAtLag) {
  std::vector<cf32> a(32), b(32);
  // b is a delayed by 3 (circularly): correlation IFFT(A conj(B)) peaks at
  // lag -3 mod 32 = 29... convention check: peak index encodes the shift.
  auto base = random_signal(32, 11);
  a = base;
  for (std::size_t i = 0; i < 32; ++i) b[(i + 3) % 32] = base[i];
  const auto corr = circular_correlate(b, a);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < corr.size(); ++i)
    if (std::abs(corr[i]) > std::abs(corr[peak])) peak = i;
  EXPECT_EQ(peak, 3u);
}

TEST(Chirp, LengthAndUnitModulus) {
  ChirpParams p;
  const auto s = make_chirp(p);
  EXPECT_EQ(s.size(), chirp_length(p));
  EXPECT_EQ(s.size(), 200u); // 100 MHz * 2 us
  for (const auto& x : s) EXPECT_NEAR(std::abs(x), 1.0f, 1e-5f);
}

TEST(Chirp, TimeBandwidthProduct) {
  ChirpParams p;
  EXPECT_NEAR(time_bandwidth_product(p), 100.0, 1e-9);
  EXPECT_NEAR(compressed_width_samples(p), 2.0, 1e-9);
}

TEST(Chirp, RejectsAliasedBandwidth) {
  ChirpParams p;
  p.bandwidth_hz = 2.0 * p.sample_rate_hz;
  EXPECT_THROW(make_chirp(p), ContractViolation);
}

TEST(MatchedFilter, PeakAtTargetDelay) {
  ChirpParams cp;
  cp.sample_rate_hz = 50e6;
  cp.bandwidth_hz = 50e6;
  cp.duration_s = 1e-6; // 50 samples
  const auto replica = make_chirp(cp);
  const std::size_t record = 256;
  const std::size_t delay = 77;

  std::vector<cf32> echo(record);
  for (std::size_t i = 0; i < replica.size(); ++i)
    echo[delay + i] = replica[i] * 0.5f;

  MatchedFilter mf(replica, record);
  const auto out = mf.compress(echo);
  ASSERT_EQ(out.size(), record);

  std::size_t peak = 0;
  for (std::size_t i = 1; i < out.size(); ++i)
    if (std::abs(out[i]) > std::abs(out[peak])) peak = i;
  EXPECT_EQ(peak, delay);
  // Peak value = 0.5 * replica energy = 0.5 * 50.
  EXPECT_NEAR(std::abs(out[peak]), 25.0f, 0.5f);
}

TEST(MatchedFilter, CompressionGainConcentratesEnergy) {
  ChirpParams cp;
  cp.sample_rate_hz = 50e6;
  cp.bandwidth_hz = 25e6;
  cp.duration_s = 2e-6; // 100 samples, fs/B = 2 samples wide after MF
  const auto replica = make_chirp(cp);
  std::vector<cf32> echo(300);
  for (std::size_t i = 0; i < replica.size(); ++i) echo[60 + i] = replica[i];
  MatchedFilter mf(replica, echo.size());
  const auto out = mf.compress(echo);

  // Energy within +-3 samples of the peak should dominate the output.
  double total = 0.0, local = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    total += std::norm(out[i]);
    if (i >= 57 && i <= 63) local += std::norm(out[i]);
  }
  EXPECT_GT(local / total, 0.8);
}

TEST(MatchedFilter, TwoTargetsResolved) {
  ChirpParams cp;
  cp.sample_rate_hz = 50e6;
  cp.bandwidth_hz = 50e6;
  cp.duration_s = 1e-6;
  const auto replica = make_chirp(cp);
  std::vector<cf32> echo(256);
  for (std::size_t i = 0; i < replica.size(); ++i) {
    echo[40 + i] += replica[i];
    echo[90 + i] += replica[i] * 0.8f;
  }
  MatchedFilter mf(replica, echo.size());
  const auto out = mf.compress(echo);
  EXPECT_GT(std::abs(out[40]), 0.8f * static_cast<float>(replica.size()));
  EXPECT_GT(std::abs(out[90]), 0.6f * static_cast<float>(replica.size()));
  // Midpoint between targets should be far below both peaks.
  EXPECT_LT(std::abs(out[65]), 0.2f * std::abs(out[40]));
}

} // namespace
} // namespace esarp::fft
