// Top-level simulated chip: cores + NoC + eLink + SDRAM + scheduler.
//
// Usage:
//   ep::Machine m;                                  // 4x4 E16G3 defaults
//   auto img = m.ext().alloc<cf32>(n);              // place data in SDRAM
//   m.launch(c, [&](ep::CoreCtx& ctx) -> ep::Task { ... });
//   ep::Cycles t = m.run();                         // run to completion
//   ep::PerfReport rep = m.report();
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "epiphany/address_map.hpp"
#include "epiphany/barrier.hpp"
#include "epiphany/channel.hpp"
#include "epiphany/config.hpp"
#include "epiphany/core.hpp"
#include "epiphany/core_ctx.hpp"
#include "epiphany/cost_model.hpp"
#include "epiphany/ext_port.hpp"
#include "epiphany/external_memory.hpp"
#include "epiphany/noc.hpp"
#include "epiphany/perf.hpp"
#include "epiphany/power.hpp"
#include "epiphany/scheduler.hpp"
#include "epiphany/task.hpp"
#include "epiphany/trace.hpp"
#include "fault/injector.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::ep {

/// Thrown when run() finishes with blocked (unfinished) core programs.
class SimDeadlock : public std::runtime_error {
public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

class Machine {
public:
  /// `shared_tracer` (optional) substitutes an externally owned Tracer for
  /// the machine's own, letting several consecutive Machine runs share one
  /// tracer — either accumulating a combined trace, or one-trace-per-run
  /// via Tracer::clear() between runs (see the lifecycle note in
  /// trace.hpp). The machine never clears a shared tracer.
  explicit Machine(ChipConfig cfg = {},
                   std::size_t ext_bytes = 64u * 1024 * 1024,
                   CoreCostParams cost = {}, Tracer* shared_tracer = nullptr);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const ChipConfig& config() const { return cfg_; }
  [[nodiscard]] int core_count() const { return cfg_.core_count(); }
  [[nodiscard]] Core& core(int id);
  [[nodiscard]] CoreCtx& ctx(int id);
  [[nodiscard]] ExternalMemory& ext() { return ext_mem_; }
  [[nodiscard]] Noc& noc() { return noc_; }
  [[nodiscard]] const Noc& noc() const { return noc_; }
  [[nodiscard]] ExtPort& ext_port() { return ext_port_; }
  [[nodiscard]] const ExtPort& ext_port() const { return ext_port_; }
  [[nodiscard]] Scheduler& sched() { return sched_; }
  [[nodiscard]] const AddressMap& address_map() const { return amap_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }

  /// Turn on execution tracing (call before run()). Segments are recorded
  /// per core; export with tracer().write_chrome_json(path).
  void enable_tracing() { tracer_->enable(); }
  [[nodiscard]] Tracer& tracer() { return *tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return *tracer_; }

  /// Telemetry registry populated during the run by the instrumented
  /// components (ext port, barriers, channels) and, post-run, by
  /// collect_machine_metrics() (machine_metrics.hpp).
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// The hazard sanitizer, or nullptr when checking is off. Created when
  /// ChipConfig::check.enabled is set or ESARP_CHECK=1 is in the
  /// environment (see check/check.hpp); run() finalizes it.
  [[nodiscard]] check::CheckContext* checker() { return checker_.get(); }
  [[nodiscard]] const check::CheckContext* checker() const {
    return checker_.get();
  }

  /// The fault-injection campaign engine, or nullptr when
  /// ChipConfig::faults is disabled (docs/fault-injection.md).
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  /// The power-telemetry sampler, or nullptr when power sampling is off.
  /// Created when ChipConfig::power.enabled is set or ESARP_POWER=1 is in
  /// the environment (power.hpp); consume via collect_power()
  /// (machine_metrics.hpp) after run().
  [[nodiscard]] PowerSampler* power_sampler() { return power_.get(); }
  [[nodiscard]] const PowerSampler* power_sampler() const {
    return power_.get();
  }

  [[nodiscard]] Coord coord_of(int id) const {
    return {id / cfg_.cols, id % cfg_.cols};
  }
  [[nodiscard]] int id_of(Coord c) const { return c.row * cfg_.cols + c.col; }

  /// Register a core program. One program per core; programs start at
  /// cycle 0 when run() is called.
  void launch(int core_id, std::function<Task(CoreCtx&)> program);

  /// Create a streaming channel whose buffer lives on `consumer_id`.
  template <typename T>
  std::unique_ptr<Channel<T>> make_channel(int consumer_id,
                                           std::size_t capacity,
                                           std::string name = "chan") {
    return std::make_unique<Channel<T>>(sched_, noc_, coord_of(consumer_id),
                                        capacity, std::move(name), &metrics_);
  }

  /// Create a barrier over `parties` cores.
  std::unique_ptr<SimBarrier> make_barrier(int parties, Coord master = {0, 0}) {
    return std::make_unique<SimBarrier>(sched_, noc_, cfg_, parties, master,
                                        &metrics_);
  }

  /// Run all launched programs to completion. Returns the makespan in
  /// cycles. Rethrows the first kernel exception; throws SimDeadlock if
  /// programs remain blocked with no pending events (the message carries
  /// the final cycle, pending-event count, and each blocked core's state +
  /// innermost span). `max_cycles` (0 = unlimited) arms the scheduler
  /// watchdog: exceeding it throws WatchdogExpired (a ContractViolation)
  /// enriched the same way. On a checked run (checker() != nullptr) the
  /// sanitizer is finalized here: clean runs with unsuppressed diagnostics
  /// throw check::CheckFailure.
  Cycles run(Cycles max_cycles = 0);

  /// Seconds of chip time for a cycle count at the configured clock.
  [[nodiscard]] double seconds(Cycles c) const { return cfg_.seconds(c); }

  /// Scheduler events resumed so far (engine throughput numerator for the
  /// events/sec fields in run manifests).
  [[nodiscard]] std::uint64_t events_processed() const {
    return sched_.events_processed();
  }

  /// Aggregate performance report over the last run.
  [[nodiscard]] PerfReport report() const;

private:
  static Task wrap(CoreCtx& ctx, std::function<Task(CoreCtx&)> fn,
                   Scheduler& sched);

  /// " core N (state, span S) ..." for every unfinished program — the
  /// shared tail of the SimDeadlock and watchdog messages.
  [[nodiscard]] std::string blocked_cores_brief() const;

  ChipConfig cfg_;
  CostModel cost_;
  Tracer owned_tracer_;
  Tracer* tracer_; ///< owned_tracer_ or the shared one passed at creation
  telemetry::MetricsRegistry metrics_;
  Scheduler sched_;
  Noc noc_;
  ExtPort ext_port_;
  ExternalMemory ext_mem_;
  AddressMap amap_;
  /// Null unless cfg_.faults.enabled(). Created before the contexts so
  /// each CoreCtx (and the NoC) carries the hook pointer.
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Null unless power sampling is on (cfg_.power / ESARP_POWER). Created
  /// before the contexts for the same hook-pointer reason.
  std::unique_ptr<PowerSampler> power_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<CoreCtx>> ctxs_;
  /// Null when checking is off. Declared after cores_/ctxs_: the dtor
  /// detaches observers from the cores' local stores, so it must run first.
  std::unique_ptr<check::CheckContext> checker_;
  struct Launched {
    int core_id;
    Task task;
  };
  std::vector<Launched> programs_;
  bool ran_ = false;
};

} // namespace esarp::ep
