// Telemetry subsystem tests: metrics registry (counters, gauges, histogram
// bucket edges), named spans + counter tracks on the Tracer (incl. segment
// accounting and cross-run reuse), JSON writer/parser round trips, run
// manifests, and the manifest regression comparator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "common/types.hpp"
#include "epiphany/machine.hpp"
#include "epiphany/machine_metrics.hpp"
#include "telemetry/compare.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace esarp {
namespace {

using ep::Cycles;
using ep::Machine;
using ep::SegmentKind;
using ep::Task;
using ep::Tracer;

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream f(p);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterAndGaugeBasics) {
  telemetry::MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.counter("a").add(4);
  reg.gauge("g").set(2.5);
  EXPECT_EQ(reg.counter("a").value(), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
}

TEST(Metrics, CounterReferencesAreStable) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("stable");
  for (int i = 0; i < 100; ++i)
    reg.counter("filler" + std::to_string(i)).add(1);
  reg.counter("stable").add(5);
  EXPECT_EQ(a.value(), 5u); // same node despite 100 inserts
}

TEST(Metrics, HistogramBucketEdges) {
  // bucket i counts x <= edges[i]; one overflow bucket past the last edge.
  telemetry::Histogram h({10.0, 20.0, 40.0});
  h.observe(0.0);   // <= 10
  h.observe(10.0);  // <= 10 (edge is inclusive)
  h.observe(10.5);  // <= 20
  h.observe(40.0);  // <= 40
  h.observe(41.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 41.0);
  EXPECT_DOUBLE_EQ(h.sum(), 101.5);
}

TEST(Metrics, HistogramRejectsUnsortedEdges) {
  EXPECT_THROW(telemetry::Histogram({2.0, 1.0}), ContractViolation);
  EXPECT_THROW(telemetry::Histogram({1.0, 1.0}), ContractViolation);
  EXPECT_THROW(telemetry::Histogram({}), ContractViolation);
}

TEST(Metrics, LabeledNamesAreSortedAndStable) {
  const std::string a =
      telemetry::labeled("noc.link.bytes", {{"node", "1_2"}, {"dir", "E"}});
  const std::string b =
      telemetry::labeled("noc.link.bytes", {{"dir", "E"}, {"node", "1_2"}});
  EXPECT_EQ(a, b); // label order must not matter
  EXPECT_EQ(a, "noc.link.bytes{dir=E,node=1_2}");
}

TEST(Metrics, CycleHistogramSharesEdgesAcrossRuns) {
  telemetry::MetricsRegistry r1, r2;
  EXPECT_EQ(r1.cycle_histogram("h").edges(), r2.cycle_histogram("h").edges());
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, SegmentAccountingPerKind) {
  Machine m;
  m.enable_tracing();
  auto src = m.ext().alloc<float>(256);
  float dst[256];
  m.launch(0, [&](ep::CoreCtx& ctx) -> Task {
    co_await ctx.compute({.fadd = 100});
    co_await ctx.read_ext(dst, src.data(), sizeof(dst));
    co_await ctx.compute({.fadd = 50});
  });
  m.run();
  const Tracer& tr = m.tracer();
  EXPECT_EQ(tr.total_cycles(SegmentKind::kCompute), m.core(0).counters.busy);
  EXPECT_EQ(tr.total_cycles(SegmentKind::kExtRead),
            m.core(0).counters.ext_stall);
  EXPECT_EQ(tr.total_cycles(SegmentKind::kBarrier), 0u);
}

TEST(Tracer, SpansNestPerCore) {
  Tracer tr;
  tr.enable();
  tr.push_span(0, "outer", 0);
  tr.push_span(0, "inner", 10);
  tr.push_span(1, "other-core", 5);
  EXPECT_EQ(tr.open_spans(0), 2u);
  tr.pop_span(0, 20); // closes "inner"
  tr.pop_span(0, 30); // closes "outer"
  tr.pop_span(1, 15);
  EXPECT_EQ(tr.open_spans(0), 0u);
  ASSERT_EQ(tr.spans().size(), 3u);
  // Innermost closes first, with its opening depth preserved.
  EXPECT_EQ(tr.spans()[0].name, "inner");
  EXPECT_EQ(tr.spans()[0].depth, 1);
  EXPECT_EQ(tr.spans()[1].name, "outer");
  EXPECT_EQ(tr.spans()[1].depth, 0);
  EXPECT_EQ(tr.total_span_cycles("outer"), 30u);
  EXPECT_EQ(tr.total_span_cycles("inner"), 10u);
}

TEST(Tracer, DisabledSpansAndUnderflowAreNoOps) {
  Tracer tr; // disabled
  tr.push_span(0, "ignored", 0);
  EXPECT_EQ(tr.open_spans(0), 0u);
  tr.enable();
  tr.pop_span(0, 10); // pop with no open span: no-op, no crash
  EXPECT_TRUE(tr.spans().empty());
}

TEST(Tracer, ClearKeepsEnabledFlagAndTrackNames) {
  Tracer tr;
  tr.enable();
  const int track = tr.counter_track("queue-depth");
  tr.counter(track, 5, 1.0);
  tr.add(0, SegmentKind::kCompute, 0, 10);
  tr.push_span(0, "left-open", 0);
  tr.clear();
  EXPECT_TRUE(tr.enabled());
  EXPECT_TRUE(tr.segments().empty());
  EXPECT_TRUE(tr.counter_samples().empty());
  EXPECT_EQ(tr.open_spans(0), 0u);
  // Same name resolves to the same id after clear().
  EXPECT_EQ(tr.counter_track("queue-depth"), track);
}

TEST(Tracer, SharedAcrossConsecutiveMachineRuns) {
  // Satellite (a): one externally owned tracer, two Machine runs.
  Tracer tr;
  tr.enable();
  auto run_once = [&tr] {
    Machine m({}, 1u << 20, {}, &tr);
    m.launch(0, [](ep::CoreCtx& ctx) -> Task {
      ctx.begin_span("work");
      co_await ctx.compute({.fadd = 100});
      ctx.end_span();
    });
    m.run();
  };
  run_once();
  const std::size_t after_first = tr.segments().size();
  EXPECT_GT(after_first, 0u);
  run_once(); // accumulates without clear()
  EXPECT_EQ(tr.segments().size(), 2 * after_first);
  EXPECT_EQ(tr.spans().size(), 2u);
  tr.clear(); // one-trace-per-run usage
  run_once();
  EXPECT_EQ(tr.segments().size(), after_first);
}

TEST(Tracer, ChromeJsonRoundTripsWithSpansAndCounters) {
  Tracer tr;
  tr.enable();
  tr.add(0, SegmentKind::kCompute, 0, 100);
  tr.push_span(0, "merge-iter/1", 0);
  tr.pop_span(0, 100);
  const int track = tr.counter_track("ext-port/read-backlog");
  tr.counter(track, 50, 3.0);
  const auto path = temp_file("esarp_trace_test.json");
  tr.write_chrome_json(path);

  const JsonValue doc = parse_json(slurp(path));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_span = false, saw_counter = false, saw_segment = false;
  for (const JsonValue& e : events->as_array()) {
    const std::string ph = e.find("ph")->as_string();
    const std::string name = e.find("name")->as_string();
    if (ph == "X" && name == "merge-iter/1") saw_span = true;
    if (ph == "X" && name == "compute") saw_segment = true;
    if (ph == "C" && name == "ext-port/read-backlog") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(
          e.find_path("args.value")->as_number(), 3.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_segment);
  EXPECT_TRUE(saw_counter);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------- json

TEST(Json, WriterEscapesAndNestsCompact) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("s", "a\"b\\c\n");
  w.key("arr");
  w.begin_array();
  w.value(1.5);
  w.value(std::uint64_t{18446744073709551615ull});
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[1.5,18446744073709551615,"
            "null]}");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("pi", 3.25);
  w.kv("neg", std::int64_t{-7});
  w.kv("flag", true);
  w.kv("text", "unié");
  w.end_object();
  const JsonValue v = parse_json(os.str());
  EXPECT_DOUBLE_EQ(v.find("pi")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(v.find("neg")->as_number(), -7.0);
  EXPECT_TRUE(v.find("flag")->as_bool());
  EXPECT_EQ(v.find("text")->as_string(), "unié");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), ContractViolation);
  EXPECT_THROW(parse_json("[1,]"), ContractViolation);
  EXPECT_THROW(parse_json("{} trailing"), ContractViolation);
  EXPECT_THROW(parse_json("'single'"), ContractViolation);
}

TEST(Json, FindPathWalksNestedObjects) {
  const JsonValue v = parse_json(R"({"a":{"b":{"c":42}}})");
  ASSERT_NE(v.find_path("a.b.c"), nullptr);
  EXPECT_DOUBLE_EQ(v.find_path("a.b.c")->as_number(), 42.0);
  EXPECT_EQ(v.find_path("a.b.missing"), nullptr);
}

TEST(Json, ParserRejectsPathologicalNesting) {
  // 200 nested arrays: deeper than the 128-level guard, shallow enough
  // that without the guard the recursive parser would still survive —
  // proving the error comes from the limit, not a stack overflow.
  const std::string deep(200, '[');
  try {
    (void)parse_json(deep);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper than 128 levels"),
              std::string::npos)
        << e.what();
  }
  // At and below the limit, depth alone is fine.
  std::string ok(128, '[');
  ok += std::string(128, ']');
  EXPECT_NO_THROW((void)parse_json(ok));
}

TEST(Json, TruncatedInputNamesTheLikelyCause) {
  // A manifest cut off mid-write should say so, not just "unexpected end".
  const char* cases[] = {
      R"({"a": [1, {"b": "tru)", // inside a string
      R"({"results": {"x": )",   // after a key
      R"(["tail\)",              // mid-escape
  };
  for (const char* c : cases) {
    try {
      (void)parse_json(c);
      FAIL() << "expected ContractViolation for: " << c;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
}

// --------------------------------------------------------------- manifest

TEST(Manifest, RoundTripsThroughParser) {
  telemetry::MetricsRegistry reg;
  reg.counter("ext.read.bytes").add(1024);
  reg.gauge("noc.max_link_busy_cycles{mesh=rmesh}").set(77.0);
  reg.cycle_histogram("ext.read.stall_cycles").observe(100.0);

  telemetry::RunManifest man("unit_test");
  man.add_chip("rows", 4.0);
  man.add_workload("n_pulses", 256.0);
  man.add_result("makespan_cycles", 123456.0);
  man.set_metrics(&reg);

  std::ostringstream os;
  man.write(os);
  const JsonValue doc = parse_json(os.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "esarp-run-manifest/1");
  EXPECT_EQ(doc.find("tool")->as_string(), "unit_test");
  EXPECT_EQ(doc.find("version")->as_string(), telemetry::esarp_version());
  EXPECT_DOUBLE_EQ(doc.find_path("results.makespan_cycles")->as_number(),
                   123456.0);
  EXPECT_DOUBLE_EQ(
      doc.find_path("metrics.counters")->find("ext.read.bytes")->as_number(),
      1024.0);
  const JsonValue* hist =
      doc.find_path("metrics.histograms")->find("ext.read.stall_cycles");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 1.0);
  EXPECT_EQ(hist->find("edges")->as_array().size(),
            telemetry::cycle_histogram_edges().size());
}

TEST(Manifest, WriteCreatesParentDirectories) {
  const auto dir = temp_file("esarp_manifest_dir");
  std::filesystem::remove_all(dir);
  const auto path = dir / "nested" / "m.json";
  telemetry::RunManifest man("t");
  man.write(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- compare

JsonValue make_manifest(double makespan, double util) {
  std::ostringstream os;
  telemetry::RunManifest man("cmp");
  man.add_result("makespan_cycles", makespan);
  man.add_result("utilization", util);
  man.write(os);
  return parse_json(os.str());
}

TEST(Compare, SelfCompareIsClean) {
  const JsonValue a = make_manifest(1000.0, 0.5);
  const auto rep = telemetry::compare_manifests(a, a);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.regressions, 0);
}

TEST(Compare, MakespanGrowthPastThresholdRegresses) {
  const JsonValue base = make_manifest(1000.0, 0.5);
  const JsonValue worse = make_manifest(1100.0, 0.5); // +10% > 5% default
  const auto rep = telemetry::compare_manifests(base, worse);
  EXPECT_FALSE(rep.ok());
  // Within threshold passes.
  const JsonValue close = make_manifest(1030.0, 0.5);
  EXPECT_TRUE(telemetry::compare_manifests(base, close).ok());
}

TEST(Compare, DirectionInferredFromKeyName) {
  EXPECT_TRUE(telemetry::higher_is_better("results.utilization"));
  EXPECT_TRUE(telemetry::higher_is_better("results.flops_per_second"));
  EXPECT_TRUE(telemetry::higher_is_better(
      "metrics.gauges.engine.events_per_second"));
  EXPECT_FALSE(telemetry::higher_is_better("results.makespan_cycles"));
  EXPECT_FALSE(telemetry::higher_is_better("results.energy_j"));
  // utilization dropping 20% is a regression; rising 20% is not.
  const JsonValue base = make_manifest(1000.0, 0.5);
  EXPECT_FALSE(
      telemetry::compare_manifests(base, make_manifest(1000.0, 0.4)).ok());
  EXPECT_TRUE(
      telemetry::compare_manifests(base, make_manifest(1000.0, 0.6)).ok());
}

TEST(Compare, PerKeyThresholdOverridesDefault) {
  const JsonValue base = make_manifest(1000.0, 0.5);
  const JsonValue slight = make_manifest(1020.0, 0.5); // +2%
  telemetry::CompareOptions opt;
  opt.per_key["results.makespan_cycles"] = 0.01; // 1%: now regresses
  EXPECT_FALSE(telemetry::compare_manifests(base, slight, opt).ok());
}

TEST(Compare, GlobMatcher) {
  EXPECT_TRUE(telemetry::glob_match("wall_*", "wall_seconds"));
  EXPECT_TRUE(telemetry::glob_match("*wall*", "results.wall_seconds"));
  EXPECT_TRUE(telemetry::glob_match("wall_second?", "wall_seconds"));
  EXPECT_TRUE(telemetry::glob_match("*", ""));
  EXPECT_TRUE(telemetry::glob_match("a*b*c", "a.x.b.y.c"));
  EXPECT_FALSE(telemetry::glob_match("wall_*", "makespan_cycles"));
  EXPECT_FALSE(telemetry::glob_match("wall_?", "wall_seconds"));
  EXPECT_FALSE(telemetry::glob_match("", "x"));
}

TEST(Compare, NoisyPatternWidensMatchingKeys) {
  // Zero-tolerance default, but wall-clock keys get a 15% band through a
  // glob: +10% wall time passes while +10% makespan still fails.
  std::ostringstream os_base, os_cur;
  telemetry::RunManifest base_m("cmp"), cur_m("cmp");
  base_m.add_result("makespan_cycles", 1000.0);
  base_m.add_result("wall_seconds", 2.0);
  cur_m.add_result("makespan_cycles", 1000.0);
  cur_m.add_result("wall_seconds", 2.2); // +10%
  base_m.write(os_base);
  cur_m.write(os_cur);
  const JsonValue base = parse_json(os_base.str());
  const JsonValue cur = parse_json(os_cur.str());

  telemetry::CompareOptions opt;
  opt.default_threshold = 0.0;
  opt.noisy_patterns.emplace_back("wall_*", 0.15);
  EXPECT_TRUE(telemetry::compare_manifests(base, cur, opt).ok());

  // Without the pattern the same diff regresses at zero tolerance.
  telemetry::CompareOptions strict;
  strict.default_threshold = 0.0;
  EXPECT_FALSE(telemetry::compare_manifests(base, cur, strict).ok());

  // The pattern only widens matching keys: makespan stays zero-tolerance.
  std::ostringstream os_slow;
  telemetry::RunManifest slow_m("cmp");
  slow_m.add_result("makespan_cycles", 1100.0);
  slow_m.add_result("wall_seconds", 2.0);
  slow_m.write(os_slow);
  EXPECT_FALSE(
      telemetry::compare_manifests(base, parse_json(os_slow.str()), opt)
          .ok());
}

TEST(Compare, NoisyEventsPerSecondGatesOnDropsOnly) {
  // The CI perf-smoke leg widens engine.events_per_second with a noise
  // band; the key is higher-is-better, so only a drop beyond the band may
  // regress — a faster engine must never fail the gate.
  const auto make = [](double eps) {
    telemetry::MetricsRegistry reg;
    reg.gauge("engine.events_per_second").set(eps);
    telemetry::RunManifest m("cmp");
    m.set_metrics(&reg);
    std::ostringstream os;
    m.write(os);
    return parse_json(os.str());
  };
  const JsonValue base = make(1.0e6);
  telemetry::CompareOptions opt;
  opt.noisy_patterns.emplace_back("engine.events_per_second*", 0.15);
  EXPECT_FALSE(telemetry::compare_manifests(base, make(0.8e6), opt).ok());
  EXPECT_TRUE(telemetry::compare_manifests(base, make(0.9e6), opt).ok());
  EXPECT_TRUE(telemetry::compare_manifests(base, make(1.3e6), opt).ok());
}

TEST(Compare, NoisyPatternResolutionOrder) {
  const JsonValue base = make_manifest(1000.0, 0.5);
  const JsonValue slight = make_manifest(1020.0, 0.5); // +2%
  // An exact per-key override beats a matching glob pattern.
  telemetry::CompareOptions opt;
  opt.per_key["results.makespan_cycles"] = 0.01; // 1%: regresses
  opt.noisy_patterns.emplace_back("makespan_*", 0.50);
  EXPECT_FALSE(telemetry::compare_manifests(base, slight, opt).ok());
  // Glob alone wins over the default and widens the band.
  telemetry::CompareOptions glob_only;
  glob_only.default_threshold = 0.0;
  glob_only.noisy_patterns.emplace_back("makespan_*", 0.50);
  EXPECT_TRUE(telemetry::compare_manifests(base, slight, glob_only).ok());
  // A pattern matching nothing is not an error.
  telemetry::CompareOptions unmatched;
  unmatched.noisy_patterns.emplace_back("no_such_key_*", 0.01);
  EXPECT_TRUE(telemetry::compare_manifests(base, base, unmatched).ok());
}

TEST(Compare, LatencyAndSloKeysGetTheBuiltinNoiseBand) {
  // latency_* / slo_* are order statistics over small job populations, so
  // they default to a 10% band even at a zero default threshold: +8% p99
  // passes, +12% fails; other keys stay zero-tolerance.
  const auto make = [](double p99, double makespan) {
    telemetry::RunManifest m("cmp");
    m.add_result("latency_p99_s", p99);
    m.add_result("makespan_cycles", makespan);
    std::ostringstream os;
    m.write(os);
    return parse_json(os.str());
  };
  const JsonValue base = make(1.0e-3, 1000.0);
  telemetry::CompareOptions opt;
  opt.default_threshold = 0.0;
  EXPECT_TRUE(telemetry::compare_manifests(base, make(1.08e-3, 1000.0), opt)
                  .ok());
  EXPECT_FALSE(telemetry::compare_manifests(base, make(1.12e-3, 1000.0), opt)
                   .ok());
  EXPECT_FALSE(telemetry::compare_manifests(base, make(1.0e-3, 1001.0), opt)
                   .ok());
  // latency_slo_band 0 pins the band for same-seed deterministic diffs
  // (the CLI spelling is --latency-band 0.0).
  telemetry::CompareOptions pinned;
  pinned.default_threshold = 0.0;
  pinned.latency_slo_band = 0.0;
  EXPECT_FALSE(
      telemetry::compare_manifests(base, make(1.08e-3, 1000.0), pinned).ok());
}

TEST(Compare, SloAttainmentIsHigherIsBetter) {
  EXPECT_TRUE(telemetry::higher_is_better("results.slo_attainment"));
  EXPECT_TRUE(telemetry::higher_is_better("results.throughput_jobs_per_s"));
  EXPECT_FALSE(telemetry::higher_is_better("results.latency_p99_s"));
  // Attainment RISING past the band is an improvement, never a regression.
  const auto make = [](double slo) {
    telemetry::RunManifest m("cmp");
    m.add_result("slo_attainment", slo);
    std::ostringstream os;
    m.write(os);
    return parse_json(os.str());
  };
  const JsonValue base = make(0.80);
  EXPECT_TRUE(telemetry::compare_manifests(base, make(0.99)).ok());
  EXPECT_FALSE(telemetry::compare_manifests(base, make(0.60)).ok());
}

TEST(Compare, UserThresholdsOverrideTheLatencyBand) {
  const auto make = [](double p99) {
    telemetry::RunManifest m("cmp");
    m.add_result("latency_p99_s", p99);
    std::ostringstream os;
    m.write(os);
    return parse_json(os.str());
  };
  const JsonValue base = make(1.0e-3);
  const JsonValue worse = make(1.05e-3); // +5%: inside the builtin band
  // A matching --noisy-metric pattern beats the builtin band...
  telemetry::CompareOptions noisy;
  noisy.noisy_patterns.emplace_back("latency_*", 0.0);
  EXPECT_FALSE(telemetry::compare_manifests(base, worse, noisy).ok());
  // ...and an exact --metric key beats both.
  telemetry::CompareOptions exact;
  exact.noisy_patterns.emplace_back("latency_*", 0.50);
  exact.per_key["results.latency_p99_s"] = 0.01;
  EXPECT_FALSE(telemetry::compare_manifests(base, worse, exact).ok());
}

TEST(Compare, AcceptsAnyEsarpManifestSchema) {
  // The schema gate is a glob: run manifests, serve manifests and future
  // esarp-*-manifest variants all compare; foreign documents still throw.
  telemetry::RunManifest m("serve");
  m.set_schema("esarp-serve-manifest/1");
  m.add_result("jobs_total", 6.0);
  std::ostringstream os;
  m.write(os);
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(telemetry::compare_manifests(doc, doc).ok());
  const JsonValue foreign =
      parse_json(R"({"schema":"someone-elses-manifest/1","results":{}})");
  EXPECT_THROW(telemetry::compare_manifests(foreign, foreign),
               ContractViolation);
}

TEST(Compare, RejectsNonManifestDocuments) {
  const JsonValue junk = parse_json(R"({"hello":"world"})");
  EXPECT_THROW(telemetry::compare_manifests(junk, junk), ContractViolation);
}

TEST(Compare, MissingCheckedMetricIsANamedRegression) {
  // An explicitly requested --metric key that exists in neither manifest
  // must fail the comparison with a line naming the problem — a typo'd or
  // silently vanished metric can't pass as "nothing to compare".
  const JsonValue a = make_manifest(1000.0, 0.5);
  telemetry::CompareOptions opt;
  opt.per_key["results.makespan_cyclse"] = 0.05; // typo'd key
  const auto rep = telemetry::compare_manifests(a, a, opt);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.regressions, 1);
  bool found = false;
  for (const auto& l : rep.lines) {
    if (l.key != "results.makespan_cyclse") continue;
    found = true;
    EXPECT_TRUE(l.unusable);
    EXPECT_TRUE(l.regressed);
    EXPECT_NE(l.problem.find("missing"), std::string::npos) << l.problem;
  }
  EXPECT_TRUE(found);
  EXPECT_NE(rep.summary().find("FAILED"), std::string::npos);
}

TEST(Compare, DirectionTableClassifiesOverloadCounters) {
  // The overload counters are directional: shed / late / wasted hedges are
  // overhead and regress upward; hedge wins are neutral bookkeeping.
  using telemetry::Direction;
  EXPECT_EQ(telemetry::metric_direction("results.jobs_shed"),
            Direction::kLowerBetter);
  EXPECT_EQ(telemetry::metric_direction("results.jobs_late"),
            Direction::kLowerBetter);
  EXPECT_EQ(telemetry::metric_direction("results.hedge_wasted"),
            Direction::kLowerBetter);
  EXPECT_EQ(telemetry::metric_direction("results.hedge_wins"),
            Direction::kNeutral);
  EXPECT_EQ(telemetry::metric_direction("results.slo_attainment"),
            Direction::kHigherBetter);
  // higher_is_better stays the back-compat view of the same table.
  EXPECT_FALSE(telemetry::higher_is_better("results.jobs_shed"));
  EXPECT_FALSE(telemetry::higher_is_better("results.hedge_wins"));

  const auto make = [](double shed) {
    telemetry::RunManifest m("cmp");
    m.set_schema("esarp-serve-manifest/2");
    m.add_result("jobs_shed", shed);
    std::ostringstream os;
    m.write(os);
    return parse_json(os.str());
  };
  const JsonValue base = make(10.0);
  EXPECT_FALSE(telemetry::compare_manifests(base, make(12.0)).ok());
  EXPECT_TRUE(telemetry::compare_manifests(base, make(8.0)).ok());
}

TEST(Compare, NeutralKeysAreInformationalUnlessOptedIn) {
  // hedge_wins swings with where the chaos lands, so its default compare
  // status is informational even under a zero default threshold. An
  // explicit --metric opt-in still checks it — in both directions.
  const auto make = [](double wins) {
    telemetry::RunManifest m("cmp");
    m.set_schema("esarp-serve-manifest/2");
    m.add_result("hedge_wins", wins);
    std::ostringstream os;
    m.write(os);
    return parse_json(os.str());
  };
  const JsonValue base = make(4.0);
  telemetry::CompareOptions strict;
  strict.default_threshold = 0.0;
  EXPECT_TRUE(telemetry::compare_manifests(base, make(9.0), strict).ok());
  EXPECT_TRUE(telemetry::compare_manifests(base, make(0.0), strict).ok());
  const auto rep = telemetry::compare_manifests(base, make(9.0), strict);
  bool seen = false;
  for (const auto& l : rep.lines)
    if (l.key == "results.hedge_wins") {
      seen = true;
      EXPECT_FALSE(l.checked);
    }
  EXPECT_TRUE(seen);

  telemetry::CompareOptions opted;
  opted.per_key["results.hedge_wins"] = 0.10;
  EXPECT_FALSE(telemetry::compare_manifests(base, make(9.0), opted).ok());
  EXPECT_FALSE(telemetry::compare_manifests(base, make(1.0), opted).ok());
  EXPECT_TRUE(telemetry::compare_manifests(base, make(4.0), opted).ok());
}

TEST(Compare, MetricPresentOnOneSideOnlyIsUnusable) {
  // Present in base, absent in current: the side-specific diagnosis shows
  // up in the problem text so the user knows which run lost the metric.
  std::ostringstream os;
  telemetry::RunManifest man("cmp");
  man.add_result("makespan_cycles", 1000.0);
  man.add_result("utilization", 0.5);
  man.add_result("extra_metric", 7.0);
  man.write(os);
  const JsonValue base = parse_json(os.str());
  const JsonValue cur = make_manifest(1000.0, 0.5); // no extra_metric
  telemetry::CompareOptions opt;
  opt.per_key["results.extra_metric"] = 0.05;
  const auto rep = telemetry::compare_manifests(base, cur, opt);
  EXPECT_FALSE(rep.ok());
  bool found = false;
  for (const auto& l : rep.lines) {
    if (l.key != "results.extra_metric" || !l.unusable) continue;
    found = true;
    EXPECT_NE(l.problem.find("base ok"), std::string::npos) << l.problem;
    EXPECT_NE(l.problem.find("current missing"), std::string::npos)
        << l.problem;
  }
  EXPECT_TRUE(found);
}

// --------------------------------------------- machine-level integration

TEST(MachineMetrics, PopulatedByInstrumentedRun) {
  Machine m;
  auto src = m.ext().alloc<float>(1024);
  auto barrier = m.make_barrier(2);
  for (int c = 0; c < 2; ++c) {
    m.launch(c, [&, c](ep::CoreCtx& ctx) -> Task {
      float buf[256];
      co_await ctx.read_ext(buf, src.data() + 256 * c, sizeof(buf));
      co_await ctx.compute({.fadd = 100u * (1u + static_cast<unsigned>(c))});
      co_await barrier->arrive_and_wait(ctx);
    });
  }
  m.run();
  ep::collect_machine_metrics(m);
  const telemetry::MetricsRegistry& reg = m.metrics();

  // Live instrumentation: ext-port stall histogram and barrier metrics.
  const telemetry::Histogram* stalls =
      reg.find_histogram("ext.read.stall_cycles");
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(stalls->count(), 2u);
  ASSERT_NE(reg.find_counter("barrier.crossings"), nullptr);
  EXPECT_EQ(reg.find_counter("barrier.crossings")->value(), 2u);
  const telemetry::Histogram* imb =
      reg.find_histogram("barrier.imbalance_cycles");
  ASSERT_NE(imb, nullptr);
  EXPECT_EQ(imb->count(), 1u); // one crossing -> one imbalance sample

  // Post-run collection: ext totals, per-core counters, per-link traffic.
  EXPECT_EQ(reg.find_counter("ext.read.bytes")->value(), 2048u);
  EXPECT_EQ(
      reg.find_counter(telemetry::labeled("core.busy_cycles", {{"core", "0"}}))
          ->value(),
      m.core(0).counters.busy);
  bool any_link = false;
  for (const auto& [name, c] : reg.counters())
    if (name.rfind("noc.link.bytes{", 0) == 0 && c.value() > 0)
      any_link = true;
  EXPECT_TRUE(any_link);
}

TEST(MachineMetrics, ChannelCountersLabeledByName) {
  Machine m;
  auto chan = m.make_channel<int>(1, 2, "pipe");
  m.launch(0, [&](ep::CoreCtx& ctx) -> Task {
    for (int i = 0; i < 5; ++i) co_await chan->send(ctx, i);
  });
  m.launch(1, [&](ep::CoreCtx& ctx) -> Task {
    for (int i = 0; i < 5; ++i) (void)co_await chan->recv(ctx);
  });
  m.run();
  const auto* msgs = m.metrics().find_counter(
      telemetry::labeled("chan.messages", {{"chan", "pipe"}}));
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->value(), 5u);
}

} // namespace
} // namespace esarp
