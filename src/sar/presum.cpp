#include "sar/presum.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace esarp::sar {

PresumResult presum(const Array2D<cf32>& data, const RadarParams& p,
                    std::size_t factor, fft::WindowKind weighting) {
  p.validate();
  ESARP_EXPECTS(data.rows() == p.n_pulses && data.cols() == p.n_range);
  ESARP_EXPECTS(factor >= 1);
  ESARP_EXPECTS(p.n_pulses % factor == 0);

  PresumResult res;
  res.params = p;
  res.params.n_pulses = p.n_pulses / factor;
  res.params.pulse_spacing_m = p.pulse_spacing_m *
                               static_cast<double>(factor);

  const auto w = fft::make_window(weighting, factor);
  // Normalise to unit DC gain so amplitudes stay comparable.
  float wsum = 0.0f;
  for (float v : w) wsum += v;
  ESARP_EXPECTS(wsum > 0.0f);

  res.data = Array2D<cf32>(res.params.n_pulses, p.n_range);
  for (std::size_t o = 0; o < res.params.n_pulses; ++o) {
    auto out = res.data.row(o);
    for (std::size_t k = 0; k < factor; ++k) {
      const float wk = w[k] / wsum;
      const auto in = data.row(o * factor + k);
      for (std::size_t j = 0; j < p.n_range; ++j) out[j] += in[j] * wk;
    }
  }

  // Work: one scalar-complex MAC per input sample.
  res.ops = static_cast<std::uint64_t>(p.n_pulses) * p.n_range *
            OpCounts{.fma = 2, .load = 2, .store = 2};
  return res;
}

std::size_t max_presum_factor(const RadarParams& p) {
  // Azimuth bandwidth of the processed sector: scatterers at the sector
  // edge produce spatial frequencies up to 2 sin(span/2) / lambda; the
  // presummed spacing must sample that at >= Nyquist.
  const double f_max =
      2.0 * std::sin(0.5 * p.theta_span_rad) / p.wavelength_m();
  const double max_spacing = 0.5 / f_max;
  const auto factor = static_cast<std::size_t>(
      std::floor(max_spacing / p.pulse_spacing_m));
  return factor < 1 ? 1 : factor;
}

} // namespace esarp::sar
