// Aggregated performance counters of a simulation run.
#pragma once

#include <string>
#include <vector>

#include "common/opcounts.hpp"
#include "epiphany/config.hpp"
#include "epiphany/core.hpp"
#include "epiphany/ext_port.hpp"
#include "epiphany/noc.hpp"

namespace esarp::ep {

struct PerfReport {
  ChipConfig cfg;
  Cycles makespan = 0; ///< cycles until the last core finished
  /// Scheduler events the engine processed for this run (host-side engine
  /// throughput; does not affect — and must not be affected by — any
  /// simulated-cycle result).
  std::uint64_t engine_events = 0;
  /// Delays the batched-quantum fast path absorbed without a scheduler
  /// event (docs/performance.md). Deterministic for a given workload and
  /// ChipConfig::batch_quanta setting; zero when batching is off.
  std::uint64_t engine_quanta = 0;
  std::vector<CoreCounters> per_core;
  NocStats noc_total;
  NocStats noc_read;
  NocStats noc_write_onchip;
  NocStats noc_write_offchip;
  ExtPortStats ext;

  [[nodiscard]] OpCounts total_ops() const;
  [[nodiscard]] Cycles total_busy() const;
  [[nodiscard]] Cycles total_ext_stall() const;
  [[nodiscard]] double seconds() const { return cfg.seconds(makespan); }

  /// Fraction of core-cycles spent in compute blocks over the makespan
  /// (only cores that executed anything are counted in the denominator).
  [[nodiscard]] double utilization() const;

  /// Achieved floating-point rate over the makespan [FLOP/s].
  [[nodiscard]] double flops_per_second() const;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;

  /// Per-core one-line breakdown table.
  [[nodiscard]] std::string per_core_table() const;
};

} // namespace esarp::ep
