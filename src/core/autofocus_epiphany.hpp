// Autofocus criterion calculation on the simulated Epiphany chip.
//
// Sequential variant: the whole sweep on one core. The working set (two
// 6x6 complex blocks, 576 bytes) fits comfortably in the local store, so —
// unlike FFBP — the sequential version sees no SDRAM stalls, which is why
// the paper finds its throughput "comparable" to the Intel reference.
//
// MPMD variant (paper Section V-C, Fig. 9): thirteen cores run *different*
// programs connected by on-chip streaming channels:
//
//   per contributing image block (x2):
//     3 range-interpolation cores, one per sliding 4-column window
//       (each receives its input block; the paper notes the input "is also
//       copied to the local memory of the next adjacent core"),
//     3 beam-interpolation cores, window-paired with the range cores;
//   1 shared correlation/summation core producing the criterion (eq. 6)
//     and posting the result to off-chip SDRAM.
//
// The mapping option selects the paper's compact neighbour placement or a
// deliberately scattered placement (the ablation for the paper's claim
// that the custom mapping "avoids transactions with distant cores").
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"
#include "autofocus/af_params.hpp"
#include "autofocus/workload.hpp"
#include "fault/injector.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::core {

enum class AfPlacement {
  kCompact,   ///< paper Fig. 9: window pipelines on adjacent cores
  kScattered, ///< worst-practice placement across the mesh (ablation)
};

struct AfMapOptions {
  AfPlacement placement = AfPlacement::kCompact;
  std::size_t channel_capacity = 8; ///< FIFO depth in messages
  /// Externally owned tracer handed to the Machine (see Machine's
  /// shared_tracer parameter); enable before the run for named
  /// criterion-block spans. Must outlive the run.
  ep::Tracer* tracer = nullptr;
  /// Nonzero arms the scheduler watchdog (ep::WatchdogExpired past this
  /// many simulated cycles), mirroring FfbpMapOptions::max_cycles.
  ep::Cycles max_cycles = 0;
};

struct AfSimResult {
  /// criteria[pair][shift] — identical (same accumulation order) to the
  /// sequential af::criterion_sweep values.
  std::vector<std::vector<double>> criteria;
  ep::Cycles cycles = 0;
  double seconds = 0.0;
  double pixels_per_second = 0.0; ///< paper Table-I throughput metric
  ep::PerfReport perf;
  ep::EnergyReport energy;
  /// Time-resolved power trace + span-level energy attribution, filled
  /// when power sampling was enabled for the run (power.hpp).
  ep::PowerReport power;
  int cores_used = 0;
  /// Snapshot of the machine's telemetry registry after the run (channel
  /// block histograms, per-link NoC traffic, core counters, ...).
  telemetry::MetricsRegistry metrics;
  /// Fault-campaign totals (all zero unless ChipConfig::faults is enabled).
  fault::FaultSummary faults;
  /// True when the campaign degraded the result: a fail-stopped core broke
  /// a window pipeline and the correlator rescored from the surviving
  /// windows (docs/fault-injection.md).
  bool degraded = false;
};

/// Sequential (1-core) sweep over all block pairs. `tracer` (optional,
/// externally owned) is handed to the Machine for named spans.
[[nodiscard]] AfSimResult
run_autofocus_sequential_epiphany(std::span<const af::BlockPair> pairs,
                                  const af::AfParams& p,
                                  ep::ChipConfig cfg = {},
                                  ep::Tracer* tracer = nullptr);

/// 13-core MPMD streaming pipeline over all block pairs.
[[nodiscard]] AfSimResult
run_autofocus_mpmd(std::span<const af::BlockPair> pairs,
                   const af::AfParams& p, const AfMapOptions& opt = {},
                   ep::ChipConfig cfg = {});

/// The same 13-node pipeline expressed as a declarative ep::ProcessNetwork
/// (the occam-pi-style model of the paper's future-work section): nodes
/// and typed channels are declared, the network places them on the mesh
/// automatically, and produces identical criterion values. `placement`
/// in the result's perf data reflects the automatic assignment; the
/// returned description string lists it.
struct AfGraphResult {
  AfSimResult sim;
  std::string placement_description;
  double weighted_hops = 0.0; ///< the placement objective achieved
};
[[nodiscard]] AfGraphResult
run_autofocus_graph(std::span<const af::BlockPair> pairs,
                    const af::AfParams& p, std::size_t channel_capacity = 8,
                    ep::ChipConfig cfg = {});

} // namespace esarp::core
