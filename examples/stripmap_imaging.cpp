// Stripmap imaging end to end, through the physical signal chain:
//
//   chirp transmission -> point-target echoes -> matched-filter pulse
//   compression -> GBP and FFBP image formation -> quality comparison.
//
// Unlike quickstart.cpp (which injects ideal compressed responses), this
// example exercises the fft substrate for range compression, then shows
// the paper's Fig. 7 quality ordering: GBP sharpest, FFBP slightly noisier
// due to the simplified interpolation, both far sharper than raw data.
//
// Build & run:  ./examples/stripmap_imaging [output_dir]
#include <filesystem>
#include <iostream>

#include "common/format.hpp"
#include "common/pgm.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"
#include "sar/scene.hpp"

int main(int argc, char** argv) {
  using namespace esarp;
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";
  std::filesystem::create_directories(dir);

  const sar::RadarParams params = sar::test_params(128, 257);
  const sar::Scene scene = sar::six_target_scene(params);

  std::cout << "simulating echoes through the chirp + matched-filter chain"
            << " (" << params.n_pulses << " pulses)...\n";
  WallTimer timer;
  const Array2D<cf32> data = sar::simulate_via_chirp(params, scene);
  std::cout << "  pulse compression done in "
            << format_seconds(timer.elapsed_s()) << "\n";

  timer.reset();
  const auto g = sar::gbp(data, params);
  const double gbp_s = timer.elapsed_s();

  timer.reset();
  const auto f_nn = sar::ffbp(data, params);
  const double ffbp_s = timer.elapsed_s();

  sar::FfbpOptions cubic;
  cubic.interp = sar::Interp::kCubic;
  const auto f_cubic = sar::ffbp(data, params, cubic);

  Table t("stripmap imaging: GBP vs FFBP");
  t.header({"Image", "Entropy", "Contrast", "Wall time", "Counted flops"});
  t.row({"raw (compressed) data", Table::num(image_entropy(data), 2),
         Table::num(image_contrast(data), 2), "-", "-"});
  t.row({"GBP", Table::num(image_entropy(g.image.data), 2),
         Table::num(image_contrast(g.image.data), 2),
         format_seconds(gbp_s), format_cycles(g.ops.flops())});
  t.row({"FFBP nearest", Table::num(image_entropy(f_nn.image.data), 2),
         Table::num(image_contrast(f_nn.image.data), 2),
         format_seconds(ffbp_s), format_cycles(f_nn.ops.flops())});
  t.row({"FFBP cubic", Table::num(image_entropy(f_cubic.image.data), 2),
         Table::num(image_contrast(f_cubic.image.data), 2), "-",
         format_cycles(f_cubic.ops.flops())});
  t.note("FFBP needs O(N log N) back-projection work vs GBP's O(N^2): "
         "counted flops ratio " +
         Table::num(static_cast<double>(g.ops.flops()) /
                        static_cast<double>(f_nn.ops.flops()),
                    1) +
         "x for this geometry");
  t.print(std::cout);

  write_pgm(dir / "stripmap_raw.pgm", data);
  write_pgm(dir / "stripmap_gbp.pgm", g.image.data);
  write_pgm(dir / "stripmap_ffbp.pgm", f_nn.image.data);
  std::cout << "\nimages written to " << dir.string() << "\n";
  return 0;
}
