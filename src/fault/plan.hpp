// Deterministic fault-injection campaigns for the simulated chip.
//
// A FaultPlan describes *what goes wrong* during a run: per-site error
// rates over the data-movement operations (DMA / eLink transfers, NoC
// link stalls, bit flips hitting data resident in a local bank) plus
// explicit whole-core fail-stop triggers at fixed (core, cycle) points.
// The plan is embedded in ep::ChipConfig (like CheckOptions), so every
// workload mapping can be run under faults without API changes.
//
// Determinism contract (docs/fault-injection.md): every injection decision
// is a pure function of (seed, site, core, per-site operation counter) —
// never of host randomness or wall clock — so two runs with the same plan
// and workload produce bit-identical fault schedules, manifests and
// images. That is what lets CI diff two chaos runs at zero tolerance.
//
// This header is dependency-free (no epiphany includes) so ChipConfig can
// embed it; the decision engine lives in fault/injector.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace esarp::fault {

/// Thrown by the resilience layer when recovery is exhausted: a transfer
/// still fails after RetryPolicy::max_attempts, or a barrier crossing
/// starves past the abandon horizon with no failure evidence. Mapped to
/// its own process exit code by esarp_cli (distinct from SimDeadlock and
/// ContractViolation) so scripts can tell "gave up recovering" apart from
/// "hung" and "broke an engine contract".
class FaultUnrecovered : public std::runtime_error {
public:
  explicit FaultUnrecovered(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by Machine::run when the plan's whole-chip fail-stop fires
/// mid-run: the chip executed no simulated work at or beyond
/// FaultPlan::chip_fail_cycle, so the job it was serving is gone. The
/// fleet runtime (src/serve) catches this, marks the chip dead and
/// migrates the job; a bare `esarp chaos` run maps it to the
/// FaultUnrecovered exit code (5) — the chip itself cannot recover.
class ChipFailed : public FaultUnrecovered {
public:
  ChipFailed(std::uint64_t cycle, const std::string& what)
      : FaultUnrecovered(what), cycle_(cycle) {}

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

private:
  std::uint64_t cycle_;
};

/// Injection sites (the labels on fault.injected{site=...} counters).
enum class Site : std::uint8_t {
  kDmaCorrupt, ///< transfer delivered corrupted payload (checksum-detected)
  kDmaDrop,    ///< transfer lost in flight (timeout-detected)
  kNocStall,   ///< NoC link held busy for extra cycles (delay-only)
  kMemBits,    ///< bit flip in data resident in a local bank
  kFailStop,   ///< whole core stops executing at a fixed cycle
  kChipFailStop, ///< the entire chip stops executing at a fixed cycle
};

[[nodiscard]] constexpr const char* to_string(Site s) {
  switch (s) {
    case Site::kDmaCorrupt: return "dma-corrupt";
    case Site::kDmaDrop: return "dma-drop";
    case Site::kNocStall: return "noc-stall";
    case Site::kMemBits: return "mem-bits";
    case Site::kFailStop: return "fail-stop";
    case Site::kChipFailStop: return "chip-fail-stop";
  }
  return "?";
}

/// Explicit whole-core fail-stop trigger: the core executes no further
/// simulated work once `cycle` has passed (kernels poll at work-item
/// granularity, so the stop lands at the next row/pair/message boundary).
struct FailStop {
  int core = 0;
  std::uint64_t cycle = 0;
};

/// Recovery-layer tuning (all values in simulated cycles unless noted).
struct RetryPolicy {
  int max_attempts = 5;        ///< transfer attempts before FaultUnrecovered
  std::uint64_t backoff_base = 64;     ///< retry n sleeps base << n cycles
  std::uint64_t drop_timeout = 1024;   ///< modeled watchdog for a lost DMA
  std::uint64_t barrier_poll = 512;    ///< waiter poll quantum (fault mode)
  std::uint64_t barrier_timeout = 1u << 16; ///< no-release window before the
                                            ///< waiter probes for failed cores
  std::uint64_t barrier_abandon = 1u << 26; ///< no-progress horizon before a
                                            ///< waiter throws FaultUnrecovered
  std::uint64_t channel_timeout = 1u << 16; ///< recv/send wait before checking
                                            ///< the peer for fail-stop
  std::uint64_t channel_poll = 256;    ///< channel poll quantum (fault mode)
};

/// A seeded fault campaign. Rates are per-operation probabilities in
/// [0, 1]: dma rates roll once per transfer (each burst segment rolls
/// independently), noc_stall_rate rolls once per NoC message, membits_rate
/// rolls once per local-bank-resident transfer destination.
struct FaultPlan {
  std::uint64_t seed = 1;

  double dma_corrupt_rate = 0.0;
  double dma_drop_rate = 0.0;
  double noc_stall_rate = 0.0;
  std::uint64_t noc_stall_cycles = 64; ///< extra delay per injected stall
  double membits_rate = 0.0;

  std::vector<FailStop> fail_stops;

  /// Whole-chip fail-stop: the chip executes no simulated work at or
  /// beyond this cycle — Machine::run throws fault::ChipFailed instead of
  /// returning. 0 disables. Unlike per-core fail_stops there is no
  /// on-chip recovery path; this models losing a board in a multi-chip
  /// fleet (docs/serving.md), where recovery means migrating the job.
  std::uint64_t chip_fail_cycle = 0;

  /// true: workloads use the recovery runtime (retry/timeout/repartition).
  /// false: faults are injected but the plain kernels run — the
  /// pre-resilience behaviour (fail-stops deadlock, corruption lands in
  /// the image). Used by tests and the chaos CLI to demonstrate the delta.
  bool resilient = true;

  RetryPolicy retry;

  /// True when any fault source is active; the Machine only builds an
  /// injector (and the kernels only take fault-aware paths) when set, so a
  /// default plan leaves every simulation bit-identical to pre-fault code.
  [[nodiscard]] bool enabled() const {
    return dma_corrupt_rate > 0.0 || dma_drop_rate > 0.0 ||
           noc_stall_rate > 0.0 || membits_rate > 0.0 ||
           !fail_stops.empty() || chip_fail_cycle > 0;
  }
};

} // namespace esarp::fault
