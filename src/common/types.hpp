// Fundamental scalar and complex types shared across the whole project.
#pragma once

#include <complex>
#include <cstdint>
#include <numbers>

namespace esarp {

/// Single-precision complex sample. The Epiphany FPU is 32-bit single
/// precision only, so every on-"chip" pixel and radar sample uses this type.
/// It is exactly 8 bytes, matching the paper's "two 32-bit floating-point
/// numbers" per pixel (and the 64-bit MOV optimisation it describes).
using cf32 = std::complex<float>;

/// Double-precision complex, used only by host-side reference math
/// (e.g. geometry validation in tests), never by the simulated kernels.
using cf64 = std::complex<double>;

inline constexpr double kPi = std::numbers::pi;
inline constexpr float kPiF = std::numbers::pi_v<float>;

/// Speed of light [m/s]; used by SAR geometry to convert delays to ranges.
inline constexpr double kSpeedOfLight = 299'792'458.0;

static_assert(sizeof(cf32) == 8, "cf32 must be 8 bytes (paper: 64-bit pixel)");

} // namespace esarp
