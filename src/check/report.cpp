#include "check/report.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace esarp::check {

bool glob_match(std::string_view pattern, std::string_view s) {
  // Iterative star-backtracking matcher (no recursion, linear-ish).
  std::size_t p = 0;
  std::size_t i = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_i = 0;
  while (i < s.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == s[i])) {
      ++p;
      ++i;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_i = i;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      i = ++star_i;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::string>
load_suppressions(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw ContractViolation("cannot read suppression file: " + path.string());
  std::vector<std::string> rules;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim whitespace.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos || colon == 0)
      throw ContractViolation("malformed suppression (want kind:glob) at " +
                              path.string() + ":" + std::to_string(lineno));
    rules.push_back(line);
  }
  return rules;
}

bool suppression_matches(const std::string& rule, Hazard kind,
                         const std::string& message) {
  const auto colon = rule.find(':');
  ESARP_EXPECTS(colon != std::string::npos);
  const std::string_view rule_kind(rule.data(), colon);
  if (rule_kind != "*" && rule_kind != to_string(kind)) return false;
  return glob_match(std::string_view(rule).substr(colon + 1), message);
}

void write_console_report(std::ostream& os,
                          const std::vector<Diagnostic>& diags,
                          std::size_t dropped) {
  std::size_t suppressed = 0;
  for (const Diagnostic& d : diags)
    if (d.suppressed) ++suppressed;
  // Build the whole report first and emit it with one stream write, so
  // concurrent finalizers (ESARP_JOBS > 1 sweeps) never interleave lines.
  std::ostringstream buf;
  buf << "==esarp-check== " << diags.size() << " hazard diagnostic(s)";
  if (suppressed > 0) buf << " (" << suppressed << " suppressed)";
  if (dropped > 0) buf << ", " << dropped << " dropped past the cap";
  buf << ":\n";
  for (const Diagnostic& d : diags)
    buf << "==esarp-check==   " << d.format()
        << (d.suppressed ? "  [suppressed]" : "") << "\n";
  os << buf.str();
}

void write_json_report(const std::filesystem::path& path,
                       const std::vector<Diagnostic>& diags,
                       std::size_t dropped) {
  std::ofstream out(path);
  if (!out)
    throw ContractViolation("cannot write check report: " + path.string());
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "esarp-check-report/1");
  w.kv("dropped", static_cast<std::uint64_t>(dropped));
  w.key("diagnostics");
  w.begin_array();
  for (const Diagnostic& d : diags) {
    w.begin_object();
    w.kv("kind", to_string(d.kind));
    w.kv("core", d.core);
    w.kv("cycle", static_cast<std::uint64_t>(d.cycle));
    w.kv("span", d.span);
    w.kv("message", d.message);
    w.kv("suppressed", d.suppressed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  ESARP_ENSURES(w.done());
}

} // namespace esarp::check
