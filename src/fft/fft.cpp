#include "fft/fft.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace esarp::fft {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Fft::Fft(std::size_t n) : n_(n) {
  ESARP_EXPECTS(is_pow2(n));
  log2n_ = 0;
  while ((std::size_t{1} << log2n_) < n_) ++log2n_;

  twiddle_fwd_.resize(n_ / 2);
  twiddle_inv_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n_);
    twiddle_fwd_[k] = {static_cast<float>(std::cos(ang)),
                       static_cast<float>(std::sin(ang))};
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }

  bitrev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint32_t rev = 0;
    for (std::size_t b = 0; b < log2n_; ++b)
      if (i & (std::size_t{1} << b)) rev |= 1u << (log2n_ - 1 - b);
    bitrev_[i] = rev;
  }
}

void Fft::transform(std::span<cf32> data, bool inverse_sign) const {
  ESARP_EXPECTS(data.size() == n_);
  if (n_ == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  const auto& tw = inverse_sign ? twiddle_inv_ : twiddle_fwd_;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n_ / len; // twiddle stride
    for (std::size_t base = 0; base < n_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cf32 w = tw[k * step];
        const cf32 u = data[base + k];
        const cf32 t = data[base + k + half] * w;
        data[base + k] = u + t;
        data[base + k + half] = u - t;
      }
    }
  }
}

void Fft::forward(std::span<cf32> data) const { transform(data, false); }

void Fft::inverse(std::span<cf32> data) const {
  transform(data, true);
  const float scale = 1.0f / static_cast<float>(n_);
  for (auto& x : data) x *= scale;
}

void fft_forward(std::span<cf32> data) { Fft(data.size()).forward(data); }
void fft_inverse(std::span<cf32> data) { Fft(data.size()).inverse(data); }

namespace {

std::vector<cf32> spectral_product(std::span<const cf32> a,
                                   std::span<const cf32> b, bool conj_b) {
  ESARP_EXPECTS(a.size() == b.size());
  ESARP_EXPECTS(is_pow2(a.size()));
  const Fft plan(a.size());
  std::vector<cf32> fa(a.begin(), a.end());
  std::vector<cf32> fb(b.begin(), b.end());
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < fa.size(); ++i)
    fa[i] *= conj_b ? std::conj(fb[i]) : fb[i];
  plan.inverse(fa);
  return fa;
}

} // namespace

std::vector<cf32> circular_convolve(std::span<const cf32> a,
                                    std::span<const cf32> b) {
  return spectral_product(a, b, /*conj_b=*/false);
}

std::vector<cf32> circular_correlate(std::span<const cf32> a,
                                     std::span<const cf32> b) {
  return spectral_product(a, b, /*conj_b=*/true);
}

} // namespace esarp::fft
