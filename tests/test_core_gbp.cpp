// Tests for the SPMD GBP baseline on the simulated chip.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "sar/gbp.hpp"
#include "sar/scene.hpp"

namespace esarp::core {
namespace {

sar::RadarParams small_params() { return sar::test_params(32, 101); }

TEST(GbpEpiphany, MatchesHostReferenceWithinTolerance) {
  const auto p = small_params();
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const auto host = sar::gbp(data, p);
  const auto sim = run_gbp_epiphany(data, p, 16);
  ASSERT_EQ(sim.image.rows(), host.image.data.rows());
  // Same per-contribution arithmetic, different accumulation order.
  EXPECT_LT(relative_rmse(sim.image, host.image.data), 1e-5);
}

TEST(GbpEpiphany, WorksOnOneCore) {
  const auto p = sar::test_params(16, 51);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const auto host = sar::gbp(data, p);
  const auto sim = run_gbp_epiphany(data, p, 1);
  EXPECT_LT(relative_rmse(sim.image, host.image.data), 1e-5);
}

TEST(GbpEpiphany, ScalesWithCores) {
  const auto p = sar::test_params(16, 51);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const auto one = run_gbp_epiphany(data, p, 1);
  const auto sixteen = run_gbp_epiphany(data, p, 16);
  EXPECT_GT(static_cast<double>(one.cycles) /
                static_cast<double>(sixteen.cycles),
            6.0);
}

TEST(GbpEpiphany, StreamsWholeDataSetPerOutputRow) {
  // The memory-intensity signature: ext read volume ~= rows * data size.
  const auto p = sar::test_params(16, 51);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  const auto sim = run_gbp_epiphany(data, p, 4);
  const std::uint64_t data_bytes = p.n_pulses * p.n_range * sizeof(cf32);
  EXPECT_GE(sim.perf.ext.read_bytes, p.n_pulses * data_bytes);
}

TEST(GbpEpiphany, FfbpOvertakesGbpAsApertureGrows) {
  // The paper's core motivation: FFBP's O(N M log N) work overtakes GBP's
  // O(N^2 M) as the aperture grows (at 32 pulses they are still on par;
  // by 128 pulses FFBP wins clearly — see bench/crossover_gbp_ffbp).
  FfbpMapOptions fopt;
  fopt.n_cores = 16;
  auto advantage = [&](std::size_t pulses) {
    const auto p = sar::test_params(pulses, 101);
    const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
    const auto g = run_gbp_epiphany(data, p, 16);
    const auto f = run_ffbp_epiphany(data, p, fopt);
    return g.seconds / f.seconds;
  };
  const double at32 = advantage(32);
  const double at128 = advantage(128);
  EXPECT_GT(at128, 1.8);
  EXPECT_GT(at128, at32); // the advantage grows with aperture size
}

TEST(GbpEpiphany, RejectsBadConfig) {
  const auto p = sar::test_params(16, 51);
  const Array2D<cf32> data(16, 51);
  EXPECT_THROW((void)run_gbp_epiphany(data, p, 0), ContractViolation);
  EXPECT_THROW((void)run_gbp_epiphany(data, p, 17), ContractViolation);
}

} // namespace
} // namespace esarp::core
