// Tests for the Range-Doppler (frequency-domain) baseline and the paper's
// time-domain-vs-frequency-domain motivation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "sar/ffbp.hpp"
#include "sar/rda.hpp"
#include "sar/scene.hpp"

namespace esarp::sar {
namespace {

RadarParams params() { return test_params(64, 161); }

Scene centre_target(const RadarParams& p) {
  Scene s;
  s.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  return s;
}

std::pair<std::size_t, std::size_t> find_peak(const Array2D<cf32>& img) {
  std::pair<std::size_t, std::size_t> best{0, 0};
  double mag = -1.0;
  for (std::size_t i = 0; i < img.rows(); ++i)
    for (std::size_t j = 0; j < img.cols(); ++j)
      if (std::abs(img(i, j)) > mag) {
        mag = std::abs(img(i, j));
        best = {i, j};
      }
  return best;
}

TEST(Rda, FocusesCentreTargetAtItsPulseAndRangeBin) {
  const auto p = params();
  const auto data = simulate_compressed(p, centre_target(p));
  const auto res = range_doppler(data, p);
  const auto [pi_, pj] = find_peak(res.image);
  // Target at x = 0 sits between pulses 31 and 32 of 64; range bin 80.
  EXPECT_NEAR(static_cast<double>(pi_), 31.5, 1.5);
  EXPECT_NEAR(static_cast<double>(pj), 80.0, 1.5);
}

TEST(Rda, CoherentGainOverRawData) {
  const auto p = params();
  const auto data = simulate_compressed(p, centre_target(p));
  const auto res = range_doppler(data, p);
  // Azimuth compression integrates the processed sector coherently: the
  // image peak is many times the raw per-pulse peak.
  EXPECT_GT(peak_magnitude(res.image), 8.0 * peak_magnitude(data));
}

TEST(Rda, OffCentreTargetLandsAtItsAzimuth) {
  const auto p = params();
  Scene s;
  s.targets = {{12.0, p.near_range_m + 60.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const auto res = range_doppler(data, p);
  const auto [pi_, pj] = find_peak(res.image);
  // x = 12 m -> pulse index 31.5 + 12 = 43.5.
  EXPECT_NEAR(static_cast<double>(pi_), 43.5, 2.0);
  EXPECT_NEAR(static_cast<double>(pj), 60.0, 1.5);
}

TEST(Rda, RcmcImprovesFocusWhenMigrationExceedsABin) {
  // A long aperture at short range migrates through several range bins;
  // disabling RCMC must lower the peak.
  auto p = test_params(128, 201);
  const auto data = simulate_compressed(p, centre_target(p));
  RdaOptions with;
  RdaOptions without;
  without.rcmc = false;
  const auto a = range_doppler(data, p, with);
  const auto b = range_doppler(data, p, without);
  EXPECT_GT(peak_magnitude(a.image), 1.1 * peak_magnitude(b.image));
}

TEST(Rda, CheaperThanBackProjection) {
  // The paper's claim: the FFT technique "is computationally efficient".
  const auto p = params();
  const auto data = simulate_compressed(p, centre_target(p));
  const auto rda = range_doppler(data, p);
  const auto bp = ffbp(data, p);
  EXPECT_LT(rda.ops.flops(), bp.ops.flops());
}

TEST(Rda, LinearityInInputData) {
  const auto p = test_params(32, 65);
  Scene s1, s2;
  s1.targets = {{-5.0, p.near_range_m + 20.0 * p.range_bin_m, 1.0f}};
  s2.targets = {{5.0, p.near_range_m + 40.0 * p.range_bin_m, 0.7f}};
  const auto d1 = simulate_compressed(p, s1);
  const auto d2 = simulate_compressed(p, s2);
  Array2D<cf32> sum(p.n_pulses, p.n_range);
  for (std::size_t i = 0; i < sum.size(); ++i)
    sum.data()[i] = d1.data()[i] + d2.data()[i];
  const auto i1 = range_doppler(d1, p);
  const auto i2 = range_doppler(d2, p);
  const auto is = range_doppler(sum, p);
  Array2D<cf32> recombined(p.n_pulses, p.n_range);
  for (std::size_t i = 0; i < recombined.size(); ++i)
    recombined.data()[i] = i1.image.data()[i] + i2.image.data()[i];
  EXPECT_LT(relative_rmse(is.image, recombined), 1e-4);
}

TEST(Rda, NonLinearTrackDefocusesRdaButNotFfbp) {
  // THE motivating claim of time-domain processing (paper Section I): a
  // non-linear flight track breaks the frequency-domain assumption. Inject
  // a smooth cross-track error; RDA (which assumes the nominal track)
  // loses far more peak than FFBP does.
  const auto p = params();
  const auto scene = centre_target(p);
  const auto clean = simulate_compressed(p, scene);
  FlightPathError err;
  err.dy.resize(p.n_pulses);
  for (std::size_t i = 0; i < p.n_pulses; ++i)
    err.dy[i] = 0.5 * std::sin(2.0 * kPi * static_cast<double>(i) /
                               static_cast<double>(p.n_pulses));
  const auto bad = simulate_compressed(p, scene, err);

  const double rda_clean = peak_magnitude(range_doppler(clean, p).image);
  const double rda_bad = peak_magnitude(range_doppler(bad, p).image);
  const double ffbp_clean = peak_magnitude(ffbp(clean, p).image.data);
  const double ffbp_bad = peak_magnitude(ffbp(bad, p).image.data);

  const double rda_loss = rda_bad / rda_clean;
  const double ffbp_loss = ffbp_bad / ffbp_clean;
  EXPECT_LT(rda_loss, 0.75);          // RDA visibly defocuses
  EXPECT_GT(ffbp_loss, rda_loss);     // time domain degrades less
}


TEST(Rda, RecordedTrackRescuesBackProjectionButNotRda) {
  // Non-uniform slow-time sampling (speed variation): RDA has no way to
  // use the recorded positions; back-projection's geometry does (paper
  // Section I). FFBP given the recorded track must hold its focus.
  const auto p = params();
  const auto scene = centre_target(p);
  FlightPathError err;
  err.dx.resize(p.n_pulses);
  for (std::size_t i = 0; i < p.n_pulses; ++i)
    err.dx[i] = 12.0 * std::sin(2.0 * kPi * static_cast<double>(i) /
                                static_cast<double>(p.n_pulses));
  const auto clean = simulate_compressed(p, scene);
  const auto bad = simulate_compressed(p, scene, err);

  FfbpOptions cubic;
  cubic.interp = Interp::kCubic; // low-artifact merges expose the defocus
  const double ffbp_clean =
      peak_magnitude(ffbp(clean, p, cubic).image.data);
  const double nominal = peak_magnitude(ffbp(bad, p, cubic).image.data);
  const double recorded =
      peak_magnitude(ffbp(bad, p, cubic, &err).image.data);
  const double rda_clean = peak_magnitude(range_doppler(clean, p).image);
  const double rda_bad = peak_magnitude(range_doppler(bad, p).image);

  EXPECT_LT(nominal, 0.85 * ffbp_clean);   // nominal geometry defocuses
  EXPECT_GT(recorded, 0.9 * ffbp_clean);   // recorded track recovers
  EXPECT_LT(rda_bad, 0.85 * rda_clean);    // RDA cannot recover
}

TEST(Rda, RejectsNonPowerOfTwoPulses) {
  RadarParams p = test_params(32, 65);
  p.n_pulses = 48;
  p.theta_span_rad = 0.1;
  Array2D<cf32> data(48, 65);
  EXPECT_THROW((void)range_doppler(data, p), ContractViolation);
}

} // namespace
} // namespace esarp::sar
