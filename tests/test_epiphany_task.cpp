// Tests for the discrete-event scheduler and the coroutine task machinery.
#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "epiphany/scheduler.hpp"
#include "epiphany/task.hpp"

namespace esarp::ep {
namespace {

Task record_at(Scheduler& s, Cycles t, std::vector<int>& log, int id) {
  co_await DelayUntil{s, t};
  log.push_back(id);
}

TEST(Scheduler, ResumesInTimeOrder) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 30, log, 1);
  Task b = record_at(s, 10, log, 2);
  Task c = record_at(s, 20, log, 3);
  s.schedule_at(0, a.handle());
  s.schedule_at(0, b.handle());
  s.schedule_at(0, c.handle());
  const Cycles end = s.run();
  EXPECT_EQ(end, 30u);
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  EXPECT_TRUE(a.done() && b.done() && c.done());
}

TEST(Scheduler, FifoTieBreakAtEqualTime) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 5, log, 1);
  Task b = record_at(s, 5, log, 2);
  s.schedule_at(0, a.handle());
  s.schedule_at(0, b.handle());
  s.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RejectsSchedulingInThePast) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 50, log, 1);
  s.schedule_at(0, a.handle());
  s.run();
  Task b = record_at(s, 100, log, 2);
  EXPECT_THROW(s.schedule_at(10, b.handle()), ContractViolation);
}

TEST(Scheduler, ResetRequiresIdle) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 5, log, 1);
  s.schedule_at(0, a.handle());
  EXPECT_THROW(s.reset(), ContractViolation);
  s.run();
  s.reset();
  EXPECT_EQ(s.now(), 0u);
}

Task stamp_twice(Scheduler& s, Cycles d1, Cycles d2,
                 std::vector<Cycles>& stamps) {
  co_await DelayFor{s, d1};
  stamps.push_back(s.now());
  co_await DelayFor{s, d2};
  stamps.push_back(s.now());
}

// Watchdog contract: `max_cycles` is an exclusive upper bound on simulated
// time — processing an event at exactly max_cycles throws, one cycle
// earlier does not.
TEST(Scheduler, WatchdogBoundaryIsExclusive) {
  {
    Scheduler s;
    std::vector<Cycles> stamps;
    Task t = stamp_twice(s, 50, 50, stamps); // events at 50 and 100
    s.schedule_at(0, t.handle());
    EXPECT_THROW(s.run(100), ContractViolation);
    EXPECT_EQ(stamps, (std::vector<Cycles>{50})); // boundary event not run
    EXPECT_EQ(s.now(), 100u);
  }
  {
    Scheduler s;
    std::vector<Cycles> stamps;
    Task t = stamp_twice(s, 50, 49, stamps); // events at 50 and 99
    s.schedule_at(0, t.handle());
    EXPECT_EQ(s.run(100), 99u);
    EXPECT_EQ(stamps, (std::vector<Cycles>{50, 99}));
  }
}

// Exhaustive cross-check of the calendar queue against a sorted reference:
// a deterministic pseudo-random workload mixing same-cycle wakeups, ring
// delays, and far-horizon delays must replay in exact (time, seq) order.
TEST(Scheduler, CalendarQueueMatchesReferenceOrder) {
  Scheduler s;
  std::vector<std::pair<Cycles, int>> log;
  std::vector<Task> tasks;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  struct Recorder {
    static Task chain(Scheduler& s, std::vector<std::pair<Cycles, int>>& log,
                      int id, Cycles d1, Cycles d2, Cycles d3) {
      co_await DelayFor{s, d1};
      log.emplace_back(s.now(), id);
      co_await DelayFor{s, d2};
      log.emplace_back(s.now(), id);
      co_await DelayFor{s, d3};
      log.emplace_back(s.now(), id);
    }
  };
  // Delay mix straddles all three queue levels: 0 (same-cycle fast path),
  // < 4096 (near ring), and 100k+ (far heap, exercises migration).
  for (int id = 0; id < 200; ++id) {
    const Cycles d1 = rnd() % 3 == 0 ? 0 : rnd() % 4000;
    const Cycles d2 = rnd() % 3 == 0 ? rnd() % 10 : 100'000 + rnd() % 50'000;
    const Cycles d3 = rnd() % 8192;
    tasks.push_back(Recorder::chain(s, log, id, d1, d2, d3));
    s.schedule_at(0, tasks.back().handle());
  }
  s.run();
  ASSERT_EQ(log.size(), 600u);
  // Time must be monotone; ties must preserve schedule order, which the
  // reference priority_queue guaranteed via the seq tie-break.
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LE(log[i - 1].first, log[i].first) << "at index " << i;
  for (const Task& t : tasks) EXPECT_TRUE(t.done());
  EXPECT_TRUE(s.idle());
}

// The events_processed counter tracks resumes and survives reset.
TEST(Scheduler, CountsProcessedEvents) {
  Scheduler s;
  std::vector<Cycles> stamps;
  Task t = stamp_twice(s, 10, 4200, stamps); // near ring + far heap
  s.schedule_at(0, t.handle());
  EXPECT_EQ(s.events_processed(), 0u);
  s.run();
  EXPECT_EQ(s.events_processed(), 3u); // initial resume + two delays
  s.reset();
  EXPECT_EQ(s.events_processed(), 0u);
}

Task delays_twice(Scheduler& s, std::vector<Cycles>& stamps) {
  co_await DelayFor{s, 10};
  stamps.push_back(s.now());
  co_await DelayFor{s, 15};
  stamps.push_back(s.now());
}

TEST(Task, DelayForAdvancesVirtualTime) {
  Scheduler s;
  std::vector<Cycles> stamps;
  Task t = delays_twice(s, stamps);
  s.schedule_at(0, t.handle());
  s.run();
  EXPECT_EQ(stamps, (std::vector<Cycles>{10, 25}));
}

TaskT<int> child_returning(Scheduler& s, int v) {
  co_await DelayFor{s, 7};
  co_return v;
}

Task parent_awaits(Scheduler& s, std::vector<int>& log) {
  const int a = co_await child_returning(s, 41);
  const int b = co_await child_returning(s, 1);
  log.push_back(a + b);
}

TEST(Task, NestedTasksReturnValuesAndAccumulateTime) {
  Scheduler s;
  std::vector<int> log;
  Task t = parent_awaits(s, log);
  s.schedule_at(0, t.handle());
  const Cycles end = s.run();
  EXPECT_EQ(log, std::vector<int>{42});
  EXPECT_EQ(end, 14u); // two nested 7-cycle children
}

Task thrower(Scheduler& s) {
  co_await DelayFor{s, 1};
  throw std::runtime_error("kernel bug");
}

TEST(Task, ExceptionIsCapturedAndRethrown) {
  Scheduler s;
  Task t = thrower(s);
  s.schedule_at(0, t.handle());
  s.run();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_error(), std::runtime_error);
}

Task rethrows_from_child(Scheduler& s, bool& caught) {
  try {
    co_await thrower(s);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ChildExceptionPropagatesToParent) {
  Scheduler s;
  bool caught = false;
  Task t = rethrows_from_child(s, caught);
  s.schedule_at(0, t.handle());
  s.run();
  EXPECT_TRUE(caught);
}

Task waiter(Scheduler& s, WaitList& wl, std::vector<int>& log, int id) {
  co_await wl.wait();
  log.push_back(id);
  (void)s;
}

Task waker(Scheduler& s, WaitList& wl) {
  co_await DelayFor{s, 100};
  wl.wake_one(s);
  co_await DelayFor{s, 100};
  wl.wake_all(s);
}

TEST(WaitList, WakeOneThenWakeAll) {
  Scheduler s;
  WaitList wl;
  std::vector<int> log;
  Task w1 = waiter(s, wl, log, 1);
  Task w2 = waiter(s, wl, log, 2);
  Task w3 = waiter(s, wl, log, 3);
  Task k = waker(s, wl);
  for (Task* t : {&w1, &w2, &w3, &k}) s.schedule_at(0, t->handle());
  s.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(wl.empty());
}

TEST(Task, MoveTransfersOwnership) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 1, log, 7);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  s.schedule_at(0, b.handle());
  s.run();
  EXPECT_EQ(log, std::vector<int>{7});
}

} // namespace
} // namespace esarp::ep
