// Shared helpers for the benchmark harness (one binary per reproduced
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/array2d.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "sar/params.hpp"
#include "sar/scene.hpp"
#include "telemetry/manifest.hpp"

namespace esarp::bench {

/// Directory that benches drop CSV/PGM artefacts into (created on demand).
inline std::filesystem::path out_dir() {
  const char* env = std::getenv("ESARP_BENCH_OUT");
  std::filesystem::path dir = env ? env : "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// True when the harness should run a reduced-size configuration
/// (ESARP_BENCH_FAST=1). Full paper-size runs are the default.
inline bool fast_mode() {
  const char* env = std::getenv("ESARP_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// The paper's evaluation input: 1024 x 1001 pulse-compressed samples of
/// the six-point-target scene (Fig. 7(a)). In fast mode a 256 x 251
/// geometrically-scaled configuration is used instead.
struct PaperWorkload {
  sar::RadarParams params;
  Array2D<cf32> data;
};

inline PaperWorkload make_paper_workload() {
  PaperWorkload w;
  if (fast_mode()) {
    w.params = sar::test_params(256, 251);
  } else {
    w.params = sar::paper_params();
  }
  std::cerr << "generating " << w.params.n_pulses << "x" << w.params.n_range
            << " six-target raw data...\n";
  w.data = sar::simulate_compressed(w.params, sar::six_target_scene(w.params));
  return w;
}

/// Record the standard workload parameters on a run manifest.
inline void add_workload(telemetry::RunManifest& man,
                         const sar::RadarParams& p) {
  man.add_workload("n_pulses", static_cast<double>(p.n_pulses));
  man.add_workload("n_range", static_cast<double>(p.n_range));
  man.add_workload("fast_mode", fast_mode() ? 1.0 : 0.0);
}

/// Write `man` as `<tool>.manifest.json` in out_dir() and log the path.
/// Every bench calls this once for its headline configuration so
/// tools/esarp_compare can diff runs (see docs/observability.md).
inline std::filesystem::path
write_manifest(const telemetry::RunManifest& man) {
  const std::filesystem::path path =
      out_dir() / (man.tool() + ".manifest.json");
  man.write(path);
  std::cerr << "wrote " << path.string() << "\n";
  return path;
}

/// Format a speedup ratio like the paper's Table I ("4.25").
inline std::string speedup(double ref_time, double time) {
  return Table::num(ref_time / time, 2);
}

inline std::string ms(double seconds) {
  return Table::num(seconds * 1e3, 1);
}

} // namespace esarp::bench
