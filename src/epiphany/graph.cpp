#include "epiphany/graph.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace esarp::ep {

int ProcessNetwork::node(std::string name,
                         std::function<Task(CoreCtx&)> program) {
  ESARP_EXPECTS(!placed_);
  ESARP_EXPECTS(static_cast<int>(nodes_.size()) < machine_.core_count());
  nodes_.push_back({std::move(name), std::move(program), false, {}});
  return static_cast<int>(nodes_.size()) - 1;
}

void ProcessNetwork::connect(int from, int to, GraphChannelBase& ch,
                             double weight) {
  ESARP_EXPECTS(!placed_);
  ESARP_EXPECTS(from >= 0 && from < static_cast<int>(nodes_.size()));
  ESARP_EXPECTS(to >= 0 && to < static_cast<int>(nodes_.size()));
  ESARP_EXPECTS(from != to);
  ESARP_EXPECTS(weight > 0.0);
  for (const auto& e : edges_) ESARP_EXPECTS(e.chan != &ch); // one use each
  edges_.push_back({from, to, &ch, weight});
}

void ProcessNetwork::pin(int node_id, Coord coord) {
  ESARP_EXPECTS(!placed_);
  ESARP_EXPECTS(node_id >= 0 && node_id < static_cast<int>(nodes_.size()));
  ESARP_EXPECTS(coord.row >= 0 && coord.row < machine_.config().rows);
  ESARP_EXPECTS(coord.col >= 0 && coord.col < machine_.config().cols);
  auto& n = nodes_[static_cast<std::size_t>(node_id)];
  n.pinned = true;
  n.pin_coord = coord;
}

const std::vector<Coord>& ProcessNetwork::place() {
  if (placed_) return placement_;
  ESARP_EXPECTS(!nodes_.empty());

  const int rows = machine_.config().rows;
  const int cols = machine_.config().cols;
  std::vector<bool> used(static_cast<std::size_t>(rows) * cols, false);
  auto used_at = [&](Coord c) -> std::vector<bool>::reference {
    return used[static_cast<std::size_t>(c.row) * cols + c.col];
  };
  placement_.assign(nodes_.size(), Coord{-1, -1});

  // Pinned nodes first.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].pinned) continue;
    ESARP_EXPECTS(!used_at(nodes_[i].pin_coord)); // two nodes on one core
    placement_[i] = nodes_[i].pin_coord;
    used_at(nodes_[i].pin_coord) = true;
  }

  // Total adjacency weight per node: heavy communicators are placed early
  // so their neighbourhoods are still free.
  std::vector<double> degree(nodes_.size(), 0.0);
  for (const auto& e : edges_) {
    degree[static_cast<std::size_t>(e.from)] += e.weight;
    degree[static_cast<std::size_t>(e.to)] += e.weight;
  }
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].pinned) order.push_back(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return degree[a] > degree[b];
                   });

  auto cost_at = [&](std::size_t node, Coord c) {
    double cost = 0.0;
    bool any_neighbour = false;
    for (const auto& e : edges_) {
      const std::size_t other = e.from == static_cast<int>(node)
                                    ? static_cast<std::size_t>(e.to)
                                : e.to == static_cast<int>(node)
                                    ? static_cast<std::size_t>(e.from)
                                    : node;
      if (other == node) continue;
      if (placement_[other].row < 0) continue; // not placed yet
      any_neighbour = true;
      cost += e.weight * hop_distance(c, placement_[other]);
    }
    // Unconnected (or first) nodes gravitate to the mesh centre.
    if (!any_neighbour)
      cost = hop_distance(c, {rows / 2, cols / 2});
    return cost;
  };

  for (std::size_t node_idx : order) {
    Coord best{-1, -1};
    double best_cost = std::numeric_limits<double>::max();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const Coord cand{r, c};
        if (used_at(cand)) continue;
        const double cost = cost_at(node_idx, cand);
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
    }
    ESARP_ENSURES(best.row >= 0);
    placement_[node_idx] = best;
    used_at(best) = true;
  }

  placed_ = true;
  return placement_;
}

Cycles ProcessNetwork::run() {
  ESARP_EXPECTS(!ran_);
  place();
  ran_ = true;

  // Bind every connected channel to its consumer's placed coordinate.
  for (const auto& e : edges_) {
    ESARP_EXPECTS(!e.chan->bound()); // a channel has exactly one consumer
    e.chan->bind(machine_.sched(), machine_.noc(),
                 placement_[static_cast<std::size_t>(e.to)]);
  }

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    machine_.launch(machine_.id_of(placement_[i]), nodes_[i].program);
  }
  return machine_.run();
}

double ProcessNetwork::weighted_hops() const {
  ESARP_EXPECTS(placed_);
  double total = 0.0;
  for (const auto& e : edges_)
    total += e.weight *
             hop_distance(placement_[static_cast<std::size_t>(e.from)],
                          placement_[static_cast<std::size_t>(e.to)]);
  return total;
}

std::string ProcessNetwork::describe() const {
  ESARP_EXPECTS(placed_);
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    os << nodes_[i].name << " @ (" << placement_[i].row << ','
       << placement_[i].col << ")\n";
  os << "weighted hop cost: " << weighted_hops() << '\n';
  return os.str();
}

} // namespace esarp::ep
