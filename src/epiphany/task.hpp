// Coroutine task type for simulated core programs.
//
// A core program is a C++20 coroutine returning ep::Task (or ep::TaskT<T>
// for value-returning sub-routines). Tasks are lazy (suspended at start);
// the Machine schedules the top-level task of each core at cycle 0 and
// nested tasks run inline via symmetric transfer, so nesting costs no
// simulated time by itself.
#pragma once

#include <coroutine>
#include <deque>
#include <exception>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "epiphany/scheduler.hpp"

namespace esarp::ep {

template <typename T>
class TaskT;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation; ///< resumed when this task finishes
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

} // namespace detail

/// Value-returning coroutine task. Move-only RAII owner of the frame.
template <typename T = void>
class TaskT {
public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    TaskT get_return_object() {
      return TaskT{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  TaskT() = default;
  TaskT(TaskT&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  TaskT& operator=(TaskT&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  TaskT(const TaskT&) = delete;
  TaskT& operator=(const TaskT&) = delete;
  ~TaskT() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const { return h_ && h_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const { return h_; }

  /// Rethrow a stored kernel exception (after completion).
  void rethrow_if_error() const {
    if (h_ && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

  /// Awaiting a task starts it and resumes the awaiter when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<>
      await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child; // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = child.promise();
        if (p.error) std::rethrow_exception(p.error);
        ESARP_ENSURES(p.value.has_value());
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

private:
  explicit TaskT(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

/// void specialisation.
template <>
class TaskT<void> {
public:
  struct promise_type : detail::PromiseBase {
    TaskT get_return_object() {
      return TaskT{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  TaskT() = default;
  TaskT(TaskT&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  TaskT& operator=(TaskT&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  TaskT(const TaskT&) = delete;
  TaskT& operator=(const TaskT&) = delete;
  ~TaskT() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const { return h_ && h_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const { return h_; }

  void rethrow_if_error() const {
    if (h_ && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<>
      await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() {
        auto& p = child.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    return Awaiter{h_};
  }

private:
  explicit TaskT(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

using Task = TaskT<void>;

/// co_await DelayUntil{sched, t}: suspend until absolute cycle t.
///
/// Both delay awaitables consult Scheduler::try_advance_inline first: when
/// the awaiting coroutine is the only work runnable before the wake time,
/// the clock advances inline and the coroutine continues without a
/// suspend/resume round trip — the engine's batched-quantum fast path
/// (docs/performance.md), bit-identical to per-event stepping.
struct DelayUntil {
  Scheduler& sched;
  Cycles wake_at;
  bool await_ready() const {
    return wake_at <= sched.now() ||
           sched.try_advance_inline(wake_at - sched.now());
  }
  void await_suspend(std::coroutine_handle<> h) const {
    sched.schedule_at(wake_at, h);
  }
  void await_resume() const {}
};

/// co_await DelayFor{sched, dt}: suspend for dt cycles.
struct DelayFor {
  Scheduler& sched;
  Cycles dt;
  bool await_ready() const { return dt == 0 || sched.try_advance_inline(dt); }
  void await_suspend(std::coroutine_handle<> h) const {
    sched.schedule_at(sched.now() + dt, h);
  }
  void await_resume() const {}
};

/// A list of suspended coroutines waiting on a condition (channel space/data,
/// barrier release). Waking schedules them at the current cycle.
class WaitList {
public:
  /// co_await list.wait(): park until another task calls wake_one/wake_all.
  auto wait() {
    struct Awaiter {
      WaitList& list;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        list.waiting_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

  void wake_one(Scheduler& sched) {
    if (waiting_.empty()) return;
    sched.schedule_now(waiting_.front());
    waiting_.pop_front();
  }

  void wake_all(Scheduler& sched) {
    while (!waiting_.empty()) wake_one(sched);
  }

  [[nodiscard]] std::size_t size() const { return waiting_.size(); }
  [[nodiscard]] bool empty() const { return waiting_.empty(); }

private:
  std::deque<std::coroutine_handle<>> waiting_;
};

} // namespace esarp::ep
