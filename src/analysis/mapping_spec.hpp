// Declarative description of a mapping: what each core allocates, how the
// cores synchronise, and how much work/traffic each phase moves — enough
// for the static analyzer (analyzer.hpp) to prove legality and for the
// analytic cost model (cost_model.hpp) to predict cycles and energy
// *without running the scheduler*.
//
// The shipped mappings (FFBP SPMD, GBP SPMD, the 13-core autofocus MPMD
// pipeline, the sequential baselines) export themselves as MappingSpecs
// via src/core/mapping_desc.hpp; the mapping-search work (ROADMAP item 2)
// generates candidate specs directly and loops the analyzer over them.
//
// Everything here is plain data on purpose: a spec is cheap to build, cheap
// to copy, and carries no reference to Machine, Scheduler or host state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/opcounts.hpp"
#include "epiphany/config.hpp"

namespace esarp::analysis {

using ep::ChipConfig;
using ep::Coord;
using ep::Cycles;

/// One local-store allocation, in program order. `bank < 0` means a plain
/// bump allocation at the cursor; `bank >= 0` mirrors
/// LocalMemory::alloc_in_bank and must respect the claim-in-order rule.
struct LocalAlloc {
  std::string name;   ///< what the buffer holds (diagnostics only)
  int bank = -1;      ///< -1: cursor; else bank index, claimed in order
  std::size_t bytes = 0;
  std::string span;   ///< tracer span / source location for diagnostics
};

/// A barrier declaration shared by several cores.
struct BarrierDecl {
  std::string name;
  int parties = 0;              ///< arity the barrier was constructed with
  std::vector<int> members;     ///< core ids expected to arrive
};

/// A typed point-to-point channel (epiphany/channel.hpp).
struct ChannelDecl {
  std::string name;
  int producer = -1;            ///< core id of the sending end
  int consumer = -1;            ///< core id owning the receive queue
  std::size_t capacity = 0;     ///< backpressure bound, in messages
  std::size_t msg_bytes = 0;    ///< sizeof the message type
};

/// One step of a core's synchronisation trace, in program order. The
/// deadlock checker executes these traces abstractly; consecutive
/// identical steps are run-length compressed via `count`.
struct SyncOp {
  enum class Kind { kBarrier, kSend, kRecv };
  Kind kind = Kind::kBarrier;
  std::size_t construct = 0;    ///< index into barriers/channels
  std::uint64_t count = 1;      ///< how many times this step repeats
  std::string span;             ///< span active when the op executes
};

/// A batch of identical CoreCtx::compute calls. Kept as (ops, count)
/// rather than summed so the model can reproduce CostModel::cycles'
/// per-call rounding exactly.
struct ComputeBlock {
  OpCounts ops;
  std::uint64_t count = 1;
};

/// `count` DMA bursts of `segments` equal segments of `seg_bytes` each
/// (CoreCtx::dma_read_ext_burst followed by wait()).
struct DmaRead {
  std::uint64_t count = 0;
  std::size_t segments = 1;
  std::size_t seg_bytes = 0;
  /// Double-buffered prefetch: the wait() lands after the overlapping
  /// compute, so the burst costs port occupancy but (mostly) no core time.
  bool overlapped = false;
};

/// `count` blocking gathers of `transactions` random reads of
/// `bytes_each` (CoreCtx::read_ext / read_ext_gather).
struct BlockingRead {
  std::uint64_t count = 0;
  std::uint64_t transactions = 1;
  std::size_t bytes_each = 0;
};

/// `count` posted off-chip writes of `bytes` (CoreCtx::write_ext).
struct PostedWrite {
  std::uint64_t count = 0;
  std::size_t bytes = 0;
};

/// `messages` sends into / receives from channel index `channel`.
struct ChannelTraffic {
  std::size_t channel = 0;
  std::uint64_t messages = 0;
};

/// One phase of a core's program: the work between two barrier crossings
/// (SPMD) or a stage's whole streaming loop (MPMD). Phases with the same
/// name across cores are assumed to run concurrently.
struct CorePhase {
  std::string name;
  std::vector<ComputeBlock> compute;
  std::vector<DmaRead> dma_reads;
  std::vector<BlockingRead> blocking_reads;
  std::vector<PostedWrite> writes;
  std::vector<ChannelTraffic> sends;
  std::vector<ChannelTraffic> recvs;
  /// Barrier crossed when the phase ends (-1: none). Used by the cost
  /// model to charge barrier overhead; legality uses the sync trace.
  int barrier = -1;
};

/// Everything the analyzer needs to know about one core.
struct CoreSpec {
  int id = -1;                  ///< flat core id (row * cols + col)
  std::string role;             ///< "merge", "range", "beam", "corr", ...
  std::vector<LocalAlloc> allocs;
  std::vector<SyncOp> sync;     ///< ordered synchronisation trace
  std::vector<CorePhase> phases;
};

/// A complete mapping over one chip configuration.
struct MappingSpec {
  std::string name;
  std::string family;           ///< "spmd" or "mpmd"
  ChipConfig cfg;
  std::vector<CoreSpec> cores;
  std::vector<BarrierDecl> barriers;
  std::vector<ChannelDecl> channels;
};

} // namespace esarp::analysis
