// Tests for the Global Back-Projection reference imager.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "sar/gbp.hpp"
#include "sar/scene.hpp"

namespace esarp::sar {
namespace {

/// Find the (theta_bin, range_bin) of the image peak.
std::pair<std::size_t, std::size_t> find_peak(const Array2D<cf32>& img) {
  std::pair<std::size_t, std::size_t> best{0, 0};
  double mag = -1.0;
  for (std::size_t i = 0; i < img.rows(); ++i)
    for (std::size_t j = 0; j < img.cols(); ++j)
      if (std::abs(img(i, j)) > mag) {
        mag = std::abs(img(i, j));
        best = {i, j};
      }
  return best;
}

/// Expected grid position of a target in the final polar image.
std::pair<double, double> expected_bins(const RadarParams& p,
                                        const PointTarget& t) {
  const double r = std::hypot(t.x, t.y);
  const double theta = std::atan2(t.y, t.x);
  const PolarGrid grid(p, p.n_pulses);
  return {(theta - grid.theta_start) / grid.dtheta - 0.5,
          (r - grid.r0) / grid.dr};
}

TEST(Gbp, FocusesSingleTargetAtExpectedCell) {
  RadarParams p = test_params(64, 201);
  Scene s;
  s.targets = {{3.0, p.near_range_m + 120.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const GbpResult res = gbp(data, p);

  const auto [pi_, pj] = find_peak(res.image.data);
  const auto [ei, ej] = expected_bins(p, s.targets[0]);
  EXPECT_NEAR(static_cast<double>(pi_), ei, 2.0);
  EXPECT_NEAR(static_cast<double>(pj), ej, 2.0);
}

TEST(Gbp, CoherentGainScalesWithAperture) {
  // The peak of a focused target grows ~linearly with the number of
  // integrated pulses (coherent integration).
  Scene s;
  RadarParams small = test_params(16, 101);
  s.targets = {{0.0, small.near_range_m + 50.0 * small.range_bin_m, 1.0f}};
  RadarParams large = test_params(64, 101);

  const double peak_small =
      peak_magnitude(gbp(simulate_compressed(small, s), small).image.data);
  const double peak_large =
      peak_magnitude(gbp(simulate_compressed(large, s), large).image.data);
  EXPECT_GT(peak_large / peak_small, 2.5); // 4x pulses -> ~4x gain
}

TEST(Gbp, ImageIsSharpRelativeToRawData) {
  RadarParams p = test_params(64, 201);
  const Scene s = six_target_scene(p);
  const auto data = simulate_compressed(p, s);
  const GbpResult res = gbp(data, p);
  // Back-projection concentrates energy: entropy must drop markedly.
  EXPECT_LT(image_entropy(res.image.data), image_entropy(data) - 1.0);
}

TEST(Gbp, DecimationComputesOnlySampledRows) {
  RadarParams p = test_params(16, 51);
  Scene s;
  s.targets = {{0.0, p.near_range_m + 25.0 * p.range_bin_m, 1.0f}};
  const auto data = simulate_compressed(p, s);
  const GbpResult full = gbp(data, p, 1);
  const GbpResult dec = gbp(data, p, 4);
  EXPECT_LT(dec.ops.flops(), full.ops.flops() / 3);
  // Decimated rows match the full computation where computed.
  for (std::size_t i = 0; i < p.n_pulses; i += 4)
    for (std::size_t j = 0; j < p.n_range; ++j)
      EXPECT_EQ(dec.image.data(i, j), full.image.data(i, j));
  // Skipped rows are zero.
  EXPECT_EQ(std::abs(dec.image.data(1, 25)), 0.0f);
}

TEST(Gbp, OpCountsScaleWithWork) {
  RadarParams p = test_params(16, 51);
  Scene s;
  const auto data = simulate_compressed(p, s); // empty scene: zero data
  const GbpResult res = gbp(data, p);
  // Every (pixel, pulse) combination inside the swath contributes.
  EXPECT_GT(res.ops.flops(), 0u);
  EXPECT_EQ(res.host_work.ops.fadd, res.ops.fadd);
  EXPECT_GT(res.host_work.stream_read_bytes, 0u);
}

TEST(Gbp, RejectsMismatchedData) {
  RadarParams p = test_params(16, 51);
  Array2D<cf32> wrong(8, 51);
  EXPECT_THROW((void)gbp(wrong, p), ContractViolation);
}

} // namespace
} // namespace esarp::sar
