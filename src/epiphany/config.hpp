// Chip configuration for the simulated Epiphany manycore.
//
// Default values model the Adapteva Epiphany E16G3 as described in the
// paper's Section III and the E16G3 datasheet (rev 1.0, 2010):
//   - 4x4 mesh of dual-issue RISC cores, 1 GHz max clock
//   - 32 KB local memory per core in four 8 KB banks (512 KB chip total)
//   - eMesh NoC: three separate meshes (on-chip write / off-chip write /
//     read), 4 duplex links per node, XY routing, 1 cycle per hop,
//     8 bytes per cycle per link => 64 GB/s bisection, 512 GB/s aggregate
//   - off-chip eLink: 8 GB/s total
//   - per-core DMA engine: one double word (8 B) per clock cycle
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/plan.hpp"

namespace esarp::ep {

/// Simulated time in core clock cycles.
using Cycles = std::uint64_t;

/// Mesh coordinate (row, col), row 0 at the "north" edge.
struct Coord {
  int row = 0;
  int col = 0;
  friend constexpr bool operator==(Coord, Coord) = default;
};

/// Manhattan distance (number of mesh hops, excluding injection/ejection).
constexpr int hop_distance(Coord a, Coord b) {
  const int dr = a.row > b.row ? a.row - b.row : b.row - a.row;
  const int dc = a.col > b.col ? a.col - b.col : b.col - a.col;
  return dr + dc;
}

/// Configuration of the esarp::check hazard sanitizer (docs/static-analysis.md).
/// Kept here (rather than in src/check/) so ChipConfig can embed it without a
/// dependency cycle; the machinery itself lives in check/check.hpp. The
/// ESARP_CHECK / ESARP_CHECK_SUPPRESS / ESARP_CHECK_JSON / ESARP_CHECK_ABORT
/// environment variables override these fields at Machine construction, so a
/// whole test or bench run can be switched to checked mode without code
/// changes. Checking never alters simulated time: cycle counts, images and
/// run manifests are bit-identical with and without it.
struct CheckOptions {
  bool enabled = false;         ///< hook the sanitizer into the simulation
  bool abort_on_hazard = true;  ///< throw check::CheckFailure at end of run
                                ///< when unsuppressed diagnostics exist
  std::string suppressions;     ///< path to a suppression file ("" = none)
  std::string json_out;         ///< write a JSON report here ("" = console only)
  std::size_t max_diagnostics = 100; ///< cap on recorded diagnostics
};

/// Configuration of the power-telemetry sampler (docs/observability.md).
/// When enabled the Machine attaches an ep::PowerSampler that accumulates
/// per-core activity (busy cycles, issued ops, NoC byte-hops, eLink bytes)
/// into fixed windows of `epoch_cycles` simulated cycles, from which
/// power.hpp derives a time-resolved power trace and span-level energy
/// attribution. Sampling is pure host-side accounting: it never touches the
/// scheduler, so cycle counts, images and manifests are bit-identical with
/// and without it (enforced by tests/test_power.cpp). The ESARP_POWER and
/// ESARP_POWER_EPOCH environment variables override these fields at Machine
/// construction (power_options_with_env).
struct PowerOptions {
  bool enabled = false;      ///< attach the sampler to the simulation
  Cycles epoch_cycles = 8192; ///< initial sampling window (simulated cycles)
  /// Cap on the number of epochs kept per core. When a run outgrows the
  /// cap the sampler doubles epoch_cycles and folds neighbouring bins
  /// (exact sums, so conservation is unaffected) — long runs cost bounded
  /// memory at proportionally coarser time resolution.
  std::size_t max_epochs = 4096;
};

struct ChipConfig {
  int rows = 4;
  int cols = 4;
  double clock_hz = 1.0e9; ///< paper evaluates at the 1 GHz spec maximum

  // Local memory (per core).
  std::size_t local_mem_bytes = 32 * 1024;
  int local_banks = 4; ///< 4 x 8 KB banks; paper uses the 2 upper for data

  // eMesh NoC.
  Cycles hop_latency = 1;            ///< single-cycle routing per node
  std::size_t link_bytes_per_cycle = 8; ///< 64-bit links @ core clock

  // Off-chip eLink + SDRAM.
  std::size_t elink_bytes_per_cycle = 8; ///< 8 GB/s at 1 GHz
  Cycles ext_read_latency = 20;  ///< round-trip core->eLink->SDRAM->core for a
                                 ///< blocking read transaction (stalls core);
                                 ///< calibrated against the paper's 0.36x
                                 ///< sequential-FFBP slowdown (EXPERIMENTS.md)
  Cycles ext_write_issue = 1;    ///< posted write: single-cycle issue, the
                                 ///< paper's "write without stalling"
  Cycles ext_random_occupancy = 16; ///< SDRAM occupancy of one random-access
                                    ///< (closed-page) transaction: scattered
                                    ///< 8-byte reads from many cores contend
                                    ///< for this, unlike sequential DMA
                                    ///< bursts which stream at eLink rate
  Cycles dma_setup_cycles = 20;  ///< DMA descriptor programming overhead

  // Simulation engine (host-side) knobs — no effect on simulated cycles.
  bool burst_transfers = true; ///< issue multi-segment DMA prefetches as one
                               ///< analytically-costed burst job (identical
                               ///< Cycles totals, fewer scheduler events);
                               ///< false = legacy per-chunk jobs + waits
  bool batch_quanta = true;    ///< batched-quantum fast path: pure delays
                               ///< advance the clock inline when no other
                               ///< event can run first (bit-identical, see
                               ///< Scheduler::try_advance_inline and
                               ///< docs/performance.md); ESARP_BATCH=0/1
                               ///< overrides at Machine construction

  // Hazard sanitizer (host-side checking layer; no effect on simulated
  // cycles — see CheckOptions above and docs/static-analysis.md).
  CheckOptions check;

  // Fault-injection campaign (docs/fault-injection.md). The default plan
  // is disabled; the Machine builds an injector only when faults.enabled(),
  // so an untouched config simulates exactly as before.
  fault::FaultPlan faults;

  // Power telemetry sampler (host-side accounting layer; no effect on
  // simulated cycles — see PowerOptions above and docs/observability.md).
  PowerOptions power;

  // Derived helpers.
  [[nodiscard]] int core_count() const { return rows * cols; }
  [[nodiscard]] double seconds(Cycles c) const {
    return static_cast<double>(c) / clock_hz;
  }
  [[nodiscard]] Cycles cycles_for_bytes_on_link(std::size_t bytes) const {
    return (bytes + link_bytes_per_cycle - 1) / link_bytes_per_cycle;
  }
  [[nodiscard]] Cycles cycles_for_bytes_on_elink(std::size_t bytes) const {
    return (bytes + elink_bytes_per_cycle - 1) / elink_bytes_per_cycle;
  }
};

/// Energy parameters for the Epiphany chip (65 nm). Calibrated so a fully
/// busy 16-core chip at 1 GHz dissipates ~2 W, the figure the paper takes
/// from the E16G3 datasheet, with fine-grained clock gating making idle
/// cores nearly free (Microprocessor Report, "More Flops, Less Watts").
struct EnergyParams {
  double core_active_pj_per_cycle = 55.0; ///< pipeline+clock tree when busy
  double core_idle_pj_per_cycle = 1.0;    ///< clock-gated core (<2% of active)
  double flop_pj = 18.0;                  ///< per FP issue (FMA counts once)
  double ialu_pj = 6.0;
  double ldst_local_pj = 10.0; ///< per 32-bit local-memory access
  double noc_pj_per_byte_hop = 1.2;
  double elink_pj_per_byte = 32.0; ///< off-chip I/O incl. SDRAM access share
  double chip_static_w = 0.10;     ///< leakage + PLL + always-on fabric
};

} // namespace esarp::ep
