// Window (taper) functions for sidelobe control.
//
// Pulse compression with a rectangular replica leaves -13 dB range
// sidelobes that imaging radars usually suppress by tapering the matched
// filter; the same windows apply as azimuth weighting. Standard cosine
// windows plus the SAR-typical Taylor window are provided.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace esarp::fft {

enum class WindowKind {
  kRectangular, ///< no taper
  kHann,        ///< -31 dB first sidelobe
  kHamming,     ///< -41 dB first sidelobe
  kBlackman,    ///< -58 dB first sidelobe
  kTaylor,      ///< nbar=4, -35 dB design (the SAR workhorse)
};

/// Window coefficients of length n (symmetric; w[0] == w[n-1]).
[[nodiscard]] std::vector<float> make_window(WindowKind kind, std::size_t n);

/// Multiply a complex signal by the window in place.
void apply_window(std::span<cf32> signal, std::span<const float> window);

/// Coherent gain: mean of the coefficients (1.0 for rectangular).
[[nodiscard]] double coherent_gain(std::span<const float> window);

/// Equivalent noise bandwidth in bins (1.0 for rectangular; larger for
/// tapered windows — the mainlobe-widening cost of sidelobe suppression).
[[nodiscard]] double noise_bandwidth_bins(std::span<const float> window);

} // namespace esarp::fft
