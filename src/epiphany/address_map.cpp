#include "epiphany/address_map.hpp"

#include "common/assert.hpp"

namespace esarp::ep {

AddressMap::AddressMap(const ChipConfig& cfg, int first_row, int first_col,
                       Addr ext_base, Addr ext_size)
    : cfg_(cfg), first_row_(first_row), first_col_(first_col),
      ext_base_(ext_base), ext_size_(ext_size) {
  ESARP_EXPECTS(first_row >= 1 && first_row + cfg.rows <= 64);
  ESARP_EXPECTS(first_col >= 1 && first_col + cfg.cols <= 64);
  bases_.reserve(static_cast<std::size_t>(cfg.rows) * cfg.cols);
  for (int r = 0; r < cfg.rows; ++r)
    for (int c = 0; c < cfg.cols; ++c) {
      const Addr id = (static_cast<Addr>(first_row_ + r) << 6) |
                      static_cast<Addr>(first_col_ + c);
      bases_.push_back(id << kApertureBits);
    }
  const Addr first_core = core_base({0, 0});
  const Addr last_core_end =
      core_base({cfg.rows - 1, cfg.cols - 1}) + (Addr{1} << kApertureBits);
  if (ext_base_ == 0) {
    // Auto placement: the Parallella window when free, else above the
    // core apertures.
    constexpr Addr kParallellaWindow = 0x8E00'0000u;
    const bool collides = !(kParallellaWindow + ext_size_ <= first_core ||
                            kParallellaWindow >= last_core_end);
    ext_base_ = collides ? last_core_end : kParallellaWindow;
  }
  // The SDRAM window must not overlap any core aperture.
  ESARP_EXPECTS(ext_base_ + ext_size_ <= first_core ||
                ext_base_ >= last_core_end);
}

Addr AddressMap::core_base(Coord c) const {
  ESARP_EXPECTS(c.row >= 0 && c.row < cfg_.rows);
  ESARP_EXPECTS(c.col >= 0 && c.col < cfg_.cols);
  return bases_[static_cast<std::size_t>(c.row) * cfg_.cols +
                static_cast<std::size_t>(c.col)];
}

Addr AddressMap::encode_core(Coord c, Addr offset) const {
  ESARP_EXPECTS(offset < cfg_.local_mem_bytes);
  return core_base(c) + offset;
}

Addr AddressMap::encode_external(Addr offset) const {
  ESARP_EXPECTS(offset < ext_size_);
  return ext_base_ + offset;
}

Decoded AddressMap::decode(Addr addr) const {
  if (addr < (Addr{1} << kApertureBits))
    return {Region::kLocalAlias, {}, addr};
  if (addr >= ext_base_ && addr - ext_base_ < ext_size_)
    return {Region::kExternal, {}, addr - ext_base_};
  const Addr id = addr >> kApertureBits;
  const int row = static_cast<int>(id >> 6) - first_row_;
  const int col = static_cast<int>(id & 0x3F) - first_col_;
  if (row >= 0 && row < cfg_.rows && col >= 0 && col < cfg_.cols)
    return {Region::kCore, {row, col},
            addr & ((Addr{1} << kApertureBits) - 1)};
  return {Region::kInvalid, {}, 0};
}

bool AddressMap::is_mapped(Addr addr) const {
  const Decoded d = decode(addr);
  switch (d.region) {
    case Region::kLocalAlias:
    case Region::kCore:
      return d.offset < cfg_.local_mem_bytes;
    case Region::kExternal:
      return true;
    case Region::kInvalid:
      return false;
  }
  return false;
}

} // namespace esarp::ep
