// Reproduces Table I (FFBP rows): execution time, speedup and estimated
// power for (1) the sequential Intel i7-M620 reference, (2) sequential
// FFBP on one Epiphany core, (3) 16-core SPMD FFBP on Epiphany.
//
// The Intel time comes from the analytic Westmere model driven by the
// counted work of the reference implementation; the Epiphany times come
// from the discrete-event chip simulation. The native wall-clock time of
// the reference run on this machine is shown for context only.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/ffbp_epiphany.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine_metrics.hpp"
#include "hostmodel/host_model.hpp"
#include "sar/ffbp.hpp"

static int bench_body() {
  using namespace esarp;
  const auto w = bench::make_paper_workload();

  // --- Sequential reference (Intel i7-M620 @ 2.67 GHz model). ---
  std::cerr << "running host-reference FFBP...\n";
  WallTimer timer;
  const auto host_res = sar::ffbp(w.data, w.params);
  const double native_s = timer.elapsed_s();
  const host::HostModel intel;
  const double intel_s = intel.seconds(host_res.host_work);

  // --- Sequential on one simulated Epiphany core @ 1 GHz. ---
  std::cerr << "simulating sequential Epiphany FFBP...\n";
  const auto seq = core::run_ffbp_sequential_epiphany(w.data, w.params);

  // --- Parallel SPMD on 16 simulated cores. ---
  std::cerr << "simulating 16-core SPMD FFBP...\n";
  core::FfbpMapOptions opt;
  opt.n_cores = 16;
  const auto par =
      core::run_ffbp_epiphany(w.data, w.params, opt, bench::power_chip());

  Table t("Table I (FFBP): resources, performance, estimated power");
  t.header({"Implementation", "Cores", "Time (ms)", "Speedup",
            "Power (W)", "Paper time", "Paper speedup"});
  t.row({"Sequential on Intel i7 @ 2.67 GHz", "1", bench::ms(intel_s),
         "1.00", "17.5", "1295 ms", "1"});
  t.row({"Sequential on Epiphany @ 1 GHz", "1", bench::ms(seq.seconds),
         bench::speedup(intel_s, seq.seconds),
         Table::num(seq.energy.avg_watts, 2), "3582 ms", "0.36"});
  t.row({"Parallel on Epiphany @ 1 GHz", "16", bench::ms(par.seconds),
         bench::speedup(intel_s, par.seconds),
         Table::num(par.energy.avg_watts, 2), "305 ms", "4.25"});
  t.note("image " + std::to_string(w.params.n_pulses) + "x" +
         std::to_string(w.params.n_range) + ", merge base 2, " +
         std::to_string(w.params.merge_levels()) +
         " iterations, nearest-neighbour interpolation");
  t.note("parallel vs sequential-Epiphany: " +
         Table::num(seq.seconds / par.seconds, 1) + "x (paper: 11.7x)");
  t.note("native host wall time of the reference run: " +
         format_seconds(native_s) + " (informational)");
  t.print(std::cout);

  std::cout << "\n-- simulated parallel run details --\n"
            << par.perf.summary() << par.energy.summary() << "\n";
  std::cout << par.power.profile.table();

  CsvWriter csv(bench::out_dir() / "table1_ffbp.csv",
                {"impl", "cores", "time_ms", "speedup", "power_w"});
  csv.row({"intel_seq", "1", Table::num(intel_s * 1e3, 3), "1.0", "17.5"});
  csv.row({"epiphany_seq", "1", Table::num(seq.seconds * 1e3, 3),
           Table::num(intel_s / seq.seconds, 4),
           Table::num(seq.energy.avg_watts, 3)});
  csv.row({"epiphany_par", "16", Table::num(par.seconds * 1e3, 3),
           Table::num(intel_s / par.seconds, 4),
           Table::num(par.energy.avg_watts, 3)});

  // Machine-readable evidence for the headline (16-core SPMD) run.
  telemetry::RunManifest man("table1_ffbp");
  ep::fill_manifest(man, par.perf, par.energy);
  bench::add_workload(man, w.params);
  man.add_workload("n_cores", 16.0);
  man.add_result("intel_seconds", intel_s);
  man.add_result("seq_epiphany_seconds", seq.seconds);
  man.add_result("speedup_vs_intel", intel_s / par.seconds);
  bench::add_power_results(
      man, par.power,
      static_cast<double>(w.params.n_pulses * w.params.n_range));
  man.set_metrics(&par.metrics);
  bench::write_manifest(man);
  return 0;
}

int main() { return esarp::bench::guarded_main("table1_ffbp", bench_body); }
