// Synthetic arrival traces for the fleet runtime (docs/serving.md).
//
// A trace is the replayable input of a serve campaign: a seeded list of
// JobSpecs sorted by arrival time. Two generators cover the load shapes
// latency studies care about — a Poisson process (memoryless steady load)
// and a bursty process (Poisson bursts with geometric sizes, arrivals
// inside a burst landing at the same instant so the queue actually
// builds). Traces round-trip through JSON ("esarp-arrival-trace/1") so CI
// can pin one file and replay it forever.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "serve/job.hpp"

namespace esarp::serve {

/// Knobs for the trace generators. Every job in a generated trace shares
/// the scene/algorithm/deadline template; heterogeneous traces can be
/// edited or synthesized as JSON.
struct TraceParams {
  std::size_t n_jobs = 16;
  double rate_hz = 400.0; ///< mean arrival rate (jobs per second)
  bool bursty = false;    ///< burst arrivals instead of a plain Poisson
  double burst_mean = 4.0; ///< mean jobs per burst (bursty only, >= 1)
  std::uint64_t seed = 1;
  std::size_t n_pulses = 64;
  std::size_t n_range = 101;
  Algo algo = Algo::kFfbp;
  int n_cores = 16;
  double deadline_s = 0.05;
};

struct ArrivalTrace {
  std::uint64_t seed = 0;
  std::vector<JobSpec> jobs; ///< sorted by (arrival_s, id); ids are dense
};

/// Generate a trace from `p` (Poisson or bursty per p.bursty). Pure
/// function of the parameters — same params, same trace, byte for byte.
[[nodiscard]] ArrivalTrace make_trace(const TraceParams& p);

/// Write the trace as "esarp-arrival-trace/1" JSON (atomic tmp + rename).
void save_trace(const std::filesystem::path& path, const ArrivalTrace& t);

/// Load a trace written by save_trace (or hand-authored to the schema).
/// Throws ContractViolation on schema/shape errors.
[[nodiscard]] ArrivalTrace load_trace(const std::filesystem::path& path);

} // namespace esarp::serve
