#include "serve/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/cost_model.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "core/mapping_desc.hpp"
#include "epiphany/scheduler.hpp"
#include "fault/injector.hpp"
#include "host/sweep_runner.hpp"
#include "sar/params.hpp"
#include "sar/scene.hpp"

namespace esarp::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
}

/// Deterministic per-attempt seed: a SplitMix64 finalizer over the
/// campaign seed and the attempt coordinates, so reordering host threads
/// can never change any roll (same contract as fault/injector.cpp).
[[nodiscard]] std::uint64_t attempt_seed(std::uint64_t campaign_seed,
                                         int job_id, int attempt, int chip) {
  SplitMix64 sm(campaign_seed ^
                (static_cast<std::uint64_t>(static_cast<unsigned>(job_id))
                 << 40) ^
                (static_cast<std::uint64_t>(static_cast<unsigned>(attempt))
                 << 20) ^
                static_cast<std::uint64_t>(static_cast<unsigned>(chip)));
  return sm.next();
}

[[nodiscard]] double u01(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Aperture actually formed at `degrade` halvings. The floor keeps the
/// factorization meaningful for the job's core count (at least two pulses
/// per core, never below 16): degrading past the floor re-rolls the
/// attempt seed but not the image size.
[[nodiscard]] std::size_t degraded_pulses(std::size_t pulses, int degrade,
                                          int cores) {
  const std::size_t floor_p =
      std::max<std::size_t>(16, 2 * static_cast<std::size_t>(cores));
  std::size_t p = pulses >> static_cast<unsigned>(degrade);
  return std::max(p, std::min(floor_p, pulses));
}

enum class AttemptStatus : std::uint8_t {
  kOk,          ///< image delivered and checksum-verified
  kChipKilled,  ///< whole-chip fail-stop fired mid-job
  kTimedOut,    ///< watchdog expired (timeout_factor x clean makespan)
  kCorrupt,     ///< image delivered but failed verification
  kUnrecovered, ///< on-chip recovery exhausted (fault::FaultUnrecovered)
};

/// Schedule-hash status codes for events with no AttemptStatus of their
/// own. Distinct from every AttemptStatus value; both only ever mix into
/// the hash when hedging / shedding is enabled, so campaigns with the
/// overload policies off reproduce PR 8 hashes bit for bit.
constexpr std::uint64_t kHashCancelled = 5; ///< attempt cut short by a winner
constexpr std::uint64_t kHashShed = 6;      ///< job retired by admission control

/// One resolved dispatch: everything exec_attempt needs, with the scene
/// data and fault-free reference memoized on the scheduler thread so the
/// worker pool only reads shared state.
struct Attempt {
  int job_id = 0;
  int attempt = 0; ///< 0-based attempt index across degrade levels
  int chip = 0;
  bool is_hedge = false; ///< duplicate attempt launched near the deadline
  double est_service_s = 0.0; ///< memoized clean makespan (wait estimator)
  const Array2D<cf32>* data = nullptr;
  sar::RadarParams params;
  Algo algo = Algo::kFfbp;
  int cores = 16;
  fault::FaultPlan plan;
  std::uint64_t clean_cycles = 0;
  double clean_energy_j = 0.0;
  std::uint64_t clean_checksum = 0;
  std::uint64_t timeout_cycles = 0;
};

struct AttemptOutcome {
  AttemptStatus status = AttemptStatus::kOk;
  std::uint64_t cycles = 0; ///< simulated cycles the chip was occupied
  double energy_j = 0.0;    ///< only meaningful for kOk
  std::uint64_t checksum = 0;
  fault::FaultSummary faults;
};

/// Run one whole job on one simulated chip — the per-job analogue of
/// resilient.hpp's verified transfer: execute, bound with a watchdog,
/// checksum the delivered image against the fault-free reference.
[[nodiscard]] AttemptOutcome exec_attempt(const Attempt& a,
                                          const ep::ChipConfig& base) {
  AttemptOutcome out;
  if (!a.plan.enabled()) {
    // Fault-free attempts are bit-identical to the memoized reference run
    // (the simulator is deterministic), so serving a clean job costs no
    // host time beyond the first job of its shape.
    out.cycles = a.clean_cycles;
    out.energy_j = a.clean_energy_j;
    out.checksum = a.clean_checksum;
    return out;
  }
  ep::ChipConfig cfg = base;
  cfg.faults = a.plan;
  try {
    bool degraded_image = false;
    if (a.algo == Algo::kFfbp) {
      core::FfbpMapOptions opt;
      opt.n_cores = a.cores;
      opt.max_cycles = a.timeout_cycles;
      auto sim = core::run_ffbp_epiphany(*a.data, a.params, opt, cfg);
      out.cycles = sim.cycles;
      out.energy_j = sim.energy.total_j();
      out.faults = sim.faults;
      degraded_image = sim.degraded;
      out.checksum = fault::FaultInjector::checksum(
          sim.image.data(), sim.image.rows() * sim.image.cols() *
                                sizeof(cf32));
    } else {
      auto sim = core::run_gbp_epiphany(*a.data, a.params, a.cores, cfg,
                                        a.timeout_cycles);
      out.cycles = sim.cycles;
      out.energy_j = sim.energy.total_j();
      out.faults = sim.faults;
      out.checksum = fault::FaultInjector::checksum(
          sim.image.data(), sim.image.rows() * sim.image.cols() *
                                sizeof(cf32));
    }
    if (degraded_image || out.checksum != a.clean_checksum) {
      // The chip *thinks* it delivered, but the image is not the verified
      // fault-free result — the fleet treats that exactly like a failed
      // transfer checksum and retries elsewhere.
      out.status = AttemptStatus::kCorrupt;
    }
  } catch (const fault::ChipFailed& e) {
    out.status = AttemptStatus::kChipKilled;
    out.cycles = e.cycle();
  } catch (const fault::FaultUnrecovered&) {
    out.status = AttemptStatus::kUnrecovered;
    out.cycles = a.clean_cycles; // deterministic stand-in for the lost time
  } catch (const ep::WatchdogExpired& e) {
    out.status = AttemptStatus::kTimedOut;
    out.cycles = e.cycle();
  }
  if (out.cycles == 0) out.cycles = 1; // occupy the chip for a nonzero time
  return out;
}

} // namespace

bool Fleet::SimKey::operator<(const SimKey& o) const {
  if (pulses != o.pulses) return pulses < o.pulses;
  if (range != o.range) return range < o.range;
  if (algo != o.algo) return algo < o.algo;
  return cores < o.cores;
}

Fleet::Fleet(FleetConfig cfg) : cfg_(std::move(cfg)) {
  ESARP_EXPECTS(cfg_.n_chips >= 1);
  ESARP_EXPECTS(cfg_.policy.max_attempts >= 1);
  ESARP_EXPECTS(cfg_.policy.max_degrade >= 0);
  ESARP_EXPECTS(cfg_.policy.backoff_base_s >= 0.0);
  ESARP_EXPECTS(cfg_.policy.timeout_factor >= 0.0);
  ESARP_EXPECTS(cfg_.policy.shed.deadline_factor > 0.0);
  ESARP_EXPECTS(cfg_.policy.hedge.margin_factor > 0.0);
  ESARP_EXPECTS(cfg_.policy.probation_clean_limit >= 0);
  ESARP_EXPECTS(cfg_.initial_health.empty() ||
                cfg_.initial_health.size() ==
                    static_cast<std::size_t>(cfg_.n_chips));
  for (const ChipHealth h : cfg_.initial_health) {
    ESARP_EXPECTS(h != ChipHealth::kFailed);
  }
}

const Array2D<cf32>& Fleet::scene_data(std::size_t pulses,
                                       std::size_t range) {
  const auto key = std::make_pair(pulses, range);
  auto it = data_cache_.find(key);
  if (it == data_cache_.end()) {
    const sar::RadarParams p = sar::test_params(pulses, range);
    it = data_cache_
             .emplace(key,
                      sar::simulate_compressed(p, sar::six_target_scene(p)))
             .first;
  }
  return it->second;
}

const Fleet::CleanRef& Fleet::clean_ref(const SimKey& key) {
  auto it = clean_cache_.find(key);
  if (it != clean_cache_.end()) return it->second;

  const Array2D<cf32>& data = scene_data(key.pulses, key.range);
  const sar::RadarParams p = sar::test_params(key.pulses, key.range);
  ep::ChipConfig cfg = cfg_.chip;
  cfg.faults = fault::FaultPlan{}; // reference runs are always fault-free
  CleanRef ref;
  if (static_cast<Algo>(key.algo) == Algo::kFfbp) {
    core::FfbpMapOptions opt;
    opt.n_cores = key.cores;
    auto sim = core::run_ffbp_epiphany(data, p, opt, cfg);
    ref.cycles = sim.cycles;
    ref.seconds = sim.seconds;
    ref.energy_j = sim.energy.total_j();
    ref.checksum = fault::FaultInjector::checksum(
        sim.image.data(), sim.image.rows() * sim.image.cols() * sizeof(cf32));
  } else {
    auto sim = core::run_gbp_epiphany(data, p, key.cores, cfg);
    ref.cycles = sim.cycles;
    ref.seconds = sim.seconds;
    ref.energy_j = sim.energy.total_j();
    ref.checksum = fault::FaultInjector::checksum(
        sim.image.data(), sim.image.rows() * sim.image.cols() * sizeof(cf32));
  }
  return clean_cache_.emplace(key, ref).first->second;
}

double Fleet::model_rel_err(const SimKey& key) {
  (void)clean_ref(key); // ensure the simulated reference exists
  CleanRef& ref = clean_cache_.find(key)->second;
  if (ref.model_rel_err >= 0.0) return ref.model_rel_err;
  // The shed policy packs queues with the *simulated* clean makespans; the
  // analytic model (src/analysis) independently predicts the same mapping
  // so a corrupted or stale memo cannot silently mis-steer admission
  // control. The worst divergence is surfaced as shed_model_max_rel_err.
  const sar::RadarParams p = sar::test_params(key.pulses, key.range);
  analysis::MappingSpec spec;
  if (static_cast<Algo>(key.algo) == Algo::kFfbp) {
    core::FfbpMapOptions opt;
    opt.n_cores = key.cores;
    spec = core::describe_ffbp_mapping(p, opt, cfg_.chip);
  } else {
    spec = core::describe_gbp_mapping(p, key.cores, cfg_.chip);
  }
  const analysis::CostPrediction pred = analysis::predict_cost(spec);
  ref.model_rel_err =
      std::abs(static_cast<double>(pred.makespan) -
               static_cast<double>(ref.cycles)) /
      static_cast<double>(ref.cycles);
  return ref.model_rel_err;
}

double backoff_delay_s(double base_s, int attempts_total) {
  ESARP_EXPECTS(attempts_total >= 1);
  const unsigned shift =
      std::min<unsigned>(static_cast<unsigned>(attempts_total - 1), 20);
  return base_s * static_cast<double>(1ULL << shift);
}

double percentile(std::vector<double> xs, double q) {
  ESARP_EXPECTS(!xs.empty());
  ESARP_EXPECTS(q > 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  // Nearest-rank: the smallest value with at least q of the sample at or
  // below it — an actual observation, never an interpolation.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[std::max<std::size_t>(rank, 1) - 1];
}

ServeReport Fleet::run(const ArrivalTrace& trace) {
  ESARP_EXPECTS(!trace.jobs.empty());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    ESARP_EXPECTS(trace.jobs[i].id == static_cast<int>(i));
    ESARP_EXPECTS(trace.jobs[i].deadline_s > 0.0);
  }

  const ServePolicy& pol = cfg_.policy;

  struct Pending {
    JobSpec spec;
    double release_s = 0.0;
    int attempts_level = 0; ///< dispatches at the current degrade level
    int attempts_total = 0;
    int degrade = 0;
    int migrations = 0;
    int hedges = 0;      ///< hedge attempts launched for this job
    int inflight = 0;    ///< attempts currently running (<= 2 with hedging)
    bool hedged = false; ///< a hedge was launched (at most one per job)
    int last_chip = -1;
    int active_chip = -1; ///< chip of the primary running attempt
    double first_dispatch_s = -1.0;
  };
  struct Inflight {
    int job_id = 0;
    int attempts_snapshot = 0; ///< job's attempts_total just after launch
    int chip = 0;
    bool is_hedge = false;
    bool cancelled = false; ///< a sibling attempt already delivered
    double start_s = 0.0;
    double finish_s = 0.0;
    double est_service_s = 0.0; ///< clean makespan (queue-wait estimator)
    AttemptOutcome out;
  };

  ServeReport rep;
  rep.jobs.resize(trace.jobs.size());
  rep.chips.assign(static_cast<std::size_t>(cfg_.n_chips), ChipStatus{});
  for (std::size_t c = 0; c < cfg_.initial_health.size(); ++c) {
    rep.chips[c].health = cfg_.initial_health[c];
  }
  ServeCounters& ctr = rep.counters;
  ctr.jobs_total = trace.jobs.size();

  std::vector<bool> finished(trace.jobs.size(), false);
  std::vector<bool> chip_busy(static_cast<std::size_t>(cfg_.n_chips), false);
  std::vector<Pending> waiting;
  std::map<int, Pending> live; ///< jobs with at least one running attempt
  std::vector<Inflight> running;
  host::SweepRunner pool(cfg_.host_jobs);

  std::uint64_t hash = kFnvOffset;
  double shed_model_err = 0.0;
  double now = 0.0;
  double makespan = 0.0;
  std::size_t next_arrival = 0;
  std::size_t remaining = trace.jobs.size();

  /// Memoized clean makespan of the job's shape at its degrade level —
  /// the service-time estimate the shed policy packs queues with.
  const auto clean_service_s = [&](const JobSpec& spec, int degrade) {
    const std::size_t pulses =
        degraded_pulses(spec.n_pulses, degrade, spec.n_cores);
    const SimKey key{pulses, spec.n_range, static_cast<int>(spec.algo),
                     spec.n_cores};
    if (pol.shed.enabled) {
      shed_model_err = std::max(shed_model_err, model_rel_err(key));
    }
    return clean_ref(key).seconds;
  };

  const auto requeue = [&](Pending j, int from_chip, double finish_s) {
    j.last_chip = from_chip;
    j.active_chip = -1;
    j.inflight = 0;
    ctr.retries++;
    if (j.attempts_level >= pol.max_attempts) {
      // Retry budget for this quality level is spent: escalate to a
      // smaller aperture (one fewer FFBP merge level) with a fresh
      // budget, rather than dropping the job.
      j.degrade++;
      j.attempts_level = 0;
      ctr.degradations++;
      if (j.degrade > pol.max_degrade) {
        std::ostringstream msg;
        msg << "serve: job " << j.spec.id << " exhausted "
            << j.attempts_total << " attempts at max degradation level "
            << pol.max_degrade;
        throw fault::FaultUnrecovered(msg.str());
      }
    }
    j.release_s =
        finish_s + backoff_delay_s(pol.backoff_base_s, j.attempts_total);
    waiting.push_back(j);
  };

  const auto retire = [&](Inflight& inf) {
    const auto id = static_cast<std::size_t>(inf.job_id);
    chip_busy[static_cast<std::size_t>(inf.chip)] = false;
    ChipStatus& cs = rep.chips[static_cast<std::size_t>(inf.chip)];
    cs.busy_s += inf.finish_s - inf.start_s;
    Pending& j = live.at(inf.job_id);
    const auto drop_inflight = [&] {
      if (--j.inflight == 0) live.erase(inf.job_id);
    };

    if (inf.cancelled) {
      // A sibling attempt already delivered this job: the chip is simply
      // released at the win instant. No fault or health bookkeeping — the
      // attempt's simulated outcome never materialized.
      fnv_mix(hash, static_cast<std::uint64_t>(inf.job_id));
      fnv_mix(hash, static_cast<std::uint64_t>(inf.attempts_snapshot));
      fnv_mix(hash, static_cast<std::uint64_t>(inf.chip));
      fnv_mix(hash, kHashCancelled);
      fnv_mix(hash, inf.out.cycles);
      ctr.hedge_cancelled++;
      if (inf.is_hedge) ctr.hedge_wasted++;
      drop_inflight();
      return;
    }

    cs.faults_detected += inf.out.faults.detected;
    cs.fault_window += inf.out.faults.detected;
    ctr.faults_injected += inf.out.faults.injected;
    ctr.faults_detected += inf.out.faults.detected;
    ctr.faults_recovered += inf.out.faults.recovered;
    if (cs.health == ChipHealth::kHealthy &&
        cs.fault_window > pol.health_fault_limit) {
      cs.health = ChipHealth::kDegraded;
      cs.consecutive_clean = 0;
      cs.probations++;
      ctr.chip_probations++;
    }
    fnv_mix(hash, static_cast<std::uint64_t>(inf.job_id));
    fnv_mix(hash, static_cast<std::uint64_t>(inf.attempts_snapshot));
    fnv_mix(hash, static_cast<std::uint64_t>(inf.chip));
    fnv_mix(hash, static_cast<std::uint64_t>(inf.out.status));
    fnv_mix(hash, inf.out.cycles);

    // Probation: a degraded chip earns back kHealthy after
    // probation_clean_limit consecutive clean attempts; any failure or
    // detected fault resets the streak.
    if (pol.probation_clean_limit > 0 && cs.health == ChipHealth::kDegraded) {
      if (inf.out.status == AttemptStatus::kOk &&
          inf.out.faults.detected == 0) {
        if (++cs.consecutive_clean >= pol.probation_clean_limit) {
          cs.health = ChipHealth::kHealthy;
          cs.fault_window = 0;
          cs.consecutive_clean = 0;
          cs.recoveries++;
          ctr.chip_recoveries++;
        }
      } else {
        cs.consecutive_clean = 0;
      }
    }

    switch (inf.out.status) {
      case AttemptStatus::kOk: {
        cs.jobs_completed++;
        cs.energy_j += inf.out.energy_j;
        ESARP_REQUIRE(!finished[id],
                      "serve: duplicate delivery for one job (siblings "
                      "must be cancelled at the win instant)");
        JobRecord& rec = rep.jobs[id];
        rec.spec = j.spec;
        rec.start_s = j.first_dispatch_s;
        rec.finish_s = inf.finish_s;
        rec.latency_s = inf.finish_s - j.spec.arrival_s;
        rec.attempts = j.attempts_total;
        rec.migrations = j.migrations;
        rec.degrade_level = j.degrade;
        rec.hedges = j.hedges;
        rec.chip = inf.chip;
        rec.sim_cycles = inf.out.cycles;
        rec.energy_j = inf.out.energy_j;
        rec.image_checksum = inf.out.checksum;
        if (rec.degrade_level > 0) {
          rec.state = JobState::kDegraded;
          ctr.jobs_degraded++;
        } else if (rec.latency_s <= j.spec.deadline_s) {
          rec.state = JobState::kMet;
          ctr.jobs_met++;
        } else {
          rec.state = JobState::kLate;
          ctr.jobs_late++;
        }
        finished[id] = true;
        remaining--;
        makespan = std::max(makespan, inf.finish_s);
        if (inf.is_hedge) ctr.hedge_wins++;
        // First success wins: every sibling attempt is cut short at this
        // instant (the retire sweep restarts, so they release their chips
        // within the same instant). Launch order breaks exact ties —
        // running[] preserves it, and the original launches first.
        for (Inflight& r : running) {
          if (r.job_id == inf.job_id) {
            r.cancelled = true;
            r.finish_s = inf.finish_s;
          }
        }
        drop_inflight();
        return;
      }
      case AttemptStatus::kChipKilled:
        cs.health = ChipHealth::kFailed;
        cs.failed_at_s = inf.finish_s;
        ctr.chip_kills++;
        break;
      case AttemptStatus::kTimedOut: ctr.timeouts++; break;
      case AttemptStatus::kCorrupt: ctr.checksum_failures++; break;
      case AttemptStatus::kUnrecovered: break;
    }
    if (inf.is_hedge) ctr.hedge_wasted++;
    if (j.inflight > 1) {
      // A sibling attempt is still running and now carries the job alone;
      // this failure only costs the counters above.
      drop_inflight();
      return;
    }
    const Pending copy = j;
    drop_inflight();
    requeue(copy, inf.chip, inf.finish_s);
  };

  // Prefer a different chip than the failed attempt's (migration), then a
  // healthy chip over a degraded one, then the lowest id — all free chips
  // considered, failed chips never.
  const auto pick_chip = [&](int last_chip) {
    int best = -1;
    int best_score = std::numeric_limits<int>::max();
    for (int c = 0; c < cfg_.n_chips; ++c) {
      const ChipStatus& cs = rep.chips[static_cast<std::size_t>(c)];
      if (chip_busy[static_cast<std::size_t>(c)] ||
          cs.health == ChipHealth::kFailed) {
        continue;
      }
      const int score = (cs.health == ChipHealth::kDegraded ? 4 : 0) +
                        (c == last_chip ? 2 : 0);
      if (score < best_score) {
        best_score = score;
        best = c;
      }
    }
    return best;
  };

  /// Build one dispatch-ready Attempt for job `j` on `chip` (shared by
  /// the queue dispatch and the hedge launch paths). Increments the job's
  /// attempt counter; attempts_level is the caller's call — hedges don't
  /// burn retry budget.
  const auto make_attempt = [&](Pending& j, int chip, bool is_hedge) {
    Attempt a;
    a.job_id = j.spec.id;
    a.attempt = j.attempts_total;
    a.chip = chip;
    a.is_hedge = is_hedge;
    a.algo = j.spec.algo;
    a.cores = j.spec.n_cores;
    const std::size_t pulses =
        degraded_pulses(j.spec.n_pulses, j.degrade, j.spec.n_cores);
    a.data = &scene_data(pulses, j.spec.n_range);
    a.params = sar::test_params(pulses, j.spec.n_range);
    const CleanRef& ref = clean_ref(SimKey{pulses, j.spec.n_range,
                                           static_cast<int>(j.spec.algo),
                                           j.spec.n_cores});
    a.clean_cycles = ref.cycles;
    a.clean_energy_j = ref.energy_j;
    a.clean_checksum = ref.checksum;
    a.est_service_s = ref.seconds;
    if (pol.timeout_factor > 0.0) {
      a.timeout_cycles = static_cast<std::uint64_t>(
          pol.timeout_factor * static_cast<double>(ref.cycles));
    }
    if (cfg_.chaos.enabled()) {
      a.plan.seed = attempt_seed(cfg_.chaos.seed, a.job_id, a.attempt,
                                 a.chip);
      a.plan.dma_corrupt_rate = cfg_.chaos.dma_corrupt_rate;
      a.plan.dma_drop_rate = cfg_.chaos.dma_drop_rate;
      a.plan.membits_rate = cfg_.chaos.membits_rate;
      a.plan.noc_stall_rate = cfg_.chaos.noc_stall_rate;
      if (cfg_.chaos.chip_kill_rate > 0.0) {
        SplitMix64 sm(a.plan.seed ^ 0x6368697066616b65ULL);
        if (u01(sm.next()) < cfg_.chaos.chip_kill_rate) {
          // Kill cycle uniform in 10..90% of the fault-free makespan:
          // always mid-job, never so early the dispatch is free.
          const std::uint64_t lo = std::max<std::uint64_t>(
              ref.cycles / 10, 1);
          const std::uint64_t span =
              std::max<std::uint64_t>(ref.cycles * 8 / 10, 1);
          a.plan.chip_fail_cycle = lo + sm.next() % span;
        }
      }
    }
    chip_busy[static_cast<std::size_t>(chip)] = true;
    rep.chips[static_cast<std::size_t>(chip)].attempts++;
    ctr.attempts++;
    j.attempts_total++;
    return a;
  };

  while (remaining > 0) {
    // 1. Retire every attempt finishing at or before the fleet clock.
    //    Event times are assigned, never accumulated, so the comparison
    //    is exact. A delivery cancels its sibling attempts *at this
    //    instant*, which can make an already-scanned entry due — restart
    //    the sweep after each retirement so cancellations drain within
    //    the same instant (relative order is preserved, so ties still
    //    resolve by launch order).
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].finish_s <= now) {
        Inflight inf = running[i];
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        retire(inf);
        i = 0;
      } else {
        ++i;
      }
    }

    // 2. Admit arrivals.
    while (next_arrival < trace.jobs.size() &&
           trace.jobs[next_arrival].arrival_s <= now) {
      Pending j;
      j.spec = trace.jobs[next_arrival];
      j.release_s = j.spec.arrival_s;
      waiting.push_back(j);
      ++next_arrival;
    }

    // 3. Order the queue. EDF (default): priority class descending, then
    //    earliest absolute deadline, then job id. FIFO: oldest release
    //    first, job id breaking ties (PR 8's order, bit-for-bit).
    std::sort(waiting.begin(), waiting.end(),
              [&](const Pending& a, const Pending& b) {
                if (pol.dispatch == DispatchOrder::kEdf) {
                  if (a.spec.priority != b.spec.priority)
                    return a.spec.priority > b.spec.priority;
                  const double da = a.spec.arrival_s + a.spec.deadline_s;
                  const double db = b.spec.arrival_s + b.spec.deadline_s;
                  if (da != db) return da < db;
                  return a.spec.id < b.spec.id;
                }
                if (a.release_s != b.release_s)
                  return a.release_s < b.release_s;
                return a.spec.id < b.spec.id;
              });

    // 4. Admission control: virtually pack the released queue (in
    //    dispatch order) onto the chips' estimated free times using the
    //    memoized clean makespans, and shed the jobs that are already
    //    doomed — estimated finish past arrival + deadline_factor x
    //    deadline — when their priority class is sheddable. Non-sheddable
    //    doomed jobs still reserve their slot (they will run).
    if (pol.shed.enabled) {
      std::vector<double> free_at;
      for (int c = 0; c < cfg_.n_chips; ++c) {
        const ChipStatus& cs = rep.chips[static_cast<std::size_t>(c)];
        if (cs.health == ChipHealth::kFailed) continue;
        double t = now;
        for (const Inflight& r : running) {
          if (r.chip == c) t = std::max(t, r.start_s + r.est_service_s);
        }
        free_at.push_back(t);
      }
      for (std::size_t i = 0; i < waiting.size() && !free_at.empty();) {
        Pending& j = waiting[i];
        if (j.release_s > now) {
          ++i;
          continue;
        }
        const double svc = clean_service_s(j.spec, j.degrade);
        auto slot = std::min_element(free_at.begin(), free_at.end());
        const double est_finish = std::max(*slot, now) + svc;
        const double doom_line =
            j.spec.arrival_s + pol.shed.deadline_factor * j.spec.deadline_s;
        if (est_finish > doom_line &&
            j.spec.priority <= pol.shed.max_shed_priority) {
          const auto id = static_cast<std::size_t>(j.spec.id);
          JobRecord& rec = rep.jobs[id];
          rec.spec = j.spec;
          rec.state = JobState::kShed;
          rec.start_s = std::max(j.first_dispatch_s, 0.0);
          rec.finish_s = now;
          rec.latency_s = now - j.spec.arrival_s;
          rec.attempts = j.attempts_total;
          rec.migrations = j.migrations;
          rec.degrade_level = j.degrade;
          rec.hedges = j.hedges;
          rec.chip = -1;
          fnv_mix(hash, static_cast<std::uint64_t>(j.spec.id));
          fnv_mix(hash, static_cast<std::uint64_t>(j.attempts_total));
          fnv_mix(hash, kHashShed);
          finished[id] = true;
          remaining--;
          ctr.jobs_shed++;
          waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          *slot = est_finish;
          ++i;
        }
      }
    }

    // 5. Dispatch released jobs to free chips in queue order, then run
    //    the instant's batch on the worker pool in index order
    //    (deterministic regardless of host_jobs).
    std::vector<Attempt> batch;
    for (std::size_t i = 0; i < waiting.size();) {
      if (waiting[i].release_s > now) {
        ++i;
        continue;
      }
      const int chip = pick_chip(waiting[i].last_chip);
      if (chip < 0) break; // no free usable chip at this instant
      Pending j = waiting[i];
      waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(i));

      if (j.first_dispatch_s < 0.0) j.first_dispatch_s = now;
      if (j.last_chip >= 0 && chip != j.last_chip) {
        j.migrations++;
        ctr.migrations++;
      }
      batch.push_back(make_attempt(j, chip, false));
      j.attempts_level++;
      j.inflight = 1;
      j.active_chip = chip;
      live.emplace(j.spec.id, j);
    }

    // 6. Hedge: for each singly-running, not-yet-hedged job of sufficient
    //    priority whose deadline slack has dropped below margin_factor x
    //    its clean service time, launch a duplicate attempt on a free
    //    chip. Iteration over `live` is in job-id order — deterministic.
    //    A job already past its deadline is not hedged (a duplicate can
    //    no longer save the SLO).
    if (pol.hedge.enabled) {
      for (auto& [jid, j] : live) {
        if (j.hedged || j.inflight != 1) continue;
        if (j.spec.priority < pol.hedge.min_priority) continue;
        const double abs_deadline = j.spec.arrival_s + j.spec.deadline_s;
        if (now >= abs_deadline) continue;
        const double svc = clean_service_s(j.spec, j.degrade);
        if (abs_deadline - now >= pol.hedge.margin_factor * svc) continue;
        const int chip = pick_chip(j.active_chip);
        if (chip < 0) continue;
        j.hedged = true;
        j.hedges++;
        j.inflight++;
        ctr.hedges_launched++;
        batch.push_back(make_attempt(j, chip, true));
      }
    }

    if (!batch.empty()) {
      auto outs = pool.run(batch.size(), [&](std::size_t i) {
        return exec_attempt(batch[i], cfg_.chip);
      });
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Inflight inf;
        inf.job_id = batch[i].job_id;
        inf.attempts_snapshot = batch[i].attempt + 1;
        inf.chip = batch[i].chip;
        inf.is_hedge = batch[i].is_hedge;
        inf.start_s = now;
        inf.finish_s = now + cfg_.chip.seconds(outs[i].cycles);
        inf.est_service_s = batch[i].est_service_s;
        inf.out = outs[i];
        running.push_back(inf);
      }
    }

    if (remaining == 0) break;

    // 4. Advance the fleet clock to the next event strictly after `now`.
    double next = std::numeric_limits<double>::infinity();
    if (next_arrival < trace.jobs.size()) {
      next = std::min(next, trace.jobs[next_arrival].arrival_s);
    }
    for (const Inflight& inf : running) next = std::min(next, inf.finish_s);
    for (const Pending& j : waiting) {
      if (j.release_s > now) next = std::min(next, j.release_s);
    }
    if (!std::isfinite(next)) {
      // Jobs outstanding, nothing running, nothing arriving, no release
      // ahead: every chip is dead. The campaign cannot make progress.
      std::ostringstream msg;
      msg << "serve: fleet exhausted with " << remaining
          << " job(s) outstanding (all " << cfg_.n_chips
          << " chips failed)";
      throw fault::FaultUnrecovered(msg.str());
    }
    now = std::max(next, now);
  }

  // Drain bookkeeping for attempts that were still in flight when the
  // last job completed (their chips stay busy past the makespan, but
  // every *job* already has a terminal record, so nothing to retire).
  for (std::size_t id = 0; id < finished.size(); ++id) {
    ESARP_REQUIRE(finished[id], "serve: job without terminal state");
  }

  // Latency order statistics and energy-per-image cover *delivered* jobs
  // only — a shed job has no delivery to measure — while slo_attainment
  // keeps jobs_total as its denominator, so shedding can never flatter
  // the SLO.
  std::vector<double> latencies;
  latencies.reserve(rep.jobs.size());
  for (const JobRecord& r : rep.jobs) {
    if (r.state != JobState::kShed) latencies.push_back(r.latency_s);
    rep.energy_total_j += r.energy_j;
    fnv_mix(hash, static_cast<std::uint64_t>(r.spec.id));
    fnv_mix(hash, static_cast<std::uint64_t>(r.state));
    fnv_mix(hash, static_cast<std::uint64_t>(r.attempts));
    fnv_mix(hash, static_cast<std::uint64_t>(r.degrade_level));
    fnv_mix(hash, r.sim_cycles);
    fnv_mix(hash, r.image_checksum);
  }
  rep.makespan_s = makespan;
  if (!latencies.empty()) {
    rep.latency_p50_s = percentile(latencies, 0.50);
    rep.latency_p95_s = percentile(latencies, 0.95);
    rep.latency_p99_s = percentile(latencies, 0.99);
    rep.latency_max_s =
        *std::max_element(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    rep.latency_mean_s = sum / static_cast<double>(latencies.size());
  }
  rep.throughput_jobs_per_s =
      makespan > 0.0 ? static_cast<double>(ctr.jobs_total) / makespan : 0.0;
  const std::uint64_t delivered = ctr.jobs_total - ctr.jobs_shed;
  rep.energy_per_image_j =
      delivered > 0 ? rep.energy_total_j / static_cast<double>(delivered)
                    : 0.0;
  rep.slo_attainment = static_cast<double>(ctr.jobs_met) /
                       static_cast<double>(ctr.jobs_total);
  rep.shed_model_max_rel_err = shed_model_err;
  rep.schedule_hash = hash;
  return rep;
}

void fill_serve_manifest(telemetry::RunManifest& m, const FleetConfig& cfg,
                         const ArrivalTrace& trace, const ServeReport& rep) {
  m.set_schema("esarp-serve-manifest/2");
  m.add_chip("rows", cfg.chip.rows);
  m.add_chip("cols", cfg.chip.cols);
  m.add_chip("clock_hz", cfg.chip.clock_hz);
  m.add_chip("n_chips", cfg.n_chips);

  m.add_workload("n_jobs", static_cast<double>(trace.jobs.size()));
  m.add_workload("trace_seed", static_cast<double>(trace.seed));
  m.add_workload("chaos_seed", static_cast<double>(cfg.chaos.seed));
  m.add_workload("chip_kill_rate", cfg.chaos.chip_kill_rate);
  m.add_workload("dma_corrupt_rate", cfg.chaos.dma_corrupt_rate);
  m.add_workload("dma_drop_rate", cfg.chaos.dma_drop_rate);
  m.add_workload("membits_rate", cfg.chaos.membits_rate);
  m.add_workload("noc_stall_rate", cfg.chaos.noc_stall_rate);
  m.add_workload("max_attempts", cfg.policy.max_attempts);
  m.add_workload("max_degrade", cfg.policy.max_degrade);
  m.add_workload("backoff_base_s", cfg.policy.backoff_base_s);
  m.add_workload("timeout_factor", cfg.policy.timeout_factor);
  m.add_workload("dispatch_edf",
                 cfg.policy.dispatch == DispatchOrder::kEdf ? 1.0 : 0.0);
  m.add_workload("shed_enabled", cfg.policy.shed.enabled ? 1.0 : 0.0);
  m.add_workload("shed_deadline_factor", cfg.policy.shed.deadline_factor);
  m.add_workload("shed_max_priority",
                 static_cast<int>(cfg.policy.shed.max_shed_priority));
  m.add_workload("hedge_enabled", cfg.policy.hedge.enabled ? 1.0 : 0.0);
  m.add_workload("hedge_margin_factor", cfg.policy.hedge.margin_factor);
  m.add_workload("hedge_min_priority",
                 static_cast<int>(cfg.policy.hedge.min_priority));
  m.add_workload("probation_clean_limit",
                 cfg.policy.probation_clean_limit);
  std::uint64_t n_low = 0;
  std::uint64_t n_normal = 0;
  std::uint64_t n_high = 0;
  for (const JobSpec& j : trace.jobs) {
    if (j.priority == Priority::kLow) n_low++;
    else if (j.priority == Priority::kHigh) n_high++;
    else n_normal++;
  }
  m.add_workload("n_priority_low", static_cast<double>(n_low));
  m.add_workload("n_priority_normal", static_cast<double>(n_normal));
  m.add_workload("n_priority_high", static_cast<double>(n_high));

  const ServeCounters& c = rep.counters;
  m.add_result("jobs_total", static_cast<double>(c.jobs_total));
  m.add_result("jobs_met", static_cast<double>(c.jobs_met));
  m.add_result("jobs_late", static_cast<double>(c.jobs_late));
  m.add_result("jobs_degraded", static_cast<double>(c.jobs_degraded));
  m.add_result("jobs_lost", static_cast<double>(c.jobs_lost));
  m.add_result("attempts", static_cast<double>(c.attempts));
  m.add_result("retries", static_cast<double>(c.retries));
  m.add_result("migrations", static_cast<double>(c.migrations));
  m.add_result("degradations", static_cast<double>(c.degradations));
  m.add_result("chip_kills", static_cast<double>(c.chip_kills));
  m.add_result("timeouts", static_cast<double>(c.timeouts));
  m.add_result("checksum_failures",
               static_cast<double>(c.checksum_failures));
  m.add_result("faults_injected", static_cast<double>(c.faults_injected));
  m.add_result("faults_detected", static_cast<double>(c.faults_detected));
  m.add_result("faults_recovered",
               static_cast<double>(c.faults_recovered));
  m.add_result("jobs_shed", static_cast<double>(c.jobs_shed));
  m.add_result("hedges_launched", static_cast<double>(c.hedges_launched));
  m.add_result("hedge_wins", static_cast<double>(c.hedge_wins));
  m.add_result("hedge_wasted", static_cast<double>(c.hedge_wasted));
  m.add_result("hedge_cancelled", static_cast<double>(c.hedge_cancelled));
  m.add_result("chip_probations", static_cast<double>(c.chip_probations));
  m.add_result("chip_recoveries", static_cast<double>(c.chip_recoveries));
  m.add_result("shed_model_max_rel_err", rep.shed_model_max_rel_err);
  m.add_result("latency_p50_s", rep.latency_p50_s);
  m.add_result("latency_p95_s", rep.latency_p95_s);
  m.add_result("latency_p99_s", rep.latency_p99_s);
  m.add_result("latency_mean_s", rep.latency_mean_s);
  m.add_result("latency_max_s", rep.latency_max_s);
  m.add_result("slo_attainment", rep.slo_attainment);
  m.add_result("throughput_jobs_per_s", rep.throughput_jobs_per_s);
  m.add_result("energy_total_j", rep.energy_total_j);
  m.add_result("energy_per_image_j", rep.energy_per_image_j);
  m.add_result("makespan_s", rep.makespan_s);
  // The 64-bit campaign hash split into two exactly-representable
  // doubles, same idiom as the chaos bench manifests.
  m.add_result("schedule_hash_hi",
               static_cast<double>(rep.schedule_hash >> 32));
  m.add_result("schedule_hash_lo",
               static_cast<double>(rep.schedule_hash & 0xffffffffULL));
  std::uint64_t chips_failed = 0;
  std::uint64_t chips_degraded = 0;
  for (const ChipStatus& cs : rep.chips) {
    if (cs.health == ChipHealth::kFailed) chips_failed++;
    if (cs.health == ChipHealth::kDegraded) chips_degraded++;
  }
  m.add_result("chips_failed", static_cast<double>(chips_failed));
  m.add_result("chips_degraded", static_cast<double>(chips_degraded));
}

void fill_serve_metrics(telemetry::MetricsRegistry& reg,
                        const ServeReport& rep) {
  const ServeCounters& c = rep.counters;
  reg.counter("serve.jobs_total").add(c.jobs_total);
  reg.counter("serve.jobs_met").add(c.jobs_met);
  reg.counter("serve.jobs_late").add(c.jobs_late);
  reg.counter("serve.jobs_degraded").add(c.jobs_degraded);
  reg.counter("serve.jobs_shed").add(c.jobs_shed);
  reg.counter("serve.hedges_launched").add(c.hedges_launched);
  reg.counter("serve.hedge_wins").add(c.hedge_wins);
  reg.counter("serve.hedge_wasted").add(c.hedge_wasted);
  reg.counter("serve.chip_probations").add(c.chip_probations);
  reg.counter("serve.chip_recoveries").add(c.chip_recoveries);
  reg.counter("serve.attempts").add(c.attempts);
  reg.counter("serve.retries").add(c.retries);
  reg.counter("serve.migrations").add(c.migrations);
  reg.counter("serve.degradations").add(c.degradations);
  reg.counter("serve.chip_kills").add(c.chip_kills);
  reg.counter("serve.timeouts").add(c.timeouts);
  reg.counter("serve.checksum_failures").add(c.checksum_failures);
  reg.gauge("serve.slo_attainment").set(rep.slo_attainment);
  reg.gauge("serve.latency_p99_s").set(rep.latency_p99_s);
  reg.gauge("serve.throughput_jobs_per_s").set(rep.throughput_jobs_per_s);
  for (std::size_t i = 0; i < rep.chips.size(); ++i) {
    const ChipStatus& cs = rep.chips[i];
    const auto lbl = [&](const char* name) {
      return telemetry::labeled(name, {{"chip", std::to_string(i)}});
    };
    reg.counter(lbl("serve.chip.attempts")).add(cs.attempts);
    reg.counter(lbl("serve.chip.jobs_completed")).add(cs.jobs_completed);
    reg.counter(lbl("serve.chip.probations")).add(cs.probations);
    reg.counter(lbl("serve.chip.recoveries")).add(cs.recoveries);
    reg.gauge(lbl("serve.chip.busy_s")).set(cs.busy_s);
    reg.gauge(lbl("serve.chip.health"))
        .set(static_cast<double>(static_cast<int>(cs.health)));
  }
}

} // namespace esarp::serve
