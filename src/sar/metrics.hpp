// Impulse-response-function (IRF) metrology for SAR images.
//
// Standard point-target analysis: locate the peak, measure the -3 dB
// mainlobe widths in range and azimuth (resolution), the peak sidelobe
// ratio (PSLR) and the integrated sidelobe ratio (ISLR) along both axes.
// Used by tests to check the imaging chain against theory (range
// resolution = bin spacing x mainlobe factor, azimuth resolution =
// lambda R / (2 L_aperture)) and by benches to compare processors.
#pragma once

#include <cstddef>

#include "common/array2d.hpp"
#include "common/types.hpp"

namespace esarp::sar {

struct IrfAxis {
  double peak_index = 0.0;    ///< interpolated peak position [bins]
  double width_3db = 0.0;     ///< -3 dB mainlobe width [bins]
  double pslr_db = 0.0;       ///< peak sidelobe ratio [dB, negative]
  double islr_db = 0.0;       ///< integrated sidelobe ratio [dB, negative]
  bool valid = false;         ///< false when the cut has no usable lobe
};

struct IrfReport {
  std::size_t peak_row = 0; ///< azimuth (theta) bin of the maximum
  std::size_t peak_col = 0; ///< range bin of the maximum
  double peak_magnitude = 0.0;
  IrfAxis range;   ///< cut along the range axis through the peak
  IrfAxis azimuth; ///< cut along the azimuth axis through the peak
};

/// Analyse a 1-D magnitude cut: sub-bin peak (parabolic), -3 dB width,
/// PSLR and ISLR with the mainlobe taken as the span between the first
/// nulls (local minima) around the peak.
[[nodiscard]] IrfAxis analyze_cut(std::span<const float> magnitude);

/// Full point-target analysis of a complex image (assumes one dominant
/// scatterer; for multi-target scenes pass a sub-view around the target).
[[nodiscard]] IrfReport analyze_point_target(const Array2D<cf32>& img);

} // namespace esarp::sar
