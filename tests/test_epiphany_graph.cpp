// Tests for the declarative process-network layer (automatic placement +
// channel binding) and its use by the autofocus pipeline.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "epiphany/graph.hpp"

namespace esarp::ep {
namespace {

Task noop(CoreCtx& ctx) { co_await ctx.idle(1); }

TEST(ProcessNetwork, PlacesConnectedNodesAdjacently) {
  Machine m;
  ProcessNetwork net(m);
  auto& c01 = net.channel<int>("a->b");
  auto& c12 = net.channel<int>("b->c");
  const int a = net.node("a", noop);
  const int b = net.node("b", noop);
  const int c = net.node("c", noop);
  net.connect(a, b, c01);
  net.connect(b, c, c12);
  const auto& pl = net.place();
  EXPECT_EQ(hop_distance(pl[a], pl[b]), 1);
  EXPECT_EQ(hop_distance(pl[b], pl[c]), 1);
  EXPECT_DOUBLE_EQ(net.weighted_hops(), 2.0);
}

TEST(ProcessNetwork, HeavyEdgesGetShorterThanLightOnes) {
  // A star: hub with 5 spokes, one of them 100x heavier. Only 4 cores
  // neighbour the hub, so at least one spoke is 2 hops away — and it must
  // not be the heavy one.
  Machine m;
  ProcessNetwork net(m);
  const int hub = net.node("hub", noop);
  int heavy = -1;
  std::vector<int> spokes;
  for (int i = 0; i < 5; ++i) {
    const int s = net.node("spoke" + std::to_string(i), noop);
    auto& ch = net.channel<int>("e" + std::to_string(i));
    const double w = i == 2 ? 100.0 : 1.0;
    if (i == 2) heavy = s;
    net.connect(hub, s, ch, w);
    spokes.push_back(s);
  }
  const auto& pl = net.place();
  EXPECT_EQ(hop_distance(pl[hub], pl[heavy]), 1);
}

TEST(ProcessNetwork, PinningIsRespected) {
  Machine m;
  ProcessNetwork net(m);
  const int a = net.node("a", noop);
  const int b = net.node("b", noop);
  auto& ch = net.channel<int>("ab");
  net.connect(a, b, ch);
  net.pin(a, {3, 3});
  const auto& pl = net.place();
  EXPECT_EQ(pl[a].row, 3);
  EXPECT_EQ(pl[a].col, 3);
  EXPECT_EQ(hop_distance(pl[a], pl[b]), 1); // b follows its neighbour
}

TEST(ProcessNetwork, DistinctCoresForAllNodes) {
  Machine m;
  ProcessNetwork net(m);
  for (int i = 0; i < 16; ++i) net.node("n" + std::to_string(i), noop);
  const auto& pl = net.place();
  for (std::size_t i = 0; i < pl.size(); ++i)
    for (std::size_t j = i + 1; j < pl.size(); ++j)
      EXPECT_FALSE(pl[i] == pl[j]);
}

TEST(ProcessNetwork, RejectsTooManyNodes) {
  Machine m;
  ProcessNetwork net(m);
  for (int i = 0; i < 16; ++i) net.node("n" + std::to_string(i), noop);
  EXPECT_THROW(net.node("overflow", noop), ContractViolation);
}

TEST(ProcessNetwork, RejectsDoublePin) {
  Machine m;
  ProcessNetwork net(m);
  const int a = net.node("a", noop);
  const int b = net.node("b", noop);
  net.pin(a, {0, 0});
  net.pin(b, {0, 0});
  EXPECT_THROW(net.place(), ContractViolation);
}

TEST(ProcessNetwork, ChannelUnusableBeforePlacement) {
  Machine m;
  ProcessNetwork net(m);
  auto& ch = net.channel<int>("c");
  EXPECT_FALSE(ch.bound());
}

TEST(ProcessNetwork, RunsAPipelineEndToEnd) {
  Machine m;
  ProcessNetwork net(m);
  auto& ch1 = net.channel<int>("gen->dbl", 4);
  auto& ch2 = net.channel<int>("dbl->sum", 4);
  int total = 0;

  const int gen = net.node("gen", [&ch1](CoreCtx& ctx) -> Task {
    for (int i = 1; i <= 10; ++i) {
      co_await ctx.compute({.ialu = 4});
      co_await ch1.send(ctx, i);
    }
  });
  const int dbl = net.node("dbl", [&ch1, &ch2](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 10; ++i) {
      const int v = co_await ch1.recv(ctx);
      co_await ctx.compute({.ialu = 1});
      co_await ch2.send(ctx, 2 * v);
    }
  });
  const int sum = net.node("sum", [&ch2, &total](CoreCtx& ctx) -> Task {
    for (int i = 0; i < 10; ++i) total += co_await ch2.recv(ctx);
  });
  net.connect(gen, dbl, ch1);
  net.connect(dbl, sum, ch2);

  const Cycles end = net.run();
  EXPECT_GT(end, 0u);
  EXPECT_EQ(total, 110); // 2 * (1 + ... + 10)
  EXPECT_EQ(ch1.stats().messages, 10u);
  EXPECT_FALSE(net.describe().empty());
}

TEST(ProcessNetwork, ChannelSingleConsumerEnforced) {
  Machine m;
  ProcessNetwork net(m);
  auto& ch = net.channel<int>("c");
  const int a = net.node("a", noop);
  const int b = net.node("b", noop);
  const int c = net.node("c", noop);
  net.connect(a, b, ch);
  EXPECT_THROW(net.connect(b, c, ch), ContractViolation);
}

} // namespace
} // namespace esarp::ep
