// esarp — command-line driver for the SAR processing library.
//
//   esarp simulate --pulses 256 --range 251 --out raw.esrp [--noise 0.05]
//   esarp image    --in raw.esrp --algo ffbp|gbp|rda --out img.pgm
//                  [--interp nn|linear|cubic] [--autofocus] [--looks k]
//   esarp chip     --in raw.esrp --cores 16 [--jobs N] [--no-prefetch]
//                  [--autofocus] [--trace t.json] [--metrics m.json]
//   esarp chaos    --in raw.esrp --dma-corrupt 1e-3 [--seed S] [...]
//   esarp power    --in raw.esrp [--cores N] [--epoch C] [--csv p.csv]
//                  [--heatmap p.pgm] [--trace t.json] [--metrics m.json]
//   esarp analyze  --in raw.esrp
//   esarp report   --in m.manifest.json
//   esarp lint     [--mapping all|ffbp|...] [--pulses N] [--range M]
//                  [--cores N] [--pairs N] [--json m.json] [--validate]
//   esarp serve    --trace t.json | --gen poisson|bursty [--chips N]
//                  [--chip-kill R] [--dma-corrupt R] [--seed S]
//                  [--metrics m.json] [...]
//
// Datasets are the library's .esrp container (see sar/io.hpp), so the
// expensive products can be generated once and reused. --trace writes a
// Chrome/Perfetto trace of the chip run; --metrics writes a run manifest
// (docs/observability.md) that tools/esarp_compare can diff. `chaos`
// runs a seeded fault-injection campaign (docs/fault-injection.md).
// `lint` statically analyzes the shipped mappings without running the
// scheduler (docs/static-analysis.md). `serve` replays an arrival trace
// through the multi-chip fleet runtime and writes an
// esarp-serve-manifest/2 (docs/serving.md); overload control (EDF
// dispatch, admission shedding, hedged attempts, chip probation) is
// configured per campaign. A fleet that cannot finish every job (all
// chips dead, or a job out of retries at max degradation) exits 5 like
// any other unrecovered fault.
//
// Exit codes (stable, scripted against by CI):
//   0  success
//   1  generic error (I/O, bad dataset, ...)
//   2  usage error
//   3  simulation deadlock (ep::SimDeadlock)
//   4  contract violation, including the max_cycles watchdog
//   5  fault campaign exhausted its recovery budget (FaultUnrecovered)
//   6  `esarp lint` found mapping violations
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/format.hpp"
#include "common/json.hpp"
#include "common/pgm.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "analysis/lint_report.hpp"
#include "core/autofocus_epiphany.hpp"
#include "core/ffbp_epiphany.hpp"
#include "core/gbp_epiphany.hpp"
#include "core/mapping_desc.hpp"
#include "epiphany/machine_metrics.hpp"
#include "host/sweep_runner.hpp"
#include "serve/fleet.hpp"
#include "serve/trace.hpp"
#include "telemetry/compare.hpp"
#include "telemetry/manifest.hpp"
#include "autofocus/integrated.hpp"
#include "sar/ffbp.hpp"
#include "sar/gbp.hpp"
#include "sar/io.hpp"
#include "sar/metrics.hpp"
#include "sar/multilook.hpp"
#include "sar/rda.hpp"
#include "sar/scene.hpp"

namespace {

using namespace esarp;

// Stable exit codes — documented in the header comment, docs/simulator.md
// and docs/fault-injection.md; CI scripts and tests match on them.
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitDeadlock = 3;
constexpr int kExitContract = 4;
constexpr int kExitFaultUnrecovered = 5;
constexpr int kExitLintFindings = 6;

/// Minimal --key value / --flag argument map.
class Args {
public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << key << "\n";
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "";
      }
    }
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool has(const std::string& k) const {
    return kv_.count(k) > 0;
  }
  [[nodiscard]] std::string str(const std::string& k,
                                const std::string& dflt = "") const {
    auto it = kv_.find(k);
    return it != kv_.end() ? it->second : dflt;
  }
  [[nodiscard]] long num(const std::string& k, long dflt) const {
    auto it = kv_.find(k);
    return it != kv_.end() ? std::stol(it->second) : dflt;
  }
  [[nodiscard]] double real(const std::string& k, double dflt) const {
    auto it = kv_.find(k);
    return it != kv_.end() ? std::stod(it->second) : dflt;
  }

private:
  std::map<std::string, std::string> kv_;
  bool ok_ = true;
};

int usage() {
  std::cerr <<
      "usage:\n"
      "  esarp simulate --out f.esrp [--pulses N] [--range M] [--paper]\n"
      "                 [--targets k] [--noise sigma] [--seed s]\n"
      "  esarp image    --in f.esrp --out img.pgm [--algo ffbp|gbp|rda]\n"
      "                 [--interp nn|linear|cubic] [--autofocus]"
      " [--looks k]\n"
      "  esarp chip     --in f.esrp [--cores N[,N...]] [--jobs N]\n"
      "                 [--no-prefetch] [--autofocus] [--out img.pgm]\n"
      "                 [--trace t.json] [--metrics m.json] [--check]\n"
      "  esarp chaos    --in f.esrp [--cores N] [--seed S]\n"
      "                 [--dma-corrupt R] [--dma-drop R] [--noc-stall R]\n"
      "                 [--membits R] [--fail core@cycle[,core@cycle...]]\n"
      "                 [--no-resilience] [--autofocus] [--pairs N]\n"
      "                 [--metrics m.json] [--max-cycles N] [--check]\n"
      "  esarp power    --in f.esrp [--cores N] [--epoch CYCLES]\n"
      "                 [--no-prefetch] [--autofocus] [--csv p.csv]\n"
      "                 [--heatmap p.pgm] [--trace t.json]"
      " [--metrics m.json]\n"
      "  esarp analyze  --in f.esrp\n"
      "  esarp report   --in m.manifest.json\n"
      "  esarp lint     [--mapping all|ffbp|ffbp-db|ffbp-seq|ffbp-af|gbp|\n"
      "                            af-mpmd|af-mpmd-scattered|af-seq]\n"
      "                 [--pulses N] [--range M] [--cores N] [--pairs N]\n"
      "                 [--no-prefetch] [--json m.json] [--validate]\n"
      "  esarp serve    --trace t.json | --gen poisson|bursty\n"
      "                 [--jobs-count N] [--rate HZ] [--burst-mean K]\n"
      "                 [--pulses N] [--range M] [--cores N]\n"
      "                 [--algo ffbp|gbp] [--deadline S]\n"
      "                 [--priority-mix L,N,H] [--deadline-jitter J]\n"
      "                 [--trace-out f]\n"
      "                 [--chips N] [--seed S] [--chip-kill R]\n"
      "                 [--dma-corrupt R] [--dma-drop R] [--noc-stall R]\n"
      "                 [--membits R] [--retry-max N] [--degrade-max N]\n"
      "                 [--backoff S] [--timeout-factor F] [--jobs N]\n"
      "                 [--dispatch edf|fifo] [--shed] [--shed-factor F]\n"
      "                 [--shed-priority low|normal|high] [--hedge]\n"
      "                 [--hedge-margin F] [--hedge-priority low|normal|"
      "high]\n"
      "                 [--probation N] [--metrics m.json]\n";
  return kExitUsage;
}

sar::FfbpOptions interp_options(const Args& args) {
  sar::FfbpOptions opt;
  const std::string interp = args.str("interp", "nn");
  if (interp == "linear") opt.interp = sar::Interp::kLinear;
  else if (interp == "cubic") opt.interp = sar::Interp::kCubic;
  else if (interp != "nn")
    throw ContractViolation("unknown --interp: " + interp);
  return opt;
}

int cmd_simulate(const Args& args) {
  sar::Dataset ds;
  if (args.has("paper")) {
    ds.params = sar::paper_params();
  } else {
    ds.params = sar::test_params(
        static_cast<std::size_t>(args.num("pulses", 256)),
        static_cast<std::size_t>(args.num("range", 251)));
  }
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 1)));

  sar::Scene scene;
  const long n_targets = args.num("targets", 6);
  if (n_targets == 6) {
    scene = sar::six_target_scene(ds.params);
  } else {
    const double x_span = static_cast<double>(ds.params.n_pulses - 1) *
                          ds.params.pulse_spacing_m;
    for (long i = 0; i < n_targets; ++i)
      scene.targets.push_back(
          {rng.uniform(-0.35 * x_span, 0.35 * x_span),
           rng.uniform(ds.params.near_range_m + 10.0 * ds.params.range_bin_m,
                       ds.params.far_range_m() -
                           10.0 * ds.params.range_bin_m),
           rng.uniform_f(0.5f, 1.0f)});
  }

  std::cerr << "simulating " << ds.params.n_pulses << "x" << ds.params.n_range
            << " raw data, " << scene.targets.size() << " targets...\n";
  ds.data = sar::simulate_compressed(ds.params, scene);
  const double noise = args.real("noise", 0.0);
  if (noise > 0.0) sar::add_noise(ds.data, rng, static_cast<float>(noise));

  const std::string out = args.str("out");
  if (out.empty()) return usage();
  sar::save_dataset(out, ds);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int cmd_image(const Args& args) {
  const std::string in = args.str("in");
  const std::string out = args.str("out");
  if (in.empty() || out.empty()) return usage();
  const sar::Dataset ds = sar::load_dataset(in);
  const std::string algo = args.str("algo", "ffbp");
  WallTimer timer;

  Array2D<cf32> image;
  if (algo == "gbp") {
    image = sar::gbp(ds.data, ds.params).image.data;
  } else if (algo == "rda") {
    image = sar::range_doppler(ds.data, ds.params).image;
  } else if (algo == "ffbp") {
    const long looks = args.num("looks", 1);
    if (looks > 1) {
      const auto ml = sar::multilook_ffbp(
          ds.data, ds.params, static_cast<std::size_t>(looks),
          interp_options(args));
      write_pgm(out, ml.intensity);
      std::cout << "multilook(" << looks << ") image written to " << out
                << " in " << format_seconds(timer.elapsed_s())
                << "; speckle contrast "
                << Table::num(sar::speckle_contrast(ml.intensity), 3)
                << "\n";
      return 0;
    }
    if (args.has("autofocus")) {
      af::IntegratedOptions aopt;
      aopt.ffbp = interp_options(args);
      const auto res = af::ffbp_with_autofocus(ds.data, ds.params, aopt);
      image = res.image.data;
      std::size_t applied = 0;
      for (const auto& c : res.corrections)
        if (std::abs(c.shift_bins) > 0.01f) ++applied;
      std::cerr << "autofocus: " << applied << "/"
                << res.corrections.size() << " corrections applied\n";
    } else {
      image = sar::ffbp(ds.data, ds.params, interp_options(args)).image.data;
    }
  } else {
    std::cerr << "unknown --algo: " << algo << "\n";
    return 2;
  }

  write_pgm(out, image, {.dynamic_range_db = 45.0});
  std::cout << algo << " image (" << image.rows() << "x" << image.cols()
            << ") written to " << out << " in "
            << format_seconds(timer.elapsed_s()) << "\n";
  return 0;
}

/// Parse a `--cores` value: either one count ("16") or a comma-separated
/// sweep ("4,8,16").
std::vector<int> parse_cores(const std::string& spec) {
  std::vector<int> cores;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) cores.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (cores.empty()) throw ContractViolation("empty --cores list");
  return cores;
}

int cmd_chip(const Args& args) {
  const std::string in = args.str("in");
  if (in.empty()) return usage();
  const sar::Dataset ds = sar::load_dataset(in);

  // --cores may name a sweep; --jobs N fans the independent simulations
  // over N host threads (default 1). Results are deterministic and
  // identical for any --jobs value (docs/performance.md).
  const std::vector<int> core_counts = parse_cores(args.str("cores", "16"));
  const int jobs = static_cast<int>(args.num("jobs", 1));

  core::FfbpMapOptions opt;
  opt.n_cores = core_counts.back();
  opt.prefetch = !args.has("no-prefetch");
  af::IntegratedOptions aopt;
  if (args.has("autofocus")) opt.autofocus = &aopt;

  // --check turns on the hazard sanitizer (docs/static-analysis.md); the
  // ESARP_CHECK_* env vars refine it (suppressions, JSON report, abort).
  ep::ChipConfig chip_cfg;
  chip_cfg.check.enabled = args.has("check");

  const std::string trace_path = args.str("trace");
  if (args.has("trace") && trace_path.empty()) return usage();
  ep::Tracer tracer;
  if (!trace_path.empty()) {
    tracer.enable();
    opt.tracer = &tracer;
  }

  host::SweepRunner pool(jobs);
  std::cerr << "simulating " << core_counts.size()
            << " Epiphany FFBP configuration(s) (" << pool.jobs()
            << " host thread(s))...\n";
  WallTimer sweep_timer;
  // The trace, metrics manifest, image, and summary all describe the last
  // configuration in the list; earlier entries print one summary line.
  auto results = pool.run(core_counts.size(), [&](std::size_t i) {
    core::FfbpMapOptions o = opt;
    o.n_cores = core_counts[i];
    if (i + 1 != core_counts.size()) o.tracer = nullptr;
    return core::run_ffbp_epiphany(ds.data, ds.params, o, chip_cfg);
  });
  const double sweep_s = sweep_timer.elapsed_s();
  const auto& sim = results.back();

  std::uint64_t events = 0;
  for (std::size_t i = 0; i < core_counts.size(); ++i) {
    events += results[i].perf.engine_events;
    if (i + 1 != core_counts.size())
      std::cout << core_counts[i]
                << "-core chip time: " << format_seconds(results[i].seconds)
                << " (" << format_cycles(results[i].cycles) << " cycles)\n";
  }
  std::cerr << "engine: " << events << " events in "
            << format_seconds(sweep_s) << " ("
            << format_rate(static_cast<double>(events) /
                               std::max(sweep_s, 1e-12),
                           "events")
            << ")\n";

  std::cout << "chip time: " << format_seconds(sim.seconds) << " ("
            << format_cycles(sim.cycles) << " cycles)\n"
            << sim.perf.summary() << sim.energy.summary() << "\n";
  if (opt.autofocus != nullptr)
    std::cout << "autofocus corrections evaluated: "
              << sim.corrections.size() << "\n";

  if (!trace_path.empty()) {
    tracer.write_chrome_json(trace_path, sim.perf.cfg.clock_hz);
    std::cout << "trace written to " << trace_path << " ("
              << tracer.size() << " segments, " << tracer.spans().size()
              << " spans)\n";
  }

  const std::string metrics_path = args.str("metrics");
  if (args.has("metrics") && metrics_path.empty()) return usage();
  if (!metrics_path.empty()) {
    telemetry::RunManifest man("esarp_chip");
    ep::fill_manifest(man, sim.perf, sim.energy);
    man.add_workload("n_pulses", static_cast<double>(ds.params.n_pulses));
    man.add_workload("n_range", static_cast<double>(ds.params.n_range));
    man.add_workload("n_cores", static_cast<double>(opt.n_cores));
    man.add_workload("prefetch", opt.prefetch ? 1.0 : 0.0);
    man.set_metrics(&sim.metrics);
    man.write(std::filesystem::path(metrics_path));
    std::cout << "metrics manifest written to " << metrics_path << "\n";
  }

  const std::string out = args.str("out");
  if (!out.empty()) {
    write_pgm(out, sim.image, {.dynamic_range_db = 45.0});
    std::cout << "image written to " << out << "\n";
  }
  return 0;
}

/// Power observability report (docs/observability.md): runs the FFBP
/// mapping with the power sampler attached and prints the aggregate energy
/// breakdown, the span-attribution profile and the per-epoch peak power.
/// Energy conservation (trace and attribution vs the aggregate model, 1e-9
/// relative) is asserted inside collect_power — a violation exits 4.
int cmd_power(const Args& args) {
  const std::string in = args.str("in");
  if (in.empty()) return usage();
  const sar::Dataset ds = sar::load_dataset(in);

  core::FfbpMapOptions opt;
  opt.n_cores = static_cast<int>(args.num("cores", 16));
  opt.prefetch = !args.has("no-prefetch");
  af::IntegratedOptions aopt;
  if (args.has("autofocus")) opt.autofocus = &aopt;

  ep::ChipConfig chip_cfg;
  chip_cfg.power.enabled = true;
  if (args.has("epoch")) {
    const long epoch = args.num("epoch", 0);
    if (epoch <= 0) return usage();
    chip_cfg.power.epoch_cycles = static_cast<ep::Cycles>(epoch);
  }

  const std::string trace_path = args.str("trace");
  if (args.has("trace") && trace_path.empty()) return usage();
  ep::Tracer tracer;
  if (!trace_path.empty()) {
    tracer.enable();
    opt.tracer = &tracer;
  }

  const auto sim = core::run_ffbp_epiphany(ds.data, ds.params, opt, chip_cfg);
  const ep::PowerTrace& trace = sim.power.trace;

  std::cout << "chip time: " << format_seconds(sim.seconds) << " ("
            << format_cycles(sim.cycles) << " cycles)\n"
            << sim.energy.summary() << "\n"
            << "power trace: " << trace.n_epochs << " epoch(s) of "
            << trace.epoch_cycles << " cycles; peak chip power "
            << Table::num(trace.peak_chip_watts(), 3) << " W, average "
            << Table::num(sim.energy.avg_watts, 3) << " W\n"
            << "energy per pixel: "
            << Table::num(sim.energy.total_j() /
                              static_cast<double>(ds.params.n_pulses * ds.params.n_range) * 1e9,
                          3)
            << " nJ\n"
            << sim.power.profile.table();

  const std::string csv_path = args.str("csv");
  if (args.has("csv") && csv_path.empty()) return usage();
  if (!csv_path.empty()) {
    ep::write_power_csv(csv_path, trace);
    std::cout << "power trace CSV written to " << csv_path << "\n";
  }

  const std::string heatmap_path = args.str("heatmap");
  if (args.has("heatmap") && heatmap_path.empty()) return usage();
  if (!heatmap_path.empty()) {
    ep::write_power_heatmap(heatmap_path, trace);
    std::cout << "core x epoch power heatmap written to " << heatmap_path
              << " (" << trace.n_cores << " x " << trace.n_epochs << ")\n";
  }

  if (!trace_path.empty()) {
    // collect_power already exported the power counter tracks into the
    // tracer, so the written trace carries chip/core power under the core
    // tracks.
    tracer.write_chrome_json(trace_path, sim.perf.cfg.clock_hz);
    std::cout << "trace written to " << trace_path << " ("
              << tracer.size() << " segments, power counter tracks: "
              << (1 + trace.n_cores) << ")\n";
  }

  const std::string metrics_path = args.str("metrics");
  if (args.has("metrics") && metrics_path.empty()) return usage();
  if (!metrics_path.empty()) {
    telemetry::RunManifest man("esarp_power");
    ep::fill_manifest(man, sim.perf, sim.energy);
    ep::fill_power_manifest(man, sim.power);
    man.add_result("energy_per_pixel",
                   sim.energy.total_j() /
                       static_cast<double>(ds.params.n_pulses * ds.params.n_range));
    man.add_workload("n_pulses", static_cast<double>(ds.params.n_pulses));
    man.add_workload("n_range", static_cast<double>(ds.params.n_range));
    man.add_workload("n_cores", static_cast<double>(opt.n_cores));
    man.add_workload("epoch_cycles",
                     static_cast<double>(chip_cfg.power.epoch_cycles));
    man.set_metrics(&sim.metrics);
    man.write(std::filesystem::path(metrics_path));
    std::cout << "metrics manifest written to " << metrics_path << "\n";
  }
  return 0;
}

/// Human-readable view of a run manifest written by --metrics or a bench.
int cmd_report(const Args& args) {
  const std::string in = args.str("in");
  if (in.empty()) return usage();
  const JsonValue doc = load_json_file(in);
  const JsonValue* schema = doc.find("schema");
  // Run and serve manifests share the chip/workload/results layout, so
  // the report renders any esarp manifest family.
  if (schema == nullptr || !schema->is_string() ||
      !telemetry::glob_match("esarp-*-manifest/*", schema->as_string()))
    throw ContractViolation(in + " is not an esarp manifest");

  const auto* tool = doc.find("tool");
  const auto* version = doc.find("version");
  Table t("run manifest: " +
          (tool != nullptr && tool->is_string() ? tool->as_string() : "?") +
          " (esarp " +
          (version != nullptr && version->is_string() ? version->as_string()
                                                      : "?") +
          ")");
  t.header({"Section", "Key", "Value"});
  for (const char* section : {"chip", "workload", "results"}) {
    const JsonValue* sec = doc.find(section);
    if (sec == nullptr || !sec->is_object()) continue;
    for (const auto& [key, v] : sec->as_object())
      t.row({section, key, v.is_number() ? Table::num(v.as_number(), 6)
                                         : std::string("?")});
  }
  const JsonValue* counters = doc.find_path("metrics.counters");
  const JsonValue* hists = doc.find_path("metrics.histograms");
  t.note("metrics: " +
         std::to_string(counters != nullptr && counters->is_object()
                            ? counters->as_object().size()
                            : 0) +
         " counters, " +
         std::to_string(hists != nullptr && hists->is_object()
                            ? hists->as_object().size()
                            : 0) +
         " histograms (use tools/esarp_compare to diff runs)");
  t.print(std::cout);
  return 0;
}

/// Parse `--fail core@cycle[,core@cycle...]` into fail-stop triggers.
std::vector<fault::FailStop> parse_fail_stops(const std::string& spec) {
  std::vector<fault::FailStop> stops;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t at = tok.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= tok.size())
      throw ContractViolation("bad --fail entry '" + tok +
                              "' (want core@cycle)");
    stops.push_back({std::stoi(tok.substr(0, at)),
                     static_cast<std::uint64_t>(
                         std::stoull(tok.substr(at + 1)))});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return stops;
}

/// Root-mean-square magnitude error between two equal-shape images.
double image_rmse(const Array2D<cf32>& a, const Array2D<cf32>& b) {
  ESARP_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(a.flat()[i] - b.flat()[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(std::max<std::size_t>(
                             a.size(), 1)));
}

/// Seeded fault-injection campaign (docs/fault-injection.md): run the
/// workload clean, run it again under the fault plan, and report the
/// recovery counters plus the numeric damage. Identical seeds produce
/// bit-identical fault schedules, so a chaos invocation is a reproducible
/// artifact — `fault.schedule_hash` in the metrics manifest witnesses it.
int cmd_chaos(const Args& args) {
  const std::string in = args.str("in");
  if (in.empty()) return usage();
  const sar::Dataset ds = sar::load_dataset(in);

  ep::ChipConfig cfg;
  cfg.check.enabled = args.has("check");
  fault::FaultPlan& plan = cfg.faults;
  plan.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  plan.dma_corrupt_rate = args.real("dma-corrupt", 0.0);
  plan.dma_drop_rate = args.real("dma-drop", 0.0);
  plan.noc_stall_rate = args.real("noc-stall", 0.0);
  plan.membits_rate = args.real("membits", 0.0);
  plan.resilient = !args.has("no-resilience");
  plan.fail_stops = parse_fail_stops(args.str("fail"));
  if (!plan.enabled()) {
    std::cerr << "chaos: no faults requested (set --dma-corrupt, "
                 "--dma-drop, --noc-stall, --membits, or --fail)\n";
    return usage();
  }
  const auto max_cycles = static_cast<ep::Cycles>(args.num("max-cycles", 0));

  fault::FaultSummary sum;
  bool degraded = false;
  ep::Cycles clean_cycles = 0;
  ep::Cycles fault_cycles = 0;
  double damage = 0.0;
  std::string damage_label;
  const telemetry::MetricsRegistry* metrics = nullptr;
  std::optional<core::FfbpSimResult> ffbp_faulted;
  std::optional<core::AfSimResult> af_faulted;

  if (args.has("autofocus")) {
    // Autofocus chaos: the 13-core MPMD pipeline over synthetic block
    // pairs (the dataset seeds the pair generator so campaigns are tied
    // to an input artifact like every other mode).
    af::AfParams p;
    Rng rng(plan.seed ^ ds.params.n_pulses);
    std::vector<af::BlockPair> pairs;
    const long n_pairs = args.num("pairs", 8);
    for (long i = 0; i < n_pairs; ++i)
      pairs.push_back(
          af::synthetic_block_pair(rng, p, rng.uniform_f(-0.5f, 0.5f)));
    core::AfMapOptions opt;
    opt.max_cycles = max_cycles;
    std::cerr << "chaos: clean autofocus MPMD reference run...\n";
    const auto clean = core::run_autofocus_mpmd(pairs, p, opt);
    std::cerr << "chaos: faulted run (seed " << plan.seed << ")...\n";
    af_faulted = core::run_autofocus_mpmd(pairs, p, opt, cfg);
    const auto& f = *af_faulted;
    sum = f.faults;
    degraded = f.degraded;
    clean_cycles = clean.cycles;
    fault_cycles = f.cycles;
    metrics = &f.metrics;
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i)
      for (std::size_t s = 0; s < clean.criteria[i].size(); ++s, ++n) {
        const double d = f.criteria[i][s] - clean.criteria[i][s];
        acc += d * d;
      }
    damage = std::sqrt(acc / static_cast<double>(std::max<std::size_t>(n, 1)));
    damage_label = "criterion RMSE vs clean";
  } else {
    core::FfbpMapOptions opt;
    opt.n_cores = static_cast<int>(args.num("cores", 16));
    opt.max_cycles = max_cycles;
    std::cerr << "chaos: clean FFBP reference run...\n";
    const auto clean = core::run_ffbp_epiphany(ds.data, ds.params, opt);
    std::cerr << "chaos: faulted run (seed " << plan.seed << ")...\n";
    ffbp_faulted = core::run_ffbp_epiphany(ds.data, ds.params, opt, cfg);
    const auto& f = *ffbp_faulted;
    sum = f.faults;
    degraded = f.degraded;
    clean_cycles = clean.cycles;
    fault_cycles = f.cycles;
    metrics = &f.metrics;
    damage = image_rmse(f.image, clean.image);
    damage_label = "image RMSE vs clean";
  }

  Table t("chaos campaign (seed " + std::to_string(plan.seed) +
          (plan.resilient ? "" : ", resilience OFF") + ")");
  t.header({"Counter", "Value"});
  t.row({"faults injected", Table::num(static_cast<double>(sum.injected), 0)});
  t.row({"faults detected", Table::num(static_cast<double>(sum.detected), 0)});
  t.row({"faults recovered", Table::num(static_cast<double>(sum.recovered), 0)});
  t.row({"transfer retries", Table::num(static_cast<double>(sum.retries), 0)});
  t.row({"repartitions", Table::num(static_cast<double>(sum.repartitions), 0)});
  t.row({"failed cores", Table::num(static_cast<double>(sum.failed_cores), 0)});
  t.row({"af windows dropped", Table::num(static_cast<double>(sum.af_windows_dropped), 0)});
  t.row({"af pairs dropped", Table::num(static_cast<double>(sum.af_pairs_dropped), 0)});
  t.row({"recovery cycles", Table::num(static_cast<double>(sum.recovery_cycles), 0)});
  t.row({"clean cycles", Table::num(static_cast<double>(clean_cycles), 0)});
  t.row({"faulted cycles", Table::num(static_cast<double>(fault_cycles), 0)});
  t.row({damage_label, Table::num(damage, 9)});
  {
    std::ostringstream hash;
    hash << std::hex << sum.schedule_hash;
    t.note("schedule hash " + hash.str() + (degraded ? "; DEGRADED" : "") +
           " (same seed + plan => same schedule)");
  }
  t.print(std::cout);

  const std::string metrics_path = args.str("metrics");
  if (args.has("metrics") && metrics_path.empty()) return usage();
  if (!metrics_path.empty() && metrics != nullptr) {
    telemetry::RunManifest man("esarp_chaos");
    if (ffbp_faulted)
      ep::fill_manifest(man, ffbp_faulted->perf, ffbp_faulted->energy);
    else
      ep::fill_manifest(man, af_faulted->perf, af_faulted->energy);
    man.add_workload("seed", static_cast<double>(plan.seed));
    man.add_workload("dma_corrupt_rate", plan.dma_corrupt_rate);
    man.add_workload("dma_drop_rate", plan.dma_drop_rate);
    man.add_workload("noc_stall_rate", plan.noc_stall_rate);
    man.add_workload("membits_rate", plan.membits_rate);
    man.add_workload("resilient", plan.resilient ? 1.0 : 0.0);
    man.add_workload("fail_stops", static_cast<double>(plan.fail_stops.size()));
    man.set_metrics(metrics);
    man.write(std::filesystem::path(metrics_path));
    std::cout << "metrics manifest written to " << metrics_path << "\n";
  }

  if (!plan.resilient && sum.failed_cores > 0) return kExitError;
  return kExitOk;
}

int cmd_analyze(const Args& args) {
  const std::string in = args.str("in");
  if (in.empty()) return usage();
  const sar::Dataset ds = sar::load_dataset(in);
  const auto img = sar::ffbp(ds.data, ds.params);
  const auto rep = sar::analyze_point_target(img.image.data);

  Table t("point-target analysis (FFBP image of " + in + ")");
  t.header({"Metric", "Range axis", "Azimuth axis"});
  t.row({"peak bin", Table::num(rep.range.peak_index, 2),
         Table::num(rep.azimuth.peak_index, 2)});
  t.row({"-3 dB width (bins)", Table::num(rep.range.width_3db, 2),
         Table::num(rep.azimuth.width_3db, 2)});
  t.row({"PSLR (dB)", Table::num(rep.range.pslr_db, 1),
         Table::num(rep.azimuth.pslr_db, 1)});
  t.row({"ISLR (dB)", Table::num(rep.range.islr_db, 1),
         Table::num(rep.azimuth.islr_db, 1)});
  t.note("image entropy " + Table::num(image_entropy(img.image.data), 2) +
         " bits, contrast " + Table::num(image_contrast(img.image.data), 2));
  t.print(std::cout);
  return 0;
}

/// Static mapping analysis (docs/static-analysis.md): build the declarative
/// descriptor of each requested mapping, run the legality checkers and the
/// analytic cost model, and report findings + predictions. No simulation
/// unless --validate, which also runs each mapping on the simulated chip
/// and records the prediction error in the manifest.
int cmd_lint(const Args& args) {
  const std::string which = args.str("mapping", "all");
  const auto pulses = static_cast<std::size_t>(args.num("pulses", 32));
  const auto range = static_cast<std::size_t>(args.num("range", 101));
  const int cores = static_cast<int>(args.num("cores", 16));
  const auto n_pairs = static_cast<std::size_t>(args.num("pairs", 4));
  const bool validate = args.has("validate");

  const sar::RadarParams p = sar::test_params(pulses, range);
  const af::AfParams afp;
  const af::IntegratedOptions aopt;

  // Simulation inputs, generated lazily: specs need none, --validate does.
  Array2D<cf32> data;
  std::vector<af::BlockPair> pairs;
  const auto raw_data = [&]() -> const Array2D<cf32>& {
    if (data.size() == 0)
      data = sar::simulate_compressed(p, sar::six_target_scene(p));
    return data;
  };
  const auto block_pairs = [&]() -> std::span<const af::BlockPair> {
    if (pairs.empty()) {
      Rng rng(1);
      for (std::size_t i = 0; i < n_pairs; ++i)
        pairs.push_back(
            af::synthetic_block_pair(rng, afp, rng.uniform_f(-0.5f, 0.5f)));
    }
    return pairs;
  };

  struct Entry {
    const char* key;
    analysis::MappingSpec spec;
    std::function<std::pair<ep::Cycles, double>()> simulate;
  };
  std::vector<Entry> entries;
  const auto want = [&](const char* key) {
    return which == "all" || which == key;
  };

  if (want("ffbp") || want("ffbp-db")) {
    core::FfbpMapOptions opt;
    opt.n_cores = cores;
    opt.prefetch = !args.has("no-prefetch");
    opt.double_buffer = which == "ffbp-db" || args.has("double-buffer");
    entries.push_back({opt.double_buffer ? "ffbp-db" : "ffbp",
                       core::describe_ffbp_mapping(p, opt), [&, opt] {
                         const auto sim =
                             core::run_ffbp_epiphany(raw_data(), p, opt);
                         return std::pair{sim.cycles, sim.energy.total_j()};
                       }});
  }
  if (want("ffbp-seq")) {
    core::FfbpMapOptions opt;
    opt.n_cores = 1;
    opt.prefetch = false;
    entries.push_back({"ffbp-seq", core::describe_ffbp_mapping(p, opt),
                       [&, opt] {
                         const auto sim =
                             core::run_ffbp_epiphany(raw_data(), p, opt);
                         return std::pair{sim.cycles, sim.energy.total_j()};
                       }});
  }
  if (want("ffbp-af")) {
    core::FfbpMapOptions opt;
    opt.n_cores = cores;
    opt.autofocus = &aopt;
    entries.push_back({"ffbp-af", core::describe_ffbp_mapping(p, opt),
                       [&, opt] {
                         const auto sim =
                             core::run_ffbp_epiphany(raw_data(), p, opt);
                         return std::pair{sim.cycles, sim.energy.total_j()};
                       }});
  }
  if (want("gbp")) {
    entries.push_back({"gbp", core::describe_gbp_mapping(p, cores), [&] {
                         const auto sim =
                             core::run_gbp_epiphany(raw_data(), p, cores);
                         return std::pair{sim.cycles, sim.energy.total_j()};
                       }});
  }
  for (const bool compact : {true, false}) {
    const char* key = compact ? "af-mpmd" : "af-mpmd-scattered";
    if (!want(key)) continue;
    core::AfMapOptions opt;
    opt.placement =
        compact ? core::AfPlacement::kCompact : core::AfPlacement::kScattered;
    entries.push_back({key, core::describe_autofocus_mpmd(n_pairs, afp, opt),
                       [&, opt] {
                         const auto sim =
                             core::run_autofocus_mpmd(block_pairs(), afp, opt);
                         return std::pair{sim.cycles, sim.energy.total_j()};
                       }});
  }
  if (want("af-seq")) {
    entries.push_back({"af-seq",
                       core::describe_autofocus_sequential(n_pairs, afp),
                       [&] {
                         const auto sim =
                             core::run_autofocus_sequential_epiphany(
                                 block_pairs(), afp);
                         return std::pair{sim.cycles, sim.energy.total_j()};
                       }});
  }
  if (entries.empty()) {
    std::cerr << "unknown --mapping: " << which << "\n";
    return usage();
  }

  std::vector<analysis::MappingReport> reports;
  for (auto& e : entries) {
    analysis::MappingReport rep;
    rep.name = e.spec.name;
    rep.family = e.spec.family;
    rep.cores = static_cast<int>(e.spec.cores.size());
    rep.findings = analysis::analyze(e.spec);
    rep.prediction = analysis::predict_cost(e.spec);
    if (validate && rep.findings.empty()) {
      const auto [sim_cycles, sim_joules] = e.simulate();
      rep.validated = true;
      rep.simulated_cycles = sim_cycles;
      rep.simulated_joules = sim_joules;
      const auto pred = static_cast<double>(rep.prediction.makespan);
      rep.cycle_error = std::abs(pred - static_cast<double>(sim_cycles)) /
                        static_cast<double>(std::max<ep::Cycles>(sim_cycles, 1));
      rep.energy_error =
          std::abs(rep.prediction.energy.total_j() - sim_joules) /
          std::max(sim_joules, 1e-12);
    }
    reports.push_back(std::move(rep));
  }

  analysis::write_console_report(std::cout, reports);
  const std::string json_path = args.str("json");
  if (args.has("json") && json_path.empty()) return usage();
  if (!json_path.empty()) {
    analysis::write_manifest(std::filesystem::path(json_path), reports);
    std::cout << "lint manifest written to " << json_path << "\n";
  }
  return analysis::total_findings(reports) == 0 ? kExitOk : kExitLintFindings;
}

/// SAR-as-a-service fleet runtime (docs/serving.md): replay an arrival
/// trace (pinned file or generated Poisson/bursty) through N simulated
/// chips with retry, migration and graceful degradation, optionally under
/// a fleet chaos campaign, and report latency percentiles / SLO
/// attainment / energy-per-image. Deterministic: same trace + seed =>
/// byte-identical --metrics manifest.
/// Usage error with a serve-specific message: all generator and policy
/// knobs are validated here with exit 2 — a bad flag value must never
/// reach an ESARP_EXPECTS contract abort (exit 4) or std::stod (exit 1).
int serve_usage_error(const std::string& msg) {
  std::cerr << "serve: " << msg << "\n";
  return usage();
}

int cmd_serve(const Args& args) {
  const std::string trace_path = args.str("trace");
  const std::string gen = args.str("gen");
  if (args.has("trace") && trace_path.empty()) return usage();
  if (trace_path.empty() && gen.empty()) {
    return serve_usage_error("need an input trace (--trace f.json) or a "
                             "generator (--gen poisson|bursty)");
  }

  serve::ArrivalTrace trace;
  serve::FleetConfig fc;
  try {
    if (trace_path.empty()) {
      serve::TraceParams tp;
      if (gen == "bursty") {
        tp.bursty = true;
      } else if (gen != "poisson") {
        return serve_usage_error("unknown --gen: " + gen +
                                 " (want poisson|bursty)");
      }
      const long n_jobs = args.num("jobs-count", 16);
      if (n_jobs < 1)
        return serve_usage_error("--jobs-count must be >= 1");
      tp.rate_hz = args.real("rate", 400.0);
      if (tp.rate_hz <= 0.0)
        return serve_usage_error("--rate must be > 0");
      tp.burst_mean = args.real("burst-mean", 4.0);
      if (tp.bursty && tp.burst_mean < 1.0)
        return serve_usage_error("--burst-mean must be >= 1");
      const long pulses = args.num("pulses", 64);
      const long range = args.num("range", 101);
      const long cores = args.num("cores", 16);
      if (pulses < 1 || range < 1 || cores < 1)
        return serve_usage_error("--pulses/--range/--cores must be >= 1");
      tp.n_jobs = static_cast<std::size_t>(n_jobs);
      tp.seed = static_cast<std::uint64_t>(args.num("seed", 1));
      tp.n_pulses = static_cast<std::size_t>(pulses);
      tp.n_range = static_cast<std::size_t>(range);
      tp.n_cores = static_cast<int>(cores);
      tp.algo = serve::algo_from_string(args.str("algo", "ffbp"));
      tp.deadline_s = args.real("deadline", 0.01);
      if (tp.deadline_s <= 0.0)
        return serve_usage_error("--deadline must be > 0");
      if (args.has("priority-mix")) {
        // "L,N,H" weights (normalized); e.g. --priority-mix 0.3,0.5,0.2
        const std::string mix = args.str("priority-mix");
        double w[3] = {0.0, 0.0, 0.0};
        std::istringstream ss(mix);
        std::string part;
        int n = 0;
        while (std::getline(ss, part, ',') && n < 3) w[n++] = std::stod(part);
        const double total = w[0] + w[1] + w[2];
        if (n != 3 || w[0] < 0.0 || w[1] < 0.0 || w[2] < 0.0 || total <= 0.0)
          return serve_usage_error(
              "--priority-mix wants three non-negative comma-separated "
              "weights low,normal,high (e.g. 0.3,0.5,0.2)");
        tp.frac_low = w[0] / total;
        tp.frac_high = w[2] / total;
      }
      tp.deadline_jitter = args.real("deadline-jitter", 0.0);
      if (tp.deadline_jitter < 0.0 || tp.deadline_jitter >= 1.0)
        return serve_usage_error("--deadline-jitter must be in [0, 1)");
      trace = serve::make_trace(tp);
    }

    fc.n_chips = static_cast<int>(args.num("chips", 4));
    fc.host_jobs = static_cast<int>(args.num("jobs", 1));
    fc.chaos.seed = static_cast<std::uint64_t>(args.num("seed", 1));
    fc.chaos.chip_kill_rate = args.real("chip-kill", 0.0);
    fc.chaos.dma_corrupt_rate = args.real("dma-corrupt", 0.0);
    fc.chaos.dma_drop_rate = args.real("dma-drop", 0.0);
    fc.chaos.membits_rate = args.real("membits", 0.0);
    fc.chaos.noc_stall_rate = args.real("noc-stall", 0.0);
    fc.policy.max_attempts = static_cast<int>(args.num("retry-max", 3));
    fc.policy.max_degrade = static_cast<int>(args.num("degrade-max", 2));
    fc.policy.backoff_base_s = args.real("backoff", 100e-6);
    fc.policy.timeout_factor = args.real("timeout-factor", 8.0);

    const std::string dispatch = args.str("dispatch", "edf");
    if (dispatch == "fifo") {
      fc.policy.dispatch = serve::DispatchOrder::kFifo;
    } else if (dispatch != "edf") {
      return serve_usage_error("unknown --dispatch: " + dispatch +
                               " (want edf|fifo)");
    }
    fc.policy.shed.enabled = args.has("shed");
    fc.policy.shed.deadline_factor = args.real("shed-factor", 1.0);
    if (fc.policy.shed.deadline_factor <= 0.0)
      return serve_usage_error("--shed-factor must be > 0");
    if (args.has("shed-priority")) {
      fc.policy.shed.max_shed_priority =
          serve::priority_from_string(args.str("shed-priority"));
    }
    fc.policy.hedge.enabled = args.has("hedge");
    fc.policy.hedge.margin_factor = args.real("hedge-margin", 2.0);
    if (fc.policy.hedge.margin_factor <= 0.0)
      return serve_usage_error("--hedge-margin must be > 0");
    if (args.has("hedge-priority")) {
      fc.policy.hedge.min_priority =
          serve::priority_from_string(args.str("hedge-priority"));
    }
    fc.policy.probation_clean_limit =
        static_cast<int>(args.num("probation", 0));
    if (fc.policy.probation_clean_limit < 0)
      return serve_usage_error("--probation must be >= 0");
  } catch (const std::invalid_argument& e) {
    return serve_usage_error(std::string("bad flag value: ") + e.what());
  } catch (const std::out_of_range& e) {
    return serve_usage_error(std::string("flag value out of range: ") +
                             e.what());
  }
  if (!trace_path.empty()) trace = serve::load_trace(trace_path);

  const std::string trace_out = args.str("trace-out");
  if (args.has("trace-out") && trace_out.empty()) return usage();
  if (!trace_out.empty()) {
    serve::save_trace(trace_out, trace);
    std::cout << "arrival trace written to " << trace_out << " ("
              << trace.jobs.size() << " jobs)\n";
  }

  if (fc.n_chips < 1)
    return serve_usage_error("--chips must be >= 1");
  if (fc.policy.max_attempts < 1)
    return serve_usage_error("--retry-max must be >= 1");
  if (fc.policy.max_degrade < 0)
    return serve_usage_error("--degrade-max must be >= 0");
  if (fc.policy.backoff_base_s < 0.0)
    return serve_usage_error("--backoff must be >= 0");
  if (fc.policy.timeout_factor < 0.0)
    return serve_usage_error("--timeout-factor must be >= 0");

  std::cerr << "serving " << trace.jobs.size() << " job(s) on "
            << fc.n_chips << " chip(s)"
            << (fc.chaos.enabled() ? " under chaos" : "") << "...\n";
  WallTimer timer;
  serve::Fleet fleet(fc);
  const serve::ServeReport rep = fleet.run(trace);
  const serve::ServeCounters& c = rep.counters;

  Table t("serve campaign (" + std::to_string(fc.n_chips) +
          " chips, seed " + std::to_string(fc.chaos.seed) + ")");
  t.header({"Metric", "Value"});
  t.row({"jobs met / late / degraded / shed",
         std::to_string(c.jobs_met) + " / " + std::to_string(c.jobs_late) +
             " / " + std::to_string(c.jobs_degraded) + " / " +
             std::to_string(c.jobs_shed)});
  t.row({"jobs lost", std::to_string(c.jobs_lost)});
  t.row({"SLO attainment", Table::num(rep.slo_attainment * 100.0, 1) + " %"});
  t.row({"latency p50 / p95 / p99",
         format_seconds(rep.latency_p50_s) + " / " +
             format_seconds(rep.latency_p95_s) + " / " +
             format_seconds(rep.latency_p99_s)});
  t.row({"throughput", format_rate(rep.throughput_jobs_per_s, "jobs")});
  t.row({"energy per image", Table::num(rep.energy_per_image_j * 1e3, 3) +
                                 " mJ"});
  t.row({"attempts / retries", std::to_string(c.attempts) + " / " +
                                   std::to_string(c.retries)});
  t.row({"migrations / degradations",
         std::to_string(c.migrations) + " / " +
             std::to_string(c.degradations)});
  t.row({"chip kills / timeouts / checksum fails",
         std::to_string(c.chip_kills) + " / " + std::to_string(c.timeouts) +
             " / " + std::to_string(c.checksum_failures)});
  if (fc.policy.hedge.enabled) {
    t.row({"hedges launched / wins / wasted",
           std::to_string(c.hedges_launched) + " / " +
               std::to_string(c.hedge_wins) + " / " +
               std::to_string(c.hedge_wasted)});
  }
  if (fc.policy.probation_clean_limit > 0) {
    t.row({"chip probations / recoveries",
           std::to_string(c.chip_probations) + " / " +
               std::to_string(c.chip_recoveries)});
  }
  t.row({"fleet makespan", format_seconds(rep.makespan_s)});
  std::size_t alive = 0;
  for (const serve::ChipStatus& cs : rep.chips)
    if (cs.health != serve::ChipHealth::kFailed) ++alive;
  t.row({"chips alive", std::to_string(alive) + " / " +
                            std::to_string(rep.chips.size())});
  {
    std::ostringstream hash;
    hash << std::hex << rep.schedule_hash;
    t.note("schedule hash " + hash.str() +
           " (same trace + seed => same campaign); host wall time " +
           format_seconds(timer.elapsed_s()));
  }
  t.print(std::cout);

  const std::string metrics_path = args.str("metrics");
  if (args.has("metrics") && metrics_path.empty()) return usage();
  if (!metrics_path.empty()) {
    telemetry::RunManifest man("esarp_serve");
    serve::fill_serve_manifest(man, fc, trace, rep);
    telemetry::MetricsRegistry reg;
    serve::fill_serve_metrics(reg, rep);
    man.set_metrics(&reg);
    man.write(std::filesystem::path(metrics_path));
    std::cout << "serve manifest written to " << metrics_path << "\n";
  }
  return kExitOk;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  if (!args.ok()) return usage();
  // Catch order matters: the most specific (most actionable) types first.
  // FaultUnrecovered and SimDeadlock are runtime_errors; ContractViolation
  // (which WatchdogExpired derives from) is a logic_error.
  try {
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "image") return cmd_image(args);
    if (cmd == "chip") return cmd_chip(args);
    if (cmd == "power") return cmd_power(args);
    if (cmd == "chaos") return cmd_chaos(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "report") return cmd_report(args);
    if (cmd == "lint") return cmd_lint(args);
    if (cmd == "serve") return cmd_serve(args);
  } catch (const fault::FaultUnrecovered& e) {
    std::cerr << "fault unrecovered: " << e.what() << "\n";
    return kExitFaultUnrecovered;
  } catch (const ep::SimDeadlock& e) {
    std::cerr << "deadlock: " << e.what() << "\n";
    return kExitDeadlock;
  } catch (const ContractViolation& e) {
    std::cerr << "contract violation: " << e.what() << "\n";
    return kExitContract;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
  return usage();
}
