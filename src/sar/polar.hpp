// Subaperture images on polar (range x angle) grids.
//
// FFBP state: at level k the aperture is divided into n_pulses/2^k
// subapertures of 2^k pulses; each carries a polar image of n_theta = 2^k
// angle bins over the fixed processed sector and n_range range bins. Total
// storage is constant across levels (n_pulses x n_range complex pixels),
// which is exactly why the paper can hold "two pulses worth" (16,016 B) of
// any level's contributing data in two 8 KB local-memory banks.
#pragma once

#include <cstddef>

#include "common/array2d.hpp"
#include "common/types.hpp"
#include "sar/params.hpp"

namespace esarp::sar {

struct SubapertureImage {
  std::size_t level = 0;       ///< number of merges applied
  std::size_t first_pulse = 0; ///< index of the first contributing pulse
  std::size_t n_pulses = 1;    ///< contributing pulses (= 2^level)
  double x_center = 0.0;       ///< along-track phase-centre position [m]
  Array2D<cf32> data;          ///< [n_theta x n_range]

  [[nodiscard]] std::size_t n_theta() const { return data.rows(); }
  [[nodiscard]] std::size_t n_range() const { return data.cols(); }
};

/// Angular-grid helpers for a subaperture at a given level.
struct PolarGrid {
  double theta_start;   ///< lower edge of the processed sector [rad]
  double dtheta;        ///< bin width [rad]
  std::size_t n_theta;
  double r0;            ///< range of bin 0 [m]
  double dr;            ///< range-bin spacing [m]
  std::size_t n_range;

  PolarGrid(const RadarParams& p, std::size_t n_theta_bins)
      : theta_start(p.theta_center_rad - 0.5 * p.theta_span_rad),
        dtheta(p.theta_span_rad / static_cast<double>(n_theta_bins)),
        n_theta(n_theta_bins), r0(p.near_range_m), dr(p.range_bin_m),
        n_range(p.n_range) {}

  /// Centre angle of bin i.
  [[nodiscard]] double theta_of(std::size_t i) const {
    return theta_start + (static_cast<double>(i) + 0.5) * dtheta;
  }
  /// Centre range of bin j.
  [[nodiscard]] double r_of(std::size_t j) const {
    return r0 + static_cast<double>(j) * dr;
  }
  /// Bin index containing angle theta, or -1 when outside the sector.
  [[nodiscard]] long theta_bin(double theta) const {
    const double f = (theta - theta_start) / dtheta;
    if (f < 0.0 || f >= static_cast<double>(n_theta)) return -1;
    return static_cast<long>(f);
  }
  /// Nearest range bin, or -1 when outside the swath.
  [[nodiscard]] long range_bin_nearest(double r) const {
    const double f = (r - r0) / dr;
    const long b = static_cast<long>(f + 0.5);
    if (f < -0.5 || b >= static_cast<long>(n_range)) return -1;
    return b;
  }
};

} // namespace esarp::sar
