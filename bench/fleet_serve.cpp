// Fleet degradation curve (docs/serving.md): offered load x chip-failure
// rate -> tail latency, SLO attainment and energy per image, on a 4-chip
// serve fleet replaying seeded Poisson traces. The interesting structure:
// at low load a chip kill only costs the killed job its retry, while past
// saturation the retry + migration traffic compounds queueing delay, so
// the p99 curve bends much harder under chaos than the mean does.
//
// The offered rates are expressed as multiples of fleet capacity, which
// is calibrated from a clean single-job campaign — the bench stays
// meaningful when the simulated chip gets faster. Everything is seeded:
// same build, same manifest, and CI diffs two back-to-back runs at zero
// tolerance (with the latency band pinned to 0).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "serve/fleet.hpp"
#include "serve/trace.hpp"

static int bench_body() {
  using namespace esarp;
  const bool fast = bench::fast_mode();
  constexpr int kChips = 4;
  constexpr std::uint64_t kSeed = 2026;

  serve::TraceParams base;
  base.n_jobs = fast ? 12 : 24;
  base.seed = kSeed;
  base.n_pulses = fast ? 32 : 64;
  base.n_range = fast ? 65 : 101;
  base.n_cores = 16;

  // Calibrate fleet capacity from one clean job, then express load points
  // as multiples of it. The deadline gives headroom for one retry at low
  // load but not for deep queueing.
  serve::FleetConfig calib_cfg;
  calib_cfg.n_chips = 1;
  serve::TraceParams one = base;
  one.n_jobs = 1;
  one.rate_hz = 1.0;
  const double service_s =
      serve::Fleet(calib_cfg).run(serve::make_trace(one)).latency_p50_s;
  const double capacity_hz = static_cast<double>(kChips) / service_s;
  base.deadline_s = 4.0 * service_s;

  struct Point {
    double load;      ///< offered rate / fleet capacity
    double kill_rate; ///< per-dispatch whole-chip fail-stop probability
  };
  std::vector<Point> points;
  for (const double load : {0.5, 1.0, 2.0})
    for (const double kill : {0.0, 0.05, 0.15}) points.push_back({load, kill});

  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "fleet serve: " << points.size() << " campaign(s) of "
            << base.n_jobs << " job(s) on " << kChips << " chip(s) ("
            << pool.jobs() << " host thread(s))...\n";
  WallTimer sweep_timer;
  auto reports = pool.run(points.size(), [&](std::size_t i) {
    serve::TraceParams tp = base;
    tp.rate_hz = points[i].load * capacity_hz;
    serve::FleetConfig cfg;
    cfg.n_chips = kChips;
    cfg.chaos.seed = kSeed + i;
    cfg.chaos.chip_kill_rate = points[i].kill_rate;
    cfg.chaos.dma_corrupt_rate = points[i].kill_rate > 0.0 ? 1e-6 : 0.0;
    cfg.host_jobs = 1; // outer sweep owns the parallelism
    return serve::Fleet(cfg).run(serve::make_trace(tp));
  });
  const double sweep_s = sweep_timer.elapsed_s();

  Table t("SAR-as-a-service degradation curve (" + std::to_string(kChips) +
          " chips, seed " + std::to_string(kSeed) + ")");
  t.header({"Load", "Kill rate", "p99 (ms)", "SLO", "Retry", "Migr.",
            "Degr.", "Kills", "mJ/image"});
  CsvWriter csv(bench::out_dir() / "fleet_serve.csv",
                {"load", "kill_rate", "latency_p99_s", "slo_attainment",
                 "retries", "migrations", "degradations", "chip_kills",
                 "energy_per_image_j"});

  telemetry::RunManifest man("fleet_serve");
  bool all_served = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& rep = reports[i];
    const auto& c = rep.counters;
    all_served = all_served && c.jobs_lost == 0 &&
                 c.jobs_met + c.jobs_late + c.jobs_degraded == c.jobs_total;
    t.row({Table::num(points[i].load, 2), Table::num(points[i].kill_rate, 2),
           Table::num(rep.latency_p99_s * 1e3, 3),
           Table::num(rep.slo_attainment, 3),
           Table::num(static_cast<double>(c.retries), 0),
           Table::num(static_cast<double>(c.migrations), 0),
           Table::num(static_cast<double>(c.degradations), 0),
           Table::num(static_cast<double>(c.chip_kills), 0),
           Table::num(rep.energy_per_image_j * 1e3, 4)});
    csv.row_numeric({points[i].load, points[i].kill_rate, rep.latency_p99_s,
                     rep.slo_attainment, static_cast<double>(c.retries),
                     static_cast<double>(c.migrations),
                     static_cast<double>(c.degradations),
                     static_cast<double>(c.chip_kills),
                     rep.energy_per_image_j});
    const std::string p = "p" + std::to_string(i) + ".";
    man.add_result(p + "latency_p99_s", rep.latency_p99_s);
    man.add_result(p + "slo_attainment", rep.slo_attainment);
    man.add_result(p + "energy_per_image_j", rep.energy_per_image_j);
    man.add_result(p + "retries", static_cast<double>(c.retries));
    man.add_result(p + "migrations", static_cast<double>(c.migrations));
    man.add_result(p + "degradations", static_cast<double>(c.degradations));
    man.add_result(p + "chip_kills", static_cast<double>(c.chip_kills));
    man.add_result(p + "schedule_hash_hi",
                   static_cast<double>(rep.schedule_hash >> 32));
    man.add_result(p + "schedule_hash_lo",
                   static_cast<double>(rep.schedule_hash & 0xffffffffULL));
  }

  // Headline: the saturated-but-surviving point (load 1.0, kill 0.1).
  const auto& head = reports[4];
  man.add_result("latency_p50_s", head.latency_p50_s);
  man.add_result("latency_p99_s", head.latency_p99_s);
  man.add_result("slo_attainment", head.slo_attainment);
  man.add_result("throughput_jobs_per_s", head.throughput_jobs_per_s);
  man.add_result("energy_per_image_j", head.energy_per_image_j);
  man.add_workload("n_jobs", static_cast<double>(base.n_jobs));
  man.add_workload("n_chips", static_cast<double>(kChips));
  man.add_workload("n_pulses", static_cast<double>(base.n_pulses));
  man.add_workload("n_range", static_cast<double>(base.n_range));
  man.add_workload("seed", static_cast<double>(kSeed));
  man.add_workload("service_s", service_s);
  man.add_workload("deadline_s", base.deadline_s);
  bench::write_manifest(man);

  t.note("rates are multiples of calibrated fleet capacity (" +
         Table::num(capacity_hz, 1) + " jobs/s); deadline 4x service time");
  t.note(all_served ? "every campaign terminated every job: zero lost jobs "
                      "across " +
                          std::to_string(points.size()) + " grid points"
                    : "WARNING: a campaign lost jobs");
  t.note("host sweep wall time " + Table::num(sweep_s, 2) + " s");
  t.print(std::cout);
  return all_served ? 0 : 1;
}

int main() { return esarp::bench::guarded_main("fleet_serve", bench_body); }
