// Job model for the SAR-as-a-service fleet runtime (docs/serving.md).
//
// A JobSpec is one image-formation request: scene size, algorithm, core
// count and a latency deadline, released into the fleet at arrival_s.
// The scheduler (fleet.hpp) guarantees every accepted job reaches exactly
// one terminal JobState — it never silently drops work; an unservable
// fleet aborts the whole campaign with fault::FaultUnrecovered instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace esarp::serve {

enum class Algo : std::uint8_t {
  kFfbp, ///< fast factorized back-projection (the paper's mapping)
  kGbp,  ///< global back-projection (SPMD baseline)
};

[[nodiscard]] constexpr const char* to_string(Algo a) {
  switch (a) {
    case Algo::kFfbp: return "ffbp";
    case Algo::kGbp: return "gbp";
  }
  return "?";
}

/// Parse "ffbp" / "gbp"; throws std::invalid_argument otherwise.
[[nodiscard]] inline Algo algo_from_string(const std::string& s) {
  if (s == "ffbp") return Algo::kFfbp;
  if (s == "gbp") return Algo::kGbp;
  throw std::invalid_argument("unknown algorithm: " + s);
}

/// One image-formation request in an arrival trace.
struct JobSpec {
  int id = 0;
  double arrival_s = 0.0; ///< release time, fleet clock (seconds)
  std::size_t n_pulses = 64;
  std::size_t n_range = 101;
  Algo algo = Algo::kFfbp;
  int n_cores = 16;
  double deadline_s = 0.05; ///< latency budget relative to arrival_s
};

/// Terminal state of one served job.
enum class JobState : std::uint8_t {
  kMet,      ///< full-quality image delivered within the deadline
  kLate,     ///< full-quality image, past the deadline (queueing/retries)
  kDegraded, ///< reduced-quality image (aperture halved per degrade level)
};

[[nodiscard]] constexpr const char* to_string(JobState s) {
  switch (s) {
    case JobState::kMet: return "met";
    case JobState::kLate: return "late";
    case JobState::kDegraded: return "degraded";
  }
  return "?";
}

/// Everything the fleet records about one completed job.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kMet;
  double start_s = 0.0;    ///< first dispatch (fleet clock)
  double finish_s = 0.0;   ///< successful completion (fleet clock)
  double latency_s = 0.0;  ///< finish_s - spec.arrival_s
  int attempts = 1;        ///< dispatches, including the successful one
  int migrations = 0;      ///< dispatches onto a different chip than before
  int degrade_level = 0;   ///< aperture halvings applied (0 = full quality)
  int chip = -1;           ///< chip that delivered the image
  std::uint64_t sim_cycles = 0; ///< chip cycles of the winning attempt
  double energy_j = 0.0;        ///< chip energy of the winning attempt
  std::uint64_t image_checksum = 0; ///< FNV-1a of the delivered image bytes
};

} // namespace esarp::serve
