// Autofocus integrated into the FFBP factorisation — the complete loop the
// paper's Fig. 4 illustrates: before each subaperture merge, several
// flight-path compensations are tested on area-of-interest blocks of the
// two contributing images; the one maximising the correlation criterion
// (eq. 6) is applied to the merge. Used when GPS-based motion compensation
// is insufficient or missing (paper Section II-A; Hellsten et al. [6]).
#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"
#include "autofocus/af_params.hpp"
#include "autofocus/workload.hpp"
#include "hostmodel/host_model.hpp"
#include "sar/ffbp.hpp"
#include "sar/params.hpp"
#include "sar/polar.hpp"

namespace esarp::af {

struct IntegratedOptions {
  /// Criterion workload per tested compensation.
  AfParams criterion = default_criterion();
  /// First merge level at which autofocus runs (earlier subapertures are
  /// too small to carry a measurable shift; merges below this level are
  /// plain eq.-5 merges).
  std::size_t first_level = 3;
  /// Area-of-interest blocks sampled per merge pair; the estimated shifts
  /// are combined by criterion-weighted averaging.
  std::size_t blocks_per_merge = 3;
  /// FFBP kernel options for the merges themselves. Autofocus estimates
  /// sub-bin shifts, so it needs subaperture images free of
  /// nearest-neighbour quantisation artifacts: the cubic (Neville) kernel
  /// is the default here even though plain FFBP defaults to NN.
  sar::FfbpOptions ffbp{.interp = sar::Interp::kCubic};
  /// Minimum criterion gain (best / zero-shift) required before a
  /// correction is applied; below it the path is assumed error-free and
  /// the merge runs uncompensated. Guards against the small estimator
  /// bias on already-focused data.
  double min_gain = 1.25;

  [[nodiscard]] static AfParams default_criterion() {
    AfParams p;
    p.shift_candidates.clear();
    for (int i = -6; i <= 6; ++i)
      p.shift_candidates.push_back(0.25f * static_cast<float>(i));
    // For shift *estimation* the beam path is kept level: a tilted path
    // converts angular quantisation offsets between the children into
    // apparent range shifts and biases the estimate.
    p.tilt = 0.0f;
    return p;
  }
};

/// One applied correction (for diagnostics / the bench table).
struct MergeCorrection {
  std::size_t level = 0;      ///< merge level the correction applied to
  std::size_t pair_index = 0; ///< which subaperture pair within the level
  float shift_bins = 0.0f;    ///< applied compensation [range bins]
  double criterion_gain = 1.0; ///< best criterion / zero-shift criterion
};

struct IntegratedResult {
  sar::SubapertureImage image;
  std::vector<MergeCorrection> corrections;
  OpCounts ops;                ///< merges + criterion sweeps
  host::HostWork host_work;
  std::size_t sweeps_run = 0;  ///< total criterion sweeps executed
};

/// Ops charged for projecting one area-of-interest block pair out of the
/// children (project_contribution_blocks' tally term).
[[nodiscard]] OpCounts project_block_ops(const AfParams& criterion);

/// Static op count of one estimate_pair_shift call that lands `n_blocks`
/// area-of-interest blocks: per block, one pair projection plus one
/// criterion sweep. Children smaller than the criterion block land zero
/// blocks and cost zero ops. The static cost model
/// (src/core/mapping_desc.cpp) relies on this matching the tally
/// estimate_pair_shift accumulates at runtime.
[[nodiscard]] OpCounts estimate_pair_ops(const AfParams& criterion,
                                         std::size_t n_blocks);

/// Run FFBP with per-merge autofocus. With an error-free flight path the
/// estimated shifts are ~0 and the output approaches the plain ffbp()
/// image; with a path error it recovers most of the lost focus.
[[nodiscard]] IntegratedResult
ffbp_with_autofocus(const Array2D<cf32>& data, const sar::RadarParams& p,
                    const IntegratedOptions& opt = {});

/// Select up to `count` bright, non-overlapping area-of-interest block
/// origins (theta_bin, range_bin) in a subaperture image. Exposed for
/// tests and for the MPMD pipeline driver.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
select_aoi_blocks(const sar::SubapertureImage& img, const AfParams& p,
                  std::size_t count);

/// Shift estimate for one merge pair (exposed so the on-chip integrated
/// pipeline runs the identical estimator).
struct PairEstimate {
  float shift_bins = 0.0f;     ///< raw criterion-weighted estimate
  double gain = 1.0;           ///< best criterion / zero-shift criterion
  /// The compensation actually applied under the confidence gate.
  [[nodiscard]] float applied(double min_gain) const {
    return gain >= min_gain ? shift_bins : 0.0f;
  }
};

/// Estimate the inter-child shift for a merge pair from AOI blocks of the
/// trailing child (selection, world-coordinate mapping, projection,
/// criterion sweeps, gating — the full estimator of ffbp_with_autofocus).
/// `ops`/`sweeps` accumulate the counted work when non-null.
[[nodiscard]] PairEstimate estimate_pair_shift(
    const sar::SubapertureImage& a, const sar::SubapertureImage& b,
    const sar::RadarParams& p, const IntegratedOptions& opt,
    OpCounts* ops = nullptr, std::size_t* sweeps = nullptr);

/// Back-project the two children's *contributions* onto a block of the
/// parent polar grid (origin `parent_theta_bin`, `parent_range_bin`, size
/// from `p_af`). The resulting f- / f+ subimages are aligned when the
/// flight path is error-free and relatively shifted in range by a path
/// error — exactly the pair the focus criterion (eq. 6) compares ("the
/// images to correlate ... are assumed to be only small subimages" of the
/// contributing subapertures). `tally` gets the projection work.
[[nodiscard]] BlockPair project_contribution_blocks(
    const sar::SubapertureImage& a, const sar::SubapertureImage& b,
    const sar::RadarParams& p, const AfParams& p_af,
    std::size_t parent_theta_bin, std::size_t parent_range_bin,
    OpCounts* tally = nullptr);

} // namespace esarp::af
