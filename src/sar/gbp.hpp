// Global Back-Projection (GBP) — the exact time-domain reference.
//
// Every output pixel coherently sums all pulses with exact range and
// carrier-phase compensation. O(n_pulses) work per pixel versus FFBP's
// O(log n_pulses); the paper uses GBP as the image-quality reference that
// FFBP's simplified interpolation degrades (Fig. 7(b) vs 7(c,d)).
#pragma once

#include <cmath>

#include "common/array2d.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"
#include "hostmodel/host_model.hpp"
#include "sar/params.hpp"
#include "sar/polar.hpp"

namespace esarp::sar {

/// Per-(pixel, pulse) work of the GBP inner loop: range via sqrt, phase via
/// sin+cos, complex rotate-accumulate, nearest-bin indexing.
inline constexpr OpCounts kGbpContribOps{
    .fadd = 6, .fmul = 6, .fma = 4, .fcmp = 2, .ialu = 8,
    .branch = 1, .load = 2, .store = 0,
};

/// Grid constants of the GBP inner loop, shared by the host reference and
/// the simulated SPMD kernel so both compute identical contributions.
struct GbpGrid {
  float r0;
  float inv_dr;
  int n_range;
  double k_phase; ///< 4*pi/lambda
};

/// One pulse's contribution to the pixel at slant-plane position (px, py):
/// exact range, nearest-bin sample, exact carrier-phase compensation.
/// Returns zero when the range falls outside the swath.
inline cf32 gbp_contribution(float px, float py, float pulse_x,
                             const cf32* pulse_row, const GbpGrid& g) {
  const float dx = px - pulse_x;
  const float range = std::sqrt(dx * dx + py * py);
  const float bf = (range - g.r0) * g.inv_dr;
  const int bin = static_cast<int>(bf + 0.5f);
  if (bf < -0.5f || bin >= g.n_range) return {};
  const double phase =
      std::fmod(g.k_phase * static_cast<double>(range), 2.0 * kPi);
  const cf32 rot{static_cast<float>(std::cos(phase)),
                 static_cast<float>(std::sin(phase))};
  return pulse_row[bin] * rot;
}

struct GbpResult {
  SubapertureImage image; ///< on the same final polar grid as FFBP
  OpCounts ops;
  host::HostWork host_work;
};

/// Back-project `data` ([n_pulses x n_range] pulse-compressed samples) onto
/// the full-resolution polar grid. `azimuth_decimation` > 1 computes every
/// k-th angular bin only (others zero) to bound runtime for quick looks.
[[nodiscard]] GbpResult gbp(const Array2D<cf32>& data, const RadarParams& p,
                            std::size_t azimuth_decimation = 1);

} // namespace esarp::sar
