// Property-based tests: randomised sweeps over simulator and algorithm
// invariants that must hold for any input.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "epiphany/energy.hpp"
#include "epiphany/machine.hpp"
#include "sar/ffbp.hpp"
#include "sar/merge_kernel.hpp"
#include "sar/scene.hpp"

namespace esarp {
namespace {

// ---------------------------------------------------------------- channels

class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFuzz, FifoOrderAndCompleteDeliveryUnderRandomTiming) {
  // One producer, one consumer, random capacity and random compute delays
  // on both sides: every message arrives, in order, exactly once.
  Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.below(6);
  const int n_messages = 20 + static_cast<int>(rng.below(60));
  std::vector<std::uint64_t> producer_delays, consumer_delays;
  for (int i = 0; i < n_messages; ++i) {
    producer_delays.push_back(rng.below(200));
    consumer_delays.push_back(rng.below(200));
  }

  ep::Machine m;
  auto chan = m.make_channel<int>(/*consumer=*/5, capacity);
  std::vector<int> received;

  m.launch(0, [&](ep::CoreCtx& ctx) -> ep::Task {
    for (int i = 0; i < n_messages; ++i) {
      if (producer_delays[i] > 0)
        co_await ctx.compute({.ialu = producer_delays[i]});
      co_await chan->send(ctx, i);
    }
  });
  m.launch(5, [&](ep::CoreCtx& ctx) -> ep::Task {
    for (int i = 0; i < n_messages; ++i) {
      received.push_back(co_await chan->recv(ctx));
      if (consumer_delays[i] > 0)
        co_await ctx.compute({.ialu = consumer_delays[i]});
    }
  });
  m.run();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(n_messages));
  for (int i = 0; i < n_messages; ++i) EXPECT_EQ(received[i], i);
  EXPECT_EQ(chan->stats().messages, static_cast<std::uint64_t>(n_messages));
  EXPECT_EQ(chan->pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------- barriers

class BarrierFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BarrierFuzz, NoOvertakingAcrossGenerations) {
  // Random per-core work between barrier crossings: after each crossing,
  // every core must have completed the same number of iterations.
  Rng rng(GetParam() * 7919);
  const int parties = 2 + static_cast<int>(rng.below(14));
  const int iters = 4;

  ep::Machine m;
  auto bar = m.make_barrier(parties);
  std::vector<int> progress(parties, 0);
  std::vector<bool> ok(parties, true);

  for (int c = 0; c < parties; ++c) {
    const std::uint64_t work = 10 + rng.below(500);
    m.launch(c, [&, c, work](ep::CoreCtx& ctx) -> ep::Task {
      for (int it = 0; it < iters; ++it) {
        co_await ctx.compute({.fadd = work * static_cast<std::uint64_t>(
                                                 1 + (c + it) % 3)});
        progress[c] = it + 1;
        co_await bar->arrive_and_wait(ctx);
        // Immediately after release, nobody may be a full iteration ahead
        // or behind.
        for (int other = 0; other < parties; ++other)
          if (progress[other] < it + 1) ok[c] = false;
      }
    });
  }
  m.run();
  for (int c = 0; c < parties; ++c) EXPECT_TRUE(ok[c]) << "core " << c;
  EXPECT_EQ(bar->generation(), static_cast<std::uint64_t>(iters));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierFuzz, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------- NoC

TEST(NocProperties, TransferTimeMonotonicInBytesAndDistance) {
  ep::ChipConfig cfg;
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    ep::Noc noc(cfg);
    const ep::Coord src{static_cast<int>(rng.below(4)),
                        static_cast<int>(rng.below(4))};
    const ep::Coord dst{static_cast<int>(rng.below(4)),
                        static_cast<int>(rng.below(4))};
    if (src == dst) continue;
    const std::size_t small = 8 + rng.below(64) * 8;
    const std::size_t big = small + 8 + rng.below(512) * 8;
    EXPECT_LE(noc.probe(src, dst, small, 0, ep::Mesh::kOnChipWrite),
              noc.probe(src, dst, big, 0, ep::Mesh::kOnChipWrite));
  }
}

TEST(NocProperties, ProbeNeverReservesCapacity) {
  ep::Noc noc(ep::ChipConfig{});
  const auto t0 = noc.probe({0, 0}, {3, 3}, 8000, 0, ep::Mesh::kRead);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(noc.probe({0, 0}, {3, 3}, 8000, 0, ep::Mesh::kRead), t0);
  EXPECT_EQ(noc.stats_total().transfers, 0u);
}

TEST(NocProperties, ContentionNeverSpeedsThingsUp) {
  // A transfer issued after background traffic can only be slower.
  ep::ChipConfig cfg;
  ep::Noc quiet(cfg), busy(cfg);
  for (int i = 0; i < 20; ++i)
    busy.transfer({0, 0}, {0, 3}, 4096, 0, ep::Mesh::kOnChipWrite);
  EXPECT_GE(busy.probe({0, 1}, {0, 2}, 256, 0, ep::Mesh::kOnChipWrite),
            quiet.probe({0, 1}, {0, 2}, 256, 0, ep::Mesh::kOnChipWrite));
}

// ------------------------------------------------------------ merge kernel

class MergeGeometryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeGeometryFuzz, AlwaysMatchesExactTrigonometry) {
  Rng rng(GetParam() * 104729);
  for (int trial = 0; trial < 500; ++trial) {
    const double d = rng.uniform(0.5, 300.0);
    const double r = rng.uniform(10.0 * d, 9000.0);
    const double theta = rng.uniform(1.2, 1.94); // around broadside
    const double px = r * std::cos(theta);
    const double py = r * std::sin(theta);

    const float cr = 2.0f * static_cast<float>(d) *
                     fastmath::poly_cos(static_cast<float>(theta));
    const sar::MergeGeom g = sar::merge_geometry(
        static_cast<float>(r), cr, static_cast<float>(d * d),
        static_cast<float>(1.0 / (2.0 * d)));

    const double r1_ref = std::hypot(px + d, py);
    const double r2_ref = std::hypot(px - d, py);
    EXPECT_NEAR(g.r1 / r1_ref, 1.0, 2e-4) << "d=" << d << " r=" << r;
    EXPECT_NEAR(g.r2 / r2_ref, 1.0, 2e-4);
    EXPECT_NEAR(g.theta1, std::atan2(py, px + d), 5e-3);
    EXPECT_NEAR(g.theta2, std::atan2(py, px - d), 5e-3);
    // Triangle inequality sanity.
    EXPECT_LE(std::abs(g.r1 - g.r2), 2.0f * static_cast<float>(d) + 1e-2f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeGeometryFuzz,
                         ::testing::Values(1, 2, 3));

// ------------------------------------------------------------------- FFBP

TEST(FfbpProperties, LinearInTheInputData) {
  // Back-projection is a linear operator: ffbp(a + b) ~= ffbp(a) + ffbp(b)
  // (up to float summation order).
  const auto p = sar::test_params(16, 51);
  Rng rng(5);
  Array2D<cf32> a(16, 51), b(16, 51), sum(16, 51);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)};
    b.data()[i] = {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)};
    sum.data()[i] = a.data()[i] + b.data()[i];
  }
  const auto ia = sar::ffbp(a, p);
  const auto ib = sar::ffbp(b, p);
  const auto isum = sar::ffbp(sum, p);
  Array2D<cf32> recombined(16, 51);
  for (std::size_t i = 0; i < recombined.size(); ++i)
    recombined.data()[i] = ia.image.data.data()[i] + ib.image.data.data()[i];
  EXPECT_LT(relative_rmse(isum.image.data, recombined), 1e-5);
}

TEST(FfbpProperties, AmplitudeScalingScalesImage) {
  const auto p = sar::test_params(16, 51);
  const auto data = sar::simulate_compressed(p, sar::six_target_scene(p));
  Array2D<cf32> scaled(16, 51);
  for (std::size_t i = 0; i < data.size(); ++i)
    scaled.data()[i] = 3.0f * data.data()[i];
  const auto i1 = sar::ffbp(data, p);
  const auto i3 = sar::ffbp(scaled, p);
  EXPECT_NEAR(peak_magnitude(i3.image.data) / peak_magnitude(i1.image.data),
              3.0, 1e-3);
}

TEST(FfbpProperties, AzimuthMirrorSymmetry) {
  // Mirroring the scene in azimuth mirrors the image (up to grid parity).
  const auto p = sar::test_params(32, 101);
  sar::Scene s1, s2;
  s1.targets = {{10.0, p.near_range_m + 50.0 * p.range_bin_m, 1.0f}};
  s2.targets = {{-10.0, p.near_range_m + 50.0 * p.range_bin_m, 1.0f}};
  const auto i1 = sar::ffbp(sar::simulate_compressed(p, s1), p);
  const auto i2 = sar::ffbp(sar::simulate_compressed(p, s2), p);

  auto peak_row = [](const Array2D<cf32>& img) {
    std::size_t best_i = 0, best_j = 0;
    double best = -1;
    for (std::size_t i = 0; i < img.rows(); ++i)
      for (std::size_t j = 0; j < img.cols(); ++j)
        if (std::abs(img(i, j)) > best) {
          best = std::abs(img(i, j));
          best_i = i;
          best_j = j;
        }
    return std::pair(best_i, best_j);
  };
  const auto [r1, c1] = peak_row(i1.image.data);
  const auto [r2, c2] = peak_row(i2.image.data);
  EXPECT_EQ(c1, c2); // same range
  // Mirrored azimuth position, up to the floor-quantised angular binning
  // (the containing-bin convention is not mirror-symmetric).
  EXPECT_NEAR(static_cast<double>(r1 + r2),
              static_cast<double>(p.n_pulses - 1), 4.0);
}

// ------------------------------------------------------------------ energy

TEST(EnergyProperties, MonotonicInWork) {
  double prev = 0.0;
  for (std::uint64_t n : {1000u, 10000u, 100000u, 1000000u}) {
    ep::Machine m;
    m.launch(0, [n](ep::CoreCtx& ctx) -> ep::Task {
      co_await ctx.compute({.fma = n});
    });
    m.run();
    const double j = ep::compute_energy(m.report()).total_j();
    EXPECT_GT(j, prev);
    prev = j;
  }
}

TEST(EnergyProperties, ParallelSameWorkCostsNoMoreEnergyThanSequential) {
  // Energy ~ work: spreading identical total work over 16 cores must not
  // increase dynamic energy much (it shortens static/idle time).
  auto joules = [](int cores) {
    ep::Machine m;
    const std::uint64_t per = 1600000 / static_cast<std::uint64_t>(cores);
    for (int c = 0; c < cores; ++c)
      m.launch(c, [per](ep::CoreCtx& ctx) -> ep::Task {
        co_await ctx.compute({.fma = per});
      });
    m.run();
    return ep::compute_energy(m.report()).total_j();
  };
  const double seq = joules(1);
  const double par = joules(16);
  EXPECT_LT(par, seq * 1.05);
}

} // namespace
} // namespace esarp
