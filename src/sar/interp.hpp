// Interpolation kernels shared by FFBP merge variants and the autofocus
// criterion calculation (which the paper bases on "cubic interpolation
// based on Neville's algorithm" [16]).
//
// All kernels operate on complex samples at uniform unit-spaced nodes; the
// denominators of Neville's recurrence are then small integer constants,
// folded into multiplications (the same strength reduction a compiler
// applies on both target architectures).
#pragma once

#include "common/fastmath.hpp"
#include "common/opcounts.hpp"
#include "common/types.hpp"

namespace esarp::sar {

/// Linear interpolation between y0 (node 0) and y1 (node 1) at t in [0,1].
inline cf32 lerp(cf32 y0, cf32 y1, float t) {
  return y0 + (y1 - y0) * t;
}
/// 2 complex sub/add + scalar*complex: 2 fadd + 2 fma per call.
inline constexpr OpCounts kLerpOps{.fadd = 2, .fma = 2, .load = 4, .store = 2};

/// Neville's algorithm on four samples y[0..3] at nodes {0,1,2,3},
/// evaluated at t (typically in [1,2] for centred interpolation).
///
/// Each recurrence step
///   P_i <- ((t - x_{i+k}) P_i - (t - x_i) P_{i+k}) / (x_i - x_{i+k})
/// has a constant integer denominator (-1, -2, -3), applied as a constant
/// multiply.
inline cf32 neville4(const cf32 y[4], float t) {
  const float t0 = t;        // t - 0
  const float t1 = t - 1.0f;
  const float t2 = t - 2.0f;
  const float t3 = t - 3.0f;

  // Level 1 (k = 1): denominators x_i - x_{i+1} = -1.
  cf32 p0 = (y[0] * t1 - y[1] * t0) * -1.0f;
  cf32 p1 = (y[1] * t2 - y[2] * t1) * -1.0f;
  cf32 p2 = (y[2] * t3 - y[3] * t2) * -1.0f;
  // Level 2 (k = 2): denominators -2.
  p0 = (p0 * t2 - p1 * t0) * -0.5f;
  p1 = (p1 * t3 - p2 * t1) * -0.5f;
  // Level 3 (k = 3): denominator -3.
  p0 = (p0 * t3 - p1 * t0) * (-1.0f / 3.0f);
  return p0;
}
/// Work of one neville4 call: 4 node offsets (fadd); 6 recurrence combos,
/// each combining two complex values with two scalar weights and a constant
/// scale: per combo 4 fmul + 2 fma + 2 fmul(scale) counted as 6 fmul + 2 fma.
inline constexpr OpCounts kNeville4Ops{
    .fadd = 4,
    .fmul = 6 * 4, // weight products + constant scales
    .fma = 6 * 2,  // fused subtract-accumulate of the weighted pair
    .ialu = 6,
    .load = 8,  // four complex nodes
    .store = 2, // result
};

/// Criterion inner step (paper eq. 6): |f-|^2 * |f+|^2 accumulated.
inline float criterion_term(cf32 fm, cf32 fp) {
  namespace fmth = esarp::fastmath;
  return fmth::norm2(fm.real(), fm.imag()) *
         fmth::norm2(fp.real(), fp.imag());
}
inline constexpr OpCounts kCriterionTermOps =
    2 * fastmath::kNorm2Ops +
    OpCounts{.fadd = 1, .fmul = 1, .load = 4}; // product + accumulate

} // namespace esarp::sar
