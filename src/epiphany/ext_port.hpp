// Off-chip interface: the eLink + SDRAM timing model.
//
// All external-memory traffic funnels through one chip-edge port with
// 8 GB/s of total bandwidth (ChipConfig::elink_bytes_per_cycle at 1 GHz) —
// the paper's "total off-chip bandwidth is 8 GB/sec", 64x less than the
// aggregate on-chip bandwidth. Reads stall the issuing core for a full
// round trip; writes are posted (single-cycle issue) and drain through the
// port asynchronously, which is exactly the read/write asymmetry the
// paper's FFBP analysis leans on.
#pragma once

#include <cstdint>
#include <span>

#include "epiphany/config.hpp"
#include "epiphany/noc.hpp"
#include "epiphany/trace.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::ep {

class PowerSampler;

struct ExtPortStats {
  std::uint64_t read_transactions = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_transactions = 0;
  std::uint64_t write_bytes = 0;
};

class ExtPort {
public:
  /// `tracer` (optional) receives eLink queue-depth counter tracks when
  /// tracing is enabled; `metrics` (optional) receives the stall-duration
  /// and backpressure histograms. Both must outlive the port.
  ExtPort(const ChipConfig& cfg, Noc& noc, Tracer* tracer = nullptr,
          telemetry::MetricsRegistry* metrics = nullptr)
      : cfg_(cfg), noc_(noc),
        // eLink attached at the east edge, middle row (board layout).
        port_coord_{cfg.rows / 2, cfg.cols - 1}, tracer_(tracer) {
    if (metrics != nullptr) {
      read_stall_hist_ = &metrics->cycle_histogram("ext.read.stall_cycles");
      write_backpressure_hist_ =
          &metrics->cycle_histogram("ext.write.backpressure_cycles");
      dma_queue_hist_ = &metrics->cycle_histogram("ext.dma.queue_cycles");
    }
    if (tracer_ != nullptr) {
      read_backlog_track_ = tracer_->counter_track("ext-port/read-backlog");
      write_backlog_track_ = tracer_->counter_track("ext-port/write-backlog");
    }
  }

  [[nodiscard]] Coord coord() const { return port_coord_; }

  /// Blocking CPU read of `transactions` independent transactions of
  /// `bytes_each` from SDRAM by `core`. Returns the completion time; the
  /// issuing core stalls until then. Transactions do not pipeline (the core
  /// blocks on each one), so latency is paid per transaction.
  Cycles blocking_read(Coord core, std::uint64_t transactions,
                       std::size_t bytes_each, Cycles now);

  /// Bulk DMA read of `bytes` into `core`'s local memory. Pays one latency,
  /// then streams at eLink bandwidth. Returns the completion time (the core
  /// does not stall; await the returned time to synchronise).
  Cycles dma_read(Coord core, std::size_t bytes, Cycles now);

  /// Burst of independent DMA read segments issued back-to-back at `now`.
  /// Cycle-for-cycle equivalent to calling dma_read once per segment (each
  /// segment pays its own setup and queues on the read channel) but costed
  /// analytically in one call, so a kernel can await a whole prefetch
  /// burst with a single scheduler event. Returns the completion time of
  /// the last segment.
  Cycles dma_read_burst(Coord core, std::span<const std::size_t> seg_bytes,
                        Cycles now);

  /// Posted write of `bytes` from `core` to SDRAM. Returns the cycle at
  /// which the *core* may continue (issue time plus any backpressure stall
  /// when the port backlog exceeds the buffering allowance).
  Cycles posted_write(Coord core, std::size_t bytes, Cycles now);

  /// Bulk DMA write; like dma_read but on the write path.
  Cycles dma_write(Coord core, std::size_t bytes, Cycles now);

  /// Attach the power-telemetry sampler (nullptr = none; owned by the
  /// Machine). eLink bytes are charged to the initiating core over the
  /// SDRAM-channel occupancy window — pure host-side accounting.
  void set_power_sampler(PowerSampler* sampler) { power_ = sampler; }

  [[nodiscard]] const ExtPortStats& stats() const { return stats_; }
  [[nodiscard]] const BusyResource& read_channel() const { return read_chan_; }
  [[nodiscard]] const BusyResource& write_channel() const {
    return write_chan_;
  }

private:
  /// Buffering (store buffers + mesh FIFOs) a posted write can hide behind
  /// before the producing core feels backpressure.
  static constexpr Cycles kPostedBacklogAllowance = 64;

  /// Sample the backlog (cycles until the channel drains) on `track`.
  void sample_backlog(int track, const BusyResource& chan, Cycles now) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    const double backlog = chan.free_at > now
                               ? static_cast<double>(chan.free_at - now)
                               : 0.0;
    tracer_->counter(track, now, backlog);
  }

  /// Power attribution id of the initiating core (row-major, like
  /// Machine::id_of).
  [[nodiscard]] int core_id(Coord core) const {
    return core.row * cfg_.cols + core.col;
  }

  ChipConfig cfg_;
  Noc& noc_;
  Coord port_coord_;
  Tracer* tracer_ = nullptr;
  PowerSampler* power_ = nullptr;
  telemetry::Histogram* read_stall_hist_ = nullptr;
  telemetry::Histogram* write_backpressure_hist_ = nullptr;
  telemetry::Histogram* dma_queue_hist_ = nullptr;
  int read_backlog_track_ = -1;
  int write_backlog_track_ = -1;
  BusyResource read_chan_;  ///< SDRAM read channel occupancy
  BusyResource write_chan_; ///< SDRAM write channel occupancy
  ExtPortStats stats_;
};

} // namespace esarp::ep
