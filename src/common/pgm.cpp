#include "common/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace esarp {

namespace {

/// Map a complex image to display values in [0,1] with the given options.
Array2D<float> to_display(const Array2D<cf32>& img, const PgmOptions& opts) {
  Array2D<float> out(img.rows(), img.cols());
  double peak = 0.0;
  for (const auto& px : img.flat())
    peak = std::max(peak, static_cast<double>(std::abs(px)));
  if (peak <= 0.0) return out;

  const double floor_db = -opts.dynamic_range_db;
  for (std::size_t r = 0; r < img.rows(); ++r) {
    for (std::size_t c = 0; c < img.cols(); ++c) {
      const double mag = std::abs(img(r, c)) / peak;
      double v;
      if (opts.log_scale) {
        const double db = mag > 0.0 ? 20.0 * std::log10(mag)
                                    : -std::numeric_limits<double>::infinity();
        v = (db - floor_db) / -floor_db; // floor_db -> 0, 0 dB -> 1
      } else {
        v = mag;
      }
      v = std::clamp(v, 0.0, 1.0);
      if (opts.invert) v = 1.0 - v;
      out(r, c) = static_cast<float>(v);
    }
  }
  return out;
}

std::size_t write_pgm_bytes(const std::filesystem::path& path,
                            const Array2D<float>& norm01) {
  std::ofstream f(path, std::ios::binary);
  ESARP_EXPECTS(f.is_open());
  f << "P5\n" << norm01.cols() << ' ' << norm01.rows() << "\n255\n";
  std::vector<unsigned char> row(norm01.cols());
  for (std::size_t r = 0; r < norm01.rows(); ++r) {
    for (std::size_t c = 0; c < norm01.cols(); ++c) {
      row[c] = static_cast<unsigned char>(
          std::lround(std::clamp(norm01(r, c), 0.0f, 1.0f) * 255.0f));
    }
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  f.flush();
  ESARP_ENSURES(f.good());
  return norm01.size() + 15; // header is ~15 bytes; exact size unimportant
}

} // namespace

std::size_t write_pgm(const std::filesystem::path& path,
                      const Array2D<cf32>& img, const PgmOptions& opts) {
  return write_pgm_bytes(path, to_display(img, opts));
}

std::size_t write_pgm(const std::filesystem::path& path,
                      const Array2D<float>& img, bool invert) {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (float v : img.flat()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  Array2D<float> norm(img.rows(), img.cols());
  const float span = hi > lo ? hi - lo : 1.0f;
  for (std::size_t r = 0; r < img.rows(); ++r)
    for (std::size_t c = 0; c < img.cols(); ++c) {
      float v = (img(r, c) - lo) / span;
      norm(r, c) = invert ? 1.0f - v : v;
    }
  return write_pgm_bytes(path, norm);
}

std::string ascii_render(const Array2D<cf32>& img, std::size_t cols,
                         double dynamic_range_db) {
  static constexpr char ramp[] = " .:-=+*#%@";
  constexpr std::size_t levels = sizeof(ramp) - 2;
  if (img.empty() || cols == 0) return {};

  PgmOptions opts;
  opts.dynamic_range_db = dynamic_range_db;
  const Array2D<float> disp = to_display(img, opts);

  cols = std::min(cols, img.cols());
  // Terminal cells are ~2x taller than wide; halve row density.
  const std::size_t rows =
      std::max<std::size_t>(1, img.rows() * cols / img.cols() / 2);

  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t rr = 0; rr < rows; ++rr) {
    for (std::size_t cc = 0; cc < cols; ++cc) {
      // Max-pool the source cell so point targets stay visible.
      const std::size_t r0 = rr * img.rows() / rows;
      const std::size_t r1 = std::max(r0 + 1, (rr + 1) * img.rows() / rows);
      const std::size_t c0 = cc * img.cols() / cols;
      const std::size_t c1 = std::max(c0 + 1, (cc + 1) * img.cols() / cols);
      float v = 0.0f;
      for (std::size_t r = r0; r < r1 && r < disp.rows(); ++r)
        for (std::size_t c = c0; c < c1 && c < disp.cols(); ++c)
          v = std::max(v, disp(r, c));
      out += ramp[static_cast<std::size_t>(v * static_cast<float>(levels))];
    }
    out += '\n';
  }
  return out;
}

} // namespace esarp
