// Per-core simulation state: local store, performance counters, status.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/opcounts.hpp"
#include "epiphany/config.hpp"
#include "epiphany/local_memory.hpp"

namespace esarp::ep {

enum class CoreState : std::uint8_t {
  kIdle,        ///< launched but not yet started
  kRunning,
  kWaitChannel, ///< blocked in Channel::send/recv
  kWaitBarrier,
  kDone,
  kFailed, ///< fail-stop fault observed; no further simulated work
};

[[nodiscard]] constexpr const char* to_string(CoreState s) {
  switch (s) {
    case CoreState::kIdle: return "idle";
    case CoreState::kRunning: return "running";
    case CoreState::kWaitChannel: return "wait-channel";
    case CoreState::kWaitBarrier: return "wait-barrier";
    case CoreState::kDone: return "done";
    case CoreState::kFailed: return "failed";
  }
  return "?";
}

struct CoreCounters {
  Cycles busy = 0;         ///< cycles spent in compute blocks
  Cycles ext_stall = 0;    ///< cycles stalled on blocking external reads
  Cycles dma_wait = 0;     ///< cycles waiting for DMA completion
  Cycles chan_wait = 0;    ///< cycles blocked on channel send/recv
  Cycles barrier_wait = 0; ///< cycles blocked in barriers
  Cycles finish_time = 0;  ///< cycle at which the core program returned

  OpCounts ops; ///< accumulated arithmetic/memory work

  std::uint64_t ext_read_bytes = 0;
  std::uint64_t ext_write_bytes = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msg_bytes_sent = 0;

  [[nodiscard]] Cycles total_wait() const {
    return ext_stall + dma_wait + chan_wait + barrier_wait;
  }
};

class Core {
public:
  Core(int id, Coord coord, const ChipConfig& cfg)
      : id_(id), coord_(coord), mem_(cfg.local_mem_bytes, cfg.local_banks) {}

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Coord coord() const { return coord_; }
  [[nodiscard]] LocalMemory& mem() { return mem_; }
  [[nodiscard]] const LocalMemory& mem() const { return mem_; }

  CoreCounters counters;
  CoreState state = CoreState::kIdle;

  /// Live span nesting (pushed/popped by CoreCtx::begin_span/end_span,
  /// independent of tracing or checking) so deadlock and watchdog
  /// diagnostics can say which phase each blocked core was in.
  std::vector<std::string> spans;

private:
  int id_;
  Coord coord_;
  LocalMemory mem_;
};

} // namespace esarp::ep
