// The SAR-as-a-service fleet runtime (docs/serving.md): N simulated
// Epiphany chips serving an arrival trace of image-formation jobs with
// robustness as the first-class concern.
//
// Design in one paragraph: the fleet clock is a discrete-event loop over
// {arrival, attempt-completion, retry-release} instants. At each instant
// ready jobs are dispatched to free chips — earliest absolute deadline
// first within descending priority class by default (DispatchOrder::kEdf;
// kFifo restores release-order) — each dispatch runs one whole job on one
// simulated chip under a per-attempt fault plan derived deterministically
// from (campaign seed, job id, attempt, chip), and each attempt is
// bounded by a watchdog (timeout_factor x the memoized fault-free
// makespan) and verified by an FNV checksum against the fault-free image
// — the whole-job generalization of the per-transfer retry/verify loop in
// src/epiphany/resilient.hpp. Failed attempts (chip fail-stop, timeout,
// checksum mismatch, unrecovered faults) re-enter the queue with
// exponential backoff; after max_attempts at one quality level the job
// degrades (aperture halved -> one fewer FFBP merge level) instead of
// being dropped. Overload control layers on top: ShedPolicy estimates
// each queued job's wait from the memoized clean makespans and retires
// already-doomed sheddable jobs with an explicit JobState::kShed record;
// HedgePolicy duplicates a running attempt onto a free chip when the
// job's deadline is near (first success wins, the loser is cancelled and
// accounted); probation lets a kDegraded chip earn back kHealthy after N
// consecutive clean attempts. A job is lost only by aborting the entire
// campaign with fault::FaultUnrecovered (exit code 5) — zero-lost-jobs
// is an invariant, not a metric, and a shed is an explicit terminal
// record, never a silent drop.
//
// Determinism contract: every scheduling decision, fault roll and
// simulated outcome is a pure function of (trace, FleetConfig). Attempts
// dispatched at the same instant run under host::SweepRunner, whose
// index-order determinism makes host_jobs > 1 bit-identical to the
// sequential schedule. ServeReport and the serve manifest contain no
// wall-clock values, so two same-seed campaigns produce byte-identical
// manifests — the property the serve-smoke CI job pins with `cmp`.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/array2d.hpp"
#include "common/types.hpp"
#include "epiphany/config.hpp"
#include "serve/job.hpp"
#include "serve/trace.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace esarp::serve {

/// Fleet-level chaos campaign: per-dispatch whole-chip kill probability
/// plus the transfer-fault rates forwarded into each attempt's FaultPlan.
struct ChaosPlan {
  std::uint64_t seed = 1;
  /// Probability that a given dispatch's chip fail-stops mid-job (the
  /// kill cycle lands uniformly in 10..90% of the job's fault-free
  /// makespan). The chip is then kFailed for the rest of the campaign.
  double chip_kill_rate = 0.0;
  double dma_corrupt_rate = 0.0;
  double dma_drop_rate = 0.0;
  double membits_rate = 0.0;
  double noc_stall_rate = 0.0;

  [[nodiscard]] bool enabled() const {
    return chip_kill_rate > 0.0 || dma_corrupt_rate > 0.0 ||
           dma_drop_rate > 0.0 || membits_rate > 0.0 || noc_stall_rate > 0.0;
  }
};

enum class ChipHealth : std::uint8_t { kHealthy, kDegraded, kFailed };

[[nodiscard]] constexpr const char* to_string(ChipHealth h) {
  switch (h) {
    case ChipHealth::kHealthy: return "healthy";
    case ChipHealth::kDegraded: return "degraded";
    case ChipHealth::kFailed: return "failed";
  }
  return "?";
}

/// Queue discipline for released jobs competing for free chips.
enum class DispatchOrder : std::uint8_t {
  kEdf,  ///< priority class descending, then earliest absolute deadline
         ///< (arrival_s + deadline_s), then job id — the default
  kFifo, ///< release time, then job id (PR 8's original order)
};

[[nodiscard]] constexpr const char* to_string(DispatchOrder d) {
  switch (d) {
    case DispatchOrder::kEdf: return "edf";
    case DispatchOrder::kFifo: return "fifo";
  }
  return "?";
}

/// Admission control: at every scheduling instant the fleet estimates
/// each queued job's finish time from the memoized clean makespans
/// (virtually packing the queue onto the chips' estimated free times, in
/// dispatch order) and sheds jobs that are already doomed — estimated
/// finish past deadline_factor x the absolute deadline — if their
/// priority class is at or below max_shed_priority. Every shed is an
/// explicit JobState::kShed terminal record and a jobs_shed count.
struct ShedPolicy {
  bool enabled = false;
  double deadline_factor = 1.0; ///< doomed when est_finish > factor x abs
                                ///< deadline; > 1 sheds later, < 1 earlier
  Priority max_shed_priority = Priority::kLow; ///< classes <= this shed
};

/// Hedged attempts: when a running job's remaining deadline budget drops
/// below margin_factor x its clean service time and a chip is free, a
/// duplicate attempt launches there (once per job lifetime). The first
/// successful attempt wins — ties resolve by launch order, original
/// first — and every sibling attempt is cancelled at the win instant and
/// counted (hedge_wasted); a hedge that delivers counts hedge_wins.
struct HedgePolicy {
  bool enabled = false;
  double margin_factor = 2.0; ///< hedge when deadline slack < factor x
                              ///< clean service time
  Priority min_priority = Priority::kNormal; ///< classes >= this hedge
};

/// Robustness policy: retry budget, backoff shape, degradation ladder,
/// plus the overload-control layer (dispatch order, shedding, hedging,
/// chip probation).
struct ServePolicy {
  int max_attempts = 3;     ///< dispatches per quality level before degrading
  int max_degrade = 2;      ///< aperture halvings before the campaign aborts
  double backoff_base_s = 100e-6; ///< retry n is released base * 2^n after
                                  ///< the failed attempt finishes
  double timeout_factor = 8.0;    ///< per-attempt watchdog, x clean makespan
  /// Detected faults on one chip (since its last recovery) before its
  /// health drops to kDegraded (it then only takes jobs when no healthy
  /// chip is free).
  std::uint64_t health_fault_limit = 64;
  DispatchOrder dispatch = DispatchOrder::kEdf;
  ShedPolicy shed;
  HedgePolicy hedge;
  /// Chip probation: a kDegraded chip earns back kHealthy after this many
  /// consecutive clean attempts (successful, zero detected faults); any
  /// failed attempt or detected fault resets the streak. 0 disables
  /// recovery (PR 8 behavior: degraded is forever).
  int probation_clean_limit = 0;
};

struct FleetConfig {
  int n_chips = 4;
  ep::ChipConfig chip; ///< per-chip configuration (faults field is ignored;
                       ///< each attempt installs its own derived plan)
  ServePolicy policy;
  ChaosPlan chaos;
  /// Host worker threads for attempts dispatched at the same fleet
  /// instant (host::SweepRunner; <= 0 picks hardware_concurrency). Has no
  /// effect on results — only on host wall time.
  int host_jobs = 1;
  /// Starting health per chip (tests use this to pin degraded-chip
  /// routing). Empty = all healthy; entries must be kHealthy or
  /// kDegraded, and the size must equal n_chips when non-empty.
  std::vector<ChipHealth> initial_health;
};

/// Per-chip health and utilization, fed by per-attempt FaultSummary and
/// watchdog outcomes, plus the probation circuit-breaker counters.
struct ChipStatus {
  ChipHealth health = ChipHealth::kHealthy;
  std::uint64_t attempts = 0;       ///< dispatches onto this chip
  std::uint64_t jobs_completed = 0; ///< successful attempts
  std::uint64_t faults_detected = 0; ///< cumulative over the campaign
  /// Detected faults since the last recovery — this window (not the
  /// cumulative count) trips the health_fault_limit circuit breaker.
  /// Identical to faults_detected while probation is disabled.
  std::uint64_t fault_window = 0;
  /// Consecutive clean attempts while on probation (kDegraded); reaching
  /// probation_clean_limit restores kHealthy.
  int consecutive_clean = 0;
  std::uint64_t probations = 0; ///< health drops kHealthy -> kDegraded
  std::uint64_t recoveries = 0; ///< probations served: kDegraded -> kHealthy
  double busy_s = 0.0;    ///< simulated seconds spent executing attempts
  double energy_j = 0.0;  ///< simulated energy of completed attempts
  double failed_at_s = -1.0; ///< fleet time of the fail-stop (-1 = alive)
};

/// Campaign counters (all deterministic, all surfaced in the manifest).
struct ServeCounters {
  std::uint64_t jobs_total = 0;
  std::uint64_t jobs_met = 0;
  std::uint64_t jobs_late = 0;
  std::uint64_t jobs_degraded = 0;
  std::uint64_t jobs_lost = 0; ///< always 0 by construction (see header)
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t migrations = 0;
  std::uint64_t degradations = 0;
  std::uint64_t chip_kills = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t jobs_shed = 0;        ///< admission-control terminations
  std::uint64_t hedges_launched = 0;  ///< duplicate attempts started
  std::uint64_t hedge_wins = 0;       ///< hedge attempt delivered the job
  std::uint64_t hedge_wasted = 0;     ///< hedge cancelled or beaten
  std::uint64_t hedge_cancelled = 0;  ///< attempts cut short by a winner
  std::uint64_t chip_probations = 0;  ///< kHealthy -> kDegraded transitions
  std::uint64_t chip_recoveries = 0;  ///< kDegraded -> kHealthy transitions
};

struct ServeReport {
  std::vector<JobRecord> jobs; ///< by job id
  std::vector<ChipStatus> chips;
  ServeCounters counters;
  double makespan_s = 0.0; ///< last completion (fleet clock)
  /// Latency order statistics over *delivered* jobs (shed jobs have no
  /// delivery latency); all zero when every job was shed.
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_mean_s = 0.0;
  double latency_max_s = 0.0;
  double throughput_jobs_per_s = 0.0; ///< jobs_total / makespan_s
  double energy_total_j = 0.0;        ///< winning attempts only
  double energy_per_image_j = 0.0;    ///< over delivered images only
  /// Fraction of jobs delivered full-quality within their deadline
  /// (denominator is jobs_total: shed jobs count against the SLO).
  double slo_attainment = 0.0;
  /// Worst relative error of the analytic cost model (src/analysis)
  /// against the memoized clean makespans that admission control packs
  /// with — the cross-check that the wait estimator is trustworthy. Only
  /// computed when shedding is enabled; 0 otherwise.
  double shed_model_max_rel_err = 0.0;
  /// FNV-1a over every job's terminal record and every attempt outcome —
  /// the campaign-level reproducibility witness (equal seeds, equal hash).
  std::uint64_t schedule_hash = 0;
};

/// Nearest-rank percentile (q in (0, 1]) of an unsorted sample.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Exponential-backoff release delay for retry number `attempts_total`
/// (1-based count of dispatches so far): base * 2^(attempts_total - 1),
/// with the shift clamped at 20 so pathological retry streaks cannot
/// overflow the doubling (attempts_total > 21 all wait base * 2^20).
[[nodiscard]] double backoff_delay_s(double base_s, int attempts_total);

class Fleet {
public:
  explicit Fleet(FleetConfig cfg);

  /// Serve the whole trace; returns when every job has a terminal state.
  /// Throws fault::FaultUnrecovered when the fleet cannot make progress
  /// (all chips failed with jobs outstanding, or a job exhausted every
  /// retry at the deepest degradation level).
  [[nodiscard]] ServeReport run(const ArrivalTrace& trace);

private:
  struct CleanRef {
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    double energy_j = 0.0;
    std::uint64_t checksum = 0;
    /// |analytic makespan - simulated| / simulated, filled lazily by
    /// model_rel_err() for the shed-policy cross-check (-1 = not yet).
    double model_rel_err = -1.0;
  };
  struct SimKey {
    std::size_t pulses, range;
    int algo, cores;
    bool operator<(const SimKey& o) const;
  };

  const Array2D<cf32>& scene_data(std::size_t pulses, std::size_t range);
  const CleanRef& clean_ref(const SimKey& key);
  /// Cross-check one memoized clean makespan against the src/analysis
  /// cost model; returns (and caches) the relative cycle error.
  double model_rel_err(const SimKey& key);

  FleetConfig cfg_;
  std::map<std::pair<std::size_t, std::size_t>, Array2D<cf32>> data_cache_;
  std::map<SimKey, CleanRef> clean_cache_;
};

/// Fill `m` with the campaign's chip/workload/results sections and tag it
/// "esarp-serve-manifest/2" (full key list in docs/serving.md). Adds no
/// wall-clock values: same-seed manifests are byte-identical.
void fill_serve_manifest(telemetry::RunManifest& m, const FleetConfig& cfg,
                         const ArrivalTrace& trace, const ServeReport& rep);

/// Dump the campaign into `reg` as serve.* counters/gauges (per-chip keys
/// labeled {chip=N}) for --metrics style snapshots.
void fill_serve_metrics(telemetry::MetricsRegistry& reg,
                        const ServeReport& rep);

} // namespace esarp::serve
