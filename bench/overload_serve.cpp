// Overload-control policy sweep (docs/serving.md "Overload control"):
// offered load x dispatch/shedding/hedging policy -> SLO attainment, shed
// and late counts, tail latency — on a 4-chip fleet replaying seeded
// bursty traces with heterogeneous deadlines and a low/normal/high
// priority mix. The interesting structure: below saturation every policy
// looks the same, but past it FIFO burns chip time on jobs that are
// already doomed while EDF + admission control spends the same capacity
// on jobs that can still meet their deadlines — so the SLO curves cross
// hard at overload, which this bench asserts (and CI gates).
//
// Offered rates are multiples of calibrated fleet capacity (same scheme
// as fleet_serve.cpp), so the bench stays meaningful when the simulated
// chip gets faster. Everything is seeded and deterministic: same build,
// same manifest, zero-tolerance CI diffs.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "serve/fleet.hpp"
#include "serve/trace.hpp"

static int bench_body() {
  using namespace esarp;
  const bool fast = bench::fast_mode();
  constexpr int kChips = 4;
  constexpr std::uint64_t kSeed = 2027;

  serve::TraceParams base;
  base.n_jobs = fast ? 32 : 64;
  base.bursty = true;
  base.burst_mean = 4.0;
  base.seed = kSeed;
  base.n_pulses = fast ? 32 : 64;
  base.n_range = fast ? 65 : 101;
  base.n_cores = 16;
  base.frac_low = 0.3;
  base.frac_high = 0.2;
  base.deadline_jitter = 0.7;

  // Calibrate fleet capacity from one clean job. The deadline (3x the
  // mean service time, spread by the jitter) tolerates a short queue but
  // not a deep one — the regime where dispatch order and admission
  // control actually matter.
  serve::FleetConfig calib_cfg;
  calib_cfg.n_chips = 1;
  serve::TraceParams one = base;
  one.n_jobs = 1;
  one.bursty = false;
  one.rate_hz = 1.0;
  const double service_s =
      serve::Fleet(calib_cfg).run(serve::make_trace(one)).latency_p50_s;
  const double capacity_hz = static_cast<double>(kChips) / service_s;
  base.deadline_s = 3.0 * service_s;

  struct Policy {
    const char* name;
    serve::DispatchOrder dispatch;
    bool shed;
    bool hedge;
  };
  const std::vector<Policy> policies = {
      {"fifo", serve::DispatchOrder::kFifo, false, false},
      {"edf", serve::DispatchOrder::kEdf, false, false},
      {"edf+shed", serve::DispatchOrder::kEdf, true, false},
      {"edf+shed+hedge", serve::DispatchOrder::kEdf, true, true},
  };
  const std::vector<double> loads = {0.8, 1.4, 2.0};

  struct Point {
    double load;
    std::size_t policy;
  };
  std::vector<Point> points;
  for (const double load : loads)
    for (std::size_t p = 0; p < policies.size(); ++p)
      points.push_back({load, p});

  host::SweepRunner pool(bench::sweep_jobs());
  std::cerr << "overload serve: " << points.size() << " campaign(s) of "
            << base.n_jobs << " job(s) on " << kChips << " chip(s) ("
            << pool.jobs() << " host thread(s))...\n";
  WallTimer sweep_timer;
  auto reports = pool.run(points.size(), [&](std::size_t i) {
    serve::TraceParams tp = base;
    tp.rate_hz = points[i].load * capacity_hz;
    const Policy& pol = policies[points[i].policy];
    serve::FleetConfig cfg;
    cfg.n_chips = kChips;
    cfg.chaos.seed = kSeed;
    cfg.policy.dispatch = pol.dispatch;
    cfg.policy.shed.enabled = pol.shed;
    cfg.policy.hedge.enabled = pol.hedge;
    cfg.host_jobs = 1; // outer sweep owns the parallelism
    return serve::Fleet(cfg).run(serve::make_trace(tp));
  });
  const double sweep_s = sweep_timer.elapsed_s();

  Table t("Overload-control policy sweep (" + std::to_string(kChips) +
          " chips, seed " + std::to_string(kSeed) + ")");
  t.header({"Load", "Policy", "SLO", "Met", "Late", "Shed", "p99 (us)",
            "Hedges", "Wins"});
  CsvWriter csv(bench::out_dir() / "overload_serve.csv",
                {"load", "policy", "slo_attainment", "jobs_met", "jobs_late",
                 "jobs_shed", "latency_p99_s", "hedges_launched",
                 "hedge_wins", "hedge_wasted"});

  telemetry::RunManifest man("overload_serve");
  bool accounted = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& rep = reports[i];
    const auto& c = rep.counters;
    // The zero-lost invariant, extended: a shed is an explicit terminal
    // state, so the four terminal counters must still tile the trace.
    accounted = accounted && c.jobs_lost == 0 &&
                c.jobs_met + c.jobs_late + c.jobs_degraded + c.jobs_shed ==
                    c.jobs_total;
    const Policy& pol = policies[points[i].policy];
    t.row({Table::num(points[i].load, 2), pol.name,
           Table::num(rep.slo_attainment, 3),
           Table::num(static_cast<double>(c.jobs_met), 0),
           Table::num(static_cast<double>(c.jobs_late), 0),
           Table::num(static_cast<double>(c.jobs_shed), 0),
           Table::num(rep.latency_p99_s * 1e6, 1),
           Table::num(static_cast<double>(c.hedges_launched), 0),
           Table::num(static_cast<double>(c.hedge_wins), 0)});
    csv.row({Table::num(points[i].load, 2), pol.name,
             Table::num(rep.slo_attainment, 6),
             Table::num(static_cast<double>(c.jobs_met), 0),
             Table::num(static_cast<double>(c.jobs_late), 0),
             Table::num(static_cast<double>(c.jobs_shed), 0),
             Table::num(rep.latency_p99_s, 9),
             Table::num(static_cast<double>(c.hedges_launched), 0),
             Table::num(static_cast<double>(c.hedge_wins), 0),
             Table::num(static_cast<double>(c.hedge_wasted), 0)});
    const std::string p =
        "l" + Table::num(points[i].load, 1) + "." + pol.name + ".";
    man.add_result(p + "slo_attainment", rep.slo_attainment);
    man.add_result(p + "jobs_met", static_cast<double>(c.jobs_met));
    man.add_result(p + "jobs_late", static_cast<double>(c.jobs_late));
    man.add_result(p + "jobs_shed", static_cast<double>(c.jobs_shed));
    man.add_result(p + "latency_p99_s", rep.latency_p99_s);
    man.add_result(p + "hedges_launched",
                   static_cast<double>(c.hedges_launched));
    man.add_result(p + "hedge_wins", static_cast<double>(c.hedge_wins));
    man.add_result(p + "hedge_wasted", static_cast<double>(c.hedge_wasted));
    man.add_result(p + "schedule_hash_hi",
                   static_cast<double>(rep.schedule_hash >> 32));
    man.add_result(p + "schedule_hash_lo",
                   static_cast<double>(rep.schedule_hash & 0xffffffffULL));
  }

  // The headline claim: at the saturated point (load 1.4 — overloaded but
  // recoverable), EDF + admission control strictly beats FIFO/no-shed on
  // SLO attainment. This is the assertion CI gates (exit 1 here fails the
  // bench step). The deepest point stays in the table ungated: past ~2x
  // capacity almost every job is doomed on arrival and no dispatch order
  // can buy the SLO back — shedding then only trades late for shed.
  const std::size_t sat_row = 1 * policies.size();
  const double fifo_slo = reports[sat_row].slo_attainment;
  const double shed_slo = reports[sat_row + 2].slo_attainment;
  const bool crossed = shed_slo > fifo_slo;
  man.add_result("overload_fifo_slo", fifo_slo);
  man.add_result("overload_edf_shed_slo", shed_slo);
  man.add_result("shed_model_max_rel_err",
                 reports[sat_row + 2].shed_model_max_rel_err);
  man.add_workload("n_jobs", static_cast<double>(base.n_jobs));
  man.add_workload("n_chips", static_cast<double>(kChips));
  man.add_workload("n_pulses", static_cast<double>(base.n_pulses));
  man.add_workload("n_range", static_cast<double>(base.n_range));
  man.add_workload("seed", static_cast<double>(kSeed));
  man.add_workload("service_s", service_s);
  man.add_workload("deadline_s", base.deadline_s);
  man.add_workload("deadline_jitter", base.deadline_jitter);
  bench::write_manifest(man);

  t.note("rates are multiples of calibrated fleet capacity (" +
         Table::num(capacity_hz, 1) + " jobs/s); deadline 3x service time, "
         "jitter 0.7, priority mix 0.3/0.5/0.2");
  t.note(accounted ? "met + late + degraded + shed == total and zero lost "
                     "jobs at every grid point"
                   : "WARNING: a campaign lost or double-counted jobs");
  t.note(crossed ? "overload crossover holds: edf+shed SLO " +
                       Table::num(shed_slo, 3) + " > fifo " +
                       Table::num(fifo_slo, 3) + " at load " +
                       Table::num(loads[1], 1)
                 : "WARNING: edf+shed did not beat fifo at overload");
  t.note("host sweep wall time " + Table::num(sweep_s, 2) + " s");
  t.print(std::cout);
  return accounted && crossed ? 0 : 1;
}

int main() { return esarp::bench::guarded_main("overload_serve", bench_body); }
