// Reproduces the paper's Fig. 4 concept end to end: a flight-path error
// defocuses the FFBP image; running the autofocus criterion before each
// merge ("several different flight path compensations are thus tested
// before a merge") and applying the best compensation recovers the focus.
// Sweeps the error amplitude and reports peak recovery plus the extra
// criterion work the loop costs.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "core/ffbp_epiphany.hpp"
#include "hostmodel/host_model.hpp"
#include "autofocus/integrated.hpp"
#include "sar/ffbp.hpp"
#include "sar/scene.hpp"

static int bench_body() {
  using namespace esarp;
  // The geometry where the per-merge shift model is valid: a short
  // aperture whose smooth path error appears as measurable (>= 1/4 bin)
  // inter-child shifts at the levels autofocus runs on. Longer apertures
  // with single-period errors defocus *within* low-level subapertures,
  // which no per-merge compensation can undo — the same limitation the
  // paper's piecewise-constant compensation model has.
  const auto p = sar::test_params(64, 161);
  sar::Scene scene;
  scene.targets = {
      {0.0, p.near_range_m + 0.5 * (p.far_range_m() - p.near_range_m),
       1.0f}};
  const auto clean = sar::simulate_compressed(p, scene);

  const af::IntegratedOptions opt; // cubic merges + default criterion grid
  const host::HostModel intel;
  const double peak_clean =
      peak_magnitude(sar::ffbp(clean, p, opt.ffbp).image.data);

  Table t("Autofocus-in-FFBP: focus recovery vs path-error amplitude");
  t.header({"Error amp (bins)", "Defocused peak", "Autofocused peak",
            "Recovered", "Corrections", "Criterion work"});
  CsvWriter csv(bench::out_dir() / "autofocus_loop.csv",
                {"error_bins", "peak_clean", "peak_defocused",
                 "peak_focused", "sweeps"});

  for (double amp_bins : {0.0, 1.0, 1.5, 2.0}) {
    const double amp_m = amp_bins * p.range_bin_m;
    sar::FlightPathError err;
    err.dy.resize(p.n_pulses);
    for (std::size_t i = 0; i < p.n_pulses; ++i)
      err.dy[i] = amp_m * std::sin(2.0 * kPi * static_cast<double>(i) /
                                   static_cast<double>(p.n_pulses));
    const auto data = sar::simulate_compressed(p, scene, err);

    const auto plain = sar::ffbp(data, p, opt.ffbp);
    const auto focused = af::ffbp_with_autofocus(data, p, opt);
    const double pd = peak_magnitude(plain.image.data);
    const double pf = peak_magnitude(focused.image.data);

    std::size_t applied = 0;
    for (const auto& c : focused.corrections)
      if (std::abs(c.shift_bins) > 0.01f) ++applied;

    const double extra_flops = static_cast<double>(
        focused.ops.flops() - plain.ops.flops());
    t.row({Table::num(amp_bins, 1), Table::num(pd / peak_clean * 100, 0) + " %",
           Table::num(pf / peak_clean * 100, 0) + " %",
           Table::num((pf - pd) / peak_clean * 100, 0) + " %pts",
           std::to_string(applied) + "/" +
               std::to_string(focused.corrections.size()),
           "+" + Table::num(extra_flops / 1e6, 0) + " Mflop"});
    csv.row_numeric({amp_bins, peak_clean, pd, pf,
                     static_cast<double>(focused.sweeps_run)});

    if (amp_bins == 1.0) {
      const double t_plain = intel.seconds(plain.host_work);
      const double t_af = intel.seconds(focused.host_work);
      t.note("modelled i7 time at 1.0-bin error: plain " +
             format_seconds(t_plain) + ", with autofocus " +
             format_seconds(t_af) + " (" +
             Table::num((t_af / t_plain - 1.0) * 100.0, 1) +
             " % criterion overhead)");
    }
  }
  t.note("peaks as % of the clean-path image peak; sinusoidal cross-track "
         "error over the aperture; cubic merges");
  t.note("the method's sweet spot is ~1-bin smooth errors: smaller ones "
         "are below the criterion's resolution (corrections gated off), "
         "larger ones defocus the subapertures internally before any "
         "merge-level compensation can act");
  // On-chip cost of the integrated loop (the whole Fig.-4 system on the
  // simulated 16 cores) at the 1-bin operating point.
  {
    sar::FlightPathError err;
    err.dy.resize(p.n_pulses);
    for (std::size_t i = 0; i < p.n_pulses; ++i)
      err.dy[i] = p.range_bin_m *
                  std::sin(2.0 * kPi * static_cast<double>(i) /
                           static_cast<double>(p.n_pulses));
    const auto data = sar::simulate_compressed(p, scene, err);
    core::FfbpMapOptions plain_chip;
    plain_chip.n_cores = 16;
    plain_chip.algo = opt.ffbp;
    core::FfbpMapOptions af_chip = plain_chip;
    af_chip.autofocus = &opt;
    const auto a = core::run_ffbp_epiphany(data, p, plain_chip);
    const auto b = core::run_ffbp_epiphany(data, p, af_chip);
    t.note("on the simulated 16-core chip: plain FFBP " +
           format_seconds(a.seconds) + ", with the integrated autofocus " +
           format_seconds(b.seconds) + " (+" +
           Table::num((b.seconds / a.seconds - 1.0) * 100.0, 0) +
           " %), " + std::to_string(b.corrections.size()) +
           " merge pairs evaluated; image bit-identical to the host loop");
  }
  t.print(std::cout);
  return 0;
}

int main() { return esarp::bench::guarded_main("autofocus_loop", bench_body); }
