// Contract-macro audit: ESARP_EXPECTS / ESARP_ENSURES / ESARP_REQUIRE must
// throw ContractViolation in EVERY build type. This translation unit forces
// NDEBUG before including assert.hpp, so even a Debug CI build exercises
// the Release-mode expansion of the macros — if someone ever gates them on
// NDEBUG (the <cassert> trap), these tests fail immediately.
#ifndef NDEBUG
#define NDEBUG 1
#endif

#include "common/assert.hpp"

#include <string>

#include <gtest/gtest.h>

namespace esarp {
namespace {

TEST(Contracts, ExpectsThrowsWithNdebugDefined) {
#ifndef NDEBUG
  FAIL() << "test must compile with NDEBUG forced";
#endif
  EXPECT_THROW(ESARP_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(ESARP_EXPECTS(1 == 1));
}

TEST(Contracts, EnsuresThrowsWithNdebugDefined) {
  EXPECT_THROW(ESARP_ENSURES(false), ContractViolation);
  EXPECT_NO_THROW(ESARP_ENSURES(true));
}

TEST(Contracts, ViolationMessageNamesExpressionAndLocation) {
  try {
    ESARP_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
  }
}

TEST(Contracts, RequireThrowsWithMessage) {
  try {
    ESARP_REQUIRE(false, "bank 2 must hold two pulses");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bank 2 must hold two pulses"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(Contracts, RequireMessageOnlyEvaluatedOnFailure) {
  int evaluations = 0;
  auto msg = [&] {
    ++evaluations;
    return std::string("never shown");
  };
  ESARP_REQUIRE(true, msg());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(ESARP_REQUIRE(false, msg()), ContractViolation);
  EXPECT_EQ(evaluations, 1);
}

TEST(Contracts, ViolationIsALogicError) {
  // Callers (tests, the CLI) catch std::logic_error for programmer errors.
  EXPECT_THROW(ESARP_EXPECTS(false), std::logic_error);
}

} // namespace
} // namespace esarp
