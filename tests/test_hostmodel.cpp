// Tests for the Intel i7-M620 analytic cost model.
#include <gtest/gtest.h>

#include "hostmodel/host_model.hpp"
#include "hostmodel/parallel_host_model.hpp"

namespace esarp::host {
namespace {

HostModel ideal() {
  HostParams p;
  p.fp_port_efficiency = 1.0;
  p.overhead = 0.0;
  return HostModel(p);
}

TEST(HostModel, AddAndMulPortsOverlap) {
  const HostModel m = ideal();
  HostWork add_only;
  add_only.ops = {.fadd = 100};
  HostWork mul_only;
  mul_only.ops = {.fmul = 100};
  HostWork both;
  both.ops = {.fadd = 100, .fmul = 100};
  EXPECT_DOUBLE_EQ(m.cycles(add_only), 100.0);
  EXPECT_DOUBLE_EQ(m.cycles(mul_only), 100.0);
  EXPECT_DOUBLE_EQ(m.cycles(both), 100.0); // separate ports: free overlap
}

TEST(HostModel, FmaOccupiesBothPorts) {
  // Westmere has no FMA: an fma is one add-port op AND one mul-port op.
  const HostModel m = ideal();
  HostWork w;
  w.ops = {.fma = 100};
  EXPECT_DOUBLE_EQ(m.cycles(w), 100.0);
  HostWork w2;
  w2.ops = {.fadd = 100, .fma = 100};
  EXPECT_DOUBLE_EQ(m.cycles(w2), 200.0); // add port saturated
}

TEST(HostModel, DividesAreExpensive) {
  const HostModel m = ideal();
  HostWork w;
  w.ops = {.fdiv = 10};
  EXPECT_DOUBLE_EQ(m.cycles(w), 140.0); // 14 cycles each on the mul port
}

TEST(HostModel, MemoryPortsBoundThroughput) {
  const HostModel m = ideal();
  HostWork w;
  w.ops = {.load = 300, .store = 100};
  EXPECT_DOUBLE_EQ(m.cycles(w), 200.0); // 2 mem ops per cycle
}

TEST(HostModel, ScatteredReadsDominateStreaming) {
  const HostModel m = ideal();
  HostWork scattered;
  scattered.scattered_reads = 1000;
  HostWork stream;
  stream.stream_read_bytes = 8000; // same bytes, sequential
  EXPECT_GT(m.cycles(scattered), 3.0 * m.cycles(stream));
}

TEST(HostModel, StreamsOverlapComputeScatteredDoesNot) {
  const HostModel m = ideal();
  HostWork w;
  w.ops = {.fadd = 10000};
  const double compute_only = m.cycles(w);
  w.stream_read_bytes = 30000; // 5000 cycles of streaming < compute
  EXPECT_DOUBLE_EQ(m.cycles(w), compute_only);
  w.scattered_reads = 100;
  EXPECT_GT(m.cycles(w), compute_only); // scattered misses add on top
}

TEST(HostModel, SecondsUseConfiguredClock) {
  HostParams p;
  p.clock_hz = 2.67e9;
  p.fp_port_efficiency = 1.0;
  p.overhead = 0.0;
  const HostModel m(p);
  HostWork w;
  w.ops = {.fadd = 267};
  EXPECT_NEAR(m.seconds(w), 1e-7, 1e-12);
}

TEST(HostModel, JoulesAtSeventeenAndAHalfWatts) {
  // The paper attributes half the 35 W TDP to the single busy core.
  const HostModel m{};
  EXPECT_DOUBLE_EQ(m.params().watts, 17.5);
  HostWork w;
  w.ops = {.fadd = 1000000};
  EXPECT_NEAR(m.joules(w) / m.seconds(w), 17.5, 1e-9);
}

TEST(HostModel, EfficiencyScalesFpThroughput) {
  HostParams fast;
  fast.fp_port_efficiency = 0.9;
  fast.overhead = 0.0;
  HostParams slow = fast;
  slow.fp_port_efficiency = 0.45;
  HostWork w;
  w.ops = {.fmul = 1000};
  EXPECT_NEAR(HostModel(slow).cycles(w) / HostModel(fast).cycles(w), 2.0,
              1e-9);
}

TEST(HostWork, Accumulates) {
  HostWork a;
  a.ops = {.fadd = 1};
  a.scattered_reads = 2;
  HostWork b;
  b.ops = {.fadd = 10};
  b.stream_write_bytes = 7;
  a += b;
  EXPECT_EQ(a.ops.fadd, 11u);
  EXPECT_EQ(a.scattered_reads, 2u);
  EXPECT_EQ(a.stream_write_bytes, 7u);
}


TEST(ParallelHostModel, ComputeScalesWithCoresAndSimd) {
  ParallelHostParams p;
  p.core.fp_port_efficiency = 1.0;
  p.core.overhead = 0.0;
  p.simd_efficiency = 1.0;
  p.parallel_efficiency = 1.0;
  const ParallelHostModel par(p);
  const HostModel single(p.core);
  HostWork w;
  w.ops = {.fmul = 1'000'000};
  // 12 cores x 4-wide SIMD = 48x on pure compute.
  EXPECT_NEAR(single.seconds(w) / par.seconds(w), 48.0, 1e-6);
}

TEST(ParallelHostModel, MemoryBoundWorkOnlyGetsSocketScaling) {
  const ParallelHostModel par{};
  const HostModel single{};
  HostWork w;
  w.scattered_reads = 10'000'000; // purely memory-bound
  const double speedup = single.seconds(w) / par.seconds(w);
  EXPECT_NEAR(speedup, 2.0, 1e-6); // two sockets' worth of DRAM channels
}

TEST(ParallelHostModel, XeonPresetFasterButHungrierThanI7) {
  const ParallelHostModel xeon(ParallelHostParams::xeon_x5675_pair());
  const HostModel i7{};
  HostWork w;
  w.ops = {.fadd = 5'000'000, .fmul = 5'000'000};
  EXPECT_LT(xeon.seconds(w), i7.seconds(w) / 5.0); // much faster
  EXPECT_GT(xeon.params().watts, 100.0);           // much more power
}

} // namespace
} // namespace esarp::host
