// Autofocus in action: apply a known flight-path error to the raw data,
// then use the focus-criterion sweep (paper Section II-A, eq. 6) to find
// the compensation — first on synthetic block pairs, then on blocks cut
// from real FFBP child subapertures.
//
// Build & run:  ./examples/autofocus_search
#include <cmath>
#include <iostream>
#include <vector>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "autofocus/criterion.hpp"
#include "autofocus/workload.hpp"
#include "core/autofocus_epiphany.hpp"
#include "sar/ffbp.hpp"
#include "sar/scene.hpp"

int main() {
  using namespace esarp;

  // --- Part 1: controlled shifts on synthetic blocks. -------------------
  af::AfParams params;
  // Use a dense candidate grid for a fine estimate.
  params.shift_candidates.clear();
  for (int i = -9; i <= 9; ++i)
    params.shift_candidates.push_back(0.1f * static_cast<float>(i));

  Table t1("shift recovery on synthetic block pairs");
  t1.header({"True shift (bins)", "Recovered", "Error"});
  Rng rng(2024);
  for (float true_shift : {-0.6f, -0.3f, 0.0f, 0.3f, 0.6f}) {
    const af::BlockPair bp =
        af::synthetic_block_pair(rng, params, true_shift);
    const af::CriterionResult res =
        af::criterion_sweep(bp.minus, bp.plus, params);
    const float got = res.best_shift(params);
    t1.row({Table::num(true_shift, 2), Table::num(got, 2),
            Table::num(std::abs(got - true_shift), 2)});
  }
  t1.print(std::cout);

  // --- Part 2: blocks from real subaperture images. ---------------------
  // Form subapertures of a single-target scene, cut the area of interest
  // around the target from two children of the next merge, and sweep.
  const auto p = sar::test_params(64, 161);
  sar::Scene scene;
  scene.targets = {{0.0, p.near_range_m + 80.0 * p.range_bin_m, 1.0f}};
  const auto data = sar::simulate_compressed(p, scene);

  auto subs = sar::initial_subapertures(data, p);
  sar::FfbpOptions algo;
  for (std::size_t level = 1; level <= 4; ++level) {
    std::vector<sar::SubapertureImage> next;
    for (std::size_t i = 0; i + 1 < subs.size(); i += 2)
      next.push_back(sar::merge_pair(subs[i], subs[i + 1], p, algo));
    subs = std::move(next);
  }

  // Find the target in the first child and cut 6x6 blocks there.
  const auto& a = subs[1];
  const auto& b = subs[2];
  std::size_t ti = 0, tj = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < a.n_theta(); ++i)
    for (std::size_t j = 0; j < a.n_range(); ++j)
      if (std::abs(a.data(i, j)) > best) {
        best = std::abs(a.data(i, j));
        ti = i;
        tj = j;
      }
  af::AfParams ap; // default candidate set
  const std::size_t bi =
      std::min(ti > 2 ? ti - 2 : 0, a.n_theta() - ap.block_rows);
  const std::size_t bj =
      std::min(tj > 2 ? tj - 2 : 0, a.n_range() - ap.block_cols);
  const auto blocks = af::blocks_from_subapertures(a, b, ap, bi, bj);
  const auto sweep = af::criterion_sweep(blocks.minus, blocks.plus, ap);

  Table t2("criterion sweep on real subaperture blocks (no path error)");
  t2.header({"Candidate shift", "Criterion"});
  for (std::size_t s = 0; s < ap.shift_candidates.size(); ++s) {
    const bool is_best = s == sweep.best_index;
    t2.row({Table::num(ap.shift_candidates[s], 2) + (is_best ? " <== best" : ""),
            Table::num(sweep.criteria[s], 4)});
  }
  t2.note("with an error-free path the best compensation is near zero");
  t2.print(std::cout);

  // --- Part 3: the same sweep on the simulated 13-core pipeline. --------
  std::vector<af::BlockPair> pairs;
  pairs.push_back(blocks);
  const auto sim = core::run_autofocus_mpmd(pairs, ap);
  std::cout << "\n13-core MPMD pipeline agrees with the host sweep: "
            << (sim.criteria[0][sweep.best_index] ==
                        sweep.criteria[sweep.best_index]
                    ? "yes (bit-exact)"
                    : "no")
            << "; pipeline throughput "
            << format_rate(sim.pixels_per_second, "px") << "\n";
  return 0;
}
