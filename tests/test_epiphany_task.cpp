// Tests for the discrete-event scheduler and the coroutine task machinery.
#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "epiphany/scheduler.hpp"
#include "epiphany/task.hpp"

namespace esarp::ep {
namespace {

Task record_at(Scheduler& s, Cycles t, std::vector<int>& log, int id) {
  co_await DelayUntil{s, t};
  log.push_back(id);
}

TEST(Scheduler, ResumesInTimeOrder) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 30, log, 1);
  Task b = record_at(s, 10, log, 2);
  Task c = record_at(s, 20, log, 3);
  s.schedule_at(0, a.handle());
  s.schedule_at(0, b.handle());
  s.schedule_at(0, c.handle());
  const Cycles end = s.run();
  EXPECT_EQ(end, 30u);
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  EXPECT_TRUE(a.done() && b.done() && c.done());
}

TEST(Scheduler, FifoTieBreakAtEqualTime) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 5, log, 1);
  Task b = record_at(s, 5, log, 2);
  s.schedule_at(0, a.handle());
  s.schedule_at(0, b.handle());
  s.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RejectsSchedulingInThePast) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 50, log, 1);
  s.schedule_at(0, a.handle());
  s.run();
  Task b = record_at(s, 100, log, 2);
  EXPECT_THROW(s.schedule_at(10, b.handle()), ContractViolation);
}

TEST(Scheduler, ResetRequiresIdle) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 5, log, 1);
  s.schedule_at(0, a.handle());
  EXPECT_THROW(s.reset(), ContractViolation);
  s.run();
  s.reset();
  EXPECT_EQ(s.now(), 0u);
}

Task delays_twice(Scheduler& s, std::vector<Cycles>& stamps) {
  co_await DelayFor{s, 10};
  stamps.push_back(s.now());
  co_await DelayFor{s, 15};
  stamps.push_back(s.now());
}

TEST(Task, DelayForAdvancesVirtualTime) {
  Scheduler s;
  std::vector<Cycles> stamps;
  Task t = delays_twice(s, stamps);
  s.schedule_at(0, t.handle());
  s.run();
  EXPECT_EQ(stamps, (std::vector<Cycles>{10, 25}));
}

TaskT<int> child_returning(Scheduler& s, int v) {
  co_await DelayFor{s, 7};
  co_return v;
}

Task parent_awaits(Scheduler& s, std::vector<int>& log) {
  const int a = co_await child_returning(s, 41);
  const int b = co_await child_returning(s, 1);
  log.push_back(a + b);
}

TEST(Task, NestedTasksReturnValuesAndAccumulateTime) {
  Scheduler s;
  std::vector<int> log;
  Task t = parent_awaits(s, log);
  s.schedule_at(0, t.handle());
  const Cycles end = s.run();
  EXPECT_EQ(log, std::vector<int>{42});
  EXPECT_EQ(end, 14u); // two nested 7-cycle children
}

Task thrower(Scheduler& s) {
  co_await DelayFor{s, 1};
  throw std::runtime_error("kernel bug");
}

TEST(Task, ExceptionIsCapturedAndRethrown) {
  Scheduler s;
  Task t = thrower(s);
  s.schedule_at(0, t.handle());
  s.run();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_error(), std::runtime_error);
}

Task rethrows_from_child(Scheduler& s, bool& caught) {
  try {
    co_await thrower(s);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ChildExceptionPropagatesToParent) {
  Scheduler s;
  bool caught = false;
  Task t = rethrows_from_child(s, caught);
  s.schedule_at(0, t.handle());
  s.run();
  EXPECT_TRUE(caught);
}

Task waiter(Scheduler& s, WaitList& wl, std::vector<int>& log, int id) {
  co_await wl.wait();
  log.push_back(id);
  (void)s;
}

Task waker(Scheduler& s, WaitList& wl) {
  co_await DelayFor{s, 100};
  wl.wake_one(s);
  co_await DelayFor{s, 100};
  wl.wake_all(s);
}

TEST(WaitList, WakeOneThenWakeAll) {
  Scheduler s;
  WaitList wl;
  std::vector<int> log;
  Task w1 = waiter(s, wl, log, 1);
  Task w2 = waiter(s, wl, log, 2);
  Task w3 = waiter(s, wl, log, 3);
  Task k = waker(s, wl);
  for (Task* t : {&w1, &w2, &w3, &k}) s.schedule_at(0, t->handle());
  s.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(wl.empty());
}

TEST(Task, MoveTransfersOwnership) {
  Scheduler s;
  std::vector<int> log;
  Task a = record_at(s, 1, log, 7);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  s.schedule_at(0, b.handle());
  s.run();
  EXPECT_EQ(log, std::vector<int>{7});
}

} // namespace
} // namespace esarp::ep
